# Convenience targets for the lmas emulation library. Everything here is a
# thin wrapper over the go tool; no target is required by CI or the build.

.PHONY: all build test race bench bench-smoke baseline

all: build

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Full benchmark suite (figures/tables + kernel microbenchmarks).
bench:
	go test -bench=. -benchmem ./...

# One iteration of every benchmark: catches broken benchmark code fast.
bench-smoke:
	go test -bench=. -benchtime=1x ./...

# Regenerate the CI perf-gate baseline after an INTENTIONAL performance
# change (simulated runtimes moved for a good reason). -stamp=false keeps
# the file byte-reproducible; commit the result.
baseline:
	go run ./cmd/lmasreport bench -quick -stamp=false -o bench/baseline.json
