# Convenience targets for the lmas emulation library. Everything here is a
# thin wrapper over the go tool; no target is required by CI or the build.

.PHONY: all build test race bench bench-smoke bench-allocs baseline monitor

all: build

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Full benchmark suite (figures/tables + kernel microbenchmarks).
bench:
	go test -bench=. -benchmem ./...

# One iteration of every benchmark: catches broken benchmark code fast.
bench-smoke:
	go test -bench=. -benchtime=1x ./...

# Allocation regression gate for the buffer pool: fail if the run-formation
# benchmark's steady-state allocs/op exceed the budget (measured ~3.9k after
# pooling; 4600 leaves headroom without allowing a copying regression).
ALLOC_BUDGET := 4600
bench-allocs:
	@out=$$(go test ./internal/dsmsort -run 'TestXXX' -bench BenchmarkRunFormationOnly -benchmem -benchtime 10x | tee /dev/stderr); \
	allocs=$$(echo "$$out" | awk '/BenchmarkRunFormationOnly/ {print $$(NF-1)}'); \
	if [ -z "$$allocs" ]; then echo "bench-allocs: could not parse allocs/op"; exit 1; fi; \
	if [ "$$allocs" -gt $(ALLOC_BUDGET) ]; then \
		echo "bench-allocs: $$allocs allocs/op exceeds budget $(ALLOC_BUDGET)"; exit 1; \
	fi; \
	echo "bench-allocs: $$allocs allocs/op within budget $(ALLOC_BUDGET)"
	@out=$$(go test ./internal/sim -run 'TestXXX' -bench BenchmarkSpawnKillSteadyState -benchmem -benchtime 100000x | tee /dev/stderr); \
	allocs=$$(echo "$$out" | awk '/BenchmarkSpawnKillSteadyState/ {print $$(NF-1)}'); \
	if [ -z "$$allocs" ]; then echo "bench-allocs: could not parse spawn/kill allocs/op"; exit 1; fi; \
	if [ "$$allocs" -gt 0 ]; then \
		echo "bench-allocs: steady-state spawn/kill is $$allocs allocs/op, want 0 (proc recycling broken?)"; exit 1; \
	fi; \
	echo "bench-allocs: steady-state spawn/kill alloc-free"

# Regenerate the CI perf-gate baseline after an INTENTIONAL performance
# change (simulated runtimes moved for a good reason). -stamp=false keeps
# the file byte-reproducible; commit the result.
baseline:
	go run ./cmd/lmasreport bench -quick -stamp=false -o bench/baseline.json

# Run the quick bench with the live dashboard and a run store attached:
# open the printed address in a browser to watch cells stream in, and query
# the recorded runs afterwards with `lmasreport query runs ...`.
monitor:
	go run ./cmd/lmasreport bench -quick -stamp=false -o /dev/null \
		-record runs -serve 127.0.0.1:8070
