// Benchmarks regenerating the paper's evaluation (one benchmark per figure
// and table; see DESIGN.md's experiment index and EXPERIMENTS.md for the
// recorded results). The interesting output is the custom metrics —
// speedup, imbalance, qps, virtual seconds — not ns/op, since each
// "operation" is a whole emulated experiment at a reduced input size.
//
// Run with:
//
//	go test -bench=. -benchmem
package lmas_test

import (
	"testing"

	"lmas/internal/cluster"
	"lmas/internal/dsmsort"
	"lmas/internal/experiments"
	"lmas/internal/extsort"
	"lmas/internal/records"
	"lmas/internal/rtree"
	"lmas/internal/sim"
	"lmas/internal/terraflow"
)

// benchN is the record count used by the sort benchmarks: large enough for
// steady-state pipelining, small enough to keep the full suite quick.
const benchN = 1 << 16

// BenchmarkFig9 regenerates Figure 9 cells: run-formation speedup of active
// versus conventional placement, per ASU count and distribute order.
func BenchmarkFig9(b *testing.B) {
	cases := []struct{ asus, alpha int }{
		{2, 1}, {2, 256},
		{8, 16},
		{16, 1}, {16, 256},
		{64, 64}, {64, 256},
	}
	for _, c := range cases {
		c := c
		b.Run(benchName("asus", c.asus, "alpha", c.alpha), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				speedup = measureSpeedup(b, c.asus, c.alpha)
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

func measureSpeedup(b *testing.B, asus, alpha int) float64 {
	b.Helper()
	elapsed := func(p dsmsort.Placement) float64 {
		params := cluster.DefaultParams()
		params.Hosts, params.ASUs, params.C = 1, asus, 8
		cl := cluster.New(params)
		in := dsmsort.MakeInput(cl, benchN, records.Uniform{}, 42, 32)
		cfg := dsmsort.Config{Alpha: alpha, Beta: 64, Gamma2: 2,
			PacketRecords: 32, Placement: p, Seed: 42}
		_, r, err := dsmsort.RunFormation(cl, cfg, in)
		if err != nil {
			b.Fatal(err)
		}
		return r.Elapsed.Seconds()
	}
	return elapsed(dsmsort.Conventional) / elapsed(dsmsort.Active)
}

// BenchmarkFig10 regenerates Figure 10: the skewed workload under static
// and load-managed routing, reporting run time and host imbalance.
func BenchmarkFig10(b *testing.B) {
	opt := experiments.DefaultFig10Options()
	opt.N = benchN
	opt.Window = 25 * sim.Millisecond
	for _, which := range []string{"static", "managed"} {
		which := which
		b.Run(which, func(b *testing.B) {
			var run experiments.Fig10Run
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFig10(opt)
				if err != nil {
					b.Fatal(err)
				}
				if which == "static" {
					run = res.Static
				} else {
					run = res.Managed
				}
			}
			b.ReportMetric(run.Elapsed.Seconds(), "virtual-s")
			b.ReportMetric(run.Imbalance, "imbalance")
		})
	}
}

// BenchmarkCRatio regenerates TAB-C: sensitivity to the host/ASU power
// ratio c at a fixed ASU count.
func BenchmarkCRatio(b *testing.B) {
	for _, c := range []float64{4, 8} {
		c := c
		b.Run(benchName("c", int(c)), func(b *testing.B) {
			opt := experiments.DefaultCRatioOptions()
			opt.N = benchN / 2
			opt.ASUs = []int{8}
			opt.Cs = []float64{c}
			var sp float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunCRatio(opt)
				if err != nil {
					b.Fatal(err)
				}
				cell, _ := res.Cell(c, 8)
				sp = cell.Speedup
			}
			b.ReportMetric(sp, "speedup")
		})
	}
}

// BenchmarkGammaSplit regenerates TAB-GAMMA: the merge pass under different
// γ2 splits between ASUs and hosts.
func BenchmarkGammaSplit(b *testing.B) {
	for _, g2 := range []int{2, 8, 32} {
		g2 := g2
		b.Run(benchName("gamma2", g2), func(b *testing.B) {
			opt := experiments.DefaultGammaOptions()
			opt.N = benchN / 4
			opt.Gamma2s = []int{g2}
			var cell experiments.GammaCell
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunGamma(opt)
				if err != nil {
					b.Fatal(err)
				}
				cell = res.Cells[0]
			}
			b.ReportMetric(cell.MergeSecs, "virtual-s")
			b.ReportMetric(float64(cell.MergeLevels), "asu-levels")
		})
	}
}

// BenchmarkRouting regenerates TAB-ROUTE: routing policies under the skewed
// Figure 10 workload.
func BenchmarkRouting(b *testing.B) {
	for _, policy := range []string{"static", "round-robin", "sr", "load-aware"} {
		policy := policy
		b.Run(policy, func(b *testing.B) {
			opt := experiments.DefaultRoutingOptions()
			opt.N = benchN
			opt.Window = 25 * sim.Millisecond
			opt.Policies = []string{policy}
			var cell experiments.RoutingCell
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunRouting(opt)
				if err != nil {
					b.Fatal(err)
				}
				cell = res.Cells[0]
			}
			b.ReportMetric(cell.Elapsed.Seconds(), "virtual-s")
			b.ReportMetric(cell.Imbalance, "imbalance")
		})
	}
}

// BenchmarkRTree regenerates TAB-RTREE: partitioned vs striped distributed
// R-trees on wide-scan latency and concurrent-lookup throughput.
func BenchmarkRTree(b *testing.B) {
	for _, mode := range []rtree.Mode{rtree.Partition, rtree.Stripe} {
		mode := mode
		entries := rtree.GenerateEntries(1<<13, 0.005, 7)
		mk := func() *rtree.Distributed {
			params := cluster.DefaultParams()
			params.Hosts, params.ASUs = 1, 8
			return rtree.NewDistributed(cluster.New(params), entries, 16, mode)
		}
		b.Run(mode.String()+"/latency", func(b *testing.B) {
			var lat sim.Duration
			for i := 0; i < b.N; i++ {
				var err error
				_, lat, err = mk().QueryOnce(rtree.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(lat.Seconds()*1e3, "virtual-ms")
		})
		b.Run(mode.String()+"/throughput", func(b *testing.B) {
			queries := rtree.GenerateQueries(64, 0.02, 8)
			var qps float64
			for i := 0; i < b.N; i++ {
				var err error
				_, qps, err = mk().Throughput(queries, 8)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(qps, "virtual-qps")
		})
	}
}

// BenchmarkTerraFlow regenerates TAB-TERRA: the watershed phase breakdown
// with and without active storage.
func BenchmarkTerraFlow(b *testing.B) {
	for _, placement := range []dsmsort.Placement{dsmsort.Active, dsmsort.Conventional} {
		placement := placement
		b.Run(placement.String(), func(b *testing.B) {
			var res *terraflow.Result
			for i := 0; i < b.N; i++ {
				params := cluster.DefaultParams()
				params.Hosts, params.ASUs = 1, 8
				params.RecordSize = terraflow.CellRecordSize
				cl := cluster.New(params)
				g, _ := terraflow.SyntheticBasins(96, 96, 4, 10, 42)
				opt := terraflow.DefaultOptions()
				opt.Placement = placement
				var err error
				res, err = terraflow.Run(cl, g, opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Restructure.Seconds()*1e3, "restructure-ms")
			b.ReportMetric(res.Sort.Seconds()*1e3, "sort-ms")
			b.ReportMetric(res.Watershed.Seconds()*1e3, "watershed-ms")
		})
	}
}

// BenchmarkFullSort regenerates TAB-PASS: the complete two-pass DSM-Sort
// ("two passes are sufficient in practice") with validated output, compared
// against the host-only external mergesort.
func BenchmarkFullSort(b *testing.B) {
	b.Run("dsmsort", func(b *testing.B) {
		var total sim.Duration
		for i := 0; i < b.N; i++ {
			params := cluster.DefaultParams()
			params.Hosts, params.ASUs = 1, 8
			cl := cluster.New(params)
			in := dsmsort.MakeInput(cl, benchN/2, records.Uniform{}, 42, 64)
			res, err := dsmsort.Sort(cl, dsmsort.Config{
				Alpha: 16, Beta: 64, Gamma2: 32, PacketRecords: 64,
				Placement: dsmsort.Active, Seed: 42,
			}, in)
			if err != nil {
				b.Fatal(err)
			}
			total = res.Elapsed
		}
		b.ReportMetric(total.Seconds(), "virtual-s")
	})
	b.Run("extsort", func(b *testing.B) {
		var total sim.Duration
		for i := 0; i < b.N; i++ {
			params := cluster.DefaultParams()
			params.Hosts, params.ASUs = 1, 8
			cl := cluster.New(params)
			in := dsmsort.MakeInput(cl, benchN/2, records.Uniform{}, 42, 64)
			res, err := extsort.Sort(cl, extsort.Config{MemRecords: 1024, FanIn: 16}, in)
			if err != nil {
				b.Fatal(err)
			}
			total = res.Elapsed
		}
		b.ReportMetric(total.Seconds(), "virtual-s")
	})
}

// BenchmarkIsolation regenerates TAB-ISO: foreground request tail latency
// with and without performance isolation of co-resident functor work.
func BenchmarkIsolation(b *testing.B) {
	for _, quantum := range []sim.Duration{0, 100 * sim.Microsecond} {
		quantum := quantum
		name := "off"
		if quantum > 0 {
			name = "quantum-100us"
		}
		b.Run(name, func(b *testing.B) {
			opt := experiments.DefaultIsolationOptions()
			opt.N = benchN / 2
			opt.Quanta = []sim.Duration{quantum}
			var cell experiments.IsolationCell
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunIsolation(opt)
				if err != nil {
					b.Fatal(err)
				}
				cell = res.Cells[0]
			}
			b.ReportMetric(cell.P99.Seconds()*1e3, "p99-ms")
			b.ReportMetric(cell.SortSecs, "sort-virtual-s")
		})
	}
}

// BenchmarkHybrid regenerates TAB-HYBRID: the functor-migration placement
// against the static ones.
func BenchmarkHybrid(b *testing.B) {
	for _, d := range []int{2, 16} {
		d := d
		b.Run(benchName("asus", d), func(b *testing.B) {
			opt := experiments.DefaultHybridOptions()
			opt.N = benchN
			opt.ASUs = []int{d}
			var cell experiments.HybridCell
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunHybrid(opt)
				if err != nil {
					b.Fatal(err)
				}
				cell = res.Cells[0]
			}
			b.ReportMetric(cell.Active, "active-speedup")
			b.ReportMetric(cell.Hybrid, "hybrid-speedup")
		})
	}
}

// BenchmarkPacketSize regenerates TAB-PACKET.
func BenchmarkPacketSize(b *testing.B) {
	for _, pr := range []int{4, 64, 1024} {
		pr := pr
		b.Run(benchName("packet", pr), func(b *testing.B) {
			opt := experiments.DefaultPacketOptions()
			opt.N = benchN
			opt.ASUs = 8
			opt.Packets = []int{pr}
			var cell experiments.PacketCell
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunPacket(opt)
				if err != nil {
					b.Fatal(err)
				}
				cell = res.Cells[0]
			}
			b.ReportMetric(cell.Pass1Secs, "virtual-s")
			b.ReportMetric(cell.OverheadFrac*100, "net-overhead-%")
		})
	}
}

// BenchmarkAdapt regenerates TAB-ADAPT: mid-run policy adaptation under
// the skewed Figure 10 workload.
func BenchmarkAdapt(b *testing.B) {
	for _, strategy := range []string{"static", "adaptive", "sr"} {
		strategy := strategy
		b.Run(strategy, func(b *testing.B) {
			opt := experiments.DefaultAdaptOptions()
			opt.N = benchN
			opt.Window = 50 * sim.Millisecond
			var cell experiments.AdaptCell
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunAdapt(opt)
				if err != nil {
					b.Fatal(err)
				}
				for _, c := range res.Cells {
					if c.Strategy == strategy {
						cell = c
					}
				}
			}
			b.ReportMetric(cell.Elapsed.Seconds(), "virtual-s")
			b.ReportMetric(cell.Imbalance, "imbalance")
		})
	}
}

// BenchmarkFilter regenerates TAB-FILTER: the selection-scan pushdown on a
// bandwidth-constrained interconnect.
func BenchmarkFilter(b *testing.B) {
	for _, sel := range []float64{0.01, 1.0} {
		sel := sel
		name := "sel=0.01"
		if sel == 1.0 {
			name = "sel=1.00"
		}
		b.Run(name, func(b *testing.B) {
			opt := experiments.DefaultFilterOptions()
			opt.N = benchN / 2
			opt.ASUs = 8
			opt.Selectivities = []float64{sel}
			var cell experiments.FilterCell
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFilter(opt)
				if err != nil {
					b.Fatal(err)
				}
				cell = res.Cells[0]
			}
			b.ReportMetric(cell.ConvSecs/cell.ActiveSecs, "pushdown-speedup")
			b.ReportMetric(cell.ActiveNetMB, "active-net-MB")
			b.ReportMetric(cell.ConvNetMB, "conv-net-MB")
		})
	}
}

// BenchmarkOnePass regenerates TAB-ONEPASS below the memory wall.
func BenchmarkOnePass(b *testing.B) {
	opt := experiments.DefaultOnePassOptions()
	opt.Ns = []int{1 << 13}
	var cell experiments.OnePassCell
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunOnePass(opt)
		if err != nil {
			b.Fatal(err)
		}
		cell = res.Cells[0]
	}
	b.ReportMetric(cell.OnePassSecs, "onepass-virtual-s")
	b.ReportMetric(cell.DSMSecs, "dsmsort-virtual-s")
}

// BenchmarkOpenLoopChurn regenerates TAB-CHURN: the open-loop Poisson job
// stream over short-lived procs. Each op is 100k arrivals — 100k proc
// lifecycles and two million scheduled events (a 20-horizon deadline ladder
// per job, CPU/disk/net charges, queue handoffs), with over a million
// timers in flight at the arrival-phase peak — so ns/op here tracks the
// raw kernel churn cost: the timer tier, proc recycling, and batched queue
// drains. The custom metrics confirm the run stays at its operating point.
func BenchmarkOpenLoopChurn(b *testing.B) {
	opt := experiments.DefaultOpenLoopOptions()
	opt.Jobs = 100000
	opt.Timeout = 2 * sim.Second
	opt.Deadlines = 20
	var res *experiments.OpenLoopResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunOpenLoop(opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != opt.Jobs {
			b.Fatalf("completed %d of %d jobs", res.Completed, opt.Jobs)
		}
	}
	b.ReportMetric(res.Goodput, "virtual-jobs/s")
	b.ReportMetric(res.P99.Seconds()*1e3, "p99-virtual-ms")
	b.ReportMetric(float64(res.Misses), "slo-misses")
}

// BenchmarkWorkEquation regenerates TAB-WORK: measured CPU work tracks the
// paper's n·log(αβγ) equation across configurations with αβγ fixed.
func BenchmarkWorkEquation(b *testing.B) {
	for _, cfg := range []struct{ alpha, beta, gamma2 int }{
		{4, 256, 16}, {16, 64, 16}, {64, 16, 16},
	} {
		cfg := cfg
		b.Run(benchName("a", cfg.alpha, "b", cfg.beta), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				params := cluster.DefaultParams()
				params.Hosts, params.ASUs = 1, 4
				cl := cluster.New(params)
				in := dsmsort.MakeInput(cl, benchN/4, records.Uniform{}, 42, 64)
				c := dsmsort.Config{Alpha: cfg.alpha, Beta: cfg.beta, Gamma2: cfg.gamma2,
					PacketRecords: 64, Placement: dsmsort.Active, Seed: 42}
				res, err := dsmsort.Sort(cl, c, in)
				if err != nil {
					b.Fatal(err)
				}
				host, asu := res.MeasuredWork()
				predicted := c.TotalCompares(benchN/4, len(cl.ASUs))
				// Measured ops include per-record handling; the
				// comparison work dominates their variation, so the
				// ratio should stay in a narrow band as alpha/beta
				// trade off (the equation's point).
				ratio = (host + asu) / predicted
			}
			b.ReportMetric(ratio, "ops-per-compare")
		})
	}
}

func benchName(parts ...any) string {
	s := ""
	for i := 0; i+1 < len(parts); i += 2 {
		if s != "" {
			s += "-"
		}
		s += parts[i].(string)
		switch v := parts[i+1].(type) {
		case int:
			s += "=" + itoa(v)
		}
	}
	return s
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
