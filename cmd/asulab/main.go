// Command asulab drives the emulated active-storage laboratory: it
// regenerates every figure and table of the paper's evaluation plus the
// ablations catalogued in DESIGN.md.
//
// Usage:
//
//	asulab fig9   [-n N] [-seed S] [-c RATIO]
//	asulab fig10  [-n N] [-seed S]
//	asulab cratio [-n N] [-alpha A]
//	asulab gamma  [-n N]
//	asulab routes [-n N]
//	asulab rtree  [-entries N] [-asus D]
//	asulab terraflow [-w W] [-h H] [-asus D]
//	asulab trace  [-n N] [-asus D] [-o FILE]
//	asulab all    (runs everything at default sizes)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lmas/internal/cluster"
	"lmas/internal/dsmsort"
	"lmas/internal/experiments"
	"lmas/internal/recorder"
	"lmas/internal/records"
	"lmas/internal/sim"
	"lmas/internal/telemetry"
	"lmas/internal/trace"
)

func main() {
	// Global flags precede the subcommand (asulab -engine parallel fig10 ...)
	// and apply to every cluster any subcommand builds, via the env fallbacks
	// cluster.Params.EngineSpec consults. Engine choice never changes
	// results — only wall clock.
	global := flag.NewFlagSet("asulab", flag.ExitOnError)
	global.Usage = usage
	engine := global.String("engine", "", "sim engine for all subcommands: serial|parallel (results identical; equivalent to LMAS_SIM_ENGINE)")
	workers := global.Int("workers", 0, "parallel-engine worker goroutines (0 = one per CPU; equivalent to LMAS_SIM_WORKERS)")
	groups := global.Int("groups", 0, "parallel-engine partition groups (0 = shared worker pool; equivalent to LMAS_SIM_GROUPS)")
	global.Parse(os.Args[1:]) // stops at the first non-flag: the subcommand
	if *engine != "" {
		os.Setenv("LMAS_SIM_ENGINE", *engine)
	}
	if *workers != 0 {
		os.Setenv("LMAS_SIM_WORKERS", strconv.Itoa(*workers))
	}
	if *groups != 0 {
		os.Setenv("LMAS_SIM_GROUPS", strconv.Itoa(*groups))
	}
	if global.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd, args := global.Arg(0), global.Args()[1:]
	var err error
	switch cmd {
	case "fig9":
		err = runFig9(args)
	case "fig10":
		err = runFig10(args)
	case "cratio":
		err = runCRatio(args)
	case "gamma":
		err = runGamma(args)
	case "routes":
		err = runRoutes(args)
	case "rtree":
		err = runRTree(args)
	case "terraflow":
		err = runTerra(args)
	case "iso", "isolation":
		err = runIso(args)
	case "hybrid":
		err = runHybrid(args)
	case "packet":
		err = runPacket(args)
	case "filter":
		err = runFilter(args)
	case "adapt":
		err = runAdapt(args)
	case "onepass":
		err = runOnePass(args)
	case "openloop":
		err = runOpenLoop(args)
	case "trace":
		err = runTrace(args)
	case "all":
		err = runAll()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "asulab: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "asulab:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `asulab — emulated active-storage experiments

commands:
  fig9       DSM-Sort speedup vs #ASUs per alpha (paper Figure 9)
  fig10      host utilization under skew, static vs load-managed (Figure 10)
  cratio     speedup sensitivity to the host/ASU power ratio c (TAB-C)
  gamma      merge split between ASUs and hosts (TAB-GAMMA)
  routes     routing-policy ablation under skew (TAB-ROUTE)
  rtree      partitioned vs striped distributed R-trees (TAB-RTREE)
  terraflow  TerraFlow watershed phase breakdown (TAB-TERRA)
  iso        performance isolation of foreground storage requests (TAB-ISO)
  hybrid     functor migration between ASUs and hosts (TAB-HYBRID)
  packet     interconnect packet-size sweep (TAB-PACKET)
  filter     selection-scan filter pushdown vs selectivity (TAB-FILTER)
  adapt      mid-run routing-policy adaptation under skew (TAB-ADAPT)
  onepass    one-pass cluster sort vs DSM-Sort across the memory wall (TAB-ONEPASS)
  openloop   open-loop churn: Poisson job stream over short-lived procs (TAB-CHURN)
  trace      record a structured trace of a small DSM-Sort (Perfetto JSON or CSV)
  all        run everything at default sizes`)
}

func runFig9(args []string) error {
	fs := flag.NewFlagSet("fig9", flag.ExitOnError)
	opt := experiments.DefaultFig9Options()
	fs.IntVar(&opt.N, "n", opt.N, "input records")
	fs.Int64Var(&opt.Seed, "seed", opt.Seed, "workload seed")
	fs.Float64Var(&opt.C, "c", opt.C, "host/ASU power ratio")
	fs.Parse(args)
	res, err := experiments.RunFig9(opt)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func runFig10(args []string) error {
	fs := flag.NewFlagSet("fig10", flag.ExitOnError)
	opt := experiments.DefaultFig10Options()
	fs.IntVar(&opt.N, "n", opt.N, "input records")
	fs.Int64Var(&opt.Seed, "seed", opt.Seed, "workload seed")
	fs.BoolVar(&opt.Critpath, "critpath", opt.Critpath, "attach the critical-path profiler to both runs")
	report := fs.String("report", "", "write the load-managed run's RunReport here (and the static run's next to it as <name>.static.json)")
	record := fs.String("record", "", "record both runs into this run store directory")
	fs.StringVar(&opt.Experiment, "experiment", "fig10", "experiment name for recorded runs")
	fs.Parse(args)
	var store *recorder.Store
	if *record != "" {
		var err error
		if store, err = recorder.OpenStore(*record); err != nil {
			return err
		}
		opt.Record = store
	}
	res, err := experiments.RunFig10(opt)
	if err != nil {
		return err
	}
	if store != nil {
		if err := store.Err(); err != nil {
			return err
		}
		fmt.Printf("recorded both runs -> %s (experiment %q)\n", *record, opt.Experiment)
	}
	fmt.Println(res.Summary())
	for _, run := range []experiments.Fig10Run{res.Static, res.Managed} {
		if cp := run.Report.Critpath; cp != nil {
			fmt.Printf("critpath [%s]: bottleneck %s (%.1f%% of per-instance congestion), predicted %s — agreement: %s\n",
				run.Policy, cp.Verdict.Observed, cp.Verdict.ObservedShare*100,
				cp.Verdict.Predicted, cp.Verdict.Agree)
		}
	}
	fmt.Println(res.Table())
	if *report != "" {
		if err := telemetry.WriteJSON(*report, res.Managed.Report); err != nil {
			return err
		}
		staticPath := strings.TrimSuffix(*report, ".json") + ".static.json"
		if err := telemetry.WriteJSON(staticPath, res.Static.Report); err != nil {
			return err
		}
		fmt.Printf("reports: %s (load-managed), %s (static baseline) — compare with lmasreport diff\n",
			*report, staticPath)
	}
	return nil
}

func runCRatio(args []string) error {
	fs := flag.NewFlagSet("cratio", flag.ExitOnError)
	opt := experiments.DefaultCRatioOptions()
	fs.IntVar(&opt.N, "n", opt.N, "input records")
	fs.IntVar(&opt.Alpha, "alpha", opt.Alpha, "distribute order")
	fs.Parse(args)
	res, err := experiments.RunCRatio(opt)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func runGamma(args []string) error {
	fs := flag.NewFlagSet("gamma", flag.ExitOnError)
	opt := experiments.DefaultGammaOptions()
	fs.IntVar(&opt.N, "n", opt.N, "input records")
	fs.Parse(args)
	res, err := experiments.RunGamma(opt)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func runRoutes(args []string) error {
	fs := flag.NewFlagSet("routes", flag.ExitOnError)
	opt := experiments.DefaultRoutingOptions()
	fs.IntVar(&opt.N, "n", opt.N, "input records")
	fs.Parse(args)
	res, err := experiments.RunRouting(opt)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func runRTree(args []string) error {
	fs := flag.NewFlagSet("rtree", flag.ExitOnError)
	opt := experiments.DefaultRTreeOptions()
	fs.IntVar(&opt.Entries, "entries", opt.Entries, "indexed rectangles")
	fs.IntVar(&opt.ASUs, "asus", opt.ASUs, "ASU count")
	fs.Parse(args)
	res, err := experiments.RunRTree(opt)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func runTerra(args []string) error {
	fs := flag.NewFlagSet("terraflow", flag.ExitOnError)
	opt := experiments.DefaultTerraOptions()
	fs.IntVar(&opt.W, "w", opt.W, "grid width")
	fs.IntVar(&opt.H, "h", opt.H, "grid height")
	fs.IntVar(&opt.ASUs, "asus", opt.ASUs, "ASU count")
	fs.Parse(args)
	res, err := experiments.RunTerra(opt)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func runIso(args []string) error {
	fs := flag.NewFlagSet("iso", flag.ExitOnError)
	opt := experiments.DefaultIsolationOptions()
	fs.IntVar(&opt.N, "n", opt.N, "input records")
	fs.Parse(args)
	res, err := experiments.RunIsolation(opt)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func runHybrid(args []string) error {
	fs := flag.NewFlagSet("hybrid", flag.ExitOnError)
	opt := experiments.DefaultHybridOptions()
	fs.IntVar(&opt.N, "n", opt.N, "input records")
	fs.IntVar(&opt.Alpha, "alpha", opt.Alpha, "distribute order")
	fs.Parse(args)
	res, err := experiments.RunHybrid(opt)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func runPacket(args []string) error {
	fs := flag.NewFlagSet("packet", flag.ExitOnError)
	opt := experiments.DefaultPacketOptions()
	fs.IntVar(&opt.N, "n", opt.N, "input records")
	fs.Parse(args)
	res, err := experiments.RunPacket(opt)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func runFilter(args []string) error {
	fs := flag.NewFlagSet("filter", flag.ExitOnError)
	opt := experiments.DefaultFilterOptions()
	fs.IntVar(&opt.N, "n", opt.N, "input records")
	fs.IntVar(&opt.ASUs, "asus", opt.ASUs, "ASU count")
	fs.Parse(args)
	res, err := experiments.RunFilter(opt)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func runAdapt(args []string) error {
	fs := flag.NewFlagSet("adapt", flag.ExitOnError)
	opt := experiments.DefaultAdaptOptions()
	fs.IntVar(&opt.N, "n", opt.N, "input records")
	fs.Parse(args)
	res, err := experiments.RunAdapt(opt)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	for _, cell := range res.Cells {
		for _, d := range cell.Decisions {
			fmt.Printf("decision [%s] t=%.3fs %s: %s (%s)\n",
				cell.Strategy, (sim.Duration(d.T)).Seconds(), d.Source, d.Action, d.Detail)
		}
	}
	return nil
}

func runOnePass(args []string) error {
	fs := flag.NewFlagSet("onepass", flag.ExitOnError)
	opt := experiments.DefaultOnePassOptions()
	fs.IntVar(&opt.Hosts, "hosts", opt.Hosts, "sort-node count")
	fs.Parse(args)
	res, err := experiments.RunOnePass(opt)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}

func runOpenLoop(args []string) error {
	fs := flag.NewFlagSet("openloop", flag.ExitOnError)
	opt := experiments.DefaultOpenLoopOptions()
	fs.IntVar(&opt.Jobs, "jobs", opt.Jobs, "total arrivals")
	fs.Float64Var(&opt.Rate, "rate", opt.Rate, "arrival rate (jobs per virtual second)")
	fs.IntVar(&opt.Hosts, "hosts", opt.Hosts, "host count")
	fs.IntVar(&opt.ASUs, "asus", opt.ASUs, "ASU count")
	fs.Float64Var(&opt.ZipfS, "zipf", opt.ZipfS, "Zipf skew for ASU choice (<=1 uniform)")
	fs.Int64Var(&opt.Seed, "seed", opt.Seed, "workload seed")
	timeoutMs := fs.Float64("timeout", opt.Timeout.Seconds()*1e3,
		"base SLO deadline in virtual ms; the ladder arms horizons 1..deadlines times this")
	report := fs.String("report", "", "write the run's RunReport here (engine-independent: CI cmps serial vs parallel)")
	record := fs.String("record", "", "also stream the run into this run-store directory")
	fs.StringVar(&opt.Experiment, "experiment", opt.Experiment, "experiment label for recorded runs")
	fs.Parse(args)
	opt.Timeout = sim.Duration(*timeoutMs * float64(sim.Millisecond))
	if *record != "" {
		store, err := recorder.OpenStore(*record)
		if err != nil {
			return err
		}
		opt.Record = store
		defer func() {
			if err := store.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "asulab: record store:", err)
			}
		}()
	}
	res, err := experiments.RunOpenLoop(opt)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	if *report != "" {
		if err := telemetry.WriteJSON(*report, res.Report); err != nil {
			return err
		}
		fmt.Printf("report: %s\n", *report)
	}
	return nil
}

// runTrace records a structured trace of one small DSM-Sort run and writes
// it to a file: Chrome trace-event JSON (open in Perfetto or
// chrome://tracing) or, with a .csv output name, a flat time series.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	n := fs.Int("n", 1<<14, "input records")
	asus := fs.Int("asus", 4, "ASU count")
	seed := fs.Int64("seed", 42, "workload seed")
	out := fs.String("o", "dsmsort-trace.json", "output file (.json or .csv)")
	fs.Parse(args)

	params := cluster.DefaultParams()
	params.Hosts, params.ASUs = 1, *asus
	cl := cluster.New(params)
	sink := trace.New()
	cl.AttachTrace(sink)

	in := dsmsort.MakeInput(cl, *n, records.Uniform{}, *seed, 64)
	cfg := dsmsort.Config{Alpha: 8, Beta: 64, Gamma2: 8, PacketRecords: 64,
		Placement: dsmsort.Active, Seed: *seed}
	res, err := dsmsort.Sort(cl, cfg, in)
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if strings.HasSuffix(*out, ".csv") {
		err = sink.WriteCSV(f)
	} else {
		err = sink.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("sorted %d records in %.4fs virtual; %d events on %d tracks -> %s\n",
		*n, res.Elapsed.Seconds(), sink.Events(), sink.Tracks(), *out)
	return nil
}

func runAll() error {
	steps := []struct {
		name string
		fn   func([]string) error
	}{
		{"fig9", runFig9},
		{"fig10", runFig10},
		{"cratio", runCRatio},
		{"gamma", runGamma},
		{"routes", runRoutes},
		{"rtree", runRTree},
		{"terraflow", runTerra},
		{"iso", runIso},
		{"hybrid", runHybrid},
		{"packet", runPacket},
		{"filter", runFilter},
		{"adapt", runAdapt},
		{"onepass", runOnePass},
		{"openloop", runOpenLoop},
	}
	for _, s := range steps {
		fmt.Printf("== %s ==\n", s.name)
		if err := s.fn(nil); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return nil
}
