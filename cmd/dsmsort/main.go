// Command dsmsort runs one configurable DSM-Sort execution on an emulated
// active-storage cluster and reports timing, work split, and validation.
//
//	dsmsort -n 262144 -hosts 1 -asus 16 -c 8 -alpha 16 -beta 64 \
//	        -gamma2 16 -placement active -policy static -dist uniform
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lmas/internal/bufpool"
	"lmas/internal/cluster"
	"lmas/internal/critpath"
	"lmas/internal/dsmsort"
	"lmas/internal/experiments"
	"lmas/internal/prof"
	"lmas/internal/recorder"
	"lmas/internal/route"
	"lmas/internal/sim"
	"lmas/internal/telemetry"
	"lmas/internal/trace"
)

func main() {
	var (
		n         = flag.Int("n", 1<<18, "records to sort")
		hosts     = flag.Int("hosts", 1, "host count")
		asus      = flag.Int("asus", 16, "ASU count")
		c         = flag.Float64("c", 8, "host/ASU power ratio")
		alpha     = flag.Int("alpha", 16, "distribute order")
		beta      = flag.Int("beta", 64, "run length (records)")
		gamma2    = flag.Int("gamma2", 16, "ASU-side merge fan-in")
		packet    = flag.Int("packet", 64, "packet size (records)")
		placement = flag.String("placement", "active", "active|conventional")
		policy    = flag.String("policy", "static", "static|rr|sr|load-aware")
		dist      = flag.String("dist", "uniform", "uniform|exp|zipf|sorted|halves")
		seed      = flag.Int64("seed", 42, "workload seed")
		netMBps   = flag.Float64("net", 0, "per-interface network bandwidth override (MB/s, 0 = default)")
		critflag  = flag.Bool("critpath", false, "attach the critical-path profiler and print the bottleneck verdict")
		progress  = flag.Int("progress", 0, "progress sampling interval in virtual ms (0 = off)")
		traceFile = flag.String("trace", "", "write a structured trace of the run (.json for Perfetto/chrome://tracing, .csv for a flat series)")
		report    = flag.String("report", "", "write a machine-readable RunReport (JSON) of the run")
		cpuprof   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprof   = flag.String("memprofile", "", "write a pprof heap profile to this file")
		engine    = flag.String("engine", "", "sim engine: serial|parallel (default serial; results are identical, parallel only changes wall clock)")
		workers   = flag.Int("workers", 0, "parallel-engine worker goroutines (0 = one per CPU)")
		groups    = flag.Int("groups", 0, "parallel-engine partition groups (0 = shared worker pool)")
		record    = flag.String("record", "", "record the run into this run store directory")
		expName   = flag.String("experiment", "adhoc", "experiment name for the recorded run")
		sampleMs  = flag.Int("sample", 100, "recorder sampling interval in virtual ms")
		gaugeMs   = flag.Int("gauges", 0, "also emit periodic node/queue gauges into the report at this virtual-ms interval (0 = off)")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprof, *memprof)
	if err != nil {
		fail(err)
	}
	defer stopProf()

	params := cluster.DefaultParams()
	params.Hosts, params.ASUs, params.C = *hosts, *asus, *c
	params.Engine, params.EngineWorkers, params.EngineGroups = *engine, *workers, *groups
	if *netMBps > 0 {
		params.NetBandwidth = *netMBps * 1e6
	}
	if err := params.Validate(); err != nil {
		fail(err)
	}
	cl := cluster.New(params)

	var sink *trace.Sink
	if *traceFile != "" {
		sink = trace.New()
		cl.AttachTrace(sink)
	}
	if *report != "" || *record != "" || *gaugeMs > 0 {
		cl.AttachTelemetry(telemetry.NewRegistry(), 0)
	}
	var pf *critpath.Profiler
	if *critflag {
		pf = critpath.New()
		cl.AttachProfiler(pf)
	}
	workload := map[string]any{
		"program":   "dsmsort",
		"n":         *n,
		"alpha":     *alpha,
		"beta":      *beta,
		"gamma2":    *gamma2,
		"packet":    *packet,
		"placement": *placement,
		"policy":    *policy,
		"dist":      *dist,
	}
	var rec recorder.Recorder
	var store *recorder.Store
	if *record != "" {
		store, err = recorder.OpenStore(*record)
		if err != nil {
			fail(err)
		}
		rec = store.NewRun()
		ccfg := cl.Config()
		rec.Begin(&recorder.Header{
			Experiment: *expName,
			Name:       "dsmsort",
			ConfigHash: recorder.ConfigHash(ccfg, workload, *seed),
			Seed:       *seed,
			Config:     ccfg,
			Workload:   workload,
		})
		cl.AttachRecorder(rec, sim.Duration(*sampleMs)*sim.Millisecond)
	}
	if *gaugeMs > 0 {
		cl.AttachPeriodicGauges(sim.Duration(*gaugeMs) * sim.Millisecond)
	}

	in, err := dsmsort.MakeInputNamed(cl, *n, *dist, *seed, *packet)
	if err != nil {
		fail(err)
	}

	pol, err := route.ByName(*policy, *alpha, *seed)
	if err != nil {
		fail(err)
	}
	cfg := dsmsort.Config{
		Alpha:         *alpha,
		Beta:          *beta,
		Gamma2:        *gamma2,
		PacketRecords: *packet,
		SortPolicy:    pol,
		Seed:          *seed,
	}
	switch *placement {
	case "active":
		cfg.Placement = dsmsort.Active
	case "conventional":
		cfg.Placement = dsmsort.Conventional
	default:
		fail(fmt.Errorf("unknown placement %q", *placement))
	}

	if *progress > 0 {
		cfg.ProgressInterval = sim.Duration(*progress) * sim.Millisecond
	}
	res, err := dsmsort.Sort(cl, cfg, in)
	if err != nil {
		fail(err)
	}
	cl.FinishSampling()
	if res.Pass1.Monitor != nil {
		stages := []string{"distribute", "blocksort", "collect"}
		if cfg.Placement == dsmsort.Conventional {
			stages = []string{"host-dist-sort", "writeback"}
		}
		nodes := cl.Hosts
		if len(cl.ASUs) > 0 {
			nodes = append(append([]*cluster.Node{}, cl.Hosts...), cl.ASUs[0])
		}
		fmt.Println(res.Pass1.Monitor.Table(stages, nodes))
	}
	hostOps, asuOps := res.MeasuredWork()
	fmt.Printf("sorted %d records (%s, %s) on %d host(s) + %d ASU(s), c=%g\n",
		*n, *dist, cfg.Placement, *hosts, *asus, *c)
	fmt.Printf("  pass 1 (run formation): %8.4fs   %d runs\n",
		res.Pass1.Elapsed.Seconds(), res.Pass1.Runs)
	fmt.Printf("  pass 2 (merge):         %8.4fs   %d local level(s)\n",
		res.Merge.Elapsed.Seconds(), res.Merge.ASUMergeLevels)
	fmt.Printf("  total:                  %8.4fs\n", res.Elapsed.Seconds())
	fmt.Printf("  work: host %.1f Mops, ASU %.1f Mops (n log(abg) = %.1f M compares)\n",
		hostOps/1e6, asuOps/1e6, cfg.TotalCompares(*n, cfg.Gamma1(*asus))/1e6)
	fmt.Printf("  interconnect: %.1f MB in pass 1\n", float64(res.Pass1.NetBytes)/1e6)
	fmt.Println("  output validated: sorted, complete, uncorrupted")

	if sink != nil {
		if err := writeTrace(sink, *traceFile); err != nil {
			fail(err)
		}
		fmt.Printf("  trace: %d events on %d tracks -> %s\n",
			sink.Events(), sink.Tracks(), *traceFile)
	}
	var cpRep *critpath.Report
	if *report != "" || rec != nil {
		// Pool-health gauges must land in the registry before BuildReport
		// snapshots it. This is a single-run process, so the process-global
		// default pool's counters describe exactly this run.
		cl.Telemetry.FillBufpoolGauges(cl.Sim.Now(), bufpool.ClassStatsSnapshot())
		rep := cl.BuildReport("dsmsort", *seed, res.Elapsed)
		rep.Workload = workload
		cpRep = rep.Critpath
		setPrediction(cpRep, params, cfg)
		if *report != "" {
			if err := telemetry.WriteJSON(*report, rep); err != nil {
				fail(err)
			}
			fmt.Printf("  report: %d counters, %d histograms, %d decisions -> %s\n",
				len(rep.Counters), len(rep.Histograms), len(rep.Decisions), *report)
		}
		if rec != nil {
			rec.Finish(rep)
			if err := store.Err(); err != nil {
				fail(err)
			}
			fmt.Printf("  recorded -> %s (experiment %q)\n", *record, *expName)
		}
	} else if pf != nil {
		cpRep = pf.Report()
		setPrediction(cpRep, params, cfg)
	}
	if cpRep != nil {
		fmt.Printf("  critpath: %d chains, %d charges; bottleneck %s (%.1f%% of per-instance congestion)\n",
			cpRep.Chains, cpRep.Charges, cpRep.Verdict.Observed, cpRep.Verdict.ObservedShare*100)
		if cpRep.Verdict.Predicted != "" {
			fmt.Printf("  critpath: model predicts %s (%.3g rec/s) — agreement: %s\n",
				cpRep.Verdict.Predicted, cpRep.Verdict.PredictedRate, cpRep.Verdict.Agree)
		}
	}
}

// setPrediction stamps the Pass1Model's analytic bottleneck into the critpath
// verdict; a nil report or an uncovered placement leaves it observation-only.
func setPrediction(cp *critpath.Report, params cluster.Params, cfg dsmsort.Config) {
	if cp == nil {
		return
	}
	if rates, ok := experiments.PredictRates(params, cfg.Placement, cfg.Alpha, cfg.Beta); ok {
		cls, rate := rates.Bottleneck()
		cp.SetPrediction(cls, rate)
	}
}

// writeTrace exports the sink to path, as CSV when the extension asks for
// it and Chrome trace-event JSON otherwise.
func writeTrace(sink *trace.Sink, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = sink.WriteCSV(f)
	} else {
		err = sink.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dsmsort:", err)
	os.Exit(1)
}
