package main

import (
	"flag"
	"fmt"
	"time"

	"lmas/internal/experiments"
	"lmas/internal/prof"
	"lmas/internal/telemetry"
)

func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	quick := fs.Bool("quick", false, "small inputs for CI (seconds instead of minutes)")
	out := fs.String("o", "", "output file (default BENCH_<date>.json)")
	seed := fs.Int64("seed", 42, "workload seed shared by every cell")
	jobs := fs.Int("j", 0,
		"max concurrent bench cells (0 = one per CPU); output is identical for every value")
	stamp := fs.Bool("stamp", true,
		"stamp the trajectory with wall-clock time; disable for byte-reproducible baselines")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	engine := fs.String("engine", "", "sim engine for every cell: serial|parallel (output is byte-identical either way)")
	workers := fs.Int("workers", 0, "parallel-engine worker goroutines (0 = one per CPU)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("bench: unexpected argument %q", fs.Arg(0))
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProf()

	tr, err := experiments.RunBenchEngine(*quick, *seed, *jobs, *engine, *workers, func(spec experiments.SortRunSpec) {
		fmt.Printf("bench: %-28s n=%d hosts=%d asus=%d policy=%s dist=%s\n",
			spec.Name, spec.N, spec.Hosts, spec.ASUs, spec.Policy, spec.Dist)
	})
	if err != nil {
		return err
	}
	tr.Quick = *quick
	if *stamp {
		tr.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	}
	if err := telemetry.WriteJSON(path, tr); err != nil {
		return err
	}
	fmt.Printf("bench: %d run(s) -> %s\n", len(tr.Runs), path)
	return nil
}
