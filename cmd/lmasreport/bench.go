package main

import (
	"flag"
	"fmt"
	"net/http"
	"time"

	"lmas/internal/experiments"
	"lmas/internal/prof"
	"lmas/internal/recorder"
	"lmas/internal/sim"
	"lmas/internal/telemetry"
)

func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	quick := fs.Bool("quick", false, "small inputs for CI (seconds instead of minutes)")
	out := fs.String("o", "", "output file (default BENCH_<date>.json)")
	seed := fs.Int64("seed", 42, "workload seed shared by every cell")
	jobs := fs.Int("j", 0,
		"max concurrent bench cells (0 = one per CPU); output is identical for every value")
	stamp := fs.Bool("stamp", true,
		"stamp the trajectory with wall-clock time; disable for byte-reproducible baselines")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	engine := fs.String("engine", "", "sim engine for every cell: serial|parallel (output is byte-identical either way)")
	workers := fs.Int("workers", 0, "parallel-engine worker goroutines (0 = one per CPU)")
	groups := fs.Int("groups", 0, "parallel-engine partition groups (0 = shared worker pool)")
	record := fs.String("record", "", "record every cell into this run store directory")
	experiment := fs.String("experiment", "bench", "experiment name for recorded runs")
	serveAddr := fs.String("serve", "", "serve the live monitoring dashboard on this address while running (blocks after the bench so the page stays up)")
	sampleMs := fs.Int("sample", 100, "recorder sampling interval in virtual-time milliseconds")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("bench: unexpected argument %q", fs.Arg(0))
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProf()

	// Assemble the recorder sink: a store, a live dashboard, or both. The
	// store goes first so the run IDs it assigns are the ones the dashboard
	// shows.
	var sinks recorder.Multi
	var store *recorder.Store
	if *record != "" {
		if store, err = recorder.OpenStore(*record); err != nil {
			return err
		}
		sinks = append(sinks, store)
	}
	var live *recorder.Live
	if *serveAddr != "" {
		live = recorder.NewLive()
		sinks = append(sinks, live)
		srv := &http.Server{Addr: *serveAddr, Handler: live.Handler()}
		go func() {
			if err := srv.ListenAndServe(); err != http.ErrServerClosed {
				fmt.Println("bench: monitor server:", err)
			}
		}()
		fmt.Printf("bench: live monitor on http://%s/\n", *serveAddr)
	}
	opt := experiments.BenchOptions{
		Quick: *quick, Seed: *seed, Jobs: *jobs,
		Engine: *engine, EngineWorkers: *workers, EngineGroups: *groups,
		Experiment:  *experiment,
		SampleEvery: sim.Duration(*sampleMs) * sim.Millisecond,
		Progress: func(spec experiments.SortRunSpec) {
			fmt.Printf("bench: %-28s n=%d hosts=%d asus=%d policy=%s dist=%s\n",
				spec.Name, spec.N, spec.Hosts, spec.ASUs, spec.Policy, spec.Dist)
		},
	}
	if len(sinks) > 0 {
		opt.Record = sinks
	}

	tr, err := experiments.RunBenchWith(opt)
	if err != nil {
		return err
	}
	tr.Quick = *quick
	if *stamp {
		tr.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	}
	if err := telemetry.WriteJSON(path, tr); err != nil {
		return err
	}
	fmt.Printf("bench: %d run(s) -> %s\n", len(tr.Runs), path)
	if store != nil {
		if err := store.Err(); err != nil {
			return fmt.Errorf("bench: run store: %w", err)
		}
		fmt.Printf("bench: %d run(s) recorded in %s (experiment %q)\n",
			len(tr.Runs), *record, *experiment)
	}
	if live != nil {
		fmt.Printf("bench: monitor still serving on http://%s/ — interrupt to exit\n", *serveAddr)
		select {}
	}
	return nil
}
