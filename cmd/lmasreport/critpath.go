package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"lmas/internal/critpath"
	"lmas/internal/metrics"
	"lmas/internal/plot"
	"lmas/internal/telemetry"
)

// runCritpath renders the latency-attribution section of a report: the
// bottleneck verdict, the critical path's class shares, and the full
// per-stage × per-node waterfall. It exits non-zero when the report has no
// critpath section or the waterfall is empty, so CI can gate on it.
func runCritpath(args []string) error {
	fs := flag.NewFlagSet("critpath", flag.ExitOnError)
	svgOut := fs.String("svg", "", "write a per-node stacked attribution SVG")
	slo := fs.Bool("slo", false, "render the SLO deadline ladder with per-horizon miss blame")
	files := parseMixed(fs, args)
	if len(files) != 1 {
		return fmt.Errorf("critpath: want exactly one report file, have %d", len(files))
	}
	tr, err := telemetry.ReadFile(files[0])
	if err != nil {
		return err
	}
	if *slo {
		shown := 0
		for _, rep := range tr.Runs {
			if rep.SLO == nil {
				continue
			}
			if shown > 0 {
				fmt.Println()
			}
			showSLO(rep)
			shown++
		}
		if shown == 0 {
			return fmt.Errorf("critpath: %s has no slo section (open-loop runs export one)", files[0])
		}
		return nil
	}
	shown := 0
	var svgRep *telemetry.RunReport
	for _, rep := range tr.Runs {
		if rep.Critpath == nil {
			continue
		}
		if len(rep.Critpath.Waterfall) == 0 {
			return fmt.Errorf("critpath: run %q has an empty attribution waterfall", rep.Name)
		}
		if shown > 0 {
			fmt.Println()
		}
		showCritpath(rep)
		shown++
		svgRep = rep
	}
	if shown == 0 {
		return fmt.Errorf("critpath: %s has no critpath section (was the run made with -critpath?)", files[0])
	}
	if *svgOut != "" {
		if shown != 1 {
			return fmt.Errorf("critpath: -svg needs a single profiled run, file has %d", shown)
		}
		svg := critpathSVG(svgRep)
		if err := os.WriteFile(*svgOut, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("attribution plot -> %s\n", *svgOut)
	}
	return nil
}

func showCritpath(rep *telemetry.RunReport) {
	cp := rep.Critpath
	v := cp.Verdict
	fmt.Printf("Run %q: %d chains, %d charges\n", rep.Name, cp.Chains, cp.Charges)
	fmt.Printf("  observed bottleneck:  %s (%.1f%% of per-instance congestion)\n",
		v.Observed, v.ObservedShare*100)
	if v.Predicted != "" {
		fmt.Printf("  predicted bottleneck: %s (%.4g rec/s limiting) — agreement: %s\n",
			v.Predicted, v.PredictedRate, v.Agree)
	}

	if len(cp.Blame) > 0 {
		t := metrics.NewTable("Blame: attributed packet latency across all chains",
			"class", "time(s)", "share", "instances", "per-instance(s)")
		for _, c := range cp.Blame {
			if c.Ns == 0 {
				continue
			}
			per := "-"
			if c.Instances > 0 {
				per = fmt.Sprintf("%.4f", sec(c.Ns)/float64(c.Instances))
			}
			t.AddRow(c.Class, fmt.Sprintf("%.4f", sec(c.Ns)),
				fmt.Sprintf("%.1f%%", c.Share*100), c.Instances, per)
		}
		fmt.Println(t)
	}

	p := cp.Path
	t := metrics.NewTable(
		fmt.Sprintf("Critical path: %d hop(s), span %.4fs (%.4fs attributed, %.4fs gap)",
			p.Hops, sec(p.SpanNs), sec(p.AttributedNs), sec(p.GapNs)),
		"class", "time(s)", "share")
	for _, c := range p.Classes {
		if c.Ns == 0 {
			continue
		}
		t.AddRow(c.Class, fmt.Sprintf("%.6f", sec(c.Ns)), fmt.Sprintf("%.1f%%", c.Share*100))
	}
	fmt.Println(t)

	t = metrics.NewTable("Attribution waterfall (seconds of virtual time)",
		"stage", "node", "cpu", "disk", "net", "queue-wait", "cond-wait", "total")
	for _, w := range cp.Waterfall {
		t.AddRow(w.Stage, w.Node,
			fmt.Sprintf("%.4f", sec(w.CPUNs)), fmt.Sprintf("%.4f", sec(w.DiskNs)),
			fmt.Sprintf("%.4f", sec(w.NetNs)), fmt.Sprintf("%.4f", sec(w.QueueWaitNs)),
			fmt.Sprintf("%.4f", sec(w.CondWaitNs)), fmt.Sprintf("%.4f", sec(w.TotalNs())))
	}
	fmt.Println(t)
}

func sec(ns int64) float64 { return float64(ns) / 1e9 }

// kindSegments is the stacked-bar order and ink for the five charge kinds;
// color follows the kind across every bar.
var kindSegments = []struct {
	name  string
	color string
	ns    func(critpath.WaterfallRow) int64
}{
	{"cpu", plot.SeriesColors[0], func(w critpath.WaterfallRow) int64 { return w.CPUNs }},
	{"disk", plot.SeriesColors[1], func(w critpath.WaterfallRow) int64 { return w.DiskNs }},
	{"net", plot.SeriesColors[2], func(w critpath.WaterfallRow) int64 { return w.NetNs }},
	{"queue-wait", plot.SeriesColors[3], func(w critpath.WaterfallRow) int64 { return w.QueueWaitNs }},
	{"cond-wait", plot.SeriesColors[4], func(w critpath.WaterfallRow) int64 { return w.CondWaitNs }},
}

// critpathSVG renders one stacked horizontal bar per node: where that node's
// procs spent their attributed virtual time, by charge kind. Nodes follow the
// report's node order (hosts first), so the plot lines up with the
// utilization tables.
func critpathSVG(rep *telemetry.RunReport) string {
	byNode := make(map[string]critpath.WaterfallRow)
	for _, w := range rep.Critpath.Waterfall {
		agg := byNode[w.Node]
		agg.Node = w.Node
		agg.CPUNs += w.CPUNs
		agg.DiskNs += w.DiskNs
		agg.NetNs += w.NetNs
		agg.QueueWaitNs += w.QueueWaitNs
		agg.CondWaitNs += w.CondWaitNs
		byNode[w.Node] = agg
	}
	var order []string
	for _, n := range rep.Nodes {
		if _, ok := byNode[n.Name]; ok {
			order = append(order, n.Name)
		}
	}
	// Nodes the report section missed (raw-proc stages on unlisted nodes)
	// follow in name order so every waterfall row is represented.
	var extra []string
	for name := range byNode {
		seen := false
		for _, o := range order {
			if o == name {
				seen = true
				break
			}
		}
		if !seen {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	order = append(order, extra...)

	maxNs := int64(1)
	for _, name := range order {
		if t := byNode[name].TotalNs(); t > maxNs {
			maxNs = t
		}
	}

	rowH, gap := 22, 8
	topH := plot.PadT + 10
	h := topH + len(order)*(rowH+gap) + plot.PadB
	plotW := float64(plot.W - plot.PadL - plot.PadR)

	var b strings.Builder
	plot.Open(&b, plot.W, h)
	plot.Title(&b, fmt.Sprintf("Latency attribution by node — run %q", rep.Name))

	for i, name := range order {
		w := byNode[name]
		y := topH + i*(rowH+gap)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="%s" text-anchor="end">%s</text>`+"\n",
			plot.PadL-8, y+rowH/2+4, plot.InkSecond, name)
		x := float64(plot.PadL)
		for _, seg := range kindSegments {
			ns := seg.ns(w)
			if ns == 0 {
				continue
			}
			wd := float64(ns) / float64(maxNs) * plotW
			fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"/>`+"\n",
				x, y, wd, rowH, seg.color)
			x += wd
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" fill="%s">%.3fs</text>`+"\n",
			x+6, y+rowH/2+4, plot.InkMuted, sec(w.TotalNs()))
	}

	lx, ly := plot.W-plot.PadR+14, topH
	for i, seg := range kindSegments {
		plot.LegendSwatch(&b, lx, ly+i*18, seg.color, seg.name)
	}
	plot.Close(&b)
	return b.String()
}
