package main

import (
	"flag"
	"fmt"
	"os"

	"lmas/internal/metrics"
	"lmas/internal/recorder"
	"lmas/internal/telemetry"
)

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	rt := fs.Float64("runtime-threshold", telemetry.DefaultDiffOptions().RuntimeThreshold,
		"relative runtime growth that counts as a regression")
	p99 := fs.Float64("p99-threshold", 0,
		"relative p99 latency growth that counts as a regression (0 = informational only)")
	quiet := fs.Bool("q", false, "print only regressions and the verdict")
	store := fs.String("store", "",
		"read BASE and NEW as experiment names from this run store instead of report files")
	names := parseMixed(fs, args)
	if len(names) != 2 {
		if *store != "" {
			return fmt.Errorf("diff: want BASE and NEW experiment names, have %d arg(s)", len(names))
		}
		return fmt.Errorf("diff: want BASE and NEW report files, have %d arg(s)", len(names))
	}
	var base, next *telemetry.Trajectory
	if *store != "" {
		st, err := openStoreRead(*store)
		if err != nil {
			return err
		}
		if base, err = storeTrajectory(st, names[0]); err != nil {
			return err
		}
		if next, err = storeTrajectory(st, names[1]); err != nil {
			return err
		}
	} else {
		var err error
		if base, err = telemetry.ReadFile(names[0]); err != nil {
			return fmt.Errorf("base: %w", err)
		}
		if next, err = telemetry.ReadFile(names[1]); err != nil {
			return fmt.Errorf("new: %w", err)
		}
	}

	res := telemetry.Diff(base, next, telemetry.DiffOptions{
		RuntimeThreshold: *rt,
		P99Threshold:     *p99,
	})
	if n := renderDiff(res, names[0], names[1], *quiet); n > 0 {
		fmt.Fprintf(os.Stderr, "lmasreport diff: %d regression(s) past threshold\n", n)
		os.Exit(1)
	}
	fmt.Println("no regressions past thresholds")
	return nil
}

// renderDiff prints the comparison table and any missing-run notes, and
// returns the number of regressions past threshold. Shared by `diff` and
// `query gate` so the store-backed verdict is computed by exactly the same
// code as the file-based CI gate.
func renderDiff(res *telemetry.DiffResult, from, to string, quiet bool) int {
	shown := 0
	t := metrics.NewTable(fmt.Sprintf("Diff %s -> %s", from, to),
		"run", "field", "base", "new", "delta", "verdict")
	for _, e := range res.Entries {
		if quiet && !e.Regressed {
			continue
		}
		verdict := "ok"
		if e.Regressed {
			verdict = "REGRESSED"
		} else if e.Note != "" {
			verdict = e.Note
		}
		t.AddRow(e.Run, e.Field,
			fmt.Sprintf("%.6g", e.Base), fmt.Sprintf("%.6g", e.New),
			fmt.Sprintf("%+.1f%%", e.Delta*100), verdict)
		shown++
	}
	if shown > 0 {
		fmt.Println(t)
	}
	for _, m := range res.Missing {
		fmt.Println(m)
	}
	regs := 0
	for _, e := range res.Entries {
		if e.Regressed {
			regs++
		}
	}
	return regs
}

// openStoreRead opens an existing run store without creating it — reads
// against a mistyped path should fail loudly, not conjure an empty store.
func openStoreRead(dir string) (*recorder.Store, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("run store %s: %w", dir, err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("run store %s: not a directory", dir)
	}
	return &recorder.Store{Dir: dir}, nil
}

// storeTrajectory selects an experiment's finished runs as a trajectory,
// failing when the selection is empty (an empty side would make the gate
// vacuously pass).
func storeTrajectory(st *recorder.Store, experiment string) (*telemetry.Trajectory, error) {
	runs, err := st.Select(experiment)
	if err != nil {
		return nil, err
	}
	tr := recorder.TrajectoryOf(runs)
	if len(tr.Runs) == 0 {
		return nil, fmt.Errorf("run store %s: no finished runs for experiment %q", st.Dir, experiment)
	}
	return tr, nil
}
