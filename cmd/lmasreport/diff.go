package main

import (
	"flag"
	"fmt"
	"os"

	"lmas/internal/metrics"
	"lmas/internal/telemetry"
)

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	rt := fs.Float64("runtime-threshold", telemetry.DefaultDiffOptions().RuntimeThreshold,
		"relative runtime growth that counts as a regression")
	p99 := fs.Float64("p99-threshold", 0,
		"relative p99 latency growth that counts as a regression (0 = informational only)")
	quiet := fs.Bool("q", false, "print only regressions and the verdict")
	files := parseMixed(fs, args)
	if len(files) != 2 {
		return fmt.Errorf("diff: want BASE and NEW report files, have %d arg(s)", len(files))
	}
	base, err := telemetry.ReadFile(files[0])
	if err != nil {
		return fmt.Errorf("base: %w", err)
	}
	next, err := telemetry.ReadFile(files[1])
	if err != nil {
		return fmt.Errorf("new: %w", err)
	}

	res := telemetry.Diff(base, next, telemetry.DiffOptions{
		RuntimeThreshold: *rt,
		P99Threshold:     *p99,
	})

	shown := 0
	t := metrics.NewTable(fmt.Sprintf("Diff %s -> %s", files[0], files[1]),
		"run", "field", "base", "new", "delta", "verdict")
	for _, e := range res.Entries {
		if *quiet && !e.Regressed {
			continue
		}
		verdict := "ok"
		if e.Regressed {
			verdict = "REGRESSED"
		} else if e.Note != "" {
			verdict = e.Note
		}
		t.AddRow(e.Run, e.Field,
			fmt.Sprintf("%.6g", e.Base), fmt.Sprintf("%.6g", e.New),
			fmt.Sprintf("%+.1f%%", e.Delta*100), verdict)
		shown++
	}
	if shown > 0 {
		fmt.Println(t)
	}
	for _, m := range res.Missing {
		fmt.Println(m)
	}

	if res.Regressed() {
		n := 0
		for _, e := range res.Entries {
			if e.Regressed {
				n++
			}
		}
		fmt.Fprintf(os.Stderr, "lmasreport diff: %d regression(s) past threshold\n", n)
		os.Exit(1)
	}
	fmt.Println("no regressions past thresholds")
	return nil
}
