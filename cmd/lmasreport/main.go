// Command lmasreport inspects and compares the machine-readable RunReports
// the emulator emits (dsmsort -report, asulab fig10 -report), turning the
// paper's "compare two runs" methodology into a repeatable CLI:
//
//	lmasreport show  run.json [-svg util.svg] [-all]
//	lmasreport critpath run.json [-svg attr.svg]
//	lmasreport diff  base.json new.json [-runtime-threshold 0.10] [-p99-threshold T]
//	lmasreport bench [-quick] [-o FILE] [-seed S] [-record DIR] [-serve ADDR]
//	lmasreport query STORE {list|show|metric|gate|import} ...
//	lmasreport serve STORE [-addr A]
//
// show renders paper-style tables (config, runtime, per-node utilization,
// counters, latency quantiles, the load-manager decision log) and can plot
// a Figure-10-style utilization-versus-time SVG. diff compares two reports
// or bench trajectories field by field and exits non-zero when a gated
// field regresses past its threshold — the CI regression gate. bench runs
// the standard DSM-Sort matrix and writes one trajectory point; with
// -record it also streams every cell into a queryable run store, and with
// -serve it hosts the live monitoring dashboard while the sweep runs.
// query filters, aggregates, and compares stored runs (gate reproduces the
// bench regression verdict from store records alone); serve replays stored
// runs into the same dashboard.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "show":
		err = runShow(args)
	case "critpath":
		err = runCritpath(args)
	case "diff":
		err = runDiff(args)
	case "bench":
		err = runBench(args)
	case "query":
		err = runQuery(args)
	case "trend":
		err = runTrend(args)
	case "serve":
		err = runServe(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lmasreport: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmasreport:", err)
		os.Exit(1)
	}
}

// parseMixed parses args with fs, allowing flags to appear after positional
// arguments (the stdlib flag package stops at the first non-flag). Returns
// the positionals in order.
func parseMixed(fs *flag.FlagSet, args []string) []string {
	var pos []string
	fs.Parse(args)
	for fs.NArg() > 0 {
		rest := fs.Args()
		pos = append(pos, rest[0])
		fs.Parse(rest[1:])
	}
	return pos
}

func usage() {
	fmt.Fprintln(os.Stderr, `lmasreport — inspect and compare emulator run reports

commands:
  show  FILE [-svg OUT.svg] [-all]     render a report as tables (+ utilization plot)
  critpath FILE [-svg OUT.svg] [-slo]  latency attribution: bottleneck verdict,
                                       critical path, per-stage waterfall;
                                       -slo renders the deadline ladder with
                                       per-horizon miss blame instead
  diff  BASE NEW [-runtime-threshold R] [-p99-threshold P] [-q]
                                       field-by-field comparison; exit 1 on regression
  bench [-quick] [-o FILE] [-seed S] [-stamp=false]
        [-record DIR] [-serve ADDR] [-experiment E] [-sample MS]
                                       run the DSM-Sort matrix, write a trajectory point;
                                       optionally record runs and serve the live dashboard
  query STORE list   [-experiment E]   enumerate recorded runs
  query STORE show   RUN-ID            render one stored run's report
  query STORE metric NAME [-experiment E]
                                       one instrument across stored runs
  query STORE gate   -base EXP -new EXP [-runtime-threshold R] [-p99-threshold P]
                                       bench regression gate from store records; exit 1 on regression
  query STORE import FILE -experiment E
                                       load a report/trajectory file into the store
  query STORE trace  [RUN-ID ...] [-experiment E] [-o OUT.json]
                                       compose stored trace spans into Perfetto JSON
  query STORE prune  -keep N [-dry-run]
                                       delete the oldest segments beyond the newest N
  trend STORE -metric NAME [-experiment E] [-name CELL] [-svg OUT.svg]
                                       one metric across stored runs grouped by git_rev
  serve STORE-or-FILE [-addr A] [-experiment E]
                                       replay stored runs into the monitoring dashboard`)
}
