// Command lmasreport inspects and compares the machine-readable RunReports
// the emulator emits (dsmsort -report, asulab fig10 -report), turning the
// paper's "compare two runs" methodology into a repeatable CLI:
//
//	lmasreport show  run.json [-svg util.svg] [-all]
//	lmasreport critpath run.json [-svg attr.svg]
//	lmasreport diff  base.json new.json [-runtime-threshold 0.10] [-p99-threshold T]
//	lmasreport bench [-quick] [-o FILE] [-seed S]
//
// show renders paper-style tables (config, runtime, per-node utilization,
// counters, latency quantiles, the load-manager decision log) and can plot
// a Figure-10-style utilization-versus-time SVG. diff compares two reports
// or bench trajectories field by field and exits non-zero when a gated
// field regresses past its threshold — the CI regression gate. bench runs
// the standard DSM-Sort matrix and writes one trajectory point.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "show":
		err = runShow(args)
	case "critpath":
		err = runCritpath(args)
	case "diff":
		err = runDiff(args)
	case "bench":
		err = runBench(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lmasreport: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmasreport:", err)
		os.Exit(1)
	}
}

// parseMixed parses args with fs, allowing flags to appear after positional
// arguments (the stdlib flag package stops at the first non-flag). Returns
// the positionals in order.
func parseMixed(fs *flag.FlagSet, args []string) []string {
	var pos []string
	fs.Parse(args)
	for fs.NArg() > 0 {
		rest := fs.Args()
		pos = append(pos, rest[0])
		fs.Parse(rest[1:])
	}
	return pos
}

func usage() {
	fmt.Fprintln(os.Stderr, `lmasreport — inspect and compare emulator run reports

commands:
  show  FILE [-svg OUT.svg] [-all]     render a report as tables (+ utilization plot)
  critpath FILE [-svg OUT.svg]         latency attribution: bottleneck verdict,
                                       critical path, per-stage waterfall
  diff  BASE NEW [-runtime-threshold R] [-p99-threshold P] [-q]
                                       field-by-field comparison; exit 1 on regression
  bench [-quick] [-o FILE] [-seed S] [-stamp=false]
                                       run the DSM-Sort matrix, write a trajectory point`)
}
