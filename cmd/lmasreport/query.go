package main

import (
	"flag"
	"fmt"
	"os"

	"lmas/internal/metrics"
	"lmas/internal/recorder"
	"lmas/internal/telemetry"
)

// runQuery answers questions against a run store:
//
//	lmasreport query STORE list   [-experiment E]
//	lmasreport query STORE show   RUN-ID
//	lmasreport query STORE metric NAME [-experiment E]
//	lmasreport query STORE gate   -base EXP -new EXP [thresholds]
//	lmasreport query STORE import FILE -experiment E
//
// list enumerates runs; show renders one stored run with the same tables as
// `show`; metric pulls one instrument across runs (the "which config
// regressed MergePass p99?" query); gate reruns the bench regression gate
// from store records alone; import loads an existing report/trajectory file
// into the store so committed baselines are queryable.
func runQuery(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("query: want STORE and a subcommand (list|show|metric|gate|import|trace|prune)")
	}
	dir, sub, rest := args[0], args[1], args[2:]
	switch sub {
	case "list":
		return queryList(dir, rest)
	case "show":
		return queryShow(dir, rest)
	case "metric":
		return queryMetric(dir, rest)
	case "gate":
		return queryGate(dir, rest)
	case "import":
		return queryImport(dir, rest)
	case "trace":
		return queryTrace(dir, rest)
	case "prune":
		return queryPrune(dir, rest)
	}
	return fmt.Errorf("query: unknown subcommand %q", sub)
}

func queryList(dir string, args []string) error {
	fs := flag.NewFlagSet("query list", flag.ExitOnError)
	exp := fs.String("experiment", "", "only this experiment")
	if pos := parseMixed(fs, args); len(pos) != 0 {
		return fmt.Errorf("query list: unexpected argument %q", pos[0])
	}
	st, err := openStoreRead(dir)
	if err != nil {
		return err
	}
	runs, err := st.Runs()
	if err != nil {
		return err
	}
	t := metrics.NewTable(fmt.Sprintf("Run store %s", dir),
		"run", "experiment", "name", "started", "config", "rev", "runtime(s)", "samples", "state")
	shown := 0
	for _, run := range runs {
		h := run.Header
		if *exp != "" && h.Experiment != *exp {
			continue
		}
		runtime, state := "-", "unfinished"
		if rep := run.Report(); rep != nil {
			runtime = fmt.Sprintf("%.4f", rep.RuntimeSec)
			state = "finished"
		}
		t.AddRow(h.RunID, h.Experiment, h.Name, h.StartedAt, h.ConfigHash, h.GitRev,
			runtime, len(run.Samples()), state)
		shown++
	}
	if shown == 0 {
		return fmt.Errorf("query list: no matching runs in %s", dir)
	}
	fmt.Println(t)
	return nil
}

func queryShow(dir string, args []string) error {
	fs := flag.NewFlagSet("query show", flag.ExitOnError)
	pos := parseMixed(fs, args)
	if len(pos) != 1 {
		return fmt.Errorf("query show: want exactly one RUN-ID")
	}
	st, err := openStoreRead(dir)
	if err != nil {
		return err
	}
	runs, err := st.Runs()
	if err != nil {
		return err
	}
	for _, run := range runs {
		if run.Header.RunID != pos[0] {
			continue
		}
		h := run.Header
		fmt.Printf("run %s  experiment=%s  config=%s  rev=%s  started=%s\n",
			h.RunID, h.Experiment, h.ConfigHash, h.GitRev, h.StartedAt)
		fmt.Printf("records: %d samples, %d events\n\n", len(run.Samples()), len(run.Events()))
		rep := run.Report()
		if rep == nil {
			return fmt.Errorf("query show: run %s never finished (no report record)", pos[0])
		}
		showReport(rep)
		return nil
	}
	return fmt.Errorf("query show: no run %q in %s", pos[0], dir)
}

func queryMetric(dir string, args []string) error {
	fs := flag.NewFlagSet("query metric", flag.ExitOnError)
	exp := fs.String("experiment", "", "only this experiment")
	pos := parseMixed(fs, args)
	if len(pos) != 1 {
		return fmt.Errorf("query metric: want exactly one instrument name")
	}
	name := pos[0]
	st, err := openStoreRead(dir)
	if err != nil {
		return err
	}
	runs, err := st.Select(*exp)
	if err != nil {
		return err
	}
	t := metrics.NewTable(fmt.Sprintf("Metric %s", name),
		"experiment", "run", "kind", "value", "p50", "p99")
	shown := 0
	for _, run := range runs {
		rep := run.Report()
		if rep == nil {
			continue
		}
		if kind, v, p50, p99, ok := metricOf(rep, name); ok {
			p50s, p99s := "-", "-"
			if kind == "histogram" || kind == "latency" {
				p50s = fmt.Sprintf("%.6g", p50)
				p99s = fmt.Sprintf("%.6g", p99)
			}
			t.AddRow(run.Header.Experiment, run.Header.Name, kind,
				fmt.Sprintf("%.6g", v), p50s, p99s)
			shown++
		}
	}
	if shown == 0 {
		return fmt.Errorf("query metric: no stored run has an instrument %q", name)
	}
	fmt.Println(t)
	return nil
}

// metricOf resolves name against a report's instruments: counters report
// their value, gauges their final sample, histograms their count plus
// latency quantiles.
func metricOf(rep *telemetry.RunReport, name string) (kind string, v, p50, p99 float64, ok bool) {
	if name == "runtime_sec" {
		return "runtime", rep.RuntimeSec, 0, 0, true
	}
	for _, c := range rep.Counters {
		if c.Name == name {
			return "counter", float64(c.Value), 0, 0, true
		}
	}
	for _, g := range rep.Gauges {
		if g.Name == name && len(g.Samples) > 0 {
			return "gauge", g.Samples[len(g.Samples)-1].V, 0, 0, true
		}
	}
	for _, h := range rep.Histograms {
		if h.Name == name {
			return "histogram", float64(h.Count), h.P50, h.P99, true
		}
	}
	for _, l := range rep.Latencies {
		if l.Name == name {
			return "latency", float64(l.Count),
				float64(l.P50Ns) / 1e9, float64(l.P99Ns) / 1e9, true
		}
	}
	return "", 0, 0, 0, false
}

// queryTrace composes the stored trace spans of one or more runs into a
// single Chrome trace-event JSON file, loadable in Perfetto — the cross-run
// view a per-run trace file cannot give. With explicit RUN-IDs only those
// runs contribute (in the order given); otherwise every run in the store (or
// the selected experiment) that recorded spans does.
func queryTrace(dir string, args []string) error {
	fs := flag.NewFlagSet("query trace", flag.ExitOnError)
	exp := fs.String("experiment", "", "only this experiment (ignored with explicit RUN-IDs)")
	out := fs.String("o", "", "output file (default stdout)")
	ids := parseMixed(fs, args)
	st, err := openStoreRead(dir)
	if err != nil {
		return err
	}
	runs, err := st.Runs()
	if err != nil {
		return err
	}
	var chosen []*recorder.RunRecord
	if len(ids) > 0 {
		byID := make(map[string]*recorder.RunRecord, len(runs))
		for _, run := range runs {
			byID[run.Header.RunID] = run
		}
		for _, id := range ids {
			run, ok := byID[id]
			if !ok {
				return fmt.Errorf("query trace: no run %q in %s", id, dir)
			}
			chosen = append(chosen, run)
		}
	} else {
		for _, run := range runs {
			if *exp != "" && run.Header.Experiment != *exp {
				continue
			}
			if len(run.Spans()) > 0 {
				chosen = append(chosen, run)
			}
		}
	}
	spans := 0
	for _, run := range chosen {
		spans += len(run.Spans())
	}
	if spans == 0 {
		return fmt.Errorf("query trace: no stored spans (record runs with tracing attached, e.g. dsmsort -trace -record)")
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := recorder.ComposeTrace(w, chosen); err != nil {
		return err
	}
	if *out != "" {
		fmt.Printf("query trace: %d span(s) from %d run(s) -> %s\n", spans, len(chosen), *out)
	}
	return nil
}

// queryPrune applies the store's retention policy: keep the newest -keep
// runs (by header start time, run ID tiebreak) and delete the rest. -dry-run
// lists the victims without touching any file.
func queryPrune(dir string, args []string) error {
	fs := flag.NewFlagSet("query prune", flag.ExitOnError)
	keep := fs.Int("keep", -1, "number of newest runs to keep (required)")
	dry := fs.Bool("dry-run", false, "list what would be pruned without deleting")
	if pos := parseMixed(fs, args); len(pos) != 0 {
		return fmt.Errorf("query prune: unexpected argument %q", pos[0])
	}
	if *keep < 0 {
		return fmt.Errorf("query prune: -keep N is required")
	}
	st, err := openStoreRead(dir)
	if err != nil {
		return err
	}
	victims, err := st.Prune(*keep, *dry)
	if err != nil {
		return err
	}
	verb := "pruned"
	if *dry {
		verb = "would prune"
	}
	for _, run := range victims {
		h := run.Header
		fmt.Printf("%s %s (experiment=%s started=%s)\n", verb, h.RunID, h.Experiment, h.StartedAt)
	}
	fmt.Printf("query prune: %s %d run(s), kept newest %d\n", verb, len(victims), *keep)
	return nil
}

func queryGate(dir string, args []string) error {
	fs := flag.NewFlagSet("query gate", flag.ExitOnError)
	base := fs.String("base", "", "baseline experiment name")
	next := fs.String("new", "", "candidate experiment name")
	rt := fs.Float64("runtime-threshold", telemetry.DefaultDiffOptions().RuntimeThreshold,
		"relative runtime growth that counts as a regression")
	p99 := fs.Float64("p99-threshold", 0,
		"relative p99 latency growth that counts as a regression (0 = informational only)")
	quiet := fs.Bool("q", false, "print only regressions and the verdict")
	if pos := parseMixed(fs, args); len(pos) != 0 {
		return fmt.Errorf("query gate: unexpected argument %q", pos[0])
	}
	if *base == "" || *next == "" {
		return fmt.Errorf("query gate: -base and -new experiment names are required")
	}
	st, err := openStoreRead(dir)
	if err != nil {
		return err
	}
	baseTr, err := storeTrajectory(st, *base)
	if err != nil {
		return err
	}
	newTr, err := storeTrajectory(st, *next)
	if err != nil {
		return err
	}
	res := telemetry.Diff(baseTr, newTr, telemetry.DiffOptions{
		RuntimeThreshold: *rt,
		P99Threshold:     *p99,
	})
	if n := renderDiff(res, *base, *next, *quiet); n > 0 {
		fmt.Fprintf(os.Stderr, "lmasreport query gate: %d regression(s) past threshold\n", n)
		os.Exit(1)
	}
	fmt.Println("no regressions past thresholds")
	return nil
}

func queryImport(dir string, args []string) error {
	fs := flag.NewFlagSet("query import", flag.ExitOnError)
	exp := fs.String("experiment", "", "experiment name for the imported runs (required)")
	pos := parseMixed(fs, args)
	if len(pos) != 1 {
		return fmt.Errorf("query import: want exactly one report/trajectory file")
	}
	if *exp == "" {
		return fmt.Errorf("query import: -experiment is required")
	}
	tr, err := telemetry.ReadFile(pos[0])
	if err != nil {
		return err
	}
	st, err := recorder.OpenStore(dir)
	if err != nil {
		return err
	}
	for _, rep := range tr.Runs {
		rec := st.NewRun()
		rec.Begin(&recorder.Header{
			Experiment: *exp,
			Name:       rep.Name,
			ConfigHash: recorder.ConfigHash(rep.Config, rep.Workload, rep.Seed),
			Seed:       rep.Seed,
			Config:     rep.Config,
			Workload:   rep.Workload,
		})
		rec.Finish(rep)
	}
	if err := st.Err(); err != nil {
		return err
	}
	fmt.Printf("query import: %d run(s) from %s -> %s as experiment %q\n",
		len(tr.Runs), pos[0], dir, *exp)
	return nil
}
