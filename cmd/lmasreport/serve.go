package main

import (
	"flag"
	"fmt"
	"net/http"

	"lmas/internal/recorder"
)

// runServe replays stored runs into the live dashboard: point it at a run
// store (or a single segment file) and browse the same UI a live bench
// serves, backed by the recorded samples, events, and verdicts.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8070", "listen address")
	exp := fs.String("experiment", "", "only replay runs of this experiment")
	pos := parseMixed(fs, args)
	if len(pos) != 1 {
		return fmt.Errorf("serve: want exactly one run store directory or segment file")
	}

	var runs []*recorder.RunRecord
	if st, err := openStoreRead(pos[0]); err == nil {
		if runs, err = st.Runs(); err != nil {
			return err
		}
	} else if run, ferr := recorder.LoadRun(pos[0]); ferr == nil {
		runs = []*recorder.RunRecord{run}
	} else {
		return fmt.Errorf("serve: %s is neither a run store (%v) nor a segment (%v)", pos[0], err, ferr)
	}

	live := recorder.NewLive()
	replayed := 0
	for _, run := range runs {
		if *exp != "" && run.Header.Experiment != *exp {
			continue
		}
		run.Replay(live.NewRun())
		replayed++
	}
	if replayed == 0 {
		return fmt.Errorf("serve: no matching runs in %s", pos[0])
	}
	fmt.Printf("serve: %d run(s) from %s on http://%s/\n", replayed, pos[0], *addr)
	return http.ListenAndServe(*addr, live.Handler())
}
