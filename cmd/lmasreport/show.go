package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"lmas/internal/metrics"
	"lmas/internal/sim"
	"lmas/internal/telemetry"
)

func runShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	svgOut := fs.String("svg", "", "write a utilization-vs-time SVG plot (Figure-10 style)")
	all := fs.Bool("all", false, "plot every node CPU, not just hosts (capped at 8 series)")
	files := parseMixed(fs, args)
	if len(files) != 1 {
		return fmt.Errorf("show: want exactly one report file, have %d", len(files))
	}
	tr, err := telemetry.ReadFile(files[0])
	if err != nil {
		return err
	}
	for i, rep := range tr.Runs {
		if i > 0 {
			fmt.Println()
		}
		showReport(rep)
	}
	if *svgOut != "" {
		if len(tr.Runs) != 1 {
			return fmt.Errorf("show: -svg needs a single-run report, file has %d runs", len(tr.Runs))
		}
		svg, err := utilSVG(tr.Runs[0], *all)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*svgOut, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("utilization plot -> %s\n", *svgOut)
	}
	return nil
}

func showReport(rep *telemetry.RunReport) {
	cfg := rep.Config
	t := metrics.NewTable(fmt.Sprintf("Run %q (seed %d)", rep.Name, rep.Seed), "field", "value")
	t.AddRow("runtime", fmt.Sprintf("%.4fs", rep.RuntimeSec))
	t.AddRow("cluster", fmt.Sprintf("%d host(s) + %d ASU(s), c=%g", cfg.Hosts, cfg.ASUs, cfg.C))
	t.AddRow("host rating", fmt.Sprintf("%.0f ops/s", cfg.HostOpsPerSec))
	t.AddRow("disk", fmt.Sprintf("%.0f MB/s, %.1fms seek", cfg.DiskRateMBps, cfg.DiskSeekMs))
	t.AddRow("network", fmt.Sprintf("%.0f MB/s, %.0fus latency", cfg.NetMBps, cfg.NetLatencyUs))
	t.AddRow("record size", cfg.RecordSize)
	for _, k := range sortedKeys(rep.Workload) {
		t.AddRow("workload."+k, fmt.Sprint(rep.Workload[k]))
	}
	fmt.Println(t)

	if len(rep.Nodes) > 0 {
		t := metrics.NewTable("Mean utilization per node", "node", "kind", "cpu", "disk", "nic")
		for _, n := range rep.Nodes {
			t.AddRow(n.Name, n.Kind, meanOf(n.CPU), meanOf(n.Disk), meanOf(n.NIC))
		}
		fmt.Println(t)
	}
	if len(rep.Counters) > 0 {
		t := metrics.NewTable("Counters", "name", "value")
		for _, c := range rep.Counters {
			t.AddRow(c.Name, c.Value)
		}
		fmt.Println(t)
	}
	if len(rep.Histograms) > 0 {
		t := metrics.NewTable("Latency & service-time distributions (seconds)",
			"name", "count", "mean", "p50", "p90", "p99", "max")
		for _, h := range rep.Histograms {
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			t.AddRow(h.Name, h.Count,
				fmt.Sprintf("%.2e", mean), fmt.Sprintf("%.2e", h.P50),
				fmt.Sprintf("%.2e", h.P90), fmt.Sprintf("%.2e", h.P99),
				fmt.Sprintf("%.2e", h.Max))
		}
		fmt.Println(t)
	}
	if len(rep.Decisions) > 0 {
		fmt.Println("Load-manager decision log:")
		for _, d := range rep.Decisions {
			fmt.Printf("  t=%.3fs  %s  %s: %s\n",
				(sim.Duration(d.T)).Seconds(), d.Source, d.Action, d.Detail)
			for _, r := range d.Readings {
				fmt.Printf("           %s = %.4g\n", r.Key, r.Value)
			}
		}
	}
}

func meanOf(s *telemetry.UtilSeries) string {
	if s == nil {
		return "-"
	}
	return fmt.Sprintf("%.3f", s.Mean)
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
