package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"lmas/internal/loadmgr"
	"lmas/internal/metrics"
	"lmas/internal/sim"
	"lmas/internal/telemetry"
)

func runShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	svgOut := fs.String("svg", "", "write a utilization-vs-time SVG plot (Figure-10 style)")
	all := fs.Bool("all", false, "plot every node CPU, not just hosts (capped at 8 series)")
	files := parseMixed(fs, args)
	if len(files) != 1 {
		return fmt.Errorf("show: want exactly one report file, have %d", len(files))
	}
	tr, err := telemetry.ReadFile(files[0])
	if err != nil {
		return err
	}
	for i, rep := range tr.Runs {
		if i > 0 {
			fmt.Println()
		}
		showReport(rep)
	}
	if *svgOut != "" {
		if len(tr.Runs) != 1 {
			return fmt.Errorf("show: -svg needs a single-run report, file has %d runs", len(tr.Runs))
		}
		svg, err := utilSVG(tr.Runs[0], *all)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*svgOut, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("utilization plot -> %s\n", *svgOut)
	}
	return nil
}

func showReport(rep *telemetry.RunReport) {
	cfg := rep.Config
	t := metrics.NewTable(fmt.Sprintf("Run %q (seed %d)", rep.Name, rep.Seed), "field", "value")
	t.AddRow("runtime", fmt.Sprintf("%.4fs", rep.RuntimeSec))
	t.AddRow("cluster", fmt.Sprintf("%d host(s) + %d ASU(s), c=%g", cfg.Hosts, cfg.ASUs, cfg.C))
	t.AddRow("host rating", fmt.Sprintf("%.0f ops/s", cfg.HostOpsPerSec))
	t.AddRow("disk", fmt.Sprintf("%.0f MB/s, %.1fms seek", cfg.DiskRateMBps, cfg.DiskSeekMs))
	t.AddRow("network", fmt.Sprintf("%.0f MB/s, %.0fus latency", cfg.NetMBps, cfg.NetLatencyUs))
	t.AddRow("record size", cfg.RecordSize)
	for _, k := range sortedKeys(rep.Workload) {
		t.AddRow("workload."+k, fmt.Sprint(rep.Workload[k]))
	}
	fmt.Println(t)

	if len(rep.Nodes) > 0 {
		t := metrics.NewTable("Utilization per node (mean / peak)",
			"node", "kind", "cpu", "disk", "nic")
		var hostCPU, asuCPU [][]float64
		for _, n := range rep.Nodes {
			t.AddRow(n.Name, n.Kind, meanPeakOf(n.CPU), meanPeakOf(n.Disk), meanPeakOf(n.NIC))
			if n.CPU != nil {
				switch n.Kind {
				case "host":
					hostCPU = append(hostCPU, n.CPU.Util)
				case "asu":
					asuCPU = append(asuCPU, n.CPU.Util)
				}
			}
		}
		fmt.Println(t)
		if imb := loadmgr.ImbalanceSeries(hostCPU, 0); len(hostCPU) >= 2 {
			fmt.Printf("host CPU imbalance (mean utilization spread): %.3f\n", imb)
		}
		if imb := loadmgr.ImbalanceSeries(asuCPU, 0); len(asuCPU) >= 2 {
			fmt.Printf("ASU CPU imbalance (mean utilization spread): %.3f\n", imb)
		}
	}
	showPoolHealth(rep)
	showQueues(rep)
	if len(rep.Counters) > 0 {
		t := metrics.NewTable("Counters", "name", "value")
		for _, c := range rep.Counters {
			t.AddRow(c.Name, c.Value)
		}
		fmt.Println(t)
	}
	if len(rep.Histograms) > 0 {
		t := metrics.NewTable("Latency & service-time distributions (seconds)",
			"name", "count", "mean", "p50", "p90", "p99", "max")
		for _, h := range rep.Histograms {
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			t.AddRow(h.Name, h.Count,
				fmt.Sprintf("%.2e", mean), fmt.Sprintf("%.2e", h.P50),
				fmt.Sprintf("%.2e", h.P90), fmt.Sprintf("%.2e", h.P99),
				fmt.Sprintf("%.2e", h.Max))
		}
		fmt.Println(t)
	}
	if len(rep.Latencies) > 0 {
		t := metrics.NewTable("End-to-end latency histograms (milliseconds)",
			"name", "count", "p50", "p90", "p99", "p99.9", "max")
		for _, l := range rep.Latencies {
			t.AddRow(l.Name, l.Count,
				fmt.Sprintf("%.3f", msec(l.P50Ns)), fmt.Sprintf("%.3f", msec(l.P90Ns)),
				fmt.Sprintf("%.3f", msec(l.P99Ns)), fmt.Sprintf("%.3f", msec(l.P999Ns)),
				fmt.Sprintf("%.3f", msec(l.MaxNs)))
		}
		fmt.Println(t)
	}
	if rep.SLO != nil {
		showSLO(rep)
	}
	if len(rep.Decisions) > 0 {
		fmt.Println("Load-manager decision log:")
		for _, d := range rep.Decisions {
			fmt.Printf("  t=%.3fs  %s  %s: %s\n",
				(sim.Duration(d.T)).Seconds(), d.Source, d.Action, d.Detail)
			for _, r := range d.Readings {
				fmt.Printf("           %s = %.4g\n", r.Key, r.Value)
			}
		}
	}
}

func msec(ns int64) float64 { return float64(ns) / 1e6 }

// showSLO renders the deadline ladder an open-loop run exports: for each
// horizon (multiples of the base timeout), how many jobs missed it, which
// resource class dominated the missed jobs' time, and the full blame mix.
func showSLO(rep *telemetry.RunReport) {
	s := rep.SLO
	t := metrics.NewTable(
		fmt.Sprintf("SLO ladder for run %q (base deadline %.1fms, goodput %.1f jobs/s)",
			rep.Name, msec(s.TimeoutNs), s.GoodputPerSec),
		"horizon", "deadline(ms)", "misses", "dominant", "blame mix")
	for _, h := range s.Horizons {
		mix := "-"
		if len(h.Blame) > 0 {
			parts := make([]string, 0, len(h.Blame))
			for i, b := range h.Blame {
				if i >= 3 && b.Share < 0.05 {
					break
				}
				parts = append(parts, fmt.Sprintf("%s@%s %.0f%%", b.Class, b.Node, b.Share*100))
			}
			mix = strings.Join(parts, ", ")
		}
		dom := h.Dominant
		if dom == "" {
			dom = "-"
		}
		t.AddRow(h.Horizon, fmt.Sprintf("%.1f", msec(h.DeadlineNs)), h.Misses, dom, mix)
	}
	fmt.Println(t)
}

func meanPeakOf(s *telemetry.UtilSeries) string {
	if s == nil {
		return "-"
	}
	peak := 0.0
	for _, u := range s.Util {
		if u > peak {
			peak = u
		}
	}
	return fmt.Sprintf("%.3f / %.3f", s.Mean, peak)
}

// lastGauge returns a gauge's final sample value by exact name.
func lastGauge(rep *telemetry.RunReport, name string) (float64, bool) {
	for _, g := range rep.Gauges {
		if g.Name == name && len(g.Samples) > 0 {
			return g.Samples[len(g.Samples)-1].V, true
		}
	}
	return 0, false
}

// showPoolHealth renders the bufpool.<size>.* gauges dsmsort -report emits:
// per-size-class draws, free-list hit rate, leftover in-use count, and the
// peak simultaneous demand.
func showPoolHealth(rep *telemetry.RunReport) {
	var sizes []int
	for _, g := range rep.Gauges {
		var size int
		if n, _ := fmt.Sscanf(g.Name, "bufpool.%d.gets", &size); n == 1 {
			sizes = append(sizes, size)
		}
	}
	if len(sizes) == 0 {
		return
	}
	sort.Ints(sizes)
	t := metrics.NewTable("Buffer-pool health per size class",
		"size(B)", "gets", "hit-rate", "in-use", "high-water")
	for _, size := range sizes {
		prefix := fmt.Sprintf("bufpool.%d.", size)
		gets, _ := lastGauge(rep, prefix+"gets")
		hits, _ := lastGauge(rep, prefix+"hits")
		inUse, _ := lastGauge(rep, prefix+"in_use")
		high, _ := lastGauge(rep, prefix+"high_water")
		rate := 0.0
		if gets > 0 {
			rate = hits / gets
		}
		t.AddRow(size, int64(gets), fmt.Sprintf("%.1f%%", rate*100), int64(inUse), int64(high))
	}
	fmt.Println(t)
}

// showQueues renders the queue.<name>.* gauges: each simulation queue's
// cumulative packet wait and occupancy high-water mark.
func showQueues(rep *telemetry.RunReport) {
	var names []string
	for _, g := range rep.Gauges {
		if rest, ok := strings.CutPrefix(g.Name, "queue."); ok {
			if name, ok := strings.CutSuffix(rest, ".wait_sec"); ok {
				names = append(names, name)
			}
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	t := metrics.NewTable("Queue wait per queue", "queue", "cum-wait(s)", "high-water")
	for _, name := range names {
		wait, _ := lastGauge(rep, "queue."+name+".wait_sec")
		high, _ := lastGauge(rep, "queue."+name+".high_water")
		t.AddRow(name, fmt.Sprintf("%.4f", wait), int64(high))
	}
	fmt.Println(t)
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
