package main

import (
	"fmt"
	"strings"

	"lmas/internal/plot"
	"lmas/internal/telemetry"
)

type utilLine struct {
	name   string
	series *telemetry.UtilSeries
}

// utilSVG renders a Figure-10-style CPU-utilization-versus-time chart: one
// line per host CPU by default, every node CPU with all set (capped at
// len(plot.SeriesColors) series). Geometry, palette, and the shared frame
// come from internal/plot.
func utilSVG(rep *telemetry.RunReport, all bool) (string, error) {
	var lines []utilLine
	dropped := 0
	for _, n := range rep.Nodes {
		if n.CPU == nil || len(n.CPU.TS) == 0 {
			continue
		}
		if !all && n.Kind != "host" {
			continue
		}
		if len(lines) == len(plot.SeriesColors) {
			dropped++
			continue
		}
		lines = append(lines, utilLine{name: n.Name + " cpu", series: n.CPU})
	}
	if len(lines) == 0 {
		return "", fmt.Errorf("report %q has no CPU utilization series (was the run made with -report?)", rep.Name)
	}

	maxT := 0.0
	for _, l := range lines {
		if ts := l.series.TS; ts[len(ts)-1] > maxT {
			maxT = ts[len(ts)-1]
		}
	}
	if maxT <= 0 {
		maxT = 1
	}
	plotW := float64(plot.W - plot.PadL - plot.PadR)
	plotH := float64(plot.H - plot.PadT - plot.PadB)
	x := func(t float64) float64 { return float64(plot.PadL) + t/maxT*plotW }
	y := func(u float64) float64 { return float64(plot.PadT) + (1-u)*plotH }

	var b strings.Builder
	plot.Open(&b, plot.W, plot.H)
	plot.Title(&b, fmt.Sprintf("CPU utilization vs time — run %q", rep.Name))

	// Horizontal grid at 25% steps; labels on the single y axis.
	for i := 0; i <= 4; i++ {
		u := float64(i) / 4
		yy := y(u)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			plot.PadL, yy, plot.W-plot.PadR, yy, plot.InkGrid)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" fill="%s" text-anchor="end">%.0f%%</text>`+"\n",
			plot.PadL-8, yy+4, plot.InkMuted, u*100)
	}
	// Baseline and x-axis ticks.
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
		plot.PadL, y(0), plot.W-plot.PadR, y(0), plot.InkBaseline)
	for i := 0; i <= 6; i++ {
		t := maxT * float64(i) / 6
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" fill="%s" text-anchor="middle">%.1fs</text>`+"\n",
			x(t), plot.H-plot.PadB+18, plot.InkMuted, t)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="%s">virtual time</text>`+"\n",
		plot.W-plot.PadR-70, plot.H-plot.PadB+34, plot.InkSecond)

	// Series: 2px lines, one categorical slot each, in node order.
	for i, l := range lines {
		color := plot.SeriesColors[i]
		var pts []string
		for j := range l.series.TS {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(l.series.TS[j]), y(plot.Clamp01(l.series.Util[j]))))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`+"\n",
			strings.Join(pts, " "), color)
		// Direct label at the line's end; the colored mark carries
		// identity, the text stays in ink.
		lastX := x(l.series.TS[len(l.series.TS)-1])
		lastY := y(plot.Clamp01(l.series.Util[len(l.series.Util)-1]))
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", lastX, lastY, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s">%s</text>`+"\n",
			lastX+7, lastY+4, plot.InkSecond, l.name)
	}

	// Legend (always present for >= 2 series).
	if len(lines) >= 2 {
		lx, ly := plot.W-plot.PadR+14, plot.PadT+6
		for i, l := range lines {
			plot.LegendLine(&b, lx, ly+i*18, plot.SeriesColors[i], l.name)
		}
	}
	if dropped > 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="%s">%d more series not shown (8-series cap)</text>`+"\n",
			plot.PadL, plot.H-6, plot.InkSecond, dropped)
	}
	plot.Close(&b)
	return b.String(), nil
}
