package main

import (
	"fmt"
	"strings"

	"lmas/internal/telemetry"
)

// Plot geometry and ink. Colors follow the reference data-viz palette: the
// categorical slots are assigned to nodes in fixed order (color follows the
// entity), series are 2px lines over a recessive grid, and every series is
// both legended and direct-labeled so identity never rides on color alone.
const (
	svgW, svgH             = 800, 420
	padL, padR, padT, padB = 60, 150, 44, 48

	inkSurface  = "#fcfcfb"
	inkPrimary  = "#0b0b0b"
	inkSecond   = "#52514e"
	inkMuted    = "#898781"
	inkGrid     = "#e1e0d9"
	inkBaseline = "#c3c2b7"
)

// seriesColors is the fixed categorical order; series beyond the eighth are
// dropped with an explicit note, never recolored.
var seriesColors = []string{
	"#2a78d6", "#eb6834", "#1baf7a", "#eda100",
	"#e87ba4", "#008300", "#4a3aa7", "#e34948",
}

type utilLine struct {
	name   string
	series *telemetry.UtilSeries
}

// utilSVG renders a Figure-10-style CPU-utilization-versus-time chart: one
// line per host CPU by default, every node CPU with all set (capped at
// len(seriesColors) series).
func utilSVG(rep *telemetry.RunReport, all bool) (string, error) {
	var lines []utilLine
	dropped := 0
	for _, n := range rep.Nodes {
		if n.CPU == nil || len(n.CPU.TS) == 0 {
			continue
		}
		if !all && n.Kind != "host" {
			continue
		}
		if len(lines) == len(seriesColors) {
			dropped++
			continue
		}
		lines = append(lines, utilLine{name: n.Name + " cpu", series: n.CPU})
	}
	if len(lines) == 0 {
		return "", fmt.Errorf("report %q has no CPU utilization series (was the run made with -report?)", rep.Name)
	}

	maxT := 0.0
	for _, l := range lines {
		if ts := l.series.TS; ts[len(ts)-1] > maxT {
			maxT = ts[len(ts)-1]
		}
	}
	if maxT <= 0 {
		maxT = 1
	}
	plotW := float64(svgW - padL - padR)
	plotH := float64(svgH - padT - padB)
	x := func(t float64) float64 { return float64(padL) + t/maxT*plotW }
	y := func(u float64) float64 { return float64(padT) + (1-u)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, -apple-system, 'Segoe UI', sans-serif">`+"\n",
		svgW, svgH, svgW, svgH)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", svgW, svgH, inkSurface)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" fill="%s">CPU utilization vs time — run %q</text>`+"\n",
		padL, inkPrimary, rep.Name)

	// Horizontal grid at 25% steps; labels on the single y axis.
	for i := 0; i <= 4; i++ {
		u := float64(i) / 4
		yy := y(u)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			padL, yy, svgW-padR, yy, inkGrid)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" fill="%s" text-anchor="end">%.0f%%</text>`+"\n",
			padL-8, yy+4, inkMuted, u*100)
	}
	// Baseline and x-axis ticks.
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
		padL, y(0), svgW-padR, y(0), inkBaseline)
	for i := 0; i <= 6; i++ {
		t := maxT * float64(i) / 6
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" fill="%s" text-anchor="middle">%.1fs</text>`+"\n",
			x(t), svgH-padB+18, inkMuted, t)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="%s">virtual time</text>`+"\n",
		svgW-padR-70, svgH-padB+34, inkSecond)

	// Series: 2px lines, one categorical slot each, in node order.
	for i, l := range lines {
		color := seriesColors[i]
		var pts []string
		for j := range l.series.TS {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(l.series.TS[j]), y(clamp01(l.series.Util[j]))))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`+"\n",
			strings.Join(pts, " "), color)
		// Direct label at the line's end; the colored mark carries
		// identity, the text stays in ink.
		lastX := x(l.series.TS[len(l.series.TS)-1])
		lastY := y(clamp01(l.series.Util[len(l.series.Util)-1]))
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", lastX, lastY, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s">%s</text>`+"\n",
			lastX+7, lastY+4, inkSecond, l.name)
	}

	// Legend (always present for >= 2 series).
	if len(lines) >= 2 {
		lx, ly := svgW-padR+14, padT+6
		for i, l := range lines {
			yy := ly + i*18
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="3" fill="%s"/>`+"\n", lx, yy, seriesColors[i])
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="%s">%s</text>`+"\n", lx+18, yy+5, inkSecond, l.name)
		}
	}
	if dropped > 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="%s">%d more series not shown (8-series cap)</text>`+"\n",
			padL, svgH-6, inkSecond, dropped)
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
