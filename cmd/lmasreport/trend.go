package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lmas/internal/metrics"
	"lmas/internal/plot"
	"lmas/internal/recorder"
)

// runTrend answers "how has this metric moved across revisions":
//
//	lmasreport trend STORE -metric NAME [-experiment E] [-name CELL] [-svg OUT.svg]
//
// It walks the store's finished runs in (start time, run ID) order, groups
// them by the git_rev header key (groups ordered by each revision's first
// appearance), and prints one row per run with the metric resolved the same
// way `query metric` resolves it — runtime_sec, a counter's value, a gauge's
// final sample, a histogram's count, or a latency histogram's count with
// p50/p99. With -svg it also renders the cross-run trend as a sparkline with
// revision boundaries marked.
func runTrend(args []string) error {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	metric := fs.String("metric", "", "instrument name to track (required); runtime_sec tracks run time")
	exp := fs.String("experiment", "", "only this experiment")
	cell := fs.String("name", "", "only runs of this cell name")
	svgOut := fs.String("svg", "", "also write a trend sparkline SVG")
	pos := parseMixed(fs, args)
	if len(pos) != 1 {
		return fmt.Errorf("trend: want exactly one STORE directory")
	}
	if *metric == "" {
		return fmt.Errorf("trend: -metric NAME is required")
	}
	st, err := openStoreRead(pos[0])
	if err != nil {
		return err
	}
	runs, err := st.Runs()
	if err != nil {
		return err
	}

	type point struct {
		run  *recorder.RunRecord
		kind string
		v    float64
		p50  float64
		p99  float64
	}
	// Group by revision, groups in first-appearance order; runs are already
	// time-ordered, so within a group points stay chronological.
	var revs []string
	byRev := make(map[string][]point)
	for _, run := range runs {
		h := run.Header
		if *exp != "" && h.Experiment != *exp {
			continue
		}
		if *cell != "" && h.Name != *cell {
			continue
		}
		rep := run.Report()
		if rep == nil {
			continue
		}
		kind, v, p50, p99, ok := metricOf(rep, *metric)
		if !ok {
			continue
		}
		if _, seen := byRev[h.GitRev]; !seen {
			revs = append(revs, h.GitRev)
		}
		byRev[h.GitRev] = append(byRev[h.GitRev], point{run: run, kind: kind, v: v, p50: p50, p99: p99})
	}
	if len(revs) == 0 {
		return fmt.Errorf("trend: no finished stored run has an instrument %q", *metric)
	}

	t := metrics.NewTable(fmt.Sprintf("Trend of %s across revisions", *metric),
		"rev", "run", "name", "started", "kind", "value", "p50", "p99")
	var vals []float64
	var revTicks []int // index into vals where each revision group starts
	for _, rev := range revs {
		revTicks = append(revTicks, len(vals))
		for _, pt := range byRev[rev] {
			h := pt.run.Header
			p50s, p99s := "-", "-"
			if pt.kind == "histogram" || pt.kind == "latency" {
				p50s = fmt.Sprintf("%.6g", pt.p50)
				p99s = fmt.Sprintf("%.6g", pt.p99)
			}
			t.AddRow(rev, h.RunID, h.Name, h.StartedAt, pt.kind,
				fmt.Sprintf("%.6g", pt.v), p50s, p99s)
			vals = append(vals, pt.v)
		}
	}
	fmt.Println(t)

	if *svgOut != "" {
		svg := trendSVG(*metric, revs, revTicks, vals)
		if err := os.WriteFile(*svgOut, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("trend: sparkline -> %s\n", *svgOut)
	}
	return nil
}

// trendSVG renders the cross-run series as one sparkline with a vertical
// boundary (and revision label) where each revision group begins.
func trendSVG(metric string, revs []string, revTicks []int, vals []float64) string {
	const w, h = 800, 200
	const padL, padR, padT, padB = 60, 40, 44, 40
	plotW, plotH := w-padL-padR, h-padT-padB
	var b strings.Builder
	plot.Open(&b, w, h)
	plot.Title(&b, fmt.Sprintf("Trend: %s (%d runs, %d revisions)", metric, len(vals), len(revs)))
	x := func(i int) float64 {
		if len(vals) == 1 {
			return float64(padL + plotW)
		}
		return float64(padL) + float64(i)*float64(plotW)/float64(len(vals)-1)
	}
	for gi, start := range revTicks {
		bx := x(start)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="1"/>`+"\n",
			bx, padT, bx, padT+plotH, plot.InkGrid)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" fill="%s">%s</text>`+"\n",
			bx+3, h-padB+14, plot.InkMuted, revs[gi])
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" fill="%s" text-anchor="end">%.6g</text>`+"\n",
		padL-6, padT+8, plot.InkSecond, hi)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" fill="%s" text-anchor="end">%.6g</text>`+"\n",
		padL-6, padT+plotH, plot.InkSecond, lo)
	plot.Sparkline(&b, padL, padT, plotW, plotH, vals, plot.SeriesColors[0])
	plot.Close(&b)
	return b.String()
}
