package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// captureStdout runs fn with os.Stdout redirected into a pipe and returns
// everything written.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	defer func() {
		os.Stdout = old
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

// TestTrendGolden runs `lmasreport trend` over the committed fixture store
// and compares the rendered table against the golden file (refresh with
// `go test ./cmd/lmasreport -run TestTrendGolden -update`). The fixture has
// two revisions (aaa1111 with two finished runs, bbb2222 with one finished
// and one unfinished), so the golden pins revision grouping, chronological
// order, skipping of unfinished segments, and the latency p50/p99 columns.
func TestTrendGolden(t *testing.T) {
	out := captureStdout(t, func() {
		if err := runTrend([]string{"testdata/trendstore", "-metric", "openloop.job.latency"}); err != nil {
			t.Fatal(err)
		}
	})

	golden := "testdata/trend_golden.txt"
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("trend output drifted from golden:\n--- got ---\n%s--- want ---\n%s", out, want)
	}

	// Acceptance: the table reproduces the metric for every finished stored
	// run — and never mentions the unfinished one.
	for _, substr := range []string{
		"r1a", "r1b", "r2a", // every finished run
		"aaa1111", "bbb2222", // both revisions
		"0.003", "0.0032", "0.0028", // each run's p50 seconds
		"0.009", "0.0095", "0.008", // each run's p99 seconds
	} {
		if !strings.Contains(out, substr) {
			t.Errorf("trend output lacks %q", substr)
		}
	}
	if strings.Contains(out, "r2b") {
		t.Error("trend output includes the unfinished run r2b")
	}
}

// TestTrendRuntimeMetricAndSVG covers the runtime_sec pseudo-metric and the
// sparkline output path.
func TestTrendRuntimeMetricAndSVG(t *testing.T) {
	svg := t.TempDir() + "/trend.svg"
	out := captureStdout(t, func() {
		if err := runTrend([]string{"testdata/trendstore", "-metric", "runtime_sec", "-svg", svg}); err != nil {
			t.Fatal(err)
		}
	})
	for _, substr := range []string{"1.5", "1.6", "1.4"} {
		if !strings.Contains(out, substr) {
			t.Errorf("runtime trend lacks value %q:\n%s", substr, out)
		}
	}
	b, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, substr := range []string{"<svg", "polyline", "aaa1111", "bbb2222"} {
		if !strings.Contains(s, substr) {
			t.Errorf("sparkline SVG lacks %q", substr)
		}
	}
}

// TestTrendUnknownMetric: asking for an instrument no stored run has is an
// error, not an empty table.
func TestTrendUnknownMetric(t *testing.T) {
	err := runTrend([]string{"testdata/trendstore", "-metric", "no.such.metric"})
	if err == nil || !strings.Contains(err.Error(), "no.such.metric") {
		t.Fatalf("err = %v, want unknown-instrument error", err)
	}
}
