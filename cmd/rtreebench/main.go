// Command rtreebench compares the partitioned and striped distributed
// R-tree organizations (paper Figure 5) on emulated clusters, sweeping
// query sizes so the latency/throughput tradeoff is visible.
//
//	rtreebench -entries 16384 -asus 8 -fanout 16
package main

import (
	"flag"
	"fmt"
	"os"

	"lmas/internal/cluster"
	"lmas/internal/metrics"
	"lmas/internal/rtree"
)

func main() {
	var (
		entries = flag.Int("entries", 1<<14, "indexed rectangles")
		asus    = flag.Int("asus", 8, "ASU count")
		fanout  = flag.Int("fanout", 16, "R-tree fanout")
		clients = flag.Int("clients", 8, "concurrent clients for throughput")
		seed    = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	es := rtree.GenerateEntries(*entries, 0.005, *seed)
	mk := func(mode rtree.Mode) *rtree.Distributed {
		params := cluster.DefaultParams()
		params.Hosts, params.ASUs = 1, *asus
		return rtree.NewDistributed(cluster.New(params), es, *fanout, mode)
	}

	lat := metrics.NewTable(
		fmt.Sprintf("Single-query latency (%d entries, %d ASUs)", *entries, *asus),
		"query side", "partition(s)", "stripe(s)", "stripe wins")
	for _, side := range []float64{0.02, 0.1, 0.4, 0.8} {
		q := rtree.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.1 + side, MaxY: 0.1 + side}
		_, pl, err := mk(rtree.Partition).QueryOnce(q)
		check(err)
		_, sl, err := mk(rtree.Stripe).QueryOnce(q)
		check(err)
		lat.AddRow(fmt.Sprintf("%.2f", side), pl.Seconds(), sl.Seconds(), sl < pl)
	}
	fmt.Println(lat)

	mkRep := func() *rtree.Distributed {
		params := cluster.DefaultParams()
		params.Hosts, params.ASUs = 1, *asus
		return rtree.NewReplicated(cluster.New(params), es, *fanout, 2)
	}

	thr := metrics.NewTable(
		fmt.Sprintf("Concurrent throughput, %d clients", *clients),
		"workload", "partition qps", "stripe qps", "replicated(x2) qps")
	uniform := rtree.GenerateQueries(128, 0.02, *seed+1)
	hotRegion := rtree.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.45, MaxY: 0.45}
	hot := rtree.GenerateHotQueries(128, 0.02, hotRegion, 0.9, *seed+2)
	for _, w := range []struct {
		name    string
		queries []rtree.Rect
	}{{"uniform", uniform}, {"hot-spot 90%", hot}} {
		_, pq, err := mk(rtree.Partition).Throughput(w.queries, *clients)
		check(err)
		_, sq, err := mk(rtree.Stripe).Throughput(w.queries, *clients)
		check(err)
		_, rq, err := mkRep().Throughput(w.queries, *clients)
		check(err)
		thr.AddRow(w.name, pq, sq, rq)
	}
	fmt.Println(thr)

	// Online maintenance cycle: insert, degrade, maintain, restore.
	dt := mk(rtree.Partition)
	probe := rtree.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.32, MaxY: 0.32}
	_, clean, err := dt.QueryOnce(probe)
	check(err)
	extra := rtree.GenerateEntries(*entries/4, 0.005, *seed+3)
	for i := range extra {
		extra[i].ID += 1 << 20
	}
	_, err = dt.InsertBatch(extra)
	check(err)
	_, degraded, err := dt.QueryOnce(probe)
	check(err)
	asuMaint, err := dt.Maintain()
	check(err)
	_, restored, err := dt.QueryOnce(probe)
	check(err)
	fmt.Printf("online maintenance (%d inserts): query %0.3fms clean -> %0.3fms buffered -> %0.3fms after %0.3fms of parallel ASU maintenance\n",
		len(extra), clean.Seconds()*1e3, degraded.Seconds()*1e3,
		restored.Seconds()*1e3, asuMaint.Seconds()*1e3)
	fmt.Println("all query results validated against brute-force scans")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtreebench:", err)
		os.Exit(1)
	}
}
