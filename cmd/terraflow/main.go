// Command terraflow runs the watershed stage of the TerraFlow terrain
// analysis on an emulated active-storage cluster, optionally rendering the
// labeled watersheds as ASCII art.
//
//	terraflow -w 256 -h 256 -basins 6 -asus 8 -placement active -render
package main

import (
	"flag"
	"fmt"
	"os"

	"lmas/internal/cluster"
	"lmas/internal/dsmsort"
	"lmas/internal/terraflow"
)

func main() {
	var (
		w         = flag.Int("w", 128, "grid width")
		h         = flag.Int("h", 128, "grid height")
		basins    = flag.Int("basins", 4, "synthetic basin count")
		asus      = flag.Int("asus", 8, "ASU count")
		placement = flag.String("placement", "active", "active|conventional")
		seed      = flag.Int64("seed", 42, "terrain seed")
		render    = flag.Bool("render", false, "print ASCII watershed map")
		flow      = flag.Bool("flow", false, "also compute upstream-area flow accumulation")
	)
	flag.Parse()

	params := cluster.DefaultParams()
	params.Hosts, params.ASUs = 1, *asus
	params.RecordSize = terraflow.CellRecordSize
	cl := cluster.New(params)

	g, centers := terraflow.SyntheticBasins(*w, *h, *basins, 10, *seed)
	opt := terraflow.DefaultOptions()
	opt.Flow = *flow
	if *placement == "conventional" {
		opt.Placement = dsmsort.Conventional
	}

	res, err := terraflow.Run(cl, g, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "terraflow:", err)
		os.Exit(1)
	}
	fmt.Printf("terrain %dx%d with %d basins -> %d watersheds (%s, %d ASUs)\n",
		*w, *h, len(centers), res.Watersheds, *placement, *asus)
	fmt.Printf("  step 1 restructure: %8.4fs\n", res.Restructure.Seconds())
	fmt.Printf("  step 2 sort:        %8.4fs\n", res.Sort.Seconds())
	fmt.Printf("  step 3 watershed:   %8.4fs\n", res.Watershed.Seconds())
	if *flow {
		fmt.Printf("  flow accumulation:  %8.4fs\n", res.FlowAccum.Seconds())
	}
	fmt.Printf("  total:              %8.4fs\n", res.Total().Seconds())
	fmt.Println("  labeling validated against in-memory reference")
	if *flow {
		var maxArea uint32
		var at int
		for i, a := range res.Areas {
			if a > maxArea {
				maxArea, at = a, i
			}
		}
		fmt.Printf("  largest upstream area: %d cells at (%d,%d)\n",
			maxArea, at%g.W, at/g.W)
	}

	if *render {
		renderMap(g, res.Colors)
	}
}

// renderMap prints the watershed labeling, one glyph per cell block.
func renderMap(g *terraflow.Grid, colors []uint32) {
	const glyphs = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	idx := map[uint32]int{}
	stepX := (g.W + 79) / 80
	stepY := stepX * 2 // terminal cells are ~2x taller than wide
	if stepY < 1 {
		stepY = 1
	}
	for y := 0; y < g.H; y += stepY {
		line := make([]byte, 0, g.W/stepX+1)
		for x := 0; x < g.W; x += stepX {
			c := colors[y*g.W+x]
			i, ok := idx[c]
			if !ok {
				i = len(idx)
				idx[c] = i
			}
			line = append(line, glyphs[i%len(glyphs)])
		}
		fmt.Println(string(line))
	}
}
