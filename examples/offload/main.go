// Offload: the canonical active-storage pattern — filtering and
// aggregation at the storage units, so a scan over the full data set sends
// only matches and summaries across the interconnect.
//
//	go run ./examples/offload
package main

import (
	"fmt"
	"log"

	"lmas"
	"lmas/internal/bte"
	"lmas/internal/cluster"
	"lmas/internal/container"
	"lmas/internal/functor"
	"lmas/internal/records"
	"lmas/internal/route"
	"lmas/internal/sim"
)

func main() {
	const n = 1 << 17
	params := lmas.DefaultParams()
	params.Hosts, params.ASUs = 1, 8
	params.NetBandwidth = 60e6 // a constrained interconnect: offload matters
	cl := cluster.New(params)

	// Data set striped across the ASUs.
	buf := records.Generate(n, params.RecordSize, 7, records.Uniform{})
	var sets []*container.Set
	cl.Sim.Spawn("load", func(p *sim.Proc) {
		for _, asu := range cl.ASUs {
			sets = append(sets, container.NewSet("data@"+asu.Name, bte.NewDisk(asu.Disk), params.RecordSize))
		}
		for off := 0; off < n; off += 64 {
			sets[(off/64)%len(sets)].Add(p, container.NewPacket(buf.Slice(off, off+64).ClonePooled()))
		}
	})
	if err := cl.Sim.Run(); err != nil {
		log.Fatal(err)
	}

	// Pipeline: per-ASU aggregation, merged at the host. Terabytes in,
	// a handful of summary records out.
	pl := functor.NewPipeline(cl)
	agg := pl.AddStage("aggregate", cl.ASUs, func() functor.Kernel {
		return functor.NewAggregate(8)
	})
	merged := map[int]functor.AggSummary{}
	sink := pl.AddStage("merge", cl.Hosts, func() functor.Kernel {
		return &functor.Sink{Label: "summaries", Fn: func(ctx *functor.Ctx, pk container.Packet) {
			for i := 0; i < pk.Len(); i++ {
				s := functor.DecodeAgg(pk.Buf.Record(i))
				merged[s.Bucket] = functor.MergeAgg(merged[s.Bucket], s)
			}
			pk.Release() // decoded, not stored
		}}
	})
	agg.ConnectTo(sink, &route.RoundRobin{})
	sink.Terminal()
	for i, set := range sets {
		i := i
		pl.AddSource(fmt.Sprintf("read%d", i), cl.ASUs[i], set.Scan(i, false), agg, pinned(i))
	}
	elapsed, err := pl.Run()
	if err != nil {
		log.Fatal(err)
	}

	var total uint64
	for _, s := range merged {
		total += s.Count
	}
	if total != n {
		log.Fatalf("aggregated %d records, want %d", total, n)
	}
	var netBytes int64
	for _, asu := range cl.ASUs {
		_, _, sb, _ := asu.NIC.Stats()
		netBytes += sb
	}
	fmt.Printf("aggregated %d records (%d MB on disk) in %.4fs virtual\n",
		n, n*params.RecordSize/1e6, elapsed.Seconds())
	fmt.Printf("interconnect carried only %.1f KB of summaries (%.4f%% of the data)\n",
		float64(netBytes)/1e3, 100*float64(netBytes)/float64(n*params.RecordSize))
	fmt.Println("per-bucket key statistics (count / mean key / range):")
	for b := 0; b < 8; b++ {
		s := merged[b]
		fmt.Printf("  bucket %d: %6d records, mean %10d, keys [%d, %d]\n",
			b, s.Count, s.Sum/s.Count, s.Min, s.Max)
	}
}

// pinned routes everything to endpoint i (each reader feeds its local ASU).
type pinned int

func (pinned) Name() string                                       { return "pinned" }
func (f pinned) Pick(pk route.PacketInfo, e []route.Endpoint) int { return int(f) % len(e) }
