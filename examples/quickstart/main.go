// Quickstart: build an emulated active-storage cluster, sort a data set
// with DSM-Sort in both placements, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lmas"
)

func main() {
	const n = 1 << 16 // 64K records of 128 bytes

	run := func(placement lmas.SortConfig) (*lmas.SortResult, error) {
		// An emulated system: 1 host, 16 ASUs, ASUs 8x weaker (c=8).
		params := lmas.DefaultParams()
		params.Hosts, params.ASUs, params.C = 1, 16, 8
		cl := lmas.NewCluster(params)

		// The input starts striped across the ASUs' disks.
		in := lmas.MakeInput(cl, n, lmas.Uniform{}, 42, 64)
		return lmas.Sort(cl, placement, in)
	}

	active := lmas.SortConfig{
		Alpha: 64, Beta: 64, Gamma2: 16, PacketRecords: 64,
		Placement: lmas.Active, Seed: 42,
	}
	conventional := active
	conventional.Placement = lmas.Conventional

	ra, err := run(active)
	if err != nil {
		log.Fatal(err)
	}
	rc, err := run(conventional)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sorted %d records on 1 host + 16 ASUs (c=8)\n", n)
	fmt.Printf("  active storage (distribute on ASUs): %.4fs total, %.4fs run formation\n",
		ra.Elapsed.Seconds(), ra.Pass1.Elapsed.Seconds())
	fmt.Printf("  conventional  (all work on host):    %.4fs total, %.4fs run formation\n",
		rc.Elapsed.Seconds(), rc.Pass1.Elapsed.Seconds())
	fmt.Printf("  run-formation speedup from active storage: %.2fx (the Figure 9 metric)\n",
		rc.Pass1.Elapsed.Seconds()/ra.Pass1.Elapsed.Seconds())
	hostOps, asuOps := ra.MeasuredWork()
	fmt.Printf("  active work split: host %.1f Mops / ASUs %.1f Mops\n",
		hostOps/1e6, asuOps/1e6)
	fmt.Println("  both outputs validated (sorted + checksummed)")
}
