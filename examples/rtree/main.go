// R-tree example: the same spatial index deployed two ways across active
// storage (paper Figure 5) — partitioned subtrees versus striped leaves —
// showing the latency/throughput tradeoff.
//
//	go run ./examples/rtree
package main

import (
	"fmt"
	"log"

	"lmas"
	"lmas/internal/cluster"
	"lmas/internal/rtree"
)

func main() {
	entries := rtree.GenerateEntries(1<<14, 0.005, 11)

	mk := func(mode rtree.Mode) *lmas.DistributedRTree {
		params := lmas.DefaultParams()
		params.Hosts, params.ASUs = 1, 8
		return rtree.NewDistributed(cluster.New(params), entries, 16, mode)
	}

	// One large map-rendering scan: latency matters.
	wide := lmas.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9}
	_, pLat, err := mk(rtree.Partition).QueryOnce(wide)
	must(err)
	_, sLat, err := mk(rtree.Stripe).QueryOnce(wide)
	must(err)

	// Many small lookups from concurrent clients: throughput matters.
	small := rtree.GenerateQueries(128, 0.02, 12)
	_, pQPS, err := mk(rtree.Partition).Throughput(small, 8)
	must(err)
	_, sQPS, err := mk(rtree.Stripe).Throughput(small, 8)
	must(err)

	fmt.Println("distributed R-tree, 16K rectangles on 1 host + 8 ASUs")
	fmt.Printf("  wide scan latency:   partition %.4fs   stripe %.4fs  -> stripe bounds latency\n",
		pLat.Seconds(), sLat.Seconds())
	fmt.Printf("  concurrent lookups:  partition %6.0f qps  stripe %6.0f qps  -> partition wins throughput\n",
		pQPS, sQPS)
	fmt.Println("  every query validated against a brute-force scan")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
