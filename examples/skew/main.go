// Skew: reproduce the Figure 10 phenomenon in miniature — a skewed input
// overloads one host under static routing, while load-managed simple
// randomization keeps both hosts busy and finishes earlier.
//
//	go run ./examples/skew
package main

import (
	"fmt"
	"log"
	"strings"

	"lmas"
)

func main() {
	opt := lmas.DefaultFig10Options()
	opt.N = 1 << 16 // keep the example quick
	res, err := lmas.RunFig10(opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("DSM-Sort on 2 hosts + 16 ASUs; second half of input is skewed")
	fmt.Printf("  static routing:   %.2fs, host imbalance %.2f\n",
		res.Static.Elapsed.Seconds(), res.Static.Imbalance)
	fmt.Printf("  load-managed SR:  %.2fs, host imbalance %.2f\n",
		res.Managed.Elapsed.Seconds(), res.Managed.Imbalance)
	fmt.Println()
	fmt.Println("host CPU utilization over time (#=host1, :=host2):")
	printRun("static", res.Static.HostUtil[0], res.Static.HostUtil[1])
	printRun("load-managed (SR)", res.Managed.HostUtil[0], res.Managed.HostUtil[1])
}

type trace interface {
	Len() int
	At(i int) float64
}

func printRun(name string, h1, h2 trace) {
	fmt.Printf("\n%s:\n", name)
	n := h1.Len()
	if h2.Len() > n {
		n = h2.Len()
	}
	for w := 0; w < n; w++ {
		bar1 := strings.Repeat("#", int(h1.At(w)*30+0.5))
		bar2 := strings.Repeat(":", int(h2.At(w)*30+0.5))
		fmt.Printf("  t%2d  host1 %-30s  host2 %-30s\n", w, bar1, bar2)
	}
}
