// TerraFlow example: watershed analysis of a synthetic terrain on active
// storage — grid restructuring and sorting accelerate on the ASUs while the
// time-forward coloring stays on the host.
//
//	go run ./examples/terraflow
package main

import (
	"fmt"
	"log"

	"lmas"
	"lmas/internal/cluster"
	"lmas/internal/terraflow"
)

func main() {
	params := lmas.DefaultParams()
	params.Hosts, params.ASUs = 1, 8
	params.RecordSize = terraflow.CellRecordSize
	cl := cluster.New(params)

	// A 128x128 terrain shaped by five basins.
	g, basins := terraflow.SyntheticBasins(128, 128, 5, 10, 7)

	res, err := terraflow.Run(cl, g, terraflow.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("terrain: %dx%d cells, %d basins placed\n", g.W, g.H, len(basins))
	fmt.Printf("watersheds found: %d (validated against reference)\n", res.Watersheds)
	fmt.Printf("  step 1  restructure grid -> cell set:  %.4fs (parallel on ASUs)\n",
		res.Restructure.Seconds())
	fmt.Printf("  step 2  sort cells by elevation:       %.4fs (DSM-Sort on ASUs+host)\n",
		res.Sort.Seconds())
	fmt.Printf("  step 3  time-forward coloring:         %.4fs (host only)\n",
		res.Watershed.Seconds())
	fmt.Printf("  total:                                 %.4fs\n", res.Total().Seconds())

	// Where does each basin's area go?
	area := map[uint32]int{}
	for _, c := range res.Colors {
		area[c]++
	}
	fmt.Println("watershed areas:")
	for color, cells := range area {
		x, y := int(color)%g.W, int(color)/g.W
		fmt.Printf("  minimum at (%3d,%3d): %5d cells (%.1f%%)\n",
			x, y, cells, 100*float64(cells)/float64(g.Cells()))
	}
}
