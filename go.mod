module lmas

go 1.22
