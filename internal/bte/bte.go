// Package bte implements the Block Transfer Engine abstraction from TPIE:
// "A pluggable Block Transfer Engine (BTE) abstracts the underlying storage
// system block access operations, facilitating portability to various
// storage and access models" (Section 3.1).
//
// An Engine stores opaque blocks and charges the appropriate virtual-time
// costs when they are transferred. The Memory engine is free (used for pure
// algorithm tests and for host-resident intermediate data); the Disk engine
// charges transfer time on an emulated ASU disk, including its read-ahead
// and write-behind behaviour.
package bte

import (
	"fmt"

	"lmas/internal/bufpool"
	"lmas/internal/disk"
	"lmas/internal/sim"
)

// BlockID names a stored block within one Engine.
type BlockID int32

// Engine is a block store with timing semantics.
//
// Buffer ownership contract: Append transfers EXCLUSIVE ownership of data's
// backing storage to the engine — the caller must not read, mutate, release
// or alias it afterwards. The engine returns that storage to the process
// buffer pool on Free, so an aliased Append corrupts whoever borrows the
// bytes next. Ownership comes back out only through Detach.
type Engine interface {
	// Append stores data as a new block and returns its id, taking
	// exclusive ownership of data's storage (see the contract above).
	Append(p *sim.Proc, data []byte) BlockID
	// Read returns the block's contents. Callers must treat the result
	// as read-only; the engine still owns the storage.
	Read(p *sim.Proc, id BlockID) []byte
	// Peek returns the block's contents without charging any virtual
	// time or perturbing device state. It exists for instrumentation
	// and validation outside the emulated timeline; emulated
	// computation must use Read.
	Peek(id BlockID) []byte
	// Free releases the block and returns its storage to the buffer
	// pool (the engine owned it exclusively, per Append's contract).
	// Freeing an already-free or unknown block panics: it indicates a
	// container bookkeeping bug.
	Free(id BlockID)
	// Detach removes the block from the engine and hands its storage to
	// the caller, who becomes the exclusive owner (destructive scans use
	// this to turn a stored packet into a caller-owned one without
	// copying). Charges no virtual time; Read first for timed access.
	Detach(id BlockID) []byte
	// EndReadRun hints that a sequential read run has ended, so the
	// next Read should not assume read-ahead overlap.
	EndReadRun()
	// Flush blocks p until buffered writes have retired.
	Flush(p *sim.Proc)
	// Bytes reports the total size of live blocks.
	Bytes() int64
	// Blocks reports the number of live blocks.
	Blocks() int
}

// store is the shared block bookkeeping for all engines.
type store struct {
	blocks []([]byte)
	free   []BlockID
	bytes  int64
	live   int
}

func (st *store) append(data []byte) BlockID {
	if data == nil {
		data = []byte{} // nil marks freed slots; keep empty blocks distinct
	}
	var id BlockID
	if n := len(st.free); n > 0 {
		id = st.free[n-1]
		st.free = st.free[:n-1]
		st.blocks[id] = data
	} else {
		id = BlockID(len(st.blocks))
		st.blocks = append(st.blocks, data)
	}
	st.bytes += int64(len(data))
	st.live++
	return id
}

func (st *store) get(id BlockID) []byte {
	if int(id) >= len(st.blocks) || st.blocks[id] == nil {
		panic(fmt.Sprintf("bte: access to dead block %d", id))
	}
	return st.blocks[id]
}

func (st *store) freeBlock(id BlockID) {
	bufpool.Put(st.detach(id))
}

// detach removes the block's bookkeeping and returns its bytes without
// recycling them: ownership moves to the caller.
func (st *store) detach(id BlockID) []byte {
	b := st.get(id)
	st.bytes -= int64(len(b))
	st.live--
	st.blocks[id] = nil
	st.free = append(st.free, id)
	return b
}

// Memory is an Engine with no transfer costs: an in-memory block store.
// It models host-memory buffers and is the engine of choice for unit tests
// of pure algorithms.
type Memory struct {
	store
}

// NewMemory creates an empty in-memory engine.
func NewMemory() *Memory { return &Memory{} }

func (m *Memory) Append(p *sim.Proc, data []byte) BlockID { return m.store.append(data) }
func (m *Memory) Read(p *sim.Proc, id BlockID) []byte     { return m.store.get(id) }
func (m *Memory) Peek(id BlockID) []byte                  { return m.store.get(id) }
func (m *Memory) Free(id BlockID)                         { m.store.freeBlock(id) }
func (m *Memory) Detach(id BlockID) []byte                { return m.store.detach(id) }
func (m *Memory) EndReadRun()                             {}
func (m *Memory) Flush(p *sim.Proc)                       {}
func (m *Memory) Bytes() int64                            { return m.store.bytes }
func (m *Memory) Blocks() int                             { return m.store.live }

// DiskEngine stores blocks "on" an emulated disk: contents live in emulation
// host memory, but every Append and Read charges the corresponding
// sequential transfer on the underlying device.
type DiskEngine struct {
	store
	d *disk.Disk
}

// NewDisk creates an engine backed by d.
func NewDisk(d *disk.Disk) *DiskEngine { return &DiskEngine{d: d} }

// Disk returns the underlying device.
func (e *DiskEngine) Disk() *disk.Disk { return e.d }

func (e *DiskEngine) Append(p *sim.Proc, data []byte) BlockID {
	e.d.Write(p, len(data))
	return e.store.append(data)
}

func (e *DiskEngine) Read(p *sim.Proc, id BlockID) []byte {
	b := e.store.get(id)
	e.d.Read(p, len(b))
	return b
}

func (e *DiskEngine) Peek(id BlockID) []byte { return e.store.get(id) }

func (e *DiskEngine) Free(id BlockID)          { e.store.freeBlock(id) }
func (e *DiskEngine) Detach(id BlockID) []byte { return e.store.detach(id) }
func (e *DiskEngine) EndReadRun()              { e.d.EndReadRun() }
func (e *DiskEngine) Flush(p *sim.Proc)        { e.d.Flush(p) }
func (e *DiskEngine) Bytes() int64             { return e.store.bytes }
func (e *DiskEngine) Blocks() int              { return e.store.live }

// Hooked decorates an engine with a transfer callback, letting callers add
// costs the device itself cannot know about — typically the network hops a
// remote accessor pays to reach it (e.g. a host using an ASU's disk for
// spilled priority-queue runs).
type Hooked struct {
	Engine
	// OnXfer runs for every Append and Read with the block size.
	OnXfer func(p *sim.Proc, bytes int)
}

func (h *Hooked) Append(p *sim.Proc, data []byte) BlockID {
	if h.OnXfer != nil {
		h.OnXfer(p, len(data))
	}
	return h.Engine.Append(p, data)
}

func (h *Hooked) Read(p *sim.Proc, id BlockID) []byte {
	b := h.Engine.Read(p, id)
	if h.OnXfer != nil {
		h.OnXfer(p, len(b))
	}
	return b
}

var (
	_ Engine = (*Memory)(nil)
	_ Engine = (*DiskEngine)(nil)
	_ Engine = (*Hooked)(nil)
)
