package bte

import (
	"testing"

	"lmas/internal/disk"
	"lmas/internal/sim"
)

func TestMemoryRoundTrip(t *testing.T) {
	s := sim.New()
	m := NewMemory()
	var got []byte
	s.Spawn("p", func(p *sim.Proc) {
		id := m.Append(p, []byte("hello"))
		got = m.Read(p, id)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("read %q", got)
	}
	if m.Blocks() != 1 || m.Bytes() != 5 {
		t.Fatalf("blocks=%d bytes=%d", m.Blocks(), m.Bytes())
	}
}

func TestMemoryIsFree(t *testing.T) {
	s := sim.New()
	m := NewMemory()
	var elapsed sim.Time
	s.Spawn("p", func(p *sim.Proc) {
		id := m.Append(p, make([]byte, 1<<20))
		m.Read(p, id)
		elapsed = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 0 {
		t.Fatalf("memory engine charged %v", elapsed)
	}
}

func TestFreeAndReuse(t *testing.T) {
	s := sim.New()
	m := NewMemory()
	s.Spawn("p", func(p *sim.Proc) {
		a := m.Append(p, []byte("aa"))
		b := m.Append(p, []byte("bbb"))
		m.Free(a)
		if m.Blocks() != 1 || m.Bytes() != 3 {
			t.Errorf("after free: blocks=%d bytes=%d", m.Blocks(), m.Bytes())
		}
		c := m.Append(p, []byte("c"))
		if c != a {
			t.Errorf("freed slot not reused: got %d, want %d", c, a)
		}
		if string(m.Read(p, b)) != "bbb" || string(m.Read(p, c)) != "c" {
			t.Error("contents wrong after reuse")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadFreedPanics(t *testing.T) {
	s := sim.New()
	m := NewMemory()
	s.Spawn("p", func(p *sim.Proc) {
		id := m.Append(p, []byte("x"))
		m.Free(id)
		defer func() {
			if recover() == nil {
				t.Error("read of freed block did not panic")
			}
		}()
		m.Read(p, id)
	})
	s.Run()
}

func TestDoubleFreePanics(t *testing.T) {
	s := sim.New()
	m := NewMemory()
	s.Spawn("p", func(p *sim.Proc) {
		id := m.Append(p, []byte("x"))
		m.Free(id)
		defer func() {
			if recover() == nil {
				t.Error("double free did not panic")
			}
		}()
		m.Free(id)
	})
	s.Run()
}

func TestEmptyBlock(t *testing.T) {
	s := sim.New()
	m := NewMemory()
	s.Spawn("p", func(p *sim.Proc) {
		id := m.Append(p, nil)
		if got := m.Read(p, id); got == nil || len(got) != 0 {
			t.Errorf("empty block read = %v", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskEngineChargesTransfers(t *testing.T) {
	s := sim.New()
	d := disk.New(s, "d", 100e6) // 100 MB/s
	e := NewDisk(d)
	var afterWrite, afterFlush, afterRead sim.Time
	s.Spawn("p", func(p *sim.Proc) {
		id := e.Append(p, make([]byte, 1_000_000)) // write-behind: ~instant
		afterWrite = p.Now()
		e.Flush(p) // 10 ms
		afterFlush = p.Now()
		e.Read(p, id) // cold read 10 ms
		afterRead = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if afterWrite != 0 {
		t.Fatalf("append blocked until %v", afterWrite)
	}
	if afterFlush != sim.Time(10*sim.Millisecond) {
		t.Fatalf("flush at %v, want 10ms", afterFlush)
	}
	if afterRead != sim.Time(20*sim.Millisecond) {
		t.Fatalf("read done at %v, want 20ms", afterRead)
	}
}

func TestPeekIsFree(t *testing.T) {
	s := sim.New()
	d := disk.New(s, "d", 100e6)
	e := NewDisk(d)
	var elapsed sim.Time
	s.Spawn("p", func(p *sim.Proc) {
		id := e.Append(p, make([]byte, 1_000_000))
		e.Flush(p)
		start := p.Now()
		if got := e.Peek(id); len(got) != 1_000_000 {
			t.Errorf("peek returned %d bytes", len(got))
		}
		elapsed = p.Now() - start
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 0 {
		t.Fatalf("Peek charged %v of virtual time", elapsed)
	}
	// Peek must not have perturbed the device: a cold read still costs
	// a full transfer + nothing extra.
	if d.Busy() != 10*sim.Millisecond {
		t.Fatalf("disk busy %v after peek, want 10ms (write only)", d.Busy())
	}
}

func TestHookedChargesTransfers(t *testing.T) {
	s := sim.New()
	var hooked []int
	h := &Hooked{
		Engine: NewMemory(),
		OnXfer: func(p *sim.Proc, bytes int) { hooked = append(hooked, bytes) },
	}
	s.Spawn("p", func(p *sim.Proc) {
		id := h.Append(p, []byte("abcde"))
		h.Read(p, id)
		h.Peek(id) // peek must NOT trigger the hook
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hooked) != 2 || hooked[0] != 5 || hooked[1] != 5 {
		t.Fatalf("hook calls %v, want [5 5]", hooked)
	}
}

func TestHookedNilCallback(t *testing.T) {
	s := sim.New()
	h := &Hooked{Engine: NewMemory()}
	s.Spawn("p", func(p *sim.Proc) {
		id := h.Append(p, []byte("x"))
		if string(h.Read(p, id)) != "x" {
			t.Error("roundtrip failed")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskEngineEndReadRun(t *testing.T) {
	s := sim.New()
	d := disk.New(s, "d", 100e6)
	e := NewDisk(d)
	if e.Disk() != d {
		t.Fatal("Disk() accessor broken")
	}
	var t1, t2 sim.Time
	s.Spawn("p", func(p *sim.Proc) {
		a := e.Append(p, make([]byte, 1_000_000))
		e.Flush(p)
		start := p.Now()
		e.Read(p, a)
		t1 = p.Now() - start
		e.EndReadRun()
		p.Sleep(50 * sim.Millisecond)
		start = p.Now()
		e.Read(p, a)
		t2 = p.Now() - start
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if t1 != sim.Time(10*sim.Millisecond) || t2 != sim.Time(10*sim.Millisecond) {
		t.Fatalf("cold reads took %v / %v, want 10ms each", t1, t2)
	}
}
