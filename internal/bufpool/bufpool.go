// Package bufpool is the ownership-tracked, size-class allocator for record
// buffers. The emulator streams fixed-size record packets through functors
// and containers; without pooling, every packet's bytes are allocated and
// GC'd several times per hop on the emulation host. This pool gives that
// memory the buffer-recycling discipline TPIE's memory manager imposes on
// external-memory streams: buffers are drawn from per-size-class free lists
// and returned when their owner releases them.
//
// Ownership rules (the contract every layer above follows):
//
//   - Get hands the caller EXCLUSIVE ownership of the returned buffer.
//   - Put requires exclusive ownership: nothing else may reference any part
//     of the buffer's backing array. Putting aliased memory corrupts later
//     borrowers.
//   - Ownership moves with the data: into a container.Packet (Packet.Owned),
//     into a bte.Engine block (Engine.Append), back out via destructive
//     scans (Engine.Detach), and home again via Engine.Free or
//     Packet.Release.
//
// Pooling is a pure wall-clock optimisation: all simulated costs are
// analytic functions of buffer LENGTHS, which pooling never changes, so
// virtual time is byte-identical with the pool in or out of the loop.
//
// Debug mode (enabled by tests via SetDebug) enforces the contract: released
// buffers are poisoned, double-releases and writes-after-release panic, and
// LeakCheck asserts every buffer drawn was returned.
package bufpool

import (
	"fmt"
	"math/bits"
	"sync"
)

const (
	minShift = 6  // smallest class: 64 B
	maxShift = 24 // largest class: 16 MiB
	classes  = maxShift - minShift + 1

	// perClassCap bounds each free list so a burst of releases cannot pin
	// unbounded memory; overflow is dropped to the GC.
	perClassCap = 512

	// Poison fills released buffers in debug mode. 0xDB ("dead buffer")
	// makes use-after-release failures loud: record keys and checksums
	// computed from a released buffer are visibly garbage.
	Poison = 0xDB
)

// Pool is a size-class free-list allocator. The zero value is ready to use;
// all methods are safe for concurrent use (the parallel experiment sweeps
// share one pool across worker goroutines).
type Pool struct {
	mu   sync.Mutex
	free [classes][][]byte

	gets, reuses, puts, drops uint64
	class                     [classes]classCounters

	debug       bool
	outstanding map[*byte]int // live Get buffers: base pointer -> class
	pooled      map[*byte]bool
	// guarded marks buffers currently referenced by an offloaded compute
	// closure (sim engine seam): releasing one panics. Keyed by base
	// pointer, valued by the guarding kernel's name. Debug mode only.
	guarded map[*byte]string
}

// classCounters is one size class's lifetime accounting.
type classCounters struct {
	gets, hits uint64
	inUse      int64 // gets minus puts; floored at zero (foreign buffers)
	highWater  int64
}

// classFor returns the class index whose size is the smallest power of two
// >= n, or -1 when n exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<minShift {
		return 0
	}
	if n > 1<<maxShift {
		return -1
	}
	return bits.Len(uint(n-1)) - minShift
}

// classSize reports the byte size of class c.
func classSize(c int) int { return 1 << (c + minShift) }

// base returns the identifying pointer of b's backing array.
func base(b []byte) *byte { return &b[:cap(b)][0] }

// Get returns a buffer of length n with exclusive ownership. Contents are
// UNSPECIFIED (callers overwrite before reading); capacity is the class
// size. Requests larger than the biggest class fall back to the GC and are
// dropped again on Put.
func (p *Pool) Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	p.mu.Lock()
	p.gets++
	cc := &p.class[c]
	cc.gets++
	cc.inUse++
	if cc.inUse > cc.highWater {
		cc.highWater = cc.inUse
	}
	var b []byte
	if fl := p.free[c]; len(fl) > 0 {
		b = fl[len(fl)-1]
		fl[len(fl)-1] = nil
		p.free[c] = fl[:len(fl)-1]
		p.reuses++
		cc.hits++
	}
	if p.debug {
		if b != nil {
			delete(p.pooled, base(b))
			for i := range b[:cap(b)] {
				if b[:cap(b)][i] != Poison {
					p.mu.Unlock()
					panic(fmt.Sprintf("bufpool: pooled %d-byte buffer modified after release (byte %d)", cap(b), i))
				}
			}
		}
	}
	if b == nil {
		b = make([]byte, classSize(c))
	}
	if p.debug {
		p.outstanding[base(b)] = c
	}
	p.mu.Unlock()
	return b[:n]
}

// Put returns a buffer to its class free list. The caller must own b
// exclusively and not touch it afterwards. Buffers whose capacity is not an
// exact class size (sub-slices, foreign allocations, oversize requests) are
// released to the GC instead; either way the buffer counts as returned.
func (p *Pool) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	cs := cap(b)
	poolable := cs&(cs-1) == 0 && cs >= 1<<minShift && cs <= 1<<maxShift
	p.mu.Lock()
	defer p.mu.Unlock()
	p.puts++
	if poolable {
		if cc := &p.class[classFor(cs)]; cc.inUse > 0 {
			cc.inUse--
		}
	}
	if p.debug {
		bp := base(b)
		if who, ok := p.guarded[bp]; ok {
			panic(fmt.Sprintf("bufpool: %d-byte buffer released while an offloaded %q closure may still reference it (missing Job.Wait before release across the offload seam?)", cs, who))
		}
		if p.pooled[bp] {
			panic(fmt.Sprintf("bufpool: double release of %d-byte buffer", cs))
		}
		delete(p.outstanding, bp)
		if poolable {
			full := b[:cs]
			for i := range full {
				full[i] = Poison
			}
			p.pooled[bp] = true
		}
	}
	if !poolable {
		p.drops++
		return
	}
	c := classFor(cs)
	if len(p.free[c]) >= perClassCap {
		p.drops++
		if p.debug {
			delete(p.pooled, base(b))
		}
		return
	}
	p.free[c] = append(p.free[c], b[:cs])
}

// SetDebug switches contract enforcement on or off, returning the previous
// setting. Toggling drops all pooled buffers and resets tracking, so debug
// invariants always hold for the buffers the pool currently knows about.
func (p *Pool) SetDebug(on bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	prev := p.debug
	p.debug = on
	for c := range p.free {
		p.free[c] = nil
	}
	if on {
		p.outstanding = make(map[*byte]int)
		p.pooled = make(map[*byte]bool)
		p.guarded = make(map[*byte]string)
	} else {
		p.outstanding, p.pooled, p.guarded = nil, nil, nil
	}
	return prev
}

// Guard marks b as referenced by an offloaded compute closure named who:
// until Unguard, any Put of b panics — catching code that releases a pooled
// buffer while a worker goroutine may still be reading or writing it
// (use-after-return across the sim engine's offload seam). The discipline:
// guard every pooled buffer a compute closure captures when the closure is
// built, and make the closure's LAST action the Unguard, so a release racing
// the closure trips the check at the moment of misuse under both engines.
// No-op unless debug mode is on; nil and unpooled buffers are ignored.
func (p *Pool) Guard(b []byte, who string) {
	if cap(b) == 0 {
		return
	}
	p.mu.Lock()
	if p.debug {
		p.guarded[base(b)] = who
	}
	p.mu.Unlock()
}

// Unguard clears a Guard mark. Safe to call from worker goroutines (it is
// designed to be the closing act of an offloaded closure).
func (p *Pool) Unguard(b []byte) {
	if cap(b) == 0 {
		return
	}
	p.mu.Lock()
	if p.debug {
		delete(p.guarded, base(b))
	}
	p.mu.Unlock()
}

// Outstanding reports how many tracked buffers have been drawn but not
// returned. Zero when debug mode is off.
func (p *Pool) Outstanding() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.outstanding)
}

// LeakCheck returns an error naming the number of unreturned buffers, or
// nil when every tracked buffer came home. Only meaningful in debug mode.
func (p *Pool) LeakCheck() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.outstanding); n > 0 {
		var bytes int
		for _, c := range p.outstanding {
			bytes += classSize(c)
		}
		return fmt.Errorf("bufpool: %d buffers (%d pooled bytes) never released", n, bytes)
	}
	return nil
}

// Stats reports lifetime counters: buffers drawn, draws served from a free
// list, buffers returned, and returns dropped to the GC.
func (p *Pool) Stats() (gets, reuses, puts, drops uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.reuses, p.puts, p.drops
}

// ClassStats is one size class's pool-health snapshot.
type ClassStats struct {
	Size      int    // class buffer size in bytes
	Gets      uint64 // buffers drawn from this class
	Hits      uint64 // draws served from the free list
	InUse     int64  // buffers currently drawn and not returned
	HighWater int64  // peak simultaneous in-use count
}

// ClassStatsSnapshot reports per-size-class counters for every class that has
// seen at least one Get, smallest class first.
func (p *Pool) ClassStatsSnapshot() []ClassStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []ClassStats
	for c := range p.class {
		cc := p.class[c]
		if cc.gets == 0 {
			continue
		}
		out = append(out, ClassStats{
			Size:      classSize(c),
			Gets:      cc.gets,
			Hits:      cc.hits,
			InUse:     cc.inUse,
			HighWater: cc.highWater,
		})
	}
	return out
}

// Default is the process-wide pool the record/container/engine layers share.
var Default Pool

// Get draws from the default pool.
func Get(n int) []byte { return Default.Get(n) }

// Put returns to the default pool.
func Put(b []byte) { Default.Put(b) }

// SetDebug toggles the default pool's debug mode.
func SetDebug(on bool) bool { return Default.SetDebug(on) }

// LeakCheck checks the default pool.
func LeakCheck() error { return Default.LeakCheck() }

// Outstanding reports the default pool's unreturned tracked buffers.
func Outstanding() int { return Default.Outstanding() }

// ClassStatsSnapshot reports the default pool's per-class counters.
func ClassStatsSnapshot() []ClassStats { return Default.ClassStatsSnapshot() }

// Guard marks a default-pool buffer as held by an offloaded closure.
func Guard(b []byte, who string) { Default.Guard(b, who) }

// Unguard clears a default-pool Guard mark.
func Unguard(b []byte) { Default.Unguard(b) }
