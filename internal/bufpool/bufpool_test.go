package bufpool

import (
	"strings"
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{1, 0}, {63, 0}, {64, 0},
		{65, 1}, {128, 1},
		{129, 2},
		{1 << 24, maxShift - minShift},
		{1<<24 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetLenCap(t *testing.T) {
	var p Pool
	b := p.Get(100)
	if len(b) != 100 {
		t.Fatalf("len = %d, want 100", len(b))
	}
	if cap(b) != 128 {
		t.Fatalf("cap = %d, want class size 128", cap(b))
	}
	if p.Get(0) != nil {
		t.Fatal("Get(0) should be nil")
	}
}

// TestSizeClassReuse: a released buffer is handed back out for the next
// request of the same class, identical backing array.
func TestSizeClassReuse(t *testing.T) {
	var p Pool
	b := p.Get(200) // class 256
	pb := &b[0]
	p.Put(b)
	c := p.Get(256)
	if &c[0] != pb {
		t.Fatal("expected the released buffer to be reused for same class")
	}
	d := p.Get(257) // class 512: must not reuse
	if len(d) != 257 || cap(d) != 512 {
		t.Fatalf("cross-class Get wrong shape: len=%d cap=%d", len(d), cap(d))
	}
	gets, reuses, puts, drops := p.Stats()
	if gets != 3 || reuses != 1 || puts != 1 || drops != 0 {
		t.Fatalf("stats = %d/%d/%d/%d, want 3/1/1/0", gets, reuses, puts, drops)
	}
}

func TestPoisonOnRelease(t *testing.T) {
	var p Pool
	p.SetDebug(true)
	b := p.Get(64)
	for i := range b {
		b[i] = 7
	}
	p.Put(b)
	// White-box: the pooled copy must be fully poisoned.
	fl := p.free[0]
	if len(fl) != 1 {
		t.Fatalf("free list has %d buffers, want 1", len(fl))
	}
	for i, x := range fl[0] {
		if x != Poison {
			t.Fatalf("byte %d = %#x, want poison %#x", i, x, Poison)
		}
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	var p Pool
	p.SetDebug(true)
	b := p.Get(64)
	p.Put(b)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double release did not panic")
		}
		if !strings.Contains(r.(string), "double release") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	p.Put(b)
}

func TestUseAfterReleasePanics(t *testing.T) {
	var p Pool
	p.SetDebug(true)
	b := p.Get(64)
	p.Put(b)
	b[3] = 1 // write through a stale alias
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("use-after-release was not detected on next Get")
		}
		if !strings.Contains(r.(string), "modified after release") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	p.Get(64)
}

func TestLeakCheck(t *testing.T) {
	var p Pool
	p.SetDebug(true)
	a, b := p.Get(64), p.Get(4096)
	if p.Outstanding() != 2 {
		t.Fatalf("outstanding = %d, want 2", p.Outstanding())
	}
	if err := p.LeakCheck(); err == nil {
		t.Fatal("LeakCheck should report unreturned buffers")
	}
	p.Put(a)
	p.Put(b)
	if err := p.LeakCheck(); err != nil {
		t.Fatalf("LeakCheck after full return: %v", err)
	}
}

// TestSubSliceDropped: only exact class-capacity buffers may re-enter the
// pool; an interior sub-slice (capacity not a class size) is dropped to the
// GC but still counts as returned.
func TestSubSliceDropped(t *testing.T) {
	var p Pool
	p.SetDebug(true)
	b := p.Get(128)
	p.Put(b[16:32:48])
	if _, _, puts, drops := p.Stats(); puts != 1 || drops != 1 {
		t.Fatalf("puts=%d drops=%d, want 1/1", puts, drops)
	}
}

func TestOversizeFallsBack(t *testing.T) {
	var p Pool
	n := 1<<maxShift + 1
	b := p.Get(n)
	if len(b) != n {
		t.Fatalf("oversize len = %d, want %d", len(b), n)
	}
	p.Put(b)
	if _, _, _, drops := p.Stats(); drops != 1 {
		t.Fatal("oversize Put should drop to GC")
	}
}

// TestConcurrent exercises the lock paths under the race detector (the
// parallel experiment sweeps share one pool across goroutines).
func TestConcurrent(t *testing.T) {
	var p Pool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := p.Get(64 << (g % 4))
				b[0] = byte(i)
				p.Put(b)
			}
		}(g)
	}
	wg.Wait()
	gets, _, puts, _ := p.Stats()
	if gets != 1600 || puts != 1600 {
		t.Fatalf("gets=%d puts=%d, want 1600/1600", gets, puts)
	}
}

func TestGuardedReleasePanics(t *testing.T) {
	// The offload-seam check: releasing a buffer an offloaded closure may
	// still reference (guarded, not yet unguarded) must panic — the
	// commit-before-Wait bug the guard exists to catch.
	var p Pool
	p.SetDebug(true)
	b := p.Get(64)
	p.Guard(b, "mergekern")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("release of guarded buffer did not panic")
		}
		if !strings.Contains(r.(string), "mergekern") {
			t.Fatalf("panic does not name the guarding kernel: %v", r)
		}
	}()
	p.Put(b)
}

func TestUnguardAllowsRelease(t *testing.T) {
	// Guard then Unguard — the disciplined closure lifecycle — must leave
	// the buffer releasable and reusable.
	var p Pool
	p.SetDebug(true)
	b := p.Get(64)
	p.Guard(b, "mergekern")
	p.Unguard(b)
	p.Put(b)
	if err := p.LeakCheck(); err != nil {
		t.Fatalf("leak after guarded round-trip: %v", err)
	}
	p.Get(64) // poison check must pass: the buffer really was pooled
}

func TestGuardNoopWithoutDebug(t *testing.T) {
	var p Pool
	b := p.Get(64)
	p.Guard(b, "mergekern")
	p.Put(b) // must not panic: guard tracking is debug-only
	p.Unguard(b)
	p.Guard(nil, "x") // nil and empty buffers are ignored
	p.Unguard(nil)
}
