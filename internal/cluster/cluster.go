// Package cluster assembles the emulated active-storage system of the
// paper's Figure 2: D Active Storage Units (each a processor plus disk) and
// H hosts (each a processor plus large memory), connected by a SAN.
//
// The defining parameter is c, the ratio of host to ASU processing power
// (the paper evaluates c = 4 and c = 8). Computation is charged in abstract
// "ops"; a node converts ops to virtual time through its ops/second rating.
// This replaces the paper's native-execution-plus-cycle-counter measurement
// with a calibrated analytic cost model (see DESIGN.md, "Substitutions"),
// keeping runs deterministic and platform-independent while preserving the
// load-balance behaviour under study.
package cluster

import (
	"fmt"
	"os"
	"strconv"

	"lmas/internal/critpath"
	"lmas/internal/disk"
	"lmas/internal/metrics"
	"lmas/internal/netsim"
	"lmas/internal/recorder"
	"lmas/internal/sim"
	"lmas/internal/telemetry"
	"lmas/internal/trace"
)

// NodeKind distinguishes hosts from ASUs.
type NodeKind int

const (
	// Host is a dedicated compute node with a large memory.
	Host NodeKind = iota
	// ASU is an active storage unit: disk plus (possibly weak) processor.
	ASU
)

func (k NodeKind) String() string {
	if k == Host {
		return "host"
	}
	return "asu"
}

// CostModel assigns op counts to the primitive actions of streaming
// computation. One "op" is roughly one key comparison; the paper's work
// equation for DSM-Sort counts log2(parameter) compares per record per
// stage, and per-record handling covers buffer management and record
// movement around each comparison stage.
type CostModel struct {
	// CompareOps is the cost of one key comparison.
	CompareOps float64
	// HostTouchOps is the per-record handling cost each time a host
	// stage receives, moves, or emits a record (buffering, copying).
	HostTouchOps float64
	// ASUTouchOps is the per-record handling cost at an ASU stage
	// (reading from or appending to local storage, packet assembly).
	ASUTouchOps float64
	// ByteOps is the per-byte cost of record movement through a stage
	// (often the leading drain on host CPU, per Section 1). Applied in
	// addition to the Touch costs.
	ByteOps float64
	// PacketOps is the fixed per-packet handling cost at a stage
	// (message dispatch, buffer management); it is what makes very
	// small packets expensive (TAB-PACKET).
	PacketOps float64
}

// DefaultCosts is the calibrated cost model used by the experiments.
var DefaultCosts = CostModel{
	CompareOps:   1,
	HostTouchOps: 4,
	ASUTouchOps:  5,
	ByteOps:      0.04, // 128-byte record ~ 5 extra ops per touch
	PacketOps:    10,
}

// Touch reports the per-record handling cost on a node of kind k for
// records of the given size.
func (c CostModel) Touch(k NodeKind, recordSize int) float64 {
	base := c.HostTouchOps
	if k == ASU {
		base = c.ASUTouchOps
	}
	return base + c.ByteOps*float64(recordSize)
}

// Params configures an emulated system.
type Params struct {
	Hosts int // H: number of hosts
	ASUs  int // D: number of ASUs

	// C is the host/ASU processing power ratio (paper: 4 or 8).
	C float64
	// HostOpsPerSec rates host processors; ASU rating is this divided
	// by C.
	HostOpsPerSec float64

	// DiskRate is each ASU's aggregate sequential transfer rate, bytes/s.
	DiskRate float64
	// DiskSeek is the positioning time charged on cold (non-sequential)
	// reads; sequential streaming amortizes it away, random index
	// lookups pay it per access.
	DiskSeek sim.Duration
	// NetBandwidth is each interface's bandwidth in bytes/s. Per the
	// paper's assumption, the default is high enough that processors
	// saturate before links.
	NetBandwidth float64
	// NetLatency is the per-message propagation latency.
	NetLatency sim.Duration

	// HostMemRecords / ASUMemRecords bound buffer space in records: the
	// available memory limits the sort run length β on hosts, and ASU
	// buffer space restricts the distribute order α and merge order γ
	// (Section 4.3).
	HostMemRecords int
	ASUMemRecords  int

	RecordSize int
	Costs      CostModel

	// UtilWindow, when positive, attaches a utilization trace of this
	// window width to every node CPU (used for Figure 10).
	UtilWindow sim.Duration

	// IsolationQuantum, when positive, enables performance isolation
	// (the paper's stated future work): functor computation holds a CPU
	// for at most one quantum at a time, and foreground storage
	// requests (Node.ServeRequest) are admitted at high priority, so
	// offloaded computation cannot starve storage access for other
	// applications. Zero disables isolation: functor work holds the CPU
	// for its full duration.
	IsolationQuantum sim.Duration

	// Engine selects the simulator's event-loop engine: "serial" or
	// "parallel". Empty consults the LMAS_SIM_ENGINE environment variable
	// and then defaults to serial. The choice never changes results —
	// both engines are byte-identical — only wall-clock behaviour, so it
	// deliberately stays out of RunReports.
	Engine string
	// EngineWorkers sets the parallel engine's worker-goroutine count;
	// 0 consults LMAS_SIM_WORKERS and then defaults to one per CPU.
	EngineWorkers int
	// EngineGroups, when positive, runs the parallel engine in partition-
	// group mode: that many dedicated workers, each owning the offload ring
	// of node group (partition mod groups). 0 consults LMAS_SIM_GROUPS and
	// then defaults to the shared worker pool. Requires the parallel engine;
	// like Engine/EngineWorkers it never changes results.
	EngineGroups int
}

// EngineSpec resolves the engine selection, applying the environment
// fallbacks described on Params.Engine.
func (p Params) EngineSpec() (sim.EngineSpec, error) {
	name := p.Engine
	if name == "" {
		name = os.Getenv("LMAS_SIM_ENGINE")
	}
	workers := p.EngineWorkers
	if workers == 0 {
		if v := os.Getenv("LMAS_SIM_WORKERS"); v != "" {
			w, err := strconv.Atoi(v)
			if err != nil {
				return sim.EngineSpec{}, fmt.Errorf("cluster: bad LMAS_SIM_WORKERS %q: %w", v, err)
			}
			workers = w
		}
	}
	groups, groupsFromEnv := p.EngineGroups, false
	if groups == 0 {
		if v := os.Getenv("LMAS_SIM_GROUPS"); v != "" {
			g, err := strconv.Atoi(v)
			if err != nil {
				return sim.EngineSpec{}, fmt.Errorf("cluster: bad LMAS_SIM_GROUPS %q: %w", v, err)
			}
			groups, groupsFromEnv = g, true
		}
	}
	spec, err := sim.ParseEngineSpec(name, workers)
	if err != nil {
		return sim.EngineSpec{}, err
	}
	if groups > 0 {
		if spec.Kind != sim.EngineParallel {
			// An explicit param on the serial engine is a configuration
			// error; the env fallback is advisory so a suite-wide
			// LMAS_SIM_GROUPS override composes with runs that explicitly
			// select serial (e.g. differential references).
			if !groupsFromEnv {
				return sim.EngineSpec{}, fmt.Errorf("cluster: engine groups (%d) require the parallel engine", groups)
			}
		} else {
			spec.Groups = groups
		}
	}
	return spec, nil
}

// DefaultParams returns the baseline configuration used throughout the
// experiments: one host, eight ASUs at c=8, 128-byte records.
func DefaultParams() Params {
	return Params{
		Hosts:          1,
		ASUs:           8,
		C:              8,
		HostOpsPerSec:  40e6,
		DiskRate:       90e6,
		DiskSeek:       5 * sim.Millisecond,
		NetBandwidth:   1000e6,
		NetLatency:     20 * sim.Microsecond,
		HostMemRecords: 1 << 20,
		ASUMemRecords:  1 << 15,
		RecordSize:     128,
		Costs:          DefaultCosts,
	}
}

// Validate reports whether the parameters describe a buildable system.
func (p Params) Validate() error {
	switch {
	case p.Hosts < 1:
		return fmt.Errorf("cluster: need at least one host, have %d", p.Hosts)
	case p.ASUs < 1:
		return fmt.Errorf("cluster: need at least one ASU, have %d", p.ASUs)
	case p.C <= 0:
		return fmt.Errorf("cluster: power ratio c must be positive, have %g", p.C)
	case p.HostOpsPerSec <= 0:
		return fmt.Errorf("cluster: host ops/sec must be positive")
	case p.DiskRate <= 0:
		return fmt.Errorf("cluster: disk rate must be positive")
	case p.NetBandwidth <= 0:
		return fmt.Errorf("cluster: network bandwidth must be positive")
	case p.RecordSize < 8:
		return fmt.Errorf("cluster: record size %d too small", p.RecordSize)
	case p.HostMemRecords < 1 || p.ASUMemRecords < 1:
		return fmt.Errorf("cluster: memory bounds must be positive")
	}
	if _, err := p.EngineSpec(); err != nil {
		return err
	}
	return nil
}

// Node is one emulated machine.
type Node struct {
	Name  string
	Kind  NodeKind
	Index int

	// Part is the node's event-ordering partition in the simulator: procs
	// pinned to this node (sim.SpawnOn) break same-instant ties by
	// (partition, per-node seq), the engine-independent key.
	Part int

	CPU       *sim.Resource
	OpsPerSec float64
	Disk      *disk.Disk    // nil on hosts
	NIC       *netsim.Iface // connected to the SAN
	MemRecs   int           // buffer capacity in records
	// Quantum bounds a single CPU hold by functor computation
	// (performance isolation); zero means unbounded holds.
	Quantum sim.Duration

	CPUTrace *metrics.UtilTrace // non-nil when Params.UtilWindow > 0
	// DiskTrace and NICTrace are attached by Cluster.AttachTelemetry so a
	// RunReport can record per-node disk and network utilization alongside
	// CPU. DiskTrace is nil on hosts.
	DiskTrace *metrics.UtilTrace
	NICTrace  *metrics.UtilTrace
}

// Compute spends ops of computation on this node's CPU, blocking p for the
// scaled time (plus any queueing behind other work on the same CPU). With
// isolation enabled, the hold is split into quanta so high-priority storage
// requests wait at most one quantum.
func (n *Node) Compute(p *sim.Proc, ops float64) {
	if ops <= 0 {
		return
	}
	d := sim.Duration(ops / n.OpsPerSec * float64(sim.Second))
	if n.Quantum <= 0 {
		n.CPU.Use(p, d)
		n.chargeCPU(p, d)
		return
	}
	for d > 0 {
		q := n.Quantum
		if q > d {
			q = d
		}
		n.CPU.Use(p, q)
		n.chargeCPU(p, q)
		d -= q
	}
}

// chargeCPU attributes a just-completed CPU hold of duration d (ending now)
// to the attached profiler. Queueing ahead of the hold is charged separately
// by the resource's acquire path.
func (n *Node) chargeCPU(p *sim.Proc, d sim.Duration) {
	if pf := p.Sim().Profiler(); pf != nil {
		now := p.Now()
		pf.Charge(p, sim.ChargeCPU, n.Name, now.Add(-d), now)
	}
}

// ServeRequest spends ops of computation at high priority: the processing
// an ASU performs on behalf of a foreground storage request. It jumps ahead
// of queued functor work and, with isolation enabled, waits at most one
// quantum behind in-progress functor work.
func (n *Node) ServeRequest(p *sim.Proc, ops float64) {
	if ops <= 0 {
		return
	}
	d := sim.Duration(ops / n.OpsPerSec * float64(sim.Second))
	n.CPU.UseHigh(p, d)
	n.chargeCPU(p, d)
}

// ComputeDuration reports how long ops of work takes on this node when the
// CPU is otherwise idle.
func (n *Node) ComputeDuration(ops float64) sim.Duration {
	return sim.Duration(ops / n.OpsPerSec * float64(sim.Second))
}

func (n *Node) String() string { return n.Name }

// Cluster is a built emulated system.
type Cluster struct {
	Params Params
	Sim    *sim.Sim
	Net    *netsim.Net
	Hosts  []*Node
	ASUs   []*Node

	// Telemetry is the run's instrument registry; nil (the default) means
	// telemetry is off and instrumented code no-ops. Set via AttachTelemetry.
	Telemetry *telemetry.Registry

	// Profiler is the run's latency-attribution engine; nil (the default)
	// means attribution is off and instrumented code pays one pointer
	// check. Set via AttachProfiler.
	Profiler *critpath.Profiler

	// Recorder is the run's record stream; nil (the default) means the run
	// is not being recorded. Set via AttachRecorder (sampler.go).
	Recorder recorder.Recorder

	samplers    []*clusterSampler
	queueProbes []queueProbe
	wantProbes  bool

	// lastSched remembers the scheduler-tier counters already copied into
	// the telemetry registry, so repeated BuildReport calls add deltas
	// instead of double-counting.
	lastSched sim.SchedStats
}

// New builds a cluster on a fresh simulator. It panics if p is invalid; use
// Params.Validate to check first.
func New(p Params) *Cluster {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	spec, err := p.EngineSpec()
	if err != nil {
		panic(err) // Validate caught syntax; this is unreachable
	}
	s := sim.NewWithEngine(spec)
	// The network latency is the conservative lookahead: an offloaded
	// closure's results cannot re-enter another node's timeline sooner
	// than one message latency, so the parallel engine joins workers at
	// windows of this width.
	s.SetLookahead(p.NetLatency)
	c := &Cluster{Params: p, Sim: s, Net: netsim.New(s, p.NetLatency)}
	for i := 0; i < p.Hosts; i++ {
		name := fmt.Sprintf("host%d", i)
		n := &Node{
			Name:      name,
			Kind:      Host,
			Index:     i,
			Part:      s.AddPartition(),
			CPU:       sim.NewResource(s, name+".cpu"),
			OpsPerSec: p.HostOpsPerSec,
			NIC:       netsim.NewIface(s, name+".nic", p.NetBandwidth),
			MemRecs:   p.HostMemRecords,
			Quantum:   p.IsolationQuantum,
		}
		c.attachTrace(n)
		c.Hosts = append(c.Hosts, n)
	}
	for i := 0; i < p.ASUs; i++ {
		name := fmt.Sprintf("asu%d", i)
		n := &Node{
			Name:      name,
			Kind:      ASU,
			Index:     i,
			Part:      s.AddPartition(),
			CPU:       sim.NewResource(s, name+".cpu"),
			OpsPerSec: p.HostOpsPerSec / p.C,
			Disk:      newDisk(s, name+".disk", p),
			NIC:       netsim.NewIface(s, name+".nic", p.NetBandwidth),
			MemRecs:   p.ASUMemRecords,
			Quantum:   p.IsolationQuantum,
		}
		c.attachTrace(n)
		c.ASUs = append(c.ASUs, n)
	}
	return c
}

func newDisk(s *sim.Sim, name string, p Params) *disk.Disk {
	d := disk.New(s, name, p.DiskRate)
	d.SetSeek(p.DiskSeek)
	return d
}

func (c *Cluster) attachTrace(n *Node) {
	if c.Params.UtilWindow <= 0 {
		return
	}
	n.CPUTrace = metrics.NewUtilTrace(n.Name+".cpu", c.Params.UtilWindow)
	n.CPU.SetRecorder(n.CPUTrace)
}

// AttachTrace attaches a structured trace sink to the cluster's simulator
// and pre-registers one track per node resource (cpu, disk, nic) in node
// order, hosts first. Eager registration pins the track numbering, so the
// same workload on the same seed exports a byte-identical trace regardless
// of which resource happens to record first. Attach before spawning procs:
// a proc's track is created when it is spawned.
func (c *Cluster) AttachTrace(t *trace.Sink) {
	c.Sim.SetTracer(t)
	if t == nil {
		return
	}
	for _, n := range c.Nodes() {
		t.SharedTrack(n.Name, n.Name+".cpu")
		if n.Disk != nil {
			t.SharedTrack(n.Name, n.Name+".disk")
		}
		t.SharedTrack(n.Name, n.Name+".nic")
	}
	c.wireTraceStream()
}

// wireTraceStream connects an attached trace sink to an attached recorder so
// every trace event also lands in the run record as a Span. Called from both
// AttachTrace and AttachRecorder, so either attach order works; the sink
// replays already-buffered events on hookup, so nothing is lost either way.
// Trace emission happens on the event-loop side only and event order is
// engine-independent, so the streamed spans keep segments deterministic
// below the header.
func (c *Cluster) wireTraceStream() {
	t := c.Sim.Tracer()
	rec := c.Recorder
	if t == nil || rec == nil {
		return
	}
	t.SetStreamer(func(e trace.StreamEvent) {
		sp := recorder.Span{
			T:     e.TS,
			DurNs: e.Dur,
			Ph:    string(e.Ph),
			Group: e.Group,
			Track: e.Track,
			TID:   e.TID,
			Name:  e.Name,
			Cat:   e.Cat,
		}
		if len(e.Args) > 0 {
			sp.Args = make([]recorder.SpanArg, len(e.Args))
			for i, a := range e.Args {
				sp.Args[i] = recorder.SpanArg{Key: a.Key, Val: a.Val}
			}
		}
		rec.Span(sp)
	})
}

// Nodes returns all nodes, hosts first.
func (c *Cluster) Nodes() []*Node {
	all := make([]*Node, 0, len(c.Hosts)+len(c.ASUs))
	all = append(all, c.Hosts...)
	return append(all, c.ASUs...)
}

// Touch reports the per-record handling cost on node n under this cluster's
// cost model and record size.
func (c *Cluster) Touch(n *Node) float64 {
	return c.Params.Costs.Touch(n.Kind, c.Params.RecordSize)
}

// AttachTelemetry installs an instrument registry and attaches utilization
// traces of the given window width (0 means 100ms) to every node's CPU,
// disk, and NIC. Call before spawning workload procs. The recorders and
// instruments only observe busy intervals already being simulated, so
// attaching telemetry never changes virtual-time behaviour: the same seed
// completes at the same instant with or without it.
func (c *Cluster) AttachTelemetry(reg *telemetry.Registry, window sim.Duration) {
	c.Telemetry = reg
	if reg == nil {
		return
	}
	if window <= 0 {
		window = 100 * sim.Millisecond
	}
	for _, n := range c.Nodes() {
		if n.CPUTrace == nil { // Params.UtilWindow may already have attached one
			n.CPUTrace = metrics.NewUtilTrace(n.Name+".cpu", window)
			n.CPU.SetRecorder(n.CPUTrace)
		}
		if n.Disk != nil {
			n.DiskTrace = metrics.NewUtilTrace(n.Name+".disk", window)
			n.Disk.SetRecorder(n.DiskTrace)
		}
		n.NICTrace = metrics.NewUtilTrace(n.Name+".nic", window)
		n.NIC.SetRecorder(n.NICTrace)
	}
}

// AttachProfiler installs a critical-path profiler on the cluster and its
// simulator; nil detaches. Like telemetry, the profiler is a pure observer
// of intervals the simulation already computes, so attaching it never
// changes virtual-time behaviour. Attach before spawning workload procs so
// every hand-off is seen.
func (c *Cluster) AttachProfiler(pf *critpath.Profiler) {
	c.Profiler = pf
	if pf == nil {
		c.Sim.SetProfiler(nil) // avoid a typed-nil interface in the sim
		return
	}
	c.Sim.SetProfiler(pf)
}

// Config snapshots the cluster's parameters in report form. It is the same
// value BuildReport stamps on the report, exposed separately so a run
// recorder can hash and store the configuration before the run starts.
func (c *Cluster) Config() telemetry.ClusterConfig {
	p := c.Params
	return telemetry.ClusterConfig{
		Hosts:         p.Hosts,
		ASUs:          p.ASUs,
		C:             p.C,
		HostOpsPerSec: p.HostOpsPerSec,
		DiskRateMBps:  p.DiskRate / 1e6,
		DiskSeekMs:    p.DiskSeek.Seconds() * 1e3,
		NetMBps:       p.NetBandwidth / 1e6,
		NetLatencyUs:  p.NetLatency.Seconds() * 1e6,
		RecordSize:    p.RecordSize,
	}
}

// BuildReport snapshots the cluster's configuration, per-node utilization
// traces, and (when telemetry is attached) every registered instrument and
// the decision audit log into a RunReport.
func (c *Cluster) BuildReport(name string, seed int64, elapsed sim.Duration) *telemetry.RunReport {
	rep := telemetry.NewRunReport(name, seed, elapsed)
	rep.Config = c.Config()
	for _, n := range c.Nodes() {
		rep.Nodes = append(rep.Nodes, telemetry.NodeReport{
			Name:      n.Name,
			Kind:      n.Kind.String(),
			OpsPerSec: n.OpsPerSec,
			CPU:       telemetry.UtilSeriesOf(n.CPUTrace),
			Disk:      telemetry.UtilSeriesOf(n.DiskTrace),
			NIC:       telemetry.UtilSeriesOf(n.NICTrace),
		})
	}
	c.fillSchedStats()
	c.Telemetry.Fill(rep)
	if c.Profiler != nil {
		rep.Critpath = c.Profiler.Report()
	}
	return rep
}

// fillSchedStats copies the sim kernel's scheduler-tier activity (timer-wheel
// hits, near-deadline heap spills, recycled proc shells) into the telemetry
// registry, so every RunReport — and hence `lmasreport show` — can explain
// scheduler behavior per run. The kernel counts non-daemon events only, so
// these counters are byte-identical across engines and recording.
func (c *Cluster) fillSchedStats() {
	st := c.Sim.SchedStats()
	c.Telemetry.Counter("sim.scheduler.wheel_hits").Add(int64(st.WheelHits - c.lastSched.WheelHits))
	c.Telemetry.Counter("sim.scheduler.heap_spills").Add(int64(st.HeapSpills - c.lastSched.HeapSpills))
	c.Telemetry.Counter("sim.scheduler.proc_reuses").Add(int64(st.ProcReuses - c.lastSched.ProcReuses))
	c.lastSched = st
}
