package cluster

import (
	"math"
	"strings"
	"testing"

	"lmas/internal/sim"
)

func TestNewBuildsRequestedShape(t *testing.T) {
	p := DefaultParams()
	p.Hosts, p.ASUs = 2, 16
	c := New(p)
	if len(c.Hosts) != 2 || len(c.ASUs) != 16 {
		t.Fatalf("built %d hosts, %d ASUs", len(c.Hosts), len(c.ASUs))
	}
	if len(c.Nodes()) != 18 {
		t.Fatalf("Nodes() = %d", len(c.Nodes()))
	}
	for _, h := range c.Hosts {
		if h.Kind != Host || h.Disk != nil || h.NIC == nil {
			t.Fatalf("bad host %v", h)
		}
	}
	for _, a := range c.ASUs {
		if a.Kind != ASU || a.Disk == nil || a.NIC == nil {
			t.Fatalf("bad ASU %v", a)
		}
	}
}

func TestPowerRatio(t *testing.T) {
	p := DefaultParams()
	p.C = 8
	c := New(p)
	got := c.Hosts[0].OpsPerSec / c.ASUs[0].OpsPerSec
	if math.Abs(got-8) > 1e-9 {
		t.Fatalf("host/ASU ops ratio = %v, want 8", got)
	}
}

func TestComputeScalesWithNodeSpeed(t *testing.T) {
	p := DefaultParams()
	p.C = 4
	c := New(p)
	var hostT, asuT sim.Time
	c.Sim.Spawn("h", func(pr *sim.Proc) {
		c.Hosts[0].Compute(pr, 1e6)
		hostT = pr.Now()
	})
	c.Sim.Spawn("a", func(pr *sim.Proc) {
		c.ASUs[0].Compute(pr, 1e6)
		asuT = pr.Now()
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	ratio := float64(asuT) / float64(hostT)
	if math.Abs(ratio-4) > 1e-6 {
		t.Fatalf("same work took %vx longer on ASU, want 4x", ratio)
	}
}

func TestComputeSerializesOnOneCPU(t *testing.T) {
	p := DefaultParams()
	c := New(p)
	n := c.Hosts[0]
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		c.Sim.Spawn("w", func(pr *sim.Proc) {
			n.Compute(pr, p.HostOpsPerSec) // exactly 1 second of work
			done[i] = pr.Now()
		})
	}
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if done[0] != sim.Time(sim.Second) || done[1] != sim.Time(2*sim.Second) {
		t.Fatalf("done = %v; CPU must serialize", done)
	}
}

func TestZeroOpsFree(t *testing.T) {
	c := New(DefaultParams())
	var total sim.Time
	c.Sim.Spawn("z", func(pr *sim.Proc) {
		c.Hosts[0].Compute(pr, 0)
		c.Hosts[0].Compute(pr, -5)
		total = pr.Now()
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Fatalf("zero ops took %v", total)
	}
}

func TestUtilTraceAttached(t *testing.T) {
	p := DefaultParams()
	p.UtilWindow = 100 * sim.Millisecond
	c := New(p)
	c.Sim.Spawn("w", func(pr *sim.Proc) {
		c.Hosts[0].Compute(pr, p.HostOpsPerSec/10) // 100 ms of work
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	tr := c.Hosts[0].CPUTrace
	if tr == nil {
		t.Fatal("no CPU trace attached")
	}
	if got := tr.At(0); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("window 0 utilization = %v, want 1.0", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.Hosts = 0 },
		func(p *Params) { p.ASUs = 0 },
		func(p *Params) { p.C = 0 },
		func(p *Params) { p.HostOpsPerSec = 0 },
		func(p *Params) { p.DiskRate = -1 },
		func(p *Params) { p.NetBandwidth = 0 },
		func(p *Params) { p.RecordSize = 4 },
		func(p *Params) { p.HostMemRecords = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: bad params validated", i)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestTouchCosts(t *testing.T) {
	cm := CostModel{CompareOps: 1, HostTouchOps: 4, ASUTouchOps: 5, ByteOps: 0.05}
	if got := cm.Touch(Host, 100); got != 9 {
		t.Fatalf("host touch = %v, want 9", got)
	}
	if got := cm.Touch(ASU, 100); got != 10 {
		t.Fatalf("asu touch = %v, want 10", got)
	}
}

func TestNodeNamesDistinct(t *testing.T) {
	p := DefaultParams()
	p.Hosts, p.ASUs = 3, 5
	c := New(p)
	seen := map[string]bool{}
	for _, n := range c.Nodes() {
		if seen[n.Name] {
			t.Fatalf("duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
		if n.Kind == Host && !strings.HasPrefix(n.Name, "host") {
			t.Fatalf("host named %q", n.Name)
		}
	}
}

func TestKindString(t *testing.T) {
	if Host.String() != "host" || ASU.String() != "asu" {
		t.Fatal("NodeKind strings wrong")
	}
}

func TestIsolationQuantumChunksCompute(t *testing.T) {
	p := DefaultParams()
	p.IsolationQuantum = 100 * sim.Microsecond
	c := New(p)
	asu := c.ASUs[0]
	// Functor work runs 10 ms; a request arriving mid-way must be
	// served within ~a quantum, not after the whole computation.
	var reqLatency sim.Duration
	c.Sim.Spawn("functor", func(pr *sim.Proc) {
		asu.Compute(pr, asu.OpsPerSec/100) // 10 ms of work
	})
	c.Sim.Spawn("request", func(pr *sim.Proc) {
		pr.Sleep(sim.Millisecond)
		start := pr.Now()
		asu.ServeRequest(pr, asu.OpsPerSec/10000) // 0.1 ms of work
		reqLatency = sim.Duration(pr.Now() - start)
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if reqLatency > 400*sim.Microsecond {
		t.Fatalf("request latency %v with 100us quantum; isolation failed", reqLatency)
	}
}

func TestNoQuantumMeansMonolithicHolds(t *testing.T) {
	c := New(DefaultParams()) // IsolationQuantum zero
	asu := c.ASUs[0]
	var reqLatency sim.Duration
	c.Sim.Spawn("functor", func(pr *sim.Proc) {
		asu.Compute(pr, asu.OpsPerSec/100) // 10 ms hold
	})
	c.Sim.Spawn("request", func(pr *sim.Proc) {
		pr.Sleep(sim.Millisecond)
		start := pr.Now()
		asu.ServeRequest(pr, asu.OpsPerSec/10000)
		reqLatency = sim.Duration(pr.Now() - start)
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if reqLatency < 8*sim.Millisecond {
		t.Fatalf("request latency %v; without isolation it must wait out the hold", reqLatency)
	}
}

func TestServeRequestJumpsQueuedFunctorWork(t *testing.T) {
	p := DefaultParams()
	c := New(p)
	asu := c.ASUs[0]
	var order []string
	// Two functor computations queued; the request must run after the
	// first (holding) one, before the second.
	for i := 0; i < 2; i++ {
		i := i
		c.Sim.Spawn("functor", func(pr *sim.Proc) {
			asu.Compute(pr, asu.OpsPerSec/1000)
			order = append(order, "functor")
			_ = i
		})
	}
	c.Sim.Spawn("request", func(pr *sim.Proc) {
		pr.Sleep(100 * sim.Microsecond)
		asu.ServeRequest(pr, asu.OpsPerSec/100000)
		order = append(order, "request")
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[1] != "request" {
		t.Fatalf("order %v; request must precede queued functor work", order)
	}
}

func TestEngineSpecGroups(t *testing.T) {
	p := DefaultParams()
	p.Engine, p.EngineGroups = "parallel", 4
	spec, err := p.EngineSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != sim.EngineParallel || spec.Groups != 4 {
		t.Fatalf("spec = %+v, want parallel with 4 groups", spec)
	}
	// Groups demand the parallel engine: a serial selection must fail
	// loudly instead of silently ignoring the partition-group request.
	p.Engine = "serial"
	if _, err := p.EngineSpec(); err == nil {
		t.Fatal("EngineSpec accepted groups on the serial engine")
	}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted groups on the serial engine")
	}
}

func TestEngineSpecGroupsEnvFallback(t *testing.T) {
	t.Setenv("LMAS_SIM_ENGINE", "parallel")
	t.Setenv("LMAS_SIM_GROUPS", "3")
	spec, err := DefaultParams().EngineSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != sim.EngineParallel || spec.Groups != 3 {
		t.Fatalf("spec = %+v, want parallel with 3 groups from env", spec)
	}
	t.Setenv("LMAS_SIM_GROUPS", "nope")
	if _, err := DefaultParams().EngineSpec(); err == nil {
		t.Fatal("EngineSpec accepted a malformed LMAS_SIM_GROUPS")
	}
	// Env-sourced groups are advisory: a run that explicitly selects the
	// serial engine must ignore them (suite-wide overrides compose), unlike
	// an explicit EngineGroups param, which errors.
	t.Setenv("LMAS_SIM_GROUPS", "3")
	ps := DefaultParams()
	ps.Engine = "serial"
	spec2, err := ps.EngineSpec()
	if err != nil {
		t.Fatalf("env groups on explicit serial engine: %v", err)
	}
	if spec2.Kind != sim.EngineSerial || spec2.Groups != 0 {
		t.Fatalf("env groups leaked into serial spec: %+v", spec2)
	}
	// An explicit param outranks the env var.
	p := DefaultParams()
	p.Engine, p.EngineGroups = "parallel", 2
	spec, err = p.EngineSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Groups != 2 {
		t.Fatalf("explicit EngineGroups lost to env: %+v", spec)
	}
}
