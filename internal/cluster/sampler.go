package cluster

import (
	"lmas/internal/recorder"
	"lmas/internal/sim"
	"lmas/internal/telemetry"
)

// This file wires the run-record layer into the cluster: a daemon proc per
// attachment wakes on a virtual-time interval and snapshots per-node busy
// time and registered queue probes. Daemons never extend a run (Sim.Run ends
// when the last workload event dispatches; see sim daemon support), and the
// snapshot only reads state the simulation already computes, so attaching a
// recorder or periodic gauges keeps virtual time byte-identical.

// queueProbe reads one queue's instantaneous depth and high-water mark.
type queueProbe struct {
	name  string
	probe func() (depth, high int)
}

// RegisterQueueProbe registers a queue for periodic sampling. Pipelines
// register their queues at construction time when WantsQueueProbes reports
// true; registration order fixes the sample order, so it is deterministic
// for a given workload.
func (c *Cluster) RegisterQueueProbe(name string, probe func() (depth, high int)) {
	c.queueProbes = append(c.queueProbes, queueProbe{name: name, probe: probe})
}

// WantsQueueProbes reports whether a sampler is attached, i.e. whether
// pipelines should bother registering queue probes.
func (c *Cluster) WantsQueueProbes() bool { return c.wantProbes }

// AttachRecorder streams the run into rec: one Sample per interval (0 means
// 100ms of virtual time) with per-node utilization and queue depths, plus
// every load-manager decision as it is logged. Attach after AttachTelemetry
// (the sampler reads the utilization traces telemetry installs) and before
// spawning workload procs. Call FinishSampling after Sim.Run and before
// BuildReport; the harness passes the finished report to rec.Finish itself.
func (c *Cluster) AttachRecorder(rec recorder.Recorder, every sim.Duration) {
	if rec == nil {
		return
	}
	if every <= 0 {
		every = 100 * sim.Millisecond
	}
	c.Recorder = rec
	c.wantProbes = true
	c.Telemetry.SetOnDecide(func(d telemetry.Decision) {
		ev := recorder.Event{T: d.T, Kind: "decision", Source: d.Source, Action: d.Action, Detail: d.Detail}
		if len(d.Readings) > 0 {
			ev.Fields = make(map[string]float64, len(d.Readings))
			for _, rd := range d.Readings {
				ev.Fields[rd.Key] = rd.Value
			}
		}
		rec.Event(ev)
	})
	c.startSampler("recorder.sampler", every, rec, false)
	c.wireTraceStream()
}

// AttachPeriodicGauges additionally emits the periodic observations as
// telemetry gauges — node.<name>.cpu.busy_sec (cumulative completed busy
// time) and queue.<name>.depth / .high_water — so they land in the
// RunReport. Off by default: it grows the report, so runs without it stay
// byte-identical to the committed baselines. Requires AttachTelemetry.
func (c *Cluster) AttachPeriodicGauges(every sim.Duration) {
	if every <= 0 || c.Telemetry == nil {
		return
	}
	c.wantProbes = true
	c.startSampler("gauge.sampler", every, nil, true)
}

// FinishSampling flushes one final observation at the run's end instant and
// kills the sampler daemons (so sweep cells never leak parked goroutines).
// Call after Sim.Run returns and before BuildReport. Safe when no sampler is
// attached.
func (c *Cluster) FinishSampling() {
	now := c.Sim.Now()
	for _, s := range c.samplers {
		if now > s.prevT {
			s.tick(now)
		}
		c.Sim.Kill(s.proc)
	}
	c.samplers = nil
	c.queueProbes = nil
	c.wantProbes = false
	if c.Recorder != nil {
		c.Telemetry.SetOnDecide(nil)
		c.Sim.Tracer().SetStreamer(nil)
	}
}

type clusterSampler struct {
	c      *Cluster
	every  sim.Duration
	rec    recorder.Recorder // nil: gauges only
	gauges bool
	proc   *sim.Proc
	// prev holds each node's cumulative (cpu, disk, nic) busy time at the
	// previous tick; interval utilization is the delta over the elapsed
	// interval.
	prev  [][3]sim.Duration
	prevT sim.Time
}

func (c *Cluster) startSampler(name string, every sim.Duration, rec recorder.Recorder, gauges bool) {
	s := &clusterSampler{
		c: c, every: every, rec: rec, gauges: gauges,
		prev: make([][3]sim.Duration, len(c.Hosts)+len(c.ASUs)),
	}
	s.proc = c.Sim.SpawnDaemon(name, func(p *sim.Proc) {
		for {
			p.Sleep(every)
			s.tick(p.Now())
		}
	})
	c.samplers = append(c.samplers, s)
}

// tick snapshots the cluster at virtual instant now. Utilization is derived
// from completed resource holds (a hold still in progress shows up when it
// ends), so a long hold completing within one interval can push the raw
// ratio past 1; it is clamped for display. The cumulative busy counter is
// exact and monotone — that is the reconcilable metric.
func (s *clusterSampler) tick(now sim.Time) {
	c := s.c
	dt := float64(now - s.prevT)
	var nodes []recorder.NodeSample
	for i, n := range c.Nodes() {
		busy := [3]sim.Duration{
			n.CPUTrace.TotalBusy(),
			n.DiskTrace.TotalBusy(),
			n.NICTrace.TotalBusy(),
		}
		if s.rec != nil {
			ns := recorder.NodeSample{Node: n.Name, CPUBusy: busy[0].Seconds()}
			if dt > 0 {
				ns.CPU = clamp01(float64(busy[0]-s.prev[i][0]) / dt)
				ns.Disk = clamp01(float64(busy[1]-s.prev[i][1]) / dt)
				ns.NIC = clamp01(float64(busy[2]-s.prev[i][2]) / dt)
			}
			nodes = append(nodes, ns)
		}
		if s.gauges {
			c.Telemetry.Gauge("node."+n.Name+".cpu.busy_sec").Set(now, busy[0].Seconds())
		}
		s.prev[i] = busy
	}
	var queues []recorder.QueueSample
	for _, qp := range c.queueProbes {
		depth, high := qp.probe()
		if s.rec != nil {
			queues = append(queues, recorder.QueueSample{Queue: qp.name, Depth: depth, High: high})
		}
		if s.gauges {
			c.Telemetry.Gauge("queue."+qp.name+".depth").Set(now, float64(depth))
			c.Telemetry.Gauge("queue."+qp.name+".high_water").Set(now, float64(high))
		}
	}
	var lats []recorder.LatencySnapshot
	if s.rec != nil {
		for _, h := range c.Telemetry.LatencyHistograms() {
			lats = append(lats, recorder.LatencySnapshot{
				Name:  h.Name(),
				Count: h.Count(),
				P50Ns: h.Quantile(0.50),
				P99Ns: h.Quantile(0.99),
			})
		}
	}
	s.prevT = now
	if s.rec != nil {
		s.rec.Sample(recorder.Sample{T: int64(now), Nodes: nodes, Queues: queues, Latencies: lats})
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
