package container

import (
	"testing"

	"lmas/internal/bte"
	"lmas/internal/disk"
	"lmas/internal/records"
	"lmas/internal/sim"
)

func benchFill(b *testing.B, eng bte.Engine) *Stream {
	b.Helper()
	s := sim.New()
	st := NewStream("bench", eng, recSize)
	s.Spawn("fill", func(p *sim.Proc) {
		for i := 0; i < 256; i++ {
			st.Append(p, NewPacket(records.Generate(64, recSize, int64(i), records.Uniform{})))
		}
	})
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	return st
}

func BenchmarkStreamScanMemory(b *testing.B) {
	st := benchFill(b, bte.NewMemory())
	s := sim.New()
	b.ResetTimer()
	count := 0
	s.Spawn("scan", func(p *sim.Proc) {
		for i := 0; i < b.N; i += 256 {
			sc := st.Scan()
			for {
				if _, ok := sc.Next(p); !ok {
					break
				}
				count++
			}
		}
	})
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkStreamScanDisk(b *testing.B) {
	s := sim.New()
	d := disk.New(s, "bench", 100e6)
	st := NewStream("bench", bte.NewDisk(d), recSize)
	s.Spawn("run", func(p *sim.Proc) {
		for i := 0; i < 256; i++ {
			st.Append(p, NewPacket(records.Generate(64, recSize, int64(i), records.Uniform{})))
		}
		for i := 0; i < b.N; i += 256 {
			sc := st.Scan()
			for {
				if _, ok := sc.Next(p); !ok {
					break
				}
			}
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkForEach(b *testing.B) {
	st := benchFill(b, bte.NewMemory())
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i += 256 {
		st.ForEach(func(pk Packet) bool { n += pk.Len(); return true })
	}
	_ = n
}
