// Package container implements the stored-data collection types of the
// extended TPIE model (Section 3.2): Streams (ordered scanning), Sets
// (unordered scanning with pending/completed marks and optional destructive
// scans), and Arrays (random access), together with the Packet grouping
// mechanism that preserves intermediate structure — such as sortedness —
// inside a collection (Section 3.2, Figure 4).
//
// Containers store Packets as blocks on a bte.Engine, so scanning a
// container charges the virtual-time I/O costs of the node that owns it.
package container

import (
	"fmt"

	"lmas/internal/bte"
	"lmas/internal/records"
	"lmas/internal/sim"
)

// Packet is a group of related records that is always processed as a whole.
// Packets "impose a partial order on the records in a set, and constrain
// the distribution of records across functor instances": a packet is never
// split by routing, so properties established within it (like sortedness)
// survive later phases.
type Packet struct {
	Buf records.Buffer
	// Sorted records that the packet's records are nondecreasing by key.
	Sorted bool
	// Bucket is the distribute subset this packet belongs to, or -1.
	Bucket int
	// Run identifies the sorted run this packet is part of, or -1.
	Run int
	// Owned records that the packet holds exclusive ownership of Buf's
	// storage. Release returns owned storage to the buffer pool; appending
	// an owned packet to a collection transfers ownership to the engine.
	Owned bool
	// Prov is the packet's provenance chain in the critical-path profiler,
	// or 0 when no profiler is attached (or the packet predates one).
	// Chains do not persist through collection storage: packets reloaded
	// from an engine start unchained.
	Prov int32
}

// NewPacket wraps buf in an unannotated packet that does not own its storage.
func NewPacket(buf records.Buffer) Packet { return Packet{Buf: buf, Bucket: -1, Run: -1} }

// NewOwnedPacket wraps buf in a packet that owns buf's storage exclusively:
// whoever consumes the packet must re-emit it, append it to a collection
// (transferring ownership to the engine), or Release it back to the pool.
func NewOwnedPacket(buf records.Buffer) Packet {
	return Packet{Buf: buf, Bucket: -1, Run: -1, Owned: true}
}

// Release returns the packet's buffer to the pool if the packet owns it, and
// clears the packet either way. A no-op on unowned packets, so consumers can
// release unconditionally: engine-owned packets (non-destructive scans) and
// sub-packets aliasing a larger buffer pass through unharmed.
func (pk *Packet) Release() {
	if pk.Owned {
		pk.Buf.Release()
	}
	*pk = Packet{}
}

// Len reports the number of records in the packet.
func (pk Packet) Len() int { return pk.Buf.Len() }

// Bytes reports the packet payload size.
func (pk Packet) Bytes() int { return pk.Buf.Bytes() }

func (pk Packet) String() string {
	return fmt.Sprintf("packet{n=%d sorted=%v bucket=%d run=%d}", pk.Len(), pk.Sorted, pk.Bucket, pk.Run)
}

// meta is the per-packet metadata a collection keeps in memory; the record
// payload itself lives in the engine.
type meta struct {
	id     bte.BlockID
	n      int
	sorted bool
	bucket int
	run    int
	// consumed marks the packet completed for the current scan.
	consumed bool
	freed    bool
}

// Collection is the common implementation of Stream, Set and Array.
type Collection struct {
	name    string
	eng     bte.Engine
	recSize int
	pks     []meta
	live    int // packets not yet freed
	records int64
	// scanOrder is scratch for Scan order slices. Starting a scan already
	// invalidates earlier scans on the same collection (resetMarks), so
	// reusing one slice is safe.
	scanOrder []int
}

func newCollection(name string, eng bte.Engine, recSize int) Collection {
	return Collection{name: name, eng: eng, recSize: recSize}
}

// Name reports the collection name.
func (c *Collection) Name() string { return c.name }

// Engine returns the backing block engine.
func (c *Collection) Engine() bte.Engine { return c.eng }

// Packets reports the number of live packets.
func (c *Collection) Packets() int { return c.live }

// Records reports the total number of records in live packets.
func (c *Collection) Records() int64 { return c.records }

// RecordSize reports the record size for this collection.
func (c *Collection) RecordSize() int { return c.recSize }

// append stores pk as a new block. Per the engine's Append contract, this
// transfers ownership of pk.Buf's storage to the engine: the caller must not
// use, re-append or Release the buffer afterwards.
func (c *Collection) append(p *sim.Proc, pk Packet) {
	if pk.Buf.Size() != c.recSize {
		panic(fmt.Sprintf("container %s: record size %d, want %d", c.name, pk.Buf.Size(), c.recSize))
	}
	id := c.eng.Append(p, bufBytes(pk.Buf))
	if len(c.pks) == cap(c.pks) {
		// Grow with a floor: collections hold at least a handful of
		// packets, and the default doubling from tiny caps costs several
		// reallocations per stream in run-heavy phases.
		ncap := 2 * cap(c.pks)
		if ncap < 16 {
			ncap = 16
		}
		np := make([]meta, len(c.pks), ncap)
		copy(np, c.pks)
		c.pks = np
	}
	c.pks = append(c.pks, meta{id: id, n: pk.Len(), sorted: pk.Sorted, bucket: pk.Bucket, run: pk.Run})
	c.live++
	c.records += int64(pk.Len())
}

// Flush waits for buffered writes on the backing engine to retire.
func (c *Collection) Flush(p *sim.Proc) { c.eng.Flush(p) }

// load reads packet i from the engine.
func (c *Collection) load(p *sim.Proc, i int) Packet {
	m := &c.pks[i]
	if m.freed {
		panic(fmt.Sprintf("container %s: load of freed packet %d", c.name, i))
	}
	data := c.eng.Read(p, m.id)
	return Packet{
		Buf:    records.FromBytes(data, c.recSize),
		Sorted: m.sorted,
		Bucket: m.bucket,
		Run:    m.run,
	}
}

func (c *Collection) freePacket(i int) {
	m := &c.pks[i]
	if m.freed {
		return
	}
	c.eng.Free(m.id)
	m.freed = true
	c.live--
	c.records -= int64(m.n)
}

// detachPacket drops packet i's bookkeeping and hands its storage to the
// caller without recycling it (destructive scans transfer ownership to the
// packet they just delivered).
func (c *Collection) detachPacket(i int) {
	m := &c.pks[i]
	if m.freed {
		return
	}
	c.eng.Detach(m.id)
	m.freed = true
	c.live--
	c.records -= int64(m.n)
}

// FreeAll releases every live packet's storage back to the buffer pool.
// It charges no virtual time; harnesses call it after validation to retire
// a collection so leak checks can account for every buffer.
func (c *Collection) FreeAll() {
	for i := range c.pks {
		c.freePacket(i)
	}
}

// ForEach visits every live packet without charging virtual time or
// touching device state; it exists for validation and instrumentation
// outside the emulated timeline. fn returning false stops the walk.
func (c *Collection) ForEach(fn func(pk Packet) bool) {
	for i := range c.pks {
		m := &c.pks[i]
		if m.freed {
			continue
		}
		pk := Packet{
			Buf:    records.FromBytes(c.eng.Peek(m.id), c.recSize),
			Sorted: m.sorted,
			Bucket: m.bucket,
			Run:    m.run,
		}
		if !fn(pk) {
			return
		}
	}
}

// resetMarks clears the pending/completed marks for a new scan.
func (c *Collection) resetMarks() {
	for i := range c.pks {
		c.pks[i].consumed = false
	}
}

// orderScratch returns the collection's reusable scan-order slice, sized n.
func (c *Collection) orderScratch(n int) []int {
	if cap(c.scanOrder) < n {
		c.scanOrder = make([]int, n)
	}
	return c.scanOrder[:n]
}

// bufBytes exposes a buffer's backing bytes for engine storage.
func bufBytes(b records.Buffer) []byte { return b.Raw() }

// Stream is the traditional sequential-access collection: "a read on stream
// always delivers the next unconsumed record in a defined sequence, even if
// this is less efficient" (Section 3.2).
type Stream struct{ Collection }

// NewStream creates an empty stream on eng.
func NewStream(name string, eng bte.Engine, recSize int) *Stream {
	return &Stream{newCollection(name, eng, recSize)}
}

// Append adds pk at the end of the stream.
func (s *Stream) Append(p *sim.Proc, pk Packet) { s.append(p, pk) }

// Scan starts an ordered scan over all packets. Each scan marks all records
// pending again and invalidates earlier scans on the same collection.
func (s *Stream) Scan() *Scan {
	s.resetMarks()
	order := s.orderScratch(len(s.pks))
	for i := range order {
		order[i] = i
	}
	return &Scan{c: &s.Collection, order: order, pending: s.live}
}

// Set is an unordered collection: "data containers that do not define the
// order of records returned in satisfying read operations. This allows the
// system to provide records in any order that is convenient" (Section 3.2).
type Set struct{ Collection }

// NewSet creates an empty set on eng.
func NewSet(name string, eng bte.Engine, recSize int) *Set {
	return &Set{newCollection(name, eng, recSize)}
}

// Add inserts pk into the set.
func (s *Set) Add(p *sim.Proc, pk Packet) { s.append(p, pk) }

// Scan starts a scan that delivers every pending packet exactly once, in an
// order convenient to the system. rotate biases the starting position, so
// different consumers (or repeated scans) observe different orders —
// callers must not depend on any particular one. If destructive is true,
// storage for completed packets is released as they are consumed, "so that
// only pending records remain in the collection" (Section 3.2).
func (s *Set) Scan(rotate int, destructive bool) *Scan {
	s.resetMarks()
	n := len(s.pks)
	order := s.orderScratch(n)
	if n > 0 {
		start := ((rotate % n) + n) % n
		for i := 0; i < n; i++ {
			order[i] = (start + i) % n
		}
	}
	return &Scan{c: &s.Collection, order: order, destructive: destructive, pending: s.live}
}

// Array supports random access to packets by index, the container type
// backing external index structures such as the R-trees of Section 4.2.
type Array struct{ Collection }

// NewArray creates an empty array on eng.
func NewArray(name string, eng bte.Engine, recSize int) *Array {
	return &Array{newCollection(name, eng, recSize)}
}

// Append adds pk and returns its index.
func (a *Array) Append(p *sim.Proc, pk Packet) int {
	a.append(p, pk)
	return len(a.pks) - 1
}

// Get reads packet i. Random accesses end any sequential read run on the
// backing engine first, so they never benefit from read-ahead.
func (a *Array) Get(p *sim.Proc, i int) Packet {
	if i < 0 || i >= len(a.pks) {
		panic(fmt.Sprintf("container %s: index %d out of range [0,%d)", a.name, i, len(a.pks)))
	}
	a.eng.EndReadRun()
	return a.load(p, i)
}

// Len reports the number of packets ever appended (freed slots included).
func (a *Array) Len() int { return len(a.pks) }

// Scan iterates a collection's packets. The paper's model scans collections
// "in their entirety: records contained in a set or stream are marked as
// pending or completed for each scan".
type Scan struct {
	c           *Collection
	order       []int
	pos         int
	destructive bool
	pending     int // live packets this scan has not yet delivered
}

// Next delivers the next pending packet, blocking p for I/O time. ok is
// false when the scan has consumed the entire collection. Packets delivered
// by a destructive scan own their storage: the consumer must re-emit,
// append, or Release them.
func (sc *Scan) Next(p *sim.Proc) (Packet, bool) {
	for sc.pos < len(sc.order) {
		i := sc.order[sc.pos]
		sc.pos++
		m := &sc.c.pks[i]
		if m.consumed || m.freed {
			if m.freed && !m.consumed {
				sc.pending-- // freed externally since the scan started
			}
			continue
		}
		pk := sc.c.load(p, i)
		m.consumed = true
		sc.pending--
		if sc.destructive {
			// The scan has the only reference now; ownership of the
			// block's storage moves to the delivered packet.
			sc.c.detachPacket(i)
			pk.Owned = true
		}
		return pk, true
	}
	sc.c.eng.EndReadRun()
	return Packet{}, false
}

// Remaining reports how many pending packets the scan has not yet delivered.
func (sc *Scan) Remaining() int { return sc.pending }
