package container

import (
	"testing"
	"testing/quick"

	"lmas/internal/bte"
	"lmas/internal/disk"
	"lmas/internal/records"
	"lmas/internal/sim"
)

const recSize = 16

func mkPacket(keys ...records.Key) Packet {
	b := records.NewBuffer(len(keys), recSize)
	for i, k := range keys {
		b.SetKey(i, k)
	}
	return NewPacket(b)
}

// run executes fn as a proc on a fresh sim and fails the test on error.
func run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	s := sim.New()
	s.Spawn("test", fn)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamOrderedScan(t *testing.T) {
	run(t, func(p *sim.Proc) {
		st := NewStream("s", bte.NewMemory(), recSize)
		for i := 0; i < 5; i++ {
			st.Append(p, mkPacket(records.Key(i*10), records.Key(i*10+1)))
		}
		if st.Packets() != 5 || st.Records() != 10 {
			t.Errorf("packets=%d records=%d", st.Packets(), st.Records())
		}
		sc := st.Scan()
		for i := 0; i < 5; i++ {
			pk, ok := sc.Next(p)
			if !ok {
				t.Fatalf("scan ended early at %d", i)
			}
			if pk.Buf.Key(0) != records.Key(i*10) {
				t.Fatalf("packet %d out of order: key %d", i, pk.Buf.Key(0))
			}
		}
		if _, ok := sc.Next(p); ok {
			t.Error("scan did not end")
		}
	})
}

func TestStreamRescanDeliversEverything(t *testing.T) {
	run(t, func(p *sim.Proc) {
		st := NewStream("s", bte.NewMemory(), recSize)
		for i := 0; i < 3; i++ {
			st.Append(p, mkPacket(records.Key(i)))
		}
		for scanN := 0; scanN < 3; scanN++ {
			sc := st.Scan()
			n := 0
			for {
				if _, ok := sc.Next(p); !ok {
					break
				}
				n++
			}
			if n != 3 {
				t.Fatalf("scan %d delivered %d packets, want 3 (marks must reset)", scanN, n)
			}
		}
	})
}

func TestSetScanRotationsCoverAll(t *testing.T) {
	run(t, func(p *sim.Proc) {
		set := NewSet("set", bte.NewMemory(), recSize)
		const n = 7
		for i := 0; i < n; i++ {
			set.Add(p, mkPacket(records.Key(i)))
		}
		for rotate := -3; rotate < 10; rotate++ {
			seen := map[records.Key]bool{}
			sc := set.Scan(rotate, false)
			for {
				pk, ok := sc.Next(p)
				if !ok {
					break
				}
				k := pk.Buf.Key(0)
				if seen[k] {
					t.Fatalf("rotate=%d: duplicate packet %d", rotate, k)
				}
				seen[k] = true
			}
			if len(seen) != n {
				t.Fatalf("rotate=%d: saw %d of %d packets", rotate, len(seen), n)
			}
		}
	})
}

func TestSetRotationChangesOrder(t *testing.T) {
	run(t, func(p *sim.Proc) {
		set := NewSet("set", bte.NewMemory(), recSize)
		for i := 0; i < 4; i++ {
			set.Add(p, mkPacket(records.Key(i)))
		}
		first := func(rotate int) records.Key {
			sc := set.Scan(rotate, false)
			pk, _ := sc.Next(p)
			return pk.Buf.Key(0)
		}
		if first(0) == first(2) {
			t.Error("rotation does not change delivery order")
		}
	})
}

func TestDestructiveScanReleasesStorage(t *testing.T) {
	run(t, func(p *sim.Proc) {
		eng := bte.NewMemory()
		set := NewSet("set", eng, recSize)
		for i := 0; i < 4; i++ {
			set.Add(p, mkPacket(records.Key(i), records.Key(i+100)))
		}
		sc := set.Scan(0, true)
		sc.Next(p)
		sc.Next(p)
		if set.Packets() != 2 {
			t.Fatalf("after consuming 2 of 4: %d live packets", set.Packets())
		}
		if eng.Blocks() != 2 {
			t.Fatalf("engine still holds %d blocks", eng.Blocks())
		}
		if sc.Remaining() != 2 {
			t.Fatalf("Remaining = %d", sc.Remaining())
		}
		for {
			if _, ok := sc.Next(p); !ok {
				break
			}
		}
		if set.Packets() != 0 || set.Records() != 0 || eng.Bytes() != 0 {
			t.Fatal("destructive scan left storage behind")
		}
	})
}

func TestPacketMetadataSurvivesStorage(t *testing.T) {
	run(t, func(p *sim.Proc) {
		st := NewStream("s", bte.NewMemory(), recSize)
		pk := mkPacket(3, 1, 2)
		pk.Buf.Sort()
		pk.Sorted = true
		pk.Bucket = 7
		pk.Run = 42
		st.Append(p, pk)
		got, ok := st.Scan().Next(p)
		if !ok {
			t.Fatal("no packet")
		}
		if !got.Sorted || got.Bucket != 7 || got.Run != 42 {
			t.Fatalf("metadata lost: %v", got)
		}
		if !got.Buf.IsSorted() {
			t.Fatal("payload corrupted")
		}
	})
}

func TestArrayRandomAccess(t *testing.T) {
	run(t, func(p *sim.Proc) {
		a := NewArray("a", bte.NewMemory(), recSize)
		var idx []int
		for i := 0; i < 5; i++ {
			idx = append(idx, a.Append(p, mkPacket(records.Key(i*7))))
		}
		if a.Len() != 5 {
			t.Fatalf("Len = %d", a.Len())
		}
		for i := 4; i >= 0; i-- {
			pk := a.Get(p, idx[i])
			if pk.Buf.Key(0) != records.Key(i*7) {
				t.Fatalf("Get(%d) wrong packet", i)
			}
		}
	})
}

func TestArrayOutOfRangePanics(t *testing.T) {
	run(t, func(p *sim.Proc) {
		a := NewArray("a", bte.NewMemory(), recSize)
		defer func() {
			if recover() == nil {
				t.Error("no panic for out-of-range Get")
			}
		}()
		a.Get(p, 0)
	})
}

func TestRecordSizeMismatchPanics(t *testing.T) {
	run(t, func(p *sim.Proc) {
		st := NewStream("s", bte.NewMemory(), recSize)
		defer func() {
			if recover() == nil {
				t.Error("no panic for record size mismatch")
			}
		}()
		st.Append(p, NewPacket(records.NewBuffer(1, recSize*2)))
	})
}

func TestScanOnDiskChargesIO(t *testing.T) {
	s := sim.New()
	d := disk.New(s, "d", 100e6)
	eng := bte.NewDisk(d)
	var elapsed sim.Time
	s.Spawn("p", func(p *sim.Proc) {
		st := NewStream("s", eng, recSize)
		buf := records.NewBuffer(62500, recSize) // 1 MB
		st.Append(p, NewPacket(buf))
		st.Flush(p)
		start := p.Now()
		sc := st.Scan()
		for {
			if _, ok := sc.Next(p); !ok {
				break
			}
		}
		elapsed = p.Now() - start
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != sim.Time(10*sim.Millisecond) {
		t.Fatalf("1MB scan took %v, want 10ms at 100MB/s", elapsed)
	}
}

func TestEmptyCollectionScans(t *testing.T) {
	run(t, func(p *sim.Proc) {
		st := NewStream("s", bte.NewMemory(), recSize)
		if _, ok := st.Scan().Next(p); ok {
			t.Error("empty stream delivered a packet")
		}
		set := NewSet("set", bte.NewMemory(), recSize)
		if _, ok := set.Scan(5, true).Next(p); ok {
			t.Error("empty set delivered a packet")
		}
	})
}

// TestSetScanProperty: for any packet count and rotation, a scan delivers
// each packet exactly once.
func TestSetScanProperty(t *testing.T) {
	f := func(nRaw uint8, rotate int8) bool {
		n := int(nRaw % 20)
		ok := true
		run(t, func(p *sim.Proc) {
			set := NewSet("set", bte.NewMemory(), recSize)
			for i := 0; i < n; i++ {
				set.Add(p, mkPacket(records.Key(i)))
			}
			seen := make(map[records.Key]int)
			sc := set.Scan(int(rotate), false)
			for {
				pk, more := sc.Next(p)
				if !more {
					break
				}
				seen[pk.Buf.Key(0)]++
			}
			if len(seen) != n {
				ok = false
				return
			}
			for _, c := range seen {
				if c != 1 {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
