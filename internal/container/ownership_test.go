package container

import (
	"testing"

	"lmas/internal/bte"
	"lmas/internal/bufpool"
	"lmas/internal/records"
	"lmas/internal/sim"
)

// mkPooledPacket builds a packet whose buffer ownership transfers into
// whatever collection it is added to.
func mkPooledPacket(keys ...records.Key) Packet {
	b := records.NewPooled(len(keys), recSize)
	for i, k := range keys {
		b.SetKey(i, k)
	}
	return NewOwnedPacket(b)
}

// TestDestructiveScanTransfersOwnership: packets delivered by a destructive
// scan own their storage; releasing them returns it to the pool, and the
// debug leak check balances over the whole add/scan/release cycle.
func TestDestructiveScanTransfersOwnership(t *testing.T) {
	prev := bufpool.SetDebug(true)
	defer bufpool.SetDebug(prev)
	run(t, func(p *sim.Proc) {
		s := NewSet("s", bte.NewMemory(), recSize)
		for i := 0; i < 4; i++ {
			s.Add(p, mkPooledPacket(records.Key(i), records.Key(i+10)))
		}
		sc := s.Scan(0, true)
		n := 0
		for {
			pk, ok := sc.Next(p)
			if !ok {
				break
			}
			if !pk.Owned {
				t.Fatal("destructive scan must deliver owned packets")
			}
			pk.Release()
			n++
		}
		if n != 4 {
			t.Fatalf("delivered %d packets, want 4", n)
		}
		if s.Packets() != 0 || s.Records() != 0 {
			t.Fatalf("set not emptied: %d packets, %d records", s.Packets(), s.Records())
		}
		if err := bufpool.LeakCheck(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestNonDestructiveScanUnowned: regular scans deliver engine-owned packets;
// releasing them must be a harmless no-op, and FreeAll returns the storage.
func TestNonDestructiveScanUnowned(t *testing.T) {
	prev := bufpool.SetDebug(true)
	defer bufpool.SetDebug(prev)
	run(t, func(p *sim.Proc) {
		s := NewSet("s", bte.NewMemory(), recSize)
		for i := 0; i < 3; i++ {
			s.Add(p, mkPooledPacket(records.Key(i)))
		}
		sc := s.Scan(1, false)
		for {
			pk, ok := sc.Next(p)
			if !ok {
				break
			}
			if pk.Owned {
				t.Fatal("non-destructive scan must not hand out ownership")
			}
			pk.Release() // no-op: the engine still owns the block
		}
		if s.Packets() != 3 {
			t.Fatalf("packets = %d, want 3 after non-destructive scan", s.Packets())
		}
		s.FreeAll()
		if s.Packets() != 0 {
			t.Fatalf("packets = %d after FreeAll", s.Packets())
		}
		if err := bufpool.LeakCheck(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestScanRemainingRunningCount: Remaining must track deliveries exactly,
// including packets freed externally mid-scan.
func TestScanRemainingRunningCount(t *testing.T) {
	run(t, func(p *sim.Proc) {
		st := NewStream("s", bte.NewMemory(), recSize)
		for i := 0; i < 5; i++ {
			st.Append(p, mkPacket(records.Key(i)))
		}
		sc := st.Scan()
		if sc.Remaining() != 5 {
			t.Fatalf("initial Remaining = %d, want 5", sc.Remaining())
		}
		for want := 4; want >= 0; want-- {
			if _, ok := sc.Next(p); !ok {
				t.Fatal("scan ended early")
			}
			if sc.Remaining() != want {
				t.Fatalf("Remaining = %d, want %d", sc.Remaining(), want)
			}
		}
		if _, ok := sc.Next(p); ok || sc.Remaining() != 0 {
			t.Fatal("scan should be exhausted")
		}
	})
}

// TestScanOrderScratchReuse: starting a second scan must not corrupt
// delivery (the order slice is reused across scans on one collection).
func TestScanOrderScratchReuse(t *testing.T) {
	run(t, func(p *sim.Proc) {
		s := NewSet("s", bte.NewMemory(), recSize)
		for i := 0; i < 6; i++ {
			s.Add(p, mkPacket(records.Key(i)))
		}
		for rot := 0; rot < 3; rot++ {
			sc := s.Scan(rot, false)
			seen := map[records.Key]bool{}
			for {
				pk, ok := sc.Next(p)
				if !ok {
					break
				}
				seen[pk.Buf.Key(0)] = true
			}
			if len(seen) != 6 {
				t.Fatalf("rotation %d delivered %d distinct packets, want 6", rot, len(seen))
			}
		}
	})
}
