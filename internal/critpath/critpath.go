// Package critpath is a virtual-time latency-attribution engine: it tags
// every packet flowing through a pipeline with a provenance chain and, at
// each hand-off, charges the elapsed interval to a resource class on a
// specific node. At end of run it aggregates a per-stage × per-node
// waterfall, extracts the critical path — the longest dependency chain of
// charged intervals from first read to last write — and emits a bottleneck
// verdict (the resource class with the largest share of attributed packet
// latency across all chains) that can be diffed against the analytic
// prediction of loadmgr.Pass1Model.
//
// The profiler is a pure observer, nil-by-default like trace.Sink: it is
// driven by the sim.Profiler charge callbacks (CPU holds, disk and network
// transfers, resource queueing, condition waits) plus explicit chain
// bookkeeping from the pipeline layer, and attaching it never changes
// virtual-time behaviour — the same seed completes at the same instant with
// or without it.
//
// Accounting model. A chain is the life of one packet lineage: it is
// "current" on at most one proc at a time, and charges against a chain are
// clamped to be non-overlapping (each charge starts no earlier than the
// previous one ended). That yields the per-chain conservation identity
//
//	span == attributed + gap,  gap >= 0
//
// where span is the chain's end minus its birth and gap is time the chain
// spent with nobody working on it (buffered in a queue with no consumer
// chain bookkeeping, or idle between hand-offs).
//
// Blame model. Raw charge kinds go to the waterfall unchanged; chain totals
// are blamed on the resource *behind* the time. CPU service and CPU queueing
// are blamed on the node's processor class, disk and network transfers on
// those devices. Waits are blamed transitively: every proc accrues a "mix" of
// where its own time has gone, and time spent waiting *for* a proc — a
// producer blocked on its full queue, or a packet buffered in its inbox — is
// apportioned by the consumer's mix. A stage that is itself backpressured by
// a saturated host therefore forwards the blame downstream instead of
// absorbing it, so the verdict names the saturated resource no matter how
// many hops of queueing sit between it and the latency. Waits with no
// registered consumer (starvation on an empty queue) stay in the residual
// cond-wait class and never enter a mix.
package critpath

import (
	"fmt"

	"lmas/internal/sim"
)

// Class is a blame class: the resource (or residual wait category) an
// interval of a chain's life is attributed to.
type Class string

// The blame classes. The first four are physical resources and are the only
// candidates for a bottleneck verdict; the last two are residual wait
// categories that appear when time cannot be pinned on a resource.
const (
	ClassHostCPU   Class = "host-cpu"
	ClassASUCPU    Class = "asu-cpu"
	ClassDisk      Class = "disk"
	ClassNet       Class = "net"
	ClassQueueWait Class = "queue-wait"
	ClassCondWait  Class = "cond-wait"
)

const (
	classHostCPU = iota
	classASUCPU
	classDisk
	classNet
	classQueueWait
	classCondWait
	numClasses
)

var classNames = [numClasses]Class{
	ClassHostCPU, ClassASUCPU, ClassDisk, ClassNet, ClassQueueWait, ClassCondWait,
}

func classIndex(c Class) int {
	for i, n := range classNames {
		if n == c {
			return i
		}
	}
	panic(fmt.Sprintf("critpath: unknown class %q", c))
}

// row accumulates raw charge kinds for one (stage, node) cell of the
// waterfall.
type row struct {
	stage, node string
	kinds       [sim.NumChargeKinds]int64
	charges     int64
}

type rowKey struct{ stage, node string }

// procState is the attribution state of one bound proc.
type procState struct {
	row *row
	// cpu is the blame class for CPU service and CPU queueing on this
	// proc's node (host-cpu or asu-cpu).
	cpu int
	// wait is the blame class for time packets spend queued waiting for
	// this proc (the stage's dominant service resource).
	wait int
	// cur is the chain this proc is currently working on (0 = none);
	// last is the most recent chain it worked on, the derivation parent
	// for packets emitted outside any current chain (e.g. from Flush).
	cur, last int32
	// mix is the proc's own blamed-time decomposition — service time,
	// processor queueing, and backpressure waits already pinned on a
	// resource — independent of any chain. Waits *for* this proc are
	// apportioned by it: if the proc's own time is mostly downstream
	// backpressure, time queued in front of it is mostly the downstream
	// resource's fault too, which is what carries blame transitively to
	// the saturated stage. Residual (unregistered) waits stay out, so a
	// starved proc's idle time never dilutes the apportioning.
	mix      [numClasses]int64
	mixTotal int64
}

// mixWindow bounds the mix's memory: whenever the accrued total crosses it,
// every entry is halved, turning the mix into an exponentially-decayed
// sliding window of roughly this much recent proc time. Without decay the
// ramp-up phase (no backpressure yet, so waits blame the local processor)
// would bias apportioning for the rest of the run; with it the mix tracks
// the current regime. Runs shorter than the window never decay.
const mixWindow = int64(4 << 20) // ~4.2ms of proc time

func (st *procState) addMix(cls int, d int64) {
	st.mix[cls] += d
	st.mixTotal += d
	if st.mixTotal >= mixWindow {
		st.mixTotal = 0
		for c := range st.mix {
			st.mix[c] /= 2
			st.mixTotal += st.mix[c]
		}
	}
}

// chain is one packet lineage's accounting record.
type chain struct {
	parent  int32
	dead    bool
	born    sim.Time
	end     sim.Time // latest charged instant
	lastEnd sim.Time // non-overlap clamp: next charge starts here or later
	ns      [numClasses]int64
}

// Profiler implements sim.Profiler and the chain bookkeeping the pipeline
// layer drives. All methods are safe on a nil *Profiler (no-ops), so call
// sites can stay unconditional; the sim-level charge path is still gated by
// the sim's single profiler pointer check.
type Profiler struct {
	procs   map[*sim.Proc]*procState
	rows    map[rowKey]*row
	rowList []*row // creation order; sorted at Report time
	chains  []chain
	blame   map[string]int // cond name -> fallback blame class for waits on it
	// blameProc maps a cond name to the proc whose service the wait is
	// backpressure from; waits are apportioned by that proc's mix.
	blameProc map[string]*sim.Proc
	charges   int64
}

// New creates an empty profiler.
func New() *Profiler {
	return &Profiler{
		procs:     make(map[*sim.Proc]*procState),
		rows:      make(map[rowKey]*row),
		blame:     make(map[string]int),
		blameProc: make(map[string]*sim.Proc),
	}
}

var _ sim.Profiler = (*Profiler)(nil)

func (pf *Profiler) row(stage, node string) *row {
	k := rowKey{stage, node}
	r := pf.rows[k]
	if r == nil {
		r = &row{stage: stage, node: node}
		pf.rows[k] = r
		pf.rowList = append(pf.rowList, r)
	}
	return r
}

// Bind registers p as belonging to stage on node. cpuClass is the blame
// class of the node's processor (host-cpu or asu-cpu); waitBlame is the
// class charged for time packets spend queued waiting for this proc —
// normally the same as cpuClass, or disk for NoCPU stages whose service is
// pure storage DMA. Unbound procs (input loaders, monitors) are ignored by
// every charge.
func (pf *Profiler) Bind(p *sim.Proc, stage, node string, cpuClass, waitBlame Class) {
	if pf == nil {
		return
	}
	pf.procs[p] = &procState{
		row:  pf.row(stage, node),
		cpu:  classIndex(cpuClass),
		wait: classIndex(waitBlame),
	}
}

// BlameWait declares that condition waits on the named cond (e.g. an inbox's
// "not-full" backpressure cond) are blamed on cls rather than the residual
// cond-wait class. Producer-side blocking on a full queue is how a saturated
// consumer slows the pipeline; charging it to the consumer's service class
// is what lets the verdict name the saturated resource.
func (pf *Profiler) BlameWait(name string, cls Class) {
	if pf == nil {
		return
	}
	pf.blame[name] = classIndex(cls)
}

// BlameWaitProc declares that waits on the named cond are backpressure from
// consumer: they are apportioned across blame classes in proportion to where
// the consumer proc's own time has gone so far (its mix). That carries blame
// transitively — when the consumer is itself mostly blocked on a stage
// further downstream, waits on its queue land mostly on that downstream
// resource, not on the consumer's processor. Until the consumer has accrued
// any mix, waits fall back to the static class cls, as with BlameWait.
func (pf *Profiler) BlameWaitProc(name string, consumer *sim.Proc, cls Class) {
	if pf == nil {
		return
	}
	pf.blame[name] = classIndex(cls)
	pf.blameProc[name] = consumer
}

// apportion splits d across blame classes in proportion to mix. Shares use
// float64 against int64 overflow on long runs; the rounding remainder goes to
// the largest class, keeping the split deterministic and summing to d.
func apportion(d int64, mix *[numClasses]int64, total int64) [numClasses]int64 {
	var v [numClasses]int64
	used := int64(0)
	best := -1
	for c := 0; c < numClasses; c++ {
		if mix[c] == 0 {
			continue
		}
		share := int64(float64(d) * (float64(mix[c]) / float64(total)))
		v[c] = share
		used += share
		if best < 0 || mix[c] > mix[best] {
			best = c
		}
	}
	if best >= 0 {
		v[best] += d - used
		if v[best] < 0 {
			v[best] = 0
		}
	}
	return v
}

// Charge implements sim.Profiler: proc p was blocked by (or served by) res
// for [from, to) of virtual time. Raw kinds accumulate on the proc's
// (stage, node) waterfall row; if the proc has a current chain the interval
// is additionally blamed on a class and charged to the chain.
func (pf *Profiler) Charge(p *sim.Proc, kind sim.ChargeKind, res string, from, to sim.Time) {
	if to <= from {
		return
	}
	st := pf.procs[p]
	if st == nil {
		return
	}
	st.row.kinds[kind] += int64(to - from)
	st.row.charges++
	pf.charges++
	d := int64(to - from)
	var cls int
	switch kind {
	case sim.ChargeCPU, sim.ChargeQueueWait:
		// Service on, or queueing for, this node's processor.
		cls = st.cpu
	case sim.ChargeDisk:
		cls = classDisk
	case sim.ChargeNet:
		cls = classNet
	default: // sim.ChargeCondWait
		if cst := pf.procs[pf.blameProc[res]]; cst != nil && cst.mixTotal > 0 {
			// Dynamic backpressure blame: split by the consumer's mix.
			v := apportion(d, &cst.mix, cst.mixTotal)
			for c, ns := range v {
				if ns > 0 {
					st.addMix(c, ns)
				}
			}
			if st.cur != 0 {
				pf.chargeChainVec(st.cur, &v, from, to)
			}
			return
		}
		if b, ok := pf.blame[res]; ok {
			cls = b
		} else {
			// Residual wait: pins no resource and stays out of the mix.
			if st.cur != 0 {
				pf.chargeChain(st.cur, classCondWait, from, to)
			}
			return
		}
	}
	st.addMix(cls, d)
	if st.cur != 0 {
		pf.chargeChain(st.cur, cls, from, to)
	}
}

// ChargeQueueTime charges the interval a packet spent buffered in the
// consuming proc's inbox: raw queue-wait on the consumer's waterfall row,
// blamed in proportion to where the consumer's own time goes (its mix) — a
// packet queued in front of a busy stage waits on whatever that stage's
// service cycle is made of, so inbox wait in front of a backpressured
// consumer propagates to the downstream resource actually responsible. Falls
// back to the consumer's static service class until a mix accrues. Call after
// BeginPacket so the charge lands on the packet's chain.
func (pf *Profiler) ChargeQueueTime(p *sim.Proc, from, to sim.Time) {
	if pf == nil || to <= from {
		return
	}
	st := pf.procs[p]
	if st == nil {
		return
	}
	st.row.kinds[sim.ChargeQueueWait] += int64(to - from)
	st.row.charges++
	pf.charges++
	if st.cur == 0 {
		return
	}
	if st.mixTotal > 0 {
		v := apportion(int64(to-from), &st.mix, st.mixTotal)
		pf.chargeChainVec(st.cur, &v, from, to)
		return
	}
	pf.chargeChain(st.cur, st.wait, from, to)
}

// chargeChain adds [from, to) to chain id under cls, clamped so charges on
// one chain never overlap: the clamp is what makes the per-chain
// conservation identity (span == attributed + gap, gap >= 0) hold by
// construction.
func (pf *Profiler) chargeChain(id int32, cls int, from, to sim.Time) {
	ch := &pf.chains[id-1]
	if from < ch.lastEnd {
		from = ch.lastEnd
	}
	if to <= from {
		return
	}
	ch.ns[cls] += int64(to - from)
	ch.lastEnd = to
	if to > ch.end {
		ch.end = to
	}
}

// chargeChainVec charges an apportioned class vector to chain id under the
// same non-overlap clamp as chargeChain; when the clamp shortens the interval
// the vector is re-apportioned over the shorter duration so the chain is
// never charged more than the clamped time.
func (pf *Profiler) chargeChainVec(id int32, v *[numClasses]int64, from, to sim.Time) {
	ch := &pf.chains[id-1]
	if from < ch.lastEnd {
		from = ch.lastEnd
	}
	if to <= from {
		return
	}
	d := int64(to - from)
	var total int64
	for _, ns := range v {
		total += ns
	}
	w := *v
	if total != d && total > 0 {
		w = apportion(d, v, total)
	}
	for c, ns := range w {
		ch.ns[c] += ns
	}
	ch.lastEnd = to
	if to > ch.end {
		ch.end = to
	}
}

func (pf *Profiler) newChain(p *sim.Proc, parent int32) int32 {
	born := p.Now()
	pf.chains = append(pf.chains, chain{parent: parent, born: born, end: born, lastEnd: born})
	return int32(len(pf.chains))
}

// StartChain creates a new root chain born now and makes it p's current
// chain. Sources call it before reading each packet so the read's I/O time
// lands on the packet's chain. The returned id goes into Packet.Prov.
func (pf *Profiler) StartChain(p *sim.Proc) int32 {
	if pf == nil {
		return 0
	}
	st := pf.procs[p]
	if st == nil {
		return 0
	}
	id := pf.newChain(p, 0)
	st.cur, st.last = id, id
	return id
}

// Derive creates a new chain born now whose parent is p's current chain (or,
// when p is between packets, the last chain it worked on). The emitting proc
// keeps working on the parent; the derived id travels with the emitted
// packet and becomes current on whichever proc picks it up.
func (pf *Profiler) Derive(p *sim.Proc) int32 {
	if pf == nil {
		return 0
	}
	st := pf.procs[p]
	if st == nil {
		return 0
	}
	parent := st.cur
	if parent == 0 {
		parent = st.last
	}
	return pf.newChain(p, parent)
}

// BeginPacket makes chain id current on p: subsequent charges against p are
// charged to the chain. id 0 (an unchained packet) clears the current chain.
func (pf *Profiler) BeginPacket(p *sim.Proc, id int32) {
	if pf == nil {
		return
	}
	if st := pf.procs[p]; st != nil {
		st.cur = id
	}
}

// EndPacket ends p's work on its current chain. Every loop must call it
// before blocking for its next input, so a chain is never current on a proc
// that is merely waiting for unrelated work.
func (pf *Profiler) EndPacket(p *sim.Proc) {
	if pf == nil {
		return
	}
	if st := pf.procs[p]; st != nil {
		if st.cur != 0 {
			st.last = st.cur
		}
		st.cur = 0
	}
}

// Abandon marks chain id dead — created speculatively (a source starts a
// chain before discovering its scan is exhausted) — and clears it from p.
// Dead chains keep their waterfall charges but are excluded from chain
// counts, conservation, and the critical path.
func (pf *Profiler) Abandon(p *sim.Proc, id int32) {
	if pf == nil || id == 0 {
		return
	}
	pf.chains[id-1].dead = true
	if st := pf.procs[p]; st != nil {
		if st.cur == id {
			st.cur = 0
		}
		if st.last == id {
			st.last = 0
		}
	}
}

// classNodeCounts reports how many resource instances back each blame class:
// distinct nodes whose procs bind that processor class, distinct nodes with
// disk charges, and one shared interconnect for net. The verdict divides
// blame by these so parallel resources are not over-weighted.
func (pf *Profiler) classNodeCounts() [numClasses]int {
	var sets [numClasses]map[string]struct{}
	add := func(c int, node string) {
		if sets[c] == nil {
			sets[c] = make(map[string]struct{})
		}
		sets[c][node] = struct{}{}
	}
	for _, st := range pf.procs {
		add(st.cpu, st.row.node)
	}
	for _, r := range pf.rowList {
		if r.kinds[sim.ChargeDisk] > 0 {
			add(classDisk, r.node)
		}
	}
	var out [numClasses]int
	for c := range sets {
		out[c] = len(sets[c])
	}
	out[classNet] = 1
	return out
}

// NumChains reports the number of live (non-abandoned) chains.
func (pf *Profiler) NumChains() int {
	if pf == nil {
		return 0
	}
	n := 0
	for i := range pf.chains {
		if !pf.chains[i].dead {
			n++
		}
	}
	return n
}

// Conservation verifies the accounting identity on every live chain: charges
// are non-overlapping, so attributed time never exceeds the chain's span and
// span == attributed + gap with gap >= 0. It returns the first violation.
func (pf *Profiler) Conservation() error {
	if pf == nil {
		return nil
	}
	for i := range pf.chains {
		ch := &pf.chains[i]
		if ch.dead {
			continue
		}
		var attr int64
		for _, v := range ch.ns {
			attr += v
		}
		span := int64(ch.end - ch.born)
		if span < 0 {
			return fmt.Errorf("critpath: chain %d ends at %v before its birth %v", i+1, ch.end, ch.born)
		}
		if attr > span {
			return fmt.Errorf("critpath: chain %d attributes %dns over a span of %dns", i+1, attr, span)
		}
		if ch.lastEnd > ch.end {
			return fmt.Errorf("critpath: chain %d lastEnd %v beyond end %v", i+1, ch.lastEnd, ch.end)
		}
	}
	return nil
}
