package critpath

import (
	"bytes"
	"encoding/json"
	"testing"

	"lmas/internal/sim"
)

// withProc runs fn inside a single spawned proc and drives the sim to
// completion.
func withProc(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	s := sim.New()
	s.Spawn("test", fn)
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestNilProfilerIsSafe(t *testing.T) {
	var pf *Profiler
	withProc(t, func(p *sim.Proc) {
		pf.Bind(p, "s", "n", ClassHostCPU, ClassHostCPU)
		pf.BlameWait("q not-full", ClassDisk)
		if id := pf.StartChain(p); id != 0 {
			t.Errorf("nil StartChain = %d, want 0", id)
		}
		if id := pf.Derive(p); id != 0 {
			t.Errorf("nil Derive = %d, want 0", id)
		}
		pf.BeginPacket(p, 0)
		pf.ChargeQueueTime(p, 0, 10)
		pf.EndPacket(p)
		pf.Abandon(p, 0)
	})
	if pf.NumChains() != 0 {
		t.Errorf("nil NumChains = %d", pf.NumChains())
	}
	if pf.Report() != nil {
		t.Error("nil Report should be nil")
	}
	if err := pf.Conservation(); err != nil {
		t.Errorf("nil Conservation: %v", err)
	}
}

func TestUnboundProcIgnored(t *testing.T) {
	pf := New()
	withProc(t, func(p *sim.Proc) {
		pf.Charge(p, sim.ChargeCPU, "cpu", 0, 100)
		if id := pf.StartChain(p); id != 0 {
			t.Errorf("unbound StartChain = %d, want 0", id)
		}
	})
	if pf.charges != 0 {
		t.Errorf("unbound proc produced %d charges", pf.charges)
	}
}

func TestChargeClampingConservation(t *testing.T) {
	pf := New()
	withProc(t, func(p *sim.Proc) {
		pf.Bind(p, "stage", "node", ClassHostCPU, ClassHostCPU)
		id := pf.StartChain(p)
		pf.BeginPacket(p, id)
		pf.Charge(p, sim.ChargeCPU, "cpu", 0, 10)
		// Overlapping charge: only [10, 15) may land on the chain.
		pf.Charge(p, sim.ChargeDisk, "disk", 5, 15)
		// Fully-covered interval contributes nothing.
		pf.Charge(p, sim.ChargeNet, "nic", 2, 9)
		pf.EndPacket(p)
	})
	if err := pf.Conservation(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	ch := pf.chains[0]
	if got := ch.ns[classHostCPU]; got != 10 {
		t.Errorf("cpu ns = %d, want 10", got)
	}
	if got := ch.ns[classDisk]; got != 5 {
		t.Errorf("disk ns = %d, want 5 (clamped)", got)
	}
	if got := ch.ns[classNet]; got != 0 {
		t.Errorf("net ns = %d, want 0 (fully covered)", got)
	}
	if ch.end != 15 {
		t.Errorf("chain end = %v, want 15", ch.end)
	}
	// The raw waterfall keeps the unclamped kinds.
	rep := pf.Report()
	if len(rep.Waterfall) != 1 {
		t.Fatalf("waterfall rows = %d, want 1", len(rep.Waterfall))
	}
	w := rep.Waterfall[0]
	if w.CPUNs != 10 || w.DiskNs != 10 || w.NetNs != 7 {
		t.Errorf("raw waterfall = cpu %d disk %d net %d, want 10/10/7", w.CPUNs, w.DiskNs, w.NetNs)
	}
}

func TestBlameWaitRouting(t *testing.T) {
	pf := New()
	pf.BlameWait("inbox not-full", ClassASUCPU)
	withProc(t, func(p *sim.Proc) {
		pf.Bind(p, "stage", "node", ClassHostCPU, ClassHostCPU)
		id := pf.StartChain(p)
		pf.BeginPacket(p, id)
		pf.Charge(p, sim.ChargeCondWait, "inbox not-full", 0, 10)
		pf.Charge(p, sim.ChargeCondWait, "other not-empty", 10, 25)
		pf.EndPacket(p)
	})
	ch := pf.chains[0]
	if got := ch.ns[classASUCPU]; got != 10 {
		t.Errorf("registered cond blamed %d ns on asu-cpu, want 10", got)
	}
	if got := ch.ns[classCondWait]; got != 15 {
		t.Errorf("unregistered cond left %d ns residual, want 15", got)
	}
}

func TestDeriveParentAndPath(t *testing.T) {
	pf := New()
	withProc(t, func(p *sim.Proc) {
		pf.Bind(p, "src", "node", ClassASUCPU, ClassASUCPU)
		root := pf.StartChain(p)
		pf.BeginPacket(p, root)
		pf.Charge(p, sim.ChargeDisk, "disk", 0, 10)
		pf.EndPacket(p)
		// Between packets: Derive should parent on the last chain.
		child := pf.Derive(p)
		if got := pf.chains[child-1].parent; got != root {
			t.Fatalf("derived parent = %d, want %d", got, root)
		}
		pf.BeginPacket(p, child)
		pf.Charge(p, sim.ChargeCPU, "cpu", 10, 30)
		pf.EndPacket(p)
	})
	rep := pf.Report()
	if rep.Path.Hops != 2 {
		t.Errorf("path hops = %d, want 2", rep.Path.Hops)
	}
	if rep.Path.AttributedNs != 30 {
		t.Errorf("path attributed = %d, want 30", rep.Path.AttributedNs)
	}
	if rep.Verdict.Observed != string(ClassASUCPU) {
		t.Errorf("verdict = %q, want asu-cpu", rep.Verdict.Observed)
	}
}

func TestAbandonExcludesChain(t *testing.T) {
	pf := New()
	withProc(t, func(p *sim.Proc) {
		pf.Bind(p, "src", "node", ClassHostCPU, ClassHostCPU)
		id := pf.StartChain(p)
		pf.Charge(p, sim.ChargeDisk, "disk", 0, 100)
		pf.Abandon(p, id)
		if st := pf.procs[p]; st.cur != 0 || st.last != 0 {
			t.Errorf("abandon left cur=%d last=%d", st.cur, st.last)
		}
	})
	if pf.NumChains() != 0 {
		t.Errorf("NumChains = %d after abandon, want 0", pf.NumChains())
	}
	rep := pf.Report()
	if rep.Path.Hops != 0 {
		t.Errorf("dead chain reached the critical path: %+v", rep.Path)
	}
	// Raw waterfall charges survive abandonment.
	if rep.Waterfall[0].DiskNs != 100 {
		t.Errorf("waterfall disk = %d, want 100", rep.Waterfall[0].DiskNs)
	}
}

func TestSetPrediction(t *testing.T) {
	rep := &Report{Verdict: Verdict{Observed: "host-cpu"}}
	rep.SetPrediction(ClassHostCPU, 2.5e6)
	if rep.Verdict.Agree != "yes" {
		t.Errorf("agree = %q, want yes", rep.Verdict.Agree)
	}
	rep.SetPrediction(ClassNet, 1e6)
	if rep.Verdict.Agree != "no" {
		t.Errorf("agree = %q, want no", rep.Verdict.Agree)
	}
}

// TestReportDeterministic builds the same multi-stage attribution twice and
// requires byte-identical JSON.
func TestReportDeterministic(t *testing.T) {
	build := func() []byte {
		pf := New()
		withProc(t, func(p *sim.Proc) {
			pf.Bind(p, "b-stage", "node1", ClassHostCPU, ClassHostCPU)
			id := pf.StartChain(p)
			pf.BeginPacket(p, id)
			pf.Charge(p, sim.ChargeCPU, "cpu", 0, 10)
			pf.EndPacket(p)
		})
		withProc(t, func(p *sim.Proc) {
			pf.Bind(p, "a-stage", "node2", ClassASUCPU, ClassDisk)
			id := pf.StartChain(p)
			pf.BeginPacket(p, id)
			pf.Charge(p, sim.ChargeNet, "nic", 0, 40)
			pf.ChargeQueueTime(p, 40, 55)
			pf.EndPacket(p)
		})
		b, err := json.Marshal(pf.Report())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Errorf("reports differ:\n%s\n%s", a, b)
	}
	// Rows must come out sorted by stage then node.
	var rep Report
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Waterfall[0].Stage != "a-stage" || rep.Waterfall[1].Stage != "b-stage" {
		t.Errorf("waterfall not sorted: %+v", rep.Waterfall)
	}
}
