package critpath

import (
	"math"
	"sort"

	"lmas/internal/sim"
)

// WaterfallRow is one (stage, node) cell of the attribution waterfall, in
// raw charge kinds: where procs of this stage on this node spent their
// virtual time. Durations are exact nanosecond integers so reports are
// byte-stable.
type WaterfallRow struct {
	Stage       string `json:"stage"`
	Node        string `json:"node"`
	CPUNs       int64  `json:"cpu_ns"`
	DiskNs      int64  `json:"disk_ns"`
	NetNs       int64  `json:"net_ns"`
	QueueWaitNs int64  `json:"queue_wait_ns"`
	CondWaitNs  int64  `json:"cond_wait_ns"`
	Charges     int64  `json:"charges"`
}

// TotalNs reports the row's total attributed time.
func (r WaterfallRow) TotalNs() int64 {
	return r.CPUNs + r.DiskNs + r.NetNs + r.QueueWaitNs + r.CondWaitNs
}

// ClassShare is one blame class's share of an attributed total. In the
// report's Blame section, Instances is the number of resource instances
// behind the class (nodes binding that processor class, disks charged, one
// shared interconnect) — the divisor the verdict uses to rank per-instance
// congestion.
type ClassShare struct {
	Class     string  `json:"class"`
	Ns        int64   `json:"ns"`
	Share     float64 `json:"share"`
	Instances int     `json:"instances,omitempty"`
}

// Path summarizes the critical path: the lineage of charged intervals ending
// at the last chain to finish, walked back through derivation parents to the
// first read. The conservation identity span == attributed + gap holds per
// chain; across a lineage a parent may keep working briefly after deriving a
// child, so the reported gap is clamped at zero.
type Path struct {
	Hops         int          `json:"hops"`
	BornNs       int64        `json:"born_ns"`
	EndNs        int64        `json:"end_ns"`
	SpanNs       int64        `json:"span_ns"`
	AttributedNs int64        `json:"attributed_ns"`
	GapNs        int64        `json:"gap_ns"`
	Classes      []ClassShare `json:"classes"`
}

// Verdict names the observed bottleneck — the physical resource class with
// the most attributed packet latency per resource instance — and, once
// SetPrediction has run, the analytic model's predicted bottleneck, so
// predicted-vs-observed disagreement is a single diffable field.
// ObservedShare is the winner's fraction of the per-instance congestion
// scores across the four physical classes.
type Verdict struct {
	Observed      string  `json:"observed"`
	ObservedShare float64 `json:"observed_share"`
	Predicted     string  `json:"predicted,omitempty"`
	PredictedRate float64 `json:"predicted_rec_per_sec,omitempty"`
	Agree         string  `json:"agree,omitempty"`
}

// Report is the end-of-run attribution summary, embedded in the RunReport's
// critpath section. Blame aggregates blamed time over every live chain —
// where packet latency went across the whole run — and is what the verdict is
// judged on; Path singles out the last lineage to finish, whose shares
// describe tail latency rather than steady-state throughput.
type Report struct {
	Chains    int            `json:"chains"`
	Charges   int64          `json:"charges"`
	Waterfall []WaterfallRow `json:"waterfall"`
	Blame     []ClassShare   `json:"blame"`
	Path      Path           `json:"path"`
	Verdict   Verdict        `json:"verdict"`
}

func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// SetPrediction records the analytic model's predicted bottleneck class and
// limiting rate (records/second) and fills the agreement field.
func (r *Report) SetPrediction(class Class, recPerSec float64) {
	r.Verdict.Predicted = string(class)
	r.Verdict.PredictedRate = round6(recPerSec)
	if r.Verdict.Observed == "" {
		return
	}
	if r.Verdict.Observed == string(class) {
		r.Verdict.Agree = "yes"
	} else {
		r.Verdict.Agree = "no"
	}
}

// Report aggregates the profiler's state into a deterministic summary:
// waterfall rows sorted by (stage, node), the critical path, and the
// observed-bottleneck verdict. Safe on a nil profiler (returns nil).
func (pf *Profiler) Report() *Report {
	if pf == nil {
		return nil
	}
	rep := &Report{Chains: pf.NumChains(), Charges: pf.charges}

	rows := make([]*row, len(pf.rowList))
	copy(rows, pf.rowList)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].stage != rows[j].stage {
			return rows[i].stage < rows[j].stage
		}
		return rows[i].node < rows[j].node
	})
	for _, r := range rows {
		rep.Waterfall = append(rep.Waterfall, WaterfallRow{
			Stage:       r.stage,
			Node:        r.node,
			CPUNs:       r.kinds[sim.ChargeCPU],
			DiskNs:      r.kinds[sim.ChargeDisk],
			NetNs:       r.kinds[sim.ChargeNet],
			QueueWaitNs: r.kinds[sim.ChargeQueueWait],
			CondWaitNs:  r.kinds[sim.ChargeCondWait],
			Charges:     r.charges,
		})
	}

	// Aggregate blame: where attributed packet latency went, summed over
	// every live chain. A throughput bottleneck shows up here no matter
	// which packet happens to finish last: saturated-stage queue time and
	// backpressure waits are blamed on the saturated resource, so its share
	// dominates when it limits the run.
	var totalNs [numClasses]int64
	for i := range pf.chains {
		ch := &pf.chains[i]
		if ch.dead {
			continue
		}
		for c, v := range ch.ns {
			totalNs[c] += v
		}
	}
	var totalAttr int64
	for _, v := range totalNs {
		totalAttr += v
	}
	counts := pf.classNodeCounts()
	for c := 0; c < numClasses; c++ {
		share := 0.0
		if totalAttr > 0 {
			share = round6(float64(totalNs[c]) / float64(totalAttr))
		}
		rep.Blame = append(rep.Blame, ClassShare{
			Class:     string(classNames[c]),
			Ns:        totalNs[c],
			Share:     share,
			Instances: counts[c],
		})
	}
	// Verdict: blame is packet-seconds summed across chains, which weights a
	// class by how many nodes serve it — sixteen moderately-loaded ASUs
	// accrue more latency-seconds than one saturated host even when the host
	// limits throughput. Ranking divides each physical class's blame by its
	// instance count, scoring per-instance congestion, which is what the
	// analytic model's per-resource limiting rates predict. Residual waits
	// (queue-wait, cond-wait) are unattributed time, not a resource, so they
	// never win; ties go to the first class in declaration order.
	best := -1
	var bestScore, scoreSum float64
	for c := classHostCPU; c <= classNet; c++ {
		n := counts[c]
		if n == 0 {
			n = 1
		}
		score := float64(totalNs[c]) / float64(n)
		scoreSum += score
		if totalNs[c] > 0 && (best < 0 || score > bestScore) {
			best, bestScore = c, score
		}
	}
	if best >= 0 {
		rep.Verdict.Observed = string(classNames[best])
		if scoreSum > 0 {
			rep.Verdict.ObservedShare = round6(bestScore / scoreSum)
		}
	}

	// Critical path: the lineage ending at the live chain that finishes
	// last (ties to the earliest-created chain, which is deterministic).
	tip := int32(0)
	for i := range pf.chains {
		ch := &pf.chains[i]
		if ch.dead {
			continue
		}
		if tip == 0 || ch.end > pf.chains[tip-1].end {
			tip = int32(i + 1)
		}
	}
	if tip != 0 {
		var classNs [numClasses]int64
		hops := 0
		born := pf.chains[tip-1].born
		for id := tip; id != 0; id = pf.chains[id-1].parent {
			ch := &pf.chains[id-1]
			hops++
			born = ch.born
			for c, v := range ch.ns {
				classNs[c] += v
			}
		}
		var attr int64
		for _, v := range classNs {
			attr += v
		}
		end := pf.chains[tip-1].end
		span := int64(end - born)
		gap := span - attr
		if gap < 0 {
			gap = 0
		}
		p := Path{
			Hops:         hops,
			BornNs:       int64(born),
			EndNs:        int64(end),
			SpanNs:       span,
			AttributedNs: attr,
			GapNs:        gap,
		}
		for c := 0; c < numClasses; c++ {
			share := 0.0
			if attr > 0 {
				share = round6(float64(classNs[c]) / float64(attr))
			}
			p.Classes = append(p.Classes, ClassShare{
				Class: string(classNames[c]),
				Ns:    classNs[c],
				Share: share,
			})
		}
		rep.Path = p
	}
	return rep
}
