// Package disk models the storage device attached to each ASU.
//
// Following the paper's emulator (Section 5): "The disk simulation does not
// model detailed seek and rotational times because our current experiments
// perform all I/O sequentially. The disk simulation uses a base aggregate
// transfer rate to calculate elapsed time under an I/O load, assuming
// read-ahead and write caching for sequential I/O: the disk initiates the
// next I/O automatically, and writes wait only for the previous write to
// complete."
//
// Concretely:
//
//   - The device is a single timeline (busyUntil) shared by all transfers,
//     so concurrent streams on one disk divide its bandwidth.
//   - Sequential reads are prefetched: the transfer of block k+1 starts when
//     block k is delivered, so a consumer that processes a block slower than
//     the disk transfers one never waits (after the first block).
//   - Writes are buffered: Write returns as soon as the device has accepted
//     the block, blocking only while the previous write is still in flight.
//     Flush waits for all buffered writes to retire.
package disk

import (
	"fmt"

	"lmas/internal/sim"
	"lmas/internal/trace"
)

// Disk is a sequential-transfer storage device in virtual time. All methods
// that take a *sim.Proc may block that proc; they must be called from the
// currently running proc.
type Disk struct {
	s    *sim.Sim
	name string
	rate float64 // bytes per second of virtual time
	// seek is charged at the start of every cold read (the first read
	// of a sequential run): arm positioning. Sequential experiments are
	// barely affected; random-access structures (Arrays, index lookups)
	// pay it on every access, which is what makes request fan-out
	// expensive on real disks.
	seek sim.Duration

	busyUntil sim.Time // device timeline: end of last booked transfer

	// defRun is the device-level read stream used by Read/EndReadRun;
	// independent streams open their own Run with OpenRun.
	defRun Run

	// Write-behind state: completion time of the most recent write.
	writeDone sim.Time

	busy     sim.Duration // accumulated transfer time
	recorder sim.BusyRecorder

	// Counters.
	readBytes, writeBytes int64
	reads, writes         int64

	track trace.Track // cached trace timeline, created on first traced transfer
}

// Run is the read-ahead state of one sequential read stream: whether the
// stream is warm, and when its previous block was delivered (the instant
// prefetch of the next block began). Each independent stream must use its
// own Run; if two interleaved streams shared one, the second stream's cold
// read would skip its seek charge and back-date its prefetch to the other
// stream's delivery.
type Run struct {
	d            *Disk
	active       bool
	lastDelivery sim.Time
}

// New creates a disk transferring rate bytes per second of virtual time.
func New(s *sim.Sim, name string, rate float64) *Disk {
	if rate <= 0 {
		panic("disk: rate must be positive")
	}
	d := &Disk{s: s, name: name, rate: rate}
	d.defRun.d = d
	return d
}

// traceTrack returns d's timeline in t, creating it on first use.
func (d *Disk) traceTrack(t *trace.Sink) trace.Track {
	if d.track == 0 {
		d.track = t.SharedTrack(trace.GroupOf(d.name), d.name)
	}
	return d.track
}

// Name reports the disk's name.
func (d *Disk) Name() string { return d.name }

// Rate reports the transfer rate in bytes per second.
func (d *Disk) Rate() float64 { return d.rate }

// SetRecorder attaches rec to receive transfer busy intervals; nil detaches.
func (d *Disk) SetRecorder(rec sim.BusyRecorder) { d.recorder = rec }

// SetSeek sets the positioning time charged on cold reads (default zero).
func (d *Disk) SetSeek(seek sim.Duration) {
	if seek < 0 {
		seek = 0
	}
	d.seek = seek
}

// Seek reports the configured positioning time.
func (d *Disk) Seek() sim.Duration { return d.seek }

// xferDur converts a byte count to transfer time.
func (d *Disk) xferDur(n int) sim.Duration {
	return sim.Duration(float64(n) / d.rate * float64(sim.Second))
}

// book reserves the device for a transfer of n bytes starting no earlier
// than from, returning the transfer interval.
func (d *Disk) book(from sim.Time, n int) (start, end sim.Time) {
	return d.bookWithSetup(from, n, 0)
}

// bookWithSetup additionally occupies the device for a setup time (arm
// positioning) before the transfer.
func (d *Disk) bookWithSetup(from sim.Time, n int, setup sim.Duration) (start, end sim.Time) {
	start = from
	if d.busyUntil > start {
		start = d.busyUntil
	}
	end = start.Add(setup + d.xferDur(n))
	d.busyUntil = end
	d.busy += sim.Duration(end - start)
	if d.recorder != nil && end > start {
		d.recorder.RecordBusy(start, end)
	}
	return start, end
}

// Read performs a sequential read of n bytes on the disk's default stream,
// blocking p until the data is available. Within a read run the device
// prefetches, so the effective wait is max(0, transferTime -
// timeSinceLastRead). Callers interleaving several independent sequential
// streams on one disk must give each its own stream via OpenRun; Read and
// EndReadRun drive a single device-level stream.
func (d *Disk) Read(p *sim.Proc, n int) { d.defRun.Read(p, n) }

// EndReadRun marks the end of the default stream's read run: the next Read
// is treated as cold (no prefetch overlap with past processing).
func (d *Disk) EndReadRun() { d.defRun.End() }

// OpenRun creates a new, cold sequential read stream on d. Streams share
// the device timeline (concurrent transfers divide bandwidth) but each
// keeps its own read-ahead state, so interleaved streams pay their own
// cold-read seek and prefetch only against their own deliveries.
func (d *Disk) OpenRun() *Run { return &Run{d: d} }

// Read performs a sequential read of n bytes on this stream, blocking p
// until the data is available; see Disk.Read.
func (r *Run) Read(p *sim.Proc, n int) {
	d := r.d
	if n <= 0 {
		return
	}
	now := d.s.Now()
	from := now
	extra := sim.Duration(0)
	if r.active {
		if r.lastDelivery < now {
			// Prefetch began when the previous block was delivered.
			from = r.lastDelivery
		}
	} else {
		extra = d.seek // cold read: position the arm first
	}
	start, end := d.bookWithSetup(from, n, extra)
	d.reads++
	d.readBytes += int64(n)
	if t := d.s.Tracer(); t != nil {
		kind := "read.cold"
		if r.active {
			kind = "read.prefetch"
		}
		t.Span(d.traceTrack(t), int64(start), int64(end), kind, "disk",
			trace.Arg{Key: "bytes", Val: n})
	}
	if end > now {
		if pf := d.s.Profiler(); pf != nil {
			pf.Charge(p, sim.ChargeDisk, d.name, now, end)
		}
		p.Sleep(sim.Duration(end - now))
	}
	r.active = true
	r.lastDelivery = d.s.Now()
}

// End marks the end of this stream's read run: its next Read is cold.
func (r *Run) End() { r.active = false }

// Write accepts n bytes for writing. It blocks p only while the previous
// write is still in flight (write-behind with one outstanding write), then
// books the transfer and returns; the data retires in the background.
func (d *Disk) Write(p *sim.Proc, n int) {
	if n <= 0 {
		return
	}
	now := d.s.Now()
	if d.writeDone > now {
		if pf := d.s.Profiler(); pf != nil {
			pf.Charge(p, sim.ChargeDisk, d.name, now, d.writeDone)
		}
		p.Sleep(sim.Duration(d.writeDone - now))
	}
	start, end := d.book(d.s.Now(), n)
	d.writeDone = end
	d.writes++
	d.writeBytes += int64(n)
	if t := d.s.Tracer(); t != nil {
		t.Span(d.traceTrack(t), int64(start), int64(end), "write", "disk",
			trace.Arg{Key: "bytes", Val: n})
	}
}

// Flush blocks p until all accepted writes have retired.
func (d *Disk) Flush(p *sim.Proc) {
	now := d.s.Now()
	if d.writeDone > now {
		if pf := d.s.Profiler(); pf != nil {
			pf.Charge(p, sim.ChargeDisk, d.name, now, d.writeDone)
		}
		p.Sleep(sim.Duration(d.writeDone - now))
	}
}

// Busy reports the total time the device has spent transferring.
func (d *Disk) Busy() sim.Duration { return d.busy }

// Stats reports cumulative operation and byte counts.
func (d *Disk) Stats() (reads, writes, readBytes, writeBytes int64) {
	return d.reads, d.writes, d.readBytes, d.writeBytes
}

func (d *Disk) String() string {
	return fmt.Sprintf("disk(%s, %.0f MB/s)", d.name, d.rate/1e6)
}
