package disk

import (
	"math"
	"testing"
	"testing/quick"

	"lmas/internal/sim"
)

// rateMBs builds a disk with rate in MB (1e6 bytes) per second.
func newDisk(s *sim.Sim, mbs float64) *Disk { return New(s, "d0", mbs*1e6) }

func TestColdReadTakesTransferTime(t *testing.T) {
	s := sim.New()
	d := newDisk(s, 100) // 100 MB/s -> 1 MB takes 10 ms
	var elapsed sim.Time
	s.Spawn("r", func(p *sim.Proc) {
		d.Read(p, 1_000_000)
		elapsed = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != sim.Time(10*sim.Millisecond) {
		t.Fatalf("cold read of 1MB at 100MB/s took %v, want 10ms", elapsed)
	}
}

func TestReadAheadOverlapsProcessing(t *testing.T) {
	// Consumer processes each block for longer than the transfer time:
	// after the first block, reads must be free (prefetched).
	s := sim.New()
	d := newDisk(s, 100)
	const block = 1_000_000 // 10 ms transfer
	var total sim.Time
	s.Spawn("r", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			d.Read(p, block)
			p.Sleep(20 * sim.Millisecond) // slower than disk
		}
		total = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 10ms first transfer + 10 * 20ms processing; later transfers hide.
	want := sim.Time(10*sim.Millisecond + 10*20*sim.Millisecond)
	if total != want {
		t.Fatalf("elapsed %v, want %v (read-ahead must hide transfers)", total, want)
	}
}

func TestFastConsumerIsRateLimited(t *testing.T) {
	// Consumer with no processing cost: throughput = disk rate.
	s := sim.New()
	d := newDisk(s, 100)
	const block = 1_000_000
	var total sim.Time
	s.Spawn("r", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			d.Read(p, block)
		}
		total = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(100 * sim.Millisecond) // 10 blocks x 10 ms
	if total != want {
		t.Fatalf("elapsed %v, want %v", total, want)
	}
}

func TestEndReadRunDisablesPrefetch(t *testing.T) {
	s := sim.New()
	d := newDisk(s, 100)
	const block = 1_000_000
	var total sim.Time
	s.Spawn("r", func(p *sim.Proc) {
		d.Read(p, block)
		d.EndReadRun()
		p.Sleep(50 * sim.Millisecond)
		d.Read(p, block) // cold again: must cost full transfer
		total = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(10*sim.Millisecond + 50*sim.Millisecond + 10*sim.Millisecond)
	if total != want {
		t.Fatalf("elapsed %v, want %v", total, want)
	}
}

func TestWriteBehindReturnsImmediately(t *testing.T) {
	s := sim.New()
	d := newDisk(s, 100)
	var afterFirst, afterSecond, afterFlush sim.Time
	s.Spawn("w", func(p *sim.Proc) {
		d.Write(p, 1_000_000) // accepted instantly
		afterFirst = p.Now()
		d.Write(p, 1_000_000) // waits for first write (10 ms)
		afterSecond = p.Now()
		d.Flush(p)
		afterFlush = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if afterFirst != 0 {
		t.Fatalf("first write blocked until %v; write-behind must accept instantly", afterFirst)
	}
	if afterSecond != sim.Time(10*sim.Millisecond) {
		t.Fatalf("second write returned at %v, want 10ms", afterSecond)
	}
	if afterFlush != sim.Time(20*sim.Millisecond) {
		t.Fatalf("flush returned at %v, want 20ms", afterFlush)
	}
}

func TestWriteOverlapsComputation(t *testing.T) {
	// Writes issued every 20 ms, each taking 10 ms: never blocks.
	s := sim.New()
	d := newDisk(s, 100)
	var total sim.Time
	s.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(20 * sim.Millisecond)
			d.Write(p, 1_000_000)
		}
		d.Flush(p)
		total = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(5*20*sim.Millisecond + 10*sim.Millisecond)
	if total != want {
		t.Fatalf("elapsed %v, want %v", total, want)
	}
}

func TestConcurrentStreamsShareBandwidth(t *testing.T) {
	// Two readers on one disk: aggregate rate bounded by the device.
	s := sim.New()
	d := newDisk(s, 100)
	const block = 1_000_000
	var t1, t2 sim.Time
	s.Spawn("r1", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			d.Read(p, block)
		}
		t1 = p.Now()
	})
	s.Spawn("r2", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			d.Read(p, block)
		}
		t2 = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	last := t1
	if t2 > last {
		last = t2
	}
	want := sim.Time(100 * sim.Millisecond) // 10 blocks total at 10 ms each
	if last < want {
		t.Fatalf("10 blocks finished at %v; device limit is %v", last, want)
	}
}

func TestBusyAccounting(t *testing.T) {
	s := sim.New()
	d := newDisk(s, 100)
	s.Spawn("rw", func(p *sim.Proc) {
		d.Read(p, 2_000_000)  // 20 ms
		d.Write(p, 1_000_000) // 10 ms
		d.Flush(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Busy() != 30*sim.Millisecond {
		t.Fatalf("busy = %v, want 30ms", d.Busy())
	}
	r, w, rb, wb := d.Stats()
	if r != 1 || w != 1 || rb != 2_000_000 || wb != 1_000_000 {
		t.Fatalf("stats = %d %d %d %d", r, w, rb, wb)
	}
}

func TestZeroByteOpsAreFree(t *testing.T) {
	s := sim.New()
	d := newDisk(s, 100)
	var total sim.Time
	s.Spawn("z", func(p *sim.Proc) {
		d.Read(p, 0)
		d.Write(p, 0)
		d.Flush(p)
		total = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Fatalf("zero-byte ops took %v", total)
	}
}

// TestThroughputProperty: for any block size and count, a tight read loop's
// elapsed time equals bytes/rate (the aggregate transfer rate model).
func TestThroughputProperty(t *testing.T) {
	f := func(blocks, sizeKB uint8) bool {
		nb := int(blocks%20) + 1
		size := (int(sizeKB%100) + 1) * 1024
		s := sim.New()
		d := newDisk(s, 50)
		var total sim.Time
		s.Spawn("r", func(p *sim.Proc) {
			for i := 0; i < nb; i++ {
				d.Read(p, size)
			}
			total = p.Now()
		})
		if err := s.Run(); err != nil {
			return false
		}
		want := float64(nb*size) / 50e6
		return math.Abs(total.Seconds()-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(sim.New(), "bad", 0)
}
