package disk

import (
	"testing"

	"lmas/internal/sim"
)

const (
	runBlock = 1_000_000            // 10 ms at 100 MB/s
	runSeek  = 5 * sim.Millisecond  // charged per cold read
	runXfer  = 10 * sim.Millisecond // block transfer time
)

// interleave runs two readers on one disk: A reads a block at t=0, B reads a
// block at t=20ms (after A's delivery), then both read once more. It returns
// when B's first read completed. shared selects the device-global default
// stream (Disk.Read) instead of per-stream Run tokens.
func interleave(t *testing.T, shared bool) sim.Time {
	t.Helper()
	s := sim.New()
	d := newDisk(s, 100)
	d.SetSeek(runSeek)
	read := func(p *sim.Proc, r *Run) {
		if shared {
			d.Read(p, runBlock)
		} else {
			r.Read(p, runBlock)
		}
	}
	var bFirst sim.Time
	s.Spawn("a", func(p *sim.Proc) {
		r := d.OpenRun()
		read(p, r)
		p.Sleep(30 * sim.Millisecond)
		read(p, r)
	})
	s.Spawn("b", func(p *sim.Proc) {
		p.Sleep(20 * sim.Millisecond)
		r := d.OpenRun()
		read(p, r)
		bFirst = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return bFirst
}

// TestInterleavedStreamsKeepOwnRunState is the regression test for the
// device-global read-ahead bug: a second sequential stream starting while
// another stream is warm used to inherit that stream's run — skipping its
// cold-read seek and back-dating its prefetch to the other stream's
// delivery. With per-stream Run tokens, B's first read is cold: it starts
// at t=20ms and pays seek + transfer.
func TestInterleavedStreamsKeepOwnRunState(t *testing.T) {
	// A's first read: seek(5) + xfer(10) = delivered at 15ms.
	// B's cold read at 20ms: 20 + 5 + 10 = 35ms.
	if got, want := interleave(t, false), sim.Time(20*sim.Millisecond+runSeek+runXfer); got != want {
		t.Fatalf("B's cold read completed at %v, want %v", got, want)
	}
}

// TestSharedRunUndercharges documents the behaviour the Run tokens fix:
// through the shared default stream, B's first read inherits A's warm run —
// no seek, and the transfer is back-dated to A's delivery at 15ms, so B is
// "done" at 25ms despite being a brand-new stream.
func TestSharedRunUndercharges(t *testing.T) {
	if got, want := interleave(t, true), sim.Time(15*sim.Millisecond+runXfer); got != want {
		t.Fatalf("B's shared-run read completed at %v, want %v", got, want)
	}
}

// TestDefaultStreamTimingUnchanged pins the single-reader fast path: Disk.Read
// and EndReadRun must behave exactly as before the Run refactor (cold seek on
// the first read and after every EndReadRun, prefetch within a run).
func TestDefaultStreamTimingUnchanged(t *testing.T) {
	s := sim.New()
	d := newDisk(s, 100)
	d.SetSeek(runSeek)
	var elapsed sim.Time
	s.Spawn("r", func(p *sim.Proc) {
		d.Read(p, runBlock) // 5ms seek + 10ms
		d.Read(p, runBlock) // +10ms, warm
		d.EndReadRun()
		d.Read(p, runBlock) // 5ms seek + 10ms, cold again
		elapsed = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(2*runSeek + 3*runXfer); elapsed != want {
		t.Fatalf("elapsed %v, want %v", elapsed, want)
	}
}
