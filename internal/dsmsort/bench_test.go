package dsmsort

import (
	"testing"

	"lmas/internal/cluster"
	"lmas/internal/records"
)

func benchSort(b *testing.B, placement Placement, asus int) {
	for i := 0; i < b.N; i++ {
		cl := cluster.New(testParams(1, asus))
		in := MakeInput(cl, 1<<14, records.Uniform{}, 42, 64)
		cfg := Config{Alpha: 16, Beta: 64, Gamma2: 16, PacketRecords: 64,
			Placement: placement, Seed: 42}
		res, err := Sort(cl, cfg, in)
		if err != nil {
			b.Fatal(err)
		}
		// End-of-run recycling (the pool contract): the next iteration
		// draws these buffers instead of allocating.
		res.Output.Free()
		in.Free()
	}
}

func BenchmarkSortActive(b *testing.B)       { benchSort(b, Active, 8) }
func BenchmarkSortConventional(b *testing.B) { benchSort(b, Conventional, 8) }
func BenchmarkSortHybrid(b *testing.B)       { benchSort(b, Hybrid, 8) }

func BenchmarkRunFormationOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl := cluster.New(testParams(1, 8))
		in := MakeInput(cl, 1<<15, records.Uniform{}, 42, 64)
		cfg := Config{Alpha: 16, Beta: 64, Gamma2: 2, PacketRecords: 64,
			Placement: Active, Seed: 42}
		rs, _, err := RunFormation(cl, cfg, in)
		if err != nil {
			b.Fatal(err)
		}
		// End-of-run recycling (the pool contract): the next iteration
		// draws these buffers instead of allocating.
		rs.Free()
		in.Free()
	}
}

func BenchmarkMergePassOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cl := cluster.New(testParams(1, 8))
		in := MakeInput(cl, 1<<14, records.Uniform{}, 42, 64)
		cfg := Config{Alpha: 8, Beta: 64, Gamma2: 16, PacketRecords: 64,
			Placement: Active, Seed: 42}
		rs, _, err := RunFormation(cl, cfg, in)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		out, _, err := MergePass(cl, cfg, rs)
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		out.Free()
		rs.Free()
		in.Free()
		b.StartTimer()
	}
}
