// Package dsmsort implements DSM-Sort, the paper's "hybrid distribute/merge
// sort program... for active storage systems using the data-driven functor
// model" (Section 4.3).
//
// The program combines distribute, sort, and merge functors in a
// configurable way:
//
//  1. an α-way distribute partitions the data set into α subsets that can
//     be sorted independently (ASU buffer space restricts α);
//  2. each block of β records in each subset is sorted with a fast internal
//     sort, forming N/β sorted runs (memory size limits β);
//  3. a γ-way merge forms the sorted result, divided between hosts and ASUs
//     so that γ1·γ2 = γ.
//
// Counting log2(parameter) compares per key, the total work is
// n·log(α) + n·log(β) + n·log(γ) = n·log(αβγ) = n·log n when αβγ = n.
// Choosing the parameters "allows us to balance computation at ASUs and
// hosts, as well as conform to memory constraints on the ASUs".
package dsmsort

import (
	"fmt"
	"math"

	"lmas/internal/cluster"
	"lmas/internal/route"
	"lmas/internal/sim"
)

// Placement selects where DSM-Sort's distribute computation executes.
type Placement int

const (
	// Active places distribute functors on the ASUs (the active-storage
	// configuration of Figure 9).
	Active Placement = iota
	// Conventional places all computation on the hosts; storage units
	// only stream raw blocks (the Figure 9 baseline: "conventional
	// storage units with no integrated processing").
	Conventional
	// Hybrid replicates the distribute functor on both the ASUs and the
	// hosts; each reader routes packets to its local ASU instance or a
	// host instance by queue backlog, effectively migrating computation
	// toward whichever side has spare capacity ("load management
	// may... migrate functors between host nodes and ASUs", §3.3).
	Hybrid
)

func (p Placement) String() string {
	switch p {
	case Active:
		return "active"
	case Conventional:
		return "conventional"
	default:
		return "hybrid"
	}
}

// Config parameterizes one DSM-Sort execution.
type Config struct {
	// Alpha is the distribute order (number of subsets).
	Alpha int
	// Beta is the sorted-run length in records.
	Beta int
	// Gamma2 is the ASU-side merge fan-in for the merge pass; the
	// host-side fan-in γ1 is the number of ASU streams per bucket
	// (one per ASU holding runs), so γ = γ1·γ2.
	Gamma2 int
	// PacketRecords is the packet size used on the interconnect between
	// distribute and sort stages ("the size of the packet may be limited
	// by a memory bound on the ASU-resident functor").
	PacketRecords int
	// Placement selects active versus conventional execution.
	Placement Placement
	// SortPolicy routes subset packets across host sorter instances.
	// Static{Buckets: Alpha} is the non-load-managed configuration of
	// Figure 10; SR is the load-managed one. Nil means Static.
	SortPolicy route.Policy
	// ProgressInterval, when positive, attaches a progress monitor to
	// the run-formation pipeline (Section 5: the emulator reports
	// application progress as it executes); the monitor is returned in
	// Pass1Result.Monitor.
	ProgressInterval sim.Duration
	// Seed feeds all randomized decisions (SR routing, sampling).
	Seed int64
}

// DefaultConfig returns a balanced configuration for the given input size.
func DefaultConfig(n int) Config {
	return Config{
		Alpha:         16,
		Beta:          1 << 10,
		Gamma2:        64,
		PacketRecords: 256,
		Placement:     Active,
		Seed:          1,
	}
}

// Validate checks cfg against the cluster's resource bounds: α and γ are
// restricted by ASU buffer space, β by host memory (Section 4.3).
func (c Config) Validate(p cluster.Params) error {
	switch {
	case c.Alpha < 1:
		return fmt.Errorf("dsmsort: alpha must be >= 1, have %d", c.Alpha)
	case c.Beta < 1:
		return fmt.Errorf("dsmsort: beta must be >= 1, have %d", c.Beta)
	case c.Gamma2 < 1:
		return fmt.Errorf("dsmsort: gamma2 must be >= 1, have %d", c.Gamma2)
	case c.PacketRecords < 1:
		return fmt.Errorf("dsmsort: packet size must be >= 1, have %d", c.PacketRecords)
	}
	// ASU buffer bound on α: the distribute functor stages one packet
	// per subset.
	if need := c.Alpha * c.PacketRecords; need > p.ASUMemRecords {
		return fmt.Errorf("dsmsort: alpha %d x packet %d = %d records exceeds ASU buffer of %d",
			c.Alpha, c.PacketRecords, need, p.ASUMemRecords)
	}
	// Host memory bound on β: one run per subset may be in formation.
	if c.Beta > p.HostMemRecords {
		return fmt.Errorf("dsmsort: beta %d exceeds host memory of %d records", c.Beta, p.HostMemRecords)
	}
	// ASU buffer bound on γ2: the merge holds one packet per input run.
	if need := c.Gamma2 * c.PacketRecords; need > p.ASUMemRecords {
		return fmt.Errorf("dsmsort: gamma2 %d x packet %d = %d records exceeds ASU buffer of %d",
			c.Gamma2, c.PacketRecords, need, p.ASUMemRecords)
	}
	return nil
}

// TotalCompares reports the work equation's predicted comparison count for
// sorting n records: n·(log2 α + log2 β + log2 γ1 + log2 γ2).
func (c Config) TotalCompares(n, gamma1 int) float64 {
	return float64(n) * (log2f(c.Alpha) + log2f(c.Beta) + log2f(gamma1) + log2f(c.Gamma2))
}

// Gamma1 reports the host-side merge fan-in for a cluster with d ASUs: one
// stream per ASU per bucket.
func (c Config) Gamma1(d int) int { return d }

func log2f(n int) float64 {
	if n < 2 {
		return 0
	}
	return math.Log2(float64(n))
}
