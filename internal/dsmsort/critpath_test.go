package dsmsort

import (
	"bytes"
	"testing"

	"lmas/internal/cluster"
	"lmas/internal/critpath"
	"lmas/internal/loadmgr"
	"lmas/internal/records"
	"lmas/internal/telemetry"
)

// profiledRun executes one small full Sort with the critical-path profiler
// attached and returns the cluster and result.
func profiledRun(t *testing.T, n int) (*cluster.Cluster, *Result) {
	t.Helper()
	cl := cluster.New(testParams(1, 4))
	cl.AttachProfiler(critpath.New())
	in := MakeInput(cl, n, records.Uniform{}, 7, 32)
	res, err := Sort(cl, smallConfig(), in)
	if err != nil {
		t.Fatalf("sort: %v", err)
	}
	return cl, res
}

// TestCritpathConservation runs the full attribution path and checks the
// per-chain accounting identity (span == attributed + gap, gap >= 0) on every
// live chain, plus basic report sanity.
func TestCritpathConservation(t *testing.T) {
	cl, _ := profiledRun(t, 4000)
	pf := cl.Profiler
	if err := pf.Conservation(); err != nil {
		t.Fatal(err)
	}
	rep := pf.Report()
	if rep.Chains == 0 || rep.Charges == 0 {
		t.Fatalf("empty attribution: %d chains, %d charges", rep.Chains, rep.Charges)
	}
	if len(rep.Waterfall) == 0 {
		t.Fatal("empty waterfall")
	}
	if rep.Path.Hops == 0 {
		t.Fatal("no critical path found")
	}
	if rep.Path.GapNs < 0 || rep.Path.AttributedNs < 0 {
		t.Fatalf("negative path accounting: %+v", rep.Path)
	}
	if rep.Verdict.Observed == "" {
		t.Fatal("no observed bottleneck")
	}
}

// TestCritpathByteIdentical runs the same seed twice and requires the
// marshalled critpath sections to be byte-identical.
func TestCritpathByteIdentical(t *testing.T) {
	run := func() []byte {
		cl, _ := profiledRun(t, 4000)
		b, err := telemetry.Marshal(cl.Profiler.Report())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Error("critpath reports differ across identical runs")
	}
}

// TestCritpathVirtualTimeNeutral requires the profiler to be a pure observer:
// the same workload completes at the same virtual instant with and without it.
func TestCritpathVirtualTimeNeutral(t *testing.T) {
	run := func(profile bool) int64 {
		cl := cluster.New(testParams(1, 4))
		if profile {
			cl.AttachProfiler(critpath.New())
		}
		in := MakeInput(cl, 4000, records.Uniform{}, 7, 32)
		res, err := Sort(cl, smallConfig(), in)
		if err != nil {
			t.Fatalf("sort: %v", err)
		}
		return int64(res.Elapsed)
	}
	plain, profiled := run(false), run(true)
	if plain != profiled {
		t.Errorf("profiler changed virtual time: %d ns without, %d ns with", plain, profiled)
	}
}

// TestCritpathVerdictMatchesModel pins the acceptance config: Pass1Model
// predicts run formation, so on a run-formation-only execution at the paper's
// saturation point (1 host, 16 ASUs, c=8, where the host is the analytic
// bottleneck) the observed critical path must name the same resource.
func TestCritpathVerdictMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("run formation with 16 ASUs")
	}
	params := testParams(1, 16)
	cl := cluster.New(params)
	cl.AttachProfiler(critpath.New())
	cfg := Config{
		Alpha:         16,
		Beta:          64,
		Gamma2:        16,
		PacketRecords: 64,
		Placement:     Active,
		Seed:          42,
	}
	in := MakeInput(cl, 1<<15, records.Uniform{}, 42, 64)
	if _, _, err := RunFormation(cl, cfg, in); err != nil {
		t.Fatalf("run formation: %v", err)
	}
	rep := cl.Profiler.Report()
	rates := loadmgr.Pass1Model{Params: params}.ActiveRates(cfg.Alpha, cfg.Beta)
	predicted, rate := rates.Bottleneck()
	rep.SetPrediction(predicted, rate)
	if rep.Verdict.Agree != "yes" {
		t.Errorf("observed bottleneck %q (share %.2f) disagrees with predicted %q (%.3g rec/s)",
			rep.Verdict.Observed, rep.Verdict.ObservedShare, predicted, rate)
	}
}
