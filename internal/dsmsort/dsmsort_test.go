package dsmsort

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lmas/internal/cluster"
	"lmas/internal/container"
	"lmas/internal/records"
	"lmas/internal/route"
)

func testParams(hosts, asus int) cluster.Params {
	p := cluster.DefaultParams()
	p.Hosts, p.ASUs = hosts, asus
	return p
}

func smallConfig() Config {
	return Config{
		Alpha:         4,
		Beta:          64,
		Gamma2:        8,
		PacketRecords: 32,
		Placement:     Active,
		Seed:          1,
	}
}

func TestConfigValidate(t *testing.T) {
	p := testParams(1, 2)
	good := smallConfig()
	if err := good.Validate(p); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Alpha: 0, Beta: 1, Gamma2: 2, PacketRecords: 1},
		{Alpha: 1, Beta: 0, Gamma2: 2, PacketRecords: 1},
		{Alpha: 1, Beta: 1, Gamma2: 0, PacketRecords: 1},
		{Alpha: 1, Beta: 1, Gamma2: 2, PacketRecords: 0},
		{Alpha: 1 << 20, Beta: 1, Gamma2: 2, PacketRecords: 64}, // alpha over ASU buffer
		{Alpha: 1, Beta: 1 << 30, Gamma2: 2, PacketRecords: 1},  // beta over host memory
	}
	for i, c := range bad {
		if err := c.Validate(p); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestWorkEquation(t *testing.T) {
	// Total Work = n log(alpha*beta*gamma): TAB-WORK.
	c := Config{Alpha: 16, Beta: 256, Gamma2: 4}
	n := 1 << 20
	got := c.TotalCompares(n, 4) // gamma1 = 4
	want := float64(n) * math.Log2(16*256*4*4)
	if math.Abs(got-want) > 1 {
		t.Fatalf("TotalCompares = %v, want %v", got, want)
	}
}

func TestMakeInputStripesAcrossASUs(t *testing.T) {
	cl := cluster.New(testParams(1, 4))
	in := MakeInput(cl, 1000, records.Uniform{}, 7, 32)
	if len(in.Sets) != 4 {
		t.Fatalf("%d sets", len(in.Sets))
	}
	var total int64
	for _, set := range in.Sets {
		if set.Records() == 0 {
			t.Fatal("an ASU received no data")
		}
		total += set.Records()
	}
	if total != 1000 {
		t.Fatalf("striped %d records, want 1000", total)
	}
}

func TestRunFormationActive(t *testing.T) {
	cl := cluster.New(testParams(1, 2))
	in := MakeInput(cl, 2000, records.Uniform{}, 3, 32)
	rs, res, err := RunFormation(cl, smallConfig(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if res.Runs == 0 || rs.Records() != 2000 {
		t.Fatalf("runs=%d records=%d", res.Runs, rs.Records())
	}
	if res.ASUOps == 0 {
		t.Fatal("active placement charged no ASU ops")
	}
	if res.HostOps == 0 {
		t.Fatal("no host ops charged")
	}
	if res.NetBytes == 0 {
		t.Fatal("no network traffic recorded")
	}
}

func TestRunFormationConventionalChargesNoASUCompute(t *testing.T) {
	cl := cluster.New(testParams(1, 2))
	in := MakeInput(cl, 2000, records.Uniform{}, 3, 32)
	cfg := smallConfig()
	cfg.Placement = Conventional
	_, res, err := RunFormation(cl, cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.ASUOps != 0 {
		t.Fatalf("conventional storage charged %v ASU ops", res.ASUOps)
	}
	if res.HostOps == 0 {
		t.Fatal("no host ops charged")
	}
}

// TestOffloadShiftsWork verifies the core claim of the programming model:
// raising alpha shifts computation from hosts to ASUs in the active
// configuration (Figure 9's mechanism).
func TestOffloadShiftsWork(t *testing.T) {
	work := func(alpha int) (host, asu float64) {
		cl := cluster.New(testParams(1, 4))
		in := MakeInput(cl, 4000, records.Uniform{}, 3, 32)
		cfg := smallConfig()
		cfg.Alpha = alpha
		_, res, err := RunFormation(cl, cfg, in)
		if err != nil {
			t.Fatal(err)
		}
		return res.HostOps, res.ASUOps
	}
	h1, a1 := work(1)
	h256, a256 := work(256)
	if a256 <= a1 {
		t.Fatalf("alpha=256 ASU ops %v <= alpha=1 ASU ops %v", a256, a1)
	}
	// Host work per record is nearly alpha-independent in the active
	// config (only per-packet handling varies, because high fan-out
	// distribution yields smaller packets).
	if math.Abs(h256-h1)/h1 > 0.25 {
		t.Fatalf("host ops moved with alpha: %v vs %v", h1, h256)
	}
}

// TestActiveBeatsConventionalWithManyASUs and its converse check the
// Figure 9 crossover in miniature.
func TestFigure9CrossoverShape(t *testing.T) {
	elapsed := func(d int, placement Placement) float64 {
		p := testParams(1, d)
		cl := cluster.New(p)
		in := MakeInput(cl, 65536, records.Uniform{}, 3, 32)
		cfg := Config{Alpha: 64, Beta: 64, Gamma2: 8, PacketRecords: 32, Placement: placement, Seed: 1}
		_, res, err := RunFormation(cl, cfg, in)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed.Seconds()
	}
	// Few ASUs: active is slower (weak ASUs bottleneck the distribute).
	if sp := elapsed(2, Conventional) / elapsed(2, Active); sp >= 1 {
		t.Fatalf("2 ASUs: active speedup %.2f, want < 1 (ASUs should bottleneck)", sp)
	}
	// Many ASUs: active is faster (host freed of distribute work).
	if sp := elapsed(32, Conventional) / elapsed(32, Active); sp <= 1 {
		t.Fatalf("32 ASUs: active speedup %.2f, want > 1", sp)
	}
}

func TestFullSortHybridPlacement(t *testing.T) {
	cl := cluster.New(testParams(1, 3))
	in := MakeInput(cl, 3000, records.Uniform{}, 5, 32)
	cfg := smallConfig()
	cfg.Placement = Hybrid
	if _, err := Sort(cl, cfg, in); err != nil {
		t.Fatal(err)
	}
}

func TestHybridMigratesWithScale(t *testing.T) {
	share := func(d int) float64 {
		cl := cluster.New(testParams(1, d))
		in := MakeInput(cl, 1<<14, records.Uniform{}, 5, 32)
		cfg := smallConfig()
		cfg.Alpha = 64
		cfg.Placement = Hybrid
		_, res, err := RunFormation(cl, cfg, in)
		if err != nil {
			t.Fatal(err)
		}
		return res.HybridHostShare
	}
	few, many := share(2), share(16)
	if few < 0.3 {
		t.Errorf("d=2: only %.0f%% of distribute migrated to the host", 100*few)
	}
	if many >= few {
		t.Errorf("host share grew with ASUs: %.2f -> %.2f", few, many)
	}
}

func TestFullSortSmall(t *testing.T) {
	cl := cluster.New(testParams(1, 2))
	in := MakeInput(cl, 3000, records.Uniform{}, 5, 32)
	res, err := Sort(cl, smallConfig(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || res.Output.Records() != 3000 {
		t.Fatalf("elapsed=%v records=%d", res.Elapsed, res.Output.Records())
	}
	h, a := res.MeasuredWork()
	if h <= 0 || a <= 0 {
		t.Fatalf("work split %v/%v", h, a)
	}
}

func TestFullSortSkewedInput(t *testing.T) {
	cl := cluster.New(testParams(2, 3))
	in := MakeInputHalves(cl, 4000, records.Uniform{}, records.Exponential{Mean: 0.05}, 5, 32)
	cfg := smallConfig()
	cfg.SortPolicy = route.NewSR(2)
	if _, err := Sort(cl, cfg, in); err != nil {
		t.Fatal(err)
	}
}

func TestFullSortAlreadySorted(t *testing.T) {
	cl := cluster.New(testParams(1, 2))
	in := MakeInput(cl, 2000, &records.Sorted{}, 5, 32)
	if _, err := Sort(cl, smallConfig(), in); err != nil {
		t.Fatal(err)
	}
}

func TestFullSortDuplicateKeys(t *testing.T) {
	cl := cluster.New(testParams(1, 2))
	in := MakeInput(cl, 2000, constDist{}, 5, 32)
	if _, err := Sort(cl, smallConfig(), in); err != nil {
		t.Fatal(err)
	}
}

type constDist struct{}

func (constDist) Name() string                  { return "const" }
func (constDist) Draw(_ *rand.Rand) records.Key { return 42 }

func TestMultiLevelLocalMerge(t *testing.T) {
	// Tiny gamma2 with many runs forces intermediate ASU merge levels.
	cl := cluster.New(testParams(1, 2))
	in := MakeInput(cl, 4096, records.Uniform{}, 5, 32)
	cfg := Config{Alpha: 2, Beta: 16, Gamma2: 2, PacketRecords: 32, Placement: Active, Seed: 1}
	rs, _, err := RunFormation(cl, cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	out, mr, err := MergePass(cl, cfg, rs)
	if err != nil {
		t.Fatal(err)
	}
	if mr.ASUMergeLevels < 2 {
		t.Fatalf("expected multi-level local merge, got %d levels", mr.ASUMergeLevels)
	}
	if err := out.Validate(in, cfg.Alpha); err != nil {
		t.Fatal(err)
	}
}

func TestMergeRejectsGamma1(t *testing.T) {
	cl := cluster.New(testParams(1, 1))
	cfg := smallConfig()
	cfg.Gamma2 = 1
	rs := NewRunStore(cl, cfg.Alpha)
	if _, _, err := MergePass(cl, cfg, rs); err == nil {
		t.Fatal("gamma2=1 accepted")
	}
}

// TestSortProperty: the full pipeline sorts arbitrary configurations.
func TestSortProperty(t *testing.T) {
	f := func(seed int64, alphaRaw, betaRaw uint8, dists uint8) bool {
		alpha := 1 << (alphaRaw % 5) // 1..16
		beta := 8 << (betaRaw % 4)   // 8..64
		var dist records.KeyDist = records.Uniform{}
		if dists%2 == 1 {
			dist = records.Exponential{Mean: 0.1}
		}
		cl := cluster.New(testParams(1, 2))
		in := MakeInput(cl, 1500, dist, seed, 16)
		cfg := Config{Alpha: alpha, Beta: beta, Gamma2: 4, PacketRecords: 16, Placement: Active, Seed: seed}
		_, err := Sort(cl, cfg, in)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicElapsed(t *testing.T) {
	run := func() float64 {
		cl := cluster.New(testParams(1, 4))
		in := MakeInput(cl, 4000, records.Uniform{}, 9, 32)
		cfg := smallConfig()
		cfg.SortPolicy = route.NewSR(5)
		res, err := Sort(cl, cfg, in)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed.Seconds()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic elapsed: %v vs %v", a, b)
	}
}

func TestRunFormationRejectsMismatchedInput(t *testing.T) {
	clA := cluster.New(testParams(1, 4))
	in := MakeInput(clA, 1000, records.Uniform{}, 1, 32)
	clB := cluster.New(testParams(1, 2)) // different ASU count
	if _, _, err := RunFormation(clB, smallConfig(), in); err == nil {
		t.Fatal("mismatched input accepted")
	}
}

func TestRunFormationRejectsInvalidConfig(t *testing.T) {
	cl := cluster.New(testParams(1, 2))
	in := MakeInput(cl, 100, records.Uniform{}, 1, 32)
	cfg := smallConfig()
	cfg.Alpha = 0
	if _, _, err := RunFormation(cl, cfg, in); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSortTinyInputs(t *testing.T) {
	for _, n := range []int{1, 2, 7} {
		cl := cluster.New(testParams(1, 2))
		in := MakeInput(cl, n, records.Uniform{}, int64(n), 32)
		if _, err := Sort(cl, smallConfig(), in); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	cl := cluster.New(testParams(1, 2))
	in := MakeInput(cl, 1000, records.Uniform{}, 5, 32)
	res, err := Sort(cl, smallConfig(), in)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one stored output byte; packets alias stored blocks, so
	// mutating through ForEach hits the store.
	res.Output.Streams[0].ForEach(func(pk container.Packet) bool {
		if pk.Len() > 0 {
			pk.Buf.Record(0)[8] ^= 0xff
			return false
		}
		return true
	})
	if err := res.Output.Validate(in, smallConfig().Alpha); err == nil {
		t.Fatal("corrupted output validated")
	}
}

func TestSpeedupHelper(t *testing.T) {
	if Speedup(100, 50) != 2 || Speedup(50, 100) != 0.5 || Speedup(1, 0) != 0 {
		t.Fatal("Speedup arithmetic wrong")
	}
}
