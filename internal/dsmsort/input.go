package dsmsort

import (
	"fmt"

	"lmas/internal/bte"
	"lmas/internal/cluster"
	"lmas/internal/container"
	"lmas/internal/records"
	"lmas/internal/sim"
)

// Input is a data set striped across the ASUs, "with the input data
// initially distributed across the ASUs" as in the Figure 9 experiment.
type Input struct {
	Sets     []*container.Set // one per ASU, on that ASU's disk
	N        int
	Checksum records.Checksum
}

// Harness offload labels: generation and validation run through the same
// engine seam as in-simulation kernels, so bench sweeps under the parallel
// engine stop serializing on setup/teardown. All Exec variants are
// byte-identical to their serial counterparts, so this never changes inputs,
// checksums, or validation verdicts.
var (
	generateLabel = &sim.OffloadLabel{Kernel: "generate", Stage: "harness"}
	checksumLabel = &sim.OffloadLabel{Kernel: "checksum", Stage: "harness"}
	validateLabel = &sim.OffloadLabel{Kernel: "validate", Stage: "harness"}
)

// harnessExec adapts cl's engine offload hook into a records.Executor. The
// returned executor is only safe from the goroutine driving the simulation
// (see Sim.ExecChunks) — exactly where the harness runs.
func harnessExec(cl *cluster.Cluster, lbl *sim.OffloadLabel) records.Executor {
	return func(n int, task func(i int)) { cl.Sim.ExecChunks(lbl, n, task) }
}

// MakeInput generates n records from dist and stripes them packet-by-packet
// across the cluster's ASUs. Loading happens outside measured time (the
// simulator clock is advanced and the writes flushed before return).
func MakeInput(cl *cluster.Cluster, n int, dist records.KeyDist, seed int64, packetRecords int) *Input {
	buf := records.GenerateExec(n, cl.Params.RecordSize, seed, dist, harnessExec(cl, generateLabel))
	return loadInput(cl, buf, packetRecords)
}

// MakeInputHalves generates the Figure 10 workload (first half from first,
// second half from second) striped across ASUs so that, scanned in
// parallel, the skewed half arrives in the second half of the run.
func MakeInputHalves(cl *cluster.Cluster, n int, first, second records.KeyDist, seed int64, packetRecords int) *Input {
	buf := records.GenerateHalvesExec(n, cl.Params.RecordSize, seed, first, second, harnessExec(cl, generateLabel))
	return loadInput(cl, buf, packetRecords)
}

// MakeInputNamed builds an input from a distribution name — the vocabulary
// shared by the CLIs and the bench harness: uniform, exp, zipf, sorted, or
// halves (uniform then exponential, the Figure 10 shift workload).
func MakeInputNamed(cl *cluster.Cluster, n int, dist string, seed int64, packetRecords int) (*Input, error) {
	switch dist {
	case "uniform":
		return MakeInput(cl, n, records.Uniform{}, seed, packetRecords), nil
	case "exp":
		return MakeInput(cl, n, records.Exponential{}, seed, packetRecords), nil
	case "zipf":
		return MakeInput(cl, n, records.Zipf{}, seed, packetRecords), nil
	case "sorted":
		return MakeInput(cl, n, &records.Sorted{}, seed, packetRecords), nil
	case "halves":
		return MakeInputHalves(cl, n, records.Uniform{}, records.Exponential{}, seed, packetRecords), nil
	default:
		return nil, fmt.Errorf("dsmsort: unknown distribution %q", dist)
	}
}

func loadInput(cl *cluster.Cluster, buf records.Buffer, packetRecords int) *Input {
	if packetRecords < 1 {
		panic("dsmsort: packetRecords must be >= 1")
	}
	n := buf.Len()
	in := &Input{N: n}
	in.Checksum = records.ChecksumExec(buf, harnessExec(cl, checksumLabel))
	d := len(cl.ASUs)
	for _, asu := range cl.ASUs {
		set := container.NewSet(fmt.Sprintf("input@%s", asu.Name), bte.NewDisk(asu.Disk), cl.Params.RecordSize)
		in.Sets = append(in.Sets, set)
	}
	cl.Sim.Spawn("load-input", func(p *sim.Proc) {
		// Stripe packets round-robin: ASU i holds packets i, i+d, ...
		// Striping by packet keeps each ASU's share an unbiased sample
		// of the whole input over time, so a temporal distribution
		// shift (Figure 10) hits all ASUs simultaneously.
		for pi, off := 0, 0; off < n; pi, off = pi+1, off+packetRecords {
			hi := off + packetRecords
			if hi > n {
				hi = n
			}
			// ClonePooled: the copy's ownership transfers into the set's
			// engine; the generator's master buffer never enters the pool.
			pk := container.NewPacket(buf.Slice(off, hi).ClonePooled())
			in.Sets[pi%d].Add(p, pk)
		}
		for _, set := range in.Sets {
			set.Flush(p)
		}
	})
	if err := cl.Sim.Run(); err != nil {
		panic(fmt.Sprintf("dsmsort: input load failed: %v", err))
	}
	return in
}

// Free releases all remaining input packet storage back to the buffer pool.
// Call after the run (and any validation) completes; harmless on inputs
// already drained by destructive scans.
func (in *Input) Free() {
	for _, set := range in.Sets {
		set.FreeAll()
	}
}
