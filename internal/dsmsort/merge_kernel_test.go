package dsmsort

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"lmas/internal/bufpool"
	"lmas/internal/records"
	"lmas/internal/sim"
)

// kernelEngineSpecs sweeps the merge-kernel differential tests across the
// serial reference, the shared worker pool at the pinned worker counts, and
// partition-group mode.
var kernelEngineSpecs = []sim.EngineSpec{
	{Kind: sim.EngineSerial},
	{Kind: sim.EngineParallel, Workers: 1},
	{Kind: sim.EngineParallel, Workers: 2},
	{Kind: sim.EngineParallel, Workers: 8},
	{Kind: sim.EngineParallel, Groups: 2},
}

func kernelSpecLabel(spec sim.EngineSpec) string {
	switch {
	case spec.Kind == sim.EngineSerial:
		return "serial"
	case spec.Groups > 0:
		return fmt.Sprintf("parallel-g%d", spec.Groups)
	default:
		return fmt.Sprintf("parallel-%d", spec.Workers)
	}
}

// sortedRandomBuffers builds k pooled sorted buffers with random lengths and
// payloads (some possibly empty), the input shape of one staged merge batch.
func sortedRandomBuffers(rng *rand.Rand, k, recSize int) []records.Buffer {
	bufs := make([]records.Buffer, k)
	for i := range bufs {
		n := rng.Intn(200)
		b := records.NewPooled(n, recSize)
		for r := 0; r < n; r++ {
			rec := b.Record(r)
			for j := range rec {
				rec[j] = byte(rng.Intn(256))
			}
		}
		keys := make([]records.Key, n)
		for r := range keys {
			keys[r] = records.Key(rng.Uint32())
		}
		sort.Slice(keys, func(a, c int) bool { return keys[a] < keys[c] })
		for r, key := range keys {
			b.SetKey(r, key)
		}
		bufs[i] = b
	}
	return bufs
}

// TestStagedMergeMatchesInline is the per-kernel differential test: the
// staged merge body — issued through Proc.GoLabeled with the Guard/Unguard
// discipline the merge pass uses, under every engine — must produce exactly
// the bytes of the inline mergeBuffers reference. Runs under bufpool debug
// (pool_test.go's TestMain), so a closure retaining a pooled buffer past its
// stage would panic here.
func TestStagedMergeMatchesInline(t *testing.T) {
	prev := bufpool.SetDebug(true)
	defer bufpool.SetDebug(prev)
	const recSize = 32
	for _, spec := range kernelEngineSpecs {
		t.Run(kernelSpecLabel(spec), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 20; trial++ {
				k := 2 + rng.Intn(8)
				bufs := sortedRandomBuffers(rng, k, recSize)
				ref := mergeBuffers(bufs, recSize)

				total := 0
				for _, b := range bufs {
					total += b.Len()
				}
				s := sim.NewWithEngine(spec)
				staged := records.NewPooled(total, recSize)
				s.Spawn("merge", func(p *sim.Proc) {
					bufpool.Guard(staged.Raw(), "asumerge")
					job := p.GoLabeled(asuMergeLabel, func() {
						mergeBody(staged, bufs)
						bufpool.Unguard(staged.Raw())
					})
					job.Wait()
				})
				if err := s.Run(); err != nil {
					t.Fatal(err)
				}
				s.Shutdown()
				if !bytes.Equal(staged.Raw(), ref.Raw()) {
					t.Fatalf("trial %d (k=%d, n=%d): staged merge bytes diverge from inline reference",
						trial, k, total)
				}
				if !staged.IsSorted() {
					t.Fatalf("trial %d: staged merge output not sorted", trial)
				}
				staged.Release()
				ref.Release()
				for _, b := range bufs {
					b.Release()
				}
			}
			if err := bufpool.LeakCheck(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGuardCatchesCommitBeforeWait pins the bufpool offload check end to
// end: releasing a staged merge's output buffer before the closure's Wait —
// the commit-before-join bug class — must panic under debug mode.
func TestGuardCatchesCommitBeforeWait(t *testing.T) {
	prev := bufpool.SetDebug(true)
	defer bufpool.SetDebug(prev)
	out := records.NewPooled(16, 32)
	bufpool.Guard(out.Raw(), "asumerge")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("releasing a guarded staged buffer did not panic")
			}
		}()
		out.Release() // before any Unguard: the misuse moment
	}()
	bufpool.Unguard(out.Raw())
	out.Release()
	if err := bufpool.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}
