package dsmsort

import (
	"fmt"

	"lmas/internal/bte"
	"lmas/internal/cluster"
	"lmas/internal/container"
	"lmas/internal/functor"
	"lmas/internal/records"
	"lmas/internal/route"
	"lmas/internal/sim"
)

// RunStore holds the sorted runs produced by run formation, grouped by the
// ASU they are stored on and the distribute subset they belong to.
type RunStore struct {
	RecordSize int
	// Streams[asu][bucket] holds that subset's runs on that ASU (nil if
	// none landed there).
	Streams [][]*container.Stream
	engines []*bte.DiskEngine
}

// NewRunStore allocates run storage for d ASUs and alpha subsets on the
// given cluster.
func NewRunStore(cl *cluster.Cluster, alpha int) *RunStore {
	rs := &RunStore{RecordSize: cl.Params.RecordSize}
	rs.Streams = make([][]*container.Stream, len(cl.ASUs))
	for i := range rs.Streams {
		rs.Streams[i] = make([]*container.Stream, alpha)
		rs.engines = append(rs.engines, bte.NewDisk(cl.ASUs[i].Disk))
	}
	return rs
}

func (rs *RunStore) put(p *sim.Proc, asu int, pk container.Packet) {
	if pk.Bucket < 0 || pk.Bucket >= len(rs.Streams[asu]) {
		panic(fmt.Sprintf("dsmsort: run with bucket %d out of range", pk.Bucket))
	}
	st := rs.Streams[asu][pk.Bucket]
	if st == nil {
		st = container.NewStream(fmt.Sprintf("runs.asu%d.b%d", asu, pk.Bucket), rs.engines[asu], rs.RecordSize)
		rs.Streams[asu][pk.Bucket] = st
	}
	st.Append(p, pk)
}

// Free releases every stored run's storage back to the buffer pool; call it
// when the run store has been merged or validated and is no longer needed.
func (rs *RunStore) Free() {
	for _, row := range rs.Streams {
		for _, st := range row {
			if st != nil {
				st.FreeAll()
			}
		}
	}
}

// Runs reports the total number of stored runs.
func (rs *RunStore) Runs() int {
	n := 0
	for _, row := range rs.Streams {
		for _, st := range row {
			if st != nil {
				n += st.Packets()
			}
		}
	}
	return n
}

// Records reports the total records stored.
func (rs *RunStore) Records() int64 {
	var n int64
	for _, row := range rs.Streams {
		for _, st := range row {
			if st != nil {
				n += st.Records()
			}
		}
	}
	return n
}

// Checksum digests every stored record (order-independent). Validation
// reads the emulation host's memory directly and charges no virtual time.
func (rs *RunStore) Checksum() records.Checksum {
	var sum records.Checksum
	for _, row := range rs.Streams {
		for _, st := range row {
			if st == nil {
				continue
			}
			st.ForEach(func(pk container.Packet) bool {
				sum.Add(pk.Buf)
				return true
			})
		}
	}
	return sum
}

// sortedRunsOK verifies every stored run is sorted and in its key range,
// outside virtual time.
func (rs *RunStore) sortedRunsOK(alpha int) error {
	sp := records.Splitters(alpha)
	var err error
	for asu, row := range rs.Streams {
		for bucket, st := range row {
			if st == nil {
				continue
			}
			asu, bucket := asu, bucket
			st.ForEach(func(pk container.Packet) bool {
				if !pk.Buf.IsSorted() {
					err = fmt.Errorf("run on asu%d bucket %d not sorted", asu, bucket)
					return false
				}
				n := pk.Len()
				for i := 0; i < n; i++ {
					if records.BucketOf(pk.Buf.Key(i), sp) != bucket {
						err = fmt.Errorf("record in wrong bucket on asu%d: bucket %d", asu, bucket)
						return false
					}
				}
				return true
			})
			if err != nil {
				return err
			}
		}
	}
	return err
}

// Pass1Result reports run formation outcomes.
type Pass1Result struct {
	Elapsed sim.Duration
	Runs    int
	// HostOps / ASUOps are the total CPU ops charged per node class.
	HostOps, ASUOps float64
	// NetBytes is the interconnect traffic.
	NetBytes int64
	// HybridHostShare is the fraction of records whose distribute step
	// ran on a host (meaningful only for the Hybrid placement, where it
	// shows how much work migrated off the ASUs).
	HybridHostShare float64
	// Monitor holds progress samples when Config.ProgressInterval > 0.
	Monitor *functor.Monitor
}

// RunFormation executes DSM-Sort's first pass (distribute + block sort +
// collect) on cl, reading in and storing runs into the returned RunStore.
// This is the phase timed in Figure 9 ("timings from the first pass of
// sorting (run formation), omitting the final merge phases").
func RunFormation(cl *cluster.Cluster, cfg Config, in *Input) (*RunStore, *Pass1Result, error) {
	if err := cfg.Validate(cl.Params); err != nil {
		return nil, nil, err
	}
	if len(in.Sets) != len(cl.ASUs) {
		return nil, nil, fmt.Errorf("dsmsort: input striped over %d ASUs, cluster has %d", len(in.Sets), len(cl.ASUs))
	}
	recSize := cl.Params.RecordSize
	rs := NewRunStore(cl, cfg.Alpha)
	pl := functor.NewPipeline(cl)

	sortPolicy := cfg.SortPolicy
	if sortPolicy == nil {
		sortPolicy = route.Static{Buckets: cfg.Alpha}
	}
	if cl.Telemetry != nil {
		// Count per-sorter routing decisions so the report shows how the
		// policy actually spread packets. Counted delegates Pick, so the
		// routed destinations — and hence timings — are unchanged.
		sortPolicy = &route.Counted{Inner: sortPolicy, Reg: cl.Telemetry, Prefix: "route.sort"}
	}

	var sorterStage, distStage *functor.Stage
	var edges []*functor.Edge

	switch cfg.Placement {
	case Active:
		// ASU: distribute; host: block sort; ASU: collect runs.
		dist := pl.AddStage("distribute", cl.ASUs, func() functor.Kernel {
			return functor.Adapt(functor.NewDistribute(cfg.Alpha), recSize, cfg.PacketRecords)
		})
		sorterStage = pl.AddStage("blocksort", cl.Hosts, func() functor.Kernel {
			return functor.NewBlockSort(cfg.Beta, recSize)
		})
		collect := pl.AddStage("collect", cl.ASUs, func() functor.Kernel {
			return &functor.Sink{Label: "runs", Fn: func(ctx *functor.Ctx, pk container.Packet) {
				rs.put(ctx.Proc, ctx.Node.Index, pk)
			}}
		})
		edges = append(edges, dist.ConnectTo(sorterStage, sortPolicy))
		edges = append(edges, sorterStage.ConnectTo(collect, &route.RoundRobin{}))
		collect.Terminal()
		for i, set := range in.Sets {
			// Each ASU's reader feeds its own distribute instance.
			pl.AddSource(fmt.Sprintf("read@asu%d", i), cl.ASUs[i], set.Scan(i, false), dist, pin(i))
		}

	case Hybrid:
		// Distribute runs on ASUs AND hosts; each reader picks its
		// local ASU instance or a host instance by backlog, migrating
		// work toward spare capacity. Hosts also run the block sort,
		// so host-side distribute naturally throttles when sorting
		// saturates the host CPU.
		nodes := append(append([]*cluster.Node{}, cl.ASUs...), cl.Hosts...)
		dist := pl.AddStage("distribute", nodes, func() functor.Kernel {
			return functor.Adapt(functor.NewDistribute(cfg.Alpha), recSize, cfg.PacketRecords)
		})
		// Deeper inboxes make backlog a usable migration signal: a
		// saturated host shows a long queue well before backpressure
		// stalls the readers.
		dist.InboxPackets = 64
		distStage = dist
		sorterStage = pl.AddStage("blocksort", cl.Hosts, func() functor.Kernel {
			return functor.NewBlockSort(cfg.Beta, recSize)
		})
		collect := pl.AddStage("collect", cl.ASUs, func() functor.Kernel {
			return &functor.Sink{Label: "runs", Fn: func(ctx *functor.Ctx, pk container.Packet) {
				rs.put(ctx.Proc, ctx.Node.Index, pk)
			}}
		})
		edges = append(edges, dist.ConnectTo(sorterStage, sortPolicy))
		edges = append(edges, sorterStage.ConnectTo(collect, &route.RoundRobin{}))
		collect.Terminal()
		for i, set := range in.Sets {
			pl.AddSource(fmt.Sprintf("read@asu%d", i), cl.ASUs[i], set.Scan(i, false),
				dist, localOrHost{local: i, asus: len(cl.ASUs), c: cl.Params.C})
		}

	case Conventional:
		// Dumb disks stream raw blocks to the hosts; hosts do
		// distribute + block sort fused in one pass; raw blocks are
		// written back to the storage units with no ASU computation.
		sorterStage = pl.AddStage("host-dist-sort", cl.Hosts, func() functor.Kernel {
			return functor.NewFusedDistributeSort(cfg.Alpha, cfg.Beta, recSize)
		})
		writeback := pl.AddStage("writeback", cl.ASUs, func() functor.Kernel {
			return &functor.Sink{Label: "runs", Fn: func(ctx *functor.Ctx, pk container.Packet) {
				rs.put(ctx.Proc, ctx.Node.Index, pk)
			}}
		})
		writeback.NoCPU = true // raw block DMA on conventional storage
		edges = append(edges, sorterStage.ConnectTo(writeback, &route.RoundRobin{}))
		writeback.Terminal()
		for i, set := range in.Sets {
			// Readers route packets across host sorters round-robin
			// (the host pulls blocks from all disks evenly).
			pl.AddSource(fmt.Sprintf("read@asu%d", i), cl.ASUs[i], set.Scan(i, false), sorterStage, &route.RoundRobin{})
		}
	default:
		return nil, nil, fmt.Errorf("dsmsort: unknown placement %v", cfg.Placement)
	}

	var mon *functor.Monitor
	if cfg.ProgressInterval > 0 {
		mon = pl.AttachMonitor(cfg.ProgressInterval)
	}
	elapsed, err := pl.Run()
	if err != nil {
		return nil, nil, fmt.Errorf("dsmsort: pass 1 failed: %w", err)
	}
	res := &Pass1Result{Elapsed: elapsed, Runs: rs.Runs(), Monitor: mon}
	if distStage != nil {
		var hostRecs, totalRecs int64
		for _, inst := range distStage.Instances() {
			totalRecs += inst.RecordsIn
			if inst.Node.Kind == cluster.Host {
				hostRecs += inst.RecordsIn
			}
		}
		if totalRecs > 0 {
			res.HybridHostShare = float64(hostRecs) / float64(totalRecs)
		}
	}
	for _, st := range pl.Stages() {
		for _, inst := range st.Instances() {
			if inst.Node.Kind == cluster.Host {
				res.HostOps += inst.OpsCharged
			} else {
				res.ASUOps += inst.OpsCharged
			}
		}
	}
	for _, e := range edges {
		res.NetBytes += e.NetBytes
	}
	// Integrity: every input record must be stored in exactly one run.
	if got := rs.Records(); got != int64(in.N) {
		return nil, nil, fmt.Errorf("dsmsort: stored %d records, want %d", got, in.N)
	}
	sum, err := rs.auditExec(cfg.Alpha, harnessExec(cl, validateLabel))
	if err != nil {
		return nil, nil, err
	}
	if !sum.Equal(in.Checksum) {
		return nil, nil, fmt.Errorf("dsmsort: run store checksum mismatch")
	}
	if reg := cl.Telemetry; reg != nil {
		reg.Counter("dsmsort.pass1.runs").Add(int64(res.Runs))
		reg.Counter("dsmsort.pass1.net_bytes").Add(res.NetBytes)
		reg.Counter("dsmsort.pass1.host_ops").Add(int64(res.HostOps))
		reg.Counter("dsmsort.pass1.asu_ops").Add(int64(res.ASUOps))
		reg.Gauge("dsmsort.pass1.elapsed_sec").Set(cl.Sim.Now(), res.Elapsed.Seconds())
	}
	return rs, res, nil
}

// pin routes every packet to endpoint i.
type pin int

func (pin) Name() string                                       { return "pin" }
func (f pin) Pick(pk route.PacketInfo, e []route.Endpoint) int { return int(f) % len(e) }

// localOrHost is the hybrid migration policy: a reader chooses between its
// local ASU's distribute instance and the host instances by estimated
// completion time — backlog plus one, weighted by the node's relative
// processing cost (the ASU is c times slower). Work therefore drains to
// the hosts while they have spare capacity and returns to the ASUs as the
// hosts saturate, without any central coordination.
type localOrHost struct {
	local int     // index of the reader's ASU instance
	asus  int     // instances [0,asus) are ASU-resident; the rest are hosts
	c     float64 // host/ASU power ratio
}

func (localOrHost) Name() string { return "local-or-host" }

func (l localOrHost) Pick(pk route.PacketInfo, eps []route.Endpoint) int {
	best := l.local % len(eps)
	bestCost := float64(eps[best].Pending()+1) * l.c
	for i := l.asus; i < len(eps); i++ {
		if cost := float64(eps[i].Pending() + 1); cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}
