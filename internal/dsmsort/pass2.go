package dsmsort

import (
	"fmt"

	"lmas/internal/bte"
	"lmas/internal/bufpool"
	"lmas/internal/cluster"
	"lmas/internal/container"
	"lmas/internal/critpath"
	"lmas/internal/records"
	"lmas/internal/scratch"
	"lmas/internal/sim"
)

// OutputStore holds DSM-Sort's final output, striped across the ASUs ("a
// γ-way merge to form sorted runs striped across the ASUs"). Each packet is
// tagged with its bucket and a per-bucket sequence number (in Run) so the
// global order is reconstructible: buckets are disjoint increasing key
// ranges, and within a bucket packets are emitted in merge order.
type OutputStore struct {
	RecordSize int
	Streams    []*container.Stream // one per ASU
}

// NewOutputStore allocates output storage on every ASU.
func NewOutputStore(cl *cluster.Cluster) *OutputStore {
	os := &OutputStore{RecordSize: cl.Params.RecordSize}
	for _, asu := range cl.ASUs {
		os.Streams = append(os.Streams,
			container.NewStream("output@"+asu.Name, bte.NewDisk(asu.Disk), cl.Params.RecordSize))
	}
	return os
}

// Free releases the output's packet storage back to the buffer pool; call
// it once the output has been validated and is no longer needed.
func (o *OutputStore) Free() {
	for _, st := range o.Streams {
		st.FreeAll()
	}
}

// Records reports the total records stored.
func (o *OutputStore) Records() int64 {
	var n int64
	for _, st := range o.Streams {
		n += st.Records()
	}
	return n
}

// Validate checks that the output is a complete ascending sort of in:
// right count, matching multiset checksum, every packet sorted, packets
// within a bucket nondecreasing across sequence numbers, and bucket key
// ranges respected. It runs outside virtual time, serially; ValidateExec
// (validate.go) chunks the per-packet work through an executor.
func (o *OutputStore) Validate(in *Input, alpha int) error {
	return o.ValidateExec(in, alpha, nil)
}

// MergeResult reports merge-pass outcomes.
type MergeResult struct {
	Elapsed sim.Duration
	// ASUMergeLevels is the maximum number of local merge levels any
	// (ASU, bucket) pair needed (1 when runs fit in a single γ2-way
	// merge).
	ASUMergeLevels int
	HostOps        float64
	ASUOps         float64
	// OffloadedOps is the share of HostOps+ASUOps whose record-moving
	// inner loop ran behind the engine's offload seam (staged merges).
	// Deterministic: the staged path runs under every engine.
	OffloadedOps float64
}

// Offload labels for the merge pass's staged kernels (see sim.OffloadLabel).
var (
	asuMergeLabel  = &sim.OffloadLabel{Kernel: "asumerge", Stage: "merge"}
	hostMergeLabel = &sim.OffloadLabel{Kernel: "hostmerge", Stage: "merge"}
)

// mergeHeap is a loser-tree-equivalent k-way merge frontier. It is a
// hand-rolled binary heap rather than container/heap because heap.Pop
// boxes every popped item into an interface value — one allocation per
// exhausted merge source — and the merge frontier sits in the hottest
// emulation-host loop of the merge pass.
type mergeItem struct {
	key records.Key
	src int
}
type mergeHeap []mergeItem

// siftDown restores the heap property below index i.
func (h mergeHeap) siftDown(i int) {
	n := len(h)
	for {
		least := i
		if l := 2*i + 1; l < n && h[l].key < h[least].key {
			least = l
		}
		if r := 2*i + 2; r < n && h[r].key < h[least].key {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// init heapifies h in place.
func (h mergeHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// fixTop restores the heap property after the root's key changed.
func (h mergeHeap) fixTop() { h.siftDown(0) }

// popTop removes the root (its merge source is exhausted).
func (h *mergeHeap) popTop() {
	old := *h
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	(*h).siftDown(0)
}

// mergeScratch is pooled per-merge working memory: the frontier heap and
// cursor slices that every k-way merge needs. Output buffers are NOT here:
// they escape into packets and streams, which own them.
type mergeScratch struct {
	h     mergeHeap
	pos   []int
	heads []container.Packet
}

var mergePool scratch.Pool[mergeScratch]

// putMergeScratch returns sc to the pool with packet references cleared so
// pooled scratch never pins record buffers.
func putMergeScratch(sc *mergeScratch) {
	sc.h = sc.h[:0]
	for i := range sc.heads {
		sc.heads[i] = container.Packet{}
	}
	sc.heads = sc.heads[:0]
	mergePool.Put(sc)
}

// mergeBody merges k sorted buffers into out (which must hold exactly their
// total record count). It is pure computation over memory the caller owns —
// the merge-pass kernel that runs behind the engine's offload seam. Scratch
// is drawn from the merge pool inside (scratch pools are contention-free and
// have no report-visible state, so worker-side draws are safe).
func mergeBody(out records.Buffer, bufs []records.Buffer) {
	sc := mergePool.Get()
	pos := scratch.Grow(sc.pos, len(bufs))
	h := sc.h[:0]
	for i, b := range bufs {
		pos[i] = 0
		if b.Len() > 0 {
			h = append(h, mergeItem{key: b.Key(0), src: i})
		}
	}
	h.init()
	w := 0
	for len(h) > 0 {
		it := h[0]
		b := bufs[it.src]
		copy(out.Record(w), b.Record(pos[it.src]))
		w++
		pos[it.src]++
		if pos[it.src] < b.Len() {
			h[0] = mergeItem{key: b.Key(pos[it.src]), src: it.src}
			h.fixTop()
		} else {
			h.popTop()
		}
	}
	sc.pos, sc.h = pos, h
	putMergeScratch(sc)
}

// mergeBuffers merges k sorted buffers into one sorted buffer (pure
// computation; callers charge the CPU cost separately). The result is drawn
// from the buffer pool and owned by the caller; every record position is
// written before return. This is the inline reference the staged offload
// path is differential-tested against.
func mergeBuffers(bufs []records.Buffer, recSize int) records.Buffer {
	total := 0
	for _, b := range bufs {
		total += b.Len()
	}
	out := records.NewPooled(total, recSize)
	mergeBody(out, bufs)
	return out
}

// MergePass executes DSM-Sort's merge pass: for every bucket, each ASU
// pre-merges its local runs γ2 ways (possibly over multiple levels) into a
// single sorted stream, and a host merges the per-ASU streams γ1 = D ways
// into the bucket's final output, striped back across the ASUs. "The merge
// is divided between hosts and ASUs, so that γ1·γ2 = γ" (Section 4.3).
func MergePass(cl *cluster.Cluster, cfg Config, rs *RunStore) (*OutputStore, *MergeResult, error) {
	if cfg.Gamma2 < 2 {
		return nil, nil, fmt.Errorf("dsmsort: gamma2 must be >= 2 for merging, have %d", cfg.Gamma2)
	}
	out := NewOutputStore(cl)
	res := &MergeResult{}
	hostN := len(cl.Hosts)
	d := len(cl.ASUs)
	// registerQueueProbe exposes a merge-phase queue to the cluster's
	// periodic sampler (recorder / gauge daemons); inert when none attached.
	registerQueueProbe := func(q *sim.Queue[container.Packet]) {
		if !cl.WantsQueueProbes() {
			return
		}
		cl.RegisterQueueProbe(q.Name(), func() (int, int) {
			_, high := q.WaitStats()
			return q.Len(), high
		})
	}

	// Output collectors: one proc per ASU draining an inbox of final
	// packets, charging ASU touch (packet reassembly) plus disk write.
	pf := cl.Profiler
	collectors := make([]*sim.Queue[container.Packet], d)
	for i, asu := range cl.ASUs {
		i, asu := i, asu
		collectors[i] = sim.NewQueue[container.Packet](cl.Sim, fmt.Sprintf("out.collect%d", i), 8)
		registerQueueProbe(collectors[i])
		collectProc := cl.Sim.SpawnOn(asu.Part, fmt.Sprintf("collect@asu%d", i), func(p *sim.Proc) {
			pf.Bind(p, "merge.collect", asu.Name, critpath.ClassASUCPU, critpath.ClassASUCPU)
			touch := cl.Touch(asu)
			for {
				pk, ok := collectors[i].Get(p)
				if !ok {
					break
				}
				pf.BeginPacket(p, pk.Prov)
				ops := float64(pk.Len()) * touch
				res.ASUOps += ops
				asu.Compute(p, ops)
				out.Streams[i].Append(p, pk)
				pf.EndPacket(p)
			}
			out.Streams[i].Flush(p)
		})
		// A host merger blocked on a full collector inbox is being slowed
		// by the ASU's packet reassembly and output writes; apportion by
		// the collector proc's mix (ASU CPU plus disk).
		pf.BlameWaitProc(collectors[i].Name()+" not-full", collectProc, critpath.ClassASUCPU)
	}

	// Per (bucket, ASU) local merge feeding a bounded stream queue; per
	// bucket a host merger consuming those queues.
	type bucketWork struct {
		bucket int
		queues []*sim.Queue[container.Packet]
		srcs   []*cluster.Node
	}
	var buckets []bucketWork
	alpha := len(rs.Streams[0])
	openCollectors := 0 // producers into collectors (host mergers)
	for b := 0; b < alpha; b++ {
		var queues []*sim.Queue[container.Packet]
		var srcs []*cluster.Node
		for asuIdx := 0; asuIdx < d; asuIdx++ {
			st := rs.Streams[asuIdx][b]
			if st == nil || st.Packets() == 0 {
				continue
			}
			q := sim.NewQueue[container.Packet](cl.Sim, fmt.Sprintf("merge.b%d.asu%d", b, asuIdx), 4)
			registerQueueProbe(q)
			queues = append(queues, q)
			asu := cl.ASUs[asuIdx]
			srcs = append(srcs, asu)
			b := b
			cl.Sim.SpawnOn(asu.Part, fmt.Sprintf("asumerge.b%d@asu%d", b, asuIdx), func(p *sim.Proc) {
				pf.Bind(p, "merge.asu", asu.Name, critpath.ClassASUCPU, critpath.ClassASUCPU)
				levels := asuLocalMerge(cl, cfg, p, asu, st, q, res)
				if levels > res.ASUMergeLevels {
					res.ASUMergeLevels = levels
				}
				q.Close()
			})
		}
		if len(queues) == 0 {
			continue
		}
		buckets = append(buckets, bucketWork{bucket: b, queues: queues, srcs: srcs})
		openCollectors++
	}

	// Close collector inboxes when every host merger is done.
	remaining := openCollectors
	done := func() {
		remaining--
		if remaining == 0 {
			for _, q := range collectors {
				q.Close()
			}
		}
	}
	if openCollectors == 0 {
		for _, q := range collectors {
			q.Close()
		}
	}

	stripe := 0
	for i, bw := range buckets {
		bw := bw
		host := cl.Hosts[i%hostN]
		hostProc := cl.Sim.SpawnOn(host.Part, fmt.Sprintf("hostmerge.b%d@%s", bw.bucket, host.Name), func(p *sim.Proc) {
			pf.Bind(p, "merge.host", host.Name, critpath.ClassHostCPU, critpath.ClassHostCPU)
			hostBucketMerge(cl, cfg, p, host, bw.bucket, bw.queues, bw.srcs, collectors, &stripe, res)
			done()
		})
		// An ASU merger blocked on its full stream queue is being slowed
		// by the consuming host merger; apportion by its mix.
		for _, q := range bw.queues {
			pf.BlameWaitProc(q.Name()+" not-full", hostProc, critpath.ClassHostCPU)
		}
	}

	start := cl.Sim.Now()
	if err := cl.Sim.Run(); err != nil {
		return nil, nil, fmt.Errorf("dsmsort: merge pass failed: %w", err)
	}
	res.Elapsed = sim.Duration(cl.Sim.Now() - start)
	if reg := cl.Telemetry; reg != nil {
		reg.Counter("dsmsort.merge.levels").Add(int64(res.ASUMergeLevels))
		reg.Counter("dsmsort.merge.host_ops").Add(int64(res.HostOps))
		reg.Counter("dsmsort.merge.asu_ops").Add(int64(res.ASUOps))
		reg.Counter("dsmsort.merge.offload_ops").Add(int64(res.OffloadedOps))
		reg.Gauge("dsmsort.merge.elapsed_sec").Set(cl.Sim.Now(), res.Elapsed.Seconds())
		now := cl.Sim.Now()
		flushQueue := func(q *sim.Queue[container.Packet]) {
			cum, high := q.WaitStats()
			reg.Gauge("queue."+q.Name()+".wait_sec").Set(now, cum.Seconds())
			reg.Gauge("queue."+q.Name()+".high_water").Set(now, float64(high))
		}
		for _, q := range collectors {
			flushQueue(q)
		}
		for _, bw := range buckets {
			for _, q := range bw.queues {
				flushQueue(q)
			}
		}
	}
	return out, res, nil
}

// asuLocalMerge merges the runs of one (ASU, bucket) stream γ2 ways into a
// single sorted stream of packets pushed to q. Returns the number of merge
// levels used.
func asuLocalMerge(cl *cluster.Cluster, cfg Config, p *sim.Proc, asu *cluster.Node, st *container.Stream, q *sim.Queue[container.Packet], res *MergeResult) int {
	recSize := cl.Params.RecordSize
	cm := cl.Params.Costs
	touch := cl.Touch(asu)

	// Load this bucket's runs (sequential disk read). Level-0 run buffers
	// stay engine-owned (the scan is non-destructive); merged intermediate
	// runs are pooled and owned here — owned tracks which is which.
	var runs []records.Buffer
	var owned []bool
	sc := st.Scan()
	for {
		pk, ok := sc.Next(p)
		if !ok {
			break
		}
		runs = append(runs, pk.Buf)
		owned = append(owned, false)
	}
	levels := 0
	// Intermediate levels: merge batches of γ2 runs into longer runs,
	// charging CPU plus the write+read round trip intermediate data
	// makes through local storage. The merge body runs behind the offload
	// seam, overlapping the virtual Compute charge; the output draw stays
	// on the event loop (pool gauges are report-visible) and is guarded so
	// a premature release trips bufpool's debug check. One closure over a
	// mutable capture struct keeps the batch loop allocation-light.
	eng := st.Engine()
	var im struct {
		batch []records.Buffer
		out   records.Buffer
	}
	imStep := func() {
		mergeBody(im.out, im.batch)
		bufpool.Unguard(im.out.Raw())
	}
	for len(runs) > cfg.Gamma2 {
		levels++
		var next []records.Buffer
		var nextOwned []bool
		for lo := 0; lo < len(runs); lo += cfg.Gamma2 {
			hi := lo + cfg.Gamma2
			if hi > len(runs) {
				hi = len(runs)
			}
			batch := runs[lo:hi]
			nrec := 0
			for _, b := range batch {
				nrec += b.Len()
			}
			ops := float64(nrec) * (touch + log2f(len(batch))*cm.CompareOps)
			res.ASUOps += ops
			res.OffloadedOps += ops
			merged := records.NewPooled(nrec, recSize)
			bufpool.Guard(merged.Raw(), "asumerge")
			im.batch, im.out = batch, merged
			job := p.GoLabeled(asuMergeLabel, imStep)
			asu.Compute(p, ops)
			job.Wait()
			// The batch's records now live in merged; recycle the pooled
			// intermediate inputs (engine-owned level-0 runs stay put).
			for i := lo; i < hi; i++ {
				if owned[i] {
					runs[i].Release()
				}
			}
			// Intermediate run round-trips through local storage. The
			// engine takes ownership of whatever it appends and the
			// round-trip's content is never read back, so charge it on a
			// pooled placeholder of identical length — virtual time only
			// depends on the byte count — while merged stays live here.
			tmp := bufpool.Get(merged.Bytes())
			id := eng.Append(p, tmp)
			eng.Read(p, id)
			eng.Free(id)
			next = append(next, merged)
			nextOwned = append(nextOwned, true)
		}
		runs, owned = next, nextOwned
	}
	levels++
	// Final level: streaming γ2-way merge emitting packets to the host,
	// one offloaded burst per output packet. The proc pipelines: issue
	// the burst filling packet k, run packet k-1's virtual-time flush
	// (StartChain/Compute/Put) while the burst executes on a worker, then
	// join. The record copies are invisible to the simulation, so the
	// virtual-op order is identical to the old inline loop — results stay
	// byte-identical across engines; only wall clock overlaps. Scratch is
	// held across queue parks: the proc owns it exclusively until the
	// merge completes, which is exactly the pool contract.
	msc := mergePool.Get()
	frontier := scratch.Grow(msc.pos, len(runs))
	h := msc.h[:0]
	total := 0
	for i, b := range runs {
		frontier[i] = 0
		total += b.Len()
		if b.Len() > 0 {
			h = append(h, mergeItem{key: b.Key(0), src: i})
		}
	}
	h.init()
	pf := cl.Profiler
	perRec := touch + log2f(len(runs))*cm.CompareOps
	var pending records.Buffer
	pendingFill := 0
	flushPending := func() {
		if pendingFill == 0 {
			return
		}
		// Merged packets root fresh provenance chains: their inputs were
		// stored by pass 1, and chains do not persist through storage.
		id := pf.StartChain(p)
		// The packet owns its pooled buffer; the host merger releases it
		// once the records are copied into the bucket's output.
		pk := container.Packet{Buf: pending.Slice(0, pendingFill), Sorted: true, Bucket: -1, Run: -1, Owned: true, Prov: id}
		ops := float64(pendingFill) * perRec
		res.ASUOps += ops
		res.OffloadedOps += ops
		asu.Compute(p, ops)
		// Stream to the consuming host merger; the network hop is
		// charged by the host side on receipt (it knows its NIC).
		if err := q.Put(p, pk); err != nil {
			panic(err)
		}
		pf.EndPacket(p)
		pending, pendingFill = records.Buffer{}, 0
	}
	var burst struct {
		out  records.Buffer
		fill int
	}
	burstStep := func() {
		out, n := burst.out, burst.fill
		for w := 0; w < n; w++ {
			it := h[0]
			b := runs[it.src]
			copy(out.Record(w), b.Record(frontier[it.src]))
			frontier[it.src]++
			if frontier[it.src] < b.Len() {
				h[0] = mergeItem{key: b.Key(frontier[it.src]), src: it.src}
				h.fixTop()
			} else {
				h.popTop()
			}
		}
		bufpool.Unguard(out.Raw())
	}
	for rem := total; rem > 0; {
		fill := cfg.PacketRecords
		if rem < fill {
			fill = rem
		}
		outBuf := records.NewPooled(cfg.PacketRecords, recSize)
		bufpool.Guard(outBuf.Raw(), "asumerge")
		burst.out, burst.fill = outBuf, fill
		job := p.GoLabeled(asuMergeLabel, burstStep)
		flushPending()
		job.Wait()
		pending, pendingFill = outBuf, fill
		rem -= fill
	}
	flushPending()
	for i := range runs {
		if owned[i] {
			runs[i].Release()
		}
	}
	msc.pos, msc.h = frontier, h
	putMergeScratch(msc)
	return levels
}

// hostBucketMerge merges the ASU streams of one bucket γ1 = len(queues)
// ways on a host and stripes output packets across the ASU collectors.
func hostBucketMerge(cl *cluster.Cluster, cfg Config, p *sim.Proc, host *cluster.Node, bucket int, queues []*sim.Queue[container.Packet], srcs []*cluster.Node, collectors []*sim.Queue[container.Packet], stripe *int, res *MergeResult) {
	recSize := cl.Params.RecordSize
	cm := cl.Params.Costs
	touch := cl.Touch(host)
	gamma1 := len(queues)

	// Stream heads: current packet and position per input queue, in pooled
	// scratch (the packets themselves are owned by the stream, and the
	// heads slice is cleared before the scratch is returned).
	sc := mergePool.Get()
	heads := scratch.Grow(sc.heads, gamma1)
	pos := scratch.Grow(sc.pos, gamma1)
	for i := range heads {
		heads[i] = container.Packet{}
		pos[i] = 0
	}
	pf := cl.Profiler
	advance := func(i int) bool {
		pk, ok := queues[i].Get(p)
		if !ok {
			return false
		}
		// Charge the ASU->host hop for the received packet, on its chain.
		pf.BeginPacket(p, pk.Prov)
		cl.Net.Stream(p, srcs[i].NIC, host.NIC, pk.Bytes()+64)
		pf.EndPacket(p)
		heads[i] = pk
		pos[i] = 0
		// The merge bursts read this head on a worker goroutine; guard it
		// so a premature release trips bufpool's debug check. The burst
		// unguards it at the moment of exhaustion.
		bufpool.Guard(pk.Buf.Raw(), "hostmerge")
		return true
	}
	h := sc.h[:0]
	for i := range queues {
		if advance(i) {
			h = append(h, mergeItem{key: heads[i].Buf.Key(0), src: i})
		}
	}
	h.init()

	// The inner merge runs as offloaded bursts: each burst copies records
	// into outBuf until the packet is full or an input head exhausts —
	// exhaustion hands control back to the proc, whose queue Get and
	// network charge (virtual ops) must interleave the merge exactly where
	// the old inline loop put them. Completed packets are flushed one
	// burst later, overlapping their virtual Compute/Stream/Put with the
	// next burst's wall-clock work; the virtual-op order is unchanged, so
	// results stay byte-identical across engines.
	outBuf := records.NewPooled(cfg.PacketRecords, recSize)
	fill, seq := 0, 0
	var pending records.Buffer
	pendingFill := 0
	flushPending := func() {
		if pendingFill == 0 {
			return
		}
		// Output packets derive from the most recent input chain the merger
		// consumed, keeping the dependency walk rooted in the ASU mergers.
		id := pf.Derive(p)
		pf.BeginPacket(p, id)
		// The collector appends the packet to the output stream, which
		// transfers the pooled buffer's ownership to the ASU's engine.
		pk := container.Packet{Buf: pending.Slice(0, pendingFill), Sorted: true, Bucket: bucket, Run: seq, Owned: true, Prov: id}
		seq++
		ops := float64(pendingFill) * (touch + log2f(gamma1)*cm.CompareOps)
		res.HostOps += ops
		res.OffloadedOps += ops
		host.Compute(p, ops)
		dest := *stripe % len(collectors)
		*stripe++
		cl.Net.Stream(p, host.NIC, cl.ASUs[dest].NIC, pk.Bytes()+64)
		if err := collectors[dest].Put(p, pk); err != nil {
			panic(err)
		}
		pf.EndPacket(p)
		pending, pendingFill = records.Buffer{}, 0
	}
	exhausted := -1
	burst := func() {
		for fill < cfg.PacketRecords && len(h) > 0 {
			it := h[0]
			src := it.src
			copy(outBuf.Record(fill), heads[src].Buf.Record(pos[src]))
			fill++
			pos[src]++
			if pos[src] == heads[src].Len() {
				// Hand back to the proc: releasing the head and pulling
				// the next packet are simulator-visible operations.
				exhausted = src
				bufpool.Unguard(heads[src].Buf.Raw())
				break
			}
			h[0] = mergeItem{key: heads[src].Buf.Key(pos[src]), src: src}
			h.fixTop()
		}
		bufpool.Unguard(outBuf.Raw())
	}
	for len(h) > 0 {
		bufpool.Guard(outBuf.Raw(), "hostmerge")
		job := p.GoLabeled(hostMergeLabel, burst)
		flushPending()
		job.Wait()
		if src := exhausted; src >= 0 {
			exhausted = -1
			heads[src].Release() // exhausted upstream packet (it owned its buffer)
			if !advance(src) {
				h.popTop()
			} else {
				h[0] = mergeItem{key: heads[src].Buf.Key(0), src: src}
				h.fixTop()
			}
		}
		if fill == cfg.PacketRecords {
			pending, pendingFill = outBuf, fill
			outBuf = records.NewPooled(cfg.PacketRecords, recSize)
			fill = 0
		}
	}
	flushPending()
	if fill > 0 {
		pending, pendingFill = outBuf, fill
		flushPending()
	} else {
		outBuf.Release() // last staging buffer never entered a packet
	}
	sc.heads, sc.pos, sc.h = heads, pos, h
	putMergeScratch(sc)
}
