package dsmsort

import (
	"testing"

	"lmas/internal/bufpool"
	"lmas/internal/cluster"
	"lmas/internal/records"
)

// TestSortLeakFree runs a full two-pass sort under the pool's debug mode and
// verifies that after the harness retires its stores, every pooled buffer has
// come home: no double releases, no poisoned-buffer writes, no leaks.
func TestSortLeakFree(t *testing.T) {
	prev := bufpool.SetDebug(true)
	defer bufpool.SetDebug(prev)

	cl := cluster.New(testParams(1, 8))
	in := MakeInput(cl, 1<<14, records.Uniform{}, 42, 64)
	cfg := Config{Alpha: 16, Beta: 64, Gamma2: 16, PacketRecords: 64,
		Placement: Active, Seed: 42}
	res, err := Sort(cl, cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	// Sort already freed the intermediate run store; the harness owns the
	// output and the (cloned) input buffers.
	res.Output.Free()
	in.Free()
	if n := bufpool.Outstanding(); n != 0 {
		t.Errorf("outstanding pooled buffers after full sort: %d", n)
	}
	if err := bufpool.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestRunFormationAllocBudget pins the steady-state allocation count of the
// run-formation benchmark loop. The first run warms the buffer pool; the
// measured runs then reflect the recycled steady state. Guards against
// regressions that reintroduce per-packet copying or per-scan allocation.
func TestRunFormationAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	const budget = 4600 // steady state measured at ~3.9k allocs/op
	avg := testing.AllocsPerRun(3, func() {
		cl := cluster.New(testParams(1, 8))
		in := MakeInput(cl, 1<<15, records.Uniform{}, 42, 64)
		cfg := Config{Alpha: 16, Beta: 64, Gamma2: 2, PacketRecords: 64,
			Placement: Active, Seed: 42}
		rs, _, err := RunFormation(cl, cfg, in)
		if err != nil {
			t.Fatal(err)
		}
		rs.Free()
		in.Free()
	})
	if avg > budget {
		t.Errorf("run formation allocs/op = %.0f, budget %d", avg, budget)
	}
}
