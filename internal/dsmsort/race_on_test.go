//go:build race

package dsmsort

const raceEnabled = true
