package dsmsort

import (
	"fmt"

	"lmas/internal/cluster"
	"lmas/internal/sim"
)

// Result reports a complete two-pass DSM-Sort execution.
type Result struct {
	Pass1   *Pass1Result
	Merge   *MergeResult
	Output  *OutputStore
	Elapsed sim.Duration // pass 1 + merge
}

// Sort runs the full two-pass DSM-Sort (Figure 7: distribute/sort on the
// first pass, merge/collect on the second) over in on cl, validating the
// output against the input before returning. "Two passes are sufficient in
// practice" — and always here, because the local merge handles overflow runs
// with extra ASU-side levels.
func Sort(cl *cluster.Cluster, cfg Config, in *Input) (*Result, error) {
	rs, p1, err := RunFormation(cl, cfg, in)
	if err != nil {
		return nil, err
	}
	out, mr, err := MergePass(cl, cfg, rs)
	if err != nil {
		return nil, err
	}
	// The runs have been merged into out; recycle their block storage.
	rs.Free()
	if err := out.ValidateExec(in, cfg.Alpha, harnessExec(cl, validateLabel)); err != nil {
		return nil, fmt.Errorf("dsmsort: output validation failed: %w", err)
	}
	return &Result{
		Pass1:   p1,
		Merge:   mr,
		Output:  out,
		Elapsed: p1.Elapsed + mr.Elapsed,
	}, nil
}

// MeasuredWork reports the CPU ops actually charged across both passes,
// split by node class — the quantity the work equation of Section 4.3
// predicts.
func (r *Result) MeasuredWork() (hostOps, asuOps float64) {
	return r.Pass1.HostOps + r.Merge.HostOps, r.Pass1.ASUOps + r.Merge.ASUOps
}

// Speedup is the ratio of two elapsed durations (baseline over candidate),
// the metric of Figure 9.
func Speedup(baseline, candidate sim.Duration) float64 {
	if candidate <= 0 {
		return 0
	}
	return float64(baseline) / float64(candidate)
}

// cloneParams builds a cluster like p but with d ASUs and h hosts; the
// experiment harnesses use it to sweep configurations.
func cloneParams(p cluster.Params, h, d int) cluster.Params {
	p.Hosts = h
	p.ASUs = d
	return p
}
