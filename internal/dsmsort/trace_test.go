package dsmsort

import (
	"bytes"
	"encoding/json"
	"testing"

	"lmas/internal/cluster"
	"lmas/internal/records"
	"lmas/internal/sim"
	"lmas/internal/trace"
)

// tracedSort runs a small DSM-Sort with an optional trace sink attached and
// returns the elapsed virtual time and the sink.
func tracedSort(t *testing.T, attach bool) (sim.Duration, *trace.Sink) {
	t.Helper()
	cl := cluster.New(testParams(1, 4))
	var sink *trace.Sink
	if attach {
		sink = trace.New()
		cl.AttachTrace(sink)
	}
	in := MakeInput(cl, 1<<12, records.Uniform{}, 42, 64)
	cfg := Config{Alpha: 8, Beta: 64, Gamma2: 8, PacketRecords: 64,
		Placement: Active, Seed: 42}
	res, err := Sort(cl, cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	return res.Elapsed, sink
}

type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// TestTraceExportWellFormed is the tentpole acceptance test: a traced sort
// exports valid Chrome trace-event JSON with nested spans, non-negative
// durations, and per-track monotonic timestamps.
func TestTraceExportWellFormed(t *testing.T) {
	_, sink := tracedSort(t, true)
	if sink.Events() == 0 {
		t.Fatal("traced sort recorded no events")
	}

	var buf bytes.Buffer
	if err := sink.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}

	type track struct{ pid, tid int }
	depth := map[track]int{}      // open B spans per track
	lastTS := map[track]float64{} // B/E/i/C cursor per track
	lastSpanStart := map[track]float64{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		tr := track{e.PID, e.TID}
		switch e.Ph {
		case "B":
			depth[tr]++
		case "E":
			depth[tr]--
			if depth[tr] < 0 {
				t.Fatalf("span end without begin on track %v at ts=%v", tr, e.TS)
			}
		case "X":
			if e.Dur < 0 {
				t.Fatalf("negative duration %v on %q", e.Dur, e.Name)
			}
			if e.TS < lastSpanStart[tr] {
				t.Fatalf("X spans move backwards on track %v: %v after %v",
					tr, e.TS, lastSpanStart[tr])
			}
			lastSpanStart[tr] = e.TS
			continue // X spans are booked ahead; not part of the B/E cursor
		case "i", "C":
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
		if e.TS < lastTS[tr] {
			t.Fatalf("timestamps move backwards on track %v: %v after %v",
				tr, e.TS, lastTS[tr])
		}
		lastTS[tr] = e.TS
	}
	for tr, d := range depth {
		if d != 0 {
			t.Fatalf("track %v ends with %d unclosed spans", tr, d)
		}
	}
}

// TestTraceDeterministic: the same seed must export a byte-identical trace.
func TestTraceDeterministic(t *testing.T) {
	_, s1 := tracedSort(t, true)
	_, s2 := tracedSort(t, true)
	var a, b bytes.Buffer
	if err := s1.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed exported different traces")
	}
}

// TestNilSinkTimingUnchanged: tracing must be observation only — attaching a
// sink cannot change any simulated timing.
func TestNilSinkTimingUnchanged(t *testing.T) {
	untraced, _ := tracedSort(t, false)
	traced, _ := tracedSort(t, true)
	if untraced != traced {
		t.Fatalf("traced run elapsed %v, untraced %v", traced, untraced)
	}
}
