package dsmsort

import (
	"fmt"
	"sort"

	"lmas/internal/container"
	"lmas/internal/records"
)

// This file holds the chunked integrity audits the sort's harness runs
// outside virtual time: the run-store check between passes and the final
// output validation. Both walk every stored packet — digesting records,
// verifying sortedness, and checking bucket key ranges — which is the
// dominant teardown cost of a bench cell, so the per-packet work dispatches
// through the engine's offload seam (records.Executor over Sim.ExecChunks).
// Verdicts and checksums are identical for every executor: chunks own
// disjoint packet ranges, partial checksums combine commutatively, and the
// first offending packet is selected by index after the scan.

// auditGrain is the packets-per-chunk grain (~2k records at the default
// 64-record packet size).
const auditGrain = 32

// packetAudit digests every packet in pks and locates integrity violations:
// the lowest-index packet that is not sorted, and the lowest-index packet
// containing a record outside its expected bucket (per bucketOf). Either
// index is -1 when no packet offends. The per-chunk scans run through exec;
// nil or small inputs scan serially.
func packetAudit(pks []container.Packet, bucketOf func(i int) int, sp []records.Key, exec records.Executor) (sum records.Checksum, badSorted, badBucket int) {
	nc := (len(pks) + auditGrain - 1) / auditGrain
	if exec == nil || nc < 2 {
		exec = records.Serial
	}
	sums := make([]records.Checksum, nc)
	unsorted := make([]int, nc)
	misbucket := make([]int, nc)
	exec(nc, func(ci int) {
		unsorted[ci], misbucket[ci] = -1, -1
		lo, hi := ci*auditGrain, (ci+1)*auditGrain
		if hi > len(pks) {
			hi = len(pks)
		}
		for i := lo; i < hi; i++ {
			pk := pks[i]
			sums[ci].Add(pk.Buf)
			if unsorted[ci] < 0 && !pk.Buf.IsSorted() {
				unsorted[ci] = i
			}
			if misbucket[ci] < 0 {
				want := bucketOf(i)
				n := pk.Len()
				for r := 0; r < n; r++ {
					if records.BucketOf(pk.Buf.Key(r), sp) != want {
						misbucket[ci] = i
						break
					}
				}
			}
		}
	})
	badSorted, badBucket = -1, -1
	for ci := 0; ci < nc; ci++ {
		sum.Combine(sums[ci])
		if badSorted < 0 && unsorted[ci] >= 0 {
			badSorted = unsorted[ci]
		}
		if badBucket < 0 && misbucket[ci] >= 0 {
			badBucket = misbucket[ci]
		}
	}
	return sum, badSorted, badBucket
}

// runLoc names a run packet's position in the run store.
type runLoc struct{ asu, bucket int }

// auditExec digests every stored record and verifies run integrity (each run
// sorted and inside its bucket's key range) in one chunked scan through exec.
// It subsumes Checksum + sortedRunsOK; results match those serial references
// for every executor.
func (rs *RunStore) auditExec(alpha int, exec records.Executor) (records.Checksum, error) {
	sp := records.Splitters(alpha)
	var pks []container.Packet
	var locs []runLoc
	for asu, row := range rs.Streams {
		for bucket, st := range row {
			if st == nil {
				continue
			}
			st.ForEach(func(pk container.Packet) bool {
				pks = append(pks, pk)
				locs = append(locs, runLoc{asu, bucket})
				return true
			})
		}
	}
	sum, badSorted, badBucket := packetAudit(pks,
		func(i int) int { return locs[i].bucket }, sp, exec)
	// Sortedness outranks bucket placement when one packet violates both,
	// matching sortedRunsOK's per-packet check order.
	if badSorted >= 0 && (badBucket < 0 || badSorted <= badBucket) {
		l := locs[badSorted]
		return sum, fmt.Errorf("run on asu%d bucket %d not sorted", l.asu, l.bucket)
	}
	if badBucket >= 0 {
		l := locs[badBucket]
		return sum, fmt.Errorf("record in wrong bucket on asu%d: bucket %d", l.asu, l.bucket)
	}
	return sum, nil
}

// ValidateExec is OutputStore.Validate with the per-packet checks (multiset
// checksum, packet sortedness, bucket key ranges) chunked through exec. The
// cross-packet order check within each bucket stays on the calling goroutine
// (it is a cheap boundary-key walk). Verdicts are identical to Validate for
// every executor.
func (o *OutputStore) ValidateExec(in *Input, alpha int, exec records.Executor) error {
	if got := o.Records(); got != int64(in.N) {
		return fmt.Errorf("dsmsort: output has %d records, want %d", got, in.N)
	}
	var pks []container.Packet
	for _, st := range o.Streams {
		st.ForEach(func(pk container.Packet) bool {
			pks = append(pks, pk)
			return true
		})
	}
	sum, badSorted, badBucket := packetAudit(pks,
		func(i int) int { return pks[i].Bucket }, records.Splitters(alpha), exec)
	if badSorted >= 0 {
		return fmt.Errorf("dsmsort: unsorted output packet in bucket %d", pks[badSorted].Bucket)
	}
	if badBucket >= 0 {
		return fmt.Errorf("dsmsort: output record in wrong bucket %d", pks[badBucket].Bucket)
	}
	if !sum.Equal(in.Checksum) {
		return fmt.Errorf("dsmsort: output checksum mismatch: %v vs %v", sum, in.Checksum)
	}
	byBucket := map[int][]container.Packet{}
	for _, pk := range pks {
		byBucket[pk.Bucket] = append(byBucket[pk.Bucket], pk)
	}
	for bucket, bpks := range byBucket {
		sort.Slice(bpks, func(i, j int) bool { return bpks[i].Run < bpks[j].Run })
		var last records.Key
		haveLast := false
		for _, pk := range bpks {
			if pk.Len() == 0 {
				continue
			}
			if haveLast && pk.Buf.Key(0) < last {
				return fmt.Errorf("dsmsort: bucket %d packets out of order across seq", bucket)
			}
			last = pk.Buf.Key(pk.Len() - 1)
			haveLast = true
		}
	}
	return nil
}
