package experiments

import (
	"fmt"

	"lmas/internal/bte"
	"lmas/internal/cluster"
	"lmas/internal/container"
	"lmas/internal/functor"
	"lmas/internal/loadmgr"
	"lmas/internal/metrics"
	"lmas/internal/records"
	"lmas/internal/route"
	"lmas/internal/sim"
	"lmas/internal/telemetry"
)

// AdaptOptions parameterizes TAB-ADAPT: mid-run adaptation. The run starts
// with the static (imbalance-prone) subset assignment of Figure 10; a
// load-manager watch samples host utilizations and, when the input skew
// materializes and the hosts diverge, switches the distribute→sort edge to
// simple randomization while the sort is running.
type AdaptOptions struct {
	N             int
	Hosts, ASUs   int
	Alpha, Beta   int
	PacketRecords int
	Window        sim.Duration
	// Threshold/Consecutive configure the imbalance trigger.
	Threshold   float64
	Consecutive int
	SkewMean    float64
	Base        cluster.Params
	Seed        int64
	// Jobs bounds how many strategy cells execute concurrently (each is
	// an independent simulation); < 1 means one worker per CPU. Results
	// are identical for every value.
	Jobs int
}

// DefaultAdaptOptions mirrors the Figure 10 setup.
func DefaultAdaptOptions() AdaptOptions {
	f10 := DefaultFig10Options()
	return AdaptOptions{
		N:             f10.N,
		Hosts:         f10.Hosts,
		ASUs:          f10.ASUs,
		Alpha:         f10.Alpha,
		Beta:          f10.Beta,
		PacketRecords: f10.PacketRecords,
		Window:        f10.Window,
		Threshold:     0.25,
		Consecutive:   2,
		SkewMean:      f10.SkewMean,
		Base:          f10.Base,
		Seed:          f10.Seed,
	}
}

// AdaptCell is one strategy's outcome.
type AdaptCell struct {
	Strategy  string
	Elapsed   sim.Duration
	Imbalance float64
	// SwitchedAt is when adaptation fired (adaptive strategy only).
	SwitchedAt sim.Time
	// Decisions is the run's load-manager audit log: the imbalance
	// trigger (with the utilization readings that fired it) followed by
	// the routing-policy switch (with per-sorter backlogs).
	Decisions []telemetry.Decision
}

// AdaptResult holds the comparison.
type AdaptResult struct {
	Options AdaptOptions
	Cells   []AdaptCell
}

// Table renders the comparison.
func (r *AdaptResult) Table() *metrics.Table {
	t := metrics.NewTable("TAB-ADAPT: mid-run policy adaptation under skew",
		"strategy", "elapsed(s)", "imbalance", "switched at(s)")
	for _, c := range r.Cells {
		sw := "-"
		if c.SwitchedAt > 0 {
			sw = fmt.Sprintf("%.2f", c.SwitchedAt.Seconds())
		}
		t.AddRow(c.Strategy, c.Elapsed.Seconds(), c.Imbalance, sw)
	}
	return t
}

// RunAdapt measures static, adaptive-switch, and SR-from-the-start.
func RunAdapt(opt AdaptOptions) (*AdaptResult, error) {
	res := &AdaptResult{Options: opt}
	strategies := []string{"static", "adaptive", "sr"}
	res.Cells = make([]AdaptCell, len(strategies))
	err := runCells(len(strategies), opt.Jobs, func(i int) error {
		cell, err := runAdaptCell(opt, strategies[i])
		if err != nil {
			return fmt.Errorf("adapt %s: %w", strategies[i], err)
		}
		res.Cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func runAdaptCell(opt AdaptOptions, strategy string) (AdaptCell, error) {
	params := opt.Base
	params.Hosts, params.ASUs = opt.Hosts, opt.ASUs
	params.UtilWindow = opt.Window
	cl := cluster.New(params)
	reg := telemetry.NewRegistry()
	cl.AttachTelemetry(reg, opt.Window)
	recSize := params.RecordSize

	// Figure 10 input: uniform first half, skewed second half.
	buf := records.GenerateHalves(opt.N, recSize, opt.Seed,
		records.Uniform{}, records.Exponential{Mean: opt.SkewMean})
	sets := make([]*container.Set, opt.ASUs)
	cl.Sim.Spawn("load", func(p *sim.Proc) {
		for i, asu := range cl.ASUs {
			sets[i] = container.NewSet(fmt.Sprintf("adapt.in%d", i), bte.NewDisk(asu.Disk), recSize)
		}
		for pi, off := 0, 0; off < opt.N; pi, off = pi+1, off+opt.PacketRecords {
			hi := off + opt.PacketRecords
			if hi > opt.N {
				hi = opt.N
			}
			sets[pi%opt.ASUs].Add(p, container.NewPacket(buf.Slice(off, hi).ClonePooled()))
		}
	})
	if err := cl.Sim.Run(); err != nil {
		return AdaptCell{}, err
	}

	pl := functor.NewPipeline(cl)
	dist := pl.AddStage("distribute", cl.ASUs, func() functor.Kernel {
		return functor.Adapt(functor.NewDistribute(opt.Alpha), recSize, opt.PacketRecords)
	})
	srt := pl.AddStage("blocksort", cl.Hosts, func() functor.Kernel {
		return functor.NewBlockSort(opt.Beta, recSize)
	})
	var initial route.Policy = route.Static{Buckets: opt.Alpha}
	if strategy == "sr" {
		initial = route.NewSR(opt.Seed)
	}
	edge := dist.ConnectTo(srt, initial)
	done := false
	var finishedAt sim.Time
	srt.Terminal().Done = func() {
		done = true
		finishedAt = cl.Sim.Now()
	}
	for i, set := range sets {
		pl.AddSource(fmt.Sprintf("read%d", i), cl.ASUs[i], set.Scan(i, false), dist, pinPolicy(i))
	}

	var watch *loadmgr.ImbalanceWatch
	if strategy == "adaptive" {
		watch = &loadmgr.ImbalanceWatch{
			Window:      opt.Window,
			Threshold:   opt.Threshold,
			Consecutive: opt.Consecutive,
			Audit:       reg,
		}
		watch.Spawn(cl, cl.Hosts, &done, func() {
			edge.SetPolicy(route.NewSR(opt.Seed))
		})
	}

	start := cl.Sim.Now()
	pl.Start()
	if err := cl.Sim.Run(); err != nil {
		return AdaptCell{}, err
	}
	pl.FlushTelemetry()
	// Elapsed is measured at pipeline completion, excluding the watch's
	// trailing sampling window.
	elapsed := sim.Duration(finishedAt - start)
	var traces []*metrics.UtilTrace
	for _, h := range cl.Hosts {
		traces = append(traces, h.CPUTrace)
	}
	cell := AdaptCell{
		Strategy:  strategy,
		Elapsed:   elapsed,
		Imbalance: loadmgr.Imbalance(traces, int(elapsed/sim.Duration(opt.Window))),
		Decisions: reg.Decisions(),
	}
	if watch != nil && watch.Fired() {
		cell.SwitchedAt = watch.FiredAt
	}
	return cell, nil
}
