package experiments

import (
	"strings"
	"testing"

	"lmas/internal/sim"
)

func TestAdaptSwitchesMidRun(t *testing.T) {
	opt := DefaultAdaptOptions()
	opt.N = 1 << 17
	opt.Window = 50 * sim.Millisecond
	res, err := RunAdapt(opt)
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string]AdaptCell{}
	for _, c := range res.Cells {
		cells[c.Strategy] = c
	}
	static, adaptive, sr := cells["static"], cells["adaptive"], cells["sr"]
	// The watch must actually fire, and only after the skewed half
	// begins (the uniform half is balanced).
	if adaptive.SwitchedAt == 0 {
		t.Fatal("adaptive run never switched policies")
	}
	if adaptive.SwitchedAt.Seconds() < 0.25*sr.Elapsed.Seconds() {
		t.Errorf("switched at %v, suspiciously early (run ~%v)", adaptive.SwitchedAt, sr.Elapsed)
	}
	// Adaptation recovers most of the gap between static and SR.
	if adaptive.Elapsed >= static.Elapsed {
		t.Errorf("adaptive %v not faster than static %v", adaptive.Elapsed, static.Elapsed)
	}
	if adaptive.Elapsed < sr.Elapsed {
		t.Errorf("adaptive %v beat always-SR %v; it cannot (it starts static)", adaptive.Elapsed, sr.Elapsed)
	}
	gap := static.Elapsed - sr.Elapsed
	recovered := static.Elapsed - adaptive.Elapsed
	if float64(recovered) < 0.5*float64(gap) {
		t.Errorf("adaptation recovered only %v of the %v static-vs-SR gap", recovered, gap)
	}
	if s := res.Table().String(); !strings.Contains(s, "adaptive") {
		t.Errorf("table malformed:\n%s", s)
	}
}

func TestAdaptWatchNeverFiringStillTerminates(t *testing.T) {
	// An unreachable threshold: the watch must exit cleanly via the
	// completion flag instead of deadlocking the run, and the adaptive
	// run degenerates to static.
	opt := DefaultAdaptOptions()
	opt.N = 1 << 16
	opt.Threshold = 1.1 // spread can never exceed 1.0
	res, err := RunAdapt(opt)
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string]AdaptCell{}
	for _, c := range res.Cells {
		cells[c.Strategy] = c
	}
	if cells["adaptive"].SwitchedAt != 0 {
		t.Errorf("watch fired at %v despite unreachable threshold", cells["adaptive"].SwitchedAt)
	}
	if cells["adaptive"].Elapsed != cells["static"].Elapsed {
		t.Errorf("non-firing adaptive (%v) must equal static (%v)",
			cells["adaptive"].Elapsed, cells["static"].Elapsed)
	}
}
