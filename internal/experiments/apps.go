package experiments

import (
	"fmt"

	"lmas/internal/cluster"
	"lmas/internal/dsmsort"
	"lmas/internal/metrics"
	"lmas/internal/rtree"
	"lmas/internal/sim"
	"lmas/internal/telemetry"
	"lmas/internal/terraflow"
)

// TerraOptions parameterizes TAB-TERRA: the TerraFlow watershed phase
// breakdown with and without active storage. Steps 1 and 2 parallelize
// onto ASUs; step 3 (time-forward processing) does not — "data parallelism
// in ASUs may improve the first two steps of the watershed computation
// considerably while offering limited improvement of the final step."
type TerraOptions struct {
	W, H   int
	Basins int
	ASUs   int
	Base   cluster.Params
	Seed   int64
}

// DefaultTerraOptions uses a terrain large enough for phase times to
// dominate startup transients.
func DefaultTerraOptions() TerraOptions {
	return TerraOptions{
		W: 256, H: 256,
		Basins: 6,
		ASUs:   8,
		Base:   cluster.DefaultParams(),
		Seed:   42,
	}
}

// TerraRun is one placement's phase breakdown.
type TerraRun struct {
	Placement   string
	Restructure sim.Duration
	Sort        sim.Duration
	Watershed   sim.Duration
	FlowAccum   sim.Duration
	Total       sim.Duration
	Watersheds  int
}

// TerraResult holds both placements.
type TerraResult struct {
	Options      TerraOptions
	Active       TerraRun
	Conventional TerraRun
}

// Table renders the phase breakdown.
func (r *TerraResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("TAB-TERRA: watershed phases, %dx%d grid, %d ASUs",
			r.Options.W, r.Options.H, r.Options.ASUs),
		"placement", "restructure(s)", "sort(s)", "watershed(s)", "flow(s)", "total(s)")
	for _, run := range []TerraRun{r.Conventional, r.Active} {
		t.AddRow(run.Placement,
			run.Restructure.Seconds(), run.Sort.Seconds(),
			run.Watershed.Seconds(), run.FlowAccum.Seconds(), run.Total.Seconds())
	}
	return t
}

// RunTerra measures both placements on the same synthetic terrain; both
// runs are internally validated against the reference watershed labeling.
func RunTerra(opt TerraOptions) (*TerraResult, error) {
	res := &TerraResult{Options: opt}
	runOne := func(placement dsmsort.Placement) (TerraRun, error) {
		params := opt.Base
		params.Hosts = 1
		params.ASUs = opt.ASUs
		params.RecordSize = terraflow.CellRecordSize
		cl := cluster.New(params)
		g, _ := terraflow.SyntheticBasins(opt.W, opt.H, opt.Basins, 10, opt.Seed)
		topt := terraflow.DefaultOptions()
		topt.Placement = placement
		topt.Flow = true
		r, err := terraflow.Run(cl, g, topt)
		if err != nil {
			return TerraRun{}, fmt.Errorf("terra %v: %w", placement, err)
		}
		return TerraRun{
			Placement:   placement.String(),
			Restructure: r.Restructure,
			Sort:        r.Sort,
			Watershed:   r.Watershed,
			FlowAccum:   r.FlowAccum,
			Total:       r.Total(),
			Watersheds:  r.Watersheds,
		}, nil
	}
	var err error
	if res.Active, err = runOne(dsmsort.Active); err != nil {
		return nil, err
	}
	if res.Conventional, err = runOne(dsmsort.Conventional); err != nil {
		return nil, err
	}
	return res, nil
}

// RTreeOptions parameterizes TAB-RTREE: partition vs stripe organizations
// (Figure 5) measured on single-query latency and concurrent throughput.
type RTreeOptions struct {
	Entries int
	Fanout  int
	ASUs    int
	// WideQuery side length (latency probe: a large scan).
	WideSide float64
	// SmallSide is the concurrent-query side length (server workload).
	SmallSide float64
	NumSmall  int
	Clients   int
	// HotFrac is the fraction of server queries landing in one hot
	// region (for the replication column).
	HotFrac float64
	// Replicas is the replication degree for the hybrid organization.
	Replicas int
	Base     cluster.Params
	Seed     int64
}

// DefaultRTreeOptions mirrors the Section 4.2 discussion.
func DefaultRTreeOptions() RTreeOptions {
	return RTreeOptions{
		Entries:   1 << 14,
		Fanout:    16,
		ASUs:      8,
		WideSide:  0.8,
		SmallSide: 0.02,
		NumSmall:  128,
		Clients:   8,
		HotFrac:   0.9,
		Replicas:  2,
		Base:      cluster.DefaultParams(),
		Seed:      42,
	}
}

// RTreeRun is one organization's measurements. P50/P99 are per-query
// latency quantiles of the uniform server workload, from the cluster's
// deterministic latency histogram.
type RTreeRun struct {
	Mode        string
	WideLatency sim.Duration
	QPS         float64
	HotQPS      float64
	P50, P99    sim.Duration
}

// RTreeResult holds all three organizations.
type RTreeResult struct {
	Options    RTreeOptions
	Partition  RTreeRun
	Stripe     RTreeRun
	Replicated RTreeRun
}

// Table renders the comparison.
func (r *RTreeResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("TAB-RTREE: distributed R-tree organizations, %d entries, %d ASUs",
			r.Options.Entries, r.Options.ASUs),
		"organization", "wide-scan latency(ms)", "uniform qps", "hot-spot qps", "p50(ms)", "p99(ms)")
	for _, run := range []RTreeRun{r.Partition, r.Stripe, r.Replicated} {
		t.AddRow(run.Mode, run.WideLatency.Seconds()*1e3, run.QPS, run.HotQPS,
			run.P50.Seconds()*1e3, run.P99.Seconds()*1e3)
	}
	return t
}

// RunRTree measures all three organizations on a wide scan (latency), a
// uniform server workload, and a hot-spot server workload; every query's
// results are validated against brute force.
func RunRTree(opt RTreeOptions) (*RTreeResult, error) {
	res := &RTreeResult{Options: opt}
	entries := rtree.GenerateEntries(opt.Entries, 0.005, opt.Seed)
	wide := rtree.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.1 + opt.WideSide, MaxY: 0.1 + opt.WideSide}
	small := rtree.GenerateQueries(opt.NumSmall, opt.SmallSide, opt.Seed+1)
	hotRegion := rtree.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.45, MaxY: 0.45}
	hot := rtree.GenerateHotQueries(opt.NumSmall, opt.SmallSide, hotRegion, opt.HotFrac, opt.Seed+2)
	runOne := func(mk func() *rtree.Distributed, name string) (RTreeRun, error) {
		_, lat, err := mk().QueryOnce(wide)
		if err != nil {
			return RTreeRun{}, fmt.Errorf("rtree %s latency: %w", name, err)
		}
		dtUniform := mk()
		_, qps, err := dtUniform.Throughput(small, opt.Clients)
		if err != nil {
			return RTreeRun{}, fmt.Errorf("rtree %s throughput: %w", name, err)
		}
		qlat := dtUniform.Cluster().Telemetry.Latency("rtree.query.latency")
		_, hqps, err := mk().Throughput(hot, opt.Clients)
		if err != nil {
			return RTreeRun{}, fmt.Errorf("rtree %s hot throughput: %w", name, err)
		}
		return RTreeRun{
			Mode: name, WideLatency: lat, QPS: qps, HotQPS: hqps,
			P50: sim.Duration(qlat.Quantile(0.50)),
			P99: sim.Duration(qlat.Quantile(0.99)),
		}, nil
	}
	newCl := func() *cluster.Cluster {
		params := opt.Base
		params.Hosts = 1
		params.ASUs = opt.ASUs
		cl := cluster.New(params)
		cl.AttachTelemetry(telemetry.NewRegistry(), 100*sim.Millisecond)
		return cl
	}
	var err error
	res.Partition, err = runOne(func() *rtree.Distributed {
		return rtree.NewDistributed(newCl(), entries, opt.Fanout, rtree.Partition)
	}, "partition")
	if err != nil {
		return nil, err
	}
	res.Stripe, err = runOne(func() *rtree.Distributed {
		return rtree.NewDistributed(newCl(), entries, opt.Fanout, rtree.Stripe)
	}, "stripe")
	if err != nil {
		return nil, err
	}
	res.Replicated, err = runOne(func() *rtree.Distributed {
		return rtree.NewReplicated(newCl(), entries, opt.Fanout, opt.Replicas)
	}, fmt.Sprintf("replicated(x%d)", opt.Replicas))
	if err != nil {
		return nil, err
	}
	return res, nil
}
