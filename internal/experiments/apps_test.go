package experiments

import (
	"strings"
	"testing"
)

func TestTerraTable(t *testing.T) {
	opt := DefaultTerraOptions()
	opt.W, opt.H = 96, 96
	res, err := RunTerra(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Steps 1-2 must benefit from ASUs; step 3 must not (it runs on the
	// host either way, give or take I/O noise).
	if res.Active.Restructure >= res.Conventional.Restructure {
		t.Errorf("active restructure %v >= conventional %v",
			res.Active.Restructure, res.Conventional.Restructure)
	}
	if res.Active.Sort >= res.Conventional.Sort {
		t.Errorf("active sort %v >= conventional %v", res.Active.Sort, res.Conventional.Sort)
	}
	ratio := res.Active.Watershed.Seconds() / res.Conventional.Watershed.Seconds()
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("watershed step moved with placement: ratio %.2f, want ~1", ratio)
	}
	if res.Active.Total >= res.Conventional.Total {
		t.Errorf("active total %v >= conventional %v", res.Active.Total, res.Conventional.Total)
	}
	if res.Active.Watersheds != res.Conventional.Watersheds {
		t.Errorf("watershed counts differ: %d vs %d", res.Active.Watersheds, res.Conventional.Watersheds)
	}
	if s := res.Table().String(); !strings.Contains(s, "restructure(s)") {
		t.Errorf("table malformed:\n%s", s)
	}
}

func TestRTreeTable(t *testing.T) {
	opt := DefaultRTreeOptions()
	opt.Entries = 1 << 13
	opt.NumSmall = 64
	res, err := RunRTree(opt)
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 5 tradeoff: striping bounds latency, partitioning wins
	// concurrent throughput.
	if res.Stripe.WideLatency >= res.Partition.WideLatency {
		t.Errorf("stripe wide-scan latency %v >= partition %v",
			res.Stripe.WideLatency, res.Partition.WideLatency)
	}
	if res.Partition.QPS <= res.Stripe.QPS {
		t.Errorf("partition qps %.0f <= stripe qps %.0f", res.Partition.QPS, res.Stripe.QPS)
	}
	// The hybrid: replication rescues hot-spot throughput where
	// partitioning funnels everything to one ASU.
	if res.Replicated.HotQPS <= 1.2*res.Partition.HotQPS {
		t.Errorf("replicated hot qps %.0f vs partition %.0f; replication should win on hot spots",
			res.Replicated.HotQPS, res.Partition.HotQPS)
	}
	if s := res.Table().String(); !strings.Contains(s, "partition") ||
		!strings.Contains(s, "stripe") || !strings.Contains(s, "replicated") {
		t.Errorf("table malformed:\n%s", s)
	}
}
