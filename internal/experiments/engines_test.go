package experiments

import (
	"encoding/json"
	"testing"

	"lmas/internal/dsmsort"
	"lmas/internal/sim"
)

// engineVariants are the parallel-engine configurations the differential
// harness compares against the serial reference: the worker counts the
// byte-identity guarantee is pinned at, plus partition-group mode.
var engineVariants = []struct {
	name    string
	workers int
	groups  int
}{
	{"parallel-1", 1, 0},
	{"parallel-2", 2, 0},
	{"parallel-8", 8, 0},
	{"parallel-g2", 0, 2},
	{"parallel-g4", 0, 4},
}

// mustJSON marshals an experiment result for byte comparison. Callers zero
// the result's Options field first: it embeds cluster.Params, whose Engine
// fields legitimately differ between variants — everything else must not.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFig10ByteIdenticalAcrossEngines: the full Figure-10 comparison —
// traced runs, utilization series, imbalance metrics, complete RunReports —
// must serialize to identical bytes on the serial engine and the parallel
// engine at 1, 2, and 8 workers.
func TestFig10ByteIdenticalAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := DefaultFig10Options()
	opt.N = 1 << 16
	opt.Window = 25 * sim.Millisecond
	run := func(engine string, workers, groups int) string {
		o := opt
		o.Base.Engine, o.Base.EngineWorkers, o.Base.EngineGroups = engine, workers, groups
		res, err := RunFig10(o)
		if err != nil {
			t.Fatal(err)
		}
		res.Options = Fig10Options{}
		return mustJSON(t, res)
	}
	ref := run("serial", 0, 0)
	for _, v := range engineVariants {
		if got := run("parallel", v.workers, v.groups); got != ref {
			t.Fatalf("%s: Fig10 result bytes diverge from serial", v.name)
		}
	}
}

// TestIsolationByteIdenticalAcrossEngines covers the isolation sweep: the
// foreground-latency percentiles and co-scheduled sort timings must not
// move across engines or worker counts.
func TestIsolationByteIdenticalAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := DefaultIsolationOptions()
	opt.N = 1 << 15
	run := func(engine string, workers, groups int) string {
		o := opt
		o.Base.Engine, o.Base.EngineWorkers, o.Base.EngineGroups = engine, workers, groups
		res, err := RunIsolation(o)
		if err != nil {
			t.Fatal(err)
		}
		res.Options = IsolationOptions{}
		return mustJSON(t, res)
	}
	ref := run("serial", 0, 0)
	for _, v := range engineVariants {
		if got := run("parallel", v.workers, v.groups); got != ref {
			t.Fatalf("%s: isolation result bytes diverge from serial", v.name)
		}
	}
}

// TestAdaptByteIdenticalAcrossEngines covers mid-run adaptation: trigger
// instants and the load-manager decision log are schedule-sensitive, so
// byte identity here exercises the tie-break key hardest.
func TestAdaptByteIdenticalAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := DefaultAdaptOptions()
	opt.N = 1 << 14
	run := func(engine string, workers, groups int) string {
		o := opt
		o.Base.Engine, o.Base.EngineWorkers, o.Base.EngineGroups = engine, workers, groups
		res, err := RunAdapt(o)
		if err != nil {
			t.Fatal(err)
		}
		res.Options = AdaptOptions{}
		return mustJSON(t, res)
	}
	ref := run("serial", 0, 0)
	for _, v := range engineVariants {
		if got := run("parallel", v.workers, v.groups); got != ref {
			t.Fatalf("%s: adaptation result bytes diverge from serial", v.name)
		}
	}
}

// TestBenchTrajectoryByteIdenticalAcrossEngines is the CI gate from the
// issue: the quick DSM-Sort bench matrix must produce byte-identical
// trajectories for every engine and worker count — the same document the
// bench regression gate diffs against bench/baseline.json.
func TestBenchTrajectoryByteIdenticalAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(engine string, workers, groups int) string {
		tr, err := RunBenchWith(BenchOptions{
			Quick: true, Seed: 42,
			Engine: engine, EngineWorkers: workers, EngineGroups: groups,
		})
		if err != nil {
			t.Fatal(err)
		}
		return mustJSON(t, tr)
	}
	ref := run("serial", 0, 0)
	for _, v := range engineVariants {
		if got := run("parallel", v.workers, v.groups); got != ref {
			t.Fatalf("%s: bench trajectory bytes diverge from serial", v.name)
		}
	}
}

// TestMergeHeavyByteIdenticalAcrossEngines extends the cross-engine property
// test to merge-heavy shapes: a tiny run length (beta) against a small merge
// order (gamma2) leaves each (ASU, bucket) pair with runs ≫ gamma2, forcing
// multiple ASU-local merge levels — the staged/pipelined offload path this
// PR adds — plus a deep host merge. Reports, including the merge offload-ops
// counters, must be byte-identical across engines, worker counts, and
// partition groups, for several seeds and distributions.
func TestMergeHeavyByteIdenticalAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	shapes := []struct {
		dist string
		seed int64
	}{
		{"uniform", 1},
		{"halves", 2},
		{"exp", 3},
	}
	for _, sh := range shapes {
		spec := SortRunSpec{
			Name:          "merge-heavy-" + sh.dist,
			N:             1 << 14,
			Hosts:         1,
			ASUs:          2,
			C:             8,
			Alpha:         4,
			Beta:          128, // 128 runs: 16 per (ASU, bucket)
			Gamma2:        2,   // forces 4 local merge levels
			PacketRecords: 32,
			Placement:     dsmsort.Active,
			Policy:        "static",
			Dist:          sh.dist,
			Seed:          sh.seed,
		}
		run := func(engine string, workers, groups int) string {
			s := spec
			s.Engine, s.EngineWorkers, s.EngineGroups = engine, workers, groups
			rep, res, err := RunSortReport(s)
			if err != nil {
				t.Fatal(err)
			}
			if res.Merge.OffloadedOps <= 0 {
				t.Fatalf("%s: merge pass reported no offloaded ops", s.Name)
			}
			if res.Merge.ASUMergeLevels < 2 {
				t.Fatalf("%s: only %d local merge levels — shape is not merge-heavy",
					s.Name, res.Merge.ASUMergeLevels)
			}
			return mustJSON(t, rep) + mustJSON(t, res)
		}
		ref := run("serial", 0, 0)
		for _, v := range engineVariants {
			if got := run("parallel", v.workers, v.groups); got != ref {
				t.Fatalf("%s %s: merge-heavy sort bytes diverge from serial", sh.dist, v.name)
			}
		}
	}
}
