package experiments

import (
	"encoding/json"
	"testing"

	"lmas/internal/sim"
)

// engineVariants are the parallel-engine configurations the differential
// harness compares against the serial reference: the worker counts the
// byte-identity guarantee is pinned at.
var engineVariants = []struct {
	name    string
	workers int
}{
	{"parallel-1", 1},
	{"parallel-2", 2},
	{"parallel-8", 8},
}

// mustJSON marshals an experiment result for byte comparison. Callers zero
// the result's Options field first: it embeds cluster.Params, whose Engine
// fields legitimately differ between variants — everything else must not.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFig10ByteIdenticalAcrossEngines: the full Figure-10 comparison —
// traced runs, utilization series, imbalance metrics, complete RunReports —
// must serialize to identical bytes on the serial engine and the parallel
// engine at 1, 2, and 8 workers.
func TestFig10ByteIdenticalAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := DefaultFig10Options()
	opt.N = 1 << 16
	opt.Window = 25 * sim.Millisecond
	run := func(engine string, workers int) string {
		o := opt
		o.Base.Engine, o.Base.EngineWorkers = engine, workers
		res, err := RunFig10(o)
		if err != nil {
			t.Fatal(err)
		}
		res.Options = Fig10Options{}
		return mustJSON(t, res)
	}
	ref := run("serial", 0)
	for _, v := range engineVariants {
		if got := run("parallel", v.workers); got != ref {
			t.Fatalf("%s: Fig10 result bytes diverge from serial", v.name)
		}
	}
}

// TestIsolationByteIdenticalAcrossEngines covers the isolation sweep: the
// foreground-latency percentiles and co-scheduled sort timings must not
// move across engines or worker counts.
func TestIsolationByteIdenticalAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := DefaultIsolationOptions()
	opt.N = 1 << 15
	run := func(engine string, workers int) string {
		o := opt
		o.Base.Engine, o.Base.EngineWorkers = engine, workers
		res, err := RunIsolation(o)
		if err != nil {
			t.Fatal(err)
		}
		res.Options = IsolationOptions{}
		return mustJSON(t, res)
	}
	ref := run("serial", 0)
	for _, v := range engineVariants {
		if got := run("parallel", v.workers); got != ref {
			t.Fatalf("%s: isolation result bytes diverge from serial", v.name)
		}
	}
}

// TestAdaptByteIdenticalAcrossEngines covers mid-run adaptation: trigger
// instants and the load-manager decision log are schedule-sensitive, so
// byte identity here exercises the tie-break key hardest.
func TestAdaptByteIdenticalAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := DefaultAdaptOptions()
	opt.N = 1 << 14
	run := func(engine string, workers int) string {
		o := opt
		o.Base.Engine, o.Base.EngineWorkers = engine, workers
		res, err := RunAdapt(o)
		if err != nil {
			t.Fatal(err)
		}
		res.Options = AdaptOptions{}
		return mustJSON(t, res)
	}
	ref := run("serial", 0)
	for _, v := range engineVariants {
		if got := run("parallel", v.workers); got != ref {
			t.Fatalf("%s: adaptation result bytes diverge from serial", v.name)
		}
	}
}

// TestBenchTrajectoryByteIdenticalAcrossEngines is the CI gate from the
// issue: the quick DSM-Sort bench matrix must produce byte-identical
// trajectories for every engine and worker count — the same document the
// bench regression gate diffs against bench/baseline.json.
func TestBenchTrajectoryByteIdenticalAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(engine string, workers int) string {
		tr, err := RunBenchEngine(true, 42, 0, engine, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		return mustJSON(t, tr)
	}
	ref := run("serial", 0)
	for _, v := range engineVariants {
		if got := run("parallel", v.workers); got != ref {
			t.Fatalf("%s: bench trajectory bytes diverge from serial", v.name)
		}
	}
}
