package experiments

import (
	"strings"
	"testing"

	"lmas/internal/sim"
)

// fastFig9Options shrinks the grid for test speed while keeping the shape.
func fastFig9Options() Fig9Options {
	opt := DefaultFig9Options()
	opt.N = 1 << 17
	opt.ASUs = []int{2, 8, 16, 64}
	opt.Alphas = []int{1, 16, 256}
	return opt
}

func TestFig9Shape(t *testing.T) {
	res, err := RunFig9(fastFig9Options())
	if err != nil {
		t.Fatal(err)
	}
	get := func(d, a int) float64 {
		c, ok := res.Cell(d, a, false)
		if !ok {
			t.Fatalf("missing cell d=%d a=%d", d, a)
		}
		return c.Speedup
	}
	// Small D: slowdown, worse for larger alpha.
	if sp := get(2, 256); sp >= 0.7 {
		t.Errorf("d=2 a=256 speedup %.3f, want < 0.7 (strong slowdown)", sp)
	}
	if get(2, 256) >= get(2, 1) {
		t.Errorf("d=2: slowdown must worsen with alpha: a=256 %.3f vs a=1 %.3f", get(2, 256), get(2, 1))
	}
	// Large D: speedup, better for larger alpha. (At the full default
	// input size this point reaches ~1.34; the reduced test input pays
	// proportionally more end-of-stream overhead.)
	if sp := get(64, 256); sp <= 1.2 {
		t.Errorf("d=64 a=256 speedup %.3f, want > 1.2", sp)
	}
	if !(get(64, 256) > get(64, 16) && get(64, 16) > get(64, 1)) {
		t.Errorf("d=64: speedup should increase with alpha: %.3f %.3f %.3f",
			get(64, 1), get(64, 16), get(64, 256))
	}
	// Alpha=1 plateaus near 1.0 once the host saturates.
	if sp := get(64, 1); sp < 0.85 || sp > 1.2 {
		t.Errorf("d=64 a=1 speedup %.3f, want ~1.0", sp)
	}
	// Crossover: a=256 goes from losing to winning as ASUs are added.
	if !(get(2, 256) < 1 && get(64, 256) > 1) {
		t.Errorf("no crossover for a=256: d=2 %.3f, d=64 %.3f", get(2, 256), get(64, 256))
	}
	// Host saturation: beyond 16 ASUs, adding ASUs helps a=256 little.
	gain := get(64, 256) / get(16, 256)
	if gain > 1.5 {
		t.Errorf("d=16->64 a=256 still gained %.2fx; host should saturate around 16", gain)
	}
	// Adaptive tracks the best static series within tolerance.
	for _, d := range []int{2, 8, 16, 64} {
		ad, ok := res.Cell(d, 0, true)
		if !ok {
			t.Fatalf("missing adaptive cell d=%d", d)
		}
		best := 0.0
		for _, a := range []int{1, 16, 256} {
			if sp := get(d, a); sp > best {
				best = sp
			}
		}
		if ad.Speedup < 0.9*best {
			t.Errorf("d=%d: adaptive %.3f < 90%% of best static %.3f", d, ad.Speedup, best)
		}
	}
	// Table renders all rows.
	tab := res.Table().String()
	if !strings.Contains(tab, "a=256") || !strings.Contains(tab, "adaptive") {
		t.Errorf("table missing series:\n%s", tab)
	}
}

func TestFig10Shape(t *testing.T) {
	opt := DefaultFig10Options()
	opt.N = 1 << 16
	opt.Window = 25 * sim.Millisecond
	res, err := RunFig10(opt)
	if err != nil {
		t.Fatal(err)
	}
	// The load-managed run must finish no later and be clearly more
	// balanced ("The load-managed run terminates earlier; it shows
	// nearly identical utilizations on the two hosts").
	if res.Managed.Elapsed > res.Static.Elapsed {
		t.Errorf("managed %.3fs slower than static %.3fs",
			res.Managed.Elapsed.Seconds(), res.Static.Elapsed.Seconds())
	}
	if res.Managed.Imbalance >= res.Static.Imbalance {
		t.Errorf("managed imbalance %.3f >= static %.3f",
			res.Managed.Imbalance, res.Static.Imbalance)
	}
	if res.Static.Imbalance < 0.1 {
		t.Errorf("static imbalance %.3f too small; skew did not bite", res.Static.Imbalance)
	}
	if res.Managed.Imbalance > 0.25 {
		t.Errorf("managed imbalance %.3f; SR should nearly equalize hosts", res.Managed.Imbalance)
	}
	if len(res.Static.HostUtil) != 2 || len(res.Managed.HostUtil) != 2 {
		t.Fatal("missing host traces")
	}
	// Tables render.
	if s := res.Table().String(); !strings.Contains(s, "static.host1") {
		t.Errorf("series table malformed:\n%s", s)
	}
	if s := res.Summary().String(); !strings.Contains(s, "load-managed") {
		t.Errorf("summary malformed:\n%s", s)
	}
}
