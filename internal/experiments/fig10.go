package experiments

import (
	"fmt"

	"lmas/internal/cluster"
	"lmas/internal/critpath"
	"lmas/internal/dsmsort"
	"lmas/internal/loadmgr"
	"lmas/internal/metrics"
	"lmas/internal/recorder"
	"lmas/internal/records"
	"lmas/internal/route"
	"lmas/internal/sim"
	"lmas/internal/telemetry"
)

// Fig10Options parameterizes the Figure 10 reproduction: "Utilization of
// host CPU for two DSM-Sort runs on two hosts and 16 ASUs, with and without
// load management. The first half of the input data is uniformly
// distributed, while the second half is skewed, resulting in a potential
// for unbalanced load across the hosts in the distribute phase."
type Fig10Options struct {
	N             int
	Hosts         int
	ASUs          int
	Alpha         int
	Beta          int
	PacketRecords int
	// Window is the utilization sampling window.
	Window sim.Duration
	// SkewMean sets the exponential mean (fraction of key space) for
	// the skewed second half.
	SkewMean float64
	Base     cluster.Params
	Seed     int64
	// Jobs bounds how many runs execute concurrently (each is an
	// independent simulation); < 1 means one worker per CPU. Results are
	// identical for every value.
	Jobs int
	// Critpath attaches the critical-path profiler to both runs and adds
	// latency-attribution sections (with Pass1Model predictions) to their
	// reports.
	Critpath bool
	// Record streams both runs into a recorder sink; Experiment and
	// SampleEvery follow SortRunSpec's semantics.
	Record      recorder.Sink
	Experiment  string
	SampleEvery sim.Duration
}

// DefaultFig10Options mirrors the paper's setup: two hosts, 16 ASUs. The
// host processor rating is scaled down so the traced run spans seconds of
// virtual time (the paper's Figure 10 x-axis runs to ~12 s), giving the
// utilization curves enough windows to show the divergence; the rating is a
// pure time scale and does not change who bottlenecks, which is what the
// figure demonstrates.
func DefaultFig10Options() Fig10Options {
	base := cluster.DefaultParams()
	base.HostOpsPerSec = 1e6
	base.C = 4
	return Fig10Options{
		N:             1 << 18,
		Hosts:         2,
		ASUs:          16,
		Alpha:         16,
		Beta:          64,
		PacketRecords: 128,
		Window:        100 * sim.Millisecond,
		SkewMean:      0.05,
		Base:          base,
		Seed:          42,
	}
}

// Fig10Run is one traced execution.
type Fig10Run struct {
	Policy string
	// Elapsed is the run's total virtual time.
	Elapsed sim.Duration
	// HostUtil holds one utilization trace per host.
	HostUtil []*metrics.UtilTrace
	// Imbalance is the mean utilization spread across hosts over the
	// run (0 = perfectly balanced).
	Imbalance float64
	// Report is the run's full telemetry snapshot (utilization series,
	// stage instruments, routing counters).
	Report *telemetry.RunReport
}

// Fig10Result holds both runs.
type Fig10Result struct {
	Options Fig10Options
	Static  Fig10Run // no load control: subsets statically assigned
	Managed Fig10Run // load-managed: SR spreads every subset across hosts
}

// Table renders utilization-over-time series for both runs side by side.
func (r *Fig10Result) Table() *metrics.Table {
	t := metrics.NewTable(
		"Figure 10: host CPU utilization under skew (static vs load-managed)",
		"time(s)", "static.host1", "static.host2", "managed.host1", "managed.host2")
	windows := r.Static.HostUtil[0].Len()
	for _, tr := range append(r.Static.HostUtil, r.Managed.HostUtil...) {
		if tr.Len() > windows {
			windows = tr.Len()
		}
	}
	for w := 0; w < windows; w++ {
		ts := (sim.Duration(w+1) * r.Options.Window).Seconds()
		t.AddRow(ts,
			r.Static.HostUtil[0].At(w), r.Static.HostUtil[1].At(w),
			r.Managed.HostUtil[0].At(w), r.Managed.HostUtil[1].At(w))
	}
	return t
}

// Summary renders the headline comparison.
func (r *Fig10Result) Summary() *metrics.Table {
	t := metrics.NewTable("Figure 10 summary", "run", "elapsed(s)", "imbalance")
	t.AddRow("static (no load control)", r.Static.Elapsed.Seconds(), r.Static.Imbalance)
	t.AddRow("load-managed (SR)", r.Managed.Elapsed.Seconds(), r.Managed.Imbalance)
	return t
}

// RunFig10 executes the two traced runs. The baseline "assigns half of the
// α distribute subsets to one host, and the other half to the second host"
// (route.Static); the load-managed run spreads "each of the α subsets...
// across both hosts" with simple randomization (route.SR).
func RunFig10(opt Fig10Options) (*Fig10Result, error) {
	res := &Fig10Result{Options: opt}
	runOne := func(policy route.Policy, name string) (Fig10Run, error) {
		params := opt.Base
		params.Hosts = opt.Hosts
		params.ASUs = opt.ASUs
		params.UtilWindow = opt.Window
		cl := cluster.New(params)
		cl.AttachTelemetry(telemetry.NewRegistry(), opt.Window)
		if opt.Critpath {
			cl.AttachProfiler(critpath.New())
		}
		workload := map[string]any{
			"program": "dsmsort-pass1",
			"n":       opt.N,
			"alpha":   opt.Alpha,
			"beta":    opt.Beta,
			"packet":  opt.PacketRecords,
			"policy":  name,
			"dist":    "halves",
		}
		var rec recorder.Recorder
		if opt.Record != nil {
			rec = opt.Record.NewRun()
			cfg := cl.Config()
			rec.Begin(&recorder.Header{
				Experiment: opt.Experiment,
				Name:       "fig10-" + name,
				ConfigHash: recorder.ConfigHash(cfg, workload, opt.Seed),
				Seed:       opt.Seed,
				Config:     cfg,
				Workload:   workload,
			})
			cl.AttachRecorder(rec, opt.SampleEvery)
		}
		in := dsmsort.MakeInputHalves(cl, opt.N, records.Uniform{},
			records.Exponential{Mean: opt.SkewMean}, opt.Seed, opt.PacketRecords)
		cfg := dsmsort.Config{
			Alpha:         opt.Alpha,
			Beta:          opt.Beta,
			Gamma2:        2,
			PacketRecords: opt.PacketRecords,
			Placement:     dsmsort.Active,
			SortPolicy:    policy,
			Seed:          opt.Seed,
		}
		_, r, err := dsmsort.RunFormation(cl, cfg, in)
		if err != nil {
			if rec != nil {
				cl.FinishSampling()
				rec.Finish(nil)
			}
			return Fig10Run{}, fmt.Errorf("fig10 %s: %w", name, err)
		}
		cl.FinishSampling()
		run := Fig10Run{Policy: name, Elapsed: r.Elapsed}
		for _, h := range cl.Hosts {
			run.HostUtil = append(run.HostUtil, h.CPUTrace)
		}
		n := int(r.Elapsed / sim.Duration(opt.Window))
		run.Imbalance = loadmgr.Imbalance(run.HostUtil, n)
		run.Report = cl.BuildReport("fig10-"+name, opt.Seed, r.Elapsed)
		run.Report.Workload = workload
		if run.Report.Critpath != nil {
			if rates, ok := PredictRates(params, dsmsort.Active, opt.Alpha, opt.Beta); ok {
				cls, rate := rates.Bottleneck()
				run.Report.Critpath.SetPrediction(cls, rate)
			}
		}
		if rec != nil {
			rec.Finish(run.Report)
		}
		return run, nil
	}
	// The two runs are independent simulations; sweep them on the worker
	// pool. Policies are built per cell inside the pool so no routing
	// state is shared across goroutines.
	runs := make([]Fig10Run, 2)
	err := runCells(len(runs), opt.Jobs, func(i int) error {
		var e error
		if i == 0 {
			runs[0], e = runOne(route.Static{Buckets: opt.Alpha}, "static")
		} else {
			runs[1], e = runOne(route.NewSR(opt.Seed), "sr")
		}
		return e
	})
	if err != nil {
		return nil, err
	}
	res.Static, res.Managed = runs[0], runs[1]
	return res, nil
}
