// Package experiments contains the harnesses that regenerate every figure
// and table of the paper's evaluation (Section 6), plus the ablations
// catalogued in DESIGN.md. Each harness builds emulated clusters, runs
// DSM-Sort (or another workload) on them, and returns both structured
// results and a formatted table matching the paper's presentation.
package experiments

import (
	"fmt"

	"lmas/internal/cluster"
	"lmas/internal/dsmsort"
	"lmas/internal/loadmgr"
	"lmas/internal/metrics"
	"lmas/internal/records"
)

// Fig9Options parameterizes the Figure 9 reproduction: "Speedup achievable
// in DSM-Sort by adaptively configuring the mapping of function to CPUs as
// ASUs are added. Data series represent different configurations (α values)
// of the algorithm. This experiment uses one host, which saturates at 16
// ASUs."
type Fig9Options struct {
	// N is the input size in records.
	N int
	// ASUs are the x-axis points (paper: 2..64).
	ASUs []int
	// Alphas are the data series (paper: 1, 4, 16, 64, 256).
	Alphas []int
	// Beta is the run length.
	Beta int
	// PacketRecords sizes interconnect packets.
	PacketRecords int
	// C is the host/ASU power ratio (paper: 8 for this figure).
	C float64
	// Hosts is the host count (paper: 1).
	Hosts int
	// Base supplies the remaining cluster parameters.
	Base cluster.Params
	// Seed drives workload generation.
	Seed int64
}

// DefaultFig9Options mirrors the paper's setup at an input size that keeps
// the emulation quick.
func DefaultFig9Options() Fig9Options {
	return Fig9Options{
		N:             1 << 18,
		ASUs:          []int{2, 4, 8, 16, 32, 64},
		Alphas:        []int{1, 4, 16, 64, 256},
		Beta:          64,
		PacketRecords: 32,
		C:             8,
		Hosts:         1,
		Base:          cluster.DefaultParams(),
		Seed:          42,
	}
}

// Fig9Cell is one measured point.
type Fig9Cell struct {
	ASUs     int
	Alpha    int
	Adaptive bool
	Speedup  float64
	// ActiveSecs / BaselineSecs are the elapsed virtual times.
	ActiveSecs, BaselineSecs float64
}

// Fig9Result holds the full grid.
type Fig9Result struct {
	Options Fig9Options
	Cells   []Fig9Cell
}

// Cell returns the measured point for (asus, alpha); adaptive=true selects
// the adaptive series.
func (r *Fig9Result) Cell(asus, alpha int, adaptive bool) (Fig9Cell, bool) {
	for _, c := range r.Cells {
		if c.ASUs == asus && c.Adaptive == adaptive && (adaptive || c.Alpha == alpha) {
			return c, true
		}
	}
	return Fig9Cell{}, false
}

// Table renders the grid in the paper's orientation: one row per ASU count,
// one column per α series plus the adaptive series.
func (r *Fig9Result) Table() *metrics.Table {
	headers := []string{"ASUs"}
	for _, a := range r.Options.Alphas {
		headers = append(headers, fmt.Sprintf("a=%d", a))
	}
	headers = append(headers, "adaptive")
	t := metrics.NewTable("Figure 9: DSM-Sort run-formation speedup vs. conventional storage", headers...)
	for _, d := range r.Options.ASUs {
		row := []any{d}
		for _, a := range r.Options.Alphas {
			c, ok := r.Cell(d, a, false)
			if !ok {
				row = append(row, "-")
				continue
			}
			row = append(row, c.Speedup)
		}
		if c, ok := r.Cell(d, 0, true); ok {
			row = append(row, fmt.Sprintf("%.3f (a=%d)", c.Speedup, c.Alpha))
		} else {
			row = append(row, "-")
		}
		t.AddRow(row...)
	}
	return t
}

// RunFig9 measures the full grid. For each ASU count and α it times the
// first pass (run formation) of DSM-Sort in the active configuration and in
// the conventional baseline ("conventional storage units with no integrated
// processing; all computation occurs on the host"), reporting the ratio.
// The adaptive series picks α per ASU count with the load manager's
// predictive model.
func RunFig9(opt Fig9Options) (*Fig9Result, error) {
	res := &Fig9Result{Options: opt}
	for _, d := range opt.ASUs {
		params := opt.Base
		params.Hosts = opt.Hosts
		params.ASUs = d
		params.C = opt.C

		baselineSecs := make(map[int]float64)
		activeSecs := make(map[int]float64)
		measure := func(alpha int, placement dsmsort.Placement) (float64, error) {
			cl := cluster.New(params)
			in := dsmsort.MakeInput(cl, opt.N, records.Uniform{}, opt.Seed, opt.PacketRecords)
			cfg := dsmsort.Config{
				Alpha:         alpha,
				Beta:          opt.Beta,
				Gamma2:        2,
				PacketRecords: opt.PacketRecords,
				Placement:     placement,
				Seed:          opt.Seed,
			}
			_, r, err := dsmsort.RunFormation(cl, cfg, in)
			if err != nil {
				return 0, err
			}
			return r.Elapsed.Seconds(), nil
		}
		for _, alpha := range opt.Alphas {
			b, err := measure(alpha, dsmsort.Conventional)
			if err != nil {
				return nil, fmt.Errorf("fig9 baseline d=%d alpha=%d: %w", d, alpha, err)
			}
			a, err := measure(alpha, dsmsort.Active)
			if err != nil {
				return nil, fmt.Errorf("fig9 active d=%d alpha=%d: %w", d, alpha, err)
			}
			baselineSecs[alpha], activeSecs[alpha] = b, a
			res.Cells = append(res.Cells, Fig9Cell{
				ASUs: d, Alpha: alpha,
				Speedup:      b / a,
				ActiveSecs:   a,
				BaselineSecs: b,
			})
		}
		// Adaptive series: the load manager predicts the best α for
		// this configuration, then we report its measured speedup.
		adaptAlpha := loadmgr.ChooseAlpha(params, opt.Alphas, opt.Beta)
		res.Cells = append(res.Cells, Fig9Cell{
			ASUs: d, Alpha: adaptAlpha, Adaptive: true,
			Speedup:      baselineSecs[adaptAlpha] / activeSecs[adaptAlpha],
			ActiveSecs:   activeSecs[adaptAlpha],
			BaselineSecs: baselineSecs[adaptAlpha],
		})
	}
	return res, nil
}
