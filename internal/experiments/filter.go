package experiments

import (
	"fmt"

	"lmas/internal/bte"
	"lmas/internal/cluster"
	"lmas/internal/container"
	"lmas/internal/functor"
	"lmas/internal/metrics"
	"lmas/internal/records"
	"lmas/internal/route"
	"lmas/internal/sim"
)

// FilterOptions parameterizes TAB-FILTER, the canonical active-storage
// win the paper's background motivates: "Filtering and aggregation
// operations performed directly at the ASUs can reduce data movement
// across the interconnect, helping to overcome bandwidth limitations"
// (Section 2). A selection scan keeps the records whose key falls below a
// threshold; executing the filter on the ASUs ships only matches to the
// host, while conventional storage ships everything.
type FilterOptions struct {
	N             int
	ASUs          int
	PacketRecords int
	// Selectivities are the match fractions to sweep.
	Selectivities []float64
	Base          cluster.Params
	Seed          int64
}

// DefaultFilterOptions sweeps from needle-in-haystack to keep-everything.
// The interconnect is deliberately bandwidth-constrained (unlike the
// default SAN, where processors saturate first): filtering at the ASUs
// matters most when shipping everything would saturate the network, the
// regime Section 2 cites.
func DefaultFilterOptions() FilterOptions {
	base := cluster.DefaultParams()
	base.NetBandwidth = 60e6
	return FilterOptions{
		N:             1 << 18,
		ASUs:          16,
		PacketRecords: 64,
		Selectivities: []float64{0.01, 0.1, 0.5, 1.0},
		Base:          base,
		Seed:          42,
	}
}

// FilterCell is one (selectivity, placement) measurement.
type FilterCell struct {
	Selectivity float64
	// ActiveSecs / ConvSecs are the scan times per placement.
	ActiveSecs, ConvSecs float64
	// ActiveNetMB / ConvNetMB are interconnect volumes.
	ActiveNetMB, ConvNetMB float64
	Matches                int64
}

// FilterResult holds the sweep.
type FilterResult struct {
	Options FilterOptions
	Cells   []FilterCell
}

// Table renders the sweep.
func (r *FilterResult) Table() *metrics.Table {
	t := metrics.NewTable("TAB-FILTER: selection scan, filter on ASUs vs on host",
		"selectivity", "active(s)", "conv(s)", "speedup", "active net(MB)", "conv net(MB)")
	for _, c := range r.Cells {
		t.AddRow(c.Selectivity, c.ActiveSecs, c.ConvSecs, c.ConvSecs/c.ActiveSecs,
			c.ActiveNetMB, c.ConvNetMB)
	}
	return t
}

// RunFilter measures the selection scan at every selectivity in both
// placements, validating match counts against a direct count.
func RunFilter(opt FilterOptions) (*FilterResult, error) {
	res := &FilterResult{Options: opt}
	for _, sel := range opt.Selectivities {
		threshold := records.Key(float64(records.MaxKey) * sel)
		cell := FilterCell{Selectivity: sel}
		for _, onASU := range []bool{true, false} {
			secs, netMB, matches, err := runFilterScan(opt, threshold, onASU)
			if err != nil {
				return nil, fmt.Errorf("filter sel=%g onASU=%v: %w", sel, onASU, err)
			}
			if onASU {
				cell.ActiveSecs, cell.ActiveNetMB = secs, netMB
				cell.Matches = matches
			} else {
				cell.ConvSecs, cell.ConvNetMB = secs, netMB
				if matches != cell.Matches {
					return nil, fmt.Errorf("filter sel=%g: placements disagree: %d vs %d matches",
						sel, cell.Matches, matches)
				}
			}
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

func runFilterScan(opt FilterOptions, threshold records.Key, onASU bool) (secs, netMB float64, matches int64, err error) {
	params := opt.Base
	params.Hosts, params.ASUs = 1, opt.ASUs
	cl := cluster.New(params)

	// Load the data set striped across the ASUs and count expected
	// matches directly (the validation oracle).
	buf := records.Generate(opt.N, params.RecordSize, opt.Seed, records.Uniform{})
	var want int64
	for i := 0; i < opt.N; i++ {
		if buf.Key(i) < threshold {
			want++
		}
	}
	sets := make([]*container.Set, opt.ASUs)
	cl.Sim.Spawn("load", func(p *sim.Proc) {
		for i, asu := range cl.ASUs {
			sets[i] = container.NewSet(fmt.Sprintf("scan.in%d", i), bte.NewDisk(asu.Disk), params.RecordSize)
		}
		for pi, off := 0, 0; off < opt.N; pi, off = pi+1, off+opt.PacketRecords {
			hi := off + opt.PacketRecords
			if hi > opt.N {
				hi = opt.N
			}
			sets[pi%opt.ASUs].Add(p, container.NewPacket(buf.Slice(off, hi).ClonePooled()))
		}
	})
	if err := cl.Sim.Run(); err != nil {
		return 0, 0, 0, err
	}

	pl := functor.NewPipeline(cl)
	newFilter := func() functor.Kernel {
		return functor.Adapt(&functor.Filter{
			Keep: func(k records.Key) bool { return k < threshold },
		}, params.RecordSize, opt.PacketRecords)
	}
	var got int64
	consume := pl.AddStage("consume", cl.Hosts, func() functor.Kernel {
		return &functor.Sink{Label: "matches", Fn: func(ctx *functor.Ctx, pk container.Packet) {
			got += int64(pk.Len())
			pk.Release() // counted, not stored
		}}
	})
	consume.Terminal()
	var edge *functor.Edge
	if onASU {
		filter := pl.AddStage("filter", cl.ASUs, newFilter)
		edge = filter.ConnectTo(consume, &route.RoundRobin{})
		for i, set := range sets {
			pl.AddSource(fmt.Sprintf("read%d", i), cl.ASUs[i], set.Scan(i, false), filter, pinTo(i))
		}
	} else {
		// Conventional: raw blocks to the host, filter there, then
		// consume — the filter stage lives on the host.
		filter := pl.AddStage("filter", cl.Hosts, newFilter)
		edge = filter.ConnectTo(consume, &route.RoundRobin{})
		for i, set := range sets {
			pl.AddSource(fmt.Sprintf("read%d", i), cl.ASUs[i], set.Scan(i, false), filter, &route.RoundRobin{})
		}
	}
	elapsed, err := pl.Run()
	if err != nil {
		return 0, 0, 0, err
	}
	if got != want {
		return 0, 0, 0, fmt.Errorf("matched %d records, want %d", got, want)
	}
	var net int64
	_ = edge
	for _, asu := range cl.ASUs {
		sent, _, sb, _ := asu.NIC.Stats()
		_ = sent
		net += sb
	}
	return elapsed.Seconds(), float64(net) / 1e6, got, nil
}

// pinTo routes every packet to endpoint i.
type pinTo int

func (pinTo) Name() string { return "pin" }
func (f pinTo) Pick(pk route.PacketInfo, e []route.Endpoint) int {
	return int(f) % len(e)
}
