package experiments

import (
	"strings"
	"testing"
)

func TestFilterPushdown(t *testing.T) {
	opt := DefaultFilterOptions()
	opt.N = 1 << 15
	opt.Selectivities = []float64{0.01, 1.0}
	res, err := RunFilter(opt)
	if err != nil {
		t.Fatal(err)
	}
	needle, all := res.Cells[0], res.Cells[1]
	// Low selectivity: pushing the filter to the ASUs must cut
	// interconnect traffic dramatically and win on time.
	if needle.ActiveNetMB > 0.2*needle.ConvNetMB {
		t.Errorf("sel=0.01: active moved %.1f MB vs conventional %.1f MB; pushdown must slash traffic",
			needle.ActiveNetMB, needle.ConvNetMB)
	}
	if needle.ActiveSecs >= needle.ConvSecs {
		t.Errorf("sel=0.01: active %.4fs not faster than conventional %.4fs",
			needle.ActiveSecs, needle.ConvSecs)
	}
	// Keep-everything: no traffic reduction is possible; active must
	// not win by much and may lose (weak ASU processors do the work).
	if all.ActiveNetMB < 0.9*all.ConvNetMB {
		t.Errorf("sel=1.0: active traffic %.1f MB much below conventional %.1f MB; nothing should be filtered",
			all.ActiveNetMB, all.ConvNetMB)
	}
	// Matches must agree between placements (checked internally) and be
	// roughly selectivity * N.
	if needle.Matches <= 0 || needle.Matches > int64(opt.N)/20 {
		t.Errorf("sel=0.01 matched %d of %d", needle.Matches, opt.N)
	}
	if s := res.Table().String(); !strings.Contains(s, "selectivity") {
		t.Errorf("table malformed:\n%s", s)
	}
}

func TestFilterSpeedupGrowsAsSelectivityFalls(t *testing.T) {
	opt := DefaultFilterOptions()
	opt.N = 1 << 15
	opt.Selectivities = []float64{0.05, 0.5}
	res, err := RunFilter(opt)
	if err != nil {
		t.Fatal(err)
	}
	spLow := res.Cells[0].ConvSecs / res.Cells[0].ActiveSecs
	spHigh := res.Cells[1].ConvSecs / res.Cells[1].ActiveSecs
	if spLow <= spHigh {
		t.Errorf("speedup at sel=0.05 (%.2f) should exceed sel=0.5 (%.2f)", spLow, spHigh)
	}
}
