package experiments

import (
	"fmt"

	"lmas/internal/cluster"
	"lmas/internal/dsmsort"
	"lmas/internal/metrics"
	"lmas/internal/records"
)

// HybridOptions parameterizes TAB-HYBRID: the functor-migration placement
// ("load management may... migrate functors between host nodes and ASUs",
// Section 3.3) against the two static placements across the Figure 9
// x-axis.
type HybridOptions struct {
	N             int
	ASUs          []int
	Alpha, Beta   int
	PacketRecords int
	Base          cluster.Params
	Seed          int64
}

// DefaultHybridOptions covers the regimes where each placement wins.
func DefaultHybridOptions() HybridOptions {
	return HybridOptions{
		N:             1 << 18,
		ASUs:          []int{2, 8, 16, 64},
		Alpha:         64,
		Beta:          64,
		PacketRecords: 32,
		Base:          cluster.DefaultParams(),
		Seed:          42,
	}
}

// HybridCell is one ASU count's three-way comparison, as speedups relative
// to the conventional placement.
type HybridCell struct {
	ASUs    int
	Active  float64
	Hybrid  float64
	HostOps float64 // host distribute share under hybrid (fraction of records)
}

// HybridResult holds the sweep.
type HybridResult struct {
	Options HybridOptions
	Cells   []HybridCell
}

// Table renders the comparison.
func (r *HybridResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("TAB-HYBRID: functor migration (alpha=%d; speedups vs conventional)", r.Options.Alpha),
		"ASUs", "active", "hybrid", "hybrid dist. on hosts")
	for _, c := range r.Cells {
		t.AddRow(c.ASUs, c.Active, c.Hybrid, fmt.Sprintf("%.0f%%", 100*c.HostOps))
	}
	return t
}

// RunHybrid measures all three placements per ASU count.
func RunHybrid(opt HybridOptions) (*HybridResult, error) {
	res := &HybridResult{Options: opt}
	for _, d := range opt.ASUs {
		measure := func(pl dsmsort.Placement) (secs float64, hostShare float64, err error) {
			params := opt.Base
			params.Hosts, params.ASUs = 1, d
			cl := cluster.New(params)
			in := dsmsort.MakeInput(cl, opt.N, records.Uniform{}, opt.Seed, opt.PacketRecords)
			cfg := dsmsort.Config{
				Alpha: opt.Alpha, Beta: opt.Beta, Gamma2: 2,
				PacketRecords: opt.PacketRecords, Placement: pl, Seed: opt.Seed,
			}
			_, r, err := dsmsort.RunFormation(cl, cfg, in)
			if err != nil {
				return 0, 0, err
			}
			return r.Elapsed.Seconds(), r.HybridHostShare, nil
		}
		conv, _, err := measure(dsmsort.Conventional)
		if err != nil {
			return nil, fmt.Errorf("hybrid d=%d conventional: %w", d, err)
		}
		act, _, err := measure(dsmsort.Active)
		if err != nil {
			return nil, fmt.Errorf("hybrid d=%d active: %w", d, err)
		}
		hyb, share, err := measure(dsmsort.Hybrid)
		if err != nil {
			return nil, fmt.Errorf("hybrid d=%d hybrid: %w", d, err)
		}
		res.Cells = append(res.Cells, HybridCell{
			ASUs:    d,
			Active:  conv / act,
			Hybrid:  conv / hyb,
			HostOps: share,
		})
	}
	return res, nil
}
