package experiments

import (
	"strings"
	"testing"
)

func TestHybridDominatesWhereStaticsLose(t *testing.T) {
	opt := DefaultHybridOptions()
	opt.N = 1 << 16
	opt.ASUs = []int{2, 8, 32}
	res, err := RunHybrid(opt)
	if err != nil {
		t.Fatal(err)
	}
	byD := map[int]HybridCell{}
	for _, c := range res.Cells {
		byD[c.ASUs] = c
	}
	// Few ASUs: active loses badly; hybrid must stay near conventional
	// (speedup ~1) by migrating distribute work to the host.
	if c := byD[2]; c.Hybrid < 0.9 {
		t.Errorf("d=2: hybrid speedup %.2f, want ~1 (active was %.2f)", c.Hybrid, c.Active)
	}
	if c := byD[2]; c.Hybrid <= c.Active {
		t.Errorf("d=2: hybrid %.2f must beat active %.2f", c.Hybrid, c.Active)
	}
	// Host distribute share must fall as ASUs are added (migration).
	if byD[2].HostOps <= byD[32].HostOps {
		t.Errorf("host share did not shrink with ASUs: %.2f (d=2) vs %.2f (d=32)",
			byD[2].HostOps, byD[32].HostOps)
	}
	// Many ASUs: hybrid must capture most of active's benefit.
	if c := byD[32]; c.Hybrid < 0.85*c.Active {
		t.Errorf("d=32: hybrid %.2f captured too little of active %.2f", c.Hybrid, c.Active)
	}
	if c := byD[32]; c.Hybrid <= 1.05 {
		t.Errorf("d=32: hybrid %.2f shows no active-storage benefit", c.Hybrid)
	}
	if s := res.Table().String(); !strings.Contains(s, "hybrid") {
		t.Errorf("table malformed:\n%s", s)
	}
}
