package experiments

import (
	"fmt"

	"lmas/internal/bte"
	"lmas/internal/cluster"
	"lmas/internal/container"
	"lmas/internal/functor"
	"lmas/internal/metrics"
	"lmas/internal/records"
	"lmas/internal/route"
	"lmas/internal/sim"
)

// IsolationOptions parameterizes TAB-ISO, implementing the paper's stated
// future work: "network storage is a shared resource, and storage-based
// computation should not occur if it interferes with storage access for
// other applications" (Section 1; Section 8 lists performance isolation as
// future work). A foreground application issues latency-sensitive requests
// to the ASUs while DSM-Sort's distribute functors run on them; isolation
// bounds the request latency by admitting requests at high priority and
// forcing functor computation to yield the CPU every quantum.
type IsolationOptions struct {
	N             int
	ASUs          int
	Alpha, Beta   int
	PacketRecords int
	// RequestInterval is each foreground client's think time.
	RequestInterval sim.Duration
	// RequestOps is the ASU CPU cost of serving one request (cache-hit
	// metadata processing; disk-bound requests are governed by the disk
	// model instead).
	RequestOps float64
	// Quanta are the isolation settings to sweep; 0 means no isolation.
	Quanta []sim.Duration
	Base   cluster.Params
	Seed   int64
	// Jobs bounds how many sweep cells execute concurrently (each is an
	// independent simulation); < 1 means one worker per CPU. Results are
	// identical for every value.
	Jobs int
}

// DefaultIsolationOptions uses large packets so unisolated functor holds
// are long enough to hurt.
func DefaultIsolationOptions() IsolationOptions {
	return IsolationOptions{
		N:               1 << 17,
		ASUs:            4,
		Alpha:           16,
		Beta:            64,
		PacketRecords:   1024,
		RequestInterval: 2 * sim.Millisecond,
		RequestOps:      1000,
		Quanta:          []sim.Duration{0, 500 * sim.Microsecond, 100 * sim.Microsecond},
		Base:            cluster.DefaultParams(),
		Seed:            42,
	}
}

// IsolationCell is one quantum setting's measurements.
type IsolationCell struct {
	Quantum sim.Duration
	// SortSecs is the co-scheduled sort's run-formation time (the cost
	// of isolation shows up here).
	SortSecs float64
	// Request latency distribution across all foreground clients.
	P50, P99, Max sim.Duration
	Requests      int
}

// IsolationResult holds the sweep.
type IsolationResult struct {
	Options IsolationOptions
	// Baseline is the request latency with no competing functor work.
	Baseline sim.Duration
	Cells    []IsolationCell
}

// Table renders the sweep.
func (r *IsolationResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("TAB-ISO: foreground request latency vs functor isolation (idle baseline %.3fms)",
			r.Baseline.Seconds()*1e3),
		"quantum", "sort(s)", "p50(ms)", "p99(ms)", "max(ms)", "requests")
	for _, c := range r.Cells {
		q := "off"
		if c.Quantum > 0 {
			q = fmt.Sprintf("%.1fms", c.Quantum.Seconds()*1e3)
		}
		t.AddRow(q, c.SortSecs,
			c.P50.Seconds()*1e3, c.P99.Seconds()*1e3, c.Max.Seconds()*1e3, c.Requests)
	}
	return t
}

// RunIsolation sweeps the isolation quantum, co-scheduling foreground
// clients with DSM-Sort's distribute phase on the same ASUs.
func RunIsolation(opt IsolationOptions) (*IsolationResult, error) {
	res := &IsolationResult{Options: opt}
	// Idle baseline: one request on an unloaded ASU.
	{
		params := opt.Base
		params.Hosts, params.ASUs = 1, 1
		cl := cluster.New(params)
		cl.Sim.Spawn("baseline", func(p *sim.Proc) {
			start := p.Now()
			cl.ASUs[0].ServeRequest(p, opt.RequestOps)
			res.Baseline = sim.Duration(p.Now() - start)
		})
		if err := cl.Sim.Run(); err != nil {
			return nil, err
		}
	}
	res.Cells = make([]IsolationCell, len(opt.Quanta))
	err := runCells(len(opt.Quanta), opt.Jobs, func(i int) error {
		cell, err := runIsolationCell(opt, opt.Quanta[i])
		if err != nil {
			return fmt.Errorf("isolation quantum=%v: %w", opt.Quanta[i], err)
		}
		res.Cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func runIsolationCell(opt IsolationOptions, quantum sim.Duration) (IsolationCell, error) {
	params := opt.Base
	params.Hosts, params.ASUs = 1, opt.ASUs
	params.IsolationQuantum = quantum
	cl := cluster.New(params)

	// Input striped over the ASUs, as in Figure 9.
	buf := records.Generate(opt.N, params.RecordSize, opt.Seed, records.Uniform{})
	sets := make([]*container.Set, opt.ASUs)
	cl.Sim.Spawn("load", func(p *sim.Proc) {
		for i, asu := range cl.ASUs {
			sets[i] = container.NewSet(fmt.Sprintf("iso.in%d", i), bte.NewDisk(asu.Disk), params.RecordSize)
		}
		for pi, off := 0, 0; off < opt.N; pi, off = pi+1, off+opt.PacketRecords {
			hi := off + opt.PacketRecords
			if hi > opt.N {
				hi = opt.N
			}
			sets[pi%opt.ASUs].Add(p, container.NewPacket(buf.Slice(off, hi).ClonePooled()))
		}
	})
	if err := cl.Sim.Run(); err != nil {
		return IsolationCell{}, err
	}

	// The background computation: distribute on the ASUs, sort on the
	// host, runs discarded (we only need the ASU CPU pressure).
	pl := functor.NewPipeline(cl)
	dist := pl.AddStage("distribute", cl.ASUs, func() functor.Kernel {
		return functor.Adapt(functor.NewDistribute(opt.Alpha), params.RecordSize, opt.PacketRecords)
	})
	srt := pl.AddStage("blocksort", cl.Hosts, func() functor.Kernel {
		return functor.NewBlockSort(opt.Beta, params.RecordSize)
	})
	dist.ConnectTo(srt, route.Static{Buckets: opt.Alpha})
	sortDone := false
	srt.Terminal().Done = func() { sortDone = true }
	for i, set := range sets {
		i := i
		pl.AddSource(fmt.Sprintf("iso.read%d", i), cl.ASUs[i], set.Scan(i, false), dist, pinPolicy(i))
	}

	// Foreground clients: one per ASU, issuing requests until the sort
	// completes.
	var latencies []sim.Duration
	for i, asu := range cl.ASUs {
		i, asu := i, asu
		cl.Sim.Spawn(fmt.Sprintf("client@asu%d", i), func(p *sim.Proc) {
			for !sortDone {
				p.Sleep(opt.RequestInterval)
				if sortDone {
					return
				}
				start := p.Now()
				asu.ServeRequest(p, opt.RequestOps)
				latencies = append(latencies, sim.Duration(p.Now()-start))
			}
		})
	}

	start := cl.Sim.Now()
	pl.Start()
	if err := cl.Sim.Run(); err != nil {
		return IsolationCell{}, err
	}
	sum := metrics.NewSummary(latencies) // sorts once for all three quantiles
	return IsolationCell{
		Quantum:  quantum,
		SortSecs: (sim.Duration(cl.Sim.Now() - start)).Seconds(),
		P50:      sum.P50(),
		P99:      sum.P99(),
		Max:      sum.Max(),
		Requests: sum.Count(),
	}, nil
}

// pinPolicy routes every packet to endpoint i.
type pinPolicy int

func (pinPolicy) Name() string { return "pin" }
func (f pinPolicy) Pick(pk route.PacketInfo, e []route.Endpoint) int {
	return int(f) % len(e)
}
