package experiments

import (
	"strings"
	"testing"

	"lmas/internal/sim"
)

func TestIsolationBoundsTailLatency(t *testing.T) {
	opt := DefaultIsolationOptions()
	opt.N = 1 << 15
	res, err := RunIsolation(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	off := res.Cells[0]   // quantum 0: no isolation
	tight := res.Cells[2] // 100us quantum
	if off.Quantum != 0 || tight.Quantum != 100*sim.Microsecond {
		t.Fatalf("unexpected sweep order: %v %v", off.Quantum, tight.Quantum)
	}
	if off.Requests == 0 || tight.Requests == 0 {
		t.Fatal("no foreground requests measured")
	}
	// Unisolated functor packets hold the ASU CPU for ~ms; the p99
	// request latency must reflect that, and isolation must cut it.
	if off.P99 <= 2*res.Baseline {
		t.Errorf("unisolated p99 %v suspiciously close to idle baseline %v; no contention generated",
			off.P99, res.Baseline)
	}
	if tight.P99 >= off.P99/2 {
		t.Errorf("isolation did not cut tail latency: p99 %v (isolated) vs %v (off)", tight.P99, off.P99)
	}
	// The tight quantum bounds waiting to ~quantum + service.
	bound := 4 * (tight.Quantum + res.Baseline)
	if tight.P99 > bound {
		t.Errorf("isolated p99 %v exceeds bound %v", tight.P99, bound)
	}
	// Isolation must not wreck the background sort (some slowdown from
	// yielding is expected, catastrophe is not).
	if tight.SortSecs > 1.5*off.SortSecs {
		t.Errorf("isolation slowed the sort %.2fx", tight.SortSecs/off.SortSecs)
	}
	if s := res.Table().String(); !strings.Contains(s, "p99(ms)") || !strings.Contains(s, "off") {
		t.Errorf("table malformed:\n%s", s)
	}
}

func TestIsolationBaselinePositive(t *testing.T) {
	opt := DefaultIsolationOptions()
	opt.N = 1 << 12
	opt.Quanta = []sim.Duration{0}
	res, err := RunIsolation(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline <= 0 {
		t.Fatal("idle baseline latency not measured")
	}
}
