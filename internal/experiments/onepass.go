package experiments

import (
	"errors"
	"fmt"

	"lmas/internal/cluster"
	"lmas/internal/dsmsort"
	"lmas/internal/metrics"
	"lmas/internal/onepass"
	"lmas/internal/records"
)

// OnePassOptions parameterizes TAB-ONEPASS: the NOW-Sort/MinuteSort-style
// one-pass sort (Section 7's related work) against DSM-Sort across input
// sizes. One pass wins while the data fits in the sort nodes' memory and
// cannot run at all beyond it; DSM-Sort pays a second pass but scales.
type OnePassOptions struct {
	Hosts, ASUs int
	// HostMemRecords bounds the sort nodes' memory (kept small so the
	// wall is reachable at emulation-friendly sizes).
	HostMemRecords int
	// Ns are the input sizes to sweep.
	Ns            []int
	PacketRecords int
	Base          cluster.Params
	Seed          int64
}

// DefaultOnePassOptions crosses the memory wall mid-sweep.
func DefaultOnePassOptions() OnePassOptions {
	return OnePassOptions{
		Hosts:          2,
		ASUs:           8,
		HostMemRecords: 1 << 13,
		Ns:             []int{1 << 12, 1 << 13, 1 << 15, 1 << 17},
		PacketRecords:  64,
		Base:           cluster.DefaultParams(),
		Seed:           42,
	}
}

// OnePassCell is one input size's comparison.
type OnePassCell struct {
	N int
	// OnePassSecs is negative when the input exceeds the memory wall.
	OnePassSecs float64
	DSMSecs     float64
}

// OnePassResult holds the sweep.
type OnePassResult struct {
	Options OnePassOptions
	Cells   []OnePassCell
}

// Table renders the sweep.
func (r *OnePassResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("TAB-ONEPASS: one-pass cluster sort vs DSM-Sort (sort-node memory %d records x %d hosts)",
			r.Options.HostMemRecords, r.Options.Hosts),
		"records", "one-pass(s)", "dsm-sort(s)")
	for _, c := range r.Cells {
		op := "exceeds memory"
		if c.OnePassSecs >= 0 {
			op = fmt.Sprintf("%.3f", c.OnePassSecs)
		}
		t.AddRow(c.N, op, c.DSMSecs)
	}
	return t
}

// RunOnePass measures both sorts at every input size.
func RunOnePass(opt OnePassOptions) (*OnePassResult, error) {
	res := &OnePassResult{Options: opt}
	for _, n := range opt.Ns {
		params := opt.Base
		params.Hosts, params.ASUs = opt.Hosts, opt.ASUs
		params.HostMemRecords = opt.HostMemRecords
		cell := OnePassCell{N: n}

		cl := cluster.New(params)
		in := dsmsort.MakeInput(cl, n, records.Uniform{}, opt.Seed, opt.PacketRecords)
		oneRes, err := onepass.Sort(cl, onepass.Config{
			SampleSize: 2048, PacketRecords: opt.PacketRecords, Seed: opt.Seed,
		}, in)
		var tooLarge *onepass.ErrTooLarge
		switch {
		case err == nil:
			cell.OnePassSecs = oneRes.Elapsed.Seconds()
		case errors.As(err, &tooLarge):
			cell.OnePassSecs = -1
		default:
			return nil, fmt.Errorf("onepass n=%d: %w", n, err)
		}

		cl2 := cluster.New(params)
		in2 := dsmsort.MakeInput(cl2, n, records.Uniform{}, opt.Seed, opt.PacketRecords)
		dsmRes, err := dsmsort.Sort(cl2, dsmsort.Config{
			Alpha: 16, Beta: 64, Gamma2: 16, PacketRecords: opt.PacketRecords,
			Placement: dsmsort.Active, Seed: opt.Seed,
		}, in2)
		if err != nil {
			return nil, fmt.Errorf("dsmsort n=%d: %w", n, err)
		}
		cell.DSMSecs = dsmRes.Elapsed.Seconds()
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}
