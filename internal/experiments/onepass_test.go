package experiments

import (
	"strings"
	"testing"
)

func TestOnePassSweepCrossesWall(t *testing.T) {
	opt := DefaultOnePassOptions()
	opt.Ns = []int{1 << 12, 1 << 16}
	res, err := RunOnePass(opt)
	if err != nil {
		t.Fatal(err)
	}
	small, big := res.Cells[0], res.Cells[1]
	// Below the wall: one pass wins.
	if small.OnePassSecs < 0 {
		t.Fatal("small input rejected by one-pass sort")
	}
	if small.OnePassSecs >= small.DSMSecs {
		t.Errorf("one-pass %.4fs not faster than DSM-Sort %.4fs below the wall",
			small.OnePassSecs, small.DSMSecs)
	}
	// Above the wall: one pass cannot run, DSM-Sort still does.
	if big.OnePassSecs >= 0 {
		t.Errorf("one-pass sorted %d records past the wall", big.N)
	}
	if big.DSMSecs <= 0 {
		t.Error("DSM-Sort missing above the wall")
	}
	if s := res.Table().String(); !strings.Contains(s, "exceeds memory") {
		t.Errorf("table malformed:\n%s", s)
	}
}
