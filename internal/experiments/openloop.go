package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"lmas/internal/cluster"
	"lmas/internal/critpath"
	"lmas/internal/metrics"
	"lmas/internal/recorder"
	"lmas/internal/sim"
	"lmas/internal/telemetry"
)

// OpenLoopOptions parameterizes TAB-CHURN's macro workload: an open-loop
// stream of short storage jobs arriving at the hosts regardless of service
// progress, each routed to a (Zipf-skewed) ASU, queued, and served in
// batches. Every job is a short-lived proc and arms a far-future timeout
// timer, so the workload exercises exactly the kernel paths the scheduler
// tier, proc recycling, and batched queue ops optimize — at tens of
// thousands of lifecycles and millions of in-flight events.
type OpenLoopOptions struct {
	Hosts int
	ASUs  int
	// Jobs is the total number of arrivals.
	Jobs int
	// Rate is the arrival rate in jobs per second of virtual time; the
	// exponential inter-arrival times make the stream Poisson.
	Rate float64
	// ZipfS skews the ASU choice (1 < s; higher = hotter head). 0 means
	// uniform.
	ZipfS float64
	// HostOps and ASUOps are the per-job CPU costs on each side.
	HostOps float64
	ASUOps  float64
	// ReadBytes is the per-job payload read from the ASU's disk.
	ReadBytes int
	// QueueCap bounds each ASU's job queue.
	QueueCap int
	// Batch is the server's maximum GetN drain per wakeup.
	Batch int
	// Timeout arms a far-future deadline per job; jobs still queued when it
	// fires count as SLO misses. The horizon is what pushes timer load into
	// the wheel's outer levels.
	Timeout sim.Duration
	// Deadlines arms one probe per horizon i*Timeout (i = 1..Deadlines) per
	// job — multi-horizon SLO tracking. Every probe counts its horizon's
	// misses and captures the missing job's blame mix; the ladder also keeps
	// hundreds of thousands of far timers in flight, which is the in-flight
	// event load the scheduler tier is built to carry.
	Deadlines int
	Base      cluster.Params
	Seed      int64
	// Record, when non-nil, streams the run into a recorder sink: periodic
	// samples (with queue depths and the latency strip), load-manager
	// events, and the finished report. Recording is a pure observer — the
	// report stays byte-identical with or without it.
	Record recorder.Sink
	// Experiment names the recorded run's store experiment (default
	// "openloop"); only used when Record is set.
	Experiment string
	// SampleEvery is the recorder sampling interval (0 means 100ms).
	SampleEvery sim.Duration
}

// DefaultOpenLoopOptions sizes the workload so a run exercises every wheel
// level while finishing in well under a second of wall clock.
func DefaultOpenLoopOptions() OpenLoopOptions {
	return OpenLoopOptions{
		Hosts:     2,
		ASUs:      8,
		Jobs:      20000,
		Rate:      5e3,
		ZipfS:     1.3,
		HostOps:   200,
		ASUOps:    500,
		ReadBytes: 4 << 10,
		QueueCap:  256,
		Batch:     64,
		Timeout:   sim.Second,
		Deadlines: 10,
		Base:      cluster.DefaultParams(),
		Seed:      42,
	}
}

// OpenLoopResult holds one run's measurements.
type OpenLoopResult struct {
	Options   OpenLoopOptions
	Completed int
	// Misses counts jobs whose timeout fired before service finished.
	Misses int
	// Elapsed spans arrival of the first job to completion of the last;
	// the run itself extends further while leftover timeout timers drain.
	Elapsed        sim.Duration
	P50, P99, P999 sim.Duration
	// Goodput is completed jobs per second of Elapsed.
	Goodput float64
	Report  *telemetry.RunReport
}

// Table renders the headline numbers plus the scheduler counters that the
// run's report exports.
func (r *OpenLoopResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("TAB-CHURN: open-loop churn, %d jobs @ %.0f/s over %d hosts / %d ASUs",
			r.Options.Jobs, r.Options.Rate, r.Options.Hosts, r.Options.ASUs),
		"metric", "value")
	t.AddRow("completed", r.Completed)
	t.AddRow("SLO misses", r.Misses)
	t.AddRow("elapsed(s)", r.Elapsed.Seconds())
	t.AddRow("goodput(jobs/s)", r.Goodput)
	if slo := r.Report.SLO; slo != nil {
		t.AddRow("goodput in SLO(jobs/s)", slo.GoodputPerSec)
	}
	t.AddRow("p50(ms)", r.P50.Seconds()*1e3)
	t.AddRow("p99(ms)", r.P99.Seconds()*1e3)
	t.AddRow("p99.9(ms)", r.P999.Seconds()*1e3)
	for _, c := range r.Report.Counters {
		switch c.Name {
		case "sim.scheduler.wheel_hits", "sim.scheduler.heap_spills", "sim.scheduler.proc_reuses":
			t.AddRow(c.Name, c.Value)
		}
	}
	return t
}

type openJob struct {
	id      int
	arrival sim.Time
}

// Per-job blame classes, in the critpath charge vocabulary. A job's life is
// always in exactly one phase; phase transitions flush the elapsed interval
// onto the finishing class, so when an SLO probe fires mid-phase the miss's
// whole history is one cumulative vector plus one partial interval.
const (
	jobPhaseHostCPU = iota
	jobPhaseNet
	jobPhaseQueueWait
	jobPhaseASUCPU
	jobPhaseDisk
	jobNumPhases
	jobPhaseDone = -1
)

var jobPhaseClass = [jobNumPhases]critpath.Class{
	critpath.ClassHostCPU,
	critpath.ClassNet,
	critpath.ClassQueueWait,
	critpath.ClassASUCPU,
	critpath.ClassDisk,
}

// jobTrack is one job's latency provenance: where its time has gone so far.
// The slice of these is allocated once up front, so blame tracking never
// perturbs the workload's own churn-heavy allocation profile.
type jobTrack struct {
	classNs [jobNumPhases]int64
	phaseAt sim.Time
	host    int32
	asu     int32
	phase   int8
}

// RunOpenLoop executes the open-loop churn workload. The dispatch history is
// engine-independent: the generator is a single proc, every shared mutation
// happens inside dispatched events, and the report it builds must be
// byte-identical across the serial and parallel engines (CI cmps it).
func RunOpenLoop(opt OpenLoopOptions) (*OpenLoopResult, error) {
	params := opt.Base
	params.Hosts, params.ASUs = opt.Hosts, opt.ASUs
	cl := cluster.New(params)
	cl.AttachTelemetry(telemetry.NewRegistry(), 100*sim.Millisecond)
	s := cl.Sim

	// Register the latency histogram before any recorder attaches so the
	// periodic sampler's latency strip sees it from the first tick.
	latHist := cl.Telemetry.Latency("openloop.job.latency")

	workload := map[string]any{
		"program": "openloop-churn",
		"jobs":    opt.Jobs,
		"rate":    opt.Rate,
		"zipf_s":  opt.ZipfS,
		"batch":   opt.Batch,
		"timeout": int64(opt.Timeout),
	}
	var rec recorder.Recorder
	if opt.Record != nil {
		rec = opt.Record.NewRun()
		exp := opt.Experiment
		if exp == "" {
			exp = "openloop"
		}
		rec.Begin(&recorder.Header{
			Experiment: exp,
			Name:       "openloop",
			ConfigHash: recorder.ConfigHash(cl.Config(), workload, opt.Seed),
			Seed:       opt.Seed,
			Config:     cl.Config(),
			Workload:   workload,
		})
		cl.AttachRecorder(rec, opt.SampleEvery)
	}

	queues := make([]*sim.Queue[openJob], opt.ASUs)
	for i := range queues {
		queues[i] = sim.NewQueue[openJob](s, fmt.Sprintf("asu%d.jobs", i), opt.QueueCap)
	}
	if cl.WantsQueueProbes() {
		for i, q := range queues {
			q := q
			cl.RegisterQueueProbe(fmt.Sprintf("asu%d.jobs", i), func() (int, int) {
				_, high := q.WaitStats()
				return q.Len(), high
			})
		}
	}

	var (
		latencies = make([]sim.Duration, 0, opt.Jobs)
		completed = make([]bool, opt.Jobs)
		tracks    = make([]jobTrack, opt.Jobs)
		delivered = 0
		misses    = 0
		good      = 0
		firstAt   sim.Time
		lastAt    sim.Time
	)
	// horizonMiss[i] aggregates the blame of every job missing horizon i:
	// key = phase*numNodes + node index (hosts first).
	numNodes := opt.Hosts + opt.ASUs
	horizonMiss := make([]int64, opt.Deadlines+1)
	horizonBlame := make([]map[int]int64, opt.Deadlines+1)

	setPhase := func(id int, phase int8, now sim.Time) {
		tr := &tracks[id]
		if tr.phase >= 0 {
			tr.classNs[tr.phase] += int64(now - tr.phaseAt)
		}
		tr.phase, tr.phaseAt = phase, now
	}

	// Per-ASU server: drain the queue in batches, charge CPU and disk per
	// job, and exit on the sentinel the generator enqueues after the last
	// delivery. FIFO order guarantees the sentinel is seen last.
	for i, asu := range cl.ASUs {
		i, asu := i, asu
		q := queues[i]
		s.SpawnOn(asu.Part, fmt.Sprintf("server@asu%d", i), func(p *sim.Proc) {
			batch := make([]openJob, opt.Batch)
			for {
				n, ok := q.GetN(p, batch)
				if !ok {
					return
				}
				for _, j := range batch[:n] {
					if j.id < 0 {
						return
					}
					setPhase(j.id, jobPhaseASUCPU, p.Now())
					// Reads stream sequentially per ASU (read-ahead credit
					// applies): the workload stresses the scheduler, not
					// seek time.
					asu.Compute(p, opt.ASUOps+cl.Touch(asu))
					if opt.ReadBytes > 0 {
						setPhase(j.id, jobPhaseDisk, p.Now())
						asu.Disk.Read(p, opt.ReadBytes)
					}
					now := p.Now()
					setPhase(j.id, jobPhaseDone, now)
					completed[j.id] = true
					lat := sim.Duration(now - j.arrival)
					latencies = append(latencies, lat)
					latHist.Observe(lat)
					if lat <= opt.Timeout {
						good++
					}
					lastAt = now
				}
			}
		})
	}

	// Open-loop generator: Poisson arrivals, Zipf ASU choice, one
	// short-lived proc per job. The rng is touched only here, so the
	// schedule is a pure function of the seed.
	s.Spawn("generator", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(opt.Seed))
		var zipf *rand.Zipf
		if opt.ZipfS > 1 {
			zipf = rand.NewZipf(rng, opt.ZipfS, 1, uint64(opt.ASUs-1))
		}
		firstAt = p.Now()
		for id := 0; id < opt.Jobs; id++ {
			id := id
			hostIdx := id % opt.Hosts
			host := cl.Hosts[hostIdx]
			asuIdx := 0
			if zipf != nil {
				asuIdx = int(zipf.Uint64())
			} else {
				asuIdx = rng.Intn(opt.ASUs)
			}
			asu := cl.ASUs[asuIdx]
			arrival := p.Now()
			tracks[id] = jobTrack{
				phaseAt: arrival,
				host:    int32(hostIdx),
				asu:     int32(asuIdx),
				phase:   jobPhaseHostCPU,
			}
			// SLO deadlines: a ladder of far-future probes per job,
			// cancel-by-flag. One closure serves the whole ladder (its
			// horizon is recovered from the fire time), so arming ten
			// horizons costs the same single allocation as one.
			probe := func() {
				if completed[id] {
					return
				}
				now := s.Now()
				h := int(sim.Duration(now-arrival) / opt.Timeout)
				if h < 1 {
					h = 1
				} else if h > opt.Deadlines {
					h = opt.Deadlines
				}
				if h == 1 {
					misses++
				}
				horizonMiss[h]++
				tr := &tracks[id]
				blame := horizonBlame[h]
				if blame == nil {
					blame = make(map[int]int64)
					horizonBlame[h] = blame
				}
				for ph := 0; ph < jobNumPhases; ph++ {
					ns := tr.classNs[ph]
					if ph == int(tr.phase) {
						ns += int64(now - tr.phaseAt)
					}
					if ns == 0 {
						continue
					}
					node := int(tr.host)
					if ph >= jobPhaseQueueWait {
						node = opt.Hosts + int(tr.asu)
					}
					blame[ph*numNodes+node] += ns
				}
			}
			for i := 1; i <= opt.Deadlines; i++ {
				s.After(sim.Duration(i)*opt.Timeout, probe)
			}
			// A constant proc name: a per-job Sprintf would dominate the
			// workload's own allocation profile at 100k+ jobs.
			s.SpawnOn(host.Part, "job", func(jp *sim.Proc) {
				host.Compute(jp, opt.HostOps+cl.Touch(host))
				setPhase(id, jobPhaseNet, jp.Now())
				cl.Net.Send(jp, host.NIC, asu.NIC, 256)
				setPhase(id, jobPhaseQueueWait, jp.Now())
				if err := queues[asuIdx].Put(jp, openJob{id: id, arrival: arrival}); err != nil {
					panic(err)
				}
				delivered++
			})
			p.Sleep(sim.DurationOf(rng.ExpFloat64() / opt.Rate))
		}
		// Wait for the stragglers, then release the servers.
		for delivered < opt.Jobs {
			p.Sleep(sim.Millisecond)
		}
		for _, q := range queues {
			if err := q.Put(p, openJob{id: -1}); err != nil {
				panic(err)
			}
		}
	})

	if err := s.Run(); err != nil {
		return nil, err
	}
	cl.FinishSampling()

	res := &OpenLoopResult{
		Options:   opt,
		Completed: len(latencies),
		Misses:    misses,
		Elapsed:   sim.Duration(lastAt - firstAt),
	}
	sum := metrics.NewSummary(latencies)
	res.P50, res.P99, res.P999 = sum.P50(), sum.P99(), sum.Percentile(99.9)
	if res.Elapsed > 0 {
		res.Goodput = float64(res.Completed) / res.Elapsed.Seconds()
	}
	res.Report = cl.BuildReport("openloop", opt.Seed, res.Elapsed)
	res.Report.Workload = map[string]any{
		"program":  "openloop-churn",
		"jobs":     opt.Jobs,
		"rate":     opt.Rate,
		"zipf_s":   opt.ZipfS,
		"batch":    opt.Batch,
		"timeout":  int64(opt.Timeout),
		"misses":   misses,
		"p50_ns":   int64(res.P50),
		"p99_ns":   int64(res.P99),
		"p999_ns":  int64(res.P999),
		"goodput":  res.Goodput,
		"complete": res.Completed,
	}
	res.Report.SLO = buildSLO(cl, opt, res, good, horizonMiss, horizonBlame)
	if rec != nil {
		rec.Finish(res.Report)
	}
	return res, nil
}

// buildSLO assembles the deadline-ladder report section: per-horizon miss
// counts with a blame mix sorted by attributed time (descending, ties by
// class order then node name), so the dominant resource is first.
func buildSLO(cl *cluster.Cluster, opt OpenLoopOptions, res *OpenLoopResult,
	good int, horizonMiss []int64, horizonBlame []map[int]int64) *telemetry.SLOReport {
	slo := &telemetry.SLOReport{TimeoutNs: int64(opt.Timeout)}
	if res.Elapsed > 0 {
		slo.GoodputPerSec = float64(good) / res.Elapsed.Seconds()
	}
	numNodes := opt.Hosts + opt.ASUs
	nodeName := func(idx int) string {
		if idx < opt.Hosts {
			return cl.Hosts[idx].Name
		}
		return cl.ASUs[idx-opt.Hosts].Name
	}
	for i := 1; i <= opt.Deadlines; i++ {
		hz := telemetry.SLOHorizon{
			Horizon:    i,
			DeadlineNs: int64(sim.Duration(i) * opt.Timeout),
			Misses:     horizonMiss[i],
		}
		blame := horizonBlame[i]
		var total int64
		for _, ns := range blame {
			total += ns
		}
		for key, ns := range blame {
			hz.Blame = append(hz.Blame, telemetry.SLOBlame{
				Class: string(jobPhaseClass[key/numNodes]),
				Node:  nodeName(key % numNodes),
				Ns:    ns,
				Share: math.Round(float64(ns)/float64(total)*1e6) / 1e6,
			})
		}
		sort.Slice(hz.Blame, func(a, b int) bool {
			ba, bb := hz.Blame[a], hz.Blame[b]
			if ba.Ns != bb.Ns {
				return ba.Ns > bb.Ns
			}
			if ba.Class != bb.Class {
				return ba.Class < bb.Class
			}
			return ba.Node < bb.Node
		})
		if len(hz.Blame) > 0 {
			hz.Dominant = hz.Blame[0].Class
		}
		slo.Horizons = append(slo.Horizons, hz)
	}
	return slo
}
