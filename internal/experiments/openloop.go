package experiments

import (
	"fmt"
	"math/rand"

	"lmas/internal/cluster"
	"lmas/internal/metrics"
	"lmas/internal/sim"
	"lmas/internal/telemetry"
)

// OpenLoopOptions parameterizes TAB-CHURN's macro workload: an open-loop
// stream of short storage jobs arriving at the hosts regardless of service
// progress, each routed to a (Zipf-skewed) ASU, queued, and served in
// batches. Every job is a short-lived proc and arms a far-future timeout
// timer, so the workload exercises exactly the kernel paths the scheduler
// tier, proc recycling, and batched queue ops optimize — at tens of
// thousands of lifecycles and millions of in-flight events.
type OpenLoopOptions struct {
	Hosts int
	ASUs  int
	// Jobs is the total number of arrivals.
	Jobs int
	// Rate is the arrival rate in jobs per second of virtual time; the
	// exponential inter-arrival times make the stream Poisson.
	Rate float64
	// ZipfS skews the ASU choice (1 < s; higher = hotter head). 0 means
	// uniform.
	ZipfS float64
	// HostOps and ASUOps are the per-job CPU costs on each side.
	HostOps float64
	ASUOps  float64
	// ReadBytes is the per-job payload read from the ASU's disk.
	ReadBytes int
	// QueueCap bounds each ASU's job queue.
	QueueCap int
	// Batch is the server's maximum GetN drain per wakeup.
	Batch int
	// Timeout arms a far-future deadline per job; jobs still queued when it
	// fires count as SLO misses. The horizon is what pushes timer load into
	// the wheel's outer levels.
	Timeout sim.Duration
	// Deadlines arms one probe per horizon i*Timeout (i = 1..Deadlines) per
	// job — multi-horizon SLO tracking. Only the first probe counts misses;
	// the rest keep hundreds of thousands of far timers in flight, which is
	// the in-flight event load the scheduler tier is built to carry.
	Deadlines int
	Base      cluster.Params
	Seed      int64
}

// DefaultOpenLoopOptions sizes the workload so a run exercises every wheel
// level while finishing in well under a second of wall clock.
func DefaultOpenLoopOptions() OpenLoopOptions {
	return OpenLoopOptions{
		Hosts:     2,
		ASUs:      8,
		Jobs:      20000,
		Rate:      5e3,
		ZipfS:     1.3,
		HostOps:   200,
		ASUOps:    500,
		ReadBytes: 4 << 10,
		QueueCap:  256,
		Batch:     64,
		Timeout:   sim.Second,
		Deadlines: 10,
		Base:      cluster.DefaultParams(),
		Seed:      42,
	}
}

// OpenLoopResult holds one run's measurements.
type OpenLoopResult struct {
	Options   OpenLoopOptions
	Completed int
	// Misses counts jobs whose timeout fired before service finished.
	Misses int
	// Elapsed spans arrival of the first job to completion of the last;
	// the run itself extends further while leftover timeout timers drain.
	Elapsed        sim.Duration
	P50, P99, P999 sim.Duration
	// Goodput is completed jobs per second of Elapsed.
	Goodput float64
	Report  *telemetry.RunReport
}

// Table renders the headline numbers plus the scheduler counters that the
// run's report exports.
func (r *OpenLoopResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("TAB-CHURN: open-loop churn, %d jobs @ %.0f/s over %d hosts / %d ASUs",
			r.Options.Jobs, r.Options.Rate, r.Options.Hosts, r.Options.ASUs),
		"metric", "value")
	t.AddRow("completed", r.Completed)
	t.AddRow("SLO misses", r.Misses)
	t.AddRow("elapsed(s)", r.Elapsed.Seconds())
	t.AddRow("goodput(jobs/s)", r.Goodput)
	t.AddRow("p50(ms)", r.P50.Seconds()*1e3)
	t.AddRow("p99(ms)", r.P99.Seconds()*1e3)
	t.AddRow("p99.9(ms)", r.P999.Seconds()*1e3)
	for _, c := range r.Report.Counters {
		switch c.Name {
		case "sim.scheduler.wheel_hits", "sim.scheduler.heap_spills", "sim.scheduler.proc_reuses":
			t.AddRow(c.Name, c.Value)
		}
	}
	return t
}

type openJob struct {
	id      int
	arrival sim.Time
}

// RunOpenLoop executes the open-loop churn workload. The dispatch history is
// engine-independent: the generator is a single proc, every shared mutation
// happens inside dispatched events, and the report it builds must be
// byte-identical across the serial and parallel engines (CI cmps it).
func RunOpenLoop(opt OpenLoopOptions) (*OpenLoopResult, error) {
	params := opt.Base
	params.Hosts, params.ASUs = opt.Hosts, opt.ASUs
	cl := cluster.New(params)
	cl.AttachTelemetry(telemetry.NewRegistry(), 100*sim.Millisecond)
	s := cl.Sim

	queues := make([]*sim.Queue[openJob], opt.ASUs)
	for i := range queues {
		queues[i] = sim.NewQueue[openJob](s, fmt.Sprintf("asu%d.jobs", i), opt.QueueCap)
	}

	var (
		latencies = make([]sim.Duration, 0, opt.Jobs)
		completed = make([]bool, opt.Jobs)
		delivered = 0
		misses    = 0
		firstAt   sim.Time
		lastAt    sim.Time
	)

	// Per-ASU server: drain the queue in batches, charge CPU and disk per
	// job, and exit on the sentinel the generator enqueues after the last
	// delivery. FIFO order guarantees the sentinel is seen last.
	for i, asu := range cl.ASUs {
		i, asu := i, asu
		q := queues[i]
		s.SpawnOn(asu.Part, fmt.Sprintf("server@asu%d", i), func(p *sim.Proc) {
			batch := make([]openJob, opt.Batch)
			for {
				n, ok := q.GetN(p, batch)
				if !ok {
					return
				}
				for _, j := range batch[:n] {
					if j.id < 0 {
						return
					}
					// Reads stream sequentially per ASU (read-ahead credit
					// applies): the workload stresses the scheduler, not
					// seek time.
					asu.Compute(p, opt.ASUOps+cl.Touch(asu))
					if opt.ReadBytes > 0 {
						asu.Disk.Read(p, opt.ReadBytes)
					}
					completed[j.id] = true
					latencies = append(latencies, sim.Duration(p.Now()-j.arrival))
					lastAt = p.Now()
				}
			}
		})
	}

	// Open-loop generator: Poisson arrivals, Zipf ASU choice, one
	// short-lived proc per job. The rng is touched only here, so the
	// schedule is a pure function of the seed.
	s.Spawn("generator", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(opt.Seed))
		var zipf *rand.Zipf
		if opt.ZipfS > 1 {
			zipf = rand.NewZipf(rng, opt.ZipfS, 1, uint64(opt.ASUs-1))
		}
		firstAt = p.Now()
		for id := 0; id < opt.Jobs; id++ {
			id := id
			host := cl.Hosts[id%opt.Hosts]
			asuIdx := 0
			if zipf != nil {
				asuIdx = int(zipf.Uint64())
			} else {
				asuIdx = rng.Intn(opt.ASUs)
			}
			asu := cl.ASUs[asuIdx]
			arrival := p.Now()
			// SLO deadlines: a ladder of far-future probes per job,
			// cancel-by-flag. Only the first horizon counts misses.
			s.After(opt.Timeout, func() {
				if !completed[id] {
					misses++
				}
			})
			for i := 2; i <= opt.Deadlines; i++ {
				s.After(sim.Duration(i)*opt.Timeout, func() {})
			}
			// A constant proc name: a per-job Sprintf would dominate the
			// workload's own allocation profile at 100k+ jobs.
			s.SpawnOn(host.Part, "job", func(jp *sim.Proc) {
				host.Compute(jp, opt.HostOps+cl.Touch(host))
				cl.Net.Send(jp, host.NIC, asu.NIC, 256)
				if err := queues[asuIdx].Put(jp, openJob{id: id, arrival: arrival}); err != nil {
					panic(err)
				}
				delivered++
			})
			p.Sleep(sim.DurationOf(rng.ExpFloat64() / opt.Rate))
		}
		// Wait for the stragglers, then release the servers.
		for delivered < opt.Jobs {
			p.Sleep(sim.Millisecond)
		}
		for _, q := range queues {
			if err := q.Put(p, openJob{id: -1}); err != nil {
				panic(err)
			}
		}
	})

	if err := s.Run(); err != nil {
		return nil, err
	}

	res := &OpenLoopResult{
		Options:   opt,
		Completed: len(latencies),
		Misses:    misses,
		Elapsed:   sim.Duration(lastAt - firstAt),
	}
	sum := metrics.NewSummary(latencies)
	res.P50, res.P99, res.P999 = sum.P50(), sum.P99(), sum.Percentile(99.9)
	if res.Elapsed > 0 {
		res.Goodput = float64(res.Completed) / res.Elapsed.Seconds()
	}
	res.Report = cl.BuildReport("openloop", opt.Seed, res.Elapsed)
	res.Report.Workload = map[string]any{
		"program":  "openloop-churn",
		"jobs":     opt.Jobs,
		"rate":     opt.Rate,
		"zipf_s":   opt.ZipfS,
		"batch":    opt.Batch,
		"timeout":  int64(opt.Timeout),
		"misses":   misses,
		"p50_ns":   int64(res.P50),
		"p99_ns":   int64(res.P99),
		"p999_ns":  int64(res.P999),
		"goodput":  res.Goodput,
		"complete": res.Completed,
	}
	return res, nil
}
