package experiments

import (
	"testing"

	"lmas/internal/sim"
)

// smallOpenLoop keeps the unit-test run fast while still crossing the
// wheel's near/far threshold (1ms timeouts) and recycling procs.
func smallOpenLoop() OpenLoopOptions {
	opt := DefaultOpenLoopOptions()
	opt.Jobs = 2000
	opt.Timeout = 10 * sim.Millisecond
	return opt
}

func TestOpenLoopCompletes(t *testing.T) {
	res, err := RunOpenLoop(smallOpenLoop())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2000 {
		t.Errorf("completed %d jobs, want 2000", res.Completed)
	}
	if res.Goodput <= 0 || res.P99 <= 0 {
		t.Errorf("degenerate metrics: goodput=%v p99=%v", res.Goodput, res.P99)
	}
	var hits, spills, reuses int64 = -1, -1, -1
	for _, c := range res.Report.Counters {
		switch c.Name {
		case "sim.scheduler.wheel_hits":
			hits = c.Value
		case "sim.scheduler.heap_spills":
			spills = c.Value
		case "sim.scheduler.proc_reuses":
			reuses = c.Value
		}
	}
	// Every job's timeout is a far timer; every job past the warm-up is a
	// recycled proc. The counters must be present in the report and reflect
	// that.
	if hits < int64(res.Options.Jobs) {
		t.Errorf("wheel hits = %d, want >= %d", hits, res.Options.Jobs)
	}
	if spills < 0 {
		t.Errorf("heap spills counter missing")
	}
	if reuses < int64(res.Options.Jobs)/2 {
		t.Errorf("proc reuses = %d, want >= %d", reuses, res.Options.Jobs/2)
	}
}

// TestOpenLoopByteIdenticalAcrossEngines pins the open-loop workload's
// engine independence: the full result — latency percentiles, miss counts,
// and the complete RunReport with scheduler counters — must serialize
// identically on the serial engine and the parallel engine across worker
// and group configurations. CI repeats this check end-to-end through the
// asulab binary with cmp.
func TestOpenLoopByteIdenticalAcrossEngines(t *testing.T) {
	opt := smallOpenLoop()
	run := func(engine string, workers, groups int) string {
		o := opt
		o.Base.Engine, o.Base.EngineWorkers, o.Base.EngineGroups = engine, workers, groups
		res, err := RunOpenLoop(o)
		if err != nil {
			t.Fatal(err)
		}
		res.Options = OpenLoopOptions{}
		return mustJSON(t, res)
	}
	ref := run("serial", 0, 0)
	for _, v := range engineVariants {
		if got := run("parallel", v.workers, v.groups); got != ref {
			t.Errorf("%s: result differs from serial reference", v.name)
		}
	}
}
