package experiments

import (
	"fmt"

	"lmas/internal/cluster"
	"lmas/internal/dsmsort"
	"lmas/internal/metrics"
	"lmas/internal/records"
)

// PacketOptions parameterizes TAB-PACKET: how the packet size used on the
// interconnect trades message overhead against pipelining granularity
// ("the size of the packet may be limited by a memory bound on the
// ASU-resident sorting functor", Section 3.2).
type PacketOptions struct {
	N           int
	ASUs        int
	Alpha, Beta int
	Packets     []int
	Base        cluster.Params
	Seed        int64
}

// DefaultPacketOptions spans tiny (overhead-bound) to huge (bursty)
// packets.
func DefaultPacketOptions() PacketOptions {
	return PacketOptions{
		N:       1 << 18,
		ASUs:    16,
		Alpha:   16,
		Beta:    64,
		Packets: []int{4, 16, 64, 256, 1024},
		Base:    cluster.DefaultParams(),
		Seed:    42,
	}
}

// PacketCell is one packet size's measurements.
type PacketCell struct {
	PacketRecords int
	Pass1Secs     float64
	NetBytes      int64
	// OverheadFrac is header bytes over total interconnect bytes.
	OverheadFrac float64
}

// PacketResult holds the sweep.
type PacketResult struct {
	Options PacketOptions
	Cells   []PacketCell
}

// Table renders the sweep.
func (r *PacketResult) Table() *metrics.Table {
	t := metrics.NewTable("TAB-PACKET: interconnect packet-size sweep (active placement)",
		"packet(records)", "pass1(s)", "net(MB)", "header overhead")
	for _, c := range r.Cells {
		t.AddRow(c.PacketRecords, c.Pass1Secs, float64(c.NetBytes)/1e6,
			fmt.Sprintf("%.1f%%", 100*c.OverheadFrac))
	}
	return t
}

// RunPacket sweeps packet sizes over the active run-formation pass.
func RunPacket(opt PacketOptions) (*PacketResult, error) {
	res := &PacketResult{Options: opt}
	for _, pr := range opt.Packets {
		params := opt.Base
		params.Hosts, params.ASUs = 1, opt.ASUs
		cl := cluster.New(params)
		in := dsmsort.MakeInput(cl, opt.N, records.Uniform{}, opt.Seed, pr)
		cfg := dsmsort.Config{
			Alpha: opt.Alpha, Beta: opt.Beta, Gamma2: 2,
			PacketRecords: pr, Placement: dsmsort.Active, Seed: opt.Seed,
		}
		_, r, err := dsmsort.RunFormation(cl, cfg, in)
		if err != nil {
			return nil, fmt.Errorf("packet=%d: %w", pr, err)
		}
		payload := int64(2*opt.N) * int64(params.RecordSize) // in + out
		overhead := float64(r.NetBytes-payload) / float64(r.NetBytes)
		if overhead < 0 {
			overhead = 0
		}
		res.Cells = append(res.Cells, PacketCell{
			PacketRecords: pr,
			Pass1Secs:     r.Elapsed.Seconds(),
			NetBytes:      r.NetBytes,
			OverheadFrac:  overhead,
		})
	}
	return res, nil
}
