package experiments

import (
	"strings"
	"testing"
)

func TestPacketSweep(t *testing.T) {
	opt := DefaultPacketOptions()
	opt.N = 1 << 17
	opt.ASUs = 8
	opt.Packets = []int{4, 64, 1024}
	res, err := RunPacket(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	tiny, mid, huge := res.Cells[0], res.Cells[1], res.Cells[2]
	// Tiny packets pay more header overhead on the interconnect.
	if tiny.OverheadFrac <= mid.OverheadFrac {
		t.Errorf("4-record packets overhead %.3f <= 64-record %.3f",
			tiny.OverheadFrac, mid.OverheadFrac)
	}
	if tiny.NetBytes <= huge.NetBytes {
		t.Errorf("tiny packets moved fewer bytes: %d vs %d", tiny.NetBytes, huge.NetBytes)
	}
	// The mid-size packet should be at least as fast as either extreme
	// (tiny loses to per-packet costs, huge loses pipelining).
	if mid.Pass1Secs > tiny.Pass1Secs || mid.Pass1Secs > huge.Pass1Secs {
		t.Errorf("64-record packets (%.4fs) should not lose to 4 (%.4fs) or 1024 (%.4fs)",
			mid.Pass1Secs, tiny.Pass1Secs, huge.Pass1Secs)
	}
	if s := res.Table().String(); !strings.Contains(s, "packet(records)") {
		t.Errorf("table malformed:\n%s", s)
	}
}
