package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Experiment sweeps are embarrassingly parallel: every cell builds its own
// cluster, simulator, and telemetry registry, and shares no mutable state
// with its siblings (process-wide scratch pools are concurrency-safe).
// Running cells on a bounded worker pool therefore changes wall-clock time
// only; virtual-time results — and the bytes of every emitted report — are
// identical to a serial sweep, because each cell is a pure function of its
// spec and results are collected in cell order.

// Jobs resolves a parallelism knob: values < 1 mean one worker per
// available CPU, anything else is used as given.
func Jobs(j int) int {
	if j < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// runCells executes fn(i) for every i in [0, n) on up to jobs concurrent
// workers. fn must write its result into a caller-owned slot indexed by i.
// All cells run to completion even when some fail; the error returned is
// the first in cell order (not completion order), so failures are as
// deterministic as results.
func runCells(n, jobs int, fn func(i int) error) error {
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
