package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"testing"

	"lmas/internal/dsmsort"
	"lmas/internal/recorder"
	"lmas/internal/sim"
	"lmas/internal/telemetry"
	"lmas/internal/trace"
)

// recordSpec is a small cell used by the recording tests: big enough to
// produce several sampling intervals, small enough to keep the suite fast.
func recordSpec(name string) SortRunSpec {
	return SortRunSpec{
		Name:          name,
		N:             1 << 12,
		Hosts:         1,
		ASUs:          2,
		C:             8,
		Alpha:         4,
		Beta:          256,
		Gamma2:        4,
		PacketRecords: 64,
		Placement:     dsmsort.Active,
		Policy:        "static",
		Dist:          "uniform",
		Seed:          42,
	}
}

// TestRecordingNeutrality pins the acceptance criterion: attaching a
// recorder (store and live dashboard together) must leave the RunReport
// byte-identical to an unrecorded run. The recorder is a pure observer of
// the virtual-time trajectory.
func TestRecordingNeutrality(t *testing.T) {
	plain, _, err := RunSortReport(recordSpec("cell"))
	if err != nil {
		t.Fatal(err)
	}

	st, err := recorder.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	live := recorder.NewLive()
	spec := recordSpec("cell")
	spec.Record = recorder.Multi{st, live}
	spec.Experiment = "neutrality"
	spec.SampleEvery = 2 * sim.Millisecond
	recorded, _, err := RunSortReport(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}

	a, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(recorded)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("recording changed the report bytes:\nplain:    %s\nrecorded: %s", a, b)
	}

	// The observer did observe: the stored segment holds periodic samples,
	// load-manager-style decision events (if any fired), and the finished
	// report, reloadable byte-for-byte.
	runs, err := st.Select("neutrality")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("store has %d runs, want 1", len(runs))
	}
	if n := len(runs[0].Samples()); n < 2 {
		t.Fatalf("stored run has %d samples, want >= 2 (sampler never ticked?)", n)
	}
	stored := runs[0].Report()
	if stored == nil {
		t.Fatal("stored run has no finish report")
	}
	c, err := json.Marshal(stored)
	if err != nil {
		t.Fatal(err)
	}
	if string(c) != string(a) {
		t.Fatal("report reloaded from the store differs from the original")
	}
}

// TestPeriodicGaugeReconciliation pins the gauge sampler's contract: the
// per-interval node.<n>.cpu.busy_sec samples are cumulative and monotone,
// and the final sample reconciles with the report's own utilization series —
// the integral of util over the windows equals the last cumulative busy
// reading. Queue depth never exceeds its high-water mark.
func TestPeriodicGaugeReconciliation(t *testing.T) {
	spec := recordSpec("cell")
	spec.GaugeInterval = 2 * sim.Millisecond
	rep, _, err := RunSortReport(spec)
	if err != nil {
		t.Fatal(err)
	}

	gauges := map[string]telemetry.GaugeReport{}
	for _, g := range rep.Gauges {
		gauges[g.Name] = g
	}

	for _, node := range rep.Nodes {
		g, ok := gauges["node."+node.Name+".cpu.busy_sec"]
		if !ok {
			t.Fatalf("no periodic busy gauge for node %s", node.Name)
		}
		if len(g.Samples) < 2 {
			t.Fatalf("node %s: %d busy samples, want >= 2", node.Name, len(g.Samples))
		}
		for i := 1; i < len(g.Samples); i++ {
			if g.Samples[i].V < g.Samples[i-1].V {
				t.Fatalf("node %s: cumulative busy_sec not monotone at sample %d: %v -> %v",
					node.Name, i, g.Samples[i-1].V, g.Samples[i].V)
			}
		}
		if node.CPU == nil {
			continue
		}
		// Integral of the utilization series: util[i] * observed window width.
		var busy float64
		for i, u := range node.CPU.Util {
			winStart := float64(i) * node.CPU.WindowSec
			busy += u * (node.CPU.TS[i] - winStart)
		}
		final := g.Samples[len(g.Samples)-1].V
		if math.Abs(busy-final) > 1e-3 {
			t.Fatalf("node %s: util-series integral %.6f vs final busy_sec sample %.6f",
				node.Name, busy, final)
		}
	}

	sawQueue := false
	for name, g := range gauges {
		if !strings.HasPrefix(name, "queue.") || !strings.HasSuffix(name, ".depth") {
			continue
		}
		sawQueue = true
		// The high-water series holds the periodic samples plus possibly one
		// final value from the end-of-run telemetry flush; the periodic
		// prefix aligns index-for-index with the depth series.
		high := gauges[strings.TrimSuffix(name, ".depth")+".high_water"]
		if len(high.Samples) < len(g.Samples) {
			t.Fatalf("%s: %d depth vs %d high-water samples", name, len(g.Samples), len(high.Samples))
		}
		for i := range g.Samples {
			if g.Samples[i].V > high.Samples[i].V {
				t.Fatalf("%s sample %d: depth %v exceeds high water %v",
					name, i, g.Samples[i].V, high.Samples[i].V)
			}
		}
		for i := 1; i < len(high.Samples); i++ {
			if high.Samples[i].V < high.Samples[i-1].V {
				t.Fatalf("%s: high water not monotone at sample %d", name, i)
			}
		}
	}
	if !sawQueue {
		t.Fatal("no queue.*.depth gauges in the report — queue probes never registered")
	}

	// Off by default: the same spec without GaugeInterval has none of these.
	plain, _, err := RunSortReport(recordSpec("cell"))
	if err != nil {
		t.Fatal(err)
	}
	// (queue.*.high_water / .wait_sec exist in the baseline too — the final
	// telemetry flush writes them — so only the sampler-specific series count.)
	for _, g := range plain.Gauges {
		if strings.HasPrefix(g.Name, "node.") || strings.HasSuffix(g.Name, ".depth") {
			t.Fatalf("gauge %q present without GaugeInterval", g.Name)
		}
	}
}

// TestStoreDeterminism records the same cell twice into fresh stores and
// compares the segments below the header line byte for byte. Run IDs and
// wall-clock fields live only in the header, so everything under it is a
// pure function of the virtual-time run.
func TestStoreDeterminism(t *testing.T) {
	segment := func() []byte {
		t.Helper()
		dir := t.TempDir()
		st, err := recorder.OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		spec := recordSpec("cell")
		spec.Record = st
		spec.Experiment = "det"
		spec.SampleEvery = 2 * sim.Millisecond
		if _, _, err := RunSortReport(spec); err != nil {
			t.Fatal(err)
		}
		if err := st.Err(); err != nil {
			t.Fatal(err)
		}
		runs, err := st.Runs()
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) != 1 {
			t.Fatalf("%d segments, want 1", len(runs))
		}
		b, err := os.ReadFile(runs[0].Path)
		if err != nil {
			t.Fatal(err)
		}
		i := bytes.IndexByte(b, '\n')
		if i < 0 {
			t.Fatalf("segment has no header line")
		}
		return b[i+1:]
	}
	a, b := segment(), segment()
	if !bytes.Equal(a, b) {
		t.Fatalf("segments differ below the header (len %d vs %d)", len(a), len(b))
	}
}

// TestConcurrentRecording exercises shared store + live sinks from parallel
// sweep cells — the configuration `lmasreport bench -record -serve` runs —
// so `go test -race` covers the cross-goroutine recorder paths.
func TestConcurrentRecording(t *testing.T) {
	st, err := recorder.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	live := recorder.NewLive()
	sink := recorder.Multi{st, live}

	const cells = 3
	var wg sync.WaitGroup
	errs := make([]error, cells)
	for i := 0; i < cells; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := recordSpec(fmt.Sprintf("cell-%d", i))
			spec.Record = sink
			spec.Experiment = "race"
			spec.SampleEvery = 2 * sim.Millisecond
			_, _, errs[i] = RunSortReport(spec)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	runs, err := st.Select("race")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != cells {
		t.Fatalf("store has %d runs, want %d", len(runs), cells)
	}
	for _, run := range runs {
		if run.Report() == nil {
			t.Fatalf("run %s has no finish report", run.Header.RunID)
		}
	}
}

// TestTraceRecordingNeutrality extends the neutrality property to the trace
// streamer: a run with tracing attached AND streamed into a store produces a
// report byte-identical to the bare run, the stored segment holds the sink's
// spans, and re-recording yields byte-identical span streams (below the
// volatile header).
func TestTraceRecordingNeutrality(t *testing.T) {
	plain, _, err := RunSortReport(recordSpec("cell"))
	if err != nil {
		t.Fatal(err)
	}

	traced := func() (*telemetry.RunReport, []recorder.Span) {
		t.Helper()
		st, err := recorder.OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		spec := recordSpec("cell")
		spec.Trace = trace.New()
		spec.Record = st
		spec.Experiment = "trace-neutrality"
		spec.SampleEvery = 2 * sim.Millisecond
		rep, _, err := RunSortReport(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Err(); err != nil {
			t.Fatal(err)
		}
		runs, err := st.Runs()
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) != 1 {
			t.Fatalf("%d stored runs, want 1", len(runs))
		}
		if got, want := len(runs[0].Spans()), spec.Trace.Events(); got != want || got == 0 {
			t.Fatalf("stored %d spans, sink recorded %d events", got, want)
		}
		return rep, runs[0].Spans()
	}

	rep1, spans1 := traced()
	rep2, spans2 := traced()

	a, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep1)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("trace recording changed the report bytes:\nplain:  %s\ntraced: %s", a, b)
	}
	c, _ := json.Marshal(rep2)
	if string(b) != string(c) {
		t.Fatal("two traced runs disagree on the report")
	}

	s1, err := json.Marshal(spans1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := json.Marshal(spans2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatalf("span streams differ across recordings (%d vs %d bytes)", len(s1), len(s2))
	}
}
