package experiments

import (
	"fmt"

	"lmas/internal/cluster"
	"lmas/internal/critpath"
	"lmas/internal/dsmsort"
	"lmas/internal/loadmgr"
	"lmas/internal/recorder"
	"lmas/internal/route"
	"lmas/internal/sim"
	"lmas/internal/telemetry"
	"lmas/internal/trace"
)

// SortRunSpec names one fully parameterized DSM-Sort execution — the unit
// of the bench matrix and of `dsmsort -report`.
type SortRunSpec struct {
	Name          string
	N             int
	Hosts, ASUs   int
	C             float64
	Alpha, Beta   int
	Gamma2        int
	PacketRecords int
	Placement     dsmsort.Placement
	Policy        string // route.ByName vocabulary
	Dist          string // dsmsort.MakeInputNamed vocabulary
	Seed          int64
	// UtilWindow sets the report's utilization window (0 = 100ms default).
	UtilWindow sim.Duration
	// Critpath attaches the critical-path profiler and adds a latency
	// attribution section (with the Pass1Model prediction) to the report.
	Critpath bool
	// Engine/EngineWorkers/EngineGroups select the sim event-loop engine
	// (see cluster.Params). The choice never changes the report's bytes, so
	// it is deliberately absent from the Workload map.
	Engine        string
	EngineWorkers int
	EngineGroups  int
	// Record, when non-nil, streams the run into a recorder sink (store
	// and/or live dashboard): header at start, periodic samples and
	// decisions during the run, the finished report at the end. Recording
	// is a pure observer — the report's bytes are identical with or
	// without it.
	Record recorder.Sink
	// Trace, when non-nil, attaches a structured trace sink to the run.
	// With Record also set, every trace event additionally streams into the
	// recorder as a Span record. Tracing is a pure observer too: the
	// report's bytes are identical with or without it.
	Trace *trace.Sink
	// Experiment labels the run's store segment ("" = "adhoc").
	Experiment string
	// SampleEvery is the recorder's virtual-time sampling interval
	// (0 = 100ms). Only meaningful with Record set.
	SampleEvery sim.Duration
	// GaugeInterval, when positive, additionally emits the periodic
	// observations as report gauges (node.*.cpu.busy_sec, queue.*.depth /
	// .high_water). Off by default so baseline reports are unchanged.
	GaugeInterval sim.Duration
}

// RunSortReport executes spec with telemetry attached and returns the run
// report alongside the raw result. The input-loading phase runs before
// AttachTelemetry's traces see any activity it shouldn't; utilization
// series therefore cover load + sort, exactly what the simulator executed.
func RunSortReport(spec SortRunSpec) (*telemetry.RunReport, *dsmsort.Result, error) {
	params := cluster.DefaultParams()
	params.Hosts, params.ASUs, params.C = spec.Hosts, spec.ASUs, spec.C
	params.Engine, params.EngineWorkers, params.EngineGroups = spec.Engine, spec.EngineWorkers, spec.EngineGroups
	if err := params.Validate(); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	cl := cluster.New(params)
	cl.AttachTelemetry(telemetry.NewRegistry(), spec.UtilWindow)
	if spec.Trace != nil {
		cl.AttachTrace(spec.Trace)
	}
	if spec.Critpath {
		cl.AttachProfiler(critpath.New())
	}
	workload := map[string]any{
		"program":   "dsmsort",
		"n":         spec.N,
		"alpha":     spec.Alpha,
		"beta":      spec.Beta,
		"gamma2":    spec.Gamma2,
		"packet":    spec.PacketRecords,
		"placement": spec.Placement.String(),
		"policy":    spec.Policy,
		"dist":      spec.Dist,
	}
	var rec recorder.Recorder
	if spec.Record != nil {
		rec = spec.Record.NewRun()
		cfg := cl.Config()
		rec.Begin(&recorder.Header{
			Experiment: spec.Experiment,
			Name:       spec.Name,
			ConfigHash: recorder.ConfigHash(cfg, workload, spec.Seed),
			Seed:       spec.Seed,
			Config:     cfg,
			Workload:   workload,
		})
		cl.AttachRecorder(rec, spec.SampleEvery)
	}
	if spec.GaugeInterval > 0 {
		cl.AttachPeriodicGauges(spec.GaugeInterval)
	}

	in, err := dsmsort.MakeInputNamed(cl, spec.N, spec.Dist, spec.Seed, spec.PacketRecords)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	pol, err := route.ByName(spec.Policy, spec.Alpha, spec.Seed)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	cfg := dsmsort.Config{
		Alpha:         spec.Alpha,
		Beta:          spec.Beta,
		Gamma2:        spec.Gamma2,
		PacketRecords: spec.PacketRecords,
		Placement:     spec.Placement,
		SortPolicy:    pol,
		Seed:          spec.Seed,
	}
	res, err := dsmsort.Sort(cl, cfg, in)
	if err != nil {
		if rec != nil {
			cl.FinishSampling()
			rec.Finish(nil)
		}
		return nil, nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	cl.FinishSampling()
	rep := cl.BuildReport(spec.Name, spec.Seed, res.Elapsed)
	rep.Workload = workload
	if rep.Critpath != nil {
		if rates, ok := PredictRates(params, spec.Placement, spec.Alpha, spec.Beta); ok {
			cls, rate := rates.Bottleneck()
			rep.Critpath.SetPrediction(cls, rate)
		}
	}
	if rec != nil {
		rec.Finish(rep)
	}
	return rep, res, nil
}

// PredictRates is the Pass1Model rate decomposition for a placement, or
// ok=false when the analytic model does not cover it (hybrid migrates between
// placements mid-run).
func PredictRates(params cluster.Params, pl dsmsort.Placement, alpha, beta int) (loadmgr.Rates, bool) {
	m := loadmgr.Pass1Model{Params: params}
	switch pl {
	case dsmsort.Active:
		return m.ActiveRates(alpha, beta), true
	case dsmsort.Conventional:
		return m.ConventionalRates(alpha, beta), true
	default:
		return loadmgr.Rates{}, false
	}
}

// BenchMatrix is the standard DSM-Sort benchmark: the paper's placements
// crossed with the routing/workload combinations its figures hinge on —
// active vs conventional (Figure 9), static vs SR routing on the shifted
// workload (Figure 10), and the hybrid migrating placement. Quick shrinks
// the input for CI.
func BenchMatrix(quick bool, seed int64) []SortRunSpec {
	n := 1 << 17
	if quick {
		n = 1 << 14
	}
	base := func(name string) SortRunSpec {
		return SortRunSpec{
			Name:          name,
			N:             n,
			Hosts:         2,
			ASUs:          8,
			C:             8,
			Alpha:         16,
			Beta:          1 << 10,
			Gamma2:        16,
			PacketRecords: 64,
			Placement:     dsmsort.Active,
			Policy:        "static",
			Dist:          "uniform",
			Seed:          seed,
		}
	}
	active := base("active-static-uniform")
	activeHalves := base("active-static-halves")
	activeHalves.Dist = "halves"
	activeSR := base("active-sr-halves")
	activeSR.Policy = "sr"
	activeSR.Dist = "halves"
	conv := base("conventional-static-uniform")
	conv.Placement = dsmsort.Conventional
	hybrid := base("hybrid-static-uniform")
	hybrid.Placement = dsmsort.Hybrid
	return []SortRunSpec{active, activeHalves, activeSR, conv, hybrid}
}

// RunBench executes the bench matrix on up to jobs concurrent workers
// (jobs < 1 = one per CPU) and assembles a trajectory point. Cells are
// independent simulations, so the trajectory is byte-identical for every
// jobs value: results land in matrix order and progress is announced in
// matrix order (up front when running in parallel). The caller stamps
// GeneratedAt (wall-clock time stays out of this package so runs are
// reproducible byte for byte).
func RunBench(quick bool, seed int64, jobs int, progress func(spec SortRunSpec)) (*telemetry.Trajectory, error) {
	return RunBenchEngine(quick, seed, jobs, "", 0, progress)
}

// RunBenchEngine is RunBench with every cell running on the named sim engine
// (see sim.ParseEngineSpec; "" = serial). Engine choice only affects wall
// clock — the trajectory bytes are identical for every engine and worker
// count, which is exactly what the differential tests pin.
func RunBenchEngine(quick bool, seed int64, jobs int, engine string, workers int, progress func(spec SortRunSpec)) (*telemetry.Trajectory, error) {
	return RunBenchWith(BenchOptions{
		Quick: quick, Seed: seed, Jobs: jobs,
		Engine: engine, EngineWorkers: workers, Progress: progress,
	})
}

// BenchOptions parameterizes a bench-matrix execution.
type BenchOptions struct {
	Quick         bool
	Seed          int64
	Jobs          int
	Engine        string
	EngineWorkers int
	EngineGroups  int
	// Record streams every cell into the sink (each cell is its own run);
	// Experiment and SampleEvery are passed through to the cells' specs.
	Record      recorder.Sink
	Experiment  string
	SampleEvery sim.Duration
	Progress    func(spec SortRunSpec)
}

// RunBenchWith executes the bench matrix under opt. Recording never changes
// the trajectory's bytes.
func RunBenchWith(opt BenchOptions) (*telemetry.Trajectory, error) {
	quick, progress := opt.Quick, opt.Progress
	tr := &telemetry.Trajectory{Schema: telemetry.TrajectorySchema, Quick: quick}
	specs := BenchMatrix(quick, opt.Seed)
	for i := range specs {
		specs[i].Engine = opt.Engine
		specs[i].EngineWorkers = opt.EngineWorkers
		specs[i].EngineGroups = opt.EngineGroups
		specs[i].Record = opt.Record
		specs[i].Experiment = opt.Experiment
		specs[i].SampleEvery = opt.SampleEvery
	}
	if progress != nil {
		for _, spec := range specs {
			progress(spec)
		}
	}
	reps := make([]*telemetry.RunReport, len(specs))
	err := runCells(len(specs), opt.Jobs, func(i int) error {
		rep, _, err := RunSortReport(specs[i])
		reps[i] = rep
		return err
	})
	if err != nil {
		return nil, err
	}
	tr.Runs = reps
	return tr, nil
}
