package experiments

import (
	"bytes"
	"testing"

	"lmas/internal/cluster"
	"lmas/internal/dsmsort"
	"lmas/internal/route"
	"lmas/internal/telemetry"
)

func smallSpec() SortRunSpec {
	return SortRunSpec{
		Name:          "small",
		N:             1 << 12,
		Hosts:         1,
		ASUs:          4,
		C:             8,
		Alpha:         8,
		Beta:          256,
		Gamma2:        8,
		PacketRecords: 64,
		Placement:     dsmsort.Active,
		Policy:        "sr", // randomized, so determinism is a real claim
		Dist:          "halves",
		Seed:          42,
	}
}

// TestRunReportByteIdentical: the same spec and seed must produce the same
// JSON, byte for byte — the property `lmasreport diff` and the CI gate rely
// on.
func TestRunReportByteIdentical(t *testing.T) {
	run := func() []byte {
		rep, _, err := RunSortReport(smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		b, err := telemetry.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("reports differ between identical runs:\n%.2000s\n---\n%.2000s", a, b)
	}
}

// TestRunBenchParallelByteIdentical pins the sweep determinism contract:
// the full bench trajectory must be byte-identical whether cells run
// serially or on the worker pool, because each cell is an independent
// simulation and results are collected in matrix order.
func TestRunBenchParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick bench matrix twice")
	}
	run := func(jobs int) []byte {
		tr, err := RunBench(true, 42, jobs, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := telemetry.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial, parallel := run(1), run(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("trajectory differs between -j 1 and -j 4:\n%.2000s\n---\n%.2000s",
			serial, parallel)
	}
}

// TestTelemetryDoesNotPerturbTiming: attaching a registry must leave the
// simulated completion time of a run unchanged — telemetry observes, it
// never participates.
func TestTelemetryDoesNotPerturbTiming(t *testing.T) {
	run := func(attach bool) (elapsed float64) {
		spec := smallSpec()
		params := cluster.DefaultParams()
		params.Hosts, params.ASUs, params.C = spec.Hosts, spec.ASUs, spec.C
		cl := cluster.New(params)
		if attach {
			cl.AttachTelemetry(telemetry.NewRegistry(), 0)
		}
		in, err := dsmsort.MakeInputNamed(cl, spec.N, spec.Dist, spec.Seed, spec.PacketRecords)
		if err != nil {
			t.Fatal(err)
		}
		pol, err := route.ByName(spec.Policy, spec.Alpha, spec.Seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg := dsmsort.Config{
			Alpha:         spec.Alpha,
			Beta:          spec.Beta,
			Gamma2:        spec.Gamma2,
			PacketRecords: spec.PacketRecords,
			Placement:     spec.Placement,
			SortPolicy:    pol,
			Seed:          spec.Seed,
		}
		res, err := dsmsort.Sort(cl, cfg, in)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed.Seconds()
	}
	with, without := run(true), run(false)
	if with != without {
		t.Fatalf("telemetry changed simulated time: %v with, %v without", with, without)
	}
}

// TestRunSortReportContents sanity-checks the snapshot: utilization for
// every node, the stage instruments, routing counters, and workload echo.
func TestRunSortReportContents(t *testing.T) {
	rep, res, err := RunSortReport(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rep.RuntimeNs != int64(res.Elapsed) {
		t.Fatalf("runtime mismatch: %d vs %d", rep.RuntimeNs, int64(res.Elapsed))
	}
	if len(rep.Nodes) != 5 { // 1 host + 4 ASUs
		t.Fatalf("nodes = %d", len(rep.Nodes))
	}
	for _, n := range rep.Nodes {
		if n.CPU == nil {
			t.Fatalf("node %s has no CPU series", n.Name)
		}
		if n.Kind == "asu" && n.Disk == nil {
			t.Fatalf("ASU %s has no disk series", n.Name)
		}
	}
	counters := map[string]int64{}
	for _, c := range rep.Counters {
		counters[c.Name] = c.Value
	}
	if counters["functor.distribute.records"] != int64(smallSpec().N) {
		t.Fatalf("distribute records = %d, want %d",
			counters["functor.distribute.records"], smallSpec().N)
	}
	if counters["dsmsort.pass1.runs"] == 0 {
		t.Fatal("pass1 runs counter missing")
	}
	// The Counted wrapper records per-sorter routing picks.
	var picks int64
	for name, v := range counters {
		if len(name) > 11 && name[:11] == "route.sort." {
			picks += v
		}
	}
	if picks == 0 {
		t.Fatal("no routing pick counters recorded")
	}
	var seenWait bool
	for _, h := range rep.Histograms {
		if h.Name == "functor.blocksort.queue_wait" && h.Count > 0 {
			seenWait = true
		}
	}
	if !seenWait {
		t.Fatal("blocksort queue-wait histogram empty")
	}
	if rep.Workload["dist"] != "halves" {
		t.Fatalf("workload echo wrong: %+v", rep.Workload)
	}
}

// TestAdaptDecisionAudit: the adaptive strategy must log the imbalance
// trigger and the resulting policy switch.
func TestAdaptDecisionAudit(t *testing.T) {
	opt := DefaultAdaptOptions()
	opt.N = 1 << 14
	cell, err := runAdaptCell(opt, "adaptive")
	if err != nil {
		t.Fatal(err)
	}
	if !(cell.SwitchedAt > 0) {
		t.Skip("adaptation did not fire at this size; audit not exercised")
	}
	var sawTrigger, sawSwitch bool
	for _, d := range cell.Decisions {
		switch d.Source {
		case "loadmgr.imbalance-watch":
			sawTrigger = true
			if len(d.Readings) < 2 {
				t.Fatalf("trigger decision has no utilization readings: %+v", d)
			}
		case "route.blocksort":
			sawSwitch = true
			if d.Detail != "static->sr" {
				t.Fatalf("switch detail = %q", d.Detail)
			}
		}
	}
	if !sawTrigger || !sawSwitch {
		t.Fatalf("audit incomplete (trigger=%v switch=%v): %+v", sawTrigger, sawSwitch, cell.Decisions)
	}
}
