package experiments

import (
	"fmt"

	"lmas/internal/cluster"
	"lmas/internal/dsmsort"
	"lmas/internal/loadmgr"
	"lmas/internal/metrics"
	"lmas/internal/records"
	"lmas/internal/route"
	"lmas/internal/sim"
)

// CRatioOptions parameterizes the host/ASU power-ratio sensitivity table
// (TAB-C). The paper simulates "ASUs with performance scaled to give
// c = 4, 8"; this table shows how the Figure 9 speedups shift with c.
type CRatioOptions struct {
	N             int
	ASUs          []int
	Alpha         int
	Beta          int
	PacketRecords int
	Cs            []float64
	Base          cluster.Params
	Seed          int64
}

// DefaultCRatioOptions mirrors the paper's two ratios.
func DefaultCRatioOptions() CRatioOptions {
	return CRatioOptions{
		N:             1 << 17,
		ASUs:          []int{2, 4, 8, 16, 32},
		Alpha:         64,
		Beta:          64,
		PacketRecords: 32,
		Cs:            []float64{4, 8},
		Base:          cluster.DefaultParams(),
		Seed:          42,
	}
}

// CRatioCell is one measured point of TAB-C.
type CRatioCell struct {
	C       float64
	ASUs    int
	Speedup float64
}

// CRatioResult holds the grid.
type CRatioResult struct {
	Options CRatioOptions
	Cells   []CRatioCell
}

// Cell looks up a measured point.
func (r *CRatioResult) Cell(c float64, asus int) (CRatioCell, bool) {
	for _, cell := range r.Cells {
		if cell.C == c && cell.ASUs == asus {
			return cell, true
		}
	}
	return CRatioCell{}, false
}

// Table renders the grid: rows are ASU counts, one speedup column per c.
func (r *CRatioResult) Table() *metrics.Table {
	headers := []string{"ASUs"}
	for _, c := range r.Options.Cs {
		headers = append(headers, fmt.Sprintf("speedup(c=%g)", c))
	}
	t := metrics.NewTable(
		fmt.Sprintf("TAB-C: power-ratio sensitivity (alpha=%d)", r.Options.Alpha), headers...)
	for _, d := range r.Options.ASUs {
		row := []any{d}
		for _, c := range r.Options.Cs {
			if cell, ok := r.Cell(c, d); ok {
				row = append(row, cell.Speedup)
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// RunCRatio measures active-vs-conventional speedup across power ratios:
// stronger ASUs (smaller c) reach the crossover with fewer units.
func RunCRatio(opt CRatioOptions) (*CRatioResult, error) {
	res := &CRatioResult{Options: opt}
	for _, c := range opt.Cs {
		for _, d := range opt.ASUs {
			params := opt.Base
			params.Hosts = 1
			params.ASUs = d
			params.C = c
			sp, err := measureSpeedup(params, opt.N, opt.Alpha, opt.Beta, opt.PacketRecords, opt.Seed)
			if err != nil {
				return nil, fmt.Errorf("cratio c=%g d=%d: %w", c, d, err)
			}
			res.Cells = append(res.Cells, CRatioCell{C: c, ASUs: d, Speedup: sp})
		}
	}
	return res, nil
}

// measureSpeedup times one active and one conventional run-formation pass
// and returns baseline/active.
func measureSpeedup(params cluster.Params, n, alpha, beta, packet int, seed int64) (float64, error) {
	measure := func(placement dsmsort.Placement) (float64, error) {
		cl := cluster.New(params)
		in := dsmsort.MakeInput(cl, n, records.Uniform{}, seed, packet)
		cfg := dsmsort.Config{
			Alpha: alpha, Beta: beta, Gamma2: 2,
			PacketRecords: packet, Placement: placement, Seed: seed,
		}
		_, r, err := dsmsort.RunFormation(cl, cfg, in)
		if err != nil {
			return 0, err
		}
		return r.Elapsed.Seconds(), nil
	}
	base, err := measure(dsmsort.Conventional)
	if err != nil {
		return 0, err
	}
	act, err := measure(dsmsort.Active)
	if err != nil {
		return 0, err
	}
	return base / act, nil
}

// GammaOptions parameterizes the merge-split table (TAB-GAMMA): how the
// division of the γ-way merge between ASUs (γ2) and hosts (γ1) balances
// the merge pass. Smaller γ2 forces extra local merge levels on the ASUs;
// larger γ2 does the reduction in one level.
type GammaOptions struct {
	N             int
	Hosts, ASUs   int
	Alpha, Beta   int
	PacketRecords int
	Gamma2s       []int
	Base          cluster.Params
	Seed          int64
}

// DefaultGammaOptions covers one to several local merge levels.
func DefaultGammaOptions() GammaOptions {
	return GammaOptions{
		N:             1 << 16,
		Hosts:         1,
		ASUs:          8,
		Alpha:         8,
		Beta:          64,
		PacketRecords: 64,
		Gamma2s:       []int{2, 4, 8, 16, 32},
		Base:          cluster.DefaultParams(),
		Seed:          42,
	}
}

// GammaCell is one measured merge configuration.
type GammaCell struct {
	Gamma2      int
	MergeSecs   float64
	MergeLevels int
	HostOps     float64
	ASUOps      float64
}

// GammaResult holds the sweep.
type GammaResult struct {
	Options GammaOptions
	Cells   []GammaCell
}

// Table renders the sweep.
func (r *GammaResult) Table() *metrics.Table {
	t := metrics.NewTable("TAB-GAMMA: merge split between ASUs and hosts",
		"gamma2", "merge(s)", "asu-levels", "hostMops", "asuMops")
	for _, c := range r.Cells {
		t.AddRow(c.Gamma2, c.MergeSecs, c.MergeLevels, c.HostOps/1e6, c.ASUOps/1e6)
	}
	return t
}

// RunGamma sweeps γ2, timing the merge pass over identical run stores.
func RunGamma(opt GammaOptions) (*GammaResult, error) {
	res := &GammaResult{Options: opt}
	for _, g2 := range opt.Gamma2s {
		params := opt.Base
		params.Hosts = opt.Hosts
		params.ASUs = opt.ASUs
		cl := cluster.New(params)
		in := dsmsort.MakeInput(cl, opt.N, records.Uniform{}, opt.Seed, opt.PacketRecords)
		cfg := dsmsort.Config{
			Alpha: opt.Alpha, Beta: opt.Beta, Gamma2: g2,
			PacketRecords: opt.PacketRecords, Placement: dsmsort.Active, Seed: opt.Seed,
		}
		rs, _, err := dsmsort.RunFormation(cl, cfg, in)
		if err != nil {
			return nil, fmt.Errorf("gamma g2=%d pass1: %w", g2, err)
		}
		out, mr, err := dsmsort.MergePass(cl, cfg, rs)
		if err != nil {
			return nil, fmt.Errorf("gamma g2=%d merge: %w", g2, err)
		}
		if err := out.Validate(in, cfg.Alpha); err != nil {
			return nil, fmt.Errorf("gamma g2=%d validate: %w", g2, err)
		}
		res.Cells = append(res.Cells, GammaCell{
			Gamma2:      g2,
			MergeSecs:   mr.Elapsed.Seconds(),
			MergeLevels: mr.ASUMergeLevels,
			HostOps:     mr.HostOps,
			ASUOps:      mr.ASUOps,
		})
	}
	return res, nil
}

// RoutingOptions parameterizes the routing ablation (TAB-ROUTE): the
// Figure 10 workload under every routing policy.
type RoutingOptions struct {
	N             int
	Hosts, ASUs   int
	Alpha, Beta   int
	PacketRecords int
	Policies      []string
	Window        sim.Duration
	SkewMean      float64
	Base          cluster.Params
	Seed          int64
}

// DefaultRoutingOptions uses the Figure 10 cluster.
func DefaultRoutingOptions() RoutingOptions {
	f10 := DefaultFig10Options()
	return RoutingOptions{
		N:             f10.N,
		Hosts:         f10.Hosts,
		ASUs:          f10.ASUs,
		Alpha:         f10.Alpha,
		Beta:          f10.Beta,
		PacketRecords: f10.PacketRecords,
		Policies:      []string{"static", "round-robin", "sr", "load-aware"},
		Window:        f10.Window,
		SkewMean:      f10.SkewMean,
		Base:          f10.Base,
		Seed:          f10.Seed,
	}
}

// RoutingCell is one policy's measured outcome.
type RoutingCell struct {
	Policy    string
	Elapsed   sim.Duration
	Imbalance float64
}

// RoutingResult holds the ablation.
type RoutingResult struct {
	Options RoutingOptions
	Cells   []RoutingCell
}

// Table renders the ablation.
func (r *RoutingResult) Table() *metrics.Table {
	t := metrics.NewTable("TAB-ROUTE: routing policies under skew",
		"policy", "elapsed(s)", "imbalance")
	for _, c := range r.Cells {
		t.AddRow(c.Policy, c.Elapsed.Seconds(), c.Imbalance)
	}
	return t
}

// RunRouting measures every policy on the skewed Figure 10 workload.
func RunRouting(opt RoutingOptions) (*RoutingResult, error) {
	res := &RoutingResult{Options: opt}
	for _, name := range opt.Policies {
		policy, err := route.ByName(name, opt.Alpha, opt.Seed)
		if err != nil {
			return nil, err
		}
		params := opt.Base
		params.Hosts = opt.Hosts
		params.ASUs = opt.ASUs
		params.UtilWindow = opt.Window
		cl := cluster.New(params)
		in := dsmsort.MakeInputHalves(cl, opt.N, records.Uniform{},
			records.Exponential{Mean: opt.SkewMean}, opt.Seed, opt.PacketRecords)
		cfg := dsmsort.Config{
			Alpha: opt.Alpha, Beta: opt.Beta, Gamma2: 2,
			PacketRecords: opt.PacketRecords, Placement: dsmsort.Active,
			SortPolicy: policy, Seed: opt.Seed,
		}
		_, r1, err := dsmsort.RunFormation(cl, cfg, in)
		if err != nil {
			return nil, fmt.Errorf("routing %s: %w", name, err)
		}
		var traces []*metrics.UtilTrace
		for _, h := range cl.Hosts {
			traces = append(traces, h.CPUTrace)
		}
		res.Cells = append(res.Cells, RoutingCell{
			Policy:    name,
			Elapsed:   r1.Elapsed,
			Imbalance: loadmgr.Imbalance(traces, int(r1.Elapsed/sim.Duration(opt.Window))),
		})
	}
	return res, nil
}
