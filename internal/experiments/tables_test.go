package experiments

import (
	"strings"
	"testing"

	"lmas/internal/sim"
)

func TestCRatioShape(t *testing.T) {
	opt := DefaultCRatioOptions()
	opt.N = 1 << 15
	opt.ASUs = []int{4, 16}
	res, err := RunCRatio(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Stronger ASUs (c=4) must beat weaker ones (c=8) at the same count
	// while ASUs are the bottleneck.
	c4, _ := res.Cell(4, 4)
	c8, _ := res.Cell(8, 4)
	if c4.Speedup <= c8.Speedup {
		t.Errorf("c=4 speedup %.3f <= c=8 speedup %.3f at 4 ASUs", c4.Speedup, c8.Speedup)
	}
	// More ASUs help at both ratios.
	c4b, _ := res.Cell(4, 16)
	if c4b.Speedup <= c4.Speedup {
		t.Errorf("c=4: speedup did not grow with ASUs: %.3f -> %.3f", c4.Speedup, c4b.Speedup)
	}
	if s := res.Table().String(); !strings.Contains(s, "speedup(c=4)") {
		t.Errorf("table malformed:\n%s", s)
	}
}

func TestGammaSweep(t *testing.T) {
	opt := DefaultGammaOptions()
	opt.N = 1 << 14
	opt.Gamma2s = []int{2, 16}
	res, err := RunGamma(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	small, big := res.Cells[0], res.Cells[1]
	// Tiny gamma2 needs more local levels and more ASU work.
	if small.MergeLevels <= big.MergeLevels {
		t.Errorf("gamma2=2 levels %d <= gamma2=16 levels %d", small.MergeLevels, big.MergeLevels)
	}
	if small.ASUOps <= big.ASUOps {
		t.Errorf("gamma2=2 ASU ops %.0f <= gamma2=16 %.0f", small.ASUOps, big.ASUOps)
	}
	if s := res.Table().String(); !strings.Contains(s, "gamma2") {
		t.Errorf("table malformed:\n%s", s)
	}
}

func TestRoutingAblation(t *testing.T) {
	opt := DefaultRoutingOptions()
	opt.N = 1 << 16
	opt.Window = 25 * sim.Millisecond
	res, err := RunRouting(opt)
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string]RoutingCell{}
	for _, c := range res.Cells {
		cells[c.Policy] = c
	}
	if len(cells) != 4 {
		t.Fatalf("got %d policies", len(cells))
	}
	// Every dynamic policy must beat static on imbalance under skew.
	for _, name := range []string{"round-robin", "sr", "load-aware"} {
		if cells[name].Imbalance >= cells["static"].Imbalance {
			t.Errorf("%s imbalance %.3f >= static %.3f",
				name, cells[name].Imbalance, cells["static"].Imbalance)
		}
		if cells[name].Elapsed > cells["static"].Elapsed {
			t.Errorf("%s slower than static: %v vs %v",
				name, cells[name].Elapsed, cells["static"].Elapsed)
		}
	}
	if s := res.Table().String(); !strings.Contains(s, "load-aware") {
		t.Errorf("table malformed:\n%s", s)
	}
}
