// Package extsort implements the classic host-only external mergesort of
// the I/O-efficient algorithms literature (Section 2.1): form N/M sorted
// runs of memory size M, then merge them k ways per pass. It is the
// conventional-storage reference point for DSM-Sort — all computation on
// one host, storage units streaming raw blocks — and the sort TerraFlow
// falls back to without active storage.
//
// "Mergesort forms N/k sorted runs of size k = M (consuming
// N/k · k log k = N log k work) and then merges the N/M runs (consuming
// N log(N/k) additional work), for a total of N log k + N log(N/k)
// = N log N work."
package extsort

import (
	"container/heap"
	"fmt"
	"math"

	"lmas/internal/bte"
	"lmas/internal/cluster"
	"lmas/internal/container"
	"lmas/internal/dsmsort"
	"lmas/internal/records"
	"lmas/internal/sim"
)

// Config parameterizes the external mergesort.
type Config struct {
	// MemRecords is the run-formation memory M, in records.
	MemRecords int
	// FanIn is the merge arity k per pass.
	FanIn int
}

// Validate checks the configuration against the cluster's host memory.
func (c Config) Validate(p cluster.Params) error {
	switch {
	case c.MemRecords < 1:
		return fmt.Errorf("extsort: memory must be >= 1 record")
	case c.FanIn < 2:
		return fmt.Errorf("extsort: fan-in must be >= 2")
	case c.MemRecords > p.HostMemRecords:
		return fmt.Errorf("extsort: memory %d exceeds host memory %d", c.MemRecords, p.HostMemRecords)
	case c.FanIn > c.MemRecords:
		return fmt.Errorf("extsort: fan-in %d exceeds memory %d records", c.FanIn, c.MemRecords)
	}
	return nil
}

// Result reports a completed sort.
type Result struct {
	Elapsed sim.Duration
	// RunFormationSecs / MergeSecs split the elapsed time by phase.
	RunFormationSecs, MergeSecs float64
	// Runs is the number of initial sorted runs (≈ N/M).
	Runs int
	// MergePasses is the number of merge passes (≈ log_k(N/M)).
	MergePasses int
	// HostOps is the total CPU work charged to the host.
	HostOps float64
	// Output is the final sorted stream (nil for empty input).
	Output *container.Stream
}

// PredictedPasses is the textbook pass count: ceil(log_k(ceil(N/M))).
func PredictedPasses(n, m, k int) int {
	runs := (n + m - 1) / m
	if runs <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log(float64(runs)) / math.Log(float64(k))))
}

// Sort sorts in on the cluster's first host using conventional storage:
// records stream from the (dumb) storage units to the host and back, runs
// round-robin across the units. The sorted result is validated before
// return.
func Sort(cl *cluster.Cluster, cfg Config, in *dsmsort.Input) (*Result, error) {
	if err := cfg.Validate(cl.Params); err != nil {
		return nil, err
	}
	host := cl.Hosts[0]
	recSize := cl.Params.RecordSize
	cm := cl.Params.Costs
	touch := cl.Touch(host)
	res := &Result{}

	// Runs live striped across the storage units.
	engines := make([]*bte.DiskEngine, len(cl.ASUs))
	for i, asu := range cl.ASUs {
		engines[i] = bte.NewDisk(asu.Disk)
	}
	var runs []*container.Stream
	stripe := 0
	newRun := func() *container.Stream {
		i := stripe % len(engines)
		stripe++
		st := container.NewStream(fmt.Sprintf("xrun%d", len(runs)), engines[i], recSize)
		runs = append(runs, st)
		return st
	}
	nicOf := func(st *container.Stream) int {
		// Recover which unit a run lives on from its engine.
		for i, e := range engines {
			if st.Engine() == e {
				return i
			}
		}
		panic("extsort: run on unknown engine")
	}

	start := cl.Sim.Now()
	var formationEnd sim.Time
	cl.Sim.Spawn("extsort", func(p *sim.Proc) {
		// Phase 1: run formation. Scan the input sets round-robin so
		// all disks stream concurrently; accumulate M records, sort,
		// write the run back.
		scans := make([]*container.Scan, len(in.Sets))
		for i, set := range in.Sets {
			scans[i] = set.Scan(i, false)
		}
		mem := records.NewBuffer(cfg.MemRecords, recSize)
		fill := 0
		flushRun := func() {
			if fill == 0 {
				return
			}
			// Pooled copy: ownership transfers into the run stream's engine.
			buf := mem.Slice(0, fill).ClonePooled()
			ops := float64(fill) * (touch + log2f(fill)*cm.CompareOps)
			res.HostOps += ops
			host.Compute(p, ops)
			buf.Sort()
			st := newRun()
			dst := nicOf(st)
			cl.Net.Stream(p, host.NIC, cl.ASUs[dst].NIC, buf.Bytes()+64)
			st.Append(p, container.Packet{Buf: buf, Sorted: true, Bucket: -1, Run: len(runs)})
			fill = 0
		}
		live := len(scans)
		for live > 0 {
			live = 0
			for i, sc := range scans {
				if sc == nil {
					continue
				}
				pk, ok := sc.Next(p)
				if !ok {
					scans[i] = nil
					continue
				}
				live++
				// Stream the packet host-ward.
				cl.Net.Stream(p, cl.ASUs[i].NIC, host.NIC, pk.Bytes()+64)
				n := pk.Len()
				for r := 0; r < n; r++ {
					copy(mem.Record(fill), pk.Buf.Record(r))
					fill++
					if fill == cfg.MemRecords {
						flushRun()
					}
				}
			}
		}
		flushRun()
		res.Runs = len(runs)
		formationEnd = p.Now()

		// Phase 2: k-way merge passes until one run remains.
		for len(runs) > 1 {
			res.MergePasses++
			var next []*container.Stream
			for lo := 0; lo < len(runs); lo += cfg.FanIn {
				hi := lo + cfg.FanIn
				if hi > len(runs) {
					hi = len(runs)
				}
				next = append(next, mergeRuns(cl, p, host, runs[lo:hi], engines, &stripe, res, cfg))
			}
			runs = next
		}
	})
	if err := cl.Sim.Run(); err != nil {
		return nil, fmt.Errorf("extsort: %w", err)
	}
	res.Elapsed = sim.Duration(cl.Sim.Now() - start)
	res.RunFormationSecs = sim.Duration(formationEnd - start).Seconds()
	res.MergeSecs = res.Elapsed.Seconds() - res.RunFormationSecs

	// Validate: single sorted run containing the input multiset.
	if len(runs) == 0 {
		if in.N != 0 {
			return nil, fmt.Errorf("extsort: no output for %d records", in.N)
		}
		return res, nil
	}
	var sum records.Checksum
	var total int
	sorted := true
	var last records.Key
	haveLast := false
	runs[0].ForEach(func(pk container.Packet) bool {
		sum.Add(pk.Buf)
		total += pk.Len()
		if !pk.Buf.IsSorted() {
			sorted = false
			return false
		}
		if pk.Len() > 0 {
			if haveLast && pk.Buf.Key(0) < last {
				sorted = false
				return false
			}
			last = pk.Buf.Key(pk.Len() - 1)
			haveLast = true
		}
		return true
	})
	if !sorted {
		return nil, fmt.Errorf("extsort: output not sorted")
	}
	if total != in.N || !sum.Equal(in.Checksum) {
		return nil, fmt.Errorf("extsort: output %d records, checksum mismatch", total)
	}
	res.Output = runs[0]
	return res, nil
}

// mergeRuns merges a group of runs into one new run on the host, streaming
// packets from and to the storage units.
func mergeRuns(cl *cluster.Cluster, p *sim.Proc, host *cluster.Node, group []*container.Stream, engines []*bte.DiskEngine, stripe *int, res *Result, cfg Config) *container.Stream {
	recSize := cl.Params.RecordSize
	cm := cl.Params.Costs
	touch := cl.Touch(host)

	// Load the group's packets as cursors (reads charge the source
	// disks; transfers charge the interconnect).
	type cursor struct {
		bufs []records.Buffer
		pk   int
		pos  int
	}
	cursors := make([]cursor, len(group))
	for i, st := range group {
		src := -1
		for e, eng := range engines {
			if st.Engine() == eng {
				src = e
			}
		}
		sc := st.Scan()
		for {
			pk, ok := sc.Next(p)
			if !ok {
				break
			}
			cl.Net.Stream(p, cl.ASUs[src].NIC, host.NIC, pk.Bytes()+64)
			cursors[i].bufs = append(cursors[i].bufs, pk.Buf)
		}
	}
	var h cursorHeap
	key := func(c *cursor) records.Key { return c.bufs[c.pk].Key(c.pos) }
	for i := range cursors {
		if len(cursors[i].bufs) > 0 && cursors[i].bufs[0].Len() > 0 {
			h = append(h, cursorItem{key: key(&cursors[i]), src: i})
		}
	}
	heap.Init(&h)
	total := 0
	for i := range cursors {
		for _, b := range cursors[i].bufs {
			total += b.Len()
		}
	}
	outIdx := *stripe % len(engines)
	*stripe++
	out := container.NewStream(fmt.Sprintf("xmerge%d", *stripe), engines[outIdx], recSize)
	outBuf := records.NewPooled(total, recSize) // fully written below, then engine-owned
	w := 0
	for h.Len() > 0 {
		it := h[0]
		c := &cursors[it.src]
		copy(outBuf.Record(w), c.bufs[c.pk].Record(c.pos))
		w++
		c.pos++
		if c.pos == c.bufs[c.pk].Len() {
			c.pk++
			c.pos = 0
		}
		if c.pk < len(c.bufs) && c.pos < c.bufs[c.pk].Len() {
			h[0] = cursorItem{key: key(c), src: it.src}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	ops := float64(total) * (touch + log2f(len(group))*cm.CompareOps)
	res.HostOps += ops
	host.Compute(p, ops)
	cl.Net.Stream(p, host.NIC, cl.ASUs[outIdx].NIC, outBuf.Bytes()+64)
	out.Append(p, container.Packet{Buf: outBuf, Sorted: true, Bucket: -1, Run: *stripe})
	// The merged group's blocks are fully copied into outBuf; recycle their
	// storage for the next merge group (the cursor aliases are dead here).
	for _, st := range group {
		st.FreeAll()
	}
	return out
}

type cursorItem struct {
	key records.Key
	src int
}
type cursorHeap []cursorItem

func (h cursorHeap) Len() int           { return len(h) }
func (h cursorHeap) Less(i, j int) bool { return h[i].key < h[j].key }
func (h cursorHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x any)        { *h = append(*h, x.(cursorItem)) }
func (h *cursorHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func log2f(n int) float64 {
	if n < 2 {
		return 0
	}
	return math.Log2(float64(n))
}
