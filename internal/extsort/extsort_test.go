package extsort

import (
	"testing"
	"testing/quick"

	"lmas/internal/cluster"
	"lmas/internal/dsmsort"
	"lmas/internal/records"
)

func testCluster(asus int) *cluster.Cluster {
	p := cluster.DefaultParams()
	p.Hosts, p.ASUs = 1, asus
	return cluster.New(p)
}

func TestSortSmall(t *testing.T) {
	cl := testCluster(2)
	in := dsmsort.MakeInput(cl, 3000, records.Uniform{}, 1, 64)
	res, err := Sort(cl, Config{MemRecords: 256, FanIn: 4}, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no time elapsed")
	}
	wantRuns := (3000 + 255) / 256
	if res.Runs != wantRuns {
		t.Fatalf("runs = %d, want %d", res.Runs, wantRuns)
	}
	if res.MergePasses != PredictedPasses(3000, 256, 4) {
		t.Fatalf("passes = %d, want %d", res.MergePasses, PredictedPasses(3000, 256, 4))
	}
}

func TestSortSingleRunNoMerge(t *testing.T) {
	cl := testCluster(2)
	in := dsmsort.MakeInput(cl, 100, records.Uniform{}, 1, 32)
	res, err := Sort(cl, Config{MemRecords: 256, FanIn: 4}, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 1 || res.MergePasses != 0 {
		t.Fatalf("runs=%d passes=%d, want 1/0", res.Runs, res.MergePasses)
	}
}

func TestSortSkewed(t *testing.T) {
	cl := testCluster(3)
	in := dsmsort.MakeInput(cl, 2000, records.Exponential{Mean: 0.05}, 1, 32)
	if _, err := Sort(cl, Config{MemRecords: 128, FanIn: 3}, in); err != nil {
		t.Fatal(err)
	}
}

func TestPredictedPasses(t *testing.T) {
	cases := []struct{ n, m, k, want int }{
		{100, 200, 2, 0}, // one run
		{1000, 100, 10, 1},
		{1000, 10, 10, 2},
		{1001, 10, 10, 3}, // 101 runs -> 11 -> 2 -> 1
		{1000, 10, 2, 7},  // 100 runs, log2(100) = 6.6 -> 7
	}
	for _, c := range cases {
		if got := PredictedPasses(c.n, c.m, c.k); got != c.want {
			t.Errorf("PredictedPasses(%d,%d,%d) = %d, want %d", c.n, c.m, c.k, got, c.want)
		}
	}
}

func TestMorePassesWithSmallerFanIn(t *testing.T) {
	elapsed := func(fanIn int) (float64, int) {
		cl := testCluster(2)
		in := dsmsort.MakeInput(cl, 4096, records.Uniform{}, 2, 64)
		res, err := Sort(cl, Config{MemRecords: 64, FanIn: fanIn}, in)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed.Seconds(), res.MergePasses
	}
	tSmall, pSmall := elapsed(2)
	tBig, pBig := elapsed(16)
	if pSmall <= pBig {
		t.Fatalf("fan-in 2 passes %d <= fan-in 16 passes %d", pSmall, pBig)
	}
	if tSmall <= tBig {
		t.Fatalf("fan-in 2 (%f s) not slower than fan-in 16 (%f s) despite %d vs %d passes",
			tSmall, tBig, pSmall, pBig)
	}
}

func TestValidateConfig(t *testing.T) {
	p := cluster.DefaultParams()
	bad := []Config{
		{MemRecords: 0, FanIn: 2},
		{MemRecords: 16, FanIn: 1},
		{MemRecords: p.HostMemRecords * 2, FanIn: 2},
		{MemRecords: 4, FanIn: 8},
	}
	for i, c := range bad {
		if err := c.Validate(p); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := (Config{MemRecords: 1024, FanIn: 8}).Validate(p); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

// TestSortProperty: arbitrary sizes and configurations sort correctly
// (Sort validates internally and errors on any corruption).
func TestSortProperty(t *testing.T) {
	f := func(nRaw uint16, memRaw, fanRaw, asuRaw uint8) bool {
		n := int(nRaw%4000) + 10
		mem := 32 << (memRaw % 4)
		fan := 2 + int(fanRaw%6)
		asus := 1 + int(asuRaw%4)
		cl := testCluster(asus)
		in := dsmsort.MakeInput(cl, n, records.Uniform{}, int64(nRaw), 32)
		_, err := Sort(cl, Config{MemRecords: mem, FanIn: fan}, in)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDSMSortBeatsExtsortWithManyASUs(t *testing.T) {
	// With abundant ASUs the active DSM-Sort pipeline should finish the
	// comparable workload no slower than the host-only external sort.
	n := 1 << 14
	clA := testCluster(16)
	inA := dsmsort.MakeInput(clA, n, records.Uniform{}, 3, 64)
	dres, err := dsmsort.Sort(clA, dsmsort.Config{
		Alpha: 8, Beta: 64, Gamma2: 16, PacketRecords: 64,
		Placement: dsmsort.Active, Seed: 3,
	}, inA)
	if err != nil {
		t.Fatal(err)
	}
	clB := testCluster(16)
	inB := dsmsort.MakeInput(clB, n, records.Uniform{}, 3, 64)
	xres, err := Sort(clB, Config{MemRecords: 64, FanIn: 8}, inB)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Elapsed > xres.Elapsed {
		t.Fatalf("DSM-Sort %.4fs slower than extsort %.4fs with 16 ASUs",
			dres.Elapsed.Seconds(), xres.Elapsed.Seconds())
	}
}
