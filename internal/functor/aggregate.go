package functor

import (
	"encoding/binary"
	"fmt"

	"lmas/internal/container"
	"lmas/internal/records"
)

// Aggregate is the reduction functor of the active-storage canon
// ("filtering and aggregation operations performed directly at the ASUs
// can reduce data movement", Section 2): it folds every input record into
// per-bucket running aggregates — count, key sum, min and max — and emits
// one small summary record per bucket at end of input. Offloaded to ASUs,
// a scan over terabytes returns kilobytes.
//
// Summary records are AggRecordSize bytes; decode them with DecodeAgg.
// State is bounded by the bucket count, keeping the functor ASU-eligible.
type Aggregate struct {
	Splitters []records.Key

	counts []uint64
	sums   []uint64
	mins   []records.Key
	maxs   []records.Key
}

// AggRecordSize is the wire size of one summary record: bucket key (4 B,
// so summaries sort by bucket), count (8), sum (8), min (4), max (4),
// padding to a record-layer-friendly 32.
const AggRecordSize = 32

// NewAggregate builds a per-bucket aggregator over alpha equal-width key
// ranges.
func NewAggregate(alpha int) *Aggregate {
	return &Aggregate{Splitters: records.Splitters(alpha)}
}

func (a *Aggregate) Name() string { return fmt.Sprintf("aggregate(%d)", len(a.Splitters)+1) }

// Compares: one bucket search per record plus the fold.
func (a *Aggregate) Compares(pk container.Packet) float64 {
	return log2(len(a.Splitters)+1) + 2
}

func (a *Aggregate) ensure() {
	if a.counts == nil {
		n := len(a.Splitters) + 1
		a.counts = make([]uint64, n)
		a.sums = make([]uint64, n)
		a.mins = make([]records.Key, n)
		a.maxs = make([]records.Key, n)
		for i := range a.mins {
			a.mins[i] = records.MaxKey
		}
	}
}

func (a *Aggregate) Process(ctx *Ctx, pk container.Packet, emit Emit) {
	a.ensure()
	n := pk.Len()
	for i := 0; i < n; i++ {
		k := pk.Buf.Key(i)
		b := records.BucketOf(k, a.Splitters)
		a.counts[b]++
		a.sums[b] += uint64(k)
		if k < a.mins[b] {
			a.mins[b] = k
		}
		if k > a.maxs[b] {
			a.maxs[b] = k
		}
	}
	pk.Release() // only keys were read; the input is consumed
}

// Flush emits one summary record per non-empty bucket.
func (a *Aggregate) Flush(ctx *Ctx, emit Emit) {
	a.ensure()
	for b, c := range a.counts {
		if c == 0 {
			continue
		}
		buf := records.NewBuffer(1, AggRecordSize)
		rec := buf.Record(0)
		binary.LittleEndian.PutUint32(rec[0:], uint32(b))
		binary.LittleEndian.PutUint64(rec[4:], c)
		binary.LittleEndian.PutUint64(rec[12:], a.sums[b])
		binary.LittleEndian.PutUint32(rec[20:], uint32(a.mins[b]))
		binary.LittleEndian.PutUint32(rec[24:], uint32(a.maxs[b]))
		emit(container.Packet{Buf: buf, Bucket: b, Run: -1})
	}
}

// ASUEligible: aggregation state is bounded by the bucket count.
func (a *Aggregate) ASUEligible() {}

var _ Kernel = (*Aggregate)(nil)

// AggSummary is a decoded per-bucket aggregate.
type AggSummary struct {
	Bucket   int
	Count    uint64
	Sum      uint64
	Min, Max records.Key
}

// DecodeAgg parses a summary record produced by Aggregate.
func DecodeAgg(rec []byte) AggSummary {
	return AggSummary{
		Bucket: int(binary.LittleEndian.Uint32(rec[0:])),
		Count:  binary.LittleEndian.Uint64(rec[4:]),
		Sum:    binary.LittleEndian.Uint64(rec[12:]),
		Min:    records.Key(binary.LittleEndian.Uint32(rec[20:])),
		Max:    records.Key(binary.LittleEndian.Uint32(rec[24:])),
	}
}

// MergeAgg combines summaries of the same bucket from replicated
// aggregator instances (the operation is commutative and associative,
// which is what permits replication across ASUs).
func MergeAgg(a, b AggSummary) AggSummary {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	out := AggSummary{Bucket: a.Bucket, Count: a.Count + b.Count, Sum: a.Sum + b.Sum, Min: a.Min, Max: a.Max}
	if b.Min < out.Min {
		out.Min = b.Min
	}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	return out
}
