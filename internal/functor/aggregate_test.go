package functor

import (
	"testing"
	"testing/quick"

	"lmas/internal/container"
	"lmas/internal/records"
)

func TestAggregateCountsSumsMinMax(t *testing.T) {
	agg := NewAggregate(2)
	half := records.MaxKey/2 + 1
	in := mkBuf(10, 20, half, half+5, 30)
	out := runKernel(t, agg, container.NewPacket(in))
	if len(out) != 2 {
		t.Fatalf("%d summaries, want 2", len(out))
	}
	s0 := DecodeAgg(out[0].Buf.Record(0))
	s1 := DecodeAgg(out[1].Buf.Record(0))
	if s0.Bucket != 0 || s0.Count != 3 || s0.Sum != 60 || s0.Min != 10 || s0.Max != 30 {
		t.Fatalf("bucket 0 summary %+v", s0)
	}
	if s1.Bucket != 1 || s1.Count != 2 || s1.Min != half || s1.Max != half+5 {
		t.Fatalf("bucket 1 summary %+v", s1)
	}
}

func TestAggregateEmptyBucketsOmitted(t *testing.T) {
	out := runKernel(t, NewAggregate(16), container.NewPacket(mkBuf(1, 2, 3)))
	if len(out) != 1 {
		t.Fatalf("%d summaries for keys all in bucket 0", len(out))
	}
}

// TestAggregateProperty: replicated aggregation merged with MergeAgg
// equals single-instance aggregation, for any split of the input — the
// commutativity/associativity that justifies replication.
func TestAggregateProperty(t *testing.T) {
	f := func(keys []uint32, splitRaw uint8) bool {
		if len(keys) == 0 {
			return true
		}
		split := int(splitRaw) % len(keys)
		mk := func(ks []uint32) records.Buffer {
			b := records.NewBuffer(len(ks), recSize)
			for i, k := range ks {
				b.SetKey(i, records.Key(k))
			}
			return b
		}
		collect := func(pks []container.Packet) map[int]AggSummary {
			m := map[int]AggSummary{}
			for _, pk := range pks {
				s := DecodeAgg(pk.Buf.Record(0))
				m[s.Bucket] = MergeAgg(m[s.Bucket], s)
			}
			return m
		}
		var tt testing.T
		whole := collect(runKernel(&tt, NewAggregate(8), container.NewPacket(mk(keys))))
		partA := runKernel(&tt, NewAggregate(8), container.NewPacket(mk(keys[:split])))
		partB := runKernel(&tt, NewAggregate(8), container.NewPacket(mk(keys[split:])))
		merged := collect(append(partA, partB...))
		if len(whole) != len(merged) {
			return false
		}
		for b, w := range whole {
			if merged[b] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateCompares(t *testing.T) {
	if got := NewAggregate(16).Compares(container.Packet{}); got != 6 {
		t.Fatalf("compares = %v, want log2(16)+2", got)
	}
}
