package functor

import (
	"testing"

	"lmas/internal/bte"
	"lmas/internal/container"
	"lmas/internal/records"
	"lmas/internal/route"
	"lmas/internal/sim"
)

// driveKernel pushes packets through a kernel in a bare sim context.
func driveKernel(b *testing.B, k Kernel, pk container.Packet, rounds int) {
	b.Helper()
	cl := testCluster(1, 1)
	cl.Sim.Spawn("bench", func(p *sim.Proc) {
		ctx := &Ctx{Cluster: cl, Node: cl.Hosts[0], Proc: p}
		emit := func(container.Packet) {}
		for i := 0; i < rounds; i++ {
			k.Process(ctx, pk, emit)
		}
		k.Flush(ctx, emit)
	})
	if err := cl.Sim.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkDistributeKernel(b *testing.B) {
	buf := records.Generate(1024, recSize, 1, records.Uniform{})
	pk := container.NewPacket(buf)
	b.SetBytes(int64(recSize))
	k := Adapt(NewDistribute(256), recSize, 64)
	b.ResetTimer()
	driveKernel(b, k, pk, b.N/1024+1)
}

func BenchmarkBlockSortKernel(b *testing.B) {
	buf := records.Generate(1024, recSize, 1, records.Uniform{})
	pk := container.NewPacket(buf)
	pk.Bucket = 0
	b.SetBytes(int64(recSize))
	k := NewBlockSort(256, recSize)
	b.ResetTimer()
	driveKernel(b, k, pk, b.N/1024+1)
}

func BenchmarkAggregateKernel(b *testing.B) {
	buf := records.Generate(1024, recSize, 1, records.Uniform{})
	pk := container.NewPacket(buf)
	b.SetBytes(int64(recSize))
	k := NewAggregate(64)
	b.ResetTimer()
	driveKernel(b, k, pk, b.N/1024+1)
}

// BenchmarkPipelineEndToEnd measures the full stage/courier/edge machinery
// on a small three-stage pipeline.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl := testCluster(1, 2)
		var sets []*container.Set
		cl.Sim.Spawn("seed", func(p *sim.Proc) {
			for j, asu := range cl.ASUs {
				_ = asu
				set := container.NewSet("in", bte.NewMemory(), recSize)
				set.Add(p, container.NewPacket(records.Generate(2048, recSize, int64(j), records.Uniform{})))
				sets = append(sets, set)
			}
		})
		cl.Sim.Run()
		pl := NewPipeline(cl)
		dist := pl.AddStage("d", cl.ASUs, func() Kernel { return Adapt(NewDistribute(16), recSize, 64) })
		srt := pl.AddStage("s", cl.Hosts, func() Kernel { return NewBlockSort(64, recSize) })
		sink := pl.AddStage("k", cl.Hosts, func() Kernel { return &Sink{Label: "x", Fn: func(*Ctx, container.Packet) {}} })
		dist.ConnectTo(srt, &route.RoundRobin{})
		srt.ConnectTo(sink, &route.RoundRobin{})
		sink.Terminal()
		for j, set := range sets {
			pl.AddSource("r", cl.ASUs[j], set.Scan(0, false), dist, fixed(j))
		}
		if _, err := pl.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
