// Package functor implements the paper's data-driven programming model
// (Section 3.1): computations are decomposed into primitive processing
// steps — functors — "which apply specific functions to streams of records
// passing through them. Functors may have multiple inputs and outputs, and
// are composed to build complete programs that process data as it moves
// from stored input to output, possibly in multiple passes."
//
// Two levels of computation are supported:
//
//   - Functor: the paper's per-record streaming primitive, with bounded
//     per-record cost (declared as comparisons per record) and bounded
//     state. ASU-eligible computation is expressed at this level.
//   - Kernel: a packet-granularity "prepackaged, prevalidated kernel
//     primitive" such as sorting, permitted "for useful primitives" with
//     verified behaviour (Section 3.1). Functors are adapted into kernels
//     for execution.
//
// Kernels run inside stage instances placed on cluster nodes; instances of
// a replicated stage receive packets through a routing policy, which is how
// the system spreads load "across instantiations of a given functor". The
// runtime charges every instance's node for its declared computation cost,
// so emulated time reflects the configured placement.
package functor

import (
	"fmt"

	"lmas/internal/cluster"
	"lmas/internal/container"
	"lmas/internal/records"
	"lmas/internal/sim"
)

// Emit passes a produced packet downstream.
type Emit func(pk container.Packet)

// Ctx is the execution context a kernel runs in.
type Ctx struct {
	Cluster  *cluster.Cluster
	Node     *cluster.Node
	Proc     *sim.Proc
	Instance *Instance
}

// Kernel is a packet-level computation with a declared cost. The runtime
// charges (Compares(pk)*CompareOps + touch) ops per record on the
// instance's node before invoking Process; "known bounds on functor
// computation cost per unit of I/O facilitate resource scheduling
// decisions" (Section 3.3). Kernels that perform container I/O through ctx
// additionally incur the storage costs of the node that owns the container.
type Kernel interface {
	// Name identifies the kernel.
	Name() string
	// Compares reports the declared key comparisons per record of pk.
	Compares(pk container.Packet) float64
	// Process consumes pk, emitting zero or more packets. Consuming means
	// taking responsibility for pk's buffer: re-emit the packet, move its
	// buffer into a container (ownership transfers to the engine), or call
	// pk.Release() — a no-op for unowned packets, so kernels may release
	// unconditionally once they are done reading.
	Process(ctx *Ctx, pk container.Packet, emit Emit)
	// Flush emits buffered state after the last input packet.
	Flush(ctx *Ctx, emit Emit)
}

// ASUEligible marks kernels that may execute on Active Storage Units.
// Section 3.1: ASU functors "are either prepackaged, prevalidated kernel
// primitives or short code sequences whose execution behavior is statically
// determinable. These constraints create a basis for isolating ASUs and
// applications from damage by competing functors." The pipeline refuses to
// place unmarked kernels on ASUs (Pipeline.Start panics), so arbitrary
// host-side computation cannot wander onto shared storage nodes. All
// kernels in this package except FusedDistributeSort (a host-only baseline
// with unbounded fused state) carry the mark; per-record functors adapted
// with Adapt are eligible by construction — the adapter bounds their state.
type ASUEligible interface {
	// ASUEligible declares the kernel validated for ASU execution.
	ASUEligible()
}

// Functor is the paper's per-record primitive: a passive entity whose
// computation occurs as a side effect of data access, performing "bounded
// per-record processing with bounded internal state". Records are emitted
// on numbered output ports; the adapter packs each port's records into
// packets whose Bucket is the port number.
type Functor interface {
	// Name identifies the functor.
	Name() string
	// Ports reports the number of output ports.
	Ports() int
	// ComparesPerRecord declares the bounded per-record comparison cost.
	ComparesPerRecord() float64
	// Process consumes one record. The rec slice is only valid during
	// the call; implementations must copy it to retain it.
	Process(rec []byte, emit func(port int, rec []byte))
	// Flush emits any buffered records at end of input.
	Flush(emit func(port int, rec []byte))
}

// Adapt wraps a per-record functor as a packet kernel. Output records are
// staged per port and emitted in packets of up to packetRecords records.
// Total staging across all ports is bounded ("their per-record computation
// demand and total memory usage are bounded, facilitating load management
// and resource provisioning"): when the bound is reached, the fullest
// port's partial packet is emitted, so high-fan-out functors keep data
// flowing instead of hoarding it until end of input.
func Adapt(f Functor, recSize, packetRecords int) Kernel {
	if packetRecords < 1 {
		panic("functor: packetRecords must be >= 1")
	}
	budget := 4 * packetRecords
	if budget < 2048 {
		budget = 2048
	}
	return &recordAdapter{f: f, recSize: recSize, cap: packetRecords, budget: budget}
}

type recordAdapter struct {
	f       Functor
	recSize int
	cap     int
	budget  int // max records staged across all ports
	staged  int
	staging []records.Buffer // per port
	fill    []int
}

func (a *recordAdapter) Name() string                         { return a.f.Name() }
func (a *recordAdapter) Compares(pk container.Packet) float64 { return a.f.ComparesPerRecord() }

// ASUEligible: adapted per-record functors have bounded cost by contract
// and bounded state by the adapter's staging budget.
func (a *recordAdapter) ASUEligible() {}

func (a *recordAdapter) stage(port int, rec []byte, emit Emit) {
	if a.staging == nil {
		a.staging = make([]records.Buffer, a.f.Ports())
		a.fill = make([]int, a.f.Ports())
	}
	if port < 0 || port >= len(a.staging) {
		panic(fmt.Sprintf("functor %s: emit on port %d of %d", a.f.Name(), port, len(a.staging)))
	}
	if a.staging[port].Len() == 0 {
		a.staging[port] = records.NewPooled(a.cap, a.recSize)
	}
	copy(a.staging[port].Record(a.fill[port]), rec)
	a.fill[port]++
	a.staged++
	if a.fill[port] == a.cap {
		a.flushPort(port, emit)
		return
	}
	if a.staged >= a.budget {
		// Buffer bound reached: relieve pressure by shipping the
		// fullest port's partial packet.
		fullest := 0
		for p := 1; p < len(a.fill); p++ {
			if a.fill[p] > a.fill[fullest] {
				fullest = p
			}
		}
		a.flushPort(fullest, emit)
	}
}

func (a *recordAdapter) Process(ctx *Ctx, pk container.Packet, emit Emit) {
	out := func(port int, rec []byte) { a.stage(port, rec, emit) }
	n := pk.Len()
	for i := 0; i < n; i++ {
		a.f.Process(pk.Buf.Record(i), out)
	}
	pk.Release() // records were copied into staging; the input is consumed
}

func (a *recordAdapter) Flush(ctx *Ctx, emit Emit) {
	a.f.Flush(func(port int, rec []byte) { a.stage(port, rec, emit) })
	for port := range a.staging {
		a.flushPort(port, emit)
	}
}

func (a *recordAdapter) flushPort(port int, emit Emit) {
	if a.fill[port] == 0 {
		return
	}
	// The emitted packet owns the pooled staging buffer (a length-prefix
	// slice keeps the full pool capacity, so release recycles it whole).
	pk := container.Packet{Buf: a.staging[port].Slice(0, a.fill[port]), Bucket: port, Run: -1, Owned: true}
	a.staged -= a.fill[port]
	a.staging[port] = records.Buffer{}
	a.fill[port] = 0
	emit(pk)
}
