package functor

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"lmas/internal/bte"
	"lmas/internal/cluster"
	"lmas/internal/container"
	"lmas/internal/records"
	"lmas/internal/route"
	"lmas/internal/sim"
)

const recSize = 16

func mkBuf(keys ...records.Key) records.Buffer {
	b := records.NewBuffer(len(keys), recSize)
	for i, k := range keys {
		b.SetKey(i, k)
	}
	return b
}

func testCluster(hosts, asus int) *cluster.Cluster {
	p := cluster.DefaultParams()
	p.Hosts, p.ASUs = hosts, asus
	p.RecordSize = recSize
	return cluster.New(p)
}

// collectEmits runs a kernel over packets in a bare context and gathers
// everything it emits.
func runKernel(t *testing.T, k Kernel, pks ...container.Packet) []container.Packet {
	t.Helper()
	cl := testCluster(1, 1)
	var out []container.Packet
	cl.Sim.Spawn("drive", func(p *sim.Proc) {
		ctx := &Ctx{Cluster: cl, Node: cl.Hosts[0], Proc: p}
		emit := func(pk container.Packet) { out = append(out, pk) }
		for _, pk := range pks {
			k.Process(ctx, pk, emit)
		}
		k.Flush(ctx, emit)
	})
	if err := cl.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDistributeRoutesByKeyRange(t *testing.T) {
	d := NewDistribute(4)
	if d.Ports() != 4 || d.ComparesPerRecord() != 2 {
		t.Fatalf("ports=%d compares=%v", d.Ports(), d.ComparesPerRecord())
	}
	k := Adapt(d, recSize, 2)
	in := mkBuf(0, records.MaxKey, records.MaxKey/2, records.MaxKey/4)
	out := runKernel(t, k, container.NewPacket(in))
	buckets := map[int][]records.Key{}
	for _, pk := range out {
		for i := 0; i < pk.Len(); i++ {
			buckets[pk.Bucket] = append(buckets[pk.Bucket], pk.Buf.Key(i))
		}
	}
	sp := records.Splitters(4)
	for b, keys := range buckets {
		for _, k := range keys {
			if records.BucketOf(k, sp) != b {
				t.Fatalf("key %d landed in bucket %d", k, b)
			}
		}
	}
	total := 0
	for _, keys := range buckets {
		total += len(keys)
	}
	if total != 4 {
		t.Fatalf("%d records out, want 4", total)
	}
}

func TestAdaptPacksToSize(t *testing.T) {
	d := NewDistribute(1) // everything to port 0
	k := Adapt(d, recSize, 3)
	in := mkBuf(1, 2, 3, 4, 5, 6, 7)
	out := runKernel(t, k, container.NewPacket(in))
	if len(out) != 3 {
		t.Fatalf("got %d packets, want 3 (3+3+1)", len(out))
	}
	if out[0].Len() != 3 || out[1].Len() != 3 || out[2].Len() != 1 {
		t.Fatalf("packet sizes %d,%d,%d", out[0].Len(), out[1].Len(), out[2].Len())
	}
}

func TestFilterDropsRecords(t *testing.T) {
	f := &Filter{Keep: func(k records.Key) bool { return k%2 == 0 }}
	k := Adapt(f, recSize, 4)
	out := runKernel(t, k, container.NewPacket(mkBuf(1, 2, 3, 4, 5, 6)))
	n := 0
	for _, pk := range out {
		for i := 0; i < pk.Len(); i++ {
			if pk.Buf.Key(i)%2 != 0 {
				t.Fatal("odd key passed filter")
			}
			n++
		}
	}
	if n != 3 {
		t.Fatalf("%d records passed, want 3", n)
	}
}

func TestBlockSortFormsSortedRuns(t *testing.T) {
	k := NewBlockSort(4, recSize)
	in := container.NewPacket(mkBuf(9, 3, 7, 1, 8, 2))
	in.Bucket = 5
	out := runKernel(t, k, in)
	if len(out) != 2 {
		t.Fatalf("got %d runs, want 2 (full + partial)", len(out))
	}
	if out[0].Len() != 4 || out[1].Len() != 2 {
		t.Fatalf("run sizes %d,%d", out[0].Len(), out[1].Len())
	}
	for i, pk := range out {
		if !pk.Sorted || !pk.Buf.IsSorted() {
			t.Fatalf("run %d not sorted", i)
		}
		if pk.Bucket != 5 {
			t.Fatalf("run %d lost bucket: %d", i, pk.Bucket)
		}
		if pk.Run < 0 {
			t.Fatalf("run %d has no run id", i)
		}
	}
}

func TestBlockSortKeepsBucketsSeparate(t *testing.T) {
	k := NewBlockSort(8, recSize)
	a := container.NewPacket(mkBuf(5, 1))
	a.Bucket = 0
	b := container.NewPacket(mkBuf(9, 7))
	b.Bucket = 1
	out := runKernel(t, k, a, b)
	if len(out) != 2 {
		t.Fatalf("got %d runs, want 2 (one per bucket)", len(out))
	}
	for _, pk := range out {
		switch pk.Bucket {
		case 0:
			if pk.Buf.Key(0) != 1 || pk.Buf.Key(1) != 5 {
				t.Fatal("bucket 0 run wrong")
			}
		case 1:
			if pk.Buf.Key(0) != 7 || pk.Buf.Key(1) != 9 {
				t.Fatal("bucket 1 run wrong")
			}
		default:
			t.Fatalf("unexpected bucket %d", pk.Bucket)
		}
	}
}

// TestBlockSortProperty: for any input, runs are sorted, sized <= beta, and
// the output multiset equals the input multiset.
func TestBlockSortProperty(t *testing.T) {
	f := func(keys []uint32, betaRaw uint8) bool {
		beta := int(betaRaw%16) + 1
		buf := records.NewBuffer(len(keys), recSize)
		for i, kk := range keys {
			buf.SetKey(i, records.Key(kk))
		}
		var before records.Checksum
		before.Add(buf)
		out := runKernel(t, NewBlockSort(beta, recSize), container.NewPacket(buf))
		var after records.Checksum
		for _, pk := range out {
			if !pk.Buf.IsSorted() || pk.Len() > beta {
				return false
			}
			after.Add(pk.Buf)
		}
		return before.Equal(after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFusedMatchesComposition(t *testing.T) {
	keys := []records.Key{100, 5, 2_000_000_000, 42, 3_000_000_000, 7, 1_500_000_000}
	mk := func() container.Packet { return container.NewPacket(mkBuf(keys...)) }

	fused := runKernel(t, NewFusedDistributeSort(4, 4, recSize), mk())

	// Composition: distribute, then block-sort per bucket.
	distOut := runKernel(t, Adapt(NewDistribute(4), recSize, 4), mk())
	composed := runKernel(t, NewBlockSort(4, recSize), distOut...)

	sum := func(pks []container.Packet) map[int]records.Checksum {
		m := map[int]records.Checksum{}
		for _, pk := range pks {
			c := m[pk.Bucket]
			c.Add(pk.Buf)
			m[pk.Bucket] = c
		}
		return m
	}
	fm, cm := sum(fused), sum(composed)
	if len(fm) != len(cm) {
		t.Fatalf("bucket sets differ: %d vs %d", len(fm), len(cm))
	}
	for b, c := range fm {
		if !c.Equal(cm[b]) {
			t.Fatalf("bucket %d differs", b)
		}
	}
	if got := NewFusedDistributeSort(4, 4, recSize).Compares(container.Packet{}); got != 4 {
		t.Fatalf("fused compares = %v, want log2(4)+log2(4)=4", got)
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	cl := testCluster(1, 2)
	// Input: one set per ASU on its disk.
	var inSum records.Checksum
	var sets []*container.Set
	cl.Sim.Spawn("seed", func(p *sim.Proc) {
		for i, asu := range cl.ASUs {
			set := container.NewSet(fmt.Sprintf("in%d", i), bte.NewDisk(asu.Disk), recSize)
			buf := records.Generate(100, recSize, int64(i+1), records.Uniform{})
			inSum.Add(buf)
			for off := 0; off < 100; off += 10 {
				set.Add(p, container.NewPacket(buf.Slice(off, off+10).Clone()))
			}
			sets = append(sets, set)
		}
	})
	if err := cl.Sim.Run(); err != nil {
		t.Fatal(err)
	}

	pl := NewPipeline(cl)
	// distribute on ASUs -> sort on host -> sink on host.
	dist := pl.AddStage("dist", cl.ASUs, func() Kernel { return Adapt(NewDistribute(4), recSize, 8) })
	srt := pl.AddStage("sort", cl.Hosts, func() Kernel { return NewBlockSort(16, recSize) })
	var outSum records.Checksum
	var sortedRuns int
	sink := pl.AddStage("sink", cl.Hosts, func() Kernel {
		return &Sink{Label: "out", Fn: func(ctx *Ctx, pk container.Packet) {
			if !pk.Sorted || !pk.Buf.IsSorted() {
				t.Error("unsorted run reached sink")
			}
			outSum.Add(pk.Buf)
			sortedRuns++
		}}
	})
	dist.ConnectTo(srt, &route.RoundRobin{})
	srt.ConnectTo(sink, &route.RoundRobin{})
	sink.Terminal()
	for i, set := range sets {
		// Each ASU reads its own local set.
		pl.AddSource(fmt.Sprintf("read%d", i), cl.ASUs[i], set.Scan(0, false), dist, localFirst(i))
	}
	elapsed, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("pipeline took no virtual time")
	}
	if !inSum.Equal(outSum) {
		t.Fatalf("records lost or corrupted: in %v out %v", inSum, outSum)
	}
	if sortedRuns == 0 {
		t.Fatal("no runs produced")
	}
}

// localFirst routes everything to endpoint i (source i feeds its own ASU's
// distribute instance).
func localFirst(i int) route.Policy { return fixed(i) }

type fixed int

func (fixed) Name() string                                       { return "fixed" }
func (f fixed) Pick(pk route.PacketInfo, e []route.Endpoint) int { return int(f) % len(e) }

func TestPipelineChargesNetworkOnlyCrossNode(t *testing.T) {
	cl := testCluster(1, 1)
	asu, host := cl.ASUs[0], cl.Hosts[0]
	var set *container.Set
	cl.Sim.Spawn("seed", func(p *sim.Proc) {
		set = container.NewSet("in", bte.NewMemory(), recSize)
		set.Add(p, container.NewPacket(mkBuf(3, 1, 2)))
	})
	if err := cl.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	pl := NewPipeline(cl)
	local := pl.AddStage("local", []*cluster.Node{asu}, func() Kernel { return &Passthrough{} })
	remote := pl.AddStage("remote", []*cluster.Node{host}, func() Kernel { return &Passthrough{} })
	edge := local.ConnectTo(remote, &route.RoundRobin{})
	remote.Terminal()
	pl.AddSource("src", asu, set.Scan(0, false), local, &route.RoundRobin{})
	if _, err := pl.Run(); err != nil {
		t.Fatal(err)
	}
	if edge.CrossNode != 1 || edge.NetBytes == 0 {
		t.Fatalf("cross-node edge: hops=%d bytes=%d", edge.CrossNode, edge.NetBytes)
	}
	sent, _, _, _ := asu.NIC.Stats()
	if sent != 1 {
		t.Fatalf("ASU sent %d messages, want 1", sent)
	}
	_, recvd, _, _ := host.NIC.Stats()
	if recvd != 1 {
		t.Fatalf("host received %d messages, want 1", recvd)
	}
}

func TestPipelineLocalDeliveryIsFreeOfNetwork(t *testing.T) {
	cl := testCluster(1, 1)
	asu := cl.ASUs[0]
	var set *container.Set
	cl.Sim.Spawn("seed", func(p *sim.Proc) {
		set = container.NewSet("in", bte.NewMemory(), recSize)
		set.Add(p, container.NewPacket(mkBuf(1)))
	})
	cl.Sim.Run()
	pl := NewPipeline(cl)
	a := pl.AddStage("a", []*cluster.Node{asu}, func() Kernel { return &Passthrough{} })
	b := pl.AddStage("b", []*cluster.Node{asu}, func() Kernel { return &Passthrough{} })
	edge := a.ConnectTo(b, &route.RoundRobin{})
	b.Terminal()
	pl.AddSource("src", asu, set.Scan(0, false), a, &route.RoundRobin{})
	if _, err := pl.Run(); err != nil {
		t.Fatal(err)
	}
	if edge.CrossNode != 0 || edge.NetBytes != 0 {
		t.Fatalf("same-node edge charged network: %d hops %d bytes", edge.CrossNode, edge.NetBytes)
	}
}

func TestPipelineComputeChargedAtNodeSpeed(t *testing.T) {
	// One packet of n records through a Passthrough with cost C on a
	// host vs an ASU: ASU must take c times longer.
	elapsed := func(onHost bool) sim.Duration {
		cl := testCluster(1, 1)
		node := cl.ASUs[0]
		if onHost {
			node = cl.Hosts[0]
		}
		var set *container.Set
		cl.Sim.Spawn("seed", func(p *sim.Proc) {
			set = container.NewSet("in", bte.NewMemory(), recSize)
			set.Add(p, container.NewPacket(records.Generate(1000, recSize, 1, records.Uniform{})))
		})
		cl.Sim.Run()
		pl := NewPipeline(cl)
		st := pl.AddStage("work", []*cluster.Node{node}, func() Kernel { return &Passthrough{CostCompares: 100} })
		st.Terminal()
		pl.AddSource("src", node, set.Scan(0, false), st, &route.RoundRobin{})
		d, err := pl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	h, a := elapsed(true), elapsed(false)
	ratio := float64(a) / float64(h)
	// Touch costs differ slightly between host and ASU; allow slack.
	if ratio < 6 || ratio > 10 {
		t.Fatalf("ASU/host elapsed ratio = %.2f, want ~8 (c=8)", ratio)
	}
}

func TestPipelineReplicationSpreadsLoad(t *testing.T) {
	cl := testCluster(2, 1)
	asu := cl.ASUs[0]
	var set *container.Set
	cl.Sim.Spawn("seed", func(p *sim.Proc) {
		set = container.NewSet("in", bte.NewMemory(), recSize)
		for i := 0; i < 40; i++ {
			set.Add(p, container.NewPacket(mkBuf(records.Key(i), records.Key(i+1))))
		}
	})
	cl.Sim.Run()
	pl := NewPipeline(cl)
	work := pl.AddStage("work", cl.Hosts, func() Kernel { return &Passthrough{CostCompares: 50} })
	work.Terminal()
	pl.AddSource("src", asu, set.Scan(0, false), work, &route.RoundRobin{})
	if _, err := pl.Run(); err != nil {
		t.Fatal(err)
	}
	in0 := work.Instances()[0].PacketsIn
	in1 := work.Instances()[1].PacketsIn
	if in0 != 20 || in1 != 20 {
		t.Fatalf("round-robin split %d/%d, want 20/20", in0, in1)
	}
}

func TestPipelineDeterminism(t *testing.T) {
	runOnce := func() (sim.Duration, records.Checksum) {
		cl := testCluster(1, 2)
		var sets []*container.Set
		cl.Sim.Spawn("seed", func(p *sim.Proc) {
			for i, asu := range cl.ASUs {
				set := container.NewSet(fmt.Sprintf("in%d", i), bte.NewDisk(asu.Disk), recSize)
				buf := records.Generate(64, recSize, int64(i), records.Uniform{})
				set.Add(p, container.NewPacket(buf))
				sets = append(sets, set)
			}
		})
		cl.Sim.Run()
		pl := NewPipeline(cl)
		dist := pl.AddStage("dist", cl.ASUs, func() Kernel { return Adapt(NewDistribute(8), recSize, 4) })
		srt := pl.AddStage("sort", cl.Hosts, func() Kernel { return NewBlockSort(8, recSize) })
		var sum records.Checksum
		snk := pl.AddStage("sink", cl.Hosts, func() Kernel {
			return &Sink{Label: "s", Fn: func(ctx *Ctx, pk container.Packet) { sum.Add(pk.Buf) }}
		})
		dist.ConnectTo(srt, route.NewSR(99))
		srt.ConnectTo(snk, &route.RoundRobin{})
		snk.Terminal()
		for i, set := range sets {
			pl.AddSource(fmt.Sprintf("r%d", i), cl.ASUs[i], set.Scan(0, false), dist, fixed(i))
		}
		d, err := pl.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d, sum
	}
	d1, s1 := runOnce()
	d2, s2 := runOnce()
	if d1 != d2 || !s1.Equal(s2) {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", d1, s1, d2, s2)
	}
}

func TestStageWithoutOutputPanicsAtStart(t *testing.T) {
	cl := testCluster(1, 1)
	pl := NewPipeline(cl)
	pl.AddStage("dangling", cl.Hosts, func() Kernel { return &Passthrough{} })
	defer func() {
		if recover() == nil {
			t.Fatal("Start did not panic for unconnected stage")
		}
	}()
	pl.Start()
}

func TestUnvalidatedKernelRejectedOnASU(t *testing.T) {
	// FusedDistributeSort is a host-only baseline: it is deliberately
	// not marked ASU-eligible, and placing it on an ASU must fail fast.
	cl := testCluster(1, 1)
	pl := NewPipeline(cl)
	st := pl.AddStage("rogue", cl.ASUs, func() Kernel {
		return NewFusedDistributeSort(4, 16, recSize)
	})
	st.Terminal()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unvalidated kernel accepted on an ASU")
		}
		if !strings.Contains(fmt.Sprint(r), "not ASU-eligible") {
			t.Fatalf("wrong panic: %v", r)
		}
	}()
	pl.Start()
}

func TestUnvalidatedKernelAllowedOnHost(t *testing.T) {
	cl := testCluster(1, 1)
	var set *container.Set
	cl.Sim.Spawn("seed", func(p *sim.Proc) {
		set = container.NewSet("in", bte.NewMemory(), recSize)
		set.Add(p, container.NewPacket(mkBuf(3, 1, 2)))
	})
	cl.Sim.Run()
	pl := NewPipeline(cl)
	st := pl.AddStage("host-fused", cl.Hosts, func() Kernel {
		return NewFusedDistributeSort(4, 16, recSize)
	})
	st.Terminal()
	pl.AddSource("src", cl.ASUs[0], set.Scan(0, false), st, &route.RoundRobin{})
	if _, err := pl.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptRejectsBadPacketSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Adapt(NewDistribute(2), recSize, 0)
}
