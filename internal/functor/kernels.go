package functor

import (
	"fmt"
	"math"
	"sort"

	"lmas/internal/container"
	"lmas/internal/records"
)

// log2 returns log2(n) clamped at zero, the per-record comparison count the
// paper assigns to an n-way hierarchical operation ("log(parameter) is the
// number of compares per key", Section 4.3).
func log2(n int) float64 {
	if n < 2 {
		return 0
	}
	return math.Log2(float64(n))
}

// Distribute is the α-way distribute functor of DSM-Sort step 1: it routes
// each record to one of α output ports by binary search over key-range
// splitters, costing ceil-ish log2(α) compares per record. It is an
// ASU-eligible functor: bounded per-record cost, bounded state (the
// splitters plus per-port staging).
type Distribute struct {
	Splitters []records.Key
}

// NewDistribute builds an α-way distribute over equal-width key ranges.
func NewDistribute(alpha int) *Distribute {
	return &Distribute{Splitters: records.Splitters(alpha)}
}

func (d *Distribute) Name() string { return fmt.Sprintf("distribute(%d)", len(d.Splitters)+1) }
func (d *Distribute) Ports() int   { return len(d.Splitters) + 1 }
func (d *Distribute) ComparesPerRecord() float64 {
	return log2(len(d.Splitters) + 1)
}

func (d *Distribute) Process(rec []byte, emit func(port int, rec []byte)) {
	k := records.Key(uint32(rec[0]) | uint32(rec[1])<<8 | uint32(rec[2])<<16 | uint32(rec[3])<<24)
	emit(records.BucketOf(k, d.Splitters), rec)
}

func (d *Distribute) Flush(emit func(port int, rec []byte)) {}

var _ Functor = (*Distribute)(nil)

// Filter passes through records whose key satisfies Keep; a canonical
// ASU-side reduction ("filtering and aggregation operations performed
// directly at the ASUs can reduce data movement across the interconnect").
type Filter struct {
	Keep func(k records.Key) bool
}

func (f *Filter) Name() string               { return "filter" }
func (f *Filter) Ports() int                 { return 1 }
func (f *Filter) ComparesPerRecord() float64 { return 1 }
func (f *Filter) Process(rec []byte, emit func(port int, rec []byte)) {
	k := records.Key(uint32(rec[0]) | uint32(rec[1])<<8 | uint32(rec[2])<<16 | uint32(rec[3])<<24)
	if f.Keep(k) {
		emit(0, rec)
	}
}
func (f *Filter) Flush(emit func(port int, rec []byte)) {}

var _ Functor = (*Filter)(nil)

// BlockSort is the "verified computation kernel" forming sorted runs: it
// accumulates β records per bucket, sorts each full block with log2(β)
// compares per record, and emits it as a packet marked sorted — the packet
// mechanism of Figure 4 ("a sort functor which sorts groups of records and
// uses packets to preserve the local order of sorted records").
type BlockSort struct {
	Beta    int // records per sorted run
	RecSize int

	blocks map[int]*records.Buffer // bucket -> partial block
	fill   map[int]int
	runSeq int
}

// NewBlockSort builds a run-formation kernel with run length beta.
func NewBlockSort(beta, recSize int) *BlockSort {
	if beta < 1 {
		panic("functor: beta must be >= 1")
	}
	return &BlockSort{Beta: beta, RecSize: recSize}
}

func (b *BlockSort) Name() string { return fmt.Sprintf("blocksort(%d)", b.Beta) }

func (b *BlockSort) Compares(pk container.Packet) float64 { return log2(b.Beta) }

func (b *BlockSort) Process(ctx *Ctx, pk container.Packet, emit Emit) {
	if b.blocks == nil {
		b.blocks = make(map[int]*records.Buffer)
		b.fill = make(map[int]int)
	}
	n := pk.Len()
	bucket := pk.Bucket
	for i := 0; i < n; i++ {
		blk := b.blocks[bucket]
		if blk == nil {
			nb := records.NewBuffer(b.Beta, b.RecSize)
			blk = &nb
			b.blocks[bucket] = blk
		}
		copy(blk.Record(b.fill[bucket]), pk.Buf.Record(i))
		b.fill[bucket]++
		if b.fill[bucket] == b.Beta {
			b.emitRun(bucket, emit)
		}
	}
}

func (b *BlockSort) Flush(ctx *Ctx, emit Emit) {
	// Emit remaining partial blocks in bucket order for determinism.
	buckets := make([]int, 0, len(b.fill))
	for bk, f := range b.fill {
		if f > 0 {
			buckets = append(buckets, bk)
		}
	}
	sort.Ints(buckets)
	for _, bk := range buckets {
		b.emitRun(bk, emit)
	}
}

func (b *BlockSort) emitRun(bucket int, emit Emit) {
	blk := b.blocks[bucket]
	buf := blk.Slice(0, b.fill[bucket])
	buf.Sort()
	b.blocks[bucket] = nil
	b.fill[bucket] = 0
	b.runSeq++
	emit(container.Packet{Buf: buf, Sorted: true, Bucket: bucket, Run: b.runSeq})
}

// ASUEligible: BlockSort is a prevalidated kernel primitive ("More complex
// read/modify/write operations may be permitted in common, verified
// computation kernels, e.g., for useful primitives such as sorting").
func (b *BlockSort) ASUEligible() {}

var _ Kernel = (*BlockSort)(nil)

// Sink is a terminal kernel that hands every packet to a user function —
// typically one that appends to a container on the instance's node,
// incurring that node's storage costs.
type Sink struct {
	Label string
	Fn    func(ctx *Ctx, pk container.Packet)
	// ExtraCompares adds declared per-record cost (0 for raw block
	// writes on conventional storage; collectors doing packet
	// reassembly leave it 0 too and rely on the touch charge).
	ExtraCompares float64
}

func (s *Sink) Name() string                         { return "sink:" + s.Label }
func (s *Sink) Compares(pk container.Packet) float64 { return s.ExtraCompares }
func (s *Sink) Process(ctx *Ctx, pk container.Packet, emit Emit) {
	s.Fn(ctx, pk)
}
func (s *Sink) Flush(ctx *Ctx, emit Emit) {}

// ASUEligible: sinks only move packets into local storage.
func (s *Sink) ASUEligible() {}

var _ Kernel = (*Sink)(nil)

// Passthrough forwards packets unchanged at a declared cost; useful for
// modelling pure forwarding hops and in tests.
type Passthrough struct {
	CostCompares float64
}

func (p *Passthrough) Name() string                         { return "passthrough" }
func (p *Passthrough) Compares(pk container.Packet) float64 { return p.CostCompares }
func (p *Passthrough) Process(ctx *Ctx, pk container.Packet, emit Emit) {
	emit(pk)
}
func (p *Passthrough) Flush(ctx *Ctx, emit Emit) {}

// ASUEligible: passthrough performs no computation beyond its declared
// cost.
func (p *Passthrough) ASUEligible() {}

var _ Kernel = (*Passthrough)(nil)

// FusedDistributeSort chains an α-way distribute directly into run
// formation inside a single host stage: the conventional-storage baseline,
// where all computation happens on the host in one pass over the data. Its
// declared cost is log2(α) + log2(β) compares per record, the sum of the
// two stages it fuses.
type FusedDistributeSort struct {
	dist *Distribute
	sort *BlockSort
}

// NewFusedDistributeSort builds the baseline host kernel.
func NewFusedDistributeSort(alpha, beta, recSize int) *FusedDistributeSort {
	return &FusedDistributeSort{dist: NewDistribute(alpha), sort: NewBlockSort(beta, recSize)}
}

func (f *FusedDistributeSort) Name() string { return "fused-distribute-sort" }

func (f *FusedDistributeSort) Compares(pk container.Packet) float64 {
	return f.dist.ComparesPerRecord() + f.sort.Compares(pk)
}

func (f *FusedDistributeSort) Process(ctx *Ctx, pk container.Packet, emit Emit) {
	n := pk.Len()
	for i := 0; i < n; i++ {
		rec := pk.Buf.Record(i)
		k := records.Key(uint32(rec[0]) | uint32(rec[1])<<8 | uint32(rec[2])<<16 | uint32(rec[3])<<24)
		bucket := records.BucketOf(k, f.dist.Splitters)
		f.sort.Process(ctx, container.Packet{Buf: pk.Buf.Slice(i, i+1), Bucket: bucket, Run: -1}, emit)
	}
}

func (f *FusedDistributeSort) Flush(ctx *Ctx, emit Emit) { f.sort.Flush(ctx, emit) }

var _ Kernel = (*FusedDistributeSort)(nil)
