package functor

import (
	"fmt"
	"math"

	"lmas/internal/bufpool"
	"lmas/internal/container"
	"lmas/internal/records"
	"lmas/internal/sim"
)

// log2 returns log2(n) clamped at zero, the per-record comparison count the
// paper assigns to an n-way hierarchical operation ("log(parameter) is the
// number of compares per key", Section 4.3).
func log2(n int) float64 {
	if n < 2 {
		return 0
	}
	return math.Log2(float64(n))
}

// Distribute is the α-way distribute functor of DSM-Sort step 1: it routes
// each record to one of α output ports by binary search over key-range
// splitters, costing ceil-ish log2(α) compares per record. It is an
// ASU-eligible functor: bounded per-record cost, bounded state (the
// splitters plus per-port staging).
type Distribute struct {
	Splitters []records.Key
}

// NewDistribute builds an α-way distribute over equal-width key ranges.
func NewDistribute(alpha int) *Distribute {
	return &Distribute{Splitters: records.Splitters(alpha)}
}

func (d *Distribute) Name() string { return fmt.Sprintf("distribute(%d)", len(d.Splitters)+1) }
func (d *Distribute) Ports() int   { return len(d.Splitters) + 1 }
func (d *Distribute) ComparesPerRecord() float64 {
	return log2(len(d.Splitters) + 1)
}

func (d *Distribute) Process(rec []byte, emit func(port int, rec []byte)) {
	emit(records.BucketOf(records.KeyOf(rec), d.Splitters), rec)
}

func (d *Distribute) Flush(emit func(port int, rec []byte)) {}

var _ Functor = (*Distribute)(nil)

// Filter passes through records whose key satisfies Keep; a canonical
// ASU-side reduction ("filtering and aggregation operations performed
// directly at the ASUs can reduce data movement across the interconnect").
type Filter struct {
	Keep func(k records.Key) bool
}

func (f *Filter) Name() string               { return "filter" }
func (f *Filter) Ports() int                 { return 1 }
func (f *Filter) ComparesPerRecord() float64 { return 1 }
func (f *Filter) Process(rec []byte, emit func(port int, rec []byte)) {
	if f.Keep(records.KeyOf(rec)) {
		emit(0, rec)
	}
}
func (f *Filter) Flush(emit func(port int, rec []byte)) {}

var _ Functor = (*Filter)(nil)

// BlockSort is the "verified computation kernel" forming sorted runs: it
// accumulates β records per bucket, sorts each full block with log2(β)
// compares per record, and emits it as a packet marked sorted — the packet
// mechanism of Figure 4 ("a sort functor which sorts groups of records and
// uses packets to preserve the local order of sorted records").
type BlockSort struct {
	Beta    int // records per sorted run
	RecSize int

	// Per-bucket partial blocks, indexed bucket+1 so the unbucketed
	// stream (Bucket == -1) lands at slot 0; grown on demand. Slot order
	// is ascending bucket order, which keeps Flush deterministic.
	blocks []records.Buffer
	fill   []int
	runSeq int

	// Staged-path state, reused across Stage calls so the hot loop stays
	// allocation-free: an instance stages at most one packet at a time
	// (Stage -> compute -> commit complete before the next Get).
	staged    []stagedRun
	stagedPk  container.Packet
	computeFn func()
	commitFn  func(emit Emit)
}

// NewBlockSort builds a run-formation kernel with run length beta.
func NewBlockSort(beta, recSize int) *BlockSort {
	if beta < 1 {
		panic("functor: beta must be >= 1")
	}
	return &BlockSort{Beta: beta, RecSize: recSize}
}

func (b *BlockSort) Name() string { return fmt.Sprintf("blocksort(%d)", b.Beta) }

func (b *BlockSort) Compares(pk container.Packet) float64 { return log2(b.Beta) }

func (b *BlockSort) Process(ctx *Ctx, pk container.Packet, emit Emit) {
	n := pk.Len()
	idx := pk.Bucket + 1
	if idx < 0 {
		panic(fmt.Sprintf("functor: blocksort bucket %d < -1", pk.Bucket))
	}
	for idx >= len(b.blocks) {
		b.blocks = append(b.blocks, records.Buffer{})
		b.fill = append(b.fill, 0)
	}
	for i := 0; i < n; i++ {
		if b.blocks[idx].Len() == 0 {
			b.blocks[idx] = records.NewPooled(b.Beta, b.RecSize)
		}
		copy(b.blocks[idx].Record(b.fill[idx]), pk.Buf.Record(i))
		b.fill[idx]++
		if b.fill[idx] == b.Beta {
			b.emitRun(idx, emit)
		}
	}
	pk.Release() // input records now live in the run blocks
}

func (b *BlockSort) Flush(ctx *Ctx, emit Emit) {
	// Emit remaining partial blocks in ascending slot (= bucket) order
	// for determinism, matching the sorted-bucket order used before the
	// dense-slice representation.
	for idx := range b.blocks {
		if b.fill[idx] > 0 {
			b.emitRun(idx, emit)
		}
	}
}

func (b *BlockSort) emitRun(idx int, emit Emit) {
	buf := b.blocks[idx].Slice(0, b.fill[idx])
	buf.Sort()
	b.blocks[idx] = records.Buffer{}
	b.fill[idx] = 0
	b.runSeq++
	// The run packet owns its pooled block (length-prefix slices keep the
	// full pool capacity).
	emit(container.Packet{Buf: buf, Sorted: true, Bucket: idx - 1, Run: b.runSeq, Owned: true})
}

// ASUEligible: BlockSort is a prevalidated kernel primitive ("More complex
// read/modify/write operations may be permitted in common, verified
// computation kernels, e.g., for useful primitives such as sorting").
func (b *BlockSort) ASUEligible() {}

var _ Kernel = (*BlockSort)(nil)

// AsyncKernel is implemented by kernels that can split Process into a staged
// form, letting the instance loop overlap the pure compute with the virtual
// Compute charge via Proc.Go. The contract: Stage performs every
// simulator-visible effect of Process except the emissions (buffer
// allocation, record copies, kernel-state updates), compute is a closure
// free of side effects on simulation state (it may only touch memory staged
// for it, so it is safe on a worker goroutine), and commit performs the
// emissions and releases the input packet. Stage -> compute -> commit must
// be observationally identical to Process, so both engines run the staged
// path and stay byte-identical.
type AsyncKernel interface {
	Kernel
	Stage(ctx *Ctx, pk container.Packet) (compute func(), commit func(emit Emit))
}

// OffloadLabeled is optionally implemented by AsyncKernels to tag their
// offloaded compute closures with a pprof label (see sim.OffloadLabel), so
// CPU profiles attribute worker time per kernel. Return a package-level
// label so labeling stays allocation-free.
type OffloadLabeled interface {
	OffloadLabel() *sim.OffloadLabel
}

// stagedRun is a full block captured by Stage: compute sorts buf off the
// event loop, commit emits it with the run number assigned at stage time.
type stagedRun struct {
	buf    records.Buffer
	bucket int
	run    int
}

// Stage splits Process: the copy loop and run numbering happen inline (they
// mutate kernel state and draw from the shared buffer pool, both of which
// must stay on the event loop), while the sort of each completed block — the
// kernel's entire CPU cost — is deferred to the returned compute closure.
// compute is nil when the packet completed no block. The closures are built
// once and reused, so the per-packet path is allocation-free.
func (b *BlockSort) Stage(ctx *Ctx, pk container.Packet) (compute func(), commit func(emit Emit)) {
	if b.commitFn == nil {
		b.computeFn = func() {
			for i := range b.staged {
				b.staged[i].buf.Sort()
			}
			// Unguard last: a release racing this closure panics in
			// bufpool debug mode instead of corrupting the sort.
			for i := range b.staged {
				bufpool.Unguard(b.staged[i].buf.Raw())
			}
		}
		b.commitFn = func(emit Emit) {
			for i := range b.staged {
				r := b.staged[i]
				b.staged[i] = stagedRun{} // don't pin emitted buffers
				emit(container.Packet{Buf: r.buf, Sorted: true, Bucket: r.bucket, Run: r.run, Owned: true})
			}
			b.staged = b.staged[:0]
			b.stagedPk.Release() // input records now live in the run blocks
			b.stagedPk = container.Packet{}
		}
	}
	n := pk.Len()
	idx := pk.Bucket + 1
	if idx < 0 {
		panic(fmt.Sprintf("functor: blocksort bucket %d < -1", pk.Bucket))
	}
	for idx >= len(b.blocks) {
		b.blocks = append(b.blocks, records.Buffer{})
		b.fill = append(b.fill, 0)
	}
	for i := 0; i < n; i++ {
		if b.blocks[idx].Len() == 0 {
			b.blocks[idx] = records.NewPooled(b.Beta, b.RecSize)
		}
		copy(b.blocks[idx].Record(b.fill[idx]), pk.Buf.Record(i))
		b.fill[idx]++
		if b.fill[idx] == b.Beta {
			buf := b.blocks[idx].Slice(0, b.fill[idx])
			b.blocks[idx] = records.Buffer{}
			b.fill[idx] = 0
			b.runSeq++
			bufpool.Guard(buf.Raw(), "blocksort")
			b.staged = append(b.staged, stagedRun{buf: buf, bucket: idx - 1, run: b.runSeq})
		}
	}
	b.stagedPk = pk
	if len(b.staged) == 0 {
		return nil, b.commitFn
	}
	return b.computeFn, b.commitFn
}

var _ AsyncKernel = (*BlockSort)(nil)

// blockSortLabel tags BlockSort's offloaded sorts in CPU profiles.
var blockSortLabel = &sim.OffloadLabel{Kernel: "blocksort", Stage: "sort"}

// OffloadLabel attributes offloaded sort time to the blocksort kernel.
func (b *BlockSort) OffloadLabel() *sim.OffloadLabel { return blockSortLabel }

var _ OffloadLabeled = (*BlockSort)(nil)

// Sink is a terminal kernel that hands every packet to a user function —
// typically one that appends to a container on the instance's node,
// incurring that node's storage costs. Fn consumes the packet: appending
// its buffer to a container transfers ownership to the engine; sinks that
// only inspect the packet must Release it (or retain it and release later).
type Sink struct {
	Label string
	Fn    func(ctx *Ctx, pk container.Packet)
	// ExtraCompares adds declared per-record cost (0 for raw block
	// writes on conventional storage; collectors doing packet
	// reassembly leave it 0 too and rely on the touch charge).
	ExtraCompares float64
}

func (s *Sink) Name() string                         { return "sink:" + s.Label }
func (s *Sink) Compares(pk container.Packet) float64 { return s.ExtraCompares }
func (s *Sink) Process(ctx *Ctx, pk container.Packet, emit Emit) {
	s.Fn(ctx, pk)
}
func (s *Sink) Flush(ctx *Ctx, emit Emit) {}

// ASUEligible: sinks only move packets into local storage.
func (s *Sink) ASUEligible() {}

var _ Kernel = (*Sink)(nil)

// Passthrough forwards packets unchanged at a declared cost; useful for
// modelling pure forwarding hops and in tests.
type Passthrough struct {
	CostCompares float64
}

func (p *Passthrough) Name() string                         { return "passthrough" }
func (p *Passthrough) Compares(pk container.Packet) float64 { return p.CostCompares }
func (p *Passthrough) Process(ctx *Ctx, pk container.Packet, emit Emit) {
	emit(pk)
}
func (p *Passthrough) Flush(ctx *Ctx, emit Emit) {}

// ASUEligible: passthrough performs no computation beyond its declared
// cost.
func (p *Passthrough) ASUEligible() {}

var _ Kernel = (*Passthrough)(nil)

// FusedDistributeSort chains an α-way distribute directly into run
// formation inside a single host stage: the conventional-storage baseline,
// where all computation happens on the host in one pass over the data. Its
// declared cost is log2(α) + log2(β) compares per record, the sum of the
// two stages it fuses.
type FusedDistributeSort struct {
	dist *Distribute
	sort *BlockSort
}

// NewFusedDistributeSort builds the baseline host kernel.
func NewFusedDistributeSort(alpha, beta, recSize int) *FusedDistributeSort {
	return &FusedDistributeSort{dist: NewDistribute(alpha), sort: NewBlockSort(beta, recSize)}
}

func (f *FusedDistributeSort) Name() string { return "fused-distribute-sort" }

func (f *FusedDistributeSort) Compares(pk container.Packet) float64 {
	return f.dist.ComparesPerRecord() + f.sort.Compares(pk)
}

func (f *FusedDistributeSort) Process(ctx *Ctx, pk container.Packet, emit Emit) {
	n := pk.Len()
	for i := 0; i < n; i++ {
		rec := pk.Buf.Record(i)
		bucket := records.BucketOf(records.KeyOf(rec), f.dist.Splitters)
		// Sub-packets alias pk's buffer and are unowned; BlockSort's
		// release of them is a no-op.
		f.sort.Process(ctx, container.Packet{Buf: pk.Buf.Slice(i, i+1), Bucket: bucket, Run: -1}, emit)
	}
	pk.Release()
}

func (f *FusedDistributeSort) Flush(ctx *Ctx, emit Emit) { f.sort.Flush(ctx, emit) }

var _ Kernel = (*FusedDistributeSort)(nil)
