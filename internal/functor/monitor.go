package functor

import (
	"fmt"

	"lmas/internal/cluster"
	"lmas/internal/metrics"
	"lmas/internal/sim"
	"lmas/internal/trace"
)

// ProgressSample is one snapshot of a running pipeline: per-stage record
// counts and per-node CPU utilization over the last interval. The paper's
// emulator "is instrumented to report application progress, overall
// runtime, and resource utilization for each host and ASU in the target
// (emulated) system as the application executes" (Section 5); Monitor is
// that instrument.
type ProgressSample struct {
	At sim.Time
	// StageRecords maps stage name to cumulative records consumed.
	StageRecords map[string]int64
	// NodeUtil maps node name to CPU utilization over the last
	// interval (0..1).
	NodeUtil map[string]float64
}

// Monitor samples a pipeline at a fixed interval while it runs. Stage
// progress is captured live; node utilization is derived from CPU traces
// when the run completes (a hold is recorded when it ends, so reading the
// traces afterwards sees every window fully).
type Monitor struct {
	Interval sim.Duration
	Samples  []ProgressSample

	traces    map[string]*metrics.UtilTrace
	stopped   bool
	finalized bool
}

// Stop ends sampling after the current interval (call it from a terminal
// stage's Done hook, or leave it to fire automatically via AttachMonitor).
func (m *Monitor) Stop() { m.stopped = true }

// AttachMonitor starts sampling the pipeline every interval. It must be
// called before Start. Sampling stops automatically when the pipeline's
// terminal stages complete (every Terminal output gains a completion hook),
// so the monitor never keeps the simulation alive.
func (p *Pipeline) AttachMonitor(interval sim.Duration) *Monitor {
	if p.started {
		panic("functor: AttachMonitor after Start")
	}
	if interval <= 0 {
		panic("functor: monitor interval must be positive")
	}
	m := &Monitor{Interval: interval}
	// Chain the stop into every terminal stage's completion.
	terminals := 0
	for _, st := range p.stages {
		if d, ok := st.out.(*Discard); ok {
			terminals++
			prev := d.Done
			d.Done = func() {
				if prev != nil {
					prev()
				}
				m.Stop()
			}
		}
	}
	if terminals == 0 {
		panic("functor: AttachMonitor needs at least one Terminal stage")
	}
	cl := p.cl
	// Utilization comes from interval-aligned traces (which spread each
	// CPU hold across the windows it covers); nodes without a trace from
	// Params.UtilWindow get one attached here.
	traces := map[string]*metrics.UtilTrace{}
	for _, n := range cl.Nodes() {
		if n.CPUTrace != nil && n.CPUTrace.Window == interval {
			traces[n.Name] = n.CPUTrace
			continue
		}
		tr := metrics.NewUtilTrace(n.Name+".monitor", interval)
		n.CPU.SetRecorder(tr)
		traces[n.Name] = tr
	}
	m.traces = traces
	cl.Sim.Spawn("pipeline-monitor", func(proc *sim.Proc) {
		for !m.stopped {
			proc.Sleep(interval)
			s := ProgressSample{
				At:           proc.Now(),
				StageRecords: map[string]int64{},
			}
			var args []trace.Arg
			for _, st := range p.stages {
				var recs int64
				for _, inst := range st.instances {
					recs += inst.RecordsIn
				}
				s.StageRecords[st.Name] = recs
				// Stages in declaration order, so traced runs stay
				// deterministic (no map iteration).
				args = append(args, trace.Arg{Key: st.Name, Val: recs})
			}
			proc.TraceInstant("progress", "monitor", args...)
			m.Samples = append(m.Samples, s)
		}
	})
	return m
}

// Finalize fills every sample's NodeUtil from the completed traces. It runs
// automatically on first access through Table; call it directly when
// reading Samples by hand after the run.
func (m *Monitor) Finalize() {
	if m.finalized {
		return
	}
	m.finalized = true
	for i := range m.Samples {
		s := &m.Samples[i]
		s.NodeUtil = map[string]float64{}
		window := int(s.At/sim.Time(m.Interval)) - 1
		for name, tr := range m.traces {
			s.NodeUtil[name] = tr.At(window)
		}
	}
}

// Table renders progress for the named stages and nodes (order preserved).
func (m *Monitor) Table(stages []string, nodes []*cluster.Node) *metrics.Table {
	m.Finalize()
	headers := []string{"t(s)"}
	for _, s := range stages {
		headers = append(headers, s)
	}
	for _, n := range nodes {
		headers = append(headers, n.Name+" util")
	}
	t := metrics.NewTable("pipeline progress", headers...)
	for _, s := range m.Samples {
		row := []any{fmt.Sprintf("%.3f", s.At.Seconds())}
		for _, st := range stages {
			row = append(row, s.StageRecords[st])
		}
		for _, n := range nodes {
			row = append(row, fmt.Sprintf("%.2f", s.NodeUtil[n.Name]))
		}
		t.AddRow(row...)
	}
	return t
}
