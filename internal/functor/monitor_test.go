package functor

import (
	"strings"
	"testing"

	"lmas/internal/bte"
	"lmas/internal/container"
	"lmas/internal/records"
	"lmas/internal/route"
	"lmas/internal/sim"
)

func TestMonitorSamplesProgress(t *testing.T) {
	cl := testCluster(1, 2)
	var sets []*container.Set
	cl.Sim.Spawn("seed", func(p *sim.Proc) {
		for i, asu := range cl.ASUs {
			set := container.NewSet("in", bte.NewDisk(asu.Disk), recSize)
			set.Add(p, container.NewPacket(records.Generate(4096, recSize, int64(i), records.Uniform{})))
			sets = append(sets, set)
		}
	})
	cl.Sim.Run()
	pl := NewPipeline(cl)
	dist := pl.AddStage("dist", cl.ASUs, func() Kernel { return Adapt(NewDistribute(8), recSize, 64) })
	srt := pl.AddStage("sort", cl.Hosts, func() Kernel { return NewBlockSort(64, recSize) })
	dist.ConnectTo(srt, &route.RoundRobin{})
	srt.Terminal()
	for i, set := range sets {
		pl.AddSource("r", cl.ASUs[i], set.Scan(0, false), dist, fixed(i))
	}
	mon := pl.AttachMonitor(sim.Millisecond)
	if _, err := pl.Run(); err != nil {
		t.Fatal(err)
	}
	if len(mon.Samples) < 2 {
		t.Fatalf("only %d samples", len(mon.Samples))
	}
	// Stage counters must be monotone and end at the full input.
	prev := int64(-1)
	for _, s := range mon.Samples {
		if s.StageRecords["sort"] < prev {
			t.Fatal("stage records regressed")
		}
		prev = s.StageRecords["sort"]
	}
	if last := mon.Samples[len(mon.Samples)-1].StageRecords["dist"]; last != 8192 {
		t.Fatalf("final dist records %d, want 8192", last)
	}
	// Utilization must be within [0,1] and nonzero somewhere.
	mon.Finalize()
	sawBusy := false
	for _, s := range mon.Samples {
		for name, u := range s.NodeUtil {
			if u < -1e-9 || u > 1+1e-9 {
				t.Fatalf("util %s = %v out of range", name, u)
			}
			if u > 0.5 {
				sawBusy = true
			}
		}
	}
	if !sawBusy {
		t.Fatal("no node ever busy; sampling broken")
	}
	// The table renders.
	tab := mon.Table([]string{"dist", "sort"}, cl.Nodes()[:2]).String()
	if !strings.Contains(tab, "dist") || !strings.Contains(tab, "util") {
		t.Fatalf("table malformed:\n%s", tab)
	}
}

func TestMonitorStopsWithPipeline(t *testing.T) {
	// The sim must drain (no eternal monitor): Run returning without a
	// deadlock error is the assertion.
	cl := testCluster(1, 1)
	var set *container.Set
	cl.Sim.Spawn("seed", func(p *sim.Proc) {
		set = container.NewSet("in", bte.NewMemory(), recSize)
		set.Add(p, container.NewPacket(mkBuf(1, 2, 3)))
	})
	cl.Sim.Run()
	pl := NewPipeline(cl)
	st := pl.AddStage("s", cl.Hosts, func() Kernel { return &Passthrough{} })
	st.Terminal()
	pl.AddSource("r", cl.ASUs[0], set.Scan(0, false), st, &route.RoundRobin{})
	pl.AttachMonitor(10 * sim.Millisecond)
	if _, err := pl.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachMonitorValidation(t *testing.T) {
	cl := testCluster(1, 1)
	pl := NewPipeline(cl)
	st := pl.AddStage("s", cl.Hosts, func() Kernel { return &Passthrough{} })
	st.Terminal()
	for _, fn := range []func(){
		func() { pl.AttachMonitor(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
}
