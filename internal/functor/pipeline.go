package functor

import (
	"fmt"
	"strings"

	"lmas/internal/cluster"
	"lmas/internal/container"
	"lmas/internal/critpath"
	"lmas/internal/route"
	"lmas/internal/sim"
	"lmas/internal/telemetry"
	"lmas/internal/trace"
)

// DefaultInboxPackets bounds each instance's input queue; the bound models
// limited buffer memory and provides the backpressure that propagates load
// imbalances upstream.
const DefaultInboxPackets = 8

// packetHeaderBytes approximates per-message framing on the interconnect.
const packetHeaderBytes = 64

// Instance is one placed copy of a stage's kernel: a proc pinned to a node,
// consuming packets from its inbox.
type Instance struct {
	Stage *Stage
	Node  *cluster.Node
	Index int
	In    *sim.Queue[container.Packet]

	// out is the instance's bounded send buffer: the kernel emits into
	// it and a courier proc drains it through the stage's output,
	// overlapping computation with network transfer (send-side DMA).
	// Backpressure still propagates: a full outbox blocks the kernel.
	out *sim.Queue[container.Packet]

	kernel Kernel

	// enqAt mirrors the inbox FIFO with each packet's enqueue instant, so
	// run can report queue wait without touching the packet format. Edge
	// deliver appends and run pops — the only Put/Get sites for instance
	// inboxes — and only when the cluster has telemetry or a profiler
	// attached.
	enqAt []sim.Time

	// Stats.
	PacketsIn, RecordsIn   int64
	PacketsOut, RecordsOut int64
	OpsCharged             float64
	// OpsOffloaded is the share of OpsCharged whose pure compute ran
	// behind the offload seam (staged kernels with a non-nil compute).
	// Deterministic: the staged path runs under every engine.
	OpsOffloaded float64
}

// Label identifies the instance for routing diagnostics.
func (in *Instance) Label() string {
	return fmt.Sprintf("%s#%d@%s", in.Stage.Name, in.Index, in.Node.Name)
}

// Pending reports the instance's queued backlog (route.Endpoint).
func (in *Instance) Pending() int { return in.In.Len() }

var _ route.Endpoint = (*Instance)(nil)

// Stage is a replicated computation step: one kernel instance per placement
// node. "Load management may... adjust the number of functor instances for
// a computation stage... or adjust the assignment of functor instances to
// host nodes or ASUs" (Section 3.3) — in this runtime, by choosing Nodes.
type Stage struct {
	Name  string
	Nodes []*cluster.Node
	// NewKernel builds one kernel per instance (instances hold private
	// bounded state).
	NewKernel func() Kernel
	// InboxPackets bounds each instance's input queue (0 = default).
	InboxPackets int
	// NoCPU marks a stage that spends no processor time: conventional
	// (non-active) storage whose transfers are pure DMA. Declared kernel
	// costs and touch charges are skipped; only I/O performed by the
	// kernel (disk, network) takes virtual time.
	NoCPU bool

	pipeline  *Pipeline
	out       output
	instances []*Instance
	producers int // input producers not yet finished
	started   bool
}

// Instances returns the stage's placed instances (valid after Start).
func (st *Stage) Instances() []*Instance { return st.instances }

// output receives packets produced by a stage or source.
type output interface {
	deliver(ctx *Ctx, pk container.Packet)
	producerDone(ctx *Ctx)
	addProducer(n int)
}

// Edge routes packets from producers to the instances of a destination
// stage under a routing policy, charging the interconnect for cross-node
// hops. When every producer has finished, the destination inboxes close.
type Edge struct {
	to     *Stage
	policy route.Policy

	eps []route.Endpoint

	// Stats.
	Packets, Records int64
	NetBytes         int64
	CrossNode        int64
}

func (e *Edge) deliver(ctx *Ctx, pk container.Packet) {
	if len(e.eps) == 0 {
		panic("functor: edge delivered before Start")
	}
	info := route.PacketInfo{Bucket: pk.Bucket, Records: pk.Len()}
	dest := e.to.instances[e.policy.Pick(info, e.eps)]
	if dest.Node != ctx.Node {
		size := pk.Bytes() + packetHeaderBytes
		ctx.Cluster.Net.Stream(ctx.Proc, ctx.Node.NIC, dest.Node.NIC, size)
		e.NetBytes += int64(size)
		e.CrossNode++
	}
	e.Packets++
	e.Records += int64(pk.Len())
	if err := dest.In.Put(ctx.Proc, pk); err != nil {
		panic(fmt.Sprintf("functor: deliver to closed inbox %s", dest.Label()))
	}
	reg := e.to.pipeline.cl.Telemetry
	if reg != nil || e.to.pipeline.cl.Profiler != nil {
		// No other proc can run between Put returning and this append
		// (code between blocking calls is atomic), so enqAt stays in
		// FIFO lockstep with the inbox even with several producers.
		dest.enqAt = append(dest.enqAt, ctx.Proc.Now())
	}
	if reg != nil {
		// Sparse backlog sampling: a gauge point every 64th delivery, not
		// a periodic sampler proc — a sampler's trailing wakeups would
		// extend the simulated run past pipeline completion.
		if e.Packets%64 == 0 {
			total := 0
			for _, ep := range e.eps {
				total += ep.Pending()
			}
			reg.Gauge("functor."+e.to.Name+".backlog").Set(ctx.Proc.Now(), float64(total))
		}
	}
}

// SetPolicy replaces the edge's routing policy. Safe to call from any proc
// or event while the pipeline runs (the simulation is single-threaded);
// this is the lever mid-run load management pulls when it detects an
// imbalance. With telemetry attached, the switch lands in the decision
// audit log with each destination's backlog at the moment of the change.
func (e *Edge) SetPolicy(p route.Policy) {
	if reg := e.to.pipeline.cl.Telemetry; reg != nil && len(e.eps) > 0 {
		old := "none"
		if e.policy != nil {
			old = e.policy.Name()
		}
		readings := make([]telemetry.Reading, len(e.eps))
		for i, ep := range e.eps {
			readings[i] = telemetry.Reading{Key: ep.Label() + ".pending", Value: float64(ep.Pending())}
		}
		reg.Decide(e.to.pipeline.cl.Sim.Now(), "route."+e.to.Name, "set-policy",
			old+"->"+p.Name(), readings...)
	}
	e.policy = p
}

// Policy reports the edge's current routing policy.
func (e *Edge) Policy() route.Policy { return e.policy }

func (e *Edge) producerDone(ctx *Ctx) {
	st := e.to
	st.producers--
	if st.producers < 0 {
		panic("functor: too many producerDone on stage " + st.Name)
	}
	if st.producers == 0 {
		for _, in := range st.instances {
			in.In.Close()
		}
	}
}

func (e *Edge) addProducer(n int) { e.to.producers += n }

// Discard is an output that drops packets; terminal stages whose kernels
// perform their own side effects (e.g. writing containers) use it.
type Discard struct {
	Packets, Records int64
	// Done, if set, runs (in scheduler context) when the terminal
	// stage's last instance finishes — the pipeline-completion hook that
	// lets co-resident workloads (e.g. foreground storage clients in the
	// isolation experiments) wind down.
	Done func()

	producers int
}

func (d *Discard) deliver(ctx *Ctx, pk container.Packet) {
	d.Packets++
	d.Records += int64(pk.Len())
	pk.Release() // terminal drop: recycle owned buffers
}

func (d *Discard) producerDone(ctx *Ctx) {
	d.producers--
	if d.producers == 0 && d.Done != nil {
		d.Done()
	}
}

func (d *Discard) addProducer(n int) { d.producers += n }

// Pipeline assembles sources, stages and edges on a cluster and runs them
// to completion in virtual time.
type Pipeline struct {
	cl      *cluster.Cluster
	stages  []*Stage
	sources []*source
	started bool
}

// NewPipeline creates an empty pipeline on cl.
func NewPipeline(cl *cluster.Cluster) *Pipeline {
	return &Pipeline{cl: cl}
}

// Cluster returns the pipeline's cluster.
func (p *Pipeline) Cluster() *cluster.Cluster { return p.cl }

// Stages returns the declared stages in declaration order.
func (p *Pipeline) Stages() []*Stage { return p.stages }

// AddStage declares a stage replicated across nodes. Connect its output
// with ConnectTo or LeaveTerminal before Start.
func (p *Pipeline) AddStage(name string, nodes []*cluster.Node, newKernel func() Kernel) *Stage {
	if len(nodes) == 0 {
		panic("functor: stage " + name + " has no placement nodes")
	}
	st := &Stage{Name: name, Nodes: nodes, NewKernel: newKernel, pipeline: p}
	p.stages = append(p.stages, st)
	return st
}

// ConnectTo routes st's output to stage to under policy.
func (st *Stage) ConnectTo(to *Stage, policy route.Policy) *Edge {
	e := &Edge{to: to, policy: policy}
	st.setOut(e)
	return e
}

// Terminal marks st as a final stage; emitted packets are counted and
// dropped (the kernel is expected to produce side effects itself).
func (st *Stage) Terminal() *Discard {
	d := &Discard{}
	st.setOut(d)
	return d
}

func (st *Stage) setOut(o output) {
	if st.out != nil {
		panic("functor: stage " + st.Name + " output set twice")
	}
	st.out = o
}

// source feeds a container scan into an edge from a given node.
type source struct {
	name   string
	node   *cluster.Node
	scan   *container.Scan
	out    output
	outbox *sim.Queue[container.Packet] // set at Start, for queue telemetry
}

// AddSource spawns a reader on node that scans sc and routes every packet
// into to under policy. The scan's I/O costs are charged as the read
// proceeds; the reader spends no CPU (data moves by DMA), matching the
// conventional-storage reading path.
func (p *Pipeline) AddSource(name string, node *cluster.Node, sc *container.Scan, to *Stage, policy route.Policy) {
	// Sources into the same stage share one edge per source for stats
	// simplicity; each source is one producer.
	e := &Edge{to: to, policy: policy}
	p.sources = append(p.sources, &source{name: name, node: node, scan: sc, out: e})
}

// Start places instances and spawns all procs. The caller then runs the
// cluster's simulator; when it drains, the pipeline has completed.
func (p *Pipeline) Start() {
	if p.started {
		panic("functor: pipeline started twice")
	}
	p.started = true
	// Materialize instances.
	for _, st := range p.stages {
		if st.out == nil {
			panic("functor: stage " + st.Name + " has no output; call ConnectTo or Terminal")
		}
		cap := st.InboxPackets
		if cap <= 0 {
			cap = DefaultInboxPackets
		}
		for i, n := range st.Nodes {
			inst := &Instance{
				Stage: st,
				Node:  n,
				Index: i,
				In:    sim.NewQueue[container.Packet](p.cl.Sim, fmt.Sprintf("%s#%d.in", st.Name, i), cap),
			}
			inst.kernel = st.NewKernel()
			if p.cl.WantsQueueProbes() {
				q := inst.In
				p.cl.RegisterQueueProbe(q.Name(), func() (int, int) {
					_, high := q.WaitStats()
					return q.Len(), high
				})
			}
			// ASUs are shared infrastructure: only prevalidated
			// kernels may run there (Section 3.1's constraint, and
			// the basis for the isolation guarantees).
			if n.Kind == cluster.ASU {
				if _, ok := inst.kernel.(ASUEligible); !ok {
					panic(fmt.Sprintf(
						"functor: kernel %q is not ASU-eligible but stage %s places it on %s",
						inst.kernel.Name(), st.Name, n.Name))
				}
			}
			st.instances = append(st.instances, inst)
		}
	}
	// Resolve edge endpoints and producer counts.
	for _, st := range p.stages {
		if e, ok := st.out.(*Edge); ok {
			e.resolve()
		}
		st.out.addProducer(len(st.instances))
	}
	for _, src := range p.sources {
		e := src.out.(*Edge)
		e.resolve()
		e.addProducer(1)
	}
	// Spawn. Every producer (source or instance) gets a courier that
	// drains its outbox through the stage output, so transfers overlap
	// with reading and computing.
	//
	// Backpressure blame is registered against the consuming proc as each
	// one spawns (registration is sim-inert, so spawn order — and with it
	// scheduling — is unchanged): a producer blocked on a full inbox, or
	// on its own outbox which a slow delivery path keeps full, is being
	// slowed by whatever its consumer's time is made of, so those waits
	// are apportioned by the consumer's mix rather than parked in the
	// residual cond-wait class. Starvation waits ("not-empty") stay
	// unregistered on purpose: an instance idling for input is a signal
	// about some *other* stage, which the blamed waits upstream capture.
	pf := p.cl.Profiler
	for i, src := range p.sources {
		src := src
		outbox := sim.NewQueue[container.Packet](p.cl.Sim, fmt.Sprintf("%s.out", src.name), outboxPackets)
		src.outbox = outbox
		stage := sourceStage(src.name)
		p.cl.Sim.SpawnOn(src.node.Part, src.name, func(proc *sim.Proc) {
			// Sources spend disk time, not CPU, so queued packets behind
			// them are storage-bound.
			pf.Bind(proc, stage, src.node.Name, nodeClass(src.node), critpath.ClassDisk)
			for {
				// Start the chain before the read so the packet's I/O
				// time lands on its own provenance record.
				id := pf.StartChain(proc)
				pk, ok := src.scan.Next(proc)
				if !ok {
					pf.Abandon(proc, id)
					break
				}
				pk.Prov = id
				if err := outbox.Put(proc, pk); err != nil {
					panic(err)
				}
				pf.EndPacket(proc)
			}
			outbox.Close()
		})
		courier := p.spawnCourier(fmt.Sprintf("%s.courier%d", src.name, i), stage, src.node, outbox, src.out)
		if pf != nil {
			if e, ok := src.out.(*Edge); ok {
				pf.BlameWaitProc(outbox.Name()+" not-full", courier, edgeBlame(e))
			}
		}
	}
	for _, st := range p.stages {
		for _, inst := range st.instances {
			inst := inst
			inst.out = sim.NewQueue[container.Packet](p.cl.Sim, inst.Label()+".out", outboxPackets)
			instProc := p.cl.Sim.SpawnOn(inst.Node.Part, inst.Label(), func(proc *sim.Proc) { inst.run(proc) })
			courier := p.spawnCourier(inst.Label()+".courier", st.Name, inst.Node, inst.out, st.out)
			if pf != nil {
				pf.BlameWaitProc(inst.In.Name()+" not-full", instProc, stageBlame(st, inst.Node))
				if e, ok := st.out.(*Edge); ok {
					pf.BlameWaitProc(inst.out.Name()+" not-full", courier, edgeBlame(e))
				}
			}
		}
	}
}

// sourceStage maps a source name like "read@asu3" to its waterfall stage
// label ("read"), so per-node source rows aggregate under one stage.
func sourceStage(name string) string {
	if i := strings.IndexByte(name, '@'); i >= 0 {
		return name[:i]
	}
	return name
}

// nodeClass is the blame class of a node's processor.
func nodeClass(n *cluster.Node) critpath.Class {
	if n.Kind == cluster.Host {
		return critpath.ClassHostCPU
	}
	return critpath.ClassASUCPU
}

// stageBlame is the blame class for time spent waiting on an instance of st
// placed on node n: its processor, or storage for NoCPU (pure DMA) stages.
func stageBlame(st *Stage, n *cluster.Node) critpath.Class {
	if st.NoCPU {
		return critpath.ClassDisk
	}
	return nodeClass(n)
}

// edgeBlame is the blame class for backpressure from an edge's destination
// stage (stages place on nodes of one kind in practice, so the first
// placement node is representative).
func edgeBlame(e *Edge) critpath.Class {
	return stageBlame(e.to, e.to.Nodes[0])
}

// outboxPackets bounds each producer's send buffer.
const outboxPackets = 4

// spawnCourier moves packets from outbox into out, charging transfer costs
// on the producing node's interface; it signals producerDone when the
// outbox closes and drains. stage is the producer's waterfall stage label:
// courier time (network transfer, downstream backpressure) is part of the
// producing stage's hand-off cost. Returns the courier proc so producer-side
// outbox waits can be blamed by its mix (the courier's time is network plus
// destination-inbox backpressure, exactly what a full outbox means).
func (p *Pipeline) spawnCourier(name, stage string, node *cluster.Node, outbox *sim.Queue[container.Packet], out output) *sim.Proc {
	ctx := &Ctx{Cluster: p.cl, Node: node}
	pf := p.cl.Profiler
	return p.cl.Sim.SpawnOn(node.Part, name, func(proc *sim.Proc) {
		ctx.Proc = proc
		pf.Bind(proc, stage, node.Name, nodeClass(node), nodeClass(node))
		for {
			pk, ok := outbox.Get(proc)
			if !ok {
				break
			}
			pf.BeginPacket(proc, pk.Prov)
			out.deliver(ctx, pk)
			pf.EndPacket(proc)
		}
		out.producerDone(ctx)
	})
}

func (e *Edge) resolve() {
	if e.eps != nil {
		return
	}
	for _, in := range e.to.instances {
		e.eps = append(e.eps, in)
	}
	if len(e.eps) == 0 {
		panic("functor: edge to stage " + e.to.Name + " with no instances")
	}
}

// run is an instance's main loop: charge the node for each packet's
// declared cost, process it, and flush at end of input.
func (in *Instance) run(proc *sim.Proc) {
	ctx := &Ctx{Cluster: in.Stage.pipeline.cl, Node: in.Node, Proc: proc, Instance: in}
	cm := ctx.Cluster.Params.Costs
	touch := ctx.Cluster.Touch(in.Node)
	// Telemetry instruments (nil when telemetry is off; Observe no-ops).
	var waitH, svcH, latH *telemetry.Histogram
	if reg := ctx.Cluster.Telemetry; reg != nil {
		waitH = reg.Histogram("functor."+in.Stage.Name+".queue_wait", nil)
		svcH = reg.Histogram("functor."+in.Stage.Name+".service", nil)
		latH = reg.Histogram("functor."+in.Stage.Name+".latency", nil)
	}
	pf := ctx.Cluster.Profiler
	pf.Bind(proc, in.Stage.Name, in.Node.Name, nodeClass(in.Node), stageBlame(in.Stage, in.Node))
	// Kernels that implement AsyncKernel run the staged path under every
	// engine: the serial engine executes the compute closure inline, the
	// parallel engine overlaps it with the virtual Compute charge on a
	// worker goroutine. Same path, same observable behaviour.
	async, _ := in.kernel.(AsyncKernel)
	var lbl *sim.OffloadLabel
	if async != nil {
		if l, ok := in.kernel.(OffloadLabeled); ok {
			lbl = l.OffloadLabel()
		}
	}
	emit := func(pk container.Packet) {
		if pf != nil && pk.Prov == 0 {
			// A freshly produced packet (rather than a re-emitted input)
			// derives its chain from the one being processed, or — for
			// Flush-time emissions — the last one this instance handled.
			pk.Prov = pf.Derive(proc)
		}
		in.PacketsOut++
		in.RecordsOut += int64(pk.Len())
		if err := in.out.Put(proc, pk); err != nil {
			panic(err)
		}
	}
	proc.TraceBegin("stage "+in.Stage.Name, "functor",
		trace.Arg{Key: "node", Val: in.Node.Name})
	for {
		pk, ok := in.In.Get(proc)
		if !ok {
			break
		}
		pf.BeginPacket(proc, pk.Prov)
		var wait sim.Duration
		if len(in.enqAt) > 0 { // in FIFO lockstep with the inbox
			from := in.enqAt[0]
			in.enqAt = in.enqAt[1:]
			wait = sim.Duration(proc.Now() - from)
			waitH.ObserveDuration(wait)
			pf.ChargeQueueTime(proc, from, proc.Now())
		}
		svcStart := proc.Now()
		in.PacketsIn++
		in.RecordsIn += int64(pk.Len())
		// Guarded so the per-packet variadic arg slice is only built when a
		// tracer is attached; this loop runs once per packet per hop.
		traced := proc.Tracing()
		if traced {
			proc.TraceBegin("packet", "functor", trace.Arg{Key: "records", Val: pk.Len()})
		}
		if async != nil {
			// Stage captures the pure compute before the virtual charge so
			// the engine can run it concurrently with other procs' events
			// inside the lookahead window; Wait joins it (wall clock only)
			// before commit emits.
			compute, commit := async.Stage(ctx, pk)
			var job *sim.Job
			if compute != nil {
				job = proc.GoLabeled(lbl, compute)
			}
			if !in.Stage.NoCPU {
				ops := cm.PacketOps + float64(pk.Len())*(touch+in.kernel.Compares(pk)*cm.CompareOps)
				in.OpsCharged += ops
				if job != nil {
					in.OpsOffloaded += ops
				}
				in.Node.Compute(proc, ops)
			}
			job.Wait()
			commit(emit)
		} else {
			if !in.Stage.NoCPU {
				ops := cm.PacketOps + float64(pk.Len())*(touch+in.kernel.Compares(pk)*cm.CompareOps)
				in.OpsCharged += ops
				in.Node.Compute(proc, ops)
			}
			in.kernel.Process(ctx, pk, emit)
		}
		svc := sim.Duration(proc.Now() - svcStart)
		svcH.ObserveDuration(svc)
		latH.ObserveDuration(wait + svc)
		if traced {
			proc.TraceEnd()
		}
		pf.EndPacket(proc)
	}
	in.kernel.Flush(ctx, emit)
	in.out.Close() // the courier signals producerDone after draining
	proc.TraceEnd(
		trace.Arg{Key: "packets", Val: in.PacketsIn},
		trace.Arg{Key: "records", Val: in.RecordsIn})
}

// Run is a convenience: Start the pipeline and run the simulator to
// completion, returning the elapsed virtual time. With telemetry attached,
// per-stage totals (packets, records, ops, cross-node traffic) are flushed
// to counters when the pipeline drains.
func (p *Pipeline) Run() (sim.Duration, error) {
	start := p.cl.Sim.Now()
	p.Start()
	if err := p.cl.Sim.Run(); err != nil {
		return 0, err
	}
	p.FlushTelemetry()
	return sim.Duration(p.cl.Sim.Now() - start), nil
}

// FlushTelemetry records each stage's totals as counters on the cluster's
// registry. Run calls it automatically; callers driving Start and the
// simulator themselves should call it once the pipeline has drained. No-op
// without telemetry.
func (p *Pipeline) FlushTelemetry() {
	reg := p.cl.Telemetry
	if reg == nil {
		return
	}
	for _, st := range p.stages {
		var pks, recs int64
		var ops, offl float64
		for _, inst := range st.instances {
			pks += inst.PacketsIn
			recs += inst.RecordsIn
			ops += inst.OpsCharged
			offl += inst.OpsOffloaded
		}
		pre := "functor." + st.Name
		reg.Counter(pre + ".packets").Add(pks)
		reg.Counter(pre + ".records").Add(recs)
		reg.Counter(pre + ".ops").Add(int64(ops))
		if offl > 0 {
			reg.Counter(pre + ".offload_ops").Add(int64(offl))
		}
		if e, ok := st.out.(*Edge); ok {
			reg.Counter(pre + ".out.net_bytes").Add(e.NetBytes)
			reg.Counter(pre + ".out.cross_node").Add(e.CrossNode)
		}
	}
	var srcBytes, srcCross int64
	for _, src := range p.sources {
		if e, ok := src.out.(*Edge); ok {
			srcBytes += e.NetBytes
			srcCross += e.CrossNode
		}
	}
	reg.Counter("functor.sources.net_bytes").Add(srcBytes)
	reg.Counter("functor.sources.cross_node").Add(srcCross)
	// Per-queue wait accounting: cumulative buffered time and high-water
	// depth for every inbox and outbox, so the report's queue table shows
	// where packets sat.
	now := p.cl.Sim.Now()
	flushQueue := func(q *sim.Queue[container.Packet]) {
		cum, high := q.WaitStats()
		reg.Gauge("queue."+q.Name()+".wait_sec").Set(now, cum.Seconds())
		reg.Gauge("queue."+q.Name()+".high_water").Set(now, float64(high))
	}
	for _, st := range p.stages {
		for _, inst := range st.instances {
			flushQueue(inst.In)
			flushQueue(inst.out)
		}
	}
	for _, src := range p.sources {
		if src.outbox != nil {
			flushQueue(src.outbox)
		}
	}
}
