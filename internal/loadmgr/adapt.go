package loadmgr

import (
	"lmas/internal/cluster"
	"lmas/internal/sim"
	"lmas/internal/telemetry"
)

// ImbalanceWatch monitors a set of nodes' CPUs during a run and invokes a
// callback when their utilizations diverge persistently — the runtime
// detection half of "the routing of records across functor instances may
// be responsive to dynamic load conditions visible to the system"
// (Section 3.3). The paper's Figure 10 applies load management from the
// start; the watch enables the stronger form, switching policy mid-run
// when skew actually materializes.
type ImbalanceWatch struct {
	// Window is the sampling period.
	Window sim.Duration
	// Threshold is the utilization spread (0..1) that counts as
	// imbalanced.
	Threshold float64
	// Consecutive is how many imbalanced windows in a row trigger the
	// callback.
	Consecutive int

	// Audit, when non-nil, receives a decision-log entry each time the
	// watch fires, recording the per-node utilization readings that
	// triggered the reconfiguration.
	Audit *telemetry.Registry

	// FiredAt records when the callback ran (zero if never).
	FiredAt sim.Time
	fired   bool
}

// Spawn starts the watch over nodes on cl's simulator. The watch samples
// each window; after Consecutive imbalanced windows it calls onImbalance
// once and exits. It also exits silently when *stop becomes true (set it
// from a pipeline-completion hook), so it never deadlocks the simulation.
func (w *ImbalanceWatch) Spawn(cl *cluster.Cluster, nodes []*cluster.Node, stop *bool, onImbalance func()) {
	if w.Window <= 0 || w.Threshold <= 0 || w.Consecutive < 1 {
		panic("loadmgr: ImbalanceWatch needs positive Window, Threshold, Consecutive")
	}
	prev := make([]sim.Duration, len(nodes))
	cl.Sim.Spawn("imbalance-watch", func(p *sim.Proc) {
		streak := 0
		for {
			p.Sleep(w.Window)
			if *stop {
				return
			}
			lo, hi := 1.0, 0.0
			utils := make([]float64, len(nodes))
			for i, n := range nodes {
				busy := n.CPU.Busy()
				util := float64(busy-prev[i]) / float64(w.Window)
				prev[i] = busy
				utils[i] = util
				if util < lo {
					lo = util
				}
				if util > hi {
					hi = util
				}
			}
			if hi-lo > w.Threshold {
				streak++
			} else {
				streak = 0
			}
			if streak >= w.Consecutive {
				w.fired = true
				w.FiredAt = p.Now()
				if w.Audit != nil {
					readings := make([]telemetry.Reading, 0, len(nodes)+1)
					for i, n := range nodes {
						readings = append(readings,
							telemetry.Reading{Key: n.Name + ".util", Value: utils[i]})
					}
					readings = append(readings,
						telemetry.Reading{Key: "spread", Value: hi - lo})
					w.Audit.Decide(p.Now(), "loadmgr.imbalance-watch", "imbalance-detected",
						"spread exceeded threshold; invoking reconfiguration", readings...)
				}
				onImbalance()
				return
			}
		}
	})
}

// Fired reports whether the watch triggered.
func (w *ImbalanceWatch) Fired() bool { return w.fired }
