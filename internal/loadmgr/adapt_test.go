package loadmgr

import (
	"testing"

	"lmas/internal/cluster"
	"lmas/internal/sim"
)

func watchCluster() *cluster.Cluster {
	p := cluster.DefaultParams()
	p.Hosts = 2
	return cluster.New(p)
}

func TestWatchFiresOnSustainedImbalance(t *testing.T) {
	cl := watchCluster()
	w := &ImbalanceWatch{Window: 10 * sim.Millisecond, Threshold: 0.5, Consecutive: 3}
	stop := false
	fired := false
	w.Spawn(cl, cl.Hosts, &stop, func() { fired = true })
	// Host 0 computes flat out for 100 ms; host 1 idles.
	cl.Sim.Spawn("busy", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			cl.Hosts[0].Compute(p, cl.Hosts[0].OpsPerSec/1000) // 1 ms slices
		}
		stop = true
	})
	if err := cl.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired || !w.Fired() {
		t.Fatal("watch did not fire under sustained imbalance")
	}
	// Needs Consecutive windows: not before 3 windows have passed.
	if w.FiredAt < sim.Time(30*sim.Millisecond) {
		t.Fatalf("fired at %v, before 3 windows elapsed", w.FiredAt)
	}
}

func TestWatchIgnoresTransients(t *testing.T) {
	cl := watchCluster()
	w := &ImbalanceWatch{Window: 10 * sim.Millisecond, Threshold: 0.5, Consecutive: 3}
	stop := false
	w.Spawn(cl, cl.Hosts, &stop, func() {})
	// Alternate: one imbalanced window, one balanced — never 3 in a row.
	cl.Sim.Spawn("alternating", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if i%2 == 0 {
				cl.Hosts[0].Compute(p, cl.Hosts[0].OpsPerSec/100) // 10 ms on host0
			} else {
				// Both hosts equally busy: balanced window.
				cl.Hosts[0].Compute(p, cl.Hosts[0].OpsPerSec/200)
				cl.Hosts[1].Compute(p, cl.Hosts[1].OpsPerSec/200)
			}
		}
		stop = true
	})
	if err := cl.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Fired() {
		t.Fatalf("watch fired at %v on alternating load", w.FiredAt)
	}
}

func TestWatchStopsViaFlag(t *testing.T) {
	cl := watchCluster()
	w := &ImbalanceWatch{Window: sim.Millisecond, Threshold: 0.5, Consecutive: 1000}
	stop := false
	w.Spawn(cl, cl.Hosts, &stop, func() {})
	cl.Sim.Spawn("stopper", func(p *sim.Proc) {
		p.Sleep(5 * sim.Millisecond)
		stop = true
	})
	// Run must drain without deadlock: the watch exits on the flag.
	if err := cl.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Fired() {
		t.Fatal("watch fired spuriously")
	}
}

func TestWatchValidatesParams(t *testing.T) {
	cl := watchCluster()
	stop := false
	bad := []*ImbalanceWatch{
		{Window: 0, Threshold: 0.5, Consecutive: 1},
		{Window: sim.Millisecond, Threshold: 0, Consecutive: 1},
		{Window: sim.Millisecond, Threshold: 0.5, Consecutive: 0},
	}
	for i, w := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			w.Spawn(cl, cl.Hosts, &stop, func() {})
		}()
	}
}
