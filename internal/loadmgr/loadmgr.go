// Package loadmgr implements system-level load management for active
// storage (Section 3.3): predicting the effect of offloading computation to
// ASUs so the system can "configure the application to match hardware
// capabilities and load conditions", and choosing configurations
// adaptively. The dynamic record-routing half of load management lives in
// package route; this package covers the configuration half — "the system
// can adjust the computation to the degree of parallelism available, even
// when that parallelism is asymmetric".
package loadmgr

import (
	"fmt"
	"math"

	"lmas/internal/cluster"
	"lmas/internal/critpath"
	"lmas/internal/metrics"
	"lmas/internal/sim"
	"lmas/internal/telemetry"
)

// Pass1Model predicts the throughput of DSM-Sort's run-formation pass from
// the cluster parameters and cost model — the analytic counterpart of the
// emulation, used to pick configurations without running them. The bounds
// on functor cost that the programming model exposes ("known bounds on
// functor computation cost per unit of I/O") are exactly what makes this
// prediction possible.
type Pass1Model struct {
	Params cluster.Params
}

func log2f(n int) float64 {
	if n < 2 {
		return 0
	}
	return math.Log2(float64(n))
}

// Rates decomposes a placement's predicted throughput (records/second) per
// resource: the slowest resource is the analytic bottleneck the emulation's
// observed critical path can be checked against. A zero rate means the
// placement does not exercise that resource class.
type Rates struct {
	ASUCPU  float64 `json:"asu_cpu,omitempty"`
	HostCPU float64 `json:"host_cpu"`
	Disk    float64 `json:"disk"`
	Net     float64 `json:"net"`
}

// Bottleneck reports the limiting resource class and its rate: the smallest
// nonzero rate, ties going to the earlier class in (asu-cpu, host-cpu, disk,
// net) order.
func (r Rates) Bottleneck() (critpath.Class, float64) {
	best, bestRate := critpath.Class(""), math.Inf(1)
	consider := func(c critpath.Class, rate float64) {
		if rate > 0 && rate < bestRate {
			best, bestRate = c, rate
		}
	}
	consider(critpath.ClassASUCPU, r.ASUCPU)
	consider(critpath.ClassHostCPU, r.HostCPU)
	consider(critpath.ClassDisk, r.Disk)
	consider(critpath.ClassNet, r.Net)
	return best, bestRate
}

// Min reports the limiting rate.
func (r Rates) Min() float64 {
	_, rate := r.Bottleneck()
	return rate
}

// ActiveRates decomposes the active placement's predicted throughput:
// distribute and collect on the ASUs, block sort on the hosts.
func (m Pass1Model) ActiveRates(alpha, beta int) Rates {
	p := m.Params
	touchH := p.Costs.Touch(cluster.Host, p.RecordSize)
	touchA := p.Costs.Touch(cluster.ASU, p.RecordSize)
	asuOps := p.HostOpsPerSec / p.C
	// Per-record ASU work: distribute (touch + log2 alpha compares) plus
	// run collection (touch).
	asuPerRec := (touchA + log2f(alpha)*p.Costs.CompareOps) + touchA
	// Per-record host work: block sort.
	hostPerRec := touchH + log2f(beta)*p.Costs.CompareOps
	return Rates{
		ASUCPU:  float64(p.ASUs) * asuOps / asuPerRec,
		HostCPU: float64(p.Hosts) * p.HostOpsPerSec / hostPerRec,
		Disk:    m.diskRate(),
		Net:     m.netRate(),
	}
}

// ActiveRate predicts records/second for the active placement: distribute
// and collect on the ASUs, block sort on the hosts.
func (m Pass1Model) ActiveRate(alpha, beta int) float64 {
	return m.ActiveRates(alpha, beta).Min()
}

// ConventionalRates decomposes the baseline placement's predicted
// throughput: everything fused on the hosts, dumb storage streaming raw
// blocks (no ASU CPU component).
func (m Pass1Model) ConventionalRates(alpha, beta int) Rates {
	p := m.Params
	touchH := p.Costs.Touch(cluster.Host, p.RecordSize)
	hostPerRec := touchH + (log2f(alpha)+log2f(beta))*p.Costs.CompareOps
	return Rates{
		HostCPU: float64(p.Hosts) * p.HostOpsPerSec / hostPerRec,
		Disk:    m.diskRate(),
		Net:     m.netRate(),
	}
}

// ConventionalRate predicts records/second for the baseline placement:
// everything fused on the hosts, dumb storage streaming raw blocks.
func (m Pass1Model) ConventionalRate(alpha, beta int) float64 {
	return m.ConventionalRates(alpha, beta).Min()
}

// diskRate is the aggregate storage streaming rate in records/second; the
// data makes a read and a write pass, halving effective throughput.
func (m Pass1Model) diskRate() float64 {
	p := m.Params
	return float64(p.ASUs) * p.DiskRate / float64(p.RecordSize) / 2
}

// netRate bounds throughput by the host interfaces, which every record
// crosses twice (in to sort, out to collect).
func (m Pass1Model) netRate() float64 {
	p := m.Params
	return float64(p.Hosts) * p.NetBandwidth / float64(p.RecordSize) / 2
}

// PredictSpeedup is the predicted Figure 9 value for one configuration.
func (m Pass1Model) PredictSpeedup(alpha, beta int) float64 {
	return m.ActiveRate(alpha, beta) / m.ConventionalRate(alpha, beta)
}

// ChooseAlpha picks the candidate distribute order with the best predicted
// active-placement speedup — the "adaptive" series of Figure 9, where the
// system "configure[s] the application to balance load and make the best
// use of available processing power". Ties go to the smaller alpha (less
// ASU buffer pressure).
func ChooseAlpha(p cluster.Params, candidates []int, beta int) int {
	return ChooseAlphaAudited(nil, 0, p, candidates, beta)
}

// ChooseAlphaAudited is ChooseAlpha with a decision-log entry: each
// candidate's predicted speedup lands as a reading, and the chosen alpha as
// the detail, timestamped at now. A nil registry makes it plain ChooseAlpha.
func ChooseAlphaAudited(reg *telemetry.Registry, now sim.Time, p cluster.Params, candidates []int, beta int) int {
	if len(candidates) == 0 {
		panic("loadmgr: no alpha candidates")
	}
	m := Pass1Model{Params: p}
	best, bestSp := candidates[0], math.Inf(-1)
	readings := make([]telemetry.Reading, 0, len(candidates))
	for _, a := range candidates {
		sp := m.PredictSpeedup(a, beta)
		readings = append(readings, telemetry.Reading{
			Key: fmt.Sprintf("predicted-speedup.alpha=%d", a), Value: sp,
		})
		if sp > bestSp+1e-12 {
			best, bestSp = a, sp
		}
	}
	reg.Decide(now, "loadmgr.choose-alpha", "select-parameter",
		fmt.Sprintf("alpha=%d (beta=%d)", best, beta), readings...)
	return best
}

// SaturationASUs predicts the number of ASUs at which the hosts saturate
// for a given configuration: beyond this point adding ASUs stops helping
// ("This experiment uses one host, which saturates at 16 ASUs").
func SaturationASUs(p cluster.Params, alpha, beta int) int {
	touchH := p.Costs.Touch(cluster.Host, p.RecordSize)
	touchA := p.Costs.Touch(cluster.ASU, p.RecordSize)
	asuOps := p.HostOpsPerSec / p.C
	asuPerRec := (touchA + log2f(alpha)*p.Costs.CompareOps) + touchA
	hostRate := float64(p.Hosts) * p.HostOpsPerSec / (touchH + log2f(beta)*p.Costs.CompareOps)
	perASU := asuOps / asuPerRec
	return int(math.Ceil(hostRate / perASU))
}

// Imbalance summarizes how unevenly a set of utilization traces loaded
// their nodes: the mean absolute utilization spread across the first n
// windows (n <= 0 means the longest trace). Zero means perfectly balanced —
// the load-managed ideal of Figure 10.
func Imbalance(traces []*metrics.UtilTrace, n int) float64 {
	if len(traces) < 2 {
		return 0
	}
	if n <= 0 {
		for _, tr := range traces {
			if tr.Len() > n {
				n = tr.Len()
			}
		}
	}
	if n == 0 {
		return 0
	}
	var total float64
	for w := 0; w < n; w++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, tr := range traces {
			u := tr.At(w)
			if u < lo {
				lo = u
			}
			if u > hi {
				hi = u
			}
		}
		total += hi - lo
	}
	return total / float64(n)
}

// ImbalanceSeries is Imbalance over already-serialized utilization series
// (one windowed utilization slice per node, as stored in a RunReport), so
// report viewers can recompute load skew without the live traces. Series
// shorter than the comparison horizon read as idle (utilization 0).
func ImbalanceSeries(series [][]float64, n int) float64 {
	if len(series) < 2 {
		return 0
	}
	if n <= 0 {
		for _, s := range series {
			if len(s) > n {
				n = len(s)
			}
		}
	}
	if n == 0 {
		return 0
	}
	var total float64
	for w := 0; w < n; w++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range series {
			u := 0.0
			if w < len(s) {
				u = s[w]
			}
			if u < lo {
				lo = u
			}
			if u > hi {
				hi = u
			}
		}
		total += hi - lo
	}
	return total / float64(n)
}
