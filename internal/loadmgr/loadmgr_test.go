package loadmgr

import (
	"math"
	"testing"

	"lmas/internal/cluster"
	"lmas/internal/metrics"
	"lmas/internal/sim"
)

func params(hosts, asus int) cluster.Params {
	p := cluster.DefaultParams()
	p.Hosts, p.ASUs = hosts, asus
	return p
}

func TestPredictSlowdownWithFewASUs(t *testing.T) {
	m := Pass1Model{Params: params(1, 2)}
	if sp := m.PredictSpeedup(256, 64); sp >= 1 {
		t.Fatalf("2 ASUs, alpha=256: predicted speedup %.2f, want < 1", sp)
	}
}

func TestPredictSpeedupWithManyASUs(t *testing.T) {
	m := Pass1Model{Params: params(1, 64)}
	sp := m.PredictSpeedup(256, 64)
	if sp <= 1.2 {
		t.Fatalf("64 ASUs, alpha=256: predicted speedup %.2f, want > 1.2", sp)
	}
	if sp > 2.5 {
		t.Fatalf("64 ASUs: predicted speedup %.2f implausibly high", sp)
	}
}

func TestPredictMonotonicInAlphaAtScale(t *testing.T) {
	m := Pass1Model{Params: params(1, 64)}
	prev := -1.0
	for _, alpha := range []int{1, 4, 16, 64, 256} {
		sp := m.PredictSpeedup(alpha, 64)
		if sp < prev {
			t.Fatalf("speedup not increasing with alpha at 64 ASUs: alpha=%d gives %.3f < %.3f", alpha, sp, prev)
		}
		prev = sp
	}
}

func TestPredictAlphaOneNearUnityAtScale(t *testing.T) {
	m := Pass1Model{Params: params(1, 32)}
	sp := m.PredictSpeedup(1, 64)
	if math.Abs(sp-1.0) > 0.15 {
		t.Fatalf("alpha=1 speedup %.3f, want ~1.0", sp)
	}
}

func TestChooseAlphaPrefersSmallWhenASUsScarce(t *testing.T) {
	cands := []int{1, 4, 16, 64, 256}
	small := ChooseAlpha(params(1, 2), cands, 64)
	big := ChooseAlpha(params(1, 64), cands, 64)
	if small > big {
		t.Fatalf("adaptive alpha: %d ASUs=2 vs %d ASUs=64; expected nondecreasing", small, big)
	}
	if big < 64 {
		t.Fatalf("with 64 ASUs adaptive picked alpha=%d; expected a large alpha", big)
	}
	if small > 16 {
		t.Fatalf("with 2 ASUs adaptive picked alpha=%d; expected a small alpha", small)
	}
}

func TestSaturationASUsNearSixteen(t *testing.T) {
	// The paper's configuration saturates one host around 16 ASUs.
	got := SaturationASUs(params(1, 1), 16, 64)
	if got < 8 || got > 24 {
		t.Fatalf("saturation at %d ASUs, want within [8,24]", got)
	}
}

func TestSaturationGrowsWithHosts(t *testing.T) {
	one := SaturationASUs(params(1, 1), 16, 64)
	two := SaturationASUs(params(2, 1), 16, 64)
	if two < 2*one-1 {
		t.Fatalf("saturation %d with 1 host, %d with 2; expected ~2x", one, two)
	}
}

func TestChooseAlphaEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ChooseAlpha(params(1, 2), nil, 64)
}

func TestImbalance(t *testing.T) {
	// Busy intervals are right-aligned within their window so every trace
	// ends exactly on the last window boundary; otherwise the final window
	// would be pro-rated to each trace's own observed width.
	mk := func(vals ...float64) *metrics.UtilTrace {
		tr := metrics.NewUtilTrace("x", sim.Second)
		for i, v := range vals {
			winEnd := sim.Time(i+1) * sim.Time(sim.Second)
			tr.RecordBusy(winEnd.Add(-sim.Duration(v*float64(sim.Second))), winEnd)
		}
		return tr
	}
	balanced := []*metrics.UtilTrace{mk(0.5, 0.5), mk(0.5, 0.5)}
	if got := Imbalance(balanced, 2); got != 0 {
		t.Fatalf("balanced imbalance = %v", got)
	}
	skewed := []*metrics.UtilTrace{mk(1.0, 1.0), mk(0.2, 0.4)}
	if got := Imbalance(skewed, 2); math.Abs(got-0.7) > 1e-9 {
		t.Fatalf("skewed imbalance = %v, want 0.7", got)
	}
	if Imbalance(nil, 0) != 0 || Imbalance(balanced[:1], 0) != 0 {
		t.Fatal("degenerate cases must be 0")
	}
}

func TestRatesPositive(t *testing.T) {
	m := Pass1Model{Params: params(2, 16)}
	for _, alpha := range []int{1, 16, 256} {
		if m.ActiveRate(alpha, 64) <= 0 || m.ConventionalRate(alpha, 64) <= 0 {
			t.Fatalf("non-positive predicted rate at alpha=%d", alpha)
		}
	}
}
