// Package metrics collects utilization traces and counters from emulated
// resources and formats experiment results as tables and time series.
//
// The paper's emulator "is instrumented to report application progress,
// overall runtime, and resource utilization for each host and ASU in the
// target (emulated) system" (Section 5); this package is that
// instrumentation layer. Figure 10 is a utilization-versus-time plot
// produced from exactly this kind of trace.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"lmas/internal/sim"
)

// UtilTrace aggregates resource busy intervals into fixed-width windows so
// utilization can be reported as a time series. It implements
// sim.BusyRecorder.
//
// The final window is usually partial: the run rarely ends exactly on a
// window boundary. Utilization accessors (At, Series, Mean) divide that
// window's busy time by the observed width — the span up to the last
// recorded instant — not the full window, so a fully-busy resource reports
// 1.0 to the end of the trace instead of a spurious terminal dip.
type UtilTrace struct {
	Name    string
	Window  sim.Duration
	buckets []sim.Duration // busy time per window
	last    sim.Time       // end of the latest recorded interval
}

// NewUtilTrace creates a trace with the given window width.
func NewUtilTrace(name string, window sim.Duration) *UtilTrace {
	if window <= 0 {
		panic("metrics: window must be positive")
	}
	return &UtilTrace{Name: name, Window: window}
}

// RecordBusy adds the busy interval [from, to) to the trace.
func (u *UtilTrace) RecordBusy(from, to sim.Time) {
	if to <= from {
		return
	}
	if to > u.last {
		u.last = to
	}
	first := int(from / sim.Time(u.Window))
	last := int((to - 1) / sim.Time(u.Window))
	for len(u.buckets) <= last {
		u.buckets = append(u.buckets, 0)
	}
	for b := first; b <= last; b++ {
		winStart := sim.Time(b) * sim.Time(u.Window)
		winEnd := winStart + sim.Time(u.Window)
		lo, hi := from, to
		if lo < winStart {
			lo = winStart
		}
		if hi > winEnd {
			hi = winEnd
		}
		u.buckets[b] += sim.Duration(hi - lo)
	}
}

// Len reports the number of windows with any recorded activity span.
func (u *UtilTrace) Len() int { return len(u.buckets) }

// TotalBusy reports the cumulative busy time recorded so far: the sum of
// every completed hold the trace has seen. Holds still in progress are not
// included (RecordBusy fires when a hold ends), matching the trace's own
// windowed view. Nil-safe: a nil trace reports zero.
func (u *UtilTrace) TotalBusy() sim.Duration {
	if u == nil {
		return 0
	}
	var total sim.Duration
	for _, b := range u.buckets {
		total += b
	}
	return total
}

// End reports the end of the latest recorded busy interval — the instant the
// trace is considered observed up to.
func (u *UtilTrace) End() sim.Time { return u.last }

// width reports the observed width of window i: the full Window for interior
// windows, and the span up to the last recorded instant for the final,
// possibly partial one.
func (u *UtilTrace) width(i int) sim.Duration {
	winStart := sim.Time(i) * sim.Time(u.Window)
	if w := sim.Duration(u.last - winStart); w > 0 && w < u.Window {
		return w
	}
	return u.Window
}

// At reports the utilization (0..1) of window i; the final partial window is
// pro-rated to its observed width.
func (u *UtilTrace) At(i int) float64 {
	if i < 0 || i >= len(u.buckets) {
		return 0
	}
	return float64(u.buckets[i]) / float64(u.width(i))
}

// Series returns (time-in-seconds, utilization) points, one per window,
// timestamped at the window's end (the last recorded instant for the final
// partial window).
func (u *UtilTrace) Series() (ts, util []float64) {
	ts = make([]float64, len(u.buckets))
	util = make([]float64, len(u.buckets))
	for i := range u.buckets {
		winStart := sim.Duration(i) * u.Window
		ts[i] = (winStart + u.width(i)).Seconds()
		util[i] = u.At(i)
	}
	return ts, util
}

// Mean reports the average utilization over windows [0, n); n <= 0 means all
// recorded windows. The final partial window contributes its observed width,
// so a fully-busy trace has mean 1.0 regardless of where the run ends.
func (u *UtilTrace) Mean(n int) float64 {
	if n <= 0 || n > len(u.buckets) {
		n = len(u.buckets)
	}
	if n == 0 {
		return 0
	}
	var total, span sim.Duration
	for i, b := range u.buckets[:n] {
		total += b
		span += u.width(i)
	}
	return float64(total) / float64(span)
}

var _ sim.BusyRecorder = (*UtilTrace)(nil)

// Table is a simple column-aligned results table, used by every experiment
// harness to print paper-style rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	// Size widths by the widest row, not just the headers, so a row with
	// more cells than headers renders (with empty header padding) instead
	// of panicking on widths[i].
	cols := len(t.Headers)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Percentile reports the q'th percentile (0..100) of samples, by nearest
// rank over a sorted copy. It returns 0 for an empty slice. Callers needing
// several percentiles of one sample set should build a Summary instead,
// which sorts once.
func Percentile(samples []sim.Duration, q float64) sim.Duration {
	return NewSummary(samples).Percentile(q)
}

// Summary serves order statistics of a fixed sample set. The constructor
// copies and sorts once; every Percentile call is then O(1), unlike the
// package-level Percentile which re-sorts a fresh copy per call.
type Summary struct {
	sorted []sim.Duration
	sum    sim.Duration
}

// NewSummary copies and sorts samples. A nil or empty slice yields a valid
// Summary whose accessors all report zero.
func NewSummary(samples []sim.Duration) *Summary {
	s := &Summary{sorted: append([]sim.Duration(nil), samples...)}
	sort.Slice(s.sorted, func(i, j int) bool { return s.sorted[i] < s.sorted[j] })
	for _, d := range s.sorted {
		s.sum += d
	}
	return s
}

// Count reports the number of samples.
func (s *Summary) Count() int { return len(s.sorted) }

// Min reports the smallest sample (zero when empty).
func (s *Summary) Min() sim.Duration { return s.Percentile(0) }

// Max reports the largest sample (zero when empty).
func (s *Summary) Max() sim.Duration { return s.Percentile(100) }

// Mean reports the arithmetic mean (zero when empty).
func (s *Summary) Mean() sim.Duration {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sum / sim.Duration(len(s.sorted))
}

// P50 reports the median.
func (s *Summary) P50() sim.Duration { return s.Percentile(50) }

// P90 reports the 90th percentile.
func (s *Summary) P90() sim.Duration { return s.Percentile(90) }

// P99 reports the 99th percentile.
func (s *Summary) P99() sim.Duration { return s.Percentile(99) }

// Percentile reports the q'th percentile (0..100) by nearest rank. It
// returns 0 for an empty summary.
func (s *Summary) Percentile(q float64) sim.Duration {
	n := len(s.sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return s.sorted[0]
	}
	if q >= 100 {
		return s.sorted[n-1]
	}
	rank := int(q/100*float64(n)+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return s.sorted[rank]
}

// Counters is a named set of monotonically increasing counters.
type Counters struct {
	m map[string]int64
}

// NewCounters creates an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Add increments counter name by delta. Counters are monotonic: a negative
// delta panics rather than silently corrupting a value documented as
// monotonically increasing.
func (c *Counters) Add(name string, delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("metrics: negative delta %d for monotonic counter %q", delta, name))
	}
	c.m[name] += delta
}

// Get reports the value of counter name (zero if never incremented).
func (c *Counters) Get(name string) int64 { return c.m[name] }

// Names reports all counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders "name=value" pairs in sorted order.
func (c *Counters) String() string {
	var parts []string
	for _, n := range c.Names() {
		parts = append(parts, fmt.Sprintf("%s=%d", n, c.m[n]))
	}
	return strings.Join(parts, " ")
}
