package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"lmas/internal/sim"
)

func TestUtilTraceSingleWindow(t *testing.T) {
	u := NewUtilTrace("cpu", sim.Second)
	// Busy for the whole observed span [0, 0.5s): the trace ends mid-window,
	// so the partial window is pro-rated and utilization is 1.0.
	u.RecordBusy(0, sim.Time(sim.Second/2))
	if got := u.At(0); got != 1.0 {
		t.Fatalf("At(0) = %v, want 1.0", got)
	}
	if got := u.End(); got != sim.Time(sim.Second/2) {
		t.Fatalf("End = %v", got)
	}
}

func TestUtilTraceSpanningWindows(t *testing.T) {
	u := NewUtilTrace("cpu", sim.Second)
	// Busy from 0.5s to 2.5s: half of window 0, all of window 1, and all of
	// window 2's observed half before the trace ends.
	u.RecordBusy(sim.Time(500*sim.Millisecond), sim.Time(2500*sim.Millisecond))
	want := []float64{0.5, 1.0, 1.0}
	for i, w := range want {
		if got := u.At(i); math.Abs(got-w) > 1e-9 {
			t.Fatalf("At(%d) = %v, want %v", i, got, w)
		}
	}
	if u.Len() != 3 {
		t.Fatalf("Len = %d", u.Len())
	}
}

func TestUtilTraceAccumulates(t *testing.T) {
	u := NewUtilTrace("cpu", sim.Second)
	// 0.5s busy over the observed span [0, 0.75s).
	u.RecordBusy(0, sim.Time(250*sim.Millisecond))
	u.RecordBusy(sim.Time(500*sim.Millisecond), sim.Time(750*sim.Millisecond))
	if got := u.At(0); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("At(0) = %v, want 2/3", got)
	}
}

// TestUtilTraceFinalPartialWindow is the regression test for the pro-rating
// bug: a resource busy to the very end of the run used to report a spurious
// utilization dip in the final partial window (busy/Window instead of
// busy/observed-width).
func TestUtilTraceFinalPartialWindow(t *testing.T) {
	u := NewUtilTrace("cpu", sim.Second)
	u.RecordBusy(0, sim.Time(1500*sim.Millisecond)) // run ends mid-window 1
	if got := u.At(1); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("At(1) = %v, want 1.0 (pro-rated partial window)", got)
	}
	if got := u.Mean(0); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Mean = %v, want 1.0", got)
	}
	ts, util := u.Series()
	wantTS := []float64{1.0, 1.5} // final point stamped at the trace end
	for i := range wantTS {
		if math.Abs(ts[i]-wantTS[i]) > 1e-9 || math.Abs(util[i]-1.0) > 1e-9 {
			t.Fatalf("Series = %v %v, want ts %v, util all 1.0", ts, util, wantTS)
		}
	}
}

func TestUtilTraceEmptyAndOutOfRange(t *testing.T) {
	u := NewUtilTrace("cpu", sim.Second)
	if u.At(0) != 0 || u.At(-1) != 0 || u.At(100) != 0 {
		t.Fatal("empty trace must report zero everywhere")
	}
	u.RecordBusy(5, 5) // zero-length interval ignored
	if u.Len() != 0 {
		t.Fatal("zero-length interval recorded")
	}
}

func TestUtilTraceMean(t *testing.T) {
	u := NewUtilTrace("cpu", sim.Second)
	u.RecordBusy(0, sim.Time(sim.Second))                      // window 0: 1.0
	u.RecordBusy(sim.Time(sim.Second), sim.Time(3*sim.Second)) // windows 1,2: 1.0 each... adjust
	if got := u.Mean(0); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Mean = %v, want 1.0", got)
	}
	u2 := NewUtilTrace("cpu", sim.Second)
	u2.RecordBusy(0, sim.Time(sim.Second/2))
	u2.RecordBusy(sim.Time(sim.Second), sim.Time(2*sim.Second))
	if got := u2.Mean(2); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("Mean(2) = %v, want 0.75", got)
	}
}

// TestUtilTraceConservation: total recorded busy time equals the sum over
// windows, for arbitrary disjoint intervals.
func TestUtilTraceConservation(t *testing.T) {
	f := func(spans []uint16) bool {
		u := NewUtilTrace("x", 100*sim.Microsecond)
		var cursor sim.Time
		var total sim.Duration
		for _, s := range spans {
			d := sim.Duration(s%1000) * sim.Microsecond
			u.RecordBusy(cursor, cursor.Add(d))
			total += d
			cursor = cursor.Add(d + 37*sim.Microsecond)
		}
		var got sim.Duration
		for i := 0; i < u.Len(); i++ {
			// Reconstruct each window's busy time from its utilization and
			// observed width (the final window is pro-rated).
			w := 100 * sim.Microsecond
			if rem := sim.Duration(u.End()) - sim.Duration(i)*w; rem > 0 && rem < w {
				w = rem
			}
			got += sim.Duration(u.At(i) * float64(w))
		}
		diff := got - total
		if diff < 0 {
			diff = -diff
		}
		return diff <= sim.Duration(u.Len()+1) // rounding slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilTraceSeries(t *testing.T) {
	u := NewUtilTrace("cpu", 500*sim.Millisecond)
	u.RecordBusy(0, sim.Time(250*sim.Millisecond))
	ts, util := u.Series()
	if len(ts) != 1 || len(util) != 1 {
		t.Fatalf("series lengths %d/%d", len(ts), len(util))
	}
	// The lone window is partial: stamped at the trace end, fully busy.
	if ts[0] != 0.25 || util[0] != 1.0 {
		t.Fatalf("series = %v %v", ts, util)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Results", "alpha", "speedup")
	tab.AddRow(16, 1.25)
	tab.AddRow(256, 0.5)
	s := tab.String()
	if !strings.Contains(s, "Results") || !strings.Contains(s, "alpha") {
		t.Fatalf("missing title/header:\n%s", s)
	}
	if !strings.Contains(s, "1.250") || !strings.Contains(s, "256") {
		t.Fatalf("missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
}

// TestTableWideRow is the regression test for the writeRow panic: a row
// with more cells than headers used to index past the widths slice.
func TestTableWideRow(t *testing.T) {
	tab := NewTable("Wide", "a", "b")
	tab.AddRow(1, 2, 3, "extra")
	tab.AddRow("longer-cell-than-header", 2)
	s := tab.String() // must not panic
	if !strings.Contains(s, "extra") || !strings.Contains(s, "longer-cell-than-header") {
		t.Fatalf("cells missing:\n%s", s)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("reads", 3)
	c.Add("reads", 2)
	c.Add("writes", 1)
	if c.Get("reads") != 5 || c.Get("writes") != 1 || c.Get("absent") != 0 {
		t.Fatal("counter values wrong")
	}
	if got := c.String(); got != "reads=5 writes=1" {
		t.Fatalf("String = %q", got)
	}
}

func TestCountersNegativeDeltaPanics(t *testing.T) {
	c := NewCounters()
	c.Add("ok", 0) // zero delta is allowed
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative delta on monotonic counter")
		}
	}()
	c.Add("reads", -1)
}

func TestSummary(t *testing.T) {
	samples := []sim.Duration{50, 10, 40, 20, 30}
	s := NewSummary(samples)
	if s.Count() != 5 || s.Min() != 10 || s.Max() != 50 || s.Mean() != 30 {
		t.Fatalf("Count/Min/Max/Mean = %d/%v/%v/%v", s.Count(), s.Min(), s.Max(), s.Mean())
	}
	if s.P50() != 30 || s.P90() != 50 || s.P99() != 50 {
		t.Fatalf("P50/P90/P99 = %v/%v/%v", s.P50(), s.P90(), s.P99())
	}
	// Summary and the package-level Percentile must agree at every rank.
	for _, q := range []float64{0, 20, 50, 90, 99, 100} {
		if s.Percentile(q) != Percentile(samples, q) {
			t.Fatalf("Summary.Percentile(%v) disagrees with Percentile", q)
		}
	}
	if samples[0] != 50 {
		t.Error("NewSummary mutated its input")
	}
	empty := NewSummary(nil)
	if empty.Count() != 0 || empty.P99() != 0 || empty.Mean() != 0 {
		t.Error("empty summary must report zeros")
	}
}

func TestPercentile(t *testing.T) {
	samples := []sim.Duration{50, 10, 40, 20, 30} // sorted: 10..50
	cases := []struct {
		q    float64
		want sim.Duration
	}{
		{0, 10}, {100, 50}, {50, 30}, {99, 50}, {20, 10},
	}
	for _, c := range cases {
		if got := Percentile(samples, c.q); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.q, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile not 0")
	}
	// Input must not be mutated (sorted copy).
	if samples[0] != 50 {
		t.Error("Percentile mutated its input")
	}
}

func TestNewUtilTraceBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero window")
		}
	}()
	NewUtilTrace("x", 0)
}
