// Package netsim models the storage interconnect (SAN) connecting hosts and
// ASUs.
//
// The paper's network model (Section 5) "uses only host-ASU communication,
// and assumes that the processor saturates before the individual network
// links". We model each node's network interface as a timeline with a
// bandwidth; a message from A to B occupies both endpoints' interfaces for
// its serialization time and is delivered one propagation latency after the
// transfer completes. With the default (generous) bandwidth the network is
// never the bottleneck, matching the paper's assumption, but constrained
// configurations can be explored by lowering it.
package netsim

import (
	"fmt"

	"lmas/internal/sim"
	"lmas/internal/trace"
)

// Iface is one node's network interface.
type Iface struct {
	s    *sim.Sim
	name string
	bw   float64 // bytes per second

	busyUntil sim.Time
	busy      sim.Duration
	recorder  sim.BusyRecorder

	sentBytes, recvBytes int64
	sent, received       int64

	track trace.Track // cached trace timeline, created on first traced transfer
}

// traceTrack returns f's timeline in t, creating it on first use.
func (f *Iface) traceTrack(t *trace.Sink) trace.Track {
	if f.track == 0 {
		f.track = t.SharedTrack(trace.GroupOf(f.name), f.name)
	}
	return f.track
}

// NewIface creates an interface with the given bandwidth in bytes/second.
func NewIface(s *sim.Sim, name string, bw float64) *Iface {
	if bw <= 0 {
		panic("netsim: bandwidth must be positive")
	}
	return &Iface{s: s, name: name, bw: bw}
}

// Name reports the interface name.
func (f *Iface) Name() string { return f.name }

// Bandwidth reports the interface bandwidth in bytes/second.
func (f *Iface) Bandwidth() float64 { return f.bw }

// SetRecorder attaches rec to receive busy intervals; nil detaches.
func (f *Iface) SetRecorder(rec sim.BusyRecorder) { f.recorder = rec }

// Busy reports total serialization time on this interface.
func (f *Iface) Busy() sim.Duration { return f.busy }

// Stats reports cumulative message and byte counts.
func (f *Iface) Stats() (sent, received, sentBytes, recvBytes int64) {
	return f.sent, f.received, f.sentBytes, f.recvBytes
}

func (f *Iface) String() string {
	return fmt.Sprintf("iface(%s, %.0f MB/s)", f.name, f.bw/1e6)
}

// Net is the interconnect fabric.
type Net struct {
	s       *sim.Sim
	latency sim.Duration
}

// New creates a fabric with the given per-message propagation latency.
func New(s *sim.Sim, latency sim.Duration) *Net {
	if latency < 0 {
		panic("netsim: negative latency")
	}
	return &Net{s: s, latency: latency}
}

// Latency reports the propagation latency.
func (n *Net) Latency() sim.Duration { return n.latency }

// Send transfers size bytes from interface src to interface dst, blocking p
// until the message has been delivered (serialization on the slower of the
// two endpoints, then propagation latency). Zero-size messages occupy no
// wire time and leave both endpoints' timelines untouched, but — like any
// message — they queue behind transfers already in flight on either endpoint
// before incurring latency: a control message cannot overtake the data ahead
// of it on the wire. Use Send for request/response exchanges whose initiator
// waits for delivery; use Stream for pipelined bulk flows.
func (n *Net) Send(p *sim.Proc, src, dst *Iface, size int) {
	n.transfer(p, src, dst, size, true)
}

// Stream transfers size bytes like Send but blocks p only for the
// serialization time: in a pipelined bulk flow the sender issues the next
// message as soon as the wire is free, and per-message propagation latency
// is hidden by the stream. Successive messages still serialize on the
// endpoints, so bandwidth is conserved exactly.
func (n *Net) Stream(p *sim.Proc, src, dst *Iface, size int) {
	n.transfer(p, src, dst, size, false)
}

func (n *Net) transfer(p *sim.Proc, src, dst *Iface, size int, withLatency bool) {
	now := n.s.Now()
	start := now
	if src.busyUntil > start {
		start = src.busyUntil
	}
	if dst.busyUntil > start {
		start = dst.busyUntil
	}
	bw := src.bw
	if dst.bw < bw {
		bw = dst.bw
	}
	ser := sim.Duration(float64(size) / bw * float64(sim.Second))
	end := start.Add(ser)
	if ser > 0 {
		// Zero-size messages occupy no wire time: they wait for in-flight
		// transfers (start above) but must not advance either endpoint's
		// timeline — otherwise a control message would mark an idle
		// interface busy until the *other* endpoint's backlog clears.
		src.busyUntil, dst.busyUntil = end, end
		src.busy += sim.Duration(end - start)
		dst.busy += sim.Duration(end - start)
	}
	if end > start {
		if src.recorder != nil {
			src.recorder.RecordBusy(start, end)
		}
		if dst.recorder != nil {
			dst.recorder.RecordBusy(start, end)
		}
		if t := n.s.Tracer(); t != nil {
			kind := "stream"
			if withLatency {
				kind = "send"
			}
			t.Span(src.traceTrack(t), int64(start), int64(end), kind, "net",
				trace.Arg{Key: "bytes", Val: size}, trace.Arg{Key: "to", Val: dst.name})
			t.Span(dst.traceTrack(t), int64(start), int64(end), "recv", "net",
				trace.Arg{Key: "bytes", Val: size}, trace.Arg{Key: "from", Val: src.name})
		}
	}
	src.sent++
	src.sentBytes += int64(size)
	dst.received++
	dst.recvBytes += int64(size)
	deliver := end
	if withLatency {
		deliver = deliver.Add(n.latency)
	}
	if deliver > now {
		if pf := n.s.Profiler(); pf != nil {
			pf.Charge(p, sim.ChargeNet, src.name, now, deliver)
		}
		p.Sleep(sim.Duration(deliver - now))
	}
}
