package netsim

import (
	"testing"
	"testing/quick"

	"lmas/internal/sim"
)

func build(s *sim.Sim, lat sim.Duration, bw float64) (*Net, *Iface, *Iface) {
	n := New(s, lat)
	return n, NewIface(s, "a", bw), NewIface(s, "b", bw)
}

func TestSendLatencyPlusSerialization(t *testing.T) {
	s := sim.New()
	n, a, b := build(s, sim.Millisecond, 100e6) // 100 MB/s
	var done sim.Time
	s.Spawn("tx", func(p *sim.Proc) {
		n.Send(p, a, b, 1_000_000) // 10 ms serialize + 1 ms latency
		done = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != sim.Time(11*sim.Millisecond) {
		t.Fatalf("send completed at %v, want 11ms", done)
	}
}

func TestZeroSizeOnlyLatency(t *testing.T) {
	s := sim.New()
	n, a, b := build(s, 2*sim.Millisecond, 100e6)
	var done sim.Time
	s.Spawn("tx", func(p *sim.Proc) {
		n.Send(p, a, b, 0)
		done = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != sim.Time(2*sim.Millisecond) {
		t.Fatalf("control message took %v, want 2ms", done)
	}
}

// TestZeroSizeQueuesBehindBusyEndpoint pins the documented semantics: a
// zero-size message occupies no wire time, but it cannot overtake a transfer
// already in flight on either endpoint — it waits for busyUntil, then incurs
// latency.
func TestZeroSizeQueuesBehindBusyEndpoint(t *testing.T) {
	s := sim.New()
	n, a, b := build(s, 2*sim.Millisecond, 100e6)
	var done sim.Time
	s.Spawn("bulk", func(p *sim.Proc) {
		n.Stream(p, a, b, 1_000_000) // occupies both endpoints [0, 10ms)
	})
	s.Spawn("ctl", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond) // arrive mid-transfer
		n.Send(p, a, b, 0)
		done = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Queued until 10ms behind the bulk transfer, plus 2ms latency.
	if done != sim.Time(12*sim.Millisecond) {
		t.Fatalf("control message delivered at %v, want 12ms", done)
	}
}

// TestZeroSizeLeavesTimelinesUntouched: a queued control message must not
// advance either endpoint's busy timeline — in particular it must not mark
// the sender's idle interface busy until the receiver's backlog clears,
// which would stall unrelated traffic through the sender.
func TestZeroSizeLeavesTimelinesUntouched(t *testing.T) {
	s := sim.New()
	n := New(s, 0)
	a := NewIface(s, "a", 100e6)
	b := NewIface(s, "b", 100e6)
	c := NewIface(s, "c", 100e6)
	d := NewIface(s, "d", 100e6)
	s.Spawn("bulk", func(p *sim.Proc) {
		n.Stream(p, b, c, 1_000_000) // b busy [0, 10ms)
	})
	s.Spawn("ctl", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		n.Send(p, a, b, 0) // queued behind b's backlog until 10ms
	})
	var done sim.Time
	s.Spawn("other", func(p *sim.Proc) {
		// While the control message is queued, a is still idle: an
		// unrelated transfer through a must start immediately.
		p.Sleep(2 * sim.Millisecond)
		n.Stream(p, a, d, 1_000_000)
		done = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != sim.Time(12*sim.Millisecond) {
		t.Fatalf("unrelated transfer finished at %v, want 12ms (sender timeline must stay untouched)", done)
	}
	if got := a.Busy(); got != 10*sim.Millisecond {
		t.Fatalf("a.Busy = %v, want 10ms (only the bulk transfer)", got)
	}
}

func TestSlowestEndpointLimits(t *testing.T) {
	s := sim.New()
	n := New(s, 0)
	fast := NewIface(s, "fast", 1000e6)
	slow := NewIface(s, "slow", 10e6)
	var done sim.Time
	s.Spawn("tx", func(p *sim.Proc) {
		n.Send(p, fast, slow, 1_000_000) // limited by 10 MB/s -> 100 ms
		done = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != sim.Time(100*sim.Millisecond) {
		t.Fatalf("send took %v, want 100ms (slower endpoint limits)", done)
	}
}

func TestSharedReceiverSerializes(t *testing.T) {
	// Two senders to one receiver: transfers serialize on the receiver NIC.
	s := sim.New()
	n := New(s, 0)
	rx := NewIface(s, "rx", 100e6)
	var t1, t2 sim.Time
	for i, tp := range []*sim.Time{&t1, &t2} {
		tp := tp
		tx := NewIface(s, "tx", 100e6)
		_ = i
		s.Spawn("s", func(p *sim.Proc) {
			n.Send(p, tx, rx, 1_000_000)
			*tp = p.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	last := t1
	if t2 > last {
		last = t2
	}
	if last != sim.Time(20*sim.Millisecond) {
		t.Fatalf("second transfer done at %v, want 20ms (receiver serializes)", last)
	}
}

func TestDisjointPairsProceedInParallel(t *testing.T) {
	s := sim.New()
	n := New(s, 0)
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		a := NewIface(s, "a", 100e6)
		b := NewIface(s, "b", 100e6)
		s.Spawn("tx", func(p *sim.Proc) {
			n.Send(p, a, b, 1_000_000)
			done[i] = p.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, d := range done {
		if d != sim.Time(10*sim.Millisecond) {
			t.Fatalf("pair %d done at %v, want 10ms (independent links)", i, d)
		}
	}
}

func TestStatsAndBusy(t *testing.T) {
	s := sim.New()
	n, a, b := build(s, 0, 100e6)
	s.Spawn("tx", func(p *sim.Proc) {
		n.Send(p, a, b, 500_000)
		n.Send(p, a, b, 500_000)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	sent, _, sb, _ := a.Stats()
	_, recvd, _, rb := b.Stats()
	if sent != 2 || recvd != 2 || sb != 1_000_000 || rb != 1_000_000 {
		t.Fatalf("stats: sent=%d recvd=%d sb=%d rb=%d", sent, recvd, sb, rb)
	}
	if a.Busy() != 10*sim.Millisecond || b.Busy() != 10*sim.Millisecond {
		t.Fatalf("busy a=%v b=%v, want 10ms", a.Busy(), b.Busy())
	}
}

func TestStreamSkipsLatency(t *testing.T) {
	s := sim.New()
	n, a, b := build(s, 5*sim.Millisecond, 100e6)
	var done sim.Time
	s.Spawn("tx", func(p *sim.Proc) {
		n.Stream(p, a, b, 1_000_000) // 10 ms serialize, no latency wait
		done = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != sim.Time(10*sim.Millisecond) {
		t.Fatalf("stream blocked until %v, want 10ms", done)
	}
}

func TestStreamConservesBandwidth(t *testing.T) {
	// A pipelined stream of k messages still takes k * serialization on
	// the shared endpoints: latency hiding must not create bandwidth.
	s := sim.New()
	n, a, b := build(s, sim.Millisecond, 100e6)
	var done sim.Time
	s.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			n.Stream(p, a, b, 1_000_000)
		}
		done = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != sim.Time(100*sim.Millisecond) {
		t.Fatalf("10 MB streamed in %v, want exactly 100ms at 100MB/s", done)
	}
}

func TestStreamAndSendShareEndpoints(t *testing.T) {
	// A Send issued while a Stream transfer occupies the endpoints must
	// queue behind it.
	s := sim.New()
	n, a, b := build(s, 0, 100e6)
	var sendDone sim.Time
	s.Spawn("stream", func(p *sim.Proc) {
		n.Stream(p, a, b, 2_000_000) // occupies [0, 20ms)
	})
	s.Spawn("send", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		n.Send(p, a, b, 1_000_000) // waits until 20ms, then 10ms
		sendDone = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone != sim.Time(30*sim.Millisecond) {
		t.Fatalf("send done at %v, want 30ms", sendDone)
	}
}

// TestBandwidthConservationProperty: for any mix of Send and Stream sizes,
// the endpoint busy time equals total bytes / bandwidth exactly.
func TestBandwidthConservationProperty(t *testing.T) {
	f := func(sizes []uint16, useStream []bool) bool {
		s := sim.New()
		n, a, b := build(s, sim.Millisecond, 50e6)
		var total int
		s.Spawn("tx", func(p *sim.Proc) {
			for i, raw := range sizes {
				size := int(raw) + 1
				total += size
				if i < len(useStream) && useStream[i] {
					n.Stream(p, a, b, size)
				} else {
					n.Send(p, a, b, size)
				}
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		want := sim.Duration(float64(total) / 50e6 * float64(sim.Second))
		diff := a.Busy() - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= sim.Duration(len(sizes)+1) // rounding slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBadArgsPanic(t *testing.T) {
	s := sim.New()
	for _, fn := range []func(){
		func() { NewIface(s, "x", 0) },
		func() { New(s, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}
