// Package onepass implements a NOW-Sort / HPVM MinuteSort-style one-pass
// disk-to-disk sort, the cluster-sorting design the paper positions itself
// against (Section 7): "It uses sort nodes with more memory and CPU, and
// I/O nodes with more disks. The I/O nodes distribute records to the sort
// nodes which then sort and return them. Most of the work in this system
// is done on the sort nodes; the I/O nodes are statically selected to
// partition the data."
//
// In our model the ASUs play the I/O nodes (they distribute by sampled
// splitters, so the partition is balanced) and the hosts play the sort
// nodes (each receives one key range, sorts it entirely in memory, and
// writes it back striped). One pass over the data — but only while the
// whole input fits in the sort nodes' aggregate memory, which is exactly
// the scaling limitation DSM-Sort's two-pass structure removes.
package onepass

import (
	"fmt"
	"sort"

	"lmas/internal/cluster"
	"lmas/internal/container"
	"lmas/internal/dsmsort"
	"lmas/internal/functor"
	"lmas/internal/records"
	"lmas/internal/route"
	"lmas/internal/sim"
)

// Config parameterizes the one-pass sort.
type Config struct {
	// SampleSize is the number of keys sampled to choose the host
	// splitters (balance under skew).
	SampleSize int
	// PacketRecords sizes interconnect packets.
	PacketRecords int
	// Headroom derates usable sort-node memory (sampling error means a
	// range can exceed n/H); input must satisfy
	// n <= Headroom * H * HostMemRecords. Default 0.8.
	Headroom float64
	Seed     int64
}

// ErrTooLarge reports an input exceeding the sort nodes' memory: the
// one-pass design's hard wall.
type ErrTooLarge struct {
	N, Capacity int
}

func (e *ErrTooLarge) Error() string {
	return fmt.Sprintf("onepass: %d records exceed aggregate sort-node memory of %d", e.N, e.Capacity)
}

// Result reports a completed one-pass sort.
type Result struct {
	Elapsed sim.Duration
	// HostRecords counts records sorted per host (balance check).
	HostRecords []int64
}

// Sort performs the one-pass sort of in on cl, validating the output.
func Sort(cl *cluster.Cluster, cfg Config, in *dsmsort.Input) (*Result, error) {
	if cfg.SampleSize < 1 {
		cfg.SampleSize = 1024
	}
	if cfg.PacketRecords < 1 {
		return nil, fmt.Errorf("onepass: packet size must be >= 1")
	}
	if cfg.Headroom <= 0 || cfg.Headroom > 1 {
		cfg.Headroom = 0.8
	}
	h := len(cl.Hosts)
	capacity := int(cfg.Headroom * float64(h*cl.Params.HostMemRecords))
	if in.N > capacity {
		return nil, &ErrTooLarge{N: in.N, Capacity: capacity}
	}
	recSize := cl.Params.RecordSize

	// Splitter selection: sample keys from the stored input. The sample
	// read is charged (one packet per ASU), the selection runs on host 0.
	var sampleKeys []records.Key
	cl.Sim.Spawn("sample", func(p *sim.Proc) {
		per := cfg.SampleSize/len(in.Sets) + 1
		for i, set := range in.Sets {
			sc := set.Scan(i, false)
			pk, ok := sc.Next(p)
			if !ok {
				continue
			}
			cl.Net.Stream(p, cl.ASUs[i].NIC, cl.Hosts[0].NIC, pk.Bytes()+64)
			for r := 0; r < pk.Len() && r < per; r++ {
				sampleKeys = append(sampleKeys, pk.Buf.Key(r))
			}
		}
		cl.Hosts[0].Compute(p, float64(len(sampleKeys))*log2f(len(sampleKeys))*cl.Params.Costs.CompareOps)
	})
	if err := cl.Sim.Run(); err != nil {
		return nil, err
	}
	if len(sampleKeys) == 0 {
		return nil, fmt.Errorf("onepass: empty input")
	}
	sort.Slice(sampleKeys, func(i, j int) bool { return sampleKeys[i] < sampleKeys[j] })
	splitters := make([]records.Key, h-1)
	for i := range splitters {
		splitters[i] = sampleKeys[(i+1)*len(sampleKeys)/h]
	}

	// Pipeline: ASU distribute (sampled splitters, one range per host)
	// -> host memory sort -> collect striped on ASUs.
	pl := functor.NewPipeline(cl)
	dist := pl.AddStage("distribute", cl.ASUs, func() functor.Kernel {
		return functor.Adapt(&functor.Distribute{Splitters: splitters}, recSize, cfg.PacketRecords)
	})
	// Each sort node buffers at most its memory's worth of records; if
	// sampling error overflows a range, the range emits multiple runs
	// and validation below reports the overlap — the design's hard wall
	// made visible.
	srt := pl.AddStage("memsort", cl.Hosts, func() functor.Kernel {
		return functor.NewBlockSort(cl.Params.HostMemRecords, recSize)
	})
	var outs []container.Packet
	collect := pl.AddStage("collect", cl.ASUs, func() functor.Kernel {
		return &functor.Sink{Label: "sorted", Fn: func(ctx *functor.Ctx, pk container.Packet) {
			outs = append(outs, pk)
			// Striped write to local storage.
			ctx.Node.Disk.Write(ctx.Proc, pk.Bytes())
		}}
	})
	dist.ConnectTo(srt, route.Static{Buckets: h})
	srt.ConnectTo(collect, &route.RoundRobin{})
	collect.Terminal()
	for i, set := range in.Sets {
		pl.AddSource(fmt.Sprintf("read@asu%d", i), cl.ASUs[i], set.Scan(i, false), dist, pin(i))
	}
	elapsed, err := pl.Run()
	if err != nil {
		return nil, err
	}

	// Validation: one sorted run per host range, ranges ordered, full
	// multiset.
	res := &Result{Elapsed: elapsed, HostRecords: make([]int64, h)}
	var sum records.Checksum
	var total int
	sort.Slice(outs, func(i, j int) bool { return outs[i].Bucket < outs[j].Bucket })
	var last records.Key
	haveLast := false
	for _, pk := range outs {
		if !pk.Buf.IsSorted() {
			return nil, fmt.Errorf("onepass: unsorted output for range %d", pk.Bucket)
		}
		if pk.Len() == 0 {
			continue
		}
		if haveLast && pk.Buf.Key(0) < last {
			return nil, fmt.Errorf("onepass: range %d overlaps previous", pk.Bucket)
		}
		last = pk.Buf.Key(pk.Len() - 1)
		haveLast = true
		sum.Add(pk.Buf)
		total += pk.Len()
		if pk.Bucket >= 0 && pk.Bucket < h {
			res.HostRecords[pk.Bucket] += int64(pk.Len())
		}
	}
	if total != in.N || !sum.Equal(in.Checksum) {
		return nil, fmt.Errorf("onepass: output %d records / checksum mismatch (want %d)", total, in.N)
	}
	// Memory bound respected per host?
	for hi, n := range res.HostRecords {
		if n > int64(cl.Params.HostMemRecords) {
			return nil, fmt.Errorf("onepass: host %d held %d records, memory is %d", hi, n, cl.Params.HostMemRecords)
		}
	}
	// Validation done; recycle the retained output packets.
	for i := range outs {
		outs[i].Release()
	}
	return res, nil
}

// pin routes everything to endpoint i.
type pin int

func (pin) Name() string                                       { return "pin" }
func (f pin) Pick(pk route.PacketInfo, e []route.Endpoint) int { return int(f) % len(e) }

func log2f(n int) float64 {
	if n < 2 {
		return 0
	}
	l := 0.0
	for v := n - 1; v > 0; v >>= 1 {
		l++
	}
	return l
}
