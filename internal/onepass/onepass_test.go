package onepass

import (
	"errors"
	"testing"

	"lmas/internal/cluster"
	"lmas/internal/dsmsort"
	"lmas/internal/records"
)

func testCluster(hosts, asus, hostMem int) *cluster.Cluster {
	p := cluster.DefaultParams()
	p.Hosts, p.ASUs = hosts, asus
	p.HostMemRecords = hostMem
	return cluster.New(p)
}

func TestOnePassSorts(t *testing.T) {
	cl := testCluster(4, 8, 4096)
	in := dsmsort.MakeInput(cl, 8000, records.Uniform{}, 1, 64)
	res, err := Sort(cl, Config{SampleSize: 2048, PacketRecords: 64, Seed: 1}, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no time elapsed")
	}
	// Sampled splitters should balance the hosts within ~2x.
	for hi, n := range res.HostRecords {
		if n < 8000/4/2 || n > 8000/4*2 {
			t.Fatalf("host %d sorted %d of 8000; imbalanced split", hi, n)
		}
	}
}

func TestOnePassSkewedInputStillBalances(t *testing.T) {
	// Sampling exists precisely so skewed keys split evenly.
	cl := testCluster(4, 8, 4096)
	in := dsmsort.MakeInput(cl, 8000, records.Exponential{Mean: 0.05}, 1, 64)
	res, err := Sort(cl, Config{SampleSize: 4096, PacketRecords: 64, Seed: 1}, in)
	if err != nil {
		t.Fatal(err)
	}
	for hi, n := range res.HostRecords {
		if n < 8000/4/3 || n > 8000/4*3 {
			t.Fatalf("host %d sorted %d of 8000 under skew", hi, n)
		}
	}
}

func TestOnePassRejectsOversizedInput(t *testing.T) {
	cl := testCluster(2, 4, 1024)
	in := dsmsort.MakeInput(cl, 10000, records.Uniform{}, 1, 64) // > 0.8*2*1024
	_, err := Sort(cl, Config{PacketRecords: 64, Seed: 1}, in)
	var tooLarge *ErrTooLarge
	if !errors.As(err, &tooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if tooLarge.Capacity != 1638 {
		t.Fatalf("capacity = %d", tooLarge.Capacity)
	}
}

func TestOnePassBeatsTwoPassWhenItFits(t *testing.T) {
	// One pass over the data vs DSM-Sort's two: when memory suffices,
	// the one-pass design wins (which is why it held sort records).
	n := 1 << 14
	clA := testCluster(4, 8, 1<<13)
	inA := dsmsort.MakeInput(clA, n, records.Uniform{}, 3, 64)
	one, err := Sort(clA, Config{SampleSize: 2048, PacketRecords: 64, Seed: 3}, inA)
	if err != nil {
		t.Fatal(err)
	}
	clB := testCluster(4, 8, 1<<13)
	inB := dsmsort.MakeInput(clB, n, records.Uniform{}, 3, 64)
	two, err := dsmsort.Sort(clB, dsmsort.Config{
		Alpha: 16, Beta: 64, Gamma2: 16, PacketRecords: 64,
		Placement: dsmsort.Active, Seed: 3,
	}, inB)
	if err != nil {
		t.Fatal(err)
	}
	if one.Elapsed >= two.Elapsed {
		t.Fatalf("one-pass %.4fs not faster than two-pass %.4fs at in-memory scale",
			one.Elapsed.Seconds(), two.Elapsed.Seconds())
	}
}

func TestTwoPassScalesPastOnePassWall(t *testing.T) {
	// Past the memory wall the one-pass sort cannot run at all, while
	// DSM-Sort completes: the scaling argument of Section 7.
	n := 1 << 14
	cl := testCluster(2, 8, 1<<12) // capacity 0.8*2*4096 = 6553 < n
	in := dsmsort.MakeInput(cl, n, records.Uniform{}, 3, 64)
	if _, err := Sort(cl, Config{PacketRecords: 64, Seed: 3}, in); err == nil {
		t.Fatal("one-pass sorted past its memory wall")
	}
	cl2 := testCluster(2, 8, 1<<12)
	in2 := dsmsort.MakeInput(cl2, n, records.Uniform{}, 3, 64)
	if _, err := dsmsort.Sort(cl2, dsmsort.Config{
		Alpha: 16, Beta: 64, Gamma2: 16, PacketRecords: 64,
		Placement: dsmsort.Active, Seed: 3,
	}, in2); err != nil {
		t.Fatalf("DSM-Sort failed where it must scale: %v", err)
	}
}

func TestBadConfig(t *testing.T) {
	cl := testCluster(1, 1, 1024)
	in := dsmsort.MakeInput(cl, 100, records.Uniform{}, 1, 32)
	if _, err := Sort(cl, Config{PacketRecords: 0}, in); err == nil {
		t.Fatal("zero packet size accepted")
	}
}
