// Package plot holds the shared SVG plotting vocabulary used by every chart
// the toolchain emits — lmasreport's utilization and attribution plots and
// the recorder's live dashboard. Geometry, the ink palette, and the fixed
// categorical series order live here once, so a color or margin change lands
// in every output, and so the charts stay visually consistent: categorical
// slots are assigned to entities in fixed order (color follows the entity),
// series draw as 2px lines over a recessive grid, and identity never rides
// on color alone (every series is also direct-labeled or legended).
package plot

import (
	"fmt"
	"strings"
)

// Canvas geometry shared by the standard 800x420 chart frame.
const (
	W, H                   = 800, 420
	PadL, PadR, PadT, PadB = 60, 150, 44, 48
)

// Ink palette: a warm paper surface with near-black primary ink and
// progressively recessive grays for secondary text, labels, and grid.
const (
	InkSurface  = "#fcfcfb"
	InkPrimary  = "#0b0b0b"
	InkSecond   = "#52514e"
	InkMuted    = "#898781"
	InkGrid     = "#e1e0d9"
	InkBaseline = "#c3c2b7"
)

// SeriesColors is the fixed categorical order; series beyond the eighth are
// dropped with an explicit note, never recolored.
var SeriesColors = []string{
	"#2a78d6", "#eb6834", "#1baf7a", "#eda100",
	"#e87ba4", "#008300", "#4a3aa7", "#e34948",
}

// Clamp01 bounds v to [0, 1].
func Clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Open writes the SVG root element and the surface rectangle for a w x h
// canvas. Close the document with Close.
func Open(b *strings.Builder, w, h int) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, -apple-system, 'Segoe UI', sans-serif">`+"\n",
		w, h, w, h)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", w, h, InkSurface)
}

// Close terminates the SVG document.
func Close(b *strings.Builder) { b.WriteString("</svg>\n") }

// Title writes the chart title in primary ink at the standard position.
func Title(b *strings.Builder, text string) {
	fmt.Fprintf(b, `<text x="%d" y="24" font-size="15" fill="%s">%s</text>`+"\n",
		PadL, InkPrimary, text)
}

// LegendLine writes one legend row with a 12x3 line swatch (for line series).
func LegendLine(b *strings.Builder, x, y int, color, label string) {
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="12" height="3" fill="%s"/>`+"\n", x, y, color)
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11" fill="%s">%s</text>`+"\n", x+18, y+5, InkSecond, label)
}

// LegendSwatch writes one legend row with a 12x12 box swatch (for filled
// segments such as stacked bars).
func LegendSwatch(b *strings.Builder, x, y int, color, label string) {
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n", x, y, color)
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11" fill="%s">%s</text>`+"\n", x+18, y+10, InkSecond, label)
}

// Sparkline draws vals as a compact polyline filling the (x, y, w, h) box,
// values scaled to the observed min/max (a flat series draws mid-height),
// with a dot marking the final value. Points are evenly spaced; a single
// value draws only the dot.
func Sparkline(b *strings.Builder, x, y, w, h int, vals []float64, color string) {
	if len(vals) == 0 {
		return
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	px := func(i int) float64 {
		if len(vals) == 1 {
			return float64(x + w)
		}
		return float64(x) + float64(i)*float64(w)/float64(len(vals)-1)
	}
	py := func(v float64) float64 {
		if hi == lo {
			return float64(y) + float64(h)/2
		}
		return float64(y+h) - (v-lo)/(hi-lo)*float64(h)
	}
	if len(vals) > 1 {
		var pts strings.Builder
		for i, v := range vals {
			if i > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.1f,%.1f", px(i), py(v))
		}
		fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			pts.String(), color)
	}
	last := len(vals) - 1
	fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", px(last), py(vals[last]), color)
}
