package pqueue

import (
	"math/rand"
	"testing"

	"lmas/internal/bte"
	"lmas/internal/cluster"
	"lmas/internal/sim"
)

func BenchmarkPushPopInMemory(b *testing.B) {
	cl := cluster.New(cluster.DefaultParams())
	q := New(cl, cl.Hosts[0], bte.NewMemory(), 1<<12)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	b.ResetTimer()
	cl.Sim.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			q.Push(p, Item{Key: keys[i%4096]})
			if i%2 == 1 {
				q.PopMin(p)
			}
		}
	})
	if err := cl.Sim.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSpillHeavy(b *testing.B) {
	// A tiny buffer forces constant spilling: the external-memory path.
	cl := cluster.New(cluster.DefaultParams())
	q := New(cl, cl.Hosts[0], bte.NewDisk(cl.ASUs[0].Disk), 64)
	b.ResetTimer()
	cl.Sim.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			q.Push(p, Item{Key: uint64(i * 2654435761 % (1 << 30))})
		}
		for {
			if _, ok := q.PopMin(p); !ok {
				break
			}
		}
	})
	if err := cl.Sim.Run(); err != nil {
		b.Fatal(err)
	}
}
