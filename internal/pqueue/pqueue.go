// Package pqueue implements an external-memory priority queue, the
// substrate for time-forward processing [Chiang et al., SODA'95] that
// TerraFlow's watershed step relies on (Section 4.1): "Step 3 uses neighbor
// information to propagate colors from the lowest points up/outward to the
// peaks and ridges... it uses time-forward processing and relies on
// ordering for correctness."
//
// The structure keeps an insertion buffer of bounded size in memory; when
// the buffer fills, it is sorted and spilled to external storage as a
// sorted run. PopMin merges the buffer minimum with the heads of all
// spilled runs. Each item is written and read at most once externally, and
// in-memory work is O(log) comparisons per operation.
package pqueue

import (
	"encoding/binary"
	"fmt"
	"sort"

	"lmas/internal/bte"
	"lmas/internal/cluster"
	"lmas/internal/scratch"
	"lmas/internal/sim"
)

// Item is a prioritized message: time-forward processing sends Payload to
// the computation step identified by Key.
type Item struct {
	// Key orders items; for TerraFlow it is (elevation, cell id).
	Key uint64
	// Payload is the message body (a watershed color, for TerraFlow).
	Payload uint64
}

const itemBytes = 16

// PQ is an external-memory priority queue. All operations must be invoked
// from the owning simulation's running proc; external runs are stored on
// the provided engine and charged to its device. CPU comparison costs are
// charged to the owning node.
type PQ struct {
	// Strict enables the time-forward-processing invariant check: once
	// set, popped keys must never regress (TFP only ever sends messages
	// forward in the processing order).
	Strict bool

	node *cluster.Node
	cl   *cluster.Cluster
	eng  bte.Engine

	memCap int
	buf    []Item // insertion buffer, unsorted
	runs   []*run

	len      int
	spills   int
	maxRuns  int
	popped   uint64
	lastKey  uint64
	havePrev bool
}

// run is a spilled sorted run with a read cursor. Drained runs return to
// runPool so the decoded-items slice capacity is reused across spills
// instead of reallocated per run.
type run struct {
	id     bte.BlockID
	items  []Item // decoded lazily on first read; capacity reused via runPool
	loaded bool
	pos    int
}

var runPool scratch.Pool[run]

// New creates a priority queue whose insertion buffer holds memItems items.
// Spilled runs are stored on eng (typically a disk engine of the node that
// owns the computation); comparison costs are charged to node's CPU.
func New(cl *cluster.Cluster, node *cluster.Node, eng bte.Engine, memItems int) *PQ {
	if memItems < 2 {
		panic("pqueue: memory must hold at least 2 items")
	}
	return &PQ{node: node, cl: cl, eng: eng, memCap: memItems}
}

// Len reports the number of queued items.
func (q *PQ) Len() int { return q.len }

// Spills reports how many runs were ever written externally.
func (q *PQ) Spills() int { return q.spills }

// Push inserts it, spilling the insertion buffer if full.
func (q *PQ) Push(p *sim.Proc, it Item) {
	if len(q.buf) == q.memCap {
		q.spill(p)
	}
	q.buf = append(q.buf, it)
	q.len++
	// One heap-insert's worth of comparisons.
	q.charge(p, log2f(q.memCap))
}

func (q *PQ) spill(p *sim.Proc) {
	sort.Slice(q.buf, func(i, j int) bool { return less(q.buf[i], q.buf[j]) })
	data := make([]byte, len(q.buf)*itemBytes)
	for i, it := range q.buf {
		binary.LittleEndian.PutUint64(data[i*itemBytes:], it.Key)
		binary.LittleEndian.PutUint64(data[i*itemBytes+8:], it.Payload)
	}
	// Sorting cost for the spill.
	q.charge(p, float64(len(q.buf))*log2f(len(q.buf)))
	id := q.eng.Append(p, data)
	r := runPool.Get()
	*r = run{id: id, items: r.items[:0]}
	q.runs = append(q.runs, r)
	q.spills++
	if len(q.runs) > q.maxRuns {
		q.maxRuns = len(q.runs)
	}
	q.buf = q.buf[:0]
}

func (r *run) load(p *sim.Proc, eng bte.Engine) {
	if r.loaded {
		return
	}
	data := eng.Read(p, r.id)
	r.items = scratch.Grow(r.items, len(data)/itemBytes)
	r.loaded = true
	for i := range r.items {
		r.items[i].Key = binary.LittleEndian.Uint64(data[i*itemBytes:])
		r.items[i].Payload = binary.LittleEndian.Uint64(data[i*itemBytes+8:])
	}
}

// Peek reports the smallest item without removing it. ok is false when
// empty.
func (q *PQ) Peek(p *sim.Proc) (Item, bool) {
	if q.len == 0 {
		return Item{}, false
	}
	var best Item
	found := false
	for _, it := range q.buf {
		if !found || less(it, best) {
			best, found = it, true
		}
	}
	for _, r := range q.runs {
		r.load(p, q.eng)
		if r.pos < len(r.items) {
			if it := r.items[r.pos]; !found || less(it, best) {
				best, found = it, true
			}
		}
	}
	q.charge(p, log2f(len(q.runs)+1))
	return best, found
}

// PopMin removes and returns the smallest item. ok is false when empty.
// With Strict set, PopMin panics if keys regress across calls.
func (q *PQ) PopMin(p *sim.Proc) (Item, bool) {
	if q.len == 0 {
		return Item{}, false
	}
	// Candidate from the buffer: linear scan is O(memCap), but we charge
	// only the heap-equivalent log cost since a production structure
	// would keep the buffer heapified; the scan here is emulation-host
	// work, not emulated work.
	bi := -1
	for i := range q.buf {
		if bi < 0 || less(q.buf[i], q.buf[bi]) {
			bi = i
		}
	}
	// Candidate among run heads.
	ri := -1
	for i, r := range q.runs {
		r.load(p, q.eng)
		if r.pos >= len(r.items) {
			continue
		}
		if ri < 0 || less(r.items[r.pos], q.runs[ri].items[q.runs[ri].pos]) {
			ri = i
		}
	}
	var out Item
	switch {
	case bi < 0 && ri < 0:
		return Item{}, false
	case ri < 0 || (bi >= 0 && !less(q.runs[ri].items[q.runs[ri].pos], q.buf[bi])):
		out = q.buf[bi]
		q.buf[bi] = q.buf[len(q.buf)-1]
		q.buf = q.buf[:len(q.buf)-1]
	default:
		r := q.runs[ri]
		out = r.items[r.pos]
		r.pos++
		if r.pos == len(r.items) {
			q.eng.Free(r.id)
			copy(q.runs[ri:], q.runs[ri+1:])
			// Clear the tail so the backing array doesn't pin the run,
			// then recycle it: nothing else references a drained run.
			q.runs[len(q.runs)-1] = nil
			q.runs = q.runs[:len(q.runs)-1]
			runPool.Put(r)
		}
	}
	q.len--
	q.charge(p, log2f(q.memCap)+log2f(len(q.runs)+1))
	if q.Strict && q.havePrev && out.Key < q.lastKey {
		panic(fmt.Sprintf("pqueue: keys regressed: %d after %d", out.Key, q.lastKey))
	}
	q.lastKey, q.havePrev = out.Key, true
	q.popped++
	return out, true
}

func (q *PQ) charge(p *sim.Proc, compares float64) {
	if q.node == nil {
		return
	}
	q.node.Compute(p, compares*q.cl.Params.Costs.CompareOps)
}

func less(a, b Item) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Payload < b.Payload
}

func log2f(n int) float64 {
	if n < 2 {
		return 0
	}
	// Fast integer log2 is enough for cost accounting.
	l := 0
	for v := n - 1; v > 0; v >>= 1 {
		l++
	}
	return float64(l)
}
