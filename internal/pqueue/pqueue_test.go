package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"lmas/internal/bte"
	"lmas/internal/cluster"
	"lmas/internal/sim"
)

// drive runs fn in a proc on a default cluster's first host with a memory
// engine and fails the test on sim error.
func drive(t *testing.T, memItems int, fn func(p *sim.Proc, q *PQ)) {
	t.Helper()
	cl := cluster.New(cluster.DefaultParams())
	q := New(cl, cl.Hosts[0], bte.NewMemory(), memItems)
	cl.Sim.Spawn("pq", func(p *sim.Proc) { fn(p, q) })
	if err := cl.Sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPushPopSorted(t *testing.T) {
	drive(t, 4, func(p *sim.Proc, q *PQ) {
		keys := []uint64{9, 3, 7, 1, 8, 2, 6, 4, 5, 0}
		for _, k := range keys {
			q.Push(p, Item{Key: k, Payload: k * 10})
		}
		if q.Len() != len(keys) {
			t.Errorf("Len = %d", q.Len())
		}
		for want := uint64(0); want < 10; want++ {
			it, ok := q.PopMin(p)
			if !ok || it.Key != want || it.Payload != want*10 {
				t.Fatalf("pop %d: got %+v ok=%v", want, it, ok)
			}
		}
		if _, ok := q.PopMin(p); ok {
			t.Error("pop from empty succeeded")
		}
	})
}

func TestSpillsWhenBufferFull(t *testing.T) {
	drive(t, 4, func(p *sim.Proc, q *PQ) {
		for i := 0; i < 20; i++ {
			q.Push(p, Item{Key: uint64(i)})
		}
		if q.Spills() == 0 {
			t.Error("no spills despite tiny buffer")
		}
	})
}

func TestInterleavedPushPop(t *testing.T) {
	drive(t, 8, func(p *sim.Proc, q *PQ) {
		rng := rand.New(rand.NewSource(1))
		var ref []uint64
		push := func(k uint64) {
			q.Push(p, Item{Key: k})
			ref = append(ref, k)
		}
		pop := func() {
			it, ok := q.PopMin(p)
			if !ok {
				if len(ref) != 0 {
					t.Fatal("queue empty, reference not")
				}
				return
			}
			sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
			if it.Key != ref[0] {
				t.Fatalf("popped %d, want %d", it.Key, ref[0])
			}
			ref = ref[1:]
		}
		for i := 0; i < 500; i++ {
			if rng.Intn(3) == 0 {
				pop()
			} else {
				push(uint64(rng.Intn(1000)))
			}
		}
		for len(ref) > 0 {
			pop()
		}
	})
}

func TestDuplicateKeysOrderedByPayload(t *testing.T) {
	drive(t, 3, func(p *sim.Proc, q *PQ) {
		q.Push(p, Item{Key: 5, Payload: 2})
		q.Push(p, Item{Key: 5, Payload: 1})
		q.Push(p, Item{Key: 5, Payload: 3})
		for want := uint64(1); want <= 3; want++ {
			it, _ := q.PopMin(p)
			if it.Payload != want {
				t.Fatalf("payload %d, want %d", it.Payload, want)
			}
		}
	})
}

func TestStrictModePanicsOnRegression(t *testing.T) {
	drive(t, 4, func(p *sim.Proc, q *PQ) {
		q.Strict = true
		q.Push(p, Item{Key: 10})
		q.PopMin(p)
		q.Push(p, Item{Key: 5}) // violates time-forward order
		defer func() {
			if recover() == nil {
				t.Error("no panic on key regression in strict mode")
			}
		}()
		q.PopMin(p)
	})
}

func TestNonStrictAllowsRegression(t *testing.T) {
	drive(t, 4, func(p *sim.Proc, q *PQ) {
		q.Push(p, Item{Key: 10})
		q.PopMin(p)
		q.Push(p, Item{Key: 5})
		if it, ok := q.PopMin(p); !ok || it.Key != 5 {
			t.Errorf("got %+v ok=%v", it, ok)
		}
	})
}

func TestDiskChargedForSpills(t *testing.T) {
	cl := cluster.New(cluster.DefaultParams())
	asu := cl.ASUs[0]
	eng := bte.NewDisk(asu.Disk)
	q := New(cl, cl.Hosts[0], eng, 64)
	cl.Sim.Spawn("pq", func(p *sim.Proc) {
		for i := 0; i < 1000; i++ {
			q.Push(p, Item{Key: uint64(i)})
		}
		for {
			if _, ok := q.PopMin(p); !ok {
				break
			}
		}
		eng.Flush(p)
	})
	if err := cl.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	_, writes, _, wb := asu.Disk.Stats()
	if writes == 0 || wb == 0 {
		t.Fatal("spills charged no disk writes")
	}
	if q.Spills() == 0 {
		t.Fatal("expected spills")
	}
}

func TestEmptyBehaviour(t *testing.T) {
	drive(t, 2, func(p *sim.Proc, q *PQ) {
		if _, ok := q.PopMin(p); ok {
			t.Error("empty pop succeeded")
		}
		if q.Len() != 0 {
			t.Error("empty Len != 0")
		}
	})
}

func TestBadMemPanics(t *testing.T) {
	cl := cluster.New(cluster.DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(cl, cl.Hosts[0], bte.NewMemory(), 1)
}

// TestHeapProperty: the queue returns any multiset of keys in sorted order
// for arbitrary buffer sizes.
func TestHeapProperty(t *testing.T) {
	f := func(keys []uint16, memRaw uint8) bool {
		mem := int(memRaw%30) + 2
		ok := true
		drive(t, mem, func(p *sim.Proc, q *PQ) {
			for _, k := range keys {
				q.Push(p, Item{Key: uint64(k)})
			}
			want := append([]uint16(nil), keys...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for _, w := range want {
				it, more := q.PopMin(p)
				if !more || it.Key != uint64(w) {
					ok = false
					return
				}
			}
			if _, more := q.PopMin(p); more {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
