// Package prof wires -cpuprofile / -memprofile CLI flags to runtime/pprof,
// shared by the command-line tools so wall-clock hot spots in the emulation
// host can be inspected with `go tool pprof`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the two paths (empty = disabled)
// and returns a stop function to run once, just before exit: it ends the
// CPU profile and writes the heap profile. File-creation problems fail
// fast; problems while writing at stop time are reported on stderr, since
// by then the tool's real work has already succeeded.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "prof: close cpu profile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			runtime.GC() // collect before snapshotting live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "prof: write heap profile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "prof: close heap profile: %v\n", err)
			}
		}
	}, nil
}
