package recorder

import (
	"encoding/json"
	"strings"

	"lmas/internal/plot"
)

// dashboardPage is the single-page monitoring UI with the shared plot
// palette injected, so the live strips use the same categorical colors as
// the SVG charts.
var dashboardPage = func() string {
	palette, _ := json.Marshal(plot.SeriesColors)
	return strings.Replace(dashboardSrc, "/*PALETTE*/", string(palette), 1)
}()

const dashboardSrc = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>lmas monitor</title>
<style>
  body { font-family: system-ui, -apple-system, 'Segoe UI', sans-serif;
         background: #fcfcfb; color: #0b0b0b; margin: 0; padding: 20px 28px; }
  h1 { font-size: 17px; margin: 0 0 4px 0; }
  #progress { color: #52514e; font-size: 13px; margin-bottom: 16px; }
  .run { border: 1px solid #e1e0d9; border-radius: 6px; background: #fff;
         padding: 12px 16px; margin-bottom: 14px; }
  .run h2 { font-size: 14px; margin: 0 0 2px 0; }
  .meta { color: #898781; font-size: 11px; margin-bottom: 8px; }
  .status-running { color: #2a78d6; } .status-done { color: #1baf7a; }
  table { border-collapse: collapse; font-size: 12px; margin: 6px 0; }
  td, th { padding: 2px 10px 2px 0; text-align: left; color: #52514e; }
  th { color: #898781; font-weight: normal; }
  .strip { display: inline-block; width: 180px; height: 10px;
           background: #e1e0d9; border-radius: 2px; vertical-align: middle; }
  .strip i { display: block; height: 100%; border-radius: 2px; }
  .pct { display: inline-block; width: 42px; font-size: 11px; color: #898781; }
  .events { font-size: 11px; color: #52514e; margin-top: 6px;
            max-height: 130px; overflow-y: auto; }
  .events div { padding: 1px 0; }
  .events .t { color: #898781; display: inline-block; width: 70px; }
  .verdict { color: #eb6834; }
</style>
</head>
<body>
<h1>lmas monitor</h1>
<div id="progress">waiting for runs&hellip;</div>
<div id="runs"></div>
<script>
"use strict";
const PALETTE = /*PALETTE*/;
let state = { runs: [] };

function byId(id) { return state.runs.find(r => r.header.run_id === id); }

function bar(color, frac, label) {
  const pct = Math.max(0, Math.min(1, frac)) * 100;
  return '<span class="strip"><i style="width:' + pct.toFixed(1) +
    '%;background:' + color + '"></i></span> <span class="pct">' +
    pct.toFixed(0) + '% ' + label + '</span>';
}

function fmtT(ns) { return (ns / 1e9).toFixed(2) + 's'; }
function fmtMs(ns) { return (ns / 1e6).toFixed(2) + 'ms'; }

// latencyStrip renders the live p50/p99 view of each latency histogram in
// the latest sample: both quantiles as bars on a shared scale (the largest
// p99 in the sample), so queue buildup reads as the p99 bar running away
// from the p50 bar.
function latencyStrip(lats) {
  let maxNs = 1;
  for (const l of lats) maxNs = Math.max(maxNs, l.p99_ns);
  let html = '<table class="latency"><tr><th>latency</th><th>count</th>' +
    '<th>p50</th><th>p99</th></tr>';
  lats.forEach((l, i) => {
    const c = PALETTE[i % PALETTE.length];
    html += '<tr><td>' + l.name + '</td><td>' + l.count + '</td>' +
      '<td>' + bar(c, l.p50_ns / maxNs, fmtMs(l.p50_ns)) + '</td>' +
      '<td>' + bar(c, l.p99_ns / maxNs, fmtMs(l.p99_ns)) + '</td></tr>';
  });
  return html + '</table>';
}

function render() {
  const done = state.runs.filter(r => r.done).length;
  document.getElementById('progress').textContent = state.runs.length === 0
    ? 'waiting for runs…'
    : done + ' / ' + state.runs.length + ' runs finished';
  let html = '';
  for (const run of state.runs) {
    const h = run.header;
    const status = run.done
      ? '<span class="status-done">done' +
        (run.runtime_sec ? ' · ' + run.runtime_sec.toFixed(3) + 's virtual' : '') + '</span>'
      : '<span class="status-running">running</span>';
    html += '<div class="run"><h2>' + h.name + ' — ' + status + '</h2>' +
      '<div class="meta">' + h.run_id + ' · experiment ' + h.experiment +
      ' · cfg ' + h.config_hash + ' · rev ' + h.git_rev +
      ' · seed ' + h.seed + '</div>';
    if (run.verdict)
      html += '<div class="events"><div class="verdict">bottleneck: ' + run.verdict + '</div></div>';
    const last = run.samples && run.samples.length
      ? run.samples[run.samples.length - 1] : null;
    if (last && last.nodes) {
      html += '<table><tr><th>node</th><th>cpu</th><th>disk</th><th>nic</th>' +
        '<th>busy (cum)</th></tr>';
      last.nodes.forEach((n, i) => {
        const c = PALETTE[i % PALETTE.length];
        html += '<tr><td>' + n.node + '</td>' +
          '<td>' + bar(c, n.cpu, '') + '</td>' +
          '<td>' + bar(c, n.disk || 0, '') + '</td>' +
          '<td>' + bar(c, n.nic || 0, '') + '</td>' +
          '<td>' + n.cpu_busy_sec.toFixed(3) + 's</td></tr>';
      });
      html += '</table>';
    }
    if (last && last.queues && last.queues.length) {
      html += '<table><tr><th>queue</th><th>depth</th><th>high-water</th></tr>';
      for (const q of last.queues)
        html += '<tr><td>' + q.queue + '</td><td>' + q.depth + '</td><td>' +
          q.high_water + '</td></tr>';
      html += '</table>';
    }
    if (last && last.latencies && last.latencies.length)
      html += latencyStrip(last.latencies);
    if (run.sched) {
      const parts = Object.keys(run.sched).sort()
        .map(k => k + ' ' + run.sched[k]);
      html += '<div class="meta sched">scheduler: ' + parts.join(' · ') + '</div>';
    }
    if (run.events && run.events.length) {
      html += '<div class="events">';
      for (const e of run.events.slice(-12).reverse()) {
        const cls = e.kind === 'verdict' ? ' class="verdict"' : '';
        html += '<div' + cls + '><span class="t">' + fmtT(e.t_ns) + '</span>' +
          e.kind + ' ' + (e.source || '') + ' ' + (e.action || '') +
          (e.detail ? ' — ' + e.detail : '') + '</div>';
      }
      html += '</div>';
    }
    html += '</div>';
  }
  document.getElementById('runs').innerHTML = html;
}

let pending = false;
function scheduleRender() {
  if (pending) return;
  pending = true;
  requestAnimationFrame(() => { pending = false; render(); });
}

const es = new EventSource('/events');
es.addEventListener('snapshot', ev => {
  state = JSON.parse(ev.data);
  if (!state.runs) state.runs = [];
  scheduleRender();
});
es.onmessage = ev => {
  const m = JSON.parse(ev.data);
  if (m.type === 'begin') {
    if (!byId(m.run_id)) state.runs.push({ header: m.header, samples: [], events: [], done: false });
  } else {
    const run = byId(m.run_id);
    if (!run) return;
    if (m.type === 'sample') {
      run.samples.push(m.sample);
      if (run.samples.length > 240) run.samples.shift();
    } else if (m.type === 'event') {
      run.events.push(m.event);
      if (run.events.length > 64) run.events.shift();
    } else if (m.type === 'finish') {
      run.done = true;
      run.runtime_sec = m.runtime_sec;
      run.verdict = m.verdict;
      if (m.sched) run.sched = m.sched;
    }
  }
  scheduleRender();
};
</script>
</body>
</html>
`
