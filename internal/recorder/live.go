package recorder

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"lmas/internal/telemetry"
)

// History caps for the live view: the dashboard only needs recent samples
// for its strips and the latest events for its verdict stream; the store
// backend keeps the complete record.
const (
	liveMaxSamples = 240
	liveMaxEvents  = 64
)

// LiveRun is the dashboard-facing state of one run, JSON-shaped for the
// /api/state snapshot and the SSE stream.
type LiveRun struct {
	Header     Header   `json:"header"`
	Samples    []Sample `json:"samples,omitempty"`
	Events     []Event  `json:"events,omitempty"`
	Done       bool     `json:"done"`
	RuntimeSec float64  `json:"runtime_sec,omitempty"`
	Verdict    string   `json:"verdict,omitempty"`
	// Sched holds the finished run's sim.scheduler.* counters (wheel hits,
	// heap spills, proc reuses), keyed by the counter's last name segment.
	Sched map[string]int64 `json:"sched,omitempty"`
}

// Live is the monitoring backend: runs stream their records in (possibly
// from several sweep workers at once) and any number of browsers watch the
// state over SSE. It holds a bounded in-memory view per run — no
// persistence; pair it with a Store via Multi when both are wanted.
type Live struct {
	mu     sync.Mutex
	runs   []*LiveRun
	byID   map[string]*LiveRun
	subs   map[chan []byte]struct{}
	nextID int
}

// NewLive returns an empty live backend.
func NewLive() *Live {
	return &Live{
		byID: make(map[string]*LiveRun),
		subs: make(map[chan []byte]struct{}),
	}
}

// NewRun opens a recorder streaming one run into the live view.
func (l *Live) NewRun() Recorder { return &liveRec{l: l} }

type liveRec struct {
	l   *Live
	run *LiveRun
}

func (r *liveRec) Begin(h *Header) {
	l := r.l
	l.mu.Lock()
	if h.Schema == "" {
		h.Schema = StoreSchema
	}
	if h.RunID == "" {
		l.nextID++
		h.RunID = fmt.Sprintf("live-%04d", l.nextID)
	}
	r.run = &LiveRun{Header: *h}
	l.runs = append(l.runs, r.run)
	l.byID[h.RunID] = r.run
	l.broadcastLocked("begin", r.run.Header.RunID, map[string]any{"header": r.run.Header})
	l.mu.Unlock()
}

func (r *liveRec) Sample(s Sample) {
	if r.run == nil {
		return
	}
	l := r.l
	l.mu.Lock()
	r.run.Samples = append(r.run.Samples, s)
	if len(r.run.Samples) > liveMaxSamples {
		r.run.Samples = r.run.Samples[len(r.run.Samples)-liveMaxSamples:]
	}
	l.broadcastLocked("sample", r.run.Header.RunID, map[string]any{"sample": s})
	l.mu.Unlock()
}

func (r *liveRec) Event(e Event) {
	if r.run == nil {
		return
	}
	l := r.l
	l.mu.Lock()
	l.appendEventLocked(r.run, e)
	l.mu.Unlock()
}

func (l *Live) appendEventLocked(run *LiveRun, e Event) {
	run.Events = append(run.Events, e)
	if len(run.Events) > liveMaxEvents {
		run.Events = run.Events[len(run.Events)-liveMaxEvents:]
	}
	l.broadcastLocked("event", run.Header.RunID, map[string]any{"event": e})
}

// Span drops trace events: the live view is a bounded recent-state strip,
// and full traces belong in the store backend.
func (r *liveRec) Span(Span) {}

func (r *liveRec) Finish(rep *telemetry.RunReport) {
	if r.run == nil {
		return
	}
	l := r.l
	l.mu.Lock()
	r.run.Done = true
	if rep != nil {
		r.run.RuntimeSec = rep.RuntimeSec
		for _, c := range rep.Counters {
			if rest, ok := strings.CutPrefix(c.Name, "sim.scheduler."); ok {
				if r.run.Sched == nil {
					r.run.Sched = make(map[string]int64)
				}
				r.run.Sched[rest] = c.Value
			}
		}
		if cp := rep.Critpath; cp != nil {
			v := cp.Verdict
			r.run.Verdict = fmt.Sprintf("%s (%.1f%% of per-instance congestion)",
				v.Observed, v.ObservedShare*100)
			l.appendEventLocked(r.run, Event{
				T:      rep.RuntimeNs,
				Kind:   "verdict",
				Source: "critpath",
				Action: v.Observed,
				Detail: r.run.Verdict,
			})
		}
	}
	finish := map[string]any{
		"runtime_sec": r.run.RuntimeSec,
		"verdict":     r.run.Verdict,
	}
	if r.run.Sched != nil {
		finish["sched"] = r.run.Sched
	}
	l.broadcastLocked("finish", r.run.Header.RunID, finish)
	l.mu.Unlock()
}

// broadcastLocked fans one SSE message out to every subscriber; slow
// subscribers drop messages (they resync from the snapshot on reconnect).
// Callers hold l.mu.
func (l *Live) broadcastLocked(typ, runID string, payload map[string]any) {
	if len(l.subs) == 0 {
		return
	}
	msg := map[string]any{"type": typ, "run_id": runID}
	for k, v := range payload {
		msg[k] = v
	}
	b, err := json.Marshal(msg)
	if err != nil {
		return
	}
	for ch := range l.subs {
		select {
		case ch <- b:
		default:
		}
	}
}

// snapshot marshals the full state under the lock, so readers never race
// recorders.
func (l *Live) snapshot() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, err := json.Marshal(map[string]any{"runs": l.runs})
	if err != nil {
		return []byte(`{"runs":[]}`)
	}
	return b
}

// Handler serves the monitoring UI:
//
//	/           the single-page dashboard
//	/api/state  the full state as one JSON snapshot
//	/events     SSE: a snapshot event on connect, then streamed updates
func (l *Live) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, dashboardPage)
	})
	mux.HandleFunc("/api/state", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(l.snapshot())
	})
	mux.HandleFunc("/events", l.serveEvents)
	return mux
}

func (l *Live) serveEvents(w http.ResponseWriter, req *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	ch := make(chan []byte, 128)
	l.mu.Lock()
	l.subs[ch] = struct{}{}
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.subs, ch)
		l.mu.Unlock()
	}()

	fmt.Fprintf(w, "event: snapshot\ndata: %s\n\n", l.snapshot())
	flusher.Flush()

	for {
		select {
		case <-req.Context().Done():
			return
		case msg := <-ch:
			fmt.Fprintf(w, "data: %s\n\n", msg)
			flusher.Flush()
		}
	}
}
