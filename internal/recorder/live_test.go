package recorder

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestLiveHTTPSmoke drives the monitoring server the way a browser does:
// fetch the dashboard, open the SSE stream, and check that a run recorded
// while the stream is open is delivered — a snapshot event first, then at
// least one streamed sample.
func TestLiveHTTPSmoke(t *testing.T) {
	live := NewLive()
	srv := httptest.NewServer(live.Handler())
	defer srv.Close()

	// Dashboard page renders.
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<20)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	page := string(body[:n])
	if resp.StatusCode != 200 || !strings.Contains(page, "lmas monitor") {
		t.Fatalf("dashboard: status %d, page %q...", resp.StatusCode, page[:min(len(page), 80)])
	}

	// State snapshot endpoint answers JSON.
	resp, err = http.Get(srv.URL + "/api/state")
	if err != nil {
		t.Fatal(err)
	}
	n, _ = resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), `"runs"`) {
		t.Fatalf("/api/state = %q", body[:n])
	}

	// Open the SSE stream, then record a run while it is connected.
	req, _ := http.NewRequest("GET", srv.URL+"/events", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	waitFor := func(substr string) string {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for {
			select {
			case ln, ok := <-lines:
				if !ok {
					t.Fatalf("SSE stream closed before %q", substr)
				}
				if strings.Contains(ln, substr) {
					return ln
				}
			case <-deadline:
				t.Fatalf("no SSE line containing %q within 5s", substr)
			}
		}
	}

	waitFor("event: snapshot")

	rec := live.NewRun()
	rec.Begin(testHeader("bench", "cell-a"))
	rec.Sample(Sample{T: 100, Nodes: []NodeSample{{Node: "host0", CPU: 0.5}}})
	rec.Finish(testReport("cell-a"))

	if ln := waitFor(`"type":"begin"`); !strings.Contains(ln, "cell-a") {
		t.Fatalf("begin message lacks run name: %q", ln)
	}
	if ln := waitFor(`"type":"sample"`); !strings.Contains(ln, "host0") {
		t.Fatalf("sample message lacks node: %q", ln)
	}
	waitFor(`"type":"finish"`)
}

// TestLiveBoundedHistory: the live view trims to its caps instead of growing
// without bound during long sweeps.
func TestLiveBoundedHistory(t *testing.T) {
	live := NewLive()
	rec := live.NewRun()
	rec.Begin(testHeader("bench", "cell"))
	for i := 0; i < liveMaxSamples+50; i++ {
		rec.Sample(Sample{T: int64(i)})
	}
	for i := 0; i < liveMaxEvents+20; i++ {
		rec.Event(Event{T: int64(i), Kind: "decision"})
	}
	live.mu.Lock()
	run := live.runs[0]
	ns, ne := len(run.Samples), len(run.Events)
	lastT := run.Samples[ns-1].T
	live.mu.Unlock()
	if ns != liveMaxSamples || ne != liveMaxEvents {
		t.Fatalf("history = %d samples, %d events; want caps %d, %d",
			ns, ne, liveMaxSamples, liveMaxEvents)
	}
	if lastT != int64(liveMaxSamples+49) {
		t.Fatalf("trim dropped the newest sample: last T = %d", lastT)
	}
}
