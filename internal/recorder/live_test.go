package recorder

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lmas/internal/telemetry"
)

// TestLiveHTTPSmoke drives the monitoring server the way a browser does:
// fetch the dashboard, open the SSE stream, and check that a run recorded
// while the stream is open is delivered — a snapshot event first, then at
// least one streamed sample.
func TestLiveHTTPSmoke(t *testing.T) {
	live := NewLive()
	srv := httptest.NewServer(live.Handler())
	defer srv.Close()

	// Dashboard page renders.
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	pageBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	page := string(pageBytes)
	if resp.StatusCode != 200 || !strings.Contains(page, "lmas monitor") {
		t.Fatalf("dashboard: status %d, page %q...", resp.StatusCode, page[:min(len(page), 80)])
	}

	// State snapshot endpoint answers JSON.
	resp, err = http.Get(srv.URL + "/api/state")
	if err != nil {
		t.Fatal(err)
	}
	stateBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(stateBytes), `"runs"`) {
		t.Fatalf("/api/state = %q", stateBytes)
	}

	// Open the SSE stream, then record a run while it is connected.
	req, _ := http.NewRequest("GET", srv.URL+"/events", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	waitFor := func(substr string) string {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for {
			select {
			case ln, ok := <-lines:
				if !ok {
					t.Fatalf("SSE stream closed before %q", substr)
				}
				if strings.Contains(ln, substr) {
					return ln
				}
			case <-deadline:
				t.Fatalf("no SSE line containing %q within 5s", substr)
			}
		}
	}

	waitFor("event: snapshot")

	rec := live.NewRun()
	rec.Begin(testHeader("bench", "cell-a"))
	rec.Sample(Sample{T: 100,
		Nodes:     []NodeSample{{Node: "host0", CPU: 0.5}},
		Latencies: []LatencySnapshot{{Name: "openloop.job.latency", Count: 12, P50Ns: 3e6, P99Ns: 9e6}},
	})
	rep := testReport("cell-a")
	rep.Counters = append(rep.Counters,
		telemetry.CounterReport{Name: "sim.scheduler.wheel_hits", Value: 41},
		telemetry.CounterReport{Name: "sim.scheduler.heap_spills", Value: 3},
		telemetry.CounterReport{Name: "sim.scheduler.proc_reuses", Value: 17})
	rec.Finish(rep)

	if ln := waitFor(`"type":"begin"`); !strings.Contains(ln, "cell-a") {
		t.Fatalf("begin message lacks run name: %q", ln)
	}
	// The latency strip rides the sample payload...
	sampleLn := waitFor(`"type":"sample"`)
	for _, want := range []string{"host0", `"latencies"`, "openloop.job.latency"} {
		if !strings.Contains(sampleLn, want) {
			t.Fatalf("sample message lacks %s: %q", want, sampleLn)
		}
	}
	// ...and the scheduler counters ride the finish payload.
	ln := waitFor(`"type":"finish"`)
	for _, want := range []string{`"sched"`, `"wheel_hits":41`, `"heap_spills":3`, `"proc_reuses":17`} {
		if !strings.Contains(ln, want) {
			t.Fatalf("finish message lacks %s: %q", want, ln)
		}
	}

	// The dashboard page itself knows how to render both.
	for _, want := range []string{"latencyStrip", "run.sched"} {
		if !strings.Contains(page, want) {
			t.Fatalf("dashboard page lacks %s", want)
		}
	}
}

// TestLiveBoundedHistory: the live view trims to its caps instead of growing
// without bound during long sweeps.
func TestLiveBoundedHistory(t *testing.T) {
	live := NewLive()
	rec := live.NewRun()
	rec.Begin(testHeader("bench", "cell"))
	for i := 0; i < liveMaxSamples+50; i++ {
		rec.Sample(Sample{T: int64(i)})
	}
	for i := 0; i < liveMaxEvents+20; i++ {
		rec.Event(Event{T: int64(i), Kind: "decision"})
	}
	live.mu.Lock()
	run := live.runs[0]
	ns, ne := len(run.Samples), len(run.Events)
	lastT := run.Samples[ns-1].T
	live.mu.Unlock()
	if ns != liveMaxSamples || ne != liveMaxEvents {
		t.Fatalf("history = %d samples, %d events; want caps %d, %d",
			ns, ne, liveMaxSamples, liveMaxEvents)
	}
	if lastT != int64(liveMaxSamples+49) {
		t.Fatalf("trim dropped the newest sample: last T = %d", lastT)
	}
}
