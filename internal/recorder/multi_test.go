package recorder

import (
	"fmt"
	"strings"
	"testing"

	"lmas/internal/telemetry"
)

// seqSink/seqRec log every recorder call into one shared ordered log as
// "<sink>:<call>", so tests can pin both the fan-out order across sinks and
// the interleaving of record kinds within one run.
type seqSink struct {
	name string
	log  *[]string
}

func (s *seqSink) NewRun() Recorder {
	*s.log = append(*s.log, s.name+":new")
	return &seqRec{sink: s}
}

type seqRec struct{ sink *seqSink }

func (r *seqRec) note(call string) {
	*r.sink.log = append(*r.sink.log, r.sink.name+":"+call)
}

func (r *seqRec) Begin(h *Header) {
	// Backends fill volatile header fields in place; emulate the store so
	// the test can check later sinks see earlier sinks' assignments.
	if h.RunID == "" {
		h.RunID = "assigned-by-" + r.sink.name
	}
	r.note("begin(" + h.RunID + ")")
}
func (r *seqRec) Sample(s Sample) { r.note(fmt.Sprintf("sample(t=%d)", s.T)) }
func (r *seqRec) Event(e Event)   { r.note(fmt.Sprintf("event(%s)", e.Kind)) }
func (r *seqRec) Span(sp Span)    { r.note(fmt.Sprintf("span(%s)", sp.Ph)) }
func (r *seqRec) Finish(rep *telemetry.RunReport) {
	r.note(fmt.Sprintf("finish(nil=%v)", rep == nil))
}

// TestMultiFanOutOrdering pins the Multi contract: every call fans out to
// each underlying recorder in sink order, records of different kinds stay in
// call order, and the header mutated by the first sink is the header later
// sinks receive.
func TestMultiFanOutOrdering(t *testing.T) {
	cases := []struct {
		name  string
		drive func(rec Recorder)
		want  []string
	}{
		{
			name: "begin_propagates_assigned_id",
			drive: func(rec Recorder) {
				rec.Begin(&Header{Experiment: "e"})
			},
			want: []string{
				"a:new", "b:new", "c:new",
				"a:begin(assigned-by-a)", "b:begin(assigned-by-a)", "c:begin(assigned-by-a)",
			},
		},
		{
			name: "kinds_interleave_in_call_order",
			drive: func(rec Recorder) {
				rec.Begin(&Header{RunID: "r1"})
				rec.Sample(Sample{T: 100})
				rec.Span(Span{T: 110, Ph: "B"})
				rec.Event(Event{T: 120, Kind: "decision"})
				rec.Span(Span{T: 130, Ph: "E"})
				rec.Sample(Sample{T: 200})
				rec.Finish(testReport("cell"))
			},
			want: []string{
				"a:new", "b:new", "c:new",
				"a:begin(r1)", "b:begin(r1)", "c:begin(r1)",
				"a:sample(t=100)", "b:sample(t=100)", "c:sample(t=100)",
				"a:span(B)", "b:span(B)", "c:span(B)",
				"a:event(decision)", "b:event(decision)", "c:event(decision)",
				"a:span(E)", "b:span(E)", "c:span(E)",
				"a:sample(t=200)", "b:sample(t=200)", "c:sample(t=200)",
				"a:finish(nil=false)", "b:finish(nil=false)", "c:finish(nil=false)",
			},
		},
		{
			name: "failed_run_finishes_nil_everywhere",
			drive: func(rec Recorder) {
				rec.Begin(&Header{RunID: "r2"})
				rec.Finish(nil)
			},
			want: []string{
				"a:new", "b:new", "c:new",
				"a:begin(r2)", "b:begin(r2)", "c:begin(r2)",
				"a:finish(nil=true)", "b:finish(nil=true)", "c:finish(nil=true)",
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var log []string
			m := Multi{
				&seqSink{name: "a", log: &log},
				&seqSink{name: "b", log: &log},
				&seqSink{name: "c", log: &log},
			}
			c.drive(m.NewRun())
			if got, want := strings.Join(log, "\n"), strings.Join(c.want, "\n"); got != want {
				t.Errorf("fan-out log:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestMultiStoreAndLive wires a real store and a real live backend under one
// Multi and checks the division of labor on the span path: the store keeps
// spans, the live view drops them, and both see the same run ID.
func TestMultiStoreAndLive(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	live := NewLive()
	rec := Multi{st, live}.NewRun()
	h := testHeader("exp", "cell")
	rec.Begin(h)
	rec.Span(Span{T: 10, Ph: "X", DurNs: 5, Group: "g", Track: "t", TID: 1, Name: "op"})
	rec.Finish(testReport("cell"))
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}

	runs, err := st.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || len(runs[0].Spans()) != 1 {
		t.Fatalf("store: %d runs, spans %v", len(runs), runs)
	}
	live.mu.Lock()
	defer live.mu.Unlock()
	if len(live.runs) != 1 || live.runs[0].Header.RunID != h.RunID {
		t.Fatalf("live run mismatch: %+v vs header %+v", live.runs, h)
	}
}
