// Package recorder is the run-record layer of the emulator: a small
// recorder interface (Begin/Sample/Event/Finish) that observability
// backends implement, with two stdlib-only implementations — an append-only
// JSONL store under a runs/ directory (store.go) and a live monitoring HTTP
// server with an SSE dashboard (live.go).
//
// A recorder is a pure observer, wired through the cluster behind a
// nil-by-default hook exactly like sim.Profiler and the telemetry registry:
// it receives a header when a run begins, periodic virtual-time samples
// (per-node utilization, queue depth/high-water), streamed events (load
// manager decisions, trace summaries), and the finished RunReport. It never
// blocks a proc, charges virtual time, or touches the event queue, so a run
// recorded and a run unrecorded produce byte-identical reports — the
// neutrality property pinned by the tests.
package recorder

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"os/exec"
	"strings"
	"sync"

	"lmas/internal/telemetry"
)

// StoreSchema identifies the run-store segment format: line one of every
// segment is a Header bearing this schema, followed by one Record per line.
const StoreSchema = "lmas/runstore/v1"

// Header identifies a run: which experiment it belongs to, the cell name,
// a content hash of its configuration, and the code revision. The run ID
// and wall-clock start time live here and only here — every record after
// the header is a pure function of the simulation, which is what makes two
// recordings of the same run byte-identical below line one.
type Header struct {
	Schema     string                  `json:"schema"`
	RunID      string                  `json:"run_id"`
	Experiment string                  `json:"experiment"`
	Name       string                  `json:"name"`
	ConfigHash string                  `json:"config_hash"`
	GitRev     string                  `json:"git_rev"`
	StartedAt  string                  `json:"started_at"` // RFC3339 wall clock
	Seed       int64                   `json:"seed"`
	Config     telemetry.ClusterConfig `json:"config"`
	Workload   map[string]any          `json:"workload,omitempty"`
}

// NodeSample is one node's slice of a periodic sample: cumulative completed
// busy time plus per-resource utilization over the last interval (0..1,
// derived from completed holds, so a hold still in progress shows up when
// it ends).
type NodeSample struct {
	Node    string  `json:"node"`
	CPUBusy float64 `json:"cpu_busy_sec"`
	CPU     float64 `json:"cpu"`
	Disk    float64 `json:"disk,omitempty"`
	NIC     float64 `json:"nic,omitempty"`
}

// QueueSample is one queue's instantaneous depth and high-water mark.
type QueueSample struct {
	Queue string `json:"queue"`
	Depth int    `json:"depth"`
	High  int    `json:"high_water"`
}

// LatencySnapshot is one latency histogram's running summary at sample time,
// the data behind the live dashboard's p50/p99 strip.
type LatencySnapshot struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	P50Ns int64  `json:"p50_ns"`
	P99Ns int64  `json:"p99_ns"`
}

// Sample is one periodic virtual-time observation of the whole cluster.
// Nodes follow cluster order (hosts first), queues registration order, and
// latencies telemetry registration order, so samples are deterministic.
type Sample struct {
	T         int64             `json:"t_ns"`
	Nodes     []NodeSample      `json:"nodes,omitempty"`
	Queues    []QueueSample     `json:"queues,omitempty"`
	Latencies []LatencySnapshot `json:"latencies,omitempty"`
}

// Event is one streamed run event: a load-manager decision, a phase marker,
// or a trace-span summary. Fields carries numeric attachments; it marshals
// with sorted keys (encoding/json), so events are byte-stable.
type Event struct {
	T      int64              `json:"t_ns"`
	Kind   string             `json:"kind"`
	Source string             `json:"source,omitempty"`
	Action string             `json:"action,omitempty"`
	Detail string             `json:"detail,omitempty"`
	Fields map[string]float64 `json:"fields,omitempty"`
}

// SpanArg is one ordered key/value annotation on a stored span, mirroring
// trace.Arg without importing it (this package must stay importable from the
// trace-consuming layers without a cycle).
type SpanArg struct {
	Key string `json:"k"`
	Val any    `json:"v"`
}

// Span is one trace event streamed into the record: a complete span, a
// begin/end edge, an instant, or a counter sample, in the Chrome trace-event
// phase vocabulary. Group/Track are resolved display names; TID is the
// originating sink's track id, unique within one run, which keeps distinct
// same-named tracks (two procs called "merge") on distinct timelines when
// the stored run is re-exported.
type Span struct {
	T     int64     `json:"t_ns"`
	DurNs int64     `json:"dur_ns,omitempty"`
	Ph    string    `json:"ph"`
	Group string    `json:"group"`
	Track string    `json:"track"`
	TID   int32     `json:"tid"`
	Name  string    `json:"name,omitempty"`
	Cat   string    `json:"cat,omitempty"`
	Args  []SpanArg `json:"args,omitempty"`
}

// Finish closes a run record with its full RunReport — counters, gauges,
// histograms, utilization series, decisions, and the critpath verdict all
// ride in the report, so a stored run reconstructs the exact report bytes.
type Finish struct {
	Report *telemetry.RunReport `json:"report"`
}

// Record is one post-header line of a store segment: exactly one of the
// fields is set.
type Record struct {
	Sample *Sample `json:"sample,omitempty"`
	Event  *Event  `json:"event,omitempty"`
	Span   *Span   `json:"span,omitempty"`
	Finish *Finish `json:"finish,omitempty"`
}

// Recorder receives one run's record stream. Implementations must tolerate
// concurrent runs (one Recorder per run, runs possibly on different
// goroutines) but calls on a single Recorder are sequential.
type Recorder interface {
	// Begin opens the run. The header's RunID/StartedAt/GitRev may be
	// empty; backends fill them in place, so under a Multi fan-out later
	// sinks see the IDs earlier sinks assigned.
	Begin(h *Header)
	// Sample records one periodic observation.
	Sample(s Sample)
	// Event records one streamed event.
	Event(e Event)
	// Span records one streamed trace event. Backends that do not keep
	// traces (the live dashboard) may drop spans.
	Span(sp Span)
	// Finish closes the run with its completed report (nil if the run
	// failed before reporting).
	Finish(rep *telemetry.RunReport)
}

// Sink creates per-run recorders. A sweep calls NewRun once per cell, from
// the worker goroutine running that cell, so NewRun must be safe for
// concurrent use.
type Sink interface {
	NewRun() Recorder
}

// Multi fans a run's records out to several sinks (e.g. a store and a live
// dashboard at once).
type Multi []Sink

// NewRun returns a recorder that forwards every call to one recorder per
// underlying sink.
func (m Multi) NewRun() Recorder {
	recs := make(multiRecorder, len(m))
	for i, s := range m {
		recs[i] = s.NewRun()
	}
	return recs
}

type multiRecorder []Recorder

func (m multiRecorder) Begin(h *Header) {
	for _, r := range m {
		r.Begin(h)
	}
}

func (m multiRecorder) Sample(s Sample) {
	for _, r := range m {
		r.Sample(s)
	}
}

func (m multiRecorder) Event(e Event) {
	for _, r := range m {
		r.Event(e)
	}
}

func (m multiRecorder) Span(sp Span) {
	for _, r := range m {
		r.Span(sp)
	}
}

func (m multiRecorder) Finish(rep *telemetry.RunReport) {
	for _, r := range m {
		r.Finish(rep)
	}
}

// ConfigHash digests a run's cluster configuration, workload, and seed into
// a short stable hex string, the store's "same setup" key: two runs with
// equal hashes are like-for-like comparable.
func ConfigHash(cfg telemetry.ClusterConfig, workload map[string]any, seed int64) string {
	b, err := json.Marshal(struct {
		Config   telemetry.ClusterConfig `json:"config"`
		Workload map[string]any          `json:"workload"`
		Seed     int64                   `json:"seed"`
	}{cfg, workload, seed})
	if err != nil {
		return "unhashable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:12]
}

var (
	gitRevOnce sync.Once
	gitRev     string
)

// GitRev reports the source revision recorded in run headers: the
// LMAS_GIT_REV environment variable when set (CI pins it), otherwise one
// `git rev-parse --short HEAD` per process, and "unknown" when neither is
// available.
func GitRev() string {
	gitRevOnce.Do(func() {
		if v := os.Getenv("LMAS_GIT_REV"); v != "" {
			gitRev = v
			return
		}
		out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
		if err != nil {
			gitRev = "unknown"
			return
		}
		gitRev = strings.TrimSpace(string(out))
		if gitRev == "" {
			gitRev = "unknown"
		}
	})
	return gitRev
}
