package recorder

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"lmas/internal/telemetry"
)

// Store is the append-only run-record store: one JSONL segment per run under
// Dir, named <run-id>.jsonl. Line one is the Header (the only place run IDs
// and wall-clock timestamps appear); every following line is a Record, and a
// finished run's last record embeds the full RunReport. NewRun is safe for
// concurrent use — sweep workers each record their own cell.
type Store struct {
	Dir string

	mu  sync.Mutex
	err error
}

// OpenStore creates (if needed) and opens a run store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{Dir: dir}, nil
}

// Err reports the first write error the store has seen, if any. Recording is
// an observer and must not fail the run it observes, so segment write errors
// are latched here for the harness to check after the run.
func (st *Store) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

func (st *Store) setErr(err error) {
	if err == nil {
		return
	}
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
}

// NewRun opens a recorder for one run; the segment file is created at Begin.
func (st *Store) NewRun() Recorder { return &storeRun{st: st} }

type storeRun struct {
	st   *Store
	f    *os.File
	w    *bufio.Writer
	dead bool
}

// sanitizeID maps an experiment or cell name onto the segment-filename
// alphabet: lowercase letters, digits, and dashes.
func sanitizeID(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	out := strings.Trim(b.String(), "-")
	if out == "" {
		out = "run"
	}
	return out
}

func (r *storeRun) Begin(h *Header) {
	h.Schema = StoreSchema
	if h.Experiment == "" {
		h.Experiment = "adhoc"
	}
	if h.StartedAt == "" {
		h.StartedAt = time.Now().UTC().Format(time.RFC3339)
	}
	if h.GitRev == "" {
		h.GitRev = GitRev()
	}
	base := sanitizeID(h.Experiment) + "-" + sanitizeID(h.Name)
	// Claim a unique segment with O_EXCL so concurrent workers (and
	// concurrent processes) never collide; the suffix doubles as the
	// tiebreaker when runs share a start second.
	r.st.mu.Lock()
	for i := 0; ; i++ {
		id := fmt.Sprintf("%s-%04d", base, i)
		f, err := os.OpenFile(filepath.Join(r.st.Dir, id+".jsonl"),
			os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			h.RunID = id
			r.f = f
			break
		}
		if !os.IsExist(err) {
			r.st.mu.Unlock()
			r.st.setErr(err)
			r.dead = true
			return
		}
	}
	r.st.mu.Unlock()
	r.w = bufio.NewWriter(r.f)
	r.writeLine(h)
}

func (r *storeRun) writeLine(v any) {
	if r.dead {
		return
	}
	b, err := json.Marshal(v)
	if err == nil {
		_, err = r.w.Write(append(b, '\n'))
	}
	if err != nil {
		r.st.setErr(err)
		r.dead = true
	}
}

func (r *storeRun) Sample(s Sample) { r.writeLine(Record{Sample: &s}) }
func (r *storeRun) Event(e Event)   { r.writeLine(Record{Event: &e}) }
func (r *storeRun) Span(sp Span)    { r.writeLine(Record{Span: &sp}) }

func (r *storeRun) Finish(rep *telemetry.RunReport) {
	r.writeLine(Record{Finish: &Finish{Report: rep}})
	if r.f == nil {
		return
	}
	if !r.dead {
		r.st.setErr(r.w.Flush())
	}
	r.st.setErr(r.f.Close())
	r.f, r.w, r.dead = nil, nil, true
}

// RunRecord is one loaded store segment: the identifying header plus every
// record in stream order. Samples/events/finish stay interleaved exactly as
// written so Replay reproduces the original stream.
type RunRecord struct {
	// Path is the segment file the run was loaded from.
	Path    string
	Header  Header
	Records []Record
}

// Report returns the embedded finished RunReport, or nil for a run that
// never finished.
func (r *RunRecord) Report() *telemetry.RunReport {
	for i := len(r.Records) - 1; i >= 0; i-- {
		if f := r.Records[i].Finish; f != nil {
			return f.Report
		}
	}
	return nil
}

// Samples returns the run's periodic samples in stream order.
func (r *RunRecord) Samples() []Sample {
	var out []Sample
	for _, rec := range r.Records {
		if rec.Sample != nil {
			out = append(out, *rec.Sample)
		}
	}
	return out
}

// Events returns the run's streamed events in stream order.
func (r *RunRecord) Events() []Event {
	var out []Event
	for _, rec := range r.Records {
		if rec.Event != nil {
			out = append(out, *rec.Event)
		}
	}
	return out
}

// Spans returns the run's streamed trace events in stream order — which is
// emission order, the order Perfetto export expects.
func (r *RunRecord) Spans() []Span {
	var out []Span
	for _, rec := range r.Records {
		if rec.Span != nil {
			out = append(out, *rec.Span)
		}
	}
	return out
}

// Replay feeds the stored run into rec in original stream order — this is
// how `lmasreport serve` pushes a finished run onto the live dashboard.
func (r *RunRecord) Replay(rec Recorder) {
	h := r.Header
	rec.Begin(&h)
	finished := false
	for _, record := range r.Records {
		switch {
		case record.Sample != nil:
			rec.Sample(*record.Sample)
		case record.Event != nil:
			rec.Event(*record.Event)
		case record.Span != nil:
			rec.Span(*record.Span)
		case record.Finish != nil:
			rec.Finish(record.Finish.Report)
			finished = true
		}
	}
	if !finished {
		rec.Finish(nil)
	}
}

// LoadRun reads one segment file.
func LoadRun(path string) (*RunRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Lines embed whole RunReports, so read unbounded lines rather than
	// relying on a scanner's token cap.
	br := bufio.NewReader(f)
	headerLine, err := br.ReadBytes('\n')
	if err != nil && err != io.EOF {
		return nil, err
	}
	if len(bytes.TrimSpace(headerLine)) == 0 {
		return nil, fmt.Errorf("%s: empty segment", path)
	}
	run := &RunRecord{Path: path}
	if err := json.Unmarshal(headerLine, &run.Header); err != nil {
		return nil, fmt.Errorf("%s: bad header: %w", path, err)
	}
	if run.Header.Schema != StoreSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, run.Header.Schema, StoreSchema)
	}
	for {
		line, err := br.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			var rec Record
			if uerr := json.Unmarshal(line, &rec); uerr != nil {
				return nil, fmt.Errorf("%s: bad record: %w", path, uerr)
			}
			run.Records = append(run.Records, rec)
		}
		if err == io.EOF {
			return run, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// Runs loads every segment in the store, ordered by (start time, run ID).
func (st *Store) Runs() ([]*RunRecord, error) {
	paths, err := filepath.Glob(filepath.Join(st.Dir, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var runs []*RunRecord
	for _, p := range paths {
		run, err := LoadRun(p)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	sort.SliceStable(runs, func(i, j int) bool {
		if runs[i].Header.StartedAt != runs[j].Header.StartedAt {
			return runs[i].Header.StartedAt < runs[j].Header.StartedAt
		}
		return runs[i].Header.RunID < runs[j].Header.RunID
	})
	return runs, nil
}

// Select returns the runs belonging to experiment (all experiments when
// experiment is ""), keeping only the latest run per (experiment, cell name)
// so re-recorded cells supersede older attempts. Order follows each cell's
// first appearance.
func (st *Store) Select(experiment string) ([]*RunRecord, error) {
	runs, err := st.Runs()
	if err != nil {
		return nil, err
	}
	type key struct{ exp, name string }
	latest := make(map[key]*RunRecord)
	var order []key
	for _, run := range runs {
		if experiment != "" && run.Header.Experiment != experiment {
			continue
		}
		k := key{run.Header.Experiment, run.Header.Name}
		if _, ok := latest[k]; !ok {
			order = append(order, k)
		}
		latest[k] = run
	}
	out := make([]*RunRecord, 0, len(order))
	for _, k := range order {
		out = append(out, latest[k])
	}
	return out, nil
}

// Prune deletes the oldest segments beyond the newest keep runs, ordered by
// (header start time, run ID) — the retention policy for long-lived stores,
// whose runs/ directory otherwise grows one segment per run forever. It
// returns the pruned (or, with dryRun, would-be-pruned) runs oldest-first;
// with dryRun no file is touched. keep < 0 is an error; keep == 0 empties
// the store.
func (st *Store) Prune(keep int, dryRun bool) ([]*RunRecord, error) {
	if keep < 0 {
		return nil, fmt.Errorf("prune: keep %d is negative", keep)
	}
	runs, err := st.Runs()
	if err != nil {
		return nil, err
	}
	if len(runs) <= keep {
		return nil, nil
	}
	victims := runs[:len(runs)-keep]
	if dryRun {
		return victims, nil
	}
	for _, run := range victims {
		if err := os.Remove(run.Path); err != nil {
			return nil, err
		}
	}
	return victims, nil
}

// TrajectoryOf rebuilds a bench trajectory from stored runs' embedded
// reports, skipping unfinished runs. The result feeds telemetry.Diff
// directly, which is how `lmasreport query gate` reproduces the bench gate
// verdict from store records alone.
func TrajectoryOf(runs []*RunRecord) *telemetry.Trajectory {
	tr := &telemetry.Trajectory{Schema: telemetry.TrajectorySchema}
	for _, run := range runs {
		if rep := run.Report(); rep != nil {
			tr.Runs = append(tr.Runs, rep)
		}
	}
	return tr
}
