package recorder

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"lmas/internal/telemetry"
)

func testHeader(exp, name string) *Header {
	return &Header{
		Experiment: exp,
		Name:       name,
		ConfigHash: "abc123",
		Seed:       7,
		Config:     telemetry.ClusterConfig{Hosts: 1, ASUs: 2},
		Workload:   map[string]any{"n": 100},
	}
}

func testReport(name string) *telemetry.RunReport {
	rep := telemetry.NewRunReport(name, 7, 0)
	rep.RuntimeSec = 1.5
	return rep
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := st.NewRun()
	h := testHeader("exp1", "cell-a")
	rec.Begin(h)
	if h.RunID == "" || h.StartedAt == "" || h.GitRev == "" {
		t.Fatalf("Begin left header unfilled: %+v", h)
	}
	rec.Sample(Sample{T: 100, Nodes: []NodeSample{{Node: "host0", CPU: 0.5, CPUBusy: 0.05}}})
	rec.Event(Event{T: 150, Kind: "decision", Source: "route.x", Action: "set-policy"})
	rec.Sample(Sample{T: 200, Queues: []QueueSample{{Queue: "q", Depth: 3, High: 5}}})
	rec.Finish(testReport("cell-a"))
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}

	run, err := LoadRun(filepath.Join(dir, h.RunID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if run.Header.Experiment != "exp1" || run.Header.Name != "cell-a" {
		t.Fatalf("header = %+v", run.Header)
	}
	if got := len(run.Samples()); got != 2 {
		t.Fatalf("samples = %d, want 2", got)
	}
	if got := len(run.Events()); got != 1 {
		t.Fatalf("events = %d, want 1", got)
	}
	rep := run.Report()
	if rep == nil || rep.Name != "cell-a" || rep.RuntimeSec != 1.5 {
		t.Fatalf("report = %+v", rep)
	}

	// Replay reproduces the original stream order.
	var kinds []string
	run.Replay(&captureRec{kinds: &kinds})
	want := []string{"begin", "sample", "event", "sample", "finish"}
	if len(kinds) != len(want) {
		t.Fatalf("replay stream %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("replay stream %v, want %v", kinds, want)
		}
	}
}

type captureRec struct{ kinds *[]string }

func (c *captureRec) Begin(*Header)               { *c.kinds = append(*c.kinds, "begin") }
func (c *captureRec) Sample(Sample)               { *c.kinds = append(*c.kinds, "sample") }
func (c *captureRec) Event(Event)                 { *c.kinds = append(*c.kinds, "event") }
func (c *captureRec) Span(Span)                   { *c.kinds = append(*c.kinds, "span") }
func (c *captureRec) Finish(*telemetry.RunReport) { *c.kinds = append(*c.kinds, "finish") }

// TestSelectLatestPerCell: re-recorded cells supersede older segments; other
// experiments stay invisible.
func TestSelectLatestPerCell(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	add := func(exp, name string, runtime float64) {
		rec := st.NewRun()
		h := testHeader(exp, name)
		rec.Begin(h)
		rep := testReport(name)
		rep.RuntimeSec = runtime
		rec.Finish(rep)
	}
	add("bench", "cell-a", 1.0)
	add("bench", "cell-b", 2.0)
	add("bench", "cell-a", 3.0) // supersedes the first cell-a
	add("other", "cell-a", 9.0)
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	runs, err := st.Select("bench")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("selected %d runs, want 2", len(runs))
	}
	tr := TrajectoryOf(runs)
	if len(tr.Runs) != 2 || tr.Runs[0].Name != "cell-a" || tr.Runs[0].RuntimeSec != 3.0 {
		t.Fatalf("trajectory runs: %+v", tr.Runs)
	}
	if tr.Runs[1].Name != "cell-b" {
		t.Fatalf("second run %q, want cell-b", tr.Runs[1].Name)
	}
}

// TestHeaderOnlyVolatileFields pins the determinism contract of the segment
// format: identical record streams produce byte-identical segments below
// line one, because run IDs and wall-clock fields live only in the header.
func TestHeaderOnlyVolatileFields(t *testing.T) {
	segments := make([][]byte, 2)
	for i := range segments {
		dir := t.TempDir()
		st, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		rec := st.NewRun()
		h := testHeader("exp", "cell")
		rec.Begin(h)
		rec.Sample(Sample{T: 100, Nodes: []NodeSample{{Node: "host0", CPU: 0.25}}})
		rec.Event(Event{T: 120, Kind: "decision", Fields: map[string]float64{"b": 2, "a": 1}})
		rec.Finish(testReport("cell"))
		if err := st.Err(); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, h.RunID+".jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		segments[i] = b
	}
	if string(stripHeaderLine(t, segments[0])) != string(stripHeaderLine(t, segments[1])) {
		t.Fatalf("segments differ below the header:\n%s\nvs\n%s", segments[0], segments[1])
	}
}

func stripHeaderLine(t *testing.T, b []byte) []byte {
	t.Helper()
	for i, c := range b {
		if c == '\n' {
			return b[i+1:]
		}
	}
	t.Fatalf("segment has no newline: %q", b)
	return nil
}

// TestStorePrune: the retention policy keeps the newest N segments, dry-run
// touches nothing, and degenerate keeps behave (negative errors, oversized
// keep is a no-op, zero empties the store).
func TestStorePrune(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		rec := st.NewRun()
		h := testHeader("bench", fmt.Sprintf("cell-%d", i))
		rec.Begin(h)
		rec.Finish(testReport(h.Name))
		ids = append(ids, h.RunID)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}

	if _, err := st.Prune(-1, false); err == nil {
		t.Fatal("negative keep did not error")
	}
	if victims, err := st.Prune(10, false); err != nil || victims != nil {
		t.Fatalf("oversized keep: victims %v, err %v", victims, err)
	}

	// Dry run lists the 3 oldest but deletes nothing.
	victims, err := st.Prune(2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 3 {
		t.Fatalf("dry-run victims = %d, want 3", len(victims))
	}
	for i, v := range victims {
		if v.Header.RunID != ids[i] {
			t.Fatalf("victim %d = %s, want oldest-first %s", i, v.Header.RunID, ids[i])
		}
		if _, err := os.Stat(v.Path); err != nil {
			t.Fatalf("dry run removed %s: %v", v.Path, err)
		}
	}

	// Real prune removes those segments; the newest 2 survive.
	victims, err = st.Prune(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 3 {
		t.Fatalf("victims = %d, want 3", len(victims))
	}
	for _, v := range victims {
		if _, err := os.Stat(v.Path); !os.IsNotExist(err) {
			t.Fatalf("victim %s still on disk (err %v)", v.Path, err)
		}
	}
	left, err := st.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 2 || left[0].Header.RunID != ids[3] || left[1].Header.RunID != ids[4] {
		t.Fatalf("survivors: %v, want %v", left, ids[3:])
	}

	// keep == 0 empties the store.
	if victims, err = st.Prune(0, false); err != nil || len(victims) != 2 {
		t.Fatalf("prune to zero: %d victims, err %v", len(victims), err)
	}
	if left, err = st.Runs(); err != nil || len(left) != 0 {
		t.Fatalf("store not empty after prune 0: %v (err %v)", left, err)
	}
}
