package recorder

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ComposeTrace merges the stored trace spans of any set of runs into one
// Chrome trace-event JSON document (loadable in Perfetto or chrome://tracing).
// Each (run, track group) pair becomes a process named "<run-id>/<group>" and
// each stored track a thread within it, so sweep cells and revisions of the
// same cell sit side by side on one timeline — the cross-run view a single
// trace file cannot give. Runs contribute in the order given, spans in stream
// (emission) order; the output is byte-stable for identical inputs.
func ComposeTrace(w io.Writer, runs []*RunRecord) error {
	var sb strings.Builder
	sb.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	sep := func() {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString("\n")
	}
	writeStr := func(v string) {
		b, _ := json.Marshal(v)
		sb.Write(b)
	}
	// Pass 1: name every process and thread before any event references it.
	// pids are assigned by first appearance across the given run order;
	// tids reuse the stored per-run track ids (unique within a run, and
	// every pid belongs to exactly one run).
	type pidKey struct {
		run   int
		group string
	}
	pids := make(map[pidKey]int)
	type tidKey struct {
		run int
		tid int32
	}
	namedTIDs := make(map[tidKey]bool)
	for ri, run := range runs {
		for _, sp := range run.Spans() {
			pk := pidKey{ri, sp.Group}
			pid, ok := pids[pk]
			if !ok {
				pid = len(pids)
				pids[pk] = pid
				sep()
				fmt.Fprintf(&sb, `{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":`, pid)
				writeStr(run.Header.RunID + "/" + sp.Group)
				sb.WriteString(`}}`)
			}
			tk := tidKey{ri, sp.TID}
			if !namedTIDs[tk] {
				namedTIDs[tk] = true
				sep()
				fmt.Fprintf(&sb, `{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":`, pid, sp.TID)
				writeStr(sp.Track)
				sb.WriteString(`}}`)
			}
		}
	}
	// Pass 2: the events themselves.
	for ri, run := range runs {
		for _, sp := range run.Spans() {
			sep()
			sb.WriteString(`{"name":`)
			writeStr(sp.Name)
			if sp.Cat != "" {
				sb.WriteString(`,"cat":`)
				writeStr(sp.Cat)
			}
			fmt.Fprintf(&sb, `,"ph":%s,"ts":%s`, mustJSONString(sp.Ph), composeUsec(sp.T))
			if sp.Ph == "X" {
				fmt.Fprintf(&sb, `,"dur":%s`, composeUsec(sp.DurNs))
			}
			if sp.Ph == "i" {
				sb.WriteString(`,"s":"t"`)
			}
			fmt.Fprintf(&sb, `,"pid":%d,"tid":%d`, pids[pidKey{ri, sp.Group}], sp.TID)
			if len(sp.Args) > 0 {
				sb.WriteString(`,"args":{`)
				for i, a := range sp.Args {
					if i > 0 {
						sb.WriteByte(',')
					}
					writeStr(a.Key)
					sb.WriteByte(':')
					b, err := json.Marshal(a.Val)
					if err != nil {
						return fmt.Errorf("compose trace: run %s arg %q: %w",
							run.Header.RunID, a.Key, err)
					}
					sb.Write(b)
				}
				sb.WriteByte('}')
			}
			sb.WriteString(`}`)
		}
	}
	sb.WriteString("\n]}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// composeUsec renders a nanosecond stamp as the microseconds the trace
// format expects, with fixed precision so output is byte-stable (mirrors
// trace.usec, which this package cannot import).
func composeUsec(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e3, 'f', 3, 64)
}

func mustJSONString(v string) string {
	b, _ := json.Marshal(v)
	return string(b)
}
