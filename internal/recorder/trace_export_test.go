package recorder

import (
	"bytes"
	"encoding/json"
	"testing"
)

// composeFixture stores two runs with spans and returns their records in
// store order.
func composeFixture(t *testing.T) []*RunRecord {
	t.Helper()
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range []string{"cell-a", "cell-b"} {
		rec := st.NewRun()
		h := testHeader("exp", cell)
		rec.Begin(h)
		rec.Span(Span{T: 1000, DurNs: 500, Ph: "X", Group: "host0", Track: "host0.cpu", TID: 1,
			Name: "compute", Cat: "cpu", Args: []SpanArg{{Key: "bytes", Val: 4096}}})
		rec.Span(Span{T: 2000, Ph: "B", Group: "host0", Track: "merge", TID: 2, Name: "merge"})
		rec.Span(Span{T: 2500, Ph: "E", Group: "host0", Track: "merge", TID: 2})
		rec.Span(Span{T: 3000, Ph: "i", Group: "asu0", Track: "jobs", TID: 3, Name: "enqueue"})
		rec.Finish(testReport(cell))
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	runs, err := st.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("fixture runs = %d", len(runs))
	}
	return runs
}

// TestComposeTraceValidChromeJSON asserts the acceptance property directly:
// the composed output parses as Chrome trace-event JSON with the expected
// structure — metadata names every process/thread, data events carry legal
// phases and resolve to named (pid, tid) pairs, and the two runs land in
// distinct processes.
func TestComposeTraceValidChromeJSON(t *testing.T) {
	runs := composeFixture(t)
	var buf bytes.Buffer
	if err := ComposeTrace(&buf, runs); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("composed output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	procs := make(map[int]string)    // pid -> process name
	threads := make(map[[2]int]bool) // (pid, tid) named
	dataEvents := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			name, _ := ev.Args["name"].(string)
			if name == "" {
				t.Fatalf("metadata event without name: %+v", ev)
			}
			switch ev.Name {
			case "process_name":
				procs[ev.PID] = name
			case "thread_name":
				if _, ok := procs[ev.PID]; !ok {
					t.Fatalf("thread_name for unnamed pid %d", ev.PID)
				}
				threads[[2]int{ev.PID, ev.TID}] = true
			default:
				t.Fatalf("unexpected metadata event %q", ev.Name)
			}
		case "X", "B", "E", "i", "C":
			dataEvents++
			if ev.TS == nil {
				t.Fatalf("data event without ts: %+v", ev)
			}
			if ev.Ph == "X" && (ev.Dur == nil || *ev.Dur != 0.5) {
				t.Fatalf("complete span dur = %v, want 0.5us", ev.Dur)
			}
			if ev.Ph == "i" && ev.S != "t" {
				t.Fatalf("instant event scope = %q, want t", ev.S)
			}
			if !threads[[2]int{ev.PID, ev.TID}] {
				t.Fatalf("data event on unnamed (pid,tid)=(%d,%d)", ev.PID, ev.TID)
			}
		default:
			t.Fatalf("illegal phase %q", ev.Ph)
		}
	}
	if dataEvents != 8 {
		t.Fatalf("data events = %d, want 8 (4 per run)", dataEvents)
	}
	// Each run contributes its own processes, named run-id/group.
	wantProcs := make(map[string]bool)
	for _, run := range runs {
		wantProcs[run.Header.RunID+"/host0"] = true
		wantProcs[run.Header.RunID+"/asu0"] = true
	}
	if len(procs) != len(wantProcs) {
		t.Fatalf("processes = %v", procs)
	}
	for _, name := range procs {
		if !wantProcs[name] {
			t.Fatalf("unexpected process %q (all: %v)", name, procs)
		}
	}

	// Byte stability: composing the same records again is identical.
	var buf2 bytes.Buffer
	if err := ComposeTrace(&buf2, runs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("ComposeTrace output is not byte-stable")
	}
}
