package records

import (
	"math/rand"
	"testing"
)

func newBenchRng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func BenchmarkGenerate(b *testing.B) {
	b.SetBytes(int64(DefaultSize))
	for i := 0; i < b.N; i += 4096 {
		Generate(4096, DefaultSize, int64(i), Uniform{})
	}
}

func BenchmarkBufferSort(b *testing.B) {
	src := Generate(4096, DefaultSize, 1, Uniform{})
	b.SetBytes(int64(DefaultSize))
	b.ResetTimer()
	for i := 0; i < b.N; i += 4096 {
		b.StopTimer()
		buf := src.Clone()
		b.StartTimer()
		buf.Sort()
	}
}

func BenchmarkChecksum(b *testing.B) {
	buf := Generate(4096, DefaultSize, 1, Uniform{})
	b.SetBytes(int64(DefaultSize))
	b.ResetTimer()
	for i := 0; i < b.N; i += 4096 {
		var c Checksum
		c.Add(buf)
	}
}

func BenchmarkBucketOf(b *testing.B) {
	sp := Splitters(256)
	keys := Generate(4096, KeyBytes+4, 1, Uniform{})
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += BucketOf(keys.Key(i%4096), sp)
	}
	_ = sink
}

func BenchmarkExponentialDraw(b *testing.B) {
	d := Exponential{Mean: 0.05}
	rng := newBenchRng()
	for i := 0; i < b.N; i++ {
		d.Draw(rng)
	}
}

var keySink Key

func BenchmarkKeyOf(b *testing.B) {
	buf := Generate(4096, DefaultSize, 1, Uniform{})
	b.SetBytes(4) // key bytes extracted per op
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keySink = KeyOf(buf.Record(i & 4095))
	}
}
