package records

import (
	"math"
	"math/rand"
)

// KeyDist generates sort keys for synthetic workloads. Implementations must
// be deterministic functions of the supplied rng.
type KeyDist interface {
	// Name identifies the distribution in experiment output.
	Name() string
	// Draw produces the next key.
	Draw(rng *rand.Rand) Key
}

// Uniform draws keys uniformly from the full key space.
type Uniform struct{}

func (Uniform) Name() string            { return "uniform" }
func (Uniform) Draw(rng *rand.Rand) Key { return Key(rng.Uint32()) }

// Exponential draws keys from an exponential distribution scaled so that
// roughly all mass falls in the low end of the key space — the skewed
// distribution used for the second half of the Figure 10 input. Mean sets
// the distribution mean as a fraction of the key space (e.g. 0.05 puts ~95%
// of keys below 0.15 of the space).
type Exponential struct {
	Mean float64
}

func (Exponential) Name() string { return "exponential" }

func (e Exponential) Draw(rng *rand.Rand) Key {
	mean := e.Mean
	if mean <= 0 {
		mean = 0.05
	}
	v := rng.ExpFloat64() * mean * float64(MaxKey)
	if v >= float64(MaxKey) {
		return MaxKey
	}
	return Key(v)
}

// Zipf draws keys with a Zipfian rank-frequency law mapped over the key
// space, a heavier-tailed skew than Exponential.
type Zipf struct {
	S float64 // exponent > 1; 0 means 1.2
	N int     // distinct values; 0 means 1<<20
}

func (Zipf) Name() string { return "zipf" }

func (z Zipf) Draw(rng *rand.Rand) Key {
	s, n := z.S, z.N
	if s <= 1 {
		s = 1.2
	}
	if n <= 0 {
		n = 1 << 20
	}
	zf := rand.NewZipf(rng, s, 1, uint64(n-1))
	// NewZipf per draw would be wasteful; but Zipf is only used in small
	// ablations. Map rank onto the key space.
	r := zf.Uint64()
	return Key(float64(r) / float64(n) * float64(MaxKey))
}

// Sorted emits keys in increasing order (best case for distribution skew).
type Sorted struct{ next Key }

func (*Sorted) Name() string { return "sorted" }
func (s *Sorted) Draw(rng *rand.Rand) Key {
	k := s.next
	s.next += 1 << 12
	return k
}

// Generate builds a buffer of n records of the given size with keys drawn
// from dist and pseudorandom payloads, all derived deterministically from
// seed.
func Generate(n, size int, seed int64, dist KeyDist) Buffer {
	b := NewBuffer(n, size)
	rng := rand.New(rand.NewSource(seed))
	fill(b, 0, n, rng, dist)
	return b
}

// GenerateHalves builds the Figure 10 workload: the first half of the
// records drawn from first, the second half from second ("The first half of
// the input data is uniformly distributed, while the second half is
// skewed"). The order matters: streamed in sequence, the skew arrives midway
// through the run.
func GenerateHalves(n, size int, seed int64, first, second KeyDist) Buffer {
	b := NewBuffer(n, size)
	rng := rand.New(rand.NewSource(seed))
	fill(b, 0, n/2, rng, first)
	fill(b, n/2, n, rng, second)
	return b
}

func fill(b Buffer, lo, hi int, rng *rand.Rand, dist KeyDist) {
	for i := lo; i < hi; i++ {
		rec := b.Record(i)
		// Pseudorandom payload; cheaper than rng.Read and just as good
		// for checksum purposes.
		x := rng.Uint64()
		for j := KeyBytes; j < len(rec); j++ {
			rec[j] = byte(x >> (uint(j%8) * 8))
			if j%8 == 7 {
				x = x*6364136223846793005 + 1442695040888963407
			}
		}
		b.SetKey(i, dist.Draw(rng))
	}
}

// Splitters returns α-1 key boundaries that partition the key space into α
// equal-width ranges: bucket(k) = number of splitters < ... <= k. With
// uniformly distributed keys the buckets balance; with skewed keys they do
// not — exactly the imbalance that load management addresses in Figure 10.
func Splitters(alpha int) []Key {
	if alpha < 1 {
		panic("records: alpha must be >= 1")
	}
	sp := make([]Key, alpha-1)
	for i := range sp {
		sp[i] = Key(uint64(i+1) * (uint64(MaxKey) + 1) / uint64(alpha))
	}
	return sp
}

// BucketOf reports which of the len(sp)+1 ranges k falls in, by binary
// search over the splitters: the comparison cost is ceil(log2(alpha)), which
// is the "number of compares per key" the paper's work equation counts for
// an alpha-way distribute.
func BucketOf(k Key, sp []Key) int {
	lo, hi := 0, len(sp)
	for lo < hi {
		mid := (lo + hi) / 2
		if k >= sp[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SampleSplitters draws α-1 splitters from the empirical distribution of b
// so buckets balance even for skewed data — the data-dependent alternative
// that static configurations lack.
func SampleSplitters(b Buffer, alpha, sampleSize int, seed int64) []Key {
	if alpha < 2 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	n := b.Len()
	if sampleSize > n {
		sampleSize = n
	}
	keys := make([]Key, sampleSize)
	for i := range keys {
		keys[i] = b.Key(rng.Intn(n))
	}
	sortKeys(keys)
	sp := make([]Key, alpha-1)
	for i := range sp {
		sp[i] = keys[(i+1)*sampleSize/alpha]
	}
	return sp
}

func sortKeys(keys []Key) {
	// Insertion-free path: keys fit in uint32; use sort.Slice.
	sortSlice(keys)
}

func sortSlice(keys []Key) {
	// Small helper kept separate for testability.
	quickSortKeys(keys, 0, len(keys)-1)
}

func quickSortKeys(a []Key, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && a[j] < a[j-1]; j-- {
					a[j], a[j-1] = a[j-1], a[j]
				}
			}
			return
		}
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		p := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSortKeys(a, lo, j)
			lo = i
		} else {
			quickSortKeys(a, i, hi)
			hi = j
		}
	}
}

// ExpectedShare reports the expected fraction of keys falling in bucket i of
// alpha equal-width buckets under dist — used by tests to verify that the
// generators produce the skew the experiments rely on.
func ExpectedShare(dist KeyDist, alpha, i int) float64 {
	switch d := dist.(type) {
	case Uniform:
		return 1.0 / float64(alpha)
	case Exponential:
		mean := d.Mean
		if mean <= 0 {
			mean = 0.05
		}
		lo := float64(i) / float64(alpha) / mean
		hi := float64(i+1) / float64(alpha) / mean
		share := math.Exp(-lo) - math.Exp(-hi)
		if i == alpha-1 {
			share += math.Exp(-hi) // clamped tail mass
		}
		return share
	default:
		return math.NaN()
	}
}
