package records

import "math/rand"

// Executor runs n independent tasks, possibly concurrently, returning only
// when all have finished. Task i must own its data exclusively, and results
// must not depend on execution order — the same purity contract the sim
// engine's offload seam imposes. Serial is the reference implementation every
// executor must be byte-identical to; the harness adapts sim.ExecChunks into
// this type so input generation and output validation run through the same
// offload hook as in-simulation kernels without this package importing sim.
type Executor func(n int, task func(i int))

// Serial runs tasks inline in index order — the reference executor.
func Serial(n int, task func(i int)) {
	for i := 0; i < n; i++ {
		task(i)
	}
}

// chunkRecords is the records-per-task grain for the Exec variants: large
// enough to amortize one offload dispatch per chunk, small enough that even
// quick bench cells (2^14 records) split across several workers.
const chunkRecords = 4096

// chunks decomposes n items into chunkRecords-sized ranges and reports the
// task count; task i covers [bounds(i)). Inputs below two chunks are not
// worth dispatching — callers fall back to the serial path.
func chunks(n int) int { return (n + chunkRecords - 1) / chunkRecords }

func chunkBounds(i, n int) (lo, hi int) {
	lo = i * chunkRecords
	hi = lo + chunkRecords
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Combine folds another checksum into c. The digest is a commutative fold
// over per-record hashes (wrapping sum and xor), so combining per-chunk
// partials in any grouping yields exactly the sequential Add result.
func (c *Checksum) Combine(d Checksum) {
	c.Count += d.Count
	c.Sum += d.Sum
	c.Xor ^= d.Xor
}

// ChecksumExec digests b with fixed-size chunks dispatched through exec,
// returning the same value as a sequential Checksum.Add for every executor.
// A nil exec or a small buffer takes the serial path.
func ChecksumExec(b Buffer, exec Executor) Checksum {
	var sum Checksum
	n := b.Len()
	if exec == nil || n < 2*chunkRecords {
		sum.Add(b)
		return sum
	}
	nc := chunks(n)
	parts := make([]Checksum, nc)
	exec(nc, func(i int) {
		lo, hi := chunkBounds(i, n)
		parts[i].Add(b.Slice(lo, hi))
	})
	for _, p := range parts {
		sum.Combine(p)
	}
	return sum
}

// GenerateExec is Generate with the payload expansion dispatched through
// exec. A sequential pass consumes the rng in exactly Generate's draw order
// (one payload seed, then one key, per record); chunks then expand payload
// bytes and store keys concurrently. Byte-identical to Generate for every
// executor and every chunking.
func GenerateExec(n, size int, seed int64, dist KeyDist, exec Executor) Buffer {
	b := NewBuffer(n, size)
	rng := rand.New(rand.NewSource(seed))
	fillExec(b, 0, n, rng, dist, exec)
	return b
}

// GenerateHalvesExec is GenerateHalves through exec (see GenerateExec).
func GenerateHalvesExec(n, size int, seed int64, first, second KeyDist, exec Executor) Buffer {
	b := NewBuffer(n, size)
	rng := rand.New(rand.NewSource(seed))
	fillExec(b, 0, n/2, rng, first, exec)
	fillExec(b, n/2, n, rng, second, exec)
	return b
}

// fillExec fills records [lo, hi) like fill does, but splits the
// rng-independent payload expansion across exec. The rng draws cannot be
// parallelized (each depends on the previous state), but they are a small
// fraction of generation cost; the per-byte payload expansion — a pure
// function of each record's drawn seed — dominates and chunks cleanly.
func fillExec(b Buffer, lo, hi int, rng *rand.Rand, dist KeyDist, exec Executor) {
	n := hi - lo
	if exec == nil || n < 2*chunkRecords {
		fill(b, lo, hi, rng, dist)
		return
	}
	// Sequential pass: reproduce fill's exact rng call sequence so the
	// stream of draws — and therefore every key and payload — matches the
	// serial generator bit for bit.
	xs := make([]uint64, n)
	keys := make([]Key, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Uint64()
		keys[i] = dist.Draw(rng)
	}
	nc := chunks(n)
	exec(nc, func(ci int) {
		clo, chi := chunkBounds(ci, n)
		for i := clo; i < chi; i++ {
			rec := b.Record(lo + i)
			x := xs[i]
			for j := KeyBytes; j < len(rec); j++ {
				rec[j] = byte(x >> (uint(j%8) * 8))
				if j%8 == 7 {
					x = x*6364136223846793005 + 1442695040888963407
				}
			}
			b.SetKey(lo+i, keys[i])
		}
	})
}
