package records

import (
	"bytes"
	"sync"
	"testing"
)

// reverseExec runs tasks in reverse index order — the adversarial schedule
// for anything that silently depends on chunk execution order.
func reverseExec(n int, task func(i int)) {
	for i := n - 1; i >= 0; i-- {
		task(i)
	}
}

// concurrentExec runs every task on its own goroutine, the shape the sim
// engine's worker pool produces.
func concurrentExec(n int, task func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			task(i)
		}(i)
	}
	wg.Wait()
}

var execs = []struct {
	name string
	exec Executor
}{
	{"nil", nil},
	{"serial", Serial},
	{"reverse", reverseExec},
	{"concurrent", concurrentExec},
}

// sizes cross the chunking threshold from both sides: below it the Exec
// variants take the serial path, above it they must still match bit for bit.
var execSizes = []int{0, 1, chunkRecords - 1, 2 * chunkRecords, 3*chunkRecords + 17}

func TestChecksumExecMatchesAdd(t *testing.T) {
	for _, n := range execSizes {
		b := Generate(n, 64, 42, Uniform{})
		var want Checksum
		want.Add(b)
		for _, e := range execs {
			if got := ChecksumExec(b, e.exec); got != want {
				t.Fatalf("n=%d %s: ChecksumExec = %+v, Add = %+v", n, e.name, got, want)
			}
		}
	}
}

func TestChecksumCombine(t *testing.T) {
	b := Generate(1000, 64, 7, Uniform{})
	var whole Checksum
	whole.Add(b)
	// Any split point must combine to the whole-buffer digest.
	for _, cut := range []int{0, 1, 500, 999, 1000} {
		var lo, hi Checksum
		lo.Add(b.Slice(0, cut))
		hi.Add(b.Slice(cut, 1000))
		lo.Combine(hi)
		if lo != whole {
			t.Fatalf("cut=%d: combined %+v, whole %+v", cut, lo, whole)
		}
	}
}

func TestGenerateExecMatchesGenerate(t *testing.T) {
	dists := []KeyDist{Uniform{}, Exponential{}, Zipf{}, &Sorted{}}
	for _, dist := range dists {
		freshDist := func() KeyDist {
			if _, ok := dist.(*Sorted); ok {
				return &Sorted{} // stateful: each run needs its own
			}
			return dist
		}
		for _, n := range execSizes {
			want := Generate(n, 96, 1234, freshDist())
			for _, e := range execs {
				got := GenerateExec(n, 96, 1234, freshDist(), e.exec)
				if !bytes.Equal(got.Raw(), want.Raw()) {
					t.Fatalf("%s n=%d %s: GenerateExec bytes diverge from Generate",
						dist.Name(), n, e.name)
				}
			}
		}
	}
}

func TestGenerateHalvesExecMatchesGenerateHalves(t *testing.T) {
	for _, n := range execSizes {
		want := GenerateHalves(n, 96, 99, Uniform{}, Exponential{})
		for _, e := range execs {
			got := GenerateHalvesExec(n, 96, 99, Uniform{}, Exponential{}, e.exec)
			if !bytes.Equal(got.Raw(), want.Raw()) {
				t.Fatalf("n=%d %s: GenerateHalvesExec bytes diverge", n, e.name)
			}
		}
	}
}
