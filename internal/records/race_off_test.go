//go:build !race

package records

// raceEnabled reports whether the race detector is compiled in; allocation
// regression tests skip under -race because instrumentation inflates counts.
const raceEnabled = false
