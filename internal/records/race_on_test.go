//go:build race

package records

const raceEnabled = true
