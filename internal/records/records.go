// Package records implements the fixed-size record layer that all streaming
// computation in this library operates on.
//
// The paper's experiments "sort 128-byte records with 4-byte keys"
// (Section 6); this package provides that record format, deterministic
// workload generators (including the half-uniform / half-exponential input
// used in Figure 10), and validation helpers (sortedness checks and an
// order-independent permutation checksum) used by tests and experiment
// harnesses to prove that emulated computations really compute.
package records

import (
	"encoding/binary"
	"fmt"
	"math"

	"lmas/internal/bufpool"
)

// DefaultSize is the record size used throughout the paper's evaluation.
const DefaultSize = 128

// KeyBytes is the number of leading record bytes holding the sort key.
const KeyBytes = 4

// Key is a record's 4-byte sort key.
type Key uint32

// MaxKey is the largest representable key.
const MaxKey Key = math.MaxUint32

// KeyOf extracts a record's sort key from its leading bytes. This is the
// single little-endian key load every kernel shares; encoding/binary
// compiles it to one 4-byte load.
func KeyOf(rec []byte) Key { return Key(binary.LittleEndian.Uint32(rec)) }

// Buffer is a dense array of n fixed-size records backed by a single byte
// slice, the in-memory representation of a block of records. Buffers are
// cheap to sub-slice; sub-buffers alias the parent's storage.
type Buffer struct {
	data []byte
	size int // bytes per record
}

// NewBuffer allocates a zeroed buffer of n records of the given size.
func NewBuffer(n, size int) Buffer {
	if size < KeyBytes {
		panic(fmt.Sprintf("records: size %d < KeyBytes", size))
	}
	return Buffer{data: make([]byte, n*size), size: size}
}

// NewPooled draws a buffer of n records from the process-wide buffer pool.
// Unlike NewBuffer, the contents are UNSPECIFIED: callers must write every
// record they later read. The caller owns the buffer exclusively and is
// responsible for returning it — directly with Release, or by transferring
// ownership into a container packet or block engine that releases it later.
func NewPooled(n, size int) Buffer {
	if size < KeyBytes {
		panic(fmt.Sprintf("records: size %d < KeyBytes", size))
	}
	return Buffer{data: bufpool.Get(n * size), size: size}
}

// Release returns the buffer's storage to the pool. The caller must own the
// storage exclusively and must not use b (or any alias) afterwards. Safe on
// buffers that did not come from the pool: their storage is left to the GC.
func (b Buffer) Release() {
	if len(b.data) > 0 {
		bufpool.Put(b.data)
	}
}

// FromBytes wraps data (whose length must be a multiple of size) as a Buffer.
func FromBytes(data []byte, size int) Buffer {
	if size < KeyBytes || len(data)%size != 0 {
		panic("records: bad FromBytes arguments")
	}
	return Buffer{data: data, size: size}
}

// Len reports the number of records.
func (b Buffer) Len() int {
	if b.size == 0 {
		return 0
	}
	return len(b.data) / b.size
}

// Size reports the bytes per record.
func (b Buffer) Size() int { return b.size }

// Bytes reports the total payload size in bytes.
func (b Buffer) Bytes() int { return len(b.data) }

// Raw returns the buffer's entire backing byte slice.
func (b Buffer) Raw() []byte { return b.data }

// Record returns the i'th record as a mutable byte slice aliasing the buffer.
func (b Buffer) Record(i int) []byte { return b.data[i*b.size : (i+1)*b.size : (i+1)*b.size] }

// Key reports the sort key of record i.
func (b Buffer) Key(i int) Key {
	return Key(binary.LittleEndian.Uint32(b.data[i*b.size:]))
}

// SetKey sets the sort key of record i.
func (b Buffer) SetKey(i int, k Key) {
	binary.LittleEndian.PutUint32(b.data[i*b.size:], uint32(k))
}

// Swap exchanges records i and j in place. The sort kernel does not use
// it (it permutes whole records once, see sortkern.go); it remains for
// callers that shuffle records directly.
func (b Buffer) Swap(i, j int) {
	ri, rj := b.Record(i), b.Record(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Less reports whether record i's key is smaller than record j's.
func (b Buffer) Less(i, j int) bool { return b.Key(i) < b.Key(j) }

// Slice returns the sub-buffer of records [lo, hi); it aliases b.
func (b Buffer) Slice(lo, hi int) Buffer {
	return Buffer{data: b.data[lo*b.size : hi*b.size], size: b.size}
}

// Clone returns a deep copy of b.
func (b Buffer) Clone() Buffer {
	d := make([]byte, len(b.data))
	copy(d, b.data)
	return Buffer{data: d, size: b.size}
}

// ClonePooled returns a deep copy of b backed by pool storage. Use it where
// a packet needs its own copy of a slice of a larger buffer (loading input
// sets, staging flushes): the copy's ownership transfers into whatever
// structure the packet lands in, and comes back to the pool when that
// structure frees it.
func (b Buffer) ClonePooled() Buffer {
	d := bufpool.Get(len(b.data))
	copy(d, b.data)
	return Buffer{data: d, size: b.size}
}

// CopyFrom copies src's records into b starting at record offset dst.
// The record sizes must match.
func (b Buffer) CopyFrom(dst int, src Buffer) {
	if src.size != b.size {
		panic("records: CopyFrom size mismatch")
	}
	copy(b.data[dst*b.size:], src.data)
}

// IsSorted reports whether the buffer is nondecreasing by key.
func (b Buffer) IsSorted() bool {
	for i := 1; i < b.Len(); i++ {
		if b.Key(i) < b.Key(i-1) {
			return false
		}
	}
	return true
}

// MinKey reports the smallest key in b; ok is false for an empty buffer.
func (b Buffer) MinKey() (k Key, ok bool) {
	n := b.Len()
	if n == 0 {
		return 0, false
	}
	k = b.Key(0)
	for i := 1; i < n; i++ {
		if ki := b.Key(i); ki < k {
			k = ki
		}
	}
	return k, true
}

// MaxKeyIn reports the largest key in b; ok is false for an empty buffer.
func (b Buffer) MaxKeyIn() (k Key, ok bool) {
	n := b.Len()
	if n == 0 {
		return 0, false
	}
	k = b.Key(0)
	for i := 1; i < n; i++ {
		if ki := b.Key(i); ki > k {
			k = ki
		}
	}
	return k, true
}

// Checksum is an order-independent digest of a multiset of records: equal
// multisets have equal checksums regardless of record order, so comparing
// input and output checksums verifies that a sort or shuffle moved every
// record exactly once and corrupted none.
type Checksum struct {
	Count int
	Sum   uint64 // sum of per-record FNV-1a hashes, wrapping
	Xor   uint64 // xor of per-record hashes
}

// Add folds all records of b into c.
func (c *Checksum) Add(b Buffer) {
	n := b.Len()
	for i := 0; i < n; i++ {
		h := fnv1a(b.Record(i))
		c.Count++
		c.Sum += h
		c.Xor ^= h
	}
}

// Equal reports whether c and d digest the same multiset (with overwhelming
// probability).
func (c Checksum) Equal(d Checksum) bool {
	return c.Count == d.Count && c.Sum == d.Sum && c.Xor == d.Xor
}

func (c Checksum) String() string {
	return fmt.Sprintf("{n=%d sum=%016x xor=%016x}", c.Count, c.Sum, c.Xor)
}

func fnv1a(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, x := range b {
		h ^= uint64(x)
		h *= prime
	}
	return h
}
