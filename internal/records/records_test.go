package records

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBufferBasics(t *testing.T) {
	b := NewBuffer(10, DefaultSize)
	if b.Len() != 10 || b.Size() != DefaultSize || b.Bytes() != 1280 {
		t.Fatalf("Len/Size/Bytes = %d/%d/%d", b.Len(), b.Size(), b.Bytes())
	}
	b.SetKey(3, 0xdeadbeef)
	if b.Key(3) != 0xdeadbeef {
		t.Fatalf("Key(3) = %x", b.Key(3))
	}
	if got := len(b.Record(3)); got != DefaultSize {
		t.Fatalf("Record len = %d", got)
	}
}

func TestBufferTooSmallSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBuffer(1, 2) did not panic")
		}
	}()
	NewBuffer(1, 2)
}

func TestSwapPreservesPayload(t *testing.T) {
	b := Generate(4, 32, 1, Uniform{})
	r0 := append([]byte(nil), b.Record(0)...)
	r3 := append([]byte(nil), b.Record(3)...)
	b.Swap(0, 3)
	for i, x := range r0 {
		if b.Record(3)[i] != x {
			t.Fatal("swap lost record 0 bytes")
		}
	}
	for i, x := range r3 {
		if b.Record(0)[i] != x {
			t.Fatal("swap lost record 3 bytes")
		}
	}
}

func TestSortSortsAndPreservesMultiset(t *testing.T) {
	for _, dist := range []KeyDist{Uniform{}, Exponential{}, &Sorted{}} {
		b := Generate(1000, DefaultSize, 7, dist)
		var before Checksum
		before.Add(b)
		b.Sort()
		if !b.IsSorted() {
			t.Fatalf("%s: not sorted", dist.Name())
		}
		var after Checksum
		after.Add(b)
		if !before.Equal(after) {
			t.Fatalf("%s: sort corrupted records: %v vs %v", dist.Name(), before, after)
		}
	}
}

func TestSortProperty(t *testing.T) {
	f := func(keys []uint32) bool {
		b := NewBuffer(len(keys), KeyBytes+4)
		for i, k := range keys {
			b.SetKey(i, Key(k))
		}
		b.Sort()
		got := make([]uint32, len(keys))
		for i := range got {
			got[i] = uint32(b.Key(i))
		}
		want := append([]uint32(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSliceAliases(t *testing.T) {
	b := NewBuffer(10, 16)
	s := b.Slice(2, 5)
	if s.Len() != 3 {
		t.Fatalf("slice len = %d", s.Len())
	}
	s.SetKey(0, 42)
	if b.Key(2) != 42 {
		t.Fatal("Slice does not alias parent")
	}
}

func TestCloneDoesNotAlias(t *testing.T) {
	b := NewBuffer(4, 16)
	c := b.Clone()
	c.SetKey(0, 99)
	if b.Key(0) == 99 {
		t.Fatal("Clone aliases parent")
	}
}

func TestCopyFrom(t *testing.T) {
	src := Generate(5, 16, 3, Uniform{})
	dst := NewBuffer(10, 16)
	dst.CopyFrom(5, src)
	for i := 0; i < 5; i++ {
		if dst.Key(5+i) != src.Key(i) {
			t.Fatal("CopyFrom mismatch")
		}
	}
}

func TestChecksumOrderIndependent(t *testing.T) {
	b := Generate(200, DefaultSize, 11, Uniform{})
	var c1 Checksum
	c1.Add(b)
	// Shuffle and re-digest.
	rng := rand.New(rand.NewSource(5))
	for i := b.Len() - 1; i > 0; i-- {
		b.Swap(i, rng.Intn(i+1))
	}
	var c2 Checksum
	c2.Add(b)
	if !c1.Equal(c2) {
		t.Fatal("checksum depends on order")
	}
	// A corrupted payload byte must change the checksum.
	b.Record(17)[20] ^= 1
	var c3 Checksum
	c3.Add(b)
	if c1.Equal(c3) {
		t.Fatal("checksum missed corruption")
	}
}

func TestChecksumDetectsDuplication(t *testing.T) {
	b := Generate(100, 32, 1, Uniform{})
	var c1 Checksum
	c1.Add(b)
	// Replace record 1 with a copy of record 0 (drop+duplicate).
	copy(b.Record(1), b.Record(0))
	var c2 Checksum
	c2.Add(b)
	if c1.Equal(c2) {
		t.Fatal("checksum missed drop+duplicate")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(100, DefaultSize, 42, Uniform{})
	b := Generate(100, DefaultSize, 42, Uniform{})
	var ca, cb Checksum
	ca.Add(a)
	cb.Add(b)
	if !ca.Equal(cb) {
		t.Fatal("same seed, different data")
	}
	c := Generate(100, DefaultSize, 43, Uniform{})
	var cc Checksum
	cc.Add(c)
	if ca.Equal(cc) {
		t.Fatal("different seed, same data")
	}
}

func TestUniformBucketsBalance(t *testing.T) {
	const n, alpha = 100000, 16
	b := Generate(n, KeyBytes+4, 9, Uniform{})
	sp := Splitters(alpha)
	counts := make([]int, alpha)
	for i := 0; i < n; i++ {
		counts[BucketOf(b.Key(i), sp)]++
	}
	want := float64(n) / alpha
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.15*want {
			t.Fatalf("uniform bucket %d has %d records, want ~%.0f", i, c, want)
		}
	}
}

func TestExponentialSkewsLow(t *testing.T) {
	const n, alpha = 100000, 16
	b := Generate(n, KeyBytes+4, 9, Exponential{Mean: 0.05})
	sp := Splitters(alpha)
	counts := make([]int, alpha)
	for i := 0; i < n; i++ {
		counts[BucketOf(b.Key(i), sp)]++
	}
	if counts[0] < n/2 {
		t.Fatalf("exponential bucket 0 has %d of %d records; expected strong skew", counts[0], n)
	}
	// And the observed share should match the analytic expectation.
	want := ExpectedShare(Exponential{Mean: 0.05}, alpha, 0)
	got := float64(counts[0]) / n
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("bucket 0 share = %.3f, want %.3f", got, want)
	}
}

func TestGenerateHalves(t *testing.T) {
	const n = 20000
	b := GenerateHalves(n, KeyBytes+4, 5, Uniform{}, Exponential{Mean: 0.05})
	// First half should straddle the key space; second half should be low.
	var hiFirst, hiSecond int
	mid := Key(MaxKey / 2)
	for i := 0; i < n/2; i++ {
		if b.Key(i) > mid {
			hiFirst++
		}
	}
	for i := n / 2; i < n; i++ {
		if b.Key(i) > mid {
			hiSecond++
		}
	}
	if hiFirst < n/5 {
		t.Fatalf("first (uniform) half has only %d/%d high keys", hiFirst, n/2)
	}
	if hiSecond > n/100 {
		t.Fatalf("second (skewed) half has %d/%d high keys; expected almost none", hiSecond, n/2)
	}
}

func TestSplittersPartitionKeySpace(t *testing.T) {
	for _, alpha := range []int{1, 2, 3, 7, 16, 256} {
		sp := Splitters(alpha)
		if len(sp) != alpha-1 {
			t.Fatalf("alpha=%d: %d splitters", alpha, len(sp))
		}
		if BucketOf(0, sp) != 0 {
			t.Fatalf("alpha=%d: key 0 in bucket %d", alpha, BucketOf(0, sp))
		}
		if BucketOf(MaxKey, sp) != alpha-1 {
			t.Fatalf("alpha=%d: MaxKey in bucket %d", alpha, BucketOf(MaxKey, sp))
		}
		for i := 1; i < len(sp); i++ {
			if sp[i] <= sp[i-1] {
				t.Fatalf("alpha=%d: splitters not increasing", alpha)
			}
		}
	}
}

// TestBucketOfProperty: BucketOf agrees with a linear scan for arbitrary
// keys and splitter counts.
func TestBucketOfProperty(t *testing.T) {
	f := func(kRaw uint32, alphaRaw uint8) bool {
		alpha := int(alphaRaw%64) + 1
		k := Key(kRaw)
		sp := Splitters(alpha)
		want := 0
		for _, s := range sp {
			if k >= s {
				want++
			}
		}
		return BucketOf(k, sp) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketOfMonotone(t *testing.T) {
	sp := Splitters(32)
	prev := 0
	for k := uint64(0); k <= uint64(MaxKey); k += 1 << 24 {
		b := BucketOf(Key(k), sp)
		if b < prev {
			t.Fatalf("bucket decreased at key %d", k)
		}
		prev = b
	}
}

func TestSampleSplittersBalanceSkewedData(t *testing.T) {
	const n, alpha = 50000, 8
	b := Generate(n, KeyBytes+4, 21, Exponential{Mean: 0.05})
	sp := SampleSplitters(b, alpha, 4096, 1)
	counts := make([]int, alpha)
	for i := 0; i < n; i++ {
		counts[BucketOf(b.Key(i), sp)]++
	}
	want := float64(n) / alpha
	for i, c := range counts {
		if float64(c) > 2*want || float64(c) < want/2 {
			t.Fatalf("sampled splitters: bucket %d has %d records, want ~%.0f", i, c, want)
		}
	}
}

func TestSortedDistIncreases(t *testing.T) {
	var s Sorted
	rng := rand.New(rand.NewSource(1))
	prev := s.Draw(rng)
	for i := 0; i < 100; i++ {
		k := s.Draw(rng)
		if k <= prev && k != 0 { // wraps only after 2^32 draws
			t.Fatalf("Sorted keys not increasing: %d then %d", prev, k)
		}
		prev = k
	}
}

func TestZipfDraws(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := Zipf{}
	low := 0
	for i := 0; i < 1000; i++ {
		if z.Draw(rng) < MaxKey/4 {
			low++
		}
	}
	if low < 600 {
		t.Fatalf("zipf: only %d/1000 keys in lowest quarter; expected skew", low)
	}
}

func TestQuickSortKeysProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		keys := make([]Key, len(raw))
		for i, k := range raw {
			keys[i] = Key(k)
		}
		sortKeys(keys)
		for i := 1; i < len(keys); i++ {
			if keys[i] < keys[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedShareUniform(t *testing.T) {
	if got := ExpectedShare(Uniform{}, 8, 3); got != 0.125 {
		t.Fatalf("uniform share = %v", got)
	}
	total := 0.0
	for i := 0; i < 8; i++ {
		total += ExpectedShare(Exponential{Mean: 0.05}, 8, i)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("exponential shares sum to %v", total)
	}
}

// TestKeyOf pins the on-disk key encoding: the first four record bytes,
// little-endian, so KeyOf agrees with Buffer.Key for every record.
func TestKeyOf(t *testing.T) {
	rec := []byte{0xef, 0xbe, 0xad, 0xde, 0x99, 0x99}
	if got := KeyOf(rec); got != 0xdeadbeef {
		t.Fatalf("KeyOf = %#x, want 0xdeadbeef", got)
	}
	b := Generate(64, 16, 3, Uniform{})
	for i := 0; i < b.Len(); i++ {
		rec := b.Record(i)
		manual := Key(rec[0]) | Key(rec[1])<<8 | Key(rec[2])<<16 | Key(rec[3])<<24
		if KeyOf(rec) != manual || KeyOf(rec) != b.Key(i) {
			t.Fatalf("record %d: KeyOf=%#x manual=%#x Key=%#x", i, KeyOf(rec), manual, b.Key(i))
		}
	}
}
