package records

import (
	"sort"

	"lmas/internal/scratch"
)

// The sort kernel below exists for the emulation host's wall clock only.
// Simulated sorting cost is charged analytically (log2(β) compares per
// record, per the paper's work equation), so the algorithm used to produce
// the sorted bytes is free to be as fast as possible: it changes no
// virtual-time outcome, only how long a run takes to execute.
//
// Strategy: sort (key, index) pairs with an LSD radix sort — 8-byte moves
// instead of full-record swaps — then apply the resulting permutation to
// the 128-byte records once, following cycles. A comparison sort on the
// pairs handles tiny buffers where radix passes don't amortize.

// radixMinLen is the buffer length below which pair sorting falls back to
// a comparison sort; radix counting passes don't amortize under ~64 keys.
const radixMinLen = 64

// keyIdx pairs a record's sort key with its original position. Sorting
// pairs and permuting once replaces O(n log n) full-record swaps with
// O(n) record moves.
type keyIdx struct {
	key uint32
	idx uint32
}

// sortScratch is the reusable working memory for one Sort call.
type sortScratch struct {
	pairs []keyIdx
	tmp   []keyIdx
	rec   []byte
}

var sortPool scratch.Pool[sortScratch]

// Sort sorts the buffer in place by key. The sort is not stable; records
// with equal keys may appear in any order, which is harmless because
// validation uses an order-independent checksum within equal-key runs.
// (The implementation happens to order equal keys by original position.)
func (b Buffer) Sort() {
	n := b.Len()
	if n < 2 {
		return
	}
	sc := sortPool.Get()
	sc.pairs = scratch.Grow(sc.pairs, n)
	for i := 0; i < n; i++ {
		sc.pairs[i] = keyIdx{key: uint32(b.Key(i)), idx: uint32(i)}
	}
	if n < radixMinLen {
		insertionSortPairs(sc.pairs)
	} else {
		sc.tmp = scratch.Grow(sc.tmp, n)
		radixSortPairs(sc.pairs, sc.tmp)
	}
	b.permute(sc)
	sortPool.Put(sc)
}

// insertionSortPairs orders pairs by (key, idx); n is tiny here.
func insertionSortPairs(a []keyIdx) {
	for i := 1; i < len(a); i++ {
		p := a[i]
		j := i
		for j > 0 && (a[j-1].key > p.key || (a[j-1].key == p.key && a[j-1].idx > p.idx)) {
			a[j] = a[j-1]
			j--
		}
		a[j] = p
	}
}

// radixSortPairs sorts pairs by key with an LSD radix sort, one 8-bit
// counting pass per key byte, skipping passes where every key shares the
// byte. It is stable, so equal keys stay in index order. On return the
// sorted pairs are in a; tmp is clobbered.
func radixSortPairs(a, tmp []keyIdx) {
	// One histogram sweep for all four byte positions.
	var counts [4][256]int
	for _, p := range a {
		counts[0][p.key&0xff]++
		counts[1][(p.key>>8)&0xff]++
		counts[2][(p.key>>16)&0xff]++
		counts[3][(p.key>>24)&0xff]++
	}
	src, dst := a, tmp
	for pass := 0; pass < 4; pass++ {
		cnt := &counts[pass]
		// Skip a pass when all keys share this byte (common for skewed
		// or low-entropy key ranges): it would be an identity shuffle.
		if cnt[src[0].key>>(uint(pass)*8)&0xff] == len(a) {
			continue
		}
		pos := 0
		var offs [256]int
		for v := 0; v < 256; v++ {
			offs[v] = pos
			pos += cnt[v]
		}
		shift := uint(pass) * 8
		for _, p := range src {
			v := (p.key >> shift) & 0xff
			dst[offs[v]] = p
			offs[v]++
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// permute rearranges the buffer so record i holds what was at
// pairs[i].idx, following permutation cycles with a single temporary
// record: each record is moved exactly once (plus one save/restore per
// cycle) instead of O(log n) times under swap-based sorting. pairs is
// consumed: idx fields are overwritten with a visited marker.
func (b Buffer) permute(sc *sortScratch) {
	const done = ^uint32(0)
	pairs := sc.pairs
	size := b.size
	sc.rec = scratch.Grow(sc.rec, size)
	tmp := sc.rec
	for i := range pairs {
		src := pairs[i].idx
		if src == done || int(src) == i {
			continue
		}
		// Record i starts a cycle: save it, then pull each record from
		// where its content must come from until the cycle closes.
		copy(tmp, b.data[i*size:(i+1)*size])
		dst := i
		for int(src) != i {
			copy(b.data[dst*size:(dst+1)*size], b.data[int(src)*size:(int(src)+1)*size])
			pairs[dst].idx = done
			dst = int(src)
			src = pairs[dst].idx
		}
		copy(b.data[dst*size:(dst+1)*size], tmp)
		pairs[dst].idx = done
	}
}

// sortStdlib is the reference comparison path: sort.Sort over the buffer
// with full-record swaps through a hoisted scratch record. Kept for
// differential tests against the radix kernel.
func (b Buffer) sortStdlib() {
	sc := sortPool.Get()
	sc.rec = scratch.Grow(sc.rec, b.size)
	sort.Sort(&bufferSorter{Buffer: b, tmp: sc.rec})
	sortPool.Put(sc)
}

// bufferSorter adapts Buffer to sort.Interface. The swap scratch lives in
// the sorter, allocated once per sort, not once per Swap call.
type bufferSorter struct {
	Buffer
	tmp []byte
}

func (s *bufferSorter) Len() int { return s.Buffer.Len() }

func (s *bufferSorter) Swap(i, j int) {
	ri, rj := s.Record(i), s.Record(j)
	copy(s.tmp, ri)
	copy(ri, rj)
	copy(rj, s.tmp)
}
