package records

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

// referenceSort returns the expected output of Buffer.Sort: records
// stable-sorted by key via the stdlib, with ties kept in original
// position order — exactly the order the radix kernel's (key, index)
// pairs define. Comparing raw bytes against it checks keys AND payloads.
func referenceSort(b Buffer) Buffer {
	n := b.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return b.Key(idx[i]) < b.Key(idx[j]) })
	out := NewBuffer(n, b.Size())
	for i, src := range idx {
		copy(out.Record(i), b.Record(src))
	}
	return out
}

// sortTestDists covers every generator distribution MakeInputNamed knows.
func sortTestDists() []KeyDist {
	return []KeyDist{Uniform{}, Exponential{Mean: 0.05}, Zipf{}, &Sorted{}}
}

// TestRadixMatchesStdlibSort is the differential property test for the
// radix kernel: for every distribution and a spread of sizes straddling
// the radix threshold, Sort must produce exactly the record sequence the
// comparison path produces — keys AND full payloads. Both paths order
// equal keys by original position, so outputs are byte-comparable.
func TestRadixMatchesStdlibSort(t *testing.T) {
	sizes := []int{0, 1, 2, 3, radixMinLen - 1, radixMinLen, radixMinLen + 1, 257, 1000, 4096}
	for _, dist := range sortTestDists() {
		for _, n := range sizes {
			seed := int64(n + 1)
			radix := Generate(n, DefaultSize, seed, dist)
			ref := referenceSort(radix)

			var before Checksum
			before.Add(radix)

			radix.Sort()

			if !radix.IsSorted() {
				t.Fatalf("%s n=%d: radix output not sorted", dist.Name(), n)
			}
			if !bytes.Equal(radix.Raw(), ref.Raw()) {
				t.Fatalf("%s n=%d: radix and stdlib outputs differ", dist.Name(), n)
			}
			var after Checksum
			after.Add(radix)
			if !before.Equal(after) {
				t.Fatalf("%s n=%d: sort changed the record multiset: %v vs %v",
					dist.Name(), n, before, after)
			}
		}
	}
}

// TestRadixHalvesWorkload covers the Figure 10 half-uniform/half-skewed
// input, whose second half exercises the low-entropy byte-pass skip.
func TestRadixHalvesWorkload(t *testing.T) {
	for _, n := range []int{radixMinLen, 513, 2048} {
		b := GenerateHalves(n, DefaultSize, 99, Uniform{}, Exponential{Mean: 0.05})
		ref := referenceSort(b)
		b.Sort()
		if !bytes.Equal(b.Raw(), ref.Raw()) {
			t.Fatalf("halves n=%d: radix and stdlib outputs differ", n)
		}
	}
}

// TestRadixDuplicateKeys drives the cycle-following permutation through
// heavy key duplication (few distinct keys, long equal runs) and through
// the all-equal degenerate case where every radix pass is skipped.
func TestRadixDuplicateKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, distinct := range []int{1, 2, 3, 16} {
		n := 777
		b := Generate(n, DefaultSize, 11, Uniform{})
		for i := 0; i < n; i++ {
			b.SetKey(i, Key(rng.Intn(distinct))*0x01010101)
		}
		ref := referenceSort(b)
		var before Checksum
		before.Add(b)
		b.Sort()
		if !b.IsSorted() {
			t.Fatalf("distinct=%d: not sorted", distinct)
		}
		if !bytes.Equal(b.Raw(), ref.Raw()) {
			t.Fatalf("distinct=%d: radix and stdlib outputs differ", distinct)
		}
		var after Checksum
		after.Add(b)
		if !before.Equal(after) {
			t.Fatalf("distinct=%d: checksum not preserved", distinct)
		}
	}
}

// TestRadixNonDefaultRecordSizes checks the kernel across record sizes
// from key-only up to larger-than-default, including sizes that are not
// powers of two.
func TestRadixNonDefaultRecordSizes(t *testing.T) {
	for _, size := range []int{KeyBytes, 5, 17, 64, 100, 256, 640} {
		b := Generate(500, size, int64(size), Uniform{})
		ref := referenceSort(b)
		var before Checksum
		before.Add(b)
		b.Sort()
		if !b.IsSorted() {
			t.Fatalf("size=%d: not sorted", size)
		}
		if !bytes.Equal(b.Raw(), ref.Raw()) {
			t.Fatalf("size=%d: radix and stdlib outputs differ", size)
		}
		var after Checksum
		after.Add(b)
		if !before.Equal(after) {
			t.Fatalf("size=%d: checksum not preserved", size)
		}
	}
}

// TestSortAllocs is the allocation regression test for the sort path: with
// the scratch pool warm, sorting a block must not allocate. This pins both
// the radix kernel's pooled scratch and the death of the old per-Swap
// temporary slice.
func TestSortAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	buf := Generate(4096, DefaultSize, 3, Uniform{})
	small := Generate(radixMinLen/2, DefaultSize, 4, Uniform{})
	buf.Sort() // warm the pool
	small.Sort()
	if avg := testing.AllocsPerRun(20, func() { buf.Sort() }); avg > 0 {
		t.Fatalf("radix Sort allocates %.1f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() { small.Sort() }); avg > 0 {
		t.Fatalf("small-buffer Sort allocates %.1f allocs/op, want 0", avg)
	}
}

// BenchmarkBufferSortStdlib is the comparison path's benchmark twin of
// BenchmarkBufferSort, so `benchstat` can quote the radix kernel's win.
func BenchmarkBufferSortStdlib(b *testing.B) {
	src := Generate(4096, DefaultSize, 1, Uniform{})
	b.SetBytes(int64(DefaultSize))
	b.ResetTimer()
	for i := 0; i < b.N; i += 4096 {
		b.StopTimer()
		buf := src.Clone()
		b.StartTimer()
		buf.sortStdlib()
	}
}
