// Package route implements the record-routing policies that spread load
// across replicated functor instances (Section 3.3): "sets and replicated
// functors allow ASUs and host nodes to perform dataflow routing between
// functors intelligently. The routing of records across functor instances
// may be responsive to dynamic load conditions visible to the system. In
// some cases, randomized routing techniques like simple randomization (SR)
// may reduce data dependencies and interference... Routing policies may
// also consider static information about node capacity to handle
// heterogeneous processing rates."
package route

import (
	"fmt"
	"math/rand"

	"lmas/internal/telemetry"
)

// PacketInfo is the routing-relevant summary of a packet.
type PacketInfo struct {
	// Bucket is the distribute subset the packet belongs to, or -1.
	Bucket int
	// Records is the packet's record count.
	Records int
}

// Endpoint is a replicated functor instance a packet can be routed to.
type Endpoint interface {
	// Label identifies the endpoint (for diagnostics).
	Label() string
	// Pending reports the endpoint's queued backlog in packets; policies
	// use it as the dynamic load signal.
	Pending() int
}

// Policy selects the destination instance for each packet.
type Policy interface {
	Name() string
	// Pick returns the index of the chosen endpoint in eps (len >= 1).
	Pick(pk PacketInfo, eps []Endpoint) int
}

// Static partitions buckets across endpoints with a fixed assignment:
// bucket b of Buckets goes to endpoint b*len(eps)/Buckets. This is the
// paper's non-load-managed baseline in Figure 10 ("assigns half of the α
// distribute subsets to one host, and the other half to the second host");
// skewed inputs produce a poor distribution of records and a load
// imbalance.
type Static struct {
	// Buckets is the total number of distribute subsets.
	Buckets int
}

func (Static) Name() string { return "static" }

func (s Static) Pick(pk PacketInfo, eps []Endpoint) int {
	if pk.Bucket < 0 || s.Buckets <= 0 {
		return 0
	}
	i := pk.Bucket * len(eps) / s.Buckets
	if i >= len(eps) {
		i = len(eps) - 1
	}
	return i
}

// RoundRobin cycles through endpoints, ignoring load.
type RoundRobin struct{ next int }

func (*RoundRobin) Name() string { return "round-robin" }

func (r *RoundRobin) Pick(pk PacketInfo, eps []Endpoint) int {
	i := r.next % len(eps)
	r.next++
	return i
}

// SR is simple randomization [Vitter & Hutchinson, SODA'01]: each packet is
// routed to an endpoint chosen uniformly at random, "preserving the balance
// of records across the hosts" in expectation regardless of input skew.
type SR struct {
	rng *rand.Rand
}

// NewSR creates a simple-randomization policy seeded deterministically.
func NewSR(seed int64) *SR { return &SR{rng: rand.New(rand.NewSource(seed))} }

func (*SR) Name() string { return "sr" }

func (s *SR) Pick(pk PacketInfo, eps []Endpoint) int { return s.rng.Intn(len(eps)) }

// LoadAware routes each packet to the endpoint with the shortest backlog
// (join-shortest-queue), the most directly load-responsive policy; ties go
// to the lowest index for determinism.
type LoadAware struct{}

func (LoadAware) Name() string { return "load-aware" }

func (LoadAware) Pick(pk PacketInfo, eps []Endpoint) int {
	best, bestLen := 0, eps[0].Pending()
	for i := 1; i < len(eps); i++ {
		if l := eps[i].Pending(); l < bestLen {
			best, bestLen = i, l
		}
	}
	return best
}

// Weighted routes packets proportionally to static endpoint weights,
// "consider[ing] static information about node capacity to handle
// heterogeneous processing rates". A weight of 2 receives twice the packets
// of a weight of 1. Weights must be positive; missing weights default to 1.
type Weighted struct {
	Weights []float64
	acc     []float64 // deficit counters (smooth weighted round-robin)
}

func (*Weighted) Name() string { return "weighted" }

func (w *Weighted) Pick(pk PacketInfo, eps []Endpoint) int {
	n := len(eps)
	if len(w.acc) < n {
		w.acc = append(w.acc, make([]float64, n-len(w.acc))...)
	}
	weight := func(i int) float64 {
		if i < len(w.Weights) && w.Weights[i] > 0 {
			return w.Weights[i]
		}
		return 1
	}
	best := 0
	for i := 0; i < n; i++ {
		w.acc[i] += weight(i)
		if w.acc[i] > w.acc[best] {
			best = i
		}
	}
	var total float64
	for i := 0; i < n; i++ {
		total += weight(i)
	}
	w.acc[best] -= total
	return best
}

// ByName constructs the named policy with the given parameters; it is the
// single point the CLI uses to select routing for ablations.
func ByName(name string, buckets int, seed int64) (Policy, error) {
	switch name {
	case "static":
		return Static{Buckets: buckets}, nil
	case "round-robin", "rr":
		return &RoundRobin{}, nil
	case "sr", "random":
		return NewSR(seed), nil
	case "load-aware", "jsq":
		return LoadAware{}, nil
	default:
		return nil, fmt.Errorf("route: unknown policy %q", name)
	}
}

// Counted wraps a policy and counts routing decisions per destination
// endpoint on a telemetry registry, so a RunReport records how a policy
// actually spread the load (the paper's Table 3 "poor distribution of
// records" diagnosis, made machine-readable). Counters are named
// "<prefix>.<endpoint label>.picks". A nil registry makes the wrapper
// transparent.
type Counted struct {
	Inner  Policy
	Reg    *telemetry.Registry
	Prefix string

	byEp []*telemetry.Counter
}

// Name reports the wrapped policy's name (Counted is invisible to
// policy-selection logic and decision logs).
func (c *Counted) Name() string { return c.Inner.Name() }

func (c *Counted) Pick(pk PacketInfo, eps []Endpoint) int {
	i := c.Inner.Pick(pk, eps)
	if c.Reg != nil {
		for len(c.byEp) < len(eps) {
			n := len(c.byEp)
			c.byEp = append(c.byEp, c.Reg.Counter(c.Prefix+"."+eps[n].Label()+".picks"))
		}
		c.byEp[i].Inc()
	}
	return i
}
