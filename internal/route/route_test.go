package route

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

type fakeEP struct {
	label   string
	pending int
}

func (f *fakeEP) Label() string { return f.label }
func (f *fakeEP) Pending() int  { return f.pending }

func eps(pendings ...int) []Endpoint {
	out := make([]Endpoint, len(pendings))
	for i, p := range pendings {
		out[i] = &fakeEP{label: fmt.Sprintf("ep%d", i), pending: p}
	}
	return out
}

func TestStaticPartitionsContiguously(t *testing.T) {
	s := Static{Buckets: 8}
	e := eps(0, 0)
	for b := 0; b < 4; b++ {
		if got := s.Pick(PacketInfo{Bucket: b}, e); got != 0 {
			t.Fatalf("bucket %d -> %d, want 0", b, got)
		}
	}
	for b := 4; b < 8; b++ {
		if got := s.Pick(PacketInfo{Bucket: b}, e); got != 1 {
			t.Fatalf("bucket %d -> %d, want 1", b, got)
		}
	}
}

func TestStaticIsDeterministicPerBucket(t *testing.T) {
	s := Static{Buckets: 16}
	e := eps(0, 0, 0)
	for b := 0; b < 16; b++ {
		first := s.Pick(PacketInfo{Bucket: b}, e)
		for i := 0; i < 5; i++ {
			if s.Pick(PacketInfo{Bucket: b}, e) != first {
				t.Fatal("static policy not deterministic")
			}
		}
	}
}

func TestStaticUnbucketedGoesToZero(t *testing.T) {
	s := Static{Buckets: 4}
	if got := s.Pick(PacketInfo{Bucket: -1}, eps(0, 0)); got != 0 {
		t.Fatalf("unbucketed -> %d", got)
	}
}

// TestStaticInRangeProperty: static never picks out of range, for any
// bucket/endpoint combination.
func TestStaticInRangeProperty(t *testing.T) {
	f := func(bucket uint8, buckets, n uint8) bool {
		nb := int(buckets%32) + 1
		ne := int(n%8) + 1
		s := Static{Buckets: nb}
		got := s.Pick(PacketInfo{Bucket: int(bucket) % nb}, eps(make([]int, ne)...))
		return got >= 0 && got < ne
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	r := &RoundRobin{}
	e := eps(0, 0, 0)
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := r.Pick(PacketInfo{}, e); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
}

func TestSRBalancesApproximately(t *testing.T) {
	s := NewSR(1)
	e := eps(0, 0, 0, 0)
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[s.Pick(PacketInfo{Bucket: 0}, e)]++ // same bucket every time
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/4) > 0.1*n/4 {
			t.Fatalf("SR endpoint %d got %d of %d", i, c, n)
		}
	}
}

func TestSRDeterministicBySeed(t *testing.T) {
	a, b := NewSR(7), NewSR(7)
	e := eps(0, 0, 0)
	for i := 0; i < 100; i++ {
		if a.Pick(PacketInfo{}, e) != b.Pick(PacketInfo{}, e) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestLoadAwarePicksShortest(t *testing.T) {
	la := LoadAware{}
	if got := la.Pick(PacketInfo{}, eps(5, 2, 7)); got != 1 {
		t.Fatalf("picked %d, want 1", got)
	}
	// Ties go to the lowest index.
	if got := la.Pick(PacketInfo{}, eps(3, 3, 3)); got != 0 {
		t.Fatalf("tie pick = %d, want 0", got)
	}
}

func TestWeightedProportions(t *testing.T) {
	w := &Weighted{Weights: []float64{3, 1}}
	e := eps(0, 0)
	counts := make([]int, 2)
	for i := 0; i < 4000; i++ {
		counts[w.Pick(PacketInfo{}, e)]++
	}
	if counts[0] != 3000 || counts[1] != 1000 {
		t.Fatalf("weighted counts = %v, want [3000 1000]", counts)
	}
}

func TestWeightedDefaultsToEqual(t *testing.T) {
	w := &Weighted{}
	e := eps(0, 0, 0)
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[w.Pick(PacketInfo{}, e)]++
	}
	for i, c := range counts {
		if c != 1000 {
			t.Fatalf("endpoint %d got %d, want 1000", i, c)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"static", "round-robin", "rr", "sr", "random", "load-aware", "jsq"} {
		p, err := ByName(name, 8, 1)
		if err != nil || p == nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope", 8, 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestAllPoliciesInRange: every policy returns a valid index for arbitrary
// inputs.
func TestAllPoliciesInRange(t *testing.T) {
	policies := []Policy{
		Static{Buckets: 8}, &RoundRobin{}, NewSR(3), LoadAware{}, &Weighted{Weights: []float64{1, 2}},
	}
	f := func(bucket int8, nRaw, pRaw uint8) bool {
		ne := int(nRaw%6) + 1
		pend := make([]int, ne)
		for i := range pend {
			pend[i] = int(pRaw) * i
		}
		e := eps(pend...)
		for _, pol := range policies {
			got := pol.Pick(PacketInfo{Bucket: int(bucket)}, e)
			if got < 0 || got >= ne {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
