package rtree

import "testing"

func BenchmarkBuildSTR(b *testing.B) {
	es := GenerateEntries(1<<14, 0.005, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(es, 16)
	}
}

func BenchmarkSearchPoint(b *testing.B) {
	es := GenerateEntries(1<<14, 0.005, 1)
	t := Build(es, 16)
	qs := GenerateQueries(256, 0.001, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Search(qs[i%256])
	}
}

func BenchmarkSearchRange(b *testing.B) {
	es := GenerateEntries(1<<14, 0.005, 1)
	t := Build(es, 16)
	qs := GenerateQueries(64, 0.2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Search(qs[i%64])
	}
}

func BenchmarkDistributedQuery(b *testing.B) {
	for _, mode := range []Mode{Partition, Stripe} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			es := GenerateEntries(1<<13, 0.005, 1)
			q := Rect{0.2, 0.2, 0.4, 0.4}
			for i := 0; i < b.N; i++ {
				dt := NewDistributed(distCluster(8), es, 16, mode)
				if _, _, err := dt.QueryOnce(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
