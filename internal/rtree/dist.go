package rtree

import (
	"fmt"
	"sort"

	"lmas/internal/cluster"
	"lmas/internal/sim"
)

// Mode selects the distributed organization of Figure 5.
type Mode int

const (
	// Partition assigns each ASU a contiguous group of leaves and a
	// private subtree over them; the host routes each query to the
	// ASUs whose group regions it intersects. Queries spread across
	// ASUs — good concurrent throughput.
	Partition Mode = iota
	// Stripe scatters leaves round-robin across all ASUs; the host
	// keeps the whole internal tree and every query fans out to all
	// ASUs in parallel — bounded latency.
	Stripe
	// Replicated is the paper's hybrid: each subtree lives on several
	// ASUs ("replicating subtrees on multiple ASUs are also possible"),
	// and queries rotate across a group's replicas — so a hot region is
	// served by R units instead of one.
	Replicated
)

func (m Mode) String() string {
	switch m {
	case Partition:
		return "partition"
	case Stripe:
		return "stripe"
	default:
		return "replicated"
	}
}

// Distributed is an R-tree deployed across a cluster's host and ASUs.
type Distributed struct {
	cl     *cluster.Cluster
	mode   Mode
	fanout int

	// Partition / Replicated state.
	groupBox []Rect  // per-group MBR
	subtrees []*Tree // per-group subtree
	// replicaASUs[g] lists the ASUs holding group g's subtree
	// (singleton for Partition); nextReplica rotates among them.
	replicaASUs [][]int
	nextReplica []int
	// pending buffers online inserts per group until Maintain runs.
	pending map[int][]Entry

	// Stripe state.
	full *Tree

	entries []Entry
}

// NewDistributed builds and places the index. Building happens outside
// emulated time (bulk loading is an offline operation in the evaluation).
func NewDistributed(cl *cluster.Cluster, entries []Entry, fanout int, mode Mode) *Distributed {
	return newDistributed(cl, entries, fanout, mode, 1)
}

// NewReplicated builds the hybrid organization: subtrees partitioned into
// len(ASUs)/replicas groups, each group's subtree stored on `replicas`
// ASUs, with queries rotated across replicas.
func NewReplicated(cl *cluster.Cluster, entries []Entry, fanout, replicas int) *Distributed {
	if replicas < 1 {
		panic("rtree: replicas must be >= 1")
	}
	return newDistributed(cl, entries, fanout, Replicated, replicas)
}

func newDistributed(cl *cluster.Cluster, entries []Entry, fanout int, mode Mode, replicas int) *Distributed {
	dt := &Distributed{cl: cl, mode: mode, fanout: fanout, entries: entries}
	d := len(cl.ASUs)
	switch mode {
	case Partition, Replicated:
		groups := d
		if mode == Replicated {
			groups = d / replicas
			if groups < 1 {
				groups = 1
			}
		}
		t := Build(entries, fanout)
		leaves := t.Leaves()
		for g := 0; g < groups; g++ {
			lo := g * len(leaves) / groups
			hi := (g + 1) * len(leaves) / groups
			var reps []int
			for k := 0; k < replicas; k++ {
				reps = append(reps, (g+k*groups)%d)
			}
			dt.replicaASUs = append(dt.replicaASUs, reps)
			dt.nextReplica = append(dt.nextReplica, 0)
			if lo == hi {
				dt.groupBox = append(dt.groupBox, Rect{MinX: 1, MinY: 1, MaxX: -1, MaxY: -1})
				dt.subtrees = append(dt.subtrees, nil)
				continue
			}
			var es []Entry
			box := leaves[lo].Box
			for _, leaf := range leaves[lo:hi] {
				es = append(es, leaf.Entries...)
				box = box.Union(leaf.Box)
			}
			dt.groupBox = append(dt.groupBox, box)
			dt.subtrees = append(dt.subtrees, Build(es, fanout))
		}
	case Stripe:
		dt.full = Build(entries, fanout)
	default:
		panic(fmt.Sprintf("rtree: unknown mode %v", mode))
	}
	return dt
}

// Mode reports the organization.
func (dt *Distributed) Mode() Mode { return dt.mode }

// Cluster returns the underlying emulated cluster, giving harnesses access
// to its telemetry (the per-query latency histogram) and reporting.
func (dt *Distributed) Cluster() *cluster.Cluster { return dt.cl }

// asuWork is the per-ASU share of one query.
type asuWork struct {
	asu int
	// visitOps is the CPU comparison count.
	visitOps float64
	// leafBytes is the data read from the ASU's disk.
	leafBytes int
	// matches are the result IDs (computed on the emulation host; the
	// emulated ASU is charged for the work above).
	matches []uint32
}

// plan computes, per contacted ASU, the work q induces. Also returns the
// host-side comparison count and the matches found in the host-resident
// insert buffers (entries awaiting Maintain).
func (dt *Distributed) plan(q Rect) (work []asuWork, hostOps float64, hostMatches []uint32) {
	cm := dt.cl.Params.Costs
	switch dt.mode {
	case Partition, Replicated:
		// Host checks the group MBRs and picks a replica per group
		// (round-robin rotation spreads repeated hits on a hot group
		// across its replicas).
		hostOps = float64(len(dt.groupBox)) * cm.CompareOps
		for i, box := range dt.groupBox {
			if dt.subtrees[i] == nil || !box.Intersects(q) {
				continue
			}
			ids, visited := dt.subtrees[i].Search(q)
			leaves := 0
			var countLeaves func(n *Node)
			countLeaves = func(n *Node) {
				if n.Leaf {
					if n.Box.Intersects(q) {
						leaves++
					}
					return
				}
				for _, c := range n.Children {
					if c.Box.Intersects(q) {
						countLeaves(c)
					}
				}
			}
			countLeaves(dt.subtrees[i].Root)
			reps := dt.replicaASUs[i]
			asu := reps[dt.nextReplica[i]%len(reps)]
			dt.nextReplica[i]++
			work = append(work, asuWork{
				asu:       asu,
				visitOps:  float64(visited) * float64(dt.fanout) * cm.CompareOps,
				leafBytes: leaves * dt.fanout * EntryBytes,
				matches:   ids,
			})
		}
	case Stripe:
		// Host traverses the internal levels, collecting candidate
		// leaves; each leaf's entries are striped across ALL ASUs
		// ("stripe a host leaf across all of the ASUs"), so every
		// query fans out to every ASU, each scanning its 1/D share.
		d := len(dt.cl.ASUs)
		byASU := make([]*asuWork, d)
		visitedInternal := 0
		var walk func(n *Node)
		walk = func(n *Node) {
			if n.Leaf {
				for j, e := range n.Entries {
					a := j % d
					w := byASU[a]
					if w == nil {
						w = &asuWork{asu: a}
						byASU[a] = w
					}
					w.leafBytes += EntryBytes
					w.visitOps += cm.CompareOps
					if e.Box.Intersects(q) {
						w.matches = append(w.matches, e.ID)
					}
				}
				return
			}
			visitedInternal++
			for _, c := range n.Children {
				if c.Box.Intersects(q) {
					walk(c)
				}
			}
		}
		if dt.full.Root.Box.Intersects(q) {
			walk(dt.full.Root)
		}
		hostOps = float64(visitedInternal) * float64(dt.fanout) * cm.CompareOps
		for _, w := range byASU {
			if w != nil {
				work = append(work, *w)
			}
		}
	}
	// Pending online inserts live on the host until Maintain folds them
	// down; queries scan them there.
	for _, es := range dt.pending {
		hostOps += float64(len(es)) * cm.CompareOps
		for _, e := range es {
			if e.Box.Intersects(q) {
				hostMatches = append(hostMatches, e.ID)
			}
		}
	}
	return work, hostOps, hostMatches
}

// runQuery executes one query from proc p on the given host, blocking
// until all contacted ASUs respond. Returns the matching IDs. Each query's
// start-to-gather latency lands in the cluster's "rtree.query.latency"
// histogram when telemetry is attached.
func (dt *Distributed) runQuery(p *sim.Proc, host *cluster.Node, q Rect, qIdx int) []uint32 {
	cl := dt.cl
	start := p.Now()
	defer func() {
		cl.Telemetry.Latency("rtree.query.latency").Observe(sim.Duration(p.Now() - start))
	}()
	work, hostOps, hostMatches := dt.plan(q)
	host.Compute(p, hostOps+cl.Touch(host))
	if len(work) == 0 {
		return hostMatches
	}
	results := sim.NewQueue[[]uint32](cl.Sim, fmt.Sprintf("q%d.results", qIdx), len(work))
	for _, w := range work {
		w := w
		asu := cl.ASUs[w.asu]
		cl.Sim.Spawn(fmt.Sprintf("q%d@asu%d", qIdx, w.asu), func(sub *sim.Proc) {
			cl.Net.Send(sub, host.NIC, asu.NIC, 64) // the query itself
			asu.Compute(sub, w.visitOps+cl.Touch(asu))
			if w.leafBytes > 0 {
				asu.Disk.EndReadRun() // random placement: no read-ahead credit
				asu.Disk.Read(sub, w.leafBytes)
			}
			cl.Net.Send(sub, asu.NIC, host.NIC, len(w.matches)*EntryBytes+64)
			if err := results.Put(sub, w.matches); err != nil {
				panic(err)
			}
		})
	}
	// Drain responses with the batched fast path: GetN blocks exactly like
	// Get while the queue is empty, then takes every buffered response in
	// one call, so the gather costs one wakeup per burst instead of one per
	// responder. No virtual time passes between takes (the loop body is
	// pure appends), so query latency is identical to a per-element loop.
	ids := hostMatches
	batch := make([][]uint32, len(work))
	for got := 0; got < len(work); {
		k, ok := results.GetN(p, batch[:len(work)-got])
		if !ok {
			panic("rtree: result queue closed early")
		}
		for _, m := range batch[:k] {
			ids = append(ids, m...)
		}
		got += k
	}
	return ids
}

// QueryOnce runs a single query in an otherwise idle system and reports
// its matches and latency. Results are validated against a brute-force
// scan; a mismatch is returned as an error.
func (dt *Distributed) QueryOnce(q Rect) (ids []uint32, latency sim.Duration, err error) {
	cl := dt.cl
	start := cl.Sim.Now()
	var end sim.Time
	cl.Sim.Spawn("query", func(p *sim.Proc) {
		ids = dt.runQuery(p, cl.Hosts[0], q, 0)
		end = p.Now()
	})
	if rerr := cl.Sim.Run(); rerr != nil {
		return nil, 0, rerr
	}
	if err := validate(ids, BruteForce(dt.entries, q)); err != nil {
		return nil, 0, err
	}
	return ids, sim.Duration(end - start), nil
}

// Throughput runs the query batch with the given number of concurrent
// client procs per host and reports the elapsed virtual time and the
// achieved queries/second. Every result is validated.
func (dt *Distributed) Throughput(queries []Rect, clientsPerHost int) (sim.Duration, float64, error) {
	cl := dt.cl
	if clientsPerHost < 1 {
		clientsPerHost = 1
	}
	next := 0
	var verr error
	start := cl.Sim.Now()
	for h, host := range cl.Hosts {
		for c := 0; c < clientsPerHost; c++ {
			host := host
			cl.Sim.Spawn(fmt.Sprintf("client%d.%d", h, c), func(p *sim.Proc) {
				for {
					if next >= len(queries) || verr != nil {
						return
					}
					qi := next
					next++
					ids := dt.runQuery(p, host, queries[qi], qi)
					if err := validate(ids, BruteForce(dt.entries, queries[qi])); err != nil && verr == nil {
						verr = fmt.Errorf("query %d: %w", qi, err)
					}
				}
			})
		}
	}
	if err := cl.Sim.Run(); err != nil {
		return 0, 0, err
	}
	if verr != nil {
		return 0, 0, verr
	}
	elapsed := sim.Duration(cl.Sim.Now() - start)
	if elapsed <= 0 {
		return elapsed, 0, nil
	}
	return elapsed, float64(len(queries)) / elapsed.Seconds(), nil
}

func validate(got, want []uint32) error {
	if len(got) != len(want) {
		return fmt.Errorf("rtree: %d matches, brute force %d", len(got), len(want))
	}
	g := append([]uint32(nil), got...)
	w := append([]uint32(nil), want...)
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	for i := range g {
		if g[i] != w[i] {
			return fmt.Errorf("rtree: match set differs at %d: %d vs %d", i, g[i], w[i])
		}
	}
	return nil
}
