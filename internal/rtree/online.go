package rtree

import (
	"fmt"
	"sort"

	"lmas/internal/sim"
)

// Online maintenance (Section 4.2): "For online data structures, the
// maintenance work (for example, rebalancing) at the lower levels can run
// as a batch job running on the ASUs, while the host layer maintains the
// upper levels online."
//
// Insert appends to a host-side buffer per group (the online upper layer:
// the host extends group MBRs immediately, so queries stay correct), and
// queries scan the pending buffers until Maintain folds them into the
// ASU-resident subtrees — each group rebuilt as a parallel batch job on
// its own ASU.

// Insert adds e to the index online. Only Partition and Replicated
// organizations support insertion (striped leaves would need to re-stripe).
// The entry is buffered against the group whose MBR it extends least and
// becomes visible to queries immediately.
func (dt *Distributed) Insert(p *sim.Proc, e Entry) {
	if dt.mode == Stripe {
		panic("rtree: Insert not supported on striped organization")
	}
	host := dt.cl.Hosts[0]
	// Online upper-level work: choose the group and extend its MBR.
	host.Compute(p, float64(len(dt.groupBox))*dt.cl.Params.Costs.CompareOps+dt.cl.Touch(host))
	best, bestGrowth := -1, 0.0
	for g, box := range dt.groupBox {
		if dt.subtrees[g] == nil {
			continue
		}
		u := box.Union(e.Box)
		growth := area(u) - area(box)
		if best < 0 || growth < bestGrowth {
			best, bestGrowth = g, growth
		}
	}
	if best < 0 {
		panic("rtree: no group to insert into")
	}
	dt.groupBox[best] = dt.groupBox[best].Union(e.Box)
	if dt.pending == nil {
		dt.pending = make(map[int][]Entry)
	}
	dt.pending[best] = append(dt.pending[best], e)
	dt.entries = append(dt.entries, e)
}

// Pending reports buffered entries not yet folded into subtrees.
func (dt *Distributed) Pending() int {
	n := 0
	for _, es := range dt.pending {
		n += len(es)
	}
	return n
}

// Maintain folds all pending inserts into their groups' subtrees: each
// affected ASU rebuilds its subtree as a batch job (n·log n comparisons on
// the ASU plus rewriting the subtree's leaves to its disk), all groups in
// parallel, while the host's upper layer stays available. Maintain blocks
// until every batch job completes and returns the elapsed virtual time.
func (dt *Distributed) Maintain() (sim.Duration, error) {
	return dt.maintain(false)
}

// MaintainOnHost performs the same rebuilds centrally: every affected
// subtree's data crosses the interconnect to the host, is rebuilt there
// serially, and ships back — the comparison point showing why the paper
// pushes maintenance down to the ASUs.
func (dt *Distributed) MaintainOnHost() (sim.Duration, error) {
	return dt.maintain(true)
}

func (dt *Distributed) maintain(onHost bool) (sim.Duration, error) {
	if dt.mode == Stripe {
		return 0, fmt.Errorf("rtree: maintenance not supported on striped organization")
	}
	cl := dt.cl
	host := cl.Hosts[0]
	cm := cl.Params.Costs
	groups := make([]int, 0, len(dt.pending))
	for g, es := range dt.pending {
		if len(es) > 0 {
			groups = append(groups, g)
		}
	}
	sort.Ints(groups)
	start := cl.Sim.Now()
	rebuild := func(p *sim.Proc, g int) {
		// Merge pending entries into the group's entry set.
		var es []Entry
		if dt.subtrees[g] != nil {
			for _, leaf := range dt.subtrees[g].Leaves() {
				es = append(es, leaf.Entries...)
			}
		}
		es = append(es, dt.pending[g]...)
		added := len(dt.pending[g])
		n := len(es)
		bytes := n * EntryBytes
		for _, asuIdx := range dt.replicaASUs[g] {
			asu := cl.ASUs[asuIdx]
			if onHost {
				// Read the subtree off the unit, ship it up,
				// rebuild centrally, ship back.
				asu.Disk.EndReadRun()
				asu.Disk.Read(p, bytes-added*EntryBytes)
				cl.Net.Stream(p, asu.NIC, host.NIC, bytes+64)
				host.Compute(p, float64(n)*(log2n(n)*cm.CompareOps+cl.Touch(host)))
				cl.Net.Stream(p, host.NIC, asu.NIC, bytes+64)
				asu.Disk.Write(p, bytes)
			} else {
				// Batch job on the ASU: ship only the new entries.
				cl.Net.Stream(p, host.NIC, asu.NIC, added*EntryBytes+64)
				asu.Disk.EndReadRun()
				asu.Disk.Read(p, bytes-added*EntryBytes)
				asu.Compute(p, float64(n)*(log2n(n)*cm.CompareOps+cl.Touch(asu)))
				asu.Disk.Write(p, bytes)
				asu.Disk.Flush(p)
			}
		}
		dt.subtrees[g] = Build(es, dt.fanout)
		dt.groupBox[g] = dt.subtrees[g].Root.Box
		dt.pending[g] = nil
	}
	if onHost {
		cl.Sim.Spawn("maintain@host", func(p *sim.Proc) {
			for _, g := range groups {
				rebuild(p, g)
			}
		})
	} else {
		for _, g := range groups {
			g := g
			cl.Sim.Spawn(fmt.Sprintf("maintain.g%d", g), func(p *sim.Proc) {
				rebuild(p, g)
			})
		}
	}
	if err := cl.Sim.Run(); err != nil {
		return 0, err
	}
	return sim.Duration(cl.Sim.Now() - start), nil
}

// InsertBatch inserts entries online in one proc and reports the elapsed
// time (a convenience for experiments).
func (dt *Distributed) InsertBatch(entries []Entry) (sim.Duration, error) {
	if dt.mode == Stripe {
		return 0, fmt.Errorf("rtree: Insert not supported on striped organization")
	}
	cl := dt.cl
	start := cl.Sim.Now()
	cl.Sim.Spawn("insert-batch", func(p *sim.Proc) {
		for _, e := range entries {
			dt.Insert(p, e)
		}
	})
	if err := cl.Sim.Run(); err != nil {
		return 0, err
	}
	return sim.Duration(cl.Sim.Now() - start), nil
}

func area(r Rect) float64 {
	w, h := r.MaxX-r.MinX, r.MaxY-r.MinY
	if w < 0 || h < 0 {
		return 0
	}
	return w * h
}

func log2n(n int) float64 {
	if n < 2 {
		return 0
	}
	l := 0.0
	for v := n - 1; v > 0; v >>= 1 {
		l++
	}
	return l
}
