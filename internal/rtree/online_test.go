package rtree

import (
	"testing"
)

func TestInsertVisibleImmediately(t *testing.T) {
	es := GenerateEntries(1000, 0.005, 1)
	dt := NewDistributed(distCluster(4), es, 8, Partition)
	extra := Entry{Box: Rect{0.5, 0.5, 0.51, 0.51}, ID: 99999}
	if _, err := dt.InsertBatch([]Entry{extra}); err != nil {
		t.Fatal(err)
	}
	if dt.Pending() != 1 {
		t.Fatalf("pending = %d", dt.Pending())
	}
	ids, _, err := dt.QueryOnce(Rect{0.49, 0.49, 0.52, 0.52})
	if err != nil {
		t.Fatal(err) // QueryOnce validates against brute force incl. extra
	}
	found := false
	for _, id := range ids {
		if id == 99999 {
			found = true
		}
	}
	if !found {
		t.Fatal("online insert invisible to queries")
	}
}

func TestMaintainFoldsBufferAndStaysCorrect(t *testing.T) {
	es := GenerateEntries(1000, 0.005, 2)
	dt := NewDistributed(distCluster(4), es, 8, Partition)
	newEntries := GenerateEntries(200, 0.005, 3)
	for i := range newEntries {
		newEntries[i].ID += 1 << 20 // distinct ids
	}
	if _, err := dt.InsertBatch(newEntries); err != nil {
		t.Fatal(err)
	}
	if dt.Pending() != 200 {
		t.Fatalf("pending = %d", dt.Pending())
	}
	if _, err := dt.Maintain(); err != nil {
		t.Fatal(err)
	}
	if dt.Pending() != 0 {
		t.Fatalf("pending = %d after Maintain", dt.Pending())
	}
	for _, q := range GenerateQueries(20, 0.1, 4) {
		if _, _, err := dt.QueryOnce(q); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMaintenanceRestoresQueryCost(t *testing.T) {
	es := GenerateEntries(4096, 0.005, 5)
	dt := NewDistributed(distCluster(4), es, 16, Partition)
	q := Rect{0.3, 0.3, 0.32, 0.32}
	_, before, err := dt.QueryOnce(q)
	if err != nil {
		t.Fatal(err)
	}
	extra := GenerateEntries(4096, 0.005, 6)
	for i := range extra {
		extra[i].ID += 1 << 20
	}
	if _, err := dt.InsertBatch(extra); err != nil {
		t.Fatal(err)
	}
	_, degraded, err := dt.QueryOnce(q)
	if err != nil {
		t.Fatal(err)
	}
	if degraded <= before {
		t.Fatalf("query with 4096 buffered inserts (%v) not slower than clean (%v)", degraded, before)
	}
	if _, err := dt.Maintain(); err != nil {
		t.Fatal(err)
	}
	_, after, err := dt.QueryOnce(q)
	if err != nil {
		t.Fatal(err)
	}
	if after >= degraded {
		t.Fatalf("maintenance did not restore query cost: %v -> %v", degraded, after)
	}
}

func TestASUMaintenanceBeatsHostMaintenance(t *testing.T) {
	// With many ASUs the parallel batch jobs beat the serial host
	// rebuild that also round-trips all data over the interconnect.
	run := func(onHost bool) float64 {
		es := GenerateEntries(8192, 0.005, 7)
		dt := NewDistributed(distCluster(16), es, 16, Partition)
		extra := GenerateEntries(1024, 0.005, 8)
		for i := range extra {
			extra[i].ID += 1 << 20
		}
		if _, err := dt.InsertBatch(extra); err != nil {
			t.Fatal(err)
		}
		var d float64
		if onHost {
			dd, err := dt.MaintainOnHost()
			if err != nil {
				t.Fatal(err)
			}
			d = dd.Seconds()
		} else {
			dd, err := dt.Maintain()
			if err != nil {
				t.Fatal(err)
			}
			d = dd.Seconds()
		}
		// Correctness after either path.
		for _, q := range GenerateQueries(5, 0.1, 9) {
			if _, _, err := dt.QueryOnce(q); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}
	asu, host := run(false), run(true)
	if asu >= host {
		t.Fatalf("ASU batch maintenance %.6fs not faster than host rebuild %.6fs", asu, host)
	}
}

func TestInsertOnStripePanics(t *testing.T) {
	es := GenerateEntries(100, 0.01, 1)
	dt := NewDistributed(distCluster(2), es, 8, Stripe)
	_, err := dt.InsertBatch([]Entry{{Box: Rect{0.1, 0.1, 0.2, 0.2}, ID: 1}})
	if err == nil {
		t.Fatal("stripe insert did not fail")
	}
}

func TestMaintainOnReplicatedUpdatesAllReplicas(t *testing.T) {
	es := GenerateEntries(2000, 0.005, 10)
	dt := NewReplicated(distCluster(8), es, 16, 2)
	extra := GenerateEntries(100, 0.005, 11)
	for i := range extra {
		extra[i].ID += 1 << 20
	}
	if _, err := dt.InsertBatch(extra); err != nil {
		t.Fatal(err)
	}
	if _, err := dt.Maintain(); err != nil {
		t.Fatal(err)
	}
	// Repeated queries rotate replicas; both must include the new data
	// (QueryOnce validates against brute force each time).
	q := Rect{0.2, 0.2, 0.6, 0.6}
	for i := 0; i < 4; i++ {
		if _, _, err := dt.QueryOnce(q); err != nil {
			t.Fatalf("replica query %d: %v", i, err)
		}
	}
}
