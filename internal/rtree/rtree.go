// Package rtree implements the spatial-index application of Section 4.2:
// R-trees bulk-loaded with the Sort-Tile-Recursive method, and the two
// distributed organizations of Figure 5 — partitioning subtrees across
// ASUs versus striping leaves across all ASUs:
//
//	"One option to construct the subtrees is to build a tree over all the
//	data at each ASU, and treat each as a leaf of the host tree. An
//	alternative is to stripe a host leaf across all of the ASUs...
//	Because the latter option stripes leaves across ASUs, every query
//	executes in parallel on all of the ASUs, which is useful to bound
//	search latency. The former option distributes the searches across
//	the ASUs, which is useful in server applications with many
//	concurrent searches."
package rtree

import (
	"fmt"
	"math/rand"
	"sort"
)

// Rect is an axis-aligned rectangle.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Intersects reports whether r and o overlap (boundaries touching counts).
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Union returns the smallest rectangle covering r and o.
func (r Rect) Union(o Rect) Rect {
	if o.MinX < r.MinX {
		r.MinX = o.MinX
	}
	if o.MinY < r.MinY {
		r.MinY = o.MinY
	}
	if o.MaxX > r.MaxX {
		r.MaxX = o.MaxX
	}
	if o.MaxY > r.MaxY {
		r.MaxY = o.MaxY
	}
	return r
}

// Center reports the rectangle's center point.
func (r Rect) Center() (x, y float64) {
	return (r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2
}

// Entry is an indexed spatial object.
type Entry struct {
	Box Rect
	ID  uint32
}

// EntryBytes is an entry's stored size: four float64 coordinates and an id.
const EntryBytes = 36

// Node is an R-tree node: either a leaf holding entries or an internal node
// holding children.
type Node struct {
	Box      Rect
	Leaf     bool
	Entries  []Entry // leaf only
	Children []*Node // internal only
}

// Tree is a bulk-loaded R-tree.
type Tree struct {
	Root   *Node
	Fanout int
	Height int
	leaves []*Node
}

// Build bulk-loads entries with the Sort-Tile-Recursive method: sort by x
// center, cut into vertical slabs, sort each slab by y center, pack leaves,
// then pack upper levels fanout children at a time.
func Build(entries []Entry, fanout int) *Tree {
	if fanout < 2 {
		panic("rtree: fanout must be >= 2")
	}
	if len(entries) == 0 {
		panic("rtree: no entries")
	}
	es := append([]Entry(nil), entries...)
	sort.Slice(es, func(i, j int) bool {
		xi, _ := es[i].Box.Center()
		xj, _ := es[j].Box.Center()
		if xi != xj {
			return xi < xj
		}
		return es[i].ID < es[j].ID
	})
	nLeaves := (len(es) + fanout - 1) / fanout
	slabs := intSqrtCeil(nLeaves)
	perSlab := slabs * fanout
	var leaves []*Node
	for s := 0; s < len(es); s += perSlab {
		e := s + perSlab
		if e > len(es) {
			e = len(es)
		}
		slab := es[s:e]
		sort.Slice(slab, func(i, j int) bool {
			_, yi := slab[i].Box.Center()
			_, yj := slab[j].Box.Center()
			if yi != yj {
				return yi < yj
			}
			return slab[i].ID < slab[j].ID
		})
		for lo := 0; lo < len(slab); lo += fanout {
			hi := lo + fanout
			if hi > len(slab) {
				hi = len(slab)
			}
			leaf := &Node{Leaf: true, Entries: append([]Entry(nil), slab[lo:hi]...)}
			leaf.Box = leaf.Entries[0].Box
			for _, en := range leaf.Entries[1:] {
				leaf.Box = leaf.Box.Union(en.Box)
			}
			leaves = append(leaves, leaf)
		}
	}
	t := &Tree{Fanout: fanout, leaves: leaves}
	level := leaves
	t.Height = 1
	for len(level) > 1 {
		var next []*Node
		for lo := 0; lo < len(level); lo += fanout {
			hi := lo + fanout
			if hi > len(level) {
				hi = len(level)
			}
			n := &Node{Children: append([]*Node(nil), level[lo:hi]...)}
			n.Box = n.Children[0].Box
			for _, c := range n.Children[1:] {
				n.Box = n.Box.Union(c.Box)
			}
			next = append(next, n)
		}
		level = next
		t.Height++
	}
	t.Root = level[0]
	return t
}

func intSqrtCeil(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// Leaves returns the tree's leaves in STR packing order.
func (t *Tree) Leaves() []*Node { return t.leaves }

// Search returns the IDs of entries intersecting q, and the number of
// nodes visited (the traversal's comparison cost driver).
func (t *Tree) Search(q Rect) (ids []uint32, visited int) {
	var walk func(n *Node)
	walk = func(n *Node) {
		visited++
		if n.Leaf {
			for _, e := range n.Entries {
				if e.Box.Intersects(q) {
					ids = append(ids, e.ID)
				}
			}
			return
		}
		for _, c := range n.Children {
			if c.Box.Intersects(q) {
				walk(c)
			}
		}
	}
	if t.Root.Box.Intersects(q) {
		walk(t.Root)
	}
	return ids, visited
}

// BruteForce returns the IDs of entries intersecting q by linear scan — the
// validation oracle.
func BruteForce(entries []Entry, q Rect) []uint32 {
	var ids []uint32
	for _, e := range entries {
		if e.Box.Intersects(q) {
			ids = append(ids, e.ID)
		}
	}
	return ids
}

// GenerateEntries produces n random rectangles in the unit square with the
// given maximum extent, deterministically from seed.
func GenerateEntries(n int, maxExtent float64, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	es := make([]Entry, n)
	for i := range es {
		x, y := rng.Float64(), rng.Float64()
		w, h := rng.Float64()*maxExtent, rng.Float64()*maxExtent
		es[i] = Entry{Box: Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}, ID: uint32(i)}
	}
	return es
}

// GenerateQueries produces range queries of roughly the given side length.
func GenerateQueries(n int, side float64, seed int64) []Rect {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]Rect, n)
	for i := range qs {
		x, y := rng.Float64(), rng.Float64()
		qs[i] = Rect{MinX: x, MinY: y, MaxX: x + side, MaxY: y + side}
	}
	return qs
}

// GenerateHotQueries produces a skewed server workload: hotFrac of the
// queries fall inside the hot region, the rest are uniform. Hot-spot
// workloads are where replicating subtrees pays off — a partitioned index
// funnels them all to one ASU.
func GenerateHotQueries(n int, side float64, hot Rect, hotFrac float64, seed int64) []Rect {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]Rect, n)
	for i := range qs {
		var x, y float64
		if rng.Float64() < hotFrac {
			x = hot.MinX + rng.Float64()*(hot.MaxX-hot.MinX)
			y = hot.MinY + rng.Float64()*(hot.MaxY-hot.MinY)
		} else {
			x, y = rng.Float64(), rng.Float64()
		}
		qs[i] = Rect{MinX: x, MinY: y, MaxX: x + side, MaxY: y + side}
	}
	return qs
}

func (r Rect) String() string {
	return fmt.Sprintf("[%.3f,%.3f]x[%.3f,%.3f]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}
