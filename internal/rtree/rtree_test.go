package rtree

import (
	"testing"
	"testing/quick"

	"lmas/internal/cluster"
)

func TestRectIntersects(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{1, 1, 3, 3}, true},
		{Rect{2, 2, 3, 3}, true}, // touching counts
		{Rect{3, 3, 4, 4}, false},
		{Rect{-1, -1, 0.5, 0.5}, true},
		{Rect{0.5, 3, 1, 4}, false},
	}
	for i, c := range cases {
		if a.Intersects(c.b) != c.want {
			t.Errorf("case %d: Intersects = %v", i, !c.want)
		}
	}
}

func TestRectUnion(t *testing.T) {
	u := Rect{0, 0, 1, 1}.Union(Rect{2, -1, 3, 0.5})
	if u != (Rect{0, -1, 3, 1}) {
		t.Fatalf("union = %v", u)
	}
}

func TestBuildShape(t *testing.T) {
	es := GenerateEntries(1000, 0.01, 1)
	tr := Build(es, 16)
	wantLeaves := (1000 + 15) / 16
	if len(tr.Leaves()) != wantLeaves {
		t.Fatalf("%d leaves, want %d", len(tr.Leaves()), wantLeaves)
	}
	if tr.Height < 2 {
		t.Fatalf("height %d", tr.Height)
	}
	// Every leaf within fanout; every node box covers its contents.
	var check func(n *Node)
	var checkErr string
	check = func(n *Node) {
		if n.Leaf {
			if len(n.Entries) > 16 || len(n.Entries) == 0 {
				checkErr = "bad leaf size"
			}
			for _, e := range n.Entries {
				if !n.Box.Intersects(e.Box) || n.Box.Union(e.Box) != n.Box {
					checkErr = "leaf box does not cover entry"
				}
			}
			return
		}
		if len(n.Children) > 16 || len(n.Children) == 0 {
			checkErr = "bad internal degree"
		}
		for _, c := range n.Children {
			if n.Box.Union(c.Box) != n.Box {
				checkErr = "node box does not cover child"
			}
			check(c)
		}
	}
	check(tr.Root)
	if checkErr != "" {
		t.Fatal(checkErr)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	es := GenerateEntries(2000, 0.02, 2)
	tr := Build(es, 8)
	for _, q := range GenerateQueries(50, 0.1, 3) {
		got, _ := tr.Search(q)
		if err := validate(got, BruteForce(es, q)); err != nil {
			t.Fatalf("query %v: %v", q, err)
		}
	}
}

// TestSearchProperty: random trees and queries always agree with brute
// force.
func TestSearchProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, fanRaw, sideRaw uint8) bool {
		n := int(nRaw%500) + 1
		fanout := int(fanRaw%14) + 2
		side := float64(sideRaw) / 255.0
		es := GenerateEntries(n, 0.05, seed)
		tr := Build(es, fanout)
		for _, q := range GenerateQueries(5, side, seed+1) {
			got, _ := tr.Search(q)
			if validate(got, BruteForce(es, q)) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchVisitsFewNodesForPointQueries(t *testing.T) {
	es := GenerateEntries(4096, 0.005, 4)
	tr := Build(es, 16)
	_, visited := tr.Search(Rect{0.5, 0.5, 0.5, 0.5})
	total := len(tr.Leaves())
	if visited > total/4 {
		t.Fatalf("point query visited %d of ~%d nodes; index not selective", visited, total)
	}
}

func distCluster(asus int) *cluster.Cluster {
	p := cluster.DefaultParams()
	p.Hosts, p.ASUs = 1, asus
	return cluster.New(p)
}

func TestDistributedCorrectBothModes(t *testing.T) {
	es := GenerateEntries(2000, 0.01, 5)
	for _, mode := range []Mode{Partition, Stripe} {
		dt := NewDistributed(distCluster(4), es, 16, mode)
		for _, q := range GenerateQueries(10, 0.15, 6) {
			if _, _, err := dt.QueryOnce(q); err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
		}
	}
}

func TestStripeBoundsLatency(t *testing.T) {
	// A large range query scans many leaves: striping spreads the scan
	// over all ASUs, so its latency must beat partitioning's.
	es := GenerateEntries(8192, 0.005, 7)
	q := Rect{0.1, 0.1, 0.9, 0.9} // wide scan
	lat := func(mode Mode) float64 {
		dt := NewDistributed(distCluster(8), es, 16, mode)
		_, l, err := dt.QueryOnce(q)
		if err != nil {
			t.Fatal(err)
		}
		return l.Seconds()
	}
	pLat, sLat := lat(Partition), lat(Stripe)
	if sLat >= pLat {
		t.Fatalf("stripe latency %.6fs >= partition %.6fs for a wide scan", sLat, pLat)
	}
}

func TestPartitionWinsThroughput(t *testing.T) {
	// Many concurrent small queries: partition serves them from
	// different ASUs; stripe makes every query occupy all ASUs.
	es := GenerateEntries(8192, 0.005, 8)
	queries := GenerateQueries(64, 0.02, 9)
	qps := func(mode Mode) float64 {
		dt := NewDistributed(distCluster(8), es, 16, mode)
		_, rate, err := dt.Throughput(queries, 8)
		if err != nil {
			t.Fatal(err)
		}
		return rate
	}
	pQPS, sQPS := qps(Partition), qps(Stripe)
	if pQPS <= sQPS {
		t.Fatalf("partition qps %.0f <= stripe qps %.0f for concurrent point-ish queries", pQPS, sQPS)
	}
}

func TestThroughputValidatesResults(t *testing.T) {
	es := GenerateEntries(500, 0.01, 10)
	dt := NewDistributed(distCluster(3), es, 8, Partition)
	if _, _, err := dt.Throughput(GenerateQueries(20, 0.1, 11), 2); err != nil {
		t.Fatal(err)
	}
}

func TestReplicatedCorrect(t *testing.T) {
	es := GenerateEntries(2000, 0.01, 5)
	dt := NewReplicated(distCluster(8), es, 16, 2)
	if dt.Mode() != Replicated {
		t.Fatal("mode")
	}
	for _, q := range GenerateQueries(10, 0.15, 6) {
		if _, _, err := dt.QueryOnce(q); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReplicationServesHotSpots(t *testing.T) {
	// A hot-spot workload concentrates on one region: partition funnels
	// it to one ASU; 2-way replication must improve throughput.
	es := GenerateEntries(8192, 0.005, 7)
	hot := Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.45, MaxY: 0.45}
	queries := GenerateHotQueries(96, 0.02, hot, 0.9, 9)
	qps := func(mk func() *Distributed) float64 {
		_, rate, err := mk().Throughput(queries, 8)
		if err != nil {
			t.Fatal(err)
		}
		return rate
	}
	part := qps(func() *Distributed { return NewDistributed(distCluster(8), es, 16, Partition) })
	repl := qps(func() *Distributed { return NewReplicated(distCluster(8), es, 16, 2) })
	if repl <= 1.3*part {
		t.Fatalf("replication qps %.0f vs partition %.0f; want >1.3x on a hot spot", repl, part)
	}
}

func TestReplicationRotatesAcrossReplicas(t *testing.T) {
	es := GenerateEntries(4096, 0.005, 8)
	cl := distCluster(8)
	dt := NewReplicated(cl, es, 16, 2)
	// Fire the same point query repeatedly; both replicas must serve.
	q := Rect{0.3, 0.3, 0.31, 0.31}
	if _, _, err := dt.QueryOnce(q); err != nil {
		t.Fatal(err)
	}
	if _, _, err := dt.QueryOnce(q); err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, asu := range cl.ASUs {
		if _, recvd, _, _ := asu.NIC.Stats(); recvd > 0 {
			served++
		}
	}
	if served < 2 {
		t.Fatalf("only %d ASUs served a repeated hot query; rotation broken", served)
	}
}

func TestBadReplicasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewReplicated(distCluster(4), GenerateEntries(10, 0.1, 1), 4, 0)
}

func TestEmptyResultQuery(t *testing.T) {
	es := []Entry{{Box: Rect{0, 0, 0.1, 0.1}, ID: 1}}
	dt := NewDistributed(distCluster(2), es, 4, Stripe)
	ids, _, err := dt.QueryOnce(Rect{0.5, 0.5, 0.6, 0.6})
	if err != nil || len(ids) != 0 {
		t.Fatalf("ids=%v err=%v", ids, err)
	}
}

func TestBuildPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Build(nil, 4) },
		func() { Build([]Entry{{}}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestModeString(t *testing.T) {
	if Partition.String() != "partition" || Stripe.String() != "stripe" {
		t.Fatal("mode strings")
	}
}

func TestLeavesOrderIsSpatial(t *testing.T) {
	// STR leaves should be spatially coherent: consecutive leaves sit
	// near each other, so the average x-distance between neighboring
	// leaf centers stays small relative to the unit square.
	es := GenerateEntries(4096, 0.002, 12)
	tr := Build(es, 16)
	leaves := tr.Leaves()
	var totalDX float64
	for i := 1; i < len(leaves); i++ {
		x1, _ := leaves[i-1].Box.Center()
		x2, _ := leaves[i].Box.Center()
		d := x2 - x1
		if d < 0 {
			d = -d
		}
		totalDX += d
	}
	avg := totalDX / float64(len(leaves)-1)
	if avg > 0.3 {
		t.Fatalf("average neighbor-leaf x distance %.3f; STR packing broken", avg)
	}
}
