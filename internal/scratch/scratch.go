// Package scratch provides process-wide free lists for the transient
// scratch memory the emulation host burns through on every simulated run:
// sort scratch in records, run-decode buffers in pqueue, and merge
// frontiers in dsmsort. Pooling this memory is a pure wall-clock
// optimisation — it never touches virtual time — and it stays safe under
// the parallel experiment sweeps because sync.Pool is concurrency-safe and
// every borrower returns only memory it owns exclusively.
//
// The cardinal rule: never Put memory that anything else may still
// reference. Buffers that escape into containers, packets, or bte engines
// are owned by those structures and must not be pooled.
package scratch

import "sync"

// Pool is a typed free list of *T. Pooling pointers (rather than slice or
// struct values) keeps Get/Put allocation-free in steady state: a slice
// stored directly in a sync.Pool would be boxed into an interface on every
// Put. The zero value is ready to use.
type Pool[T any] struct{ p sync.Pool }

// Get returns a pooled *T, or a new zero T if the pool is empty.
func (p *Pool[T]) Get() *T {
	if v, ok := p.p.Get().(*T); ok {
		return v
	}
	return new(T)
}

// Put returns v to the pool; v must not be used afterwards. Callers are
// responsible for not retaining references out of *v that would pin large
// memory (truncate, don't nil, slices you intend to reuse).
func (p *Pool[T]) Put(v *T) {
	if v != nil {
		p.p.Put(v)
	}
}

// Grow returns sl resized to length n, reallocating only when the backing
// array is too small. Contents are unspecified. It is the standard helper
// for growing pooled scratch slices in place.
func Grow[T any](sl []T, n int) []T {
	if cap(sl) >= n {
		return sl[:n]
	}
	return make([]T, n)
}
