// Package scratch provides process-wide free lists for the transient
// scratch memory the emulation host burns through on every simulated run:
// sort scratch in records, run-decode buffers in pqueue, and merge
// frontiers in dsmsort. Pooling this memory is a pure wall-clock
// optimisation — it never touches virtual time — and it stays safe under
// the parallel engine's offload workers because the pool is sharded and
// contention-free: a Get or Put never blocks on another goroutine (TryLock
// probing), and a pool miss just allocates.
//
// Scratch pools are the one allocator offloaded closures may draw from on
// worker goroutines: unlike bufpool, they keep no report-visible gauges, so
// worker-side draws cannot perturb deterministic output.
//
// The cardinal rule: never Put memory that anything else may still
// reference. Buffers that escape into containers, packets, or bte engines
// are owned by those structures and must not be pooled.
package scratch

import (
	"sync"
	"sync/atomic"
)

const (
	// shardCount spreads free lists across independently locked shards so
	// offload workers draining merge or sort kernels never serialize on one
	// mutex. Power of two for mask indexing; a few shards per worker at
	// typical offload worker counts.
	shardCount = 8
	// shardCap bounds each shard's list so a burst of returns cannot pin
	// unbounded memory; overflow is dropped to the GC.
	shardCap = 64
)

// Pool is a typed free list of *T, sharded for contention-free concurrent
// use. Pooling pointers (rather than slice or struct values) keeps Get/Put
// allocation-free in steady state. The zero value is ready to use.
//
// Get and Put only ever TryLock: under contention they move to the next
// shard rather than block, so the pool adds no lock-wait to the offload
// fast path — the worst case is a fresh allocation (Get) or a dropped
// buffer (Put), never a stall.
type Pool[T any] struct {
	// tick rotates the starting shard so concurrent borrowers spread out
	// instead of convoying on shard 0.
	tick   atomic.Uint32
	shards [shardCount]poolShard[T]
}

type poolShard[T any] struct {
	mu   sync.Mutex
	free []*T
	// Pad each shard past a cache line so neighbouring shard locks do not
	// false-share.
	_ [32]byte
}

// Get returns a pooled *T, or a new zero T if every shard is empty or busy.
func (p *Pool[T]) Get() *T {
	start := p.tick.Add(1)
	for i := uint32(0); i < shardCount; i++ {
		s := &p.shards[(start+i)&(shardCount-1)]
		if !s.mu.TryLock() {
			continue
		}
		var v *T
		if n := len(s.free); n > 0 {
			v = s.free[n-1]
			s.free[n-1] = nil
			s.free = s.free[:n-1]
		}
		s.mu.Unlock()
		if v != nil {
			return v
		}
	}
	return new(T)
}

// Put returns v to the pool; v must not be used afterwards. Callers are
// responsible for not retaining references out of *v that would pin large
// memory (truncate, don't nil, slices you intend to reuse). When every
// shard is full or busy, v is dropped to the GC.
func (p *Pool[T]) Put(v *T) {
	if v == nil {
		return
	}
	start := p.tick.Add(1)
	for i := uint32(0); i < shardCount; i++ {
		s := &p.shards[(start+i)&(shardCount-1)]
		if !s.mu.TryLock() {
			continue
		}
		if len(s.free) < shardCap {
			s.free = append(s.free, v)
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
	}
}

// Pooled reports how many items are currently parked across all shards
// (approximate under concurrency; exact when quiescent). Test hook.
func (p *Pool[T]) Pooled() int {
	n := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		n += len(s.free)
		s.mu.Unlock()
	}
	return n
}

// Grow returns sl resized to length n, reallocating only when the backing
// array is too small. Contents are unspecified. It is the standard helper
// for growing pooled scratch slices in place.
func Grow[T any](sl []T, n int) []T {
	if cap(sl) >= n {
		return sl[:n]
	}
	return make([]T, n)
}
