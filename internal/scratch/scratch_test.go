package scratch

import (
	"sync"
	"testing"
)

type big struct {
	buf []int
}

func TestGetPutReuses(t *testing.T) {
	var p Pool[big]
	v := p.Get()
	v.buf = make([]int, 100)
	p.Put(v)
	// Get probes every shard, so a single-goroutine Put/Get round-trip must
	// find the parked item regardless of which shard took it.
	got := p.Get()
	if got != v {
		t.Fatalf("Get did not reuse the pooled item")
	}
	if cap(got.buf) != 100 {
		t.Fatalf("pooled item lost its scratch: cap=%d", cap(got.buf))
	}
}

func TestPutNilIsNoop(t *testing.T) {
	var p Pool[big]
	p.Put(nil)
	if n := p.Pooled(); n != 0 {
		t.Fatalf("nil Put parked something: %d", n)
	}
}

func TestPutBounded(t *testing.T) {
	var p Pool[big]
	const n = shardCount*shardCap + 500
	for i := 0; i < n; i++ {
		p.Put(new(big))
	}
	if got, max := p.Pooled(), shardCount*shardCap; got > max {
		t.Fatalf("pool retains %d items, cap is %d", got, max)
	}
}

func TestConcurrentGetPut(t *testing.T) {
	// Contention-freedom is a liveness property the race detector plus a
	// hammer loop exercises: no Get or Put may block on another goroutine.
	var p Pool[big]
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				v := p.Get()
				if v.buf == nil {
					v.buf = make([]int, 16)
				}
				v.buf[0] = i
				p.Put(v)
			}
		}()
	}
	wg.Wait()
}

func TestGrow(t *testing.T) {
	sl := make([]int, 4, 16)
	grown := Grow(sl, 10)
	if len(grown) != 10 || cap(grown) != 16 {
		t.Fatalf("Grow within cap reallocated: len=%d cap=%d", len(grown), cap(grown))
	}
	grown2 := Grow(sl, 100)
	if len(grown2) != 100 {
		t.Fatalf("Grow beyond cap: len=%d", len(grown2))
	}
}
