package sim

import (
	"fmt"
	"testing"
)

// batchRun drives one producer/consumer exchange and captures everything an
// observer could distinguish: each element's dequeue instant, the queue's
// wait stats, and the completion time. put receives the producer proc and
// the full payload; consumers pace themselves with a per-element charge so
// the queue genuinely fills and drains.
func batchRun(t *testing.T, capacity, n int, consumerPace Duration, put func(p *Proc, q *Queue[int], vs []int)) (log []string, cum Duration, high int) {
	t.Helper()
	s := New()
	q := NewQueue[int](s, "q", capacity)
	vs := make([]int, n)
	for i := range vs {
		vs[i] = i
	}
	s.Spawn("producer", func(p *Proc) {
		put(p, q, vs)
		q.Close()
	})
	s.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			log = append(log, fmt.Sprintf("%d@%d", v, s.Now()))
			p.Sleep(consumerPace)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	cum, high = q.WaitStats()
	log = append(log, fmt.Sprintf("end@%d", s.Now()))
	return log, cum, high
}

// TestPutNMatchesPutLoop: PutN must be observationally identical to a loop
// of Put — same dequeue instants, same cumulative wait, same high water —
// including when the batch overflows the queue capacity and the producer
// parks mid-batch.
func TestPutNMatchesPutLoop(t *testing.T) {
	for _, tc := range []struct{ cap, n int }{
		{4, 16},  // batch far exceeds capacity: parks mid-batch
		{16, 10}, // batch fits: single append run
		{8, 8},   // exact fit
		{1, 5},   // degenerate: every element parks
	} {
		loopLog, loopCum, loopHigh := batchRun(t, tc.cap, tc.n, 3*Microsecond,
			func(p *Proc, q *Queue[int], vs []int) {
				for _, v := range vs {
					if err := q.Put(p, v); err != nil {
						t.Errorf("put: %v", err)
					}
				}
			})
		batchLog, batchCum, batchHigh := batchRun(t, tc.cap, tc.n, 3*Microsecond,
			func(p *Proc, q *Queue[int], vs []int) {
				if err := q.PutN(p, vs); err != nil {
					t.Errorf("putn: %v", err)
				}
			})
		if len(loopLog) != len(batchLog) {
			t.Fatalf("cap=%d n=%d: log length %d vs %d", tc.cap, tc.n, len(loopLog), len(batchLog))
		}
		for i := range loopLog {
			if loopLog[i] != batchLog[i] {
				t.Errorf("cap=%d n=%d: dispatch %d: loop %q batch %q", tc.cap, tc.n, i, loopLog[i], batchLog[i])
			}
		}
		if loopCum != batchCum || loopHigh != batchHigh {
			t.Errorf("cap=%d n=%d: wait stats loop (%d, %d) vs batch (%d, %d)",
				tc.cap, tc.n, loopCum, loopHigh, batchCum, batchHigh)
		}
	}
}

// TestGetNMatchesGetLoop: a GetN-draining consumer must observe the same
// elements at the same instants, and leave the same wait stats, as a
// consumer issuing one non-blocking Get per buffered element.
func TestGetNMatchesGetLoop(t *testing.T) {
	run := func(batched bool) (log []string, cum Duration, high int) {
		s := New()
		q := NewQueue[int](s, "q", 32)
		s.Spawn("producer", func(p *Proc) {
			v := 0
			for burst := 0; burst < 8; burst++ {
				for i := 0; i < 5; i++ {
					if err := q.Put(p, v); err != nil {
						t.Errorf("put: %v", err)
					}
					v++
				}
				p.Sleep(10 * Microsecond)
			}
			q.Close()
		})
		s.Spawn("consumer", func(p *Proc) {
			if batched {
				dst := make([]int, 32)
				for {
					k, ok := q.GetN(p, dst)
					if !ok {
						return
					}
					for _, v := range dst[:k] {
						log = append(log, fmt.Sprintf("%d@%d", v, s.Now()))
					}
				}
			} else {
				for {
					v, ok := q.Get(p)
					if !ok {
						return
					}
					log = append(log, fmt.Sprintf("%d@%d", v, s.Now()))
				}
			}
		})
		if err := s.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		cum, high = q.WaitStats()
		log = append(log, fmt.Sprintf("end@%d", s.Now()))
		return
	}
	loopLog, loopCum, loopHigh := run(false)
	batchLog, batchCum, batchHigh := run(true)
	if fmt.Sprint(loopLog) != fmt.Sprint(batchLog) {
		t.Errorf("logs differ:\nloop:  %v\nbatch: %v", loopLog, batchLog)
	}
	if loopCum != batchCum || loopHigh != batchHigh {
		t.Errorf("wait stats loop (%d, %d) vs batch (%d, %d)", loopCum, loopHigh, batchCum, batchHigh)
	}
}

// TestPutNHighWater pins the satellite contract: the high-water gauge is
// updated once per append run with the post-run depth, which must equal
// what a per-element loop would have recorded.
func TestPutNHighWater(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q", 8)
	s.Spawn("producer", func(p *Proc) {
		if err := q.PutN(p, []int{1, 2, 3}); err != nil {
			t.Errorf("putn: %v", err)
		}
		if _, high := q.WaitStats(); high != 3 {
			t.Errorf("high water after first batch = %d, want 3", high)
		}
		if _, ok := q.Get(p); !ok {
			t.Error("get failed")
		}
		// Depth is 2; this batch peaks at 7.
		if err := q.PutN(p, []int{4, 5, 6, 7, 8}); err != nil {
			t.Errorf("putn: %v", err)
		}
		if _, high := q.WaitStats(); high != 7 {
			t.Errorf("high water after second batch = %d, want 7", high)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPutNClosed: closing the queue while a PutN is parked mid-batch fails
// the call with ErrClosed, keeping the elements already enqueued.
func TestPutNClosed(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q", 2)
	s.Spawn("producer", func(p *Proc) {
		if err := q.PutN(p, []int{1, 2, 3, 4}); err != ErrClosed {
			t.Errorf("putn on closing queue = %v, want ErrClosed", err)
		}
	})
	s.Spawn("closer", func(p *Proc) {
		p.Sleep(Microsecond)
		q.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 2 {
		t.Errorf("queue holds %d elements, want the 2 enqueued before close", q.Len())
	}
}

// TestProcRecycling pins the free-list contract: sequential short-lived
// procs inside one run reuse pooled shells, the pool drains when Run
// returns, and neither killed procs, daemons, nor profiled sims recycle.
func TestProcRecycling(t *testing.T) {
	s := New()
	s.Spawn("gen", func(p *Proc) {
		for i := 0; i < 10; i++ {
			s.Spawn("w", func(q *Proc) { q.Sleep(Microsecond) })
			p.Sleep(2 * Microsecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if st := s.SchedStats(); st.ProcReuses < 8 {
		t.Errorf("proc reuses = %d, want >= 8", st.ProcReuses)
	}
	if len(s.freeProcs) != 0 {
		t.Errorf("pool holds %d shells after Run, want 0 (drained)", len(s.freeProcs))
	}

	// Killed procs never pool: their queued wakeup may still reference the
	// pointer.
	s2 := New()
	blocked := s2.Spawn("blocked", func(p *Proc) { p.Sleep(Second) })
	s2.RunFor(Microsecond)
	s2.Kill(blocked)
	if len(s2.freeProcs) != 0 {
		t.Errorf("killed proc was pooled")
	}
	if st := s2.SchedStats(); st.ProcReuses != 0 {
		t.Errorf("kill path counted %d reuses", st.ProcReuses)
	}

	// Daemon spawns bypass the pool in both directions, so recorder
	// samplers can't perturb the pool state the workload observes.
	s3 := New()
	s3.Spawn("seed", func(p *Proc) { p.Sleep(Microsecond) })
	s3.RunFor(10 * Microsecond) // pool now holds the seed shell
	if len(s3.freeProcs) != 1 {
		t.Fatalf("pool = %d shells, want 1", len(s3.freeProcs))
	}
	d := s3.SpawnDaemon("sampler", func(p *Proc) {
		for {
			p.Sleep(Millisecond)
		}
	})
	if len(s3.freeProcs) != 1 {
		t.Errorf("daemon spawn consumed a pooled shell")
	}
	s3.RunFor(10 * Microsecond)
	s3.Kill(d)
	s3.Shutdown()
	if len(s3.freeProcs) != 0 {
		t.Errorf("pool not drained by Shutdown")
	}

	// Profiled sims never pool: critpath keys per-proc state by pointer.
	s4 := New()
	s4.SetProfiler(nopProfiler{})
	s4.Spawn("gen", func(p *Proc) {
		for i := 0; i < 5; i++ {
			s4.Spawn("w", func(q *Proc) { q.Sleep(Microsecond) })
			p.Sleep(2 * Microsecond)
		}
	})
	if err := s4.Run(); err != nil {
		t.Fatal(err)
	}
	if st := s4.SchedStats(); st.ProcReuses != 0 {
		t.Errorf("profiled sim reused %d shells, want 0", st.ProcReuses)
	}
}

type nopProfiler struct{}

func (nopProfiler) Charge(p *Proc, kind ChargeKind, res string, from, to Time) {}
