package sim

import "testing"

// BenchmarkEventThroughput measures raw event scheduling and dispatch.
func BenchmarkEventThroughput(b *testing.B) {
	s := New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.After(Microsecond, tick)
		}
	}
	s.After(Microsecond, tick)
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcSwitch measures a full proc park/resume round trip.
func BenchmarkProcSwitch(b *testing.B) {
	s := New()
	s.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueHandoff measures producer/consumer transfer through a
// bounded queue including the blocking round trips.
func BenchmarkQueueHandoff(b *testing.B) {
	s := New()
	q := NewQueue[int](s, "bench", 1)
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(p, i)
		}
		q.Close()
	})
	s.Spawn("consumer", func(p *Proc) {
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResourceContention measures acquire/release under three-way
// contention.
func BenchmarkResourceContention(b *testing.B) {
	s := New()
	r := NewResource(s, "cpu")
	for w := 0; w < 3; w++ {
		s.Spawn("worker", func(p *Proc) {
			for i := 0; i < b.N/3; i++ {
				r.Use(p, Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
