package sim

import "testing"

// The churn micro set models the open-loop serving scenario from ROADMAP
// item 2: far-future timers by the hundred thousand (arrival schedules,
// timeouts), tens of thousands of short-lived procs, and bursty queue
// traffic. EXPERIMENTS.md "TAB-CHURN" tracks these numbers before/after the
// hierarchical scheduler tier.

// churnSpread is a deterministic LCG over [0, horizon) used to spread timer
// deadlines without pulling math/rand into the measurement loop.
type churnSpread struct{ state uint64 }

func (c *churnSpread) next(horizon Duration) Duration {
	c.state = c.state*6364136223846793005 + 1442695040888963407
	return Duration(int64(c.state>>33) % int64(horizon))
}

// BenchmarkFarTimerChurn schedules b.N far-future timers spread across a
// 256ms horizon, then drains them all. Before the timer wheel every insert
// and removal sifts a heap of up to b.N events (O(log n) with cache misses
// throughout); with the wheel, far inserts are O(1) bucket appends and only
// near-deadline events touch the heap.
func BenchmarkFarTimerChurn(b *testing.B) {
	s := New()
	nop := func() {}
	spread := churnSpread{state: 0x9e3779b97f4a7c15}
	base := Duration(Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(base+spread.next(256*Millisecond), nop)
	}
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventThroughputLoaded is BenchmarkEventThroughput with 1<<18
// pending far-future timers parked in the scheduler: the cost of the hot
// near-term event chain must not scale with the number of idle timers.
// RunFor stops short of the far deadlines so only the chain is measured.
func BenchmarkEventThroughputLoaded(b *testing.B) {
	s := New()
	nop := func() {}
	spread := churnSpread{state: 0x2545f4914f6cdd1d}
	far := Duration(1000) * Second
	for i := 0; i < 1<<18; i++ {
		s.After(far+spread.next(Second), nop)
	}
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.After(Microsecond, tick)
		}
	}
	s.After(Microsecond, tick)
	b.ResetTimer()
	s.RunFor(Duration(b.N+2) * Microsecond)
	b.StopTimer()
	if n != b.N {
		b.Fatalf("chain ran %d of %d events", n, b.N)
	}
	s.Shutdown()
}

// BenchmarkSpawnKillChurn drives an open-loop spawn cycle: each iteration
// starts a short-lived worker proc that sleeps once and exits while the
// generator paces arrivals. With proc recycling the steady-state cycle
// reuses parked Proc shells and their goroutines instead of allocating.
func BenchmarkSpawnKillChurn(b *testing.B) {
	s := New()
	work := func(q *Proc) { q.Sleep(Microsecond) }
	b.ReportAllocs()
	b.ResetTimer()
	s.Spawn("gen", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			s.Spawn("w", work)
			p.Sleep(Microsecond)
		}
	})
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSpawnKillSteadyState is the allocation gate for proc recycling
// (see make bench-allocs): after a short warmup fills the free list, the
// spawn→run→exit cycle must be allocation-free. The warmup runs before
// ResetTimer inside the generator so the measured region is pure steady
// state.
func BenchmarkSpawnKillSteadyState(b *testing.B) {
	s := New()
	work := func(q *Proc) { q.Sleep(Microsecond) }
	b.ReportAllocs()
	s.Spawn("gen", func(p *Proc) {
		for i := 0; i < 64; i++ {
			s.Spawn("w", work)
			p.Sleep(Microsecond)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Spawn("w", work)
			p.Sleep(Microsecond)
		}
	})
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueBurstBatched is BenchmarkQueueBurstLoop on the batched
// fast path: one PutN per burst, one GetN drain per wakeup.
func BenchmarkQueueBurstBatched(b *testing.B) {
	const burst = 64
	s := New()
	q := NewQueue[int](s, "burst", burst)
	var batch [burst]int
	rounds := b.N/burst + 1
	s.Spawn("producer", func(p *Proc) {
		for r := 0; r < rounds; r++ {
			if err := q.PutN(p, batch[:]); err != nil {
				b.Errorf("put: %v", err)
				return
			}
			p.Sleep(Microsecond)
		}
		q.Close()
	})
	s.Spawn("consumer", func(p *Proc) {
		var dst [burst]int
		for {
			if _, ok := q.GetN(p, dst[:]); !ok {
				return
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueBurstLoop transfers bursts of 64 elements through a bounded
// queue one Put/Get at a time — the per-element reference point for the
// batched PutN/GetN fast path.
func BenchmarkQueueBurstLoop(b *testing.B) {
	const burst = 64
	s := New()
	q := NewQueue[int](s, "burst", burst)
	rounds := b.N/burst + 1
	s.Spawn("producer", func(p *Proc) {
		for r := 0; r < rounds; r++ {
			for i := 0; i < burst; i++ {
				if err := q.Put(p, i); err != nil {
					b.Errorf("put: %v", err)
					return
				}
			}
			p.Sleep(Microsecond)
		}
		q.Close()
	})
	s.Spawn("consumer", func(p *Proc) {
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
