package sim

// Cond is a condition variable for procs. As in the paper's emulator,
// waiters conceptually post a wakeup event at t = Forever; Signal moves one
// waiter's wakeup to the present. There is no associated mutex because the
// simulation is single-threaded: state inspected before Wait cannot change
// until the proc parks. As with sync.Cond, callers should re-check their
// predicate in a loop around Wait, because other procs may run between the
// signal and the wakeup.
type Cond struct {
	sim      *Sim
	waiters  []*Proc
	what     string
	waitWhat string // "wait: " + what, precomputed so Wait is allocation-free
}

// NewCond creates a condition variable. what describes the awaited condition
// in deadlock reports.
func NewCond(s *Sim, what string) *Cond {
	c := &Cond{sim: s, what: what, waitWhat: "wait: " + what}
	s.registerPurger(c)
	return c
}

// purge removes a killed proc from the wait list; see Sim.killProcs.
func (c *Cond) purge(p *Proc) { c.waiters = removeProc(c.waiters, p) }

// Wait parks p until another proc or event calls Signal or Broadcast.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	if pf := c.sim.profiler; pf != nil {
		from := c.sim.now
		p.park(c.waitWhat)
		pf.Charge(p, ChargeCondWait, c.what, from, c.sim.now)
		return
	}
	p.park(c.waitWhat)
}

// Signal wakes the longest-waiting proc, if any. The wakeup is delivered as
// an event at the current time, so the caller continues first.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	// Shift rather than re-slice so the backing array doesn't pin procs.
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	c.sim.resumeAt(c.sim.now, p)
}

// Broadcast wakes all waiting procs in FIFO order.
func (c *Cond) Broadcast() {
	for len(c.waiters) > 0 {
		c.Signal()
	}
}

// Waiters reports how many procs are blocked on c.
func (c *Cond) Waiters() int { return len(c.waiters) }
