package sim

// Cond is a condition variable for procs. As in the paper's emulator,
// waiters conceptually post a wakeup event at t = Forever; Signal moves one
// waiter's wakeup to the present. There is no associated mutex because the
// simulation's event spine is single-threaded: state inspected before Wait
// cannot change until the proc parks. As with sync.Cond, callers should
// re-check their predicate in a loop around Wait, because other procs may
// run between the signal and the wakeup.
type Cond struct {
	sim      *Sim
	waiters  []condWaiter
	what     string
	waitWhat string // "wait: " + what, precomputed so Wait is allocation-free
}

// condWaiter tags a parked proc with the deterministic tie-break key
// (partition, per-partition seq) assigned when it began waiting. Signal
// wakes the minimum key, so wake order is a pure function of the schedule
// history — not of slice insertion order, which purge mutates when procs
// are killed mid-wait. For unpinned sims (every proc in partition 0) the
// minimum key is always the oldest waiter, i.e. exactly the old FIFO order.
type condWaiter struct {
	p    *Proc
	part int32
	seq  uint64
}

// NewCond creates a condition variable. what describes the awaited condition
// in deadlock reports.
func NewCond(s *Sim, what string) *Cond {
	c := &Cond{sim: s, what: what, waitWhat: "wait: " + what}
	s.registerPurger(c)
	return c
}

// purge removes a killed proc from the wait list; see Sim.killProcs.
func (c *Cond) purge(p *Proc) {
	out := c.waiters[:0]
	for _, w := range c.waiters {
		if w.p != p {
			out = append(out, w)
		}
	}
	// Clear the tail so the backing array doesn't pin the removed proc.
	for i := len(out); i < len(c.waiters); i++ {
		c.waiters[i] = condWaiter{}
	}
	c.waiters = out
}

// Wait parks p until another proc or event calls Signal or Broadcast.
func (c *Cond) Wait(p *Proc) {
	s := c.sim
	s.seqs[p.part]++
	c.waiters = append(c.waiters, condWaiter{p: p, part: p.part, seq: s.seqs[p.part]})
	if pf := s.profiler; pf != nil {
		from := s.now
		p.park(c.waitWhat)
		pf.Charge(p, ChargeCondWait, c.what, from, s.now)
		return
	}
	p.park(c.waitWhat)
}

// Signal wakes the waiter with the minimum (partition, seq) key, if any.
// The wakeup is delivered as an event at the current time, so the caller
// continues first.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	min := 0
	for i := 1; i < len(c.waiters); i++ {
		w, m := c.waiters[i], c.waiters[min]
		if w.part < m.part || (w.part == m.part && w.seq < m.seq) {
			min = i
		}
	}
	p := c.waiters[min].p
	// Shift rather than re-slice so the backing array doesn't pin procs.
	copy(c.waiters[min:], c.waiters[min+1:])
	c.waiters[len(c.waiters)-1] = condWaiter{}
	c.waiters = c.waiters[:len(c.waiters)-1]
	c.sim.resumeAt(c.sim.now, p)
}

// Broadcast wakes all waiting procs in key order.
func (c *Cond) Broadcast() {
	for len(c.waiters) > 0 {
		c.Signal()
	}
}

// Waiters reports how many procs are blocked on c.
func (c *Cond) Waiters() int { return len(c.waiters) }
