package sim

import (
	"errors"
	"testing"
)

// TestDaemonDoesNotExtendRun pins the neutrality property the recorder
// depends on: a periodic daemon sampler never moves a run's virtual end
// time, and Run leaves the daemon parked instead of deadlocking on it.
func TestDaemonDoesNotExtendRun(t *testing.T) {
	s := New()
	var ticks []Time
	s.SpawnDaemon("sampler", func(p *Proc) {
		for {
			p.Sleep(3 * Millisecond)
			ticks = append(ticks, p.Now())
		}
	})
	s.Spawn("worker", func(p *Proc) {
		p.Sleep(10 * Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got, want := s.Now(), Time(10*Millisecond); got != want {
		t.Fatalf("end time %v, want %v (daemon tick extended the run)", got, want)
	}
	want := []Time{Time(3 * Millisecond), Time(6 * Millisecond), Time(9 * Millisecond)}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}

	// A later Run resumes the daemon alongside new work: its wakeup at
	// 12ms is still queued.
	s.Spawn("worker2", func(p *Proc) {
		p.Sleep(5 * Millisecond) // 10ms -> 15ms
	})
	if err := s.Run(); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if got, want := s.Now(), Time(15*Millisecond); got != want {
		t.Fatalf("end time %v, want %v", got, want)
	}
	if len(ticks) != 4 || ticks[3] != Time(12*Millisecond) {
		t.Fatalf("ticks after resume %v, want one more at 12ms", ticks)
	}
	s.Shutdown()
}

// TestKillDaemon verifies a targeted Kill removes only the daemon: later
// runs proceed without further samples and without a deadlock.
func TestKillDaemon(t *testing.T) {
	s := New()
	var ticks int
	d := s.SpawnDaemon("sampler", func(p *Proc) {
		for {
			p.Sleep(Millisecond)
			ticks++
		}
	})
	s.Spawn("worker", func(p *Proc) { p.Sleep(2 * Millisecond) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The 1ms tick fires; the 2ms tick shares the run's final instant but
	// was scheduled after the worker's wake, so the run ends first.
	if ticks != 1 {
		t.Fatalf("ticks = %d, want 1", ticks)
	}
	s.Kill(d)
	s.Kill(d) // idempotent on an exited proc
	s.Spawn("worker2", func(p *Proc) { p.Sleep(5 * Millisecond) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run after Kill: %v", err)
	}
	if ticks != 1 {
		t.Fatalf("ticks = %d after Kill, want still 1", ticks)
	}
	if got, want := s.Now(), Time(7*Millisecond); got != want {
		t.Fatalf("end time %v, want %v", got, want)
	}
}

// TestDeadlockExcludesDaemons: a genuinely stuck worker still raises a
// DeadlockError, and the error names only the worker, not the daemon.
func TestDeadlockExcludesDaemons(t *testing.T) {
	s := New()
	s.SpawnDaemon("sampler", func(p *Proc) {
		for {
			p.Sleep(Millisecond)
		}
	})
	q := NewQueue[int](s, "stuck", 1)
	s.Spawn("worker", func(p *Proc) {
		q.Get(p) // never closed, never fed
	})
	err := s.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 {
		t.Fatalf("blocked = %v, want only the worker", dl.Blocked)
	}
}
