package sim

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
)

// EngineKind selects one of the two event-loop engines.
type EngineKind int

const (
	// EngineSerial is the classic single-threaded event loop: one
	// goroutine at a time, events dispatched strictly in key order.
	EngineSerial EngineKind = iota
	// EngineParallel keeps the same deterministic event-dispatch spine but
	// offloads side-effect-free compute closures (Proc.Go) to a pool of
	// worker goroutines, joining them at conservative windowed barriers
	// whose width is the cluster's network latency (the lookahead).
	EngineParallel
)

func (k EngineKind) String() string {
	if k == EngineParallel {
		return "parallel"
	}
	return "serial"
}

// EngineSpec names an engine and its worker count. The zero value is the
// serial engine.
type EngineSpec struct {
	Kind EngineKind
	// Workers is the parallel engine's worker-goroutine count; <= 0 means
	// one per CPU (GOMAXPROCS). Ignored by the serial engine and when
	// Groups is set.
	Workers int
	// Groups, when positive, partitions the parallel engine's offload
	// execution into that many node groups: partition p's closures run on
	// the dedicated worker owning group p mod Groups, in issue order, so
	// same-window work in independent groups executes concurrently while
	// each group keeps single-owner cache affinity (the PARSIR-style
	// partitioned scheduling step). Zero (the default) uses one shared
	// worker pool. Results are byte-identical either way.
	Groups int
}

// ParseEngineSpec resolves an engine name ("", "serial", or "parallel") and
// worker count into a spec. The empty name means serial.
func ParseEngineSpec(name string, workers int) (EngineSpec, error) {
	switch name {
	case "", "serial":
		return EngineSpec{Kind: EngineSerial}, nil
	case "parallel":
		return EngineSpec{Kind: EngineParallel, Workers: workers}, nil
	}
	return EngineSpec{}, fmt.Errorf("sim: unknown engine %q (want serial or parallel)", name)
}

// Engine is a pluggable event-loop strategy. Both implementations dispatch
// events through the identical deterministic spine ordered by the
// (time, partition, per-partition seq) key, so every observable result —
// virtual timings, reports, traces, critpath attributions — is byte-identical
// across engines and worker counts. They differ only in where offloaded
// compute closures (Proc.Go) execute: inline for serial, on real worker
// goroutines for parallel.
type Engine interface {
	// Kind reports which engine this is.
	Kind() EngineKind
	// Workers reports the wall-clock worker count (1 for serial; the
	// group count for a grouped parallel engine).
	Workers() int

	// offload runs a side-effect-free closure on behalf of a proc pinned
	// to part (-1 for harness work outside any proc); the returned Job's
	// Wait blocks (wall clock only) until the closure has finished. A
	// non-nil label tags the worker's profiler samples.
	offload(part int32, lbl *OffloadLabel, fn func()) *Job
	// drain joins every outstanding offloaded closure and releases any
	// worker goroutines; the run loop calls it when the event queue
	// empties and on Shutdown.
	drain()
}

// OffloadLabel names an offloaded kernel for CPU profiles: workers running a
// labeled closure carry pprof goroutine labels {kernel, stage}, so
// -cpuprofile attributes offloaded time per kernel instead of lumping every
// worker sample together. Declare one per kernel at package level and reuse
// it — the label set is built once and shared, so labeling is allocation-free
// per offload.
type OffloadLabel struct {
	Kernel string // kernel name, e.g. "blocksort"
	Stage  string // pipeline stage or phase, e.g. "sort"

	once sync.Once
	ctx  context.Context
}

// labelCtx returns the cached pprof-labeled context for l.
func (l *OffloadLabel) labelCtx() context.Context {
	l.once.Do(func() {
		l.ctx = pprof.WithLabels(context.Background(),
			pprof.Labels("kernel", l.Kernel, "stage", l.Stage))
	})
	return l.ctx
}

// Job is a handle to an offloaded compute closure (see Proc.Go). The zero
// value is a completed job.
type Job struct {
	// done is closed by the worker when the closure returns; nil for
	// closures that ran inline (serial engine).
	done chan struct{}
}

// Wait blocks the calling goroutine until the job's closure has finished.
// Waiting consumes no virtual time: it is a wall-clock join, invisible to
// the simulation. The caller must Wait before reading anything the closure
// wrote (the join is the happens-before edge).
func (j *Job) Wait() {
	if j != nil && j.done != nil {
		<-j.done
	}
}

// Go offloads fn to the sim's engine on behalf of p and returns a handle to
// join it. fn must be a pure computation over memory the caller owns
// exclusively between Go and Wait: it must not touch the simulator, procs,
// queues, resources, telemetry, tracing, or the shared buffer pool (whose
// gauges are part of deterministic reports). Under the serial engine fn runs
// inline; under the parallel engine it runs on a worker goroutine, off the
// simulation's critical path. Either way the simulation's virtual-time
// behaviour is identical.
func (p *Proc) Go(fn func()) *Job {
	return p.sim.engine.offload(p.part, nil, fn)
}

// GoLabeled is Go with a pprof kernel label on the worker (see OffloadLabel).
// A nil label is equivalent to Go.
func (p *Proc) GoLabeled(lbl *OffloadLabel, fn func()) *Job {
	return p.sim.engine.offload(p.part, lbl, fn)
}

// Offload runs fn through the engine's worker pool outside any proc context —
// the hook harness work (input generation, output validation) shares with
// in-simulation kernels. The same purity contract as Proc.Go applies. Under
// the serial engine fn runs inline. Offload is only safe from the goroutine
// driving the simulation (the harness between or around Run calls, or the
// spine itself); it is not a general-purpose thread pool.
func (s *Sim) Offload(lbl *OffloadLabel, fn func()) *Job {
	return s.engine.offload(-1, lbl, fn)
}

// ExecChunks runs task(0..n-1) through the engine's worker pool and returns
// when all have finished. Chunk decomposition is the caller's: results must
// not depend on execution order or concurrency (each task owns its chunk
// exclusively). Under the serial engine this is a plain loop. Like Offload,
// it is only safe from the goroutine driving the simulation.
func (s *Sim) ExecChunks(lbl *OffloadLabel, n int, task func(i int)) {
	if n <= 0 {
		return
	}
	if s.engine.Kind() == EngineSerial || n == 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	jobs := make([]*Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = s.engine.offload(-1, lbl, func() { task(i) })
	}
	for _, j := range jobs {
		j.Wait()
	}
}

// serialEngine runs offloaded closures inline: Go executes fn on the spot
// and Wait is a no-op. This is the reference implementation the parallel
// engine must be byte-identical to.
type serialEngine struct{}

// completedJob is the shared handle for inline-executed closures; Wait on it
// is a no-op, so one sentinel serves every serial offload allocation-free.
var completedJob = &Job{}

func (serialEngine) Kind() EngineKind { return EngineSerial }

func (serialEngine) Workers() int { return 1 }

func (serialEngine) offload(part int32, lbl *OffloadLabel, fn func()) *Job {
	fn()
	return completedJob
}

func (serialEngine) drain() {}

// NewWithEngine creates an empty simulation at time zero using the given
// engine. New(...) is equivalent to NewWithEngine(EngineSpec{}).
func NewWithEngine(spec EngineSpec) *Sim {
	s := &Sim{
		parked: make(chan struct{}),
		procs:  make(map[*Proc]bool),
		// Partition 0 (the global/unpinned partition) always exists.
		seqs:      make([]uint64, 1),
		nowqs:     make([]nowRing, 1),
		nowActive: make([]uint64, 1),
	}
	if spec.Kind == EngineParallel {
		w := spec.Workers
		if spec.Groups > 0 {
			// One dedicated worker per group owns that group's ring.
			w = spec.Groups
		} else if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		p := &parallelEngine{sim: s, workers: w, groups: spec.Groups}
		s.engine = p
		s.par = p
	} else {
		s.engine = serialEngine{}
	}
	return s
}

// Engine returns the sim's event-loop engine.
func (s *Sim) Engine() Engine { return s.engine }

// SetLookahead sets the conservative window width used by the parallel
// engine's barriers: every offloaded closure is joined before virtual time
// advances more than d past its issue. Clusters set this to the network
// latency. Zero (the default) means closures may stay outstanding until
// their Job is waited on or the event queue drains.
func (s *Sim) SetLookahead(d Duration) {
	if d < 0 {
		d = 0
	}
	s.lookahead = d
}

// AddPartition allocates a new event-ordering partition and returns its id.
// Partitions are the deterministic tie-break domains of the event key
// (time, partition, per-partition seq): clusters allocate one per node and
// pin each node's procs to it with SpawnOn, which makes same-instant
// ordering independent of global scheduling history — the property that
// lets the serial and parallel engines (at any worker count) produce
// byte-identical results. Partition 0 is the global partition for unpinned
// work and always exists.
func (s *Sim) AddPartition() int {
	id := len(s.seqs)
	s.seqs = append(s.seqs, 0)
	s.nowqs = append(s.nowqs, nowRing{})
	if id>>6 >= len(s.nowActive) {
		s.nowActive = append(s.nowActive, 0)
	}
	return id
}

// Partitions reports the number of allocated partitions (at least 1).
func (s *Sim) Partitions() int { return len(s.seqs) }

// Partition reports the partition p is pinned to (0 = global).
func (p *Proc) Partition() int { return int(p.part) }
