package sim

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"lmas/internal/trace"
)

func TestParseEngineSpec(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
		want    EngineSpec
		wantErr bool
	}{
		{"", 0, EngineSpec{Kind: EngineSerial}, false},
		{"serial", 3, EngineSpec{Kind: EngineSerial}, false},
		{"parallel", 0, EngineSpec{Kind: EngineParallel}, false},
		{"parallel", 8, EngineSpec{Kind: EngineParallel, Workers: 8}, false},
		{"turbo", 0, EngineSpec{}, true},
	} {
		got, err := ParseEngineSpec(tc.name, tc.workers)
		if (err != nil) != tc.wantErr {
			t.Fatalf("ParseEngineSpec(%q): err = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
		if err == nil && got != tc.want {
			t.Fatalf("ParseEngineSpec(%q, %d) = %+v, want %+v", tc.name, tc.workers, got, tc.want)
		}
	}
}

// engineSpecs are the configurations every cross-engine test sweeps: the
// serial reference, the parallel engine at the worker counts the issue
// pins (1, 2, 8), and partition-group mode at 1, 2, and 4 groups.
var engineSpecs = []EngineSpec{
	{Kind: EngineSerial},
	{Kind: EngineParallel, Workers: 1},
	{Kind: EngineParallel, Workers: 2},
	{Kind: EngineParallel, Workers: 8},
	{Kind: EngineParallel, Groups: 1},
	{Kind: EngineParallel, Groups: 2},
	{Kind: EngineParallel, Groups: 4},
}

func specLabel(spec EngineSpec) string {
	if spec.Kind == EngineSerial {
		return "serial"
	}
	if spec.Groups > 0 {
		return fmt.Sprintf("parallel-g%d", spec.Groups)
	}
	return fmt.Sprintf("parallel-%d", spec.Workers)
}

// TestGroupModeWorkers: partition-group mode dedicates exactly one worker
// per group, overriding Workers.
func TestGroupModeWorkers(t *testing.T) {
	s := NewWithEngine(EngineSpec{Kind: EngineParallel, Workers: 8, Groups: 3})
	if got := s.Engine().Workers(); got != 3 {
		t.Fatalf("grouped engine Workers() = %d, want one per group (3)", got)
	}
	if got := NewWithEngine(EngineSpec{}).Engine().Workers(); got != 1 {
		t.Fatalf("serial engine Workers() = %d, want 1", got)
	}
}

// TestHarnessOffload: Sim.Offload and Sim.ExecChunks — the seam harness work
// (input generation, validation) runs through — complete all tasks exactly
// once under every engine, including partition-group mode where harness work
// (part = -1) is spread round-robin across group rings.
func TestHarnessOffload(t *testing.T) {
	lbl := &OffloadLabel{Kernel: "testkern", Stage: "harness"}
	for _, spec := range engineSpecs {
		t.Run(specLabel(spec), func(t *testing.T) {
			s := NewWithEngine(spec)
			var x int
			s.Offload(lbl, func() { x = 7 }).Wait()
			if x != 7 {
				t.Fatalf("Offload result = %d after Wait, want 7", x)
			}
			const n = 100
			out := make([]int, n)
			s.ExecChunks(lbl, n, func(i int) { out[i] = i * i })
			for i, v := range out {
				if v != i*i {
					t.Fatalf("ExecChunks task %d wrote %d, want %d", i, v, i*i)
				}
			}
			s.Shutdown()
		})
	}
}

// TestGoWaitBothEngines: an offloaded closure's writes are visible after
// Wait, Wait consumes no virtual time, and the engine reports its kind.
func TestGoWaitBothEngines(t *testing.T) {
	for _, spec := range engineSpecs {
		t.Run(specLabel(spec), func(t *testing.T) {
			s := NewWithEngine(spec)
			if got := s.Engine().Kind(); got != spec.Kind {
				t.Fatalf("Engine().Kind() = %v, want %v", got, spec.Kind)
			}
			var result int
			s.Spawn("p", func(p *Proc) {
				job := p.Go(func() { result = 41 + 1 })
				before := p.Now()
				job.Wait()
				if Duration(p.Now()-before) != 0 {
					t.Error("Wait consumed virtual time")
				}
				if result != 42 {
					t.Errorf("offload result = %d after Wait, want 42", result)
				}
			})
			if err := s.Run(); err != nil {
				t.Fatal(err)
			}
			if result != 42 {
				t.Fatalf("result = %d, want 42", result)
			}
		})
	}
}

// TestParallelBarrierJoinsOffloads: with a lookahead set, an offloaded
// closure that is never waited on is still joined before virtual time
// advances past the window, so post-window events observe its writes.
func TestParallelBarrierJoinsOffloads(t *testing.T) {
	s := NewWithEngine(EngineSpec{Kind: EngineParallel, Workers: 2})
	s.SetLookahead(Millisecond)
	var flag atomic.Bool
	s.Spawn("issuer", func(p *Proc) {
		p.Go(func() {
			time.Sleep(20 * time.Millisecond) // wall clock: outlive the window
			flag.Store(true)
		})
		p.Sleep(10 * Millisecond) // virtual: far beyond the 1ms window
		if !flag.Load() {
			t.Error("event past the lookahead window ran before the offload was joined")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDrainsOffloads: Shutdown joins outstanding closures and
// releases the worker goroutines, so nothing races the caller afterwards.
func TestShutdownDrainsOffloads(t *testing.T) {
	s := NewWithEngine(EngineSpec{Kind: EngineParallel, Workers: 2})
	var flag atomic.Bool
	s.Spawn("issuer", func(p *Proc) {
		p.Go(func() {
			time.Sleep(5 * time.Millisecond)
			flag.Store(true)
		})
		p.Sleep(Duration(Forever))
	})
	s.RunFor(Second)
	s.Shutdown()
	if !flag.Load() {
		t.Fatal("Shutdown returned with an offloaded closure still outstanding")
	}
}

// TestSameInstantOrderAcrossPartitions: events at one instant dispatch in
// ascending partition order regardless of spawn order, including partitions
// past the first 64-bit word of the active bitmap.
func TestSameInstantOrderAcrossPartitions(t *testing.T) {
	s := New()
	const n = 70
	parts := make([]int, n)
	for i := range parts {
		parts[i] = s.AddPartition()
	}
	if s.Partitions() != n+1 {
		t.Fatalf("Partitions = %d, want %d", s.Partitions(), n+1)
	}
	var order []int
	// Spawn in reverse partition order: dispatch order must not follow it.
	for i := n - 1; i >= 0; i-- {
		part := parts[i]
		s.SpawnOn(part, fmt.Sprintf("p%d", part), func(p *Proc) {
			if p.Partition() != part {
				t.Errorf("proc on partition %d, want %d", p.Partition(), part)
			}
			order = append(order, part)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("ran %d procs, want %d", len(order), n)
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("same-instant dispatch order %v not ascending by partition", order)
		}
	}
}

// randomTopology runs a seeded random mesh of pinned producers and consumers
// exchanging tokens through bounded queues and contending for per-node
// resources, with a pure offload per token. It returns the ordered event log
// and the final virtual time — the observables the engines must agree on.
func randomTopology(t *testing.T, spec EngineSpec, seed int64) ([]string, Time) {
	t.Helper()
	s := NewWithEngine(spec)
	s.SetLookahead(Millisecond)
	rng := rand.New(rand.NewSource(seed))
	nodes := 2 + rng.Intn(4)
	parts := make([]int, nodes)
	qs := make([]*Queue[int], nodes)
	rs := make([]*Resource, nodes)
	for i := 0; i < nodes; i++ {
		parts[i] = s.AddPartition()
		qs[i] = NewQueue[int](s, fmt.Sprintf("q%d", i), 1+rng.Intn(3))
		rs[i] = NewResource(s, fmt.Sprintf("r%d", i))
	}
	var log []string
	record := func(p *Proc, what string) {
		log = append(log, fmt.Sprintf("%d %s %s", p.Now(), p.Name(), what))
	}
	for i := 0; i < nodes; i++ {
		i := i
		n := 5 + rng.Intn(10)
		// Pre-draw the random delays so rng consumption order cannot
		// depend on scheduling (it would not anyway — the spine is
		// deterministic — but the test should not assume what it checks).
		delays := make([]Duration, n)
		for j := range delays {
			delays[j] = Duration(rng.Intn(900)+1) * Microsecond
		}
		s.SpawnOn(parts[i], fmt.Sprintf("prod%d", i), func(p *Proc) {
			for j := 0; j < n; j++ {
				p.Sleep(delays[j])
				rs[i].Use(p, 100*Microsecond)
				if err := qs[i].Put(p, j); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				record(p, fmt.Sprintf("put%d", j))
				x := j
				job := p.Go(func() { x = x*x + 1 })
				p.Sleep(50 * Microsecond)
				job.Wait()
				if x != j*j+1 {
					t.Errorf("offload computed %d for %d", x, j)
				}
			}
			qs[i].Close()
		})
		next := (i + 1) % nodes
		s.SpawnOn(parts[next], fmt.Sprintf("cons%d", i), func(p *Proc) {
			for {
				v, ok := qs[i].Get(p)
				if !ok {
					record(p, "done")
					return
				}
				rs[next].Use(p, 200*Microsecond)
				record(p, fmt.Sprintf("got%d", v))
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return log, s.Now()
}

// TestDeterministicAcrossEngines is the randomized differential property
// test: for a sweep of seeded random topologies, the serial engine and the
// parallel engine at 1, 2, and 8 workers must produce identical event logs
// and final times.
func TestDeterministicAcrossEngines(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		refLog, refEnd := randomTopology(t, EngineSpec{Kind: EngineSerial}, seed)
		if len(refLog) == 0 {
			t.Fatalf("seed %d: empty reference log", seed)
		}
		for _, spec := range engineSpecs[1:] {
			log, end := randomTopology(t, spec, seed)
			if end != refEnd {
				t.Fatalf("seed %d %s: ended at %v, serial at %v",
					seed, specLabel(spec), end, refEnd)
			}
			if len(log) != len(refLog) {
				t.Fatalf("seed %d %s: %d events, serial %d",
					seed, specLabel(spec), len(log), len(refLog))
			}
			for i := range log {
				if log[i] != refLog[i] {
					t.Fatalf("seed %d %s: event %d = %q, serial %q",
						seed, specLabel(spec), i, log[i], refLog[i])
				}
			}
		}
	}
}

// TestTraceNeutralAcrossEngines: attaching a tracer under the parallel
// engine must record exactly the serial engine's events at the same virtual
// instants (satellite: tracer attach stays virtual-time neutral).
func TestTraceNeutralAcrossEngines(t *testing.T) {
	run := func(spec EngineSpec) (int, Time) {
		s := NewWithEngine(spec)
		s.SetLookahead(Millisecond)
		sink := trace.New()
		s.SetTracer(sink)
		r := NewResource(s, "cpu")
		q := NewQueue[int](s, "q", 2)
		s.SpawnOn(s.AddPartition(), "producer", func(p *Proc) {
			for i := 0; i < 10; i++ {
				r.Use(p, Millisecond)
				v := i
				job := p.Go(func() { v *= 2 })
				job.Wait()
				if err := q.Put(p, v); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
			q.Close()
		})
		s.SpawnOn(s.AddPartition(), "consumer", func(p *Proc) {
			for {
				if _, ok := q.Get(p); !ok {
					return
				}
				p.Sleep(2 * Millisecond)
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return sink.Events(), s.Now()
	}
	refEvents, refEnd := run(EngineSpec{Kind: EngineSerial})
	for _, spec := range engineSpecs[1:] {
		events, end := run(spec)
		if events != refEvents || end != refEnd {
			t.Fatalf("%s: %d events ending %v, serial %d ending %v",
				specLabel(spec), events, end, refEvents, refEnd)
		}
	}
}
