package sim

import (
	"runtime"
	"sync/atomic"
)

// parallelEngine runs offloaded closures (Proc.Go) on a pool of worker
// goroutines while the deterministic event-dispatch spine — identical to
// the serial engine's — advances the simulation. Determinism is preserved
// by construction: closures are side-effect-free with respect to simulation
// state, so only wall-clock timing changes with the worker count.
//
// The engine is conservative in the PDES sense: virtual time never advances
// more than one lookahead window (the cluster's network latency) past an
// outstanding closure. The run loop calls maybeBarrier before each time
// advance; crossing the window boundary joins every outstanding closure.
// Since a closure's results can only re-enter the simulation through a
// device-model action at least one network latency after its issue site
// observed them, the barrier guarantees workers are never racing the spine
// when their output becomes visible.
type parallelEngine struct {
	sim     *Sim
	workers int

	// work feeds the worker pool; nil until the first offload (runs that
	// never offload never spin up goroutines).
	work chan *parallelJob
	// outstanding counts issued-but-unfinished closures. Incremented on
	// the spine, decremented by workers; the spine's barrier fast path
	// reads it to skip the join when nothing is in flight.
	outstanding atomic.Int64

	// windowEnd is the virtual instant the current barrier window closes
	// at; advancing past it joins all outstanding closures.
	windowEnd Time
}

type parallelJob struct {
	fn   func()
	done chan struct{}
}

func (e *parallelEngine) Kind() EngineKind { return EngineParallel }

func (e *parallelEngine) Workers() int { return e.workers }

func (e *parallelEngine) offload(part int32, fn func()) *Job {
	if e.work == nil {
		e.work = make(chan *parallelJob, 4*e.workers)
		for i := 0; i < e.workers; i++ {
			go worker(e.work, &e.outstanding)
		}
	}
	j := &parallelJob{fn: fn, done: make(chan struct{})}
	e.outstanding.Add(1)
	e.work <- j
	return &Job{done: j.done}
}

func worker(work chan *parallelJob, outstanding *atomic.Int64) {
	for j := range work {
		j.fn()
		close(j.done)
		outstanding.Add(-1)
	}
}

// maybeBarrier is called by the run loop just before virtual time advances
// to t. Crossing the current window joins all outstanding closures and
// opens a new window [t, t+lookahead].
func (e *parallelEngine) maybeBarrier(t Time) {
	if t <= e.windowEnd {
		return
	}
	e.waitIdle()
	e.windowEnd = t.Add(e.sim.lookahead)
}

// waitIdle blocks until no closures are outstanding. Only the spine calls
// it, and only the spine increments outstanding, so a zero read is stable.
func (e *parallelEngine) waitIdle() {
	for e.outstanding.Load() > 0 {
		// Joins are rare (window crossings) and the tail is short (one
		// packet's sort); a yield loop beats condvar bookkeeping on the
		// offload fast path.
		runtime.Gosched()
	}
}

// drain joins every outstanding closure and releases the worker pool. The
// run loop calls it when the event queue empties, and Shutdown calls it
// before killing procs; a later offload simply spins the pool up again.
func (e *parallelEngine) drain() {
	e.waitIdle()
	if e.work != nil {
		close(e.work)
		e.work = nil
	}
	e.windowEnd = 0
}
