package sim

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
)

// parallelEngine runs offloaded closures (Proc.Go) on worker goroutines
// while the deterministic event-dispatch spine — identical to the serial
// engine's — advances the simulation. Determinism is preserved by
// construction: closures are side-effect-free with respect to simulation
// state, so only wall-clock timing changes with the worker count.
//
// The engine is conservative in the PDES sense: virtual time never advances
// more than one lookahead window (the cluster's network latency) past an
// outstanding closure. The run loop calls maybeBarrier before each time
// advance; crossing the window boundary joins every outstanding closure.
// Since a closure's results can only re-enter the simulation through a
// device-model action at least one network latency after its issue site
// observed them, the barrier guarantees workers are never racing the spine
// when their output becomes visible.
//
// Two scheduling modes share the barrier machinery:
//
//   - Shared pool (groups == 0): closures from any partition feed one work
//     channel drained by `workers` goroutines. Maximum throughput when
//     kernels are uniform.
//   - Partition groups (groups > 0): partition p's closures go to the ring
//     owned by group p mod groups, each drained by a single dedicated
//     worker in issue order. Same-window work in independent groups runs
//     concurrently, and a group's closures never migrate between OS
//     threads mid-phase — the cache-affinity/partitioned-scheduling shape
//     PARSIR uses for large partition counts. Harness offloads (part = -1)
//     are spread round-robin across groups.
//
// Either mode is invisible to the simulation: the dispatch spine stays
// serial and deterministic, so results are byte-identical across modes,
// worker counts, and group counts.
type parallelEngine struct {
	sim     *Sim
	workers int
	// groups > 0 enables per-group rings (see above); 0 = shared pool.
	groups int

	// work feeds the shared worker pool; nil until the first offload (runs
	// that never offload never spin up goroutines). Unused in group mode.
	work chan *parallelJob
	// groupWork holds one ring per group; nil until the first offload.
	// Unused in shared-pool mode.
	groupWork []chan *parallelJob
	// spread round-robins harness offloads (part = -1) across groups.
	spread uint32
	// outstanding counts issued-but-unfinished closures. Incremented on
	// the spine, decremented by workers; the spine's barrier fast path
	// reads it to skip the join when nothing is in flight.
	outstanding atomic.Int64

	// windowEnd is the virtual instant the current barrier window closes
	// at; advancing past it joins all outstanding closures.
	windowEnd Time
}

type parallelJob struct {
	fn   func()
	lbl  *OffloadLabel
	done chan struct{}
}

func (e *parallelEngine) Kind() EngineKind { return EngineParallel }

func (e *parallelEngine) Workers() int { return e.workers }

func (e *parallelEngine) offload(part int32, lbl *OffloadLabel, fn func()) *Job {
	j := &parallelJob{fn: fn, lbl: lbl, done: make(chan struct{})}
	e.outstanding.Add(1)
	if e.groups > 0 {
		if e.groupWork == nil {
			e.groupWork = make([]chan *parallelJob, e.groups)
			for g := range e.groupWork {
				e.groupWork[g] = make(chan *parallelJob, 8)
				go worker(e.groupWork[g], &e.outstanding)
			}
		}
		g := 0
		if part >= 0 {
			g = int(part) % e.groups
		} else {
			g = int(e.spread) % e.groups
			e.spread++
		}
		e.groupWork[g] <- j
		return &Job{done: j.done}
	}
	if e.work == nil {
		e.work = make(chan *parallelJob, 4*e.workers)
		for i := 0; i < e.workers; i++ {
			go worker(e.work, &e.outstanding)
		}
	}
	e.work <- j
	return &Job{done: j.done}
}

func worker(work chan *parallelJob, outstanding *atomic.Int64) {
	for j := range work {
		if j.lbl != nil {
			// Tag this worker's profiler samples with the kernel label
			// for the closure's duration, then drop back to unlabeled.
			// SetGoroutineLabels is a pointer store — cheap enough for
			// the per-packet offload path.
			pprof.SetGoroutineLabels(j.lbl.labelCtx())
			j.fn()
			pprof.SetGoroutineLabels(context.Background())
		} else {
			j.fn()
		}
		close(j.done)
		outstanding.Add(-1)
	}
}

// maybeBarrier is called by the run loop just before virtual time advances
// to t. Crossing the current window joins all outstanding closures and
// opens a new window [t, t+lookahead].
func (e *parallelEngine) maybeBarrier(t Time) {
	if t <= e.windowEnd {
		return
	}
	e.waitIdle()
	e.windowEnd = t.Add(e.sim.lookahead)
}

// waitIdle blocks until no closures are outstanding. Only the spine calls
// it, and only the spine increments outstanding, so a zero read is stable.
func (e *parallelEngine) waitIdle() {
	for e.outstanding.Load() > 0 {
		// Joins are rare (window crossings) and the tail is short (one
		// packet's sort); a yield loop beats condvar bookkeeping on the
		// offload fast path.
		runtime.Gosched()
	}
}

// drain joins every outstanding closure and releases the worker pool. The
// run loop calls it when the event queue empties, and Shutdown calls it
// before killing procs; a later offload simply spins the pool up again.
func (e *parallelEngine) drain() {
	e.waitIdle()
	if e.work != nil {
		close(e.work)
		e.work = nil
	}
	for _, w := range e.groupWork {
		close(w)
	}
	e.groupWork = nil
	e.windowEnd = 0
}
