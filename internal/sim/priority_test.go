package sim

import (
	"fmt"
	"testing"
)

func TestHighPriorityJumpsQueue(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu")
	var order []string
	hold := func(name string, d Duration, high bool) {
		s.Spawn(name, func(p *Proc) {
			if high {
				r.AcquireHigh(p)
			} else {
				r.Acquire(p)
			}
			order = append(order, name)
			p.Sleep(d)
			r.Release(p)
		})
	}
	hold("first", 10*Millisecond, false)
	s.Spawn("later", func(p *Proc) {
		p.Sleep(Millisecond) // let "first" take the CPU and others queue
		hold("low2", Millisecond, false)
		hold("high", Millisecond, true)
	})
	hold("low1", Millisecond, false)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[first high low1 low2]"
	if fmt.Sprint(order) != want {
		t.Fatalf("order %v, want %v (high jumps all queued lows)", order, want)
	}
}

func TestHighPriorityFIFOWithinClass(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu")
	var order []string
	s.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(10 * Millisecond)
		r.Release(p)
	})
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn(fmt.Sprintf("h%d", i), func(p *Proc) {
			p.Sleep(Duration(i+1) * Millisecond)
			r.AcquireHigh(p)
			order = append(order, fmt.Sprintf("h%d", i))
			r.Release(p)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[h0 h1 h2]" {
		t.Fatalf("high-priority arrivals served out of order: %v", order)
	}
}

func TestNoBargingOnRelease(t *testing.T) {
	// A proc that calls Acquire at the same instant as a Release must not
	// steal the resource from an already-queued waiter.
	s := New()
	r := NewResource(s, "cpu")
	var order []string
	s.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(10 * Millisecond)
		r.Release(p)
	})
	s.Spawn("waiter", func(p *Proc) {
		p.Sleep(Millisecond)
		r.Acquire(p)
		order = append(order, "waiter")
		r.Release(p)
	})
	s.Spawn("barger", func(p *Proc) {
		p.Sleep(10 * Millisecond) // arrives exactly at release time
		r.Acquire(p)
		order = append(order, "barger")
		r.Release(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[waiter barger]" {
		t.Fatalf("order %v; queued waiter must beat same-instant arrival", order)
	}
}

func TestUseHighAccounting(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu")
	s.Spawn("a", func(p *Proc) { r.Use(p, Millisecond) })
	s.Spawn("b", func(p *Proc) { r.UseHigh(p, Millisecond) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	total, prio := r.Holds()
	if total != 2 || prio != 1 {
		t.Fatalf("holds = %d/%d, want 2/1", total, prio)
	}
	if r.Busy() != 2*Millisecond {
		t.Fatalf("busy = %v", r.Busy())
	}
}

func TestPreemptionPointLatency(t *testing.T) {
	// A long computation split into quanta lets a high-priority request
	// in at the next boundary: its waiting time is bounded by the
	// quantum, not the whole computation.
	run := func(quantum Duration) Duration {
		s := New()
		r := NewResource(s, "cpu")
		s.Spawn("functor", func(p *Proc) {
			remaining := 100 * Millisecond
			for remaining > 0 {
				q := quantum
				if q > remaining {
					q = remaining
				}
				r.Use(p, q)
				remaining -= q
			}
		})
		var latency Duration
		s.Spawn("request", func(p *Proc) {
			p.Sleep(Millisecond)
			start := p.Now()
			r.UseHigh(p, 100*Microsecond)
			latency = Duration(p.Now()-start) - 100*Microsecond
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return latency
	}
	monolithic := run(100 * Millisecond)
	chunked := run(Millisecond)
	if monolithic < 90*Millisecond {
		t.Fatalf("monolithic hold should starve the request: waited %v", monolithic)
	}
	if chunked > 2*Millisecond {
		t.Fatalf("chunked hold should bound waiting to ~1 quantum: waited %v", chunked)
	}
}
