package sim

// ChargeKind classifies an interval of virtual time charged to a proc by the
// kernel or a device model built on it: what the proc was doing (or waiting
// for) during the interval. The kinds mirror the paper's bottleneck taxonomy
// (host CPU vs ASU CPU vs disk vs network, Section 2.2): service kinds are
// time a resource spent working for the proc, wait kinds are time the proc
// spent queued behind other work or blocked on a condition.
type ChargeKind uint8

const (
	// ChargeCPU is processor service time: a completed hold on a CPU
	// resource doing this proc's computation.
	ChargeCPU ChargeKind = iota
	// ChargeDisk is storage service time: the interval a disk transfer
	// (including queueing on the device timeline) blocked the proc.
	ChargeDisk
	// ChargeNet is interconnect service time: the interval a network
	// transfer (including queueing on the endpoint timelines) blocked
	// the proc.
	ChargeNet
	// ChargeQueueWait is time spent queued for exclusive use of a
	// Resource behind other holders (CPU contention).
	ChargeQueueWait
	// ChargeCondWait is time parked on a condition variable — in the
	// pipeline, backpressure from a full downstream queue or starvation
	// on an empty upstream one.
	ChargeCondWait

	// NumChargeKinds is the number of distinct charge kinds.
	NumChargeKinds = 5
)

func (k ChargeKind) String() string {
	switch k {
	case ChargeCPU:
		return "cpu"
	case ChargeDisk:
		return "disk"
	case ChargeNet:
		return "net"
	case ChargeQueueWait:
		return "queue-wait"
	case ChargeCondWait:
		return "cond-wait"
	}
	return "unknown"
}

// Profiler receives latency attribution charges from the kernel and the
// device models layered on it. Each charge says: proc p was blocked by (or
// served by) resource res for [from, to) of virtual time, for reason kind.
// Like the trace sink, a profiler is a pure observer — implementations must
// not call back into the simulation, and attaching one never changes
// virtual-time behaviour. Unprofiled runs pay one nil check per site.
type Profiler interface {
	Charge(p *Proc, kind ChargeKind, res string, from, to Time)
}

// SetProfiler attaches a latency-attribution profiler; nil detaches.
func (s *Sim) SetProfiler(pf Profiler) { s.profiler = pf }

// Profiler returns the attached profiler, or nil. Device models layered on
// the sim (disk, netsim) charge their blocking intervals through it.
func (s *Sim) Profiler() Profiler { return s.profiler }
