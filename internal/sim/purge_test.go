package sim

import (
	"fmt"
	"testing"

	"lmas/internal/trace"
)

// TestShutdownPurgesResourceWaiters: killing procs parked in Acquire must
// remove them from the resource's wait lists, not leave dangling pointers.
func TestShutdownPurgesResourceWaiters(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu")
	s.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(Duration(Forever)) // hold the resource forever
		r.Release(p)
	})
	s.Spawn("waiter-low", func(p *Proc) { r.Use(p, Second) })
	s.Spawn("waiter-high", func(p *Proc) { r.UseHigh(p, Second) })
	s.RunFor(Second)
	if r.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d before shutdown, want 2", r.QueueLen())
	}
	s.Shutdown()
	if r.QueueLen() != 0 {
		t.Fatalf("QueueLen = %d after shutdown, want 0", r.QueueLen())
	}
	if r.InUse() {
		t.Fatal("resource still owned by a killed proc")
	}
}

// TestDeadlockRunPurgesWaiters: the deadlock path through Run also kills
// procs and must purge them the same way.
func TestDeadlockRunPurgesWaiters(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu")
	c := NewCond(s, "never")
	s.Spawn("owner", func(p *Proc) {
		r.Acquire(p)
		c.Wait(p) // never signalled: deadlock
		r.Release(p)
	})
	s.Spawn("waiter", func(p *Proc) { r.Use(p, Second) })
	err := s.Run()
	if err == nil {
		t.Fatal("expected DeadlockError")
	}
	if r.QueueLen() != 0 || r.InUse() {
		t.Fatalf("resource not purged: queue=%d inUse=%v", r.QueueLen(), r.InUse())
	}
	if c.Waiters() != 0 {
		t.Fatalf("cond holds %d waiters after deadlock kill", c.Waiters())
	}
}

// TestShutdownPurgesCondAndQueueWaiters: queue waiters block on internal
// conds; a shutdown must leave those empty too.
func TestShutdownPurgesCondAndQueueWaiters(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q", 1)
	s.Spawn("getter", func(p *Proc) {
		q.Get(p) // empty queue, never fed
	})
	s.Spawn("putter", func(p *Proc) {
		q.Put(p, 1) // fills the queue
		q.Put(p, 2) // blocks: queue full, never drained by a live getter?
	})
	// Run a moment: getter takes 1, putter puts 2, both may actually
	// complete; use a cond-only blocker for the guaranteed-parked case.
	c := NewCond(s, "forever")
	s.Spawn("cond-waiter", func(p *Proc) { c.Wait(p) })
	s.RunFor(Second)
	s.Shutdown()
	if c.Waiters() != 0 {
		t.Fatalf("cond waiters = %d after shutdown, want 0", c.Waiters())
	}
	if got := q.notEmpty.Waiters() + q.notFull.Waiters(); got != 0 {
		t.Fatalf("queue cond waiters = %d after shutdown, want 0", got)
	}
}

// TestShutdownAccountsPartialHold: a proc killed while holding a resource
// contributes its partial hold to Busy, as a Release at that instant would —
// and, symmetrically, elements still buffered in a queue contribute the wait
// they have accrued so far to WaitStats.
func TestShutdownAccountsPartialHold(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu")
	q := NewQueue[int](s, "q", 2)
	s.Spawn("holder", func(p *Proc) { r.Use(p, 10*Second) })
	s.Spawn("putter", func(p *Proc) { q.Put(p, 1) })
	s.RunFor(3 * Second)
	s.Shutdown()
	if got := r.Busy(); got != 3*Second {
		t.Fatalf("Busy = %v after mid-hold shutdown, want 3s", got)
	}
	if w, _ := q.WaitStats(); w != 3*Second {
		t.Fatalf("WaitStats = %v for an element buffered across shutdown, want 3s", w)
	}
}

// TestWaitStatsCountsBufferedResidual: WaitStats blends the dequeued
// elements' accumulated wait with the residual of elements still enqueued,
// so a run cut short by RunFor/Shutdown conserves total queue time; a
// drained queue is unaffected (zero residual).
func TestWaitStatsCountsBufferedResidual(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q", 4)
	s.Spawn("putter", func(p *Proc) {
		q.Put(p, 1) // t=0
		p.Sleep(Second)
		q.Put(p, 2) // t=1s
	})
	s.Spawn("getter", func(p *Proc) {
		p.Sleep(2 * Second)
		q.Get(p) // dequeues element 1 after 2s buffered
	})
	s.RunFor(3 * Second)
	// Element 1: dequeued, waited 2s. Element 2: still buffered, 1s->3s.
	if w, hw := q.WaitStats(); w != 4*Second || hw != 2 {
		t.Fatalf("WaitStats = %v, %d mid-run; want 4s, 2", w, hw)
	}
	s.Shutdown()
	// Drained case: a fresh queue fully consumed reports only cumWait.
	s2 := New()
	q2 := NewQueue[int](s2, "q2", 1)
	s2.Spawn("putter", func(p *Proc) { q2.Put(p, 1); q2.Close() })
	s2.Spawn("getter", func(p *Proc) {
		p.Sleep(Second)
		q2.Get(p)
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if w, _ := q2.WaitStats(); w != Second {
		t.Fatalf("drained queue WaitStats = %v, want 1s", w)
	}
}

// TestCondWakeOrderFollowsKey pins satellite 2: Signal wakes the waiter
// with the minimum (partition, seq) key — a pure function of the schedule
// history — not the waiter that happens to be first in the slice.
func TestCondWakeOrderFollowsKey(t *testing.T) {
	s := New()
	c := NewCond(s, "gate")
	p1, p2, p3 := s.AddPartition(), s.AddPartition(), s.AddPartition()
	var order []string
	wait := func(part int, name string, delay Duration) {
		s.SpawnOn(part, name, func(p *Proc) {
			p.Sleep(delay)
			c.Wait(p)
			order = append(order, name)
		})
	}
	// Arrival (= insertion) order is partition 3, 2, 1; wake order must be
	// key order 1, 2, 3.
	wait(p3, "on3", 0)
	wait(p2, "on2", Millisecond)
	wait(p1, "on1", 2*Millisecond)
	s.Spawn("sig", func(p *Proc) {
		p.Sleep(3 * Millisecond)
		c.Signal()
		p.Sleep(Millisecond)
		c.Broadcast()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[on1 on2 on3]" {
		t.Fatalf("wake order %v, want key order [on1 on2 on3]", order)
	}
}

// TestCondWakeFIFOWhenUnpinned: with every proc in partition 0 the minimum
// key is the oldest waiter, i.e. exactly the historical FIFO order — the
// compatibility property that keeps unpinned sims bit-identical to the old
// global-seq kernel.
func TestCondWakeFIFOWhenUnpinned(t *testing.T) {
	s := New()
	c := NewCond(s, "gate")
	var order []string
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("w%d", i)
		delay := Duration(i) * Millisecond
		s.Spawn(name, func(p *Proc) {
			p.Sleep(delay)
			c.Wait(p)
			order = append(order, name)
		})
	}
	s.Spawn("sig", func(p *Proc) {
		p.Sleep(10 * Millisecond)
		c.Broadcast()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[w0 w1 w2 w3]" {
		t.Fatalf("wake order %v, want FIFO [w0 w1 w2 w3]", order)
	}
}

// TestTraceParkSpansBalanced: a traced run emits balanced begin/end park
// spans on each proc track and lifecycle instants.
func TestTraceParkSpansBalanced(t *testing.T) {
	s := New()
	sink := trace.New()
	s.SetTracer(sink)
	r := NewResource(s, "node.cpu")
	for i := 0; i < 3; i++ {
		s.Spawn("worker", func(p *Proc) {
			r.Use(p, Second)
			p.Sleep(Second)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.Events() == 0 {
		t.Fatal("traced run recorded no events")
	}
	// 3 proc tracks plus the shared resource track.
	if sink.Tracks() != 4 {
		t.Fatalf("Tracks = %d, want 4", sink.Tracks())
	}
}

// TestUntracedSimIdenticalTiming: attaching no tracer must not change any
// virtual timing (the nil check is the only cost).
func TestUntracedSimIdenticalTiming(t *testing.T) {
	run := func(sink *trace.Sink) Time {
		s := New()
		s.SetTracer(sink)
		r := NewResource(s, "cpu")
		q := NewQueue[int](s, "q", 2)
		s.Spawn("producer", func(p *Proc) {
			for i := 0; i < 10; i++ {
				r.Use(p, Millisecond)
				q.Put(p, i)
			}
			q.Close()
		})
		s.Spawn("consumer", func(p *Proc) {
			for {
				if _, ok := q.Get(p); !ok {
					return
				}
				p.Sleep(2 * Millisecond)
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now()
	}
	if a, b := run(nil), run(trace.New()); a != b {
		t.Fatalf("traced run ended at %v, untraced at %v", b, a)
	}
}
