package sim

import (
	"testing"

	"lmas/internal/trace"
)

// TestShutdownPurgesResourceWaiters: killing procs parked in Acquire must
// remove them from the resource's wait lists, not leave dangling pointers.
func TestShutdownPurgesResourceWaiters(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu")
	s.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(Duration(Forever)) // hold the resource forever
		r.Release(p)
	})
	s.Spawn("waiter-low", func(p *Proc) { r.Use(p, Second) })
	s.Spawn("waiter-high", func(p *Proc) { r.UseHigh(p, Second) })
	s.RunFor(Second)
	if r.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d before shutdown, want 2", r.QueueLen())
	}
	s.Shutdown()
	if r.QueueLen() != 0 {
		t.Fatalf("QueueLen = %d after shutdown, want 0", r.QueueLen())
	}
	if r.InUse() {
		t.Fatal("resource still owned by a killed proc")
	}
}

// TestDeadlockRunPurgesWaiters: the deadlock path through Run also kills
// procs and must purge them the same way.
func TestDeadlockRunPurgesWaiters(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu")
	c := NewCond(s, "never")
	s.Spawn("owner", func(p *Proc) {
		r.Acquire(p)
		c.Wait(p) // never signalled: deadlock
		r.Release(p)
	})
	s.Spawn("waiter", func(p *Proc) { r.Use(p, Second) })
	err := s.Run()
	if err == nil {
		t.Fatal("expected DeadlockError")
	}
	if r.QueueLen() != 0 || r.InUse() {
		t.Fatalf("resource not purged: queue=%d inUse=%v", r.QueueLen(), r.InUse())
	}
	if c.Waiters() != 0 {
		t.Fatalf("cond holds %d waiters after deadlock kill", c.Waiters())
	}
}

// TestShutdownPurgesCondAndQueueWaiters: queue waiters block on internal
// conds; a shutdown must leave those empty too.
func TestShutdownPurgesCondAndQueueWaiters(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q", 1)
	s.Spawn("getter", func(p *Proc) {
		q.Get(p) // empty queue, never fed
	})
	s.Spawn("putter", func(p *Proc) {
		q.Put(p, 1) // fills the queue
		q.Put(p, 2) // blocks: queue full, never drained by a live getter?
	})
	// Run a moment: getter takes 1, putter puts 2, both may actually
	// complete; use a cond-only blocker for the guaranteed-parked case.
	c := NewCond(s, "forever")
	s.Spawn("cond-waiter", func(p *Proc) { c.Wait(p) })
	s.RunFor(Second)
	s.Shutdown()
	if c.Waiters() != 0 {
		t.Fatalf("cond waiters = %d after shutdown, want 0", c.Waiters())
	}
	if got := q.notEmpty.Waiters() + q.notFull.Waiters(); got != 0 {
		t.Fatalf("queue cond waiters = %d after shutdown, want 0", got)
	}
}

// TestShutdownAccountsPartialHold: a proc killed while holding a resource
// contributes its partial hold to Busy, as a Release at that instant would.
func TestShutdownAccountsPartialHold(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu")
	s.Spawn("holder", func(p *Proc) { r.Use(p, 10*Second) })
	s.RunFor(3 * Second)
	s.Shutdown()
	if got := r.Busy(); got != 3*Second {
		t.Fatalf("Busy = %v after mid-hold shutdown, want 3s", got)
	}
}

// TestTraceParkSpansBalanced: a traced run emits balanced begin/end park
// spans on each proc track and lifecycle instants.
func TestTraceParkSpansBalanced(t *testing.T) {
	s := New()
	sink := trace.New()
	s.SetTracer(sink)
	r := NewResource(s, "node.cpu")
	for i := 0; i < 3; i++ {
		s.Spawn("worker", func(p *Proc) {
			r.Use(p, Second)
			p.Sleep(Second)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.Events() == 0 {
		t.Fatal("traced run recorded no events")
	}
	// 3 proc tracks plus the shared resource track.
	if sink.Tracks() != 4 {
		t.Fatalf("Tracks = %d, want 4", sink.Tracks())
	}
}

// TestUntracedSimIdenticalTiming: attaching no tracer must not change any
// virtual timing (the nil check is the only cost).
func TestUntracedSimIdenticalTiming(t *testing.T) {
	run := func(sink *trace.Sink) Time {
		s := New()
		s.SetTracer(sink)
		r := NewResource(s, "cpu")
		q := NewQueue[int](s, "q", 2)
		s.Spawn("producer", func(p *Proc) {
			for i := 0; i < 10; i++ {
				r.Use(p, Millisecond)
				q.Put(p, i)
			}
			q.Close()
		})
		s.Spawn("consumer", func(p *Proc) {
			for {
				if _, ok := q.Get(p); !ok {
					return
				}
				p.Sleep(2 * Millisecond)
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now()
	}
	if a, b := run(nil), run(trace.New()); a != b {
		t.Fatalf("traced run ended at %v, untraced at %v", b, a)
	}
}
