package sim

import (
	"errors"

	"lmas/internal/trace"
)

// ErrClosed is returned by Queue.Put on a closed queue.
var ErrClosed = errors.New("sim: put on closed queue")

// Queue is a bounded FIFO connecting procs, the simulated analogue of a
// buffered Go channel. Queues carry records between functor instances; the
// bound models the limited buffer memory of the node hosting the consumer
// and provides backpressure, which is what lets a saturated stage slow its
// producers (the load-balance effect the paper's emulation studies).
type Queue[T any] struct {
	sim      *Sim
	name     string
	buf      []T
	head     int // index of first element in buf (ring)
	n        int // number of elements
	closed   bool
	notEmpty *Cond
	notFull  *Cond

	// stats
	puts, gets uint64
	// enqT mirrors buf with each element's enqueue instant, so take can
	// accumulate the time elements spend buffered.
	enqT []Time
	// cumWait is the total buffered time summed over all dequeued elements.
	cumWait Duration
	// highWater is the maximum depth the queue ever reached.
	highWater int

	track trace.Track // cached trace timeline for depth counters
}

// NewQueue creates a queue holding at most capacity elements.
// Capacity must be at least 1.
func NewQueue[T any](s *Sim, name string, capacity int) *Queue[T] {
	if capacity < 1 {
		panic("sim: queue capacity must be >= 1")
	}
	return &Queue[T]{
		sim:      s,
		name:     name,
		buf:      make([]T, capacity),
		enqT:     make([]Time, capacity),
		notEmpty: NewCond(s, name+" not-empty"),
		notFull:  NewCond(s, name+" not-full"),
	}
}

// traceDepth samples the queue depth onto the trace, so viewers render
// buffer occupancy (and hence backpressure) as a stepped time series.
func (q *Queue[T]) traceDepth() {
	t := q.sim.tracer
	if t == nil {
		return
	}
	if q.track == 0 {
		q.track = t.SharedTrack("queues", q.name)
	}
	t.Counter(q.track, int64(q.sim.now), "depth", int64(q.n))
}

// Len reports the number of buffered elements.
func (q *Queue[T]) Len() int { return q.n }

// Cap reports the queue capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Name reports the queue's name.
func (q *Queue[T]) Name() string { return q.name }

// Puts reports the total number of elements ever enqueued.
func (q *Queue[T]) Puts() uint64 { return q.puts }

// Put appends v, blocking p while the queue is full.
// It returns ErrClosed if the queue is or becomes closed.
func (q *Queue[T]) Put(p *Proc, v T) error {
	for q.n == len(q.buf) && !q.closed {
		q.notFull.Wait(p)
	}
	if q.closed {
		return ErrClosed
	}
	slot := (q.head + q.n) % len(q.buf)
	q.buf[slot] = v
	q.enqT[slot] = q.sim.now
	q.n++
	if q.n > q.highWater {
		q.highWater = q.n
	}
	q.puts++
	q.traceDepth()
	q.notEmpty.Signal()
	return nil
}

// PutN appends every element of vs in order, blocking p whenever the queue
// is full, exactly as a loop of Put would: elements are enqueued in
// append-runs up to the free space, each run signals notEmpty once per
// element (so every consumer a loop would wake is woken, in the same
// order), and the producer waits on notFull between runs. Virtual-time
// behaviour is therefore identical to the per-element loop; what batching
// saves is per-call overhead and redundant bookkeeping — the high-water
// gauge and trace depth are sampled once per run at the post-run depth,
// which for a monotonically growing run equals the loop's running maximum.
// It returns ErrClosed if the queue is or becomes closed; elements already
// enqueued stay.
func (q *Queue[T]) PutN(p *Proc, vs []T) error {
	for len(vs) > 0 {
		for q.n == len(q.buf) && !q.closed {
			q.notFull.Wait(p)
		}
		if q.closed {
			return ErrClosed
		}
		run := len(q.buf) - q.n
		if run > len(vs) {
			run = len(vs)
		}
		for i := 0; i < run; i++ {
			slot := (q.head + q.n) % len(q.buf)
			q.buf[slot] = vs[i]
			q.enqT[slot] = q.sim.now
			q.n++
			q.puts++
			q.notEmpty.Signal()
		}
		if q.n > q.highWater {
			q.highWater = q.n
		}
		q.traceDepth()
		vs = vs[run:]
	}
	return nil
}

// GetN is the drain fast path: it removes up to len(dst) buffered elements
// into dst, blocking p only while the queue is empty (like a single Get).
// It never blocks to fill dst — whatever is buffered when the queue becomes
// non-empty is taken, up to len(dst). Returns the number of elements taken,
// with ok=false when the queue is closed and drained. Wait accounting is
// unchanged: each element is dequeued through the same path as Get.
func (q *Queue[T]) GetN(p *Proc, dst []T) (n int, ok bool) {
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait(p)
	}
	if q.n == 0 {
		return 0, false
	}
	k := q.n
	if k > len(dst) {
		k = len(dst)
	}
	for i := 0; i < k; i++ {
		dst[i] = q.take()
	}
	return k, true
}

// TryPut appends v without blocking; it reports whether v was accepted.
func (q *Queue[T]) TryPut(v T) bool {
	if q.closed || q.n == len(q.buf) {
		return false
	}
	slot := (q.head + q.n) % len(q.buf)
	q.buf[slot] = v
	q.enqT[slot] = q.sim.now
	q.n++
	if q.n > q.highWater {
		q.highWater = q.n
	}
	q.puts++
	q.traceDepth()
	q.notEmpty.Signal()
	return true
}

// Get removes and returns the oldest element, blocking p while the queue is
// empty. ok is false if the queue is closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait(p)
	}
	if q.n == 0 {
		return v, false
	}
	return q.take(), true
}

// TryGet removes and returns the oldest element without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if q.n == 0 {
		return v, false
	}
	return q.take(), true
}

func (q *Queue[T]) take() T {
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.cumWait += Duration(q.sim.now - q.enqT[q.head])
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.gets++
	q.traceDepth()
	q.notFull.Signal()
	return v
}

// WaitStats reports the cumulative time elements have spent buffered and the
// maximum depth the queue ever reached. Elements still enqueued contribute
// the wait they have accrued so far: take() only accounts dequeued elements,
// so without the residual term a run shut down (or killed) with packets
// still buffered under-reports queue wait and breaks critical-path
// conservation. Drained queues are unaffected (the residual is zero).
func (q *Queue[T]) WaitStats() (cumWait Duration, highWater int) {
	cumWait = q.cumWait
	for i := 0; i < q.n; i++ {
		cumWait += Duration(q.sim.now - q.enqT[(q.head+i)%len(q.buf)])
	}
	return cumWait, q.highWater
}

// Close marks the queue closed: pending and future Puts fail with ErrClosed,
// and Gets drain the buffer then report ok=false. Close is idempotent.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}
