package sim

import "lmas/internal/trace"

// Resource is an exclusive-use server with two-level priority queueing: a
// CPU, a disk arm, or a network link endpoint. Procs acquire it, hold it
// for some span of virtual time, and release it; contenders queue in
// arrival order within their priority class, and the high class is always
// served first. Priority is the mechanism behind performance isolation:
// foreground storage requests can be scheduled ahead of queued functor
// computation (the paper's requirement that "storage-based computation
// should not occur if it interferes with storage access for other
// applications").
//
// Ownership is handed off directly on Release — no barging — so scheduling
// is deterministic.
type Resource struct {
	sim   *Sim
	name  string
	owner *Proc
	high  []*Proc
	low   []*Proc

	busy      Duration // total busy time, completed holds only
	busyStart Time     // start of current hold, valid when owner != nil
	recorder  BusyRecorder

	holds, priorityHolds int64

	track      trace.Track // cached trace timeline, created on first traced hold
	holdTraced bool        // whether the current hold opened a trace span
}

// BusyRecorder receives the [from, to) interval of every completed hold on
// a Resource. Implementations aggregate these into utilization traces.
type BusyRecorder interface {
	RecordBusy(from, to Time)
}

// NewResource creates an idle resource.
func NewResource(s *Sim, name string) *Resource {
	r := &Resource{sim: s, name: name}
	s.registerPurger(r)
	return r
}

// traceTrack returns r's timeline in t, creating it on first use. Resources
// rendezvous on their name, so a track pre-registered by cluster.AttachTrace
// is reused here.
func (r *Resource) traceTrack(t *trace.Sink) trace.Track {
	if r.track == 0 {
		r.track = t.SharedTrack(trace.GroupOf(r.name), r.name)
	}
	return r.track
}

// Name reports the resource's name.
func (r *Resource) Name() string { return r.name }

// SetRecorder attaches rec to receive busy intervals; nil detaches.
func (r *Resource) SetRecorder(rec BusyRecorder) { r.recorder = rec }

// Acquire blocks p until it holds r exclusively (normal priority).
func (r *Resource) Acquire(p *Proc) { r.acquire(p, false) }

// AcquireHigh blocks p until it holds r, ahead of all normal-priority
// contenders (but behind the current holder and earlier high-priority
// waiters).
func (r *Resource) AcquireHigh(p *Proc) { r.acquire(p, true) }

func (r *Resource) acquire(p *Proc, high bool) {
	if r.owner == nil {
		r.take(p, high)
		return
	}
	if high {
		r.high = append(r.high, p)
	} else {
		r.low = append(r.low, p)
	}
	if pf := r.sim.profiler; pf != nil {
		from := r.sim.now
		p.park("acquire " + r.name)
		pf.Charge(p, ChargeQueueWait, r.name, from, r.sim.now)
	} else {
		p.park("acquire " + r.name)
	}
	// Ownership was transferred to us by Release before the wakeup.
	if r.owner != p {
		panic("sim: woke without ownership of " + r.name)
	}
}

func (r *Resource) take(p *Proc, high bool) {
	r.owner = p
	r.busyStart = r.sim.now
	r.holds++
	if high {
		r.priorityHolds++
	}
	r.holdTraced = false
	if t := r.sim.tracer; t != nil {
		r.holdTraced = true
		t.Begin(r.traceTrack(t), int64(r.sim.now), "hold", "resource",
			trace.Arg{Key: "proc", Val: p.name}, trace.Arg{Key: "high", Val: high})
	}
}

// Release relinquishes r, handing it to the longest-waiting high-priority
// contender, or failing that the longest-waiting normal one. Release
// panics if p does not hold r.
func (r *Resource) Release(p *Proc) {
	if r.owner != p {
		panic("sim: Release by non-owner of " + r.name)
	}
	held := Duration(r.sim.now - r.busyStart)
	r.busy += held
	if r.recorder != nil && held > 0 {
		r.recorder.RecordBusy(r.busyStart, r.sim.now)
	}
	if t := r.sim.tracer; t != nil && r.holdTraced {
		t.End(r.traceTrack(t), int64(r.sim.now))
	}
	var next *Proc
	var wasHigh bool
	if len(r.high) > 0 {
		next = r.high[0]
		copy(r.high, r.high[1:])
		r.high = r.high[:len(r.high)-1]
		wasHigh = true
	} else if len(r.low) > 0 {
		next = r.low[0]
		copy(r.low, r.low[1:])
		r.low = r.low[:len(r.low)-1]
	}
	if next == nil {
		r.owner = nil
		return
	}
	r.take(next, wasHigh)
	s := r.sim
	s.resumeAt(s.now, next)
}

// Use acquires r, holds it for d of virtual time, then releases it. This is
// the primitive for "spend d of CPU (or disk, or link) time".
func (r *Resource) Use(p *Proc, d Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release(p)
}

// UseHigh is Use with high-priority admission.
func (r *Resource) UseHigh(p *Proc, d Duration) {
	r.AcquireHigh(p)
	p.Sleep(d)
	r.Release(p)
}

// Busy reports the total time r has been held (completed holds only).
func (r *Resource) Busy() Duration { return r.busy }

// InUse reports whether some proc currently holds r.
func (r *Resource) InUse() bool { return r.owner != nil }

// QueueLen reports how many procs are waiting to acquire r. If the
// resource is held, the holder is not counted.
func (r *Resource) QueueLen() int { return len(r.high) + len(r.low) }

// Holds reports total completed-or-current holds and how many entered via
// the high-priority path.
func (r *Resource) Holds() (total, priority int64) { return r.holds, r.priorityHolds }

// purge removes a killed proc from r's wait lists, and if the proc died
// holding r, accounts the partial hold and frees the resource. Called by
// killProcs so a shut-down sim leaves no dangling *Proc pointers behind.
func (r *Resource) purge(p *Proc) {
	r.high = removeProc(r.high, p)
	r.low = removeProc(r.low, p)
	if r.owner == p {
		held := Duration(r.sim.now - r.busyStart)
		r.busy += held
		if r.recorder != nil && held > 0 {
			r.recorder.RecordBusy(r.busyStart, r.sim.now)
		}
		if t := r.sim.tracer; t != nil && r.holdTraced {
			t.End(r.traceTrack(t), int64(r.sim.now))
		}
		// No handoff: every contender is being killed too.
		r.owner = nil
	}
}

func removeProc(list []*Proc, p *Proc) []*Proc {
	out := list[:0]
	for _, q := range list {
		if q != p {
			out = append(out, q)
		}
	}
	// Clear the tail so the backing array doesn't pin the removed proc.
	for i := len(out); i < len(list); i++ {
		list[i] = nil
	}
	return out
}
