package sim

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"lmas/internal/trace"
)

// event is a scheduled callback or proc resumption. Events with equal times
// fire in (partition, per-partition seq) order: within a partition, schedule
// order; across partitions, ascending partition rank. The per-partition seq
// replaces the old global counter so the tie-break key is stable under any
// engine — a partition's numbering depends only on that partition's schedule
// history, not on how unrelated partitions' events interleaved. An event
// resumes proc when proc is non-nil and calls fn otherwise; tagging
// resumptions with the proc (instead of closing over it) keeps the hot
// scheduling paths allocation-free and lets a parking proc hand control
// straight to the next runnable proc.
type event struct {
	t    Time
	part int32
	// viaWheel marks an event that was staged in the timer wheel before
	// spilling into the heap; countPopped uses it to attribute dispatched
	// events to the scheduler tier (packs into part's padding, costs no
	// space).
	viaWheel bool
	seq      uint64
	fn       func()
	proc     *Proc
}

// before reports whether e fires ahead of f in (time, partition, seq) order.
func (e event) before(f event) bool {
	if e.t != f.t {
		return e.t < f.t
	}
	if e.part != f.part {
		return e.part < f.part
	}
	return e.seq < f.seq
}

// Sim is a discrete-event simulator. The zero value is not usable; create
// one with New. A Sim must be used from a single OS-level flow of control:
// either the caller of Run, or the currently running Proc (there is never
// more than one).
type Sim struct {
	now Time
	// events is a hand-rolled binary min-heap ordered by (t, part, seq).
	// It is not container/heap because that interface boxes every popped
	// event into an interface value — one allocation per event — and this
	// is the hottest path in the emulator. The heap holds only current and
	// near-deadline events; far-future timers stage in wheel until
	// syncTier spills them (see wheel.go).
	events eventHeap
	// wheel is the hierarchical timer tier, allocated lazily on the first
	// far-future insert so short sims never pay its footprint.
	wheel *timerWheel
	// disableWheel forces every event through the reference heap; the
	// wheel-vs-heap differential tests use it to prove the tier never
	// reorders a dispatch.
	disableWheel bool
	// nowqs holds events scheduled for the current instant, one FIFO ring
	// per partition, consumed before the heap advances time. Scheduling
	// "at now" is the dominant case (proc wakeups from conds, resources,
	// and spawns), and the rings make it O(1) instead of an O(log n) heap
	// round trip. Invariant: every queued entry has t == now (the rings
	// drain before time advances), so within a ring FIFO order is exactly
	// (t, part, seq) order, and the globally next entry is the head of the
	// lowest-numbered non-empty ring. nowActive is a bitmap of non-empty
	// rings (bit i of word i/64) so finding that ring is one
	// find-first-set in the common single-word case.
	nowqs     []nowRing
	nowActive []uint64
	// seqs holds one tie-break counter per partition.
	seqs []uint64
	// curPart is the partition of the currently dispatching event; fn
	// events and spawns scheduled from inside it inherit this partition.
	curPart int32

	// engine is the event-loop strategy (serial or parallel); par is the
	// same pointer, pre-downcast, when the parallel engine is active —
	// the run loop's window check is then one nil test instead of an
	// interface call per event.
	engine    Engine
	par       *parallelEngine
	lookahead Duration

	parked chan struct{}  // handoff: running proc -> scheduler
	procs  map[*Proc]bool // all live procs
	inProc bool           // true while a proc goroutine has control

	// panicVal carries a panic out of a proc goroutine so runProc can
	// rethrow it in the Run caller's stack.
	panicVal any

	// tracer, when non-nil, receives structured events from the kernel and
	// from device models built on it. Untraced runs pay one nil check.
	tracer *trace.Sink

	// profiler, when non-nil, receives latency-attribution charges from
	// the kernel and device models. Unprofiled runs pay one nil check.
	profiler Profiler

	// waitLists holds every wait-list owner (resources, conds) created on
	// this sim, so killProcs can purge killed procs from their queues.
	waitLists []purger

	// liveEvents counts queued events other than daemon-proc resumptions.
	// Run exits when it reaches zero, leaving daemon wakeups queued: a
	// periodic observer (see SpawnDaemon) therefore never extends a run's
	// virtual end time, and a later Run resumes it alongside new work.
	liveEvents int

	// freeProcs is the pool of exited proc shells whose goroutines are
	// parked awaiting reuse; see procRun. Daemons and profiled sims never
	// pool (daemon spawns must not perturb pool state across recorded and
	// unrecorded runs, and the critpath profiler keys state by *Proc).
	freeProcs []*Proc

	// stats counts scheduler-tier activity for non-daemon events only, so
	// the numbers are identical across engines and with or without a
	// recorder attached (daemon samplers never contribute).
	stats SchedStats
}

// SchedStats reports scheduler-tier activity: how many far-future events
// the timer wheel absorbed, how many of those were spilled into the heap
// and dispatched, and how many proc spawns reused a pooled shell. Daemon
// events are excluded throughout, keeping every count a pure function of
// the non-daemon schedule (byte-identical across engines and recording).
type SchedStats struct {
	WheelHits  uint64
	HeapSpills uint64
	ProcReuses uint64
}

// SchedStats returns the scheduler-tier counters accumulated so far.
func (s *Sim) SchedStats() SchedStats { return s.stats }

// purger is a wait-list owner that can remove a killed proc from its queue.
type purger interface {
	purge(p *Proc)
}

func (s *Sim) registerPurger(pg purger) { s.waitLists = append(s.waitLists, pg) }

// SetTracer attaches a trace sink; nil detaches. Attach before spawning the
// procs of interest: a proc's track is created at Spawn time.
func (s *Sim) SetTracer(t *trace.Sink) { s.tracer = t }

// Tracer returns the attached trace sink, or nil. Device models layered on
// the sim (disk, netsim) record their transfers through it.
func (s *Sim) Tracer() *trace.Sink { return s.tracer }

// New creates an empty simulation at time zero on the serial engine.
func New() *Sim {
	return NewWithEngine(EngineSpec{})
}

// Now reports the current virtual time.
func (s *Sim) Now() Time { return s.now }

// nowRing is one partition's FIFO ring of current-instant events.
type nowRing struct {
	q    []event
	head int
}

// schedule enqueues an event at absolute time t (clamped to the present).
// Proc resumptions are keyed by the proc's partition; fn callbacks by the
// scheduling context's.
func (s *Sim) schedule(t Time, fn func(), p *Proc) {
	if t < s.now {
		t = s.now
	}
	part := s.curPart
	if p != nil {
		part = p.part
	}
	s.seqs[part]++
	if p == nil || !p.daemon {
		s.liveEvents++
	}
	e := event{t: t, part: part, seq: s.seqs[part], fn: fn, proc: p}
	if t == s.now {
		r := &s.nowqs[part]
		r.q = append(r.q, e)
		s.nowActive[part>>6] |= 1 << (uint(part) & 63)
		return
	}
	// Near-deadline events go straight to the heap; far-future ones stage
	// in the wheel at O(1) and spill near their deadline (see syncTier).
	if s.disableWheel || tickOf(t)-tickOf(s.now) < wheelNearTicks {
		s.events.push(e)
		return
	}
	w := s.wheel
	if w == nil {
		w = newTimerWheel(tickOf(s.now))
		s.wheel = w
	} else if w.count == 0 {
		// Catch the horizon up while the wheel is empty so placement
		// levels stay tight; with events held, syncTier owns the horizon.
		w.reset(tickOf(s.now))
	}
	if p == nil || !p.daemon {
		s.stats.WheelHits++
	}
	w.place(e, s.spill)
}

// spill receives events leaving the wheel whose deadline is near (or past)
// the advancing horizon and files them in the heap under their original
// (t, part, seq) key.
func (s *Sim) spill(e event) {
	e.viaWheel = true
	s.events.push(e)
}

// syncTier makes the heap/ring candidate trustworthy: it advances the wheel
// horizon until every wheel-held event is provably later (by tick) than the
// earliest ring or heap event, spilling anything at or before that tick
// into the heap. The wrapper is leaf-inlinable so an empty wheel costs the
// hot dispatch path one nil/zero check.
func (s *Sim) syncTier() {
	if w := s.wheel; w != nil && w.count != 0 {
		s.syncTierSlow(w)
	}
}

func (s *Sim) syncTierSlow(w *timerWheel) {
	for {
		var cand int64
		switch {
		case s.lowestActive() >= 0:
			cand = tickOf(s.now)
		case len(s.events) > 0:
			cand = tickOf(s.events[0].t)
		default:
			cand = w.minLB
		}
		if w.minLB > cand {
			// Every wheel event's tick is at least minLB, hence strictly
			// after the candidate's tick: the candidate dispatches first
			// under the (t, part, seq) order no matter what the wheel
			// holds. One comparison is the whole cost on the hot path.
			return
		}
		w.advanceTo(cand+1, s.spill)
		if w.count == 0 {
			return
		}
	}
}

// lowestActive returns the lowest-numbered partition with a non-empty
// current-instant ring, or -1.
func (s *Sim) lowestActive() int32 {
	for wi, w := range s.nowActive {
		if w != 0 {
			return int32(wi)<<6 + int32(bits.TrailingZeros64(w))
		}
	}
	return -1
}

// At schedules fn to run at absolute time t. Scheduling in the past is
// clamped to the present.
func (s *Sim) At(t Time, fn func()) { s.schedule(t, fn, nil) }

// After schedules fn to run d from now.
func (s *Sim) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now.Add(d), fn)
}

// resumeAt schedules p to resume at absolute time t.
func (s *Sim) resumeAt(t Time, p *Proc) { s.schedule(t, nil, p) }

// pending reports the number of queued events.
func (s *Sim) pending() int {
	n := len(s.events)
	if s.wheel != nil {
		n += s.wheel.count
	}
	for i := range s.nowqs {
		n += len(s.nowqs[i].q) - s.nowqs[i].head
	}
	return n
}

// eventHeap is a binary min-heap of events in (t, part, seq) order, used
// for the sim's near-term event queue and the wheel's overflow tier.
type eventHeap []event

// minHeapCap floors the amortized shrink: backing arrays never drop below
// this, so small sims keep a stable allocation.
const minHeapCap = 64

// push inserts e.
func (hp *eventHeap) push(e event) {
	h := append(*hp, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	*hp = h
}

// pop removes and returns the earliest event. When occupancy falls below a
// quarter of the backing array (hysteresis against append's grow-at-full),
// the array is halved so a burst of far timers doesn't pin its peak
// footprint for the rest of the run.
func (hp *eventHeap) pop() event {
	h := *hp
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop the fn/proc references
	h = h[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h[l].before(h[least]) {
			least = l
		}
		if r < n && h[r].before(h[least]) {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	if c := cap(h); c > minHeapCap && n <= c/4 {
		nc := c / 2
		if nc < minHeapCap {
			nc = minHeapCap
		}
		shrunk := make(eventHeap, n, nc)
		copy(shrunk, h)
		h = shrunk
	}
	*hp = h
	return top
}

// peekNext reports the earliest queued event without removing it. The
// current-instant candidate is the head of the lowest active ring: every
// ring entry shares t == now, so the ascending-partition scan plus each
// ring's FIFO order is exactly (t, part, seq) order.
func (s *Sim) peekNext() (event, bool) {
	s.syncTier()
	part := s.lowestActive()
	hok := len(s.events) > 0
	if part >= 0 {
		r := &s.nowqs[part]
		if hok && s.events[0].before(r.q[r.head]) {
			return s.events[0], true
		}
		return r.q[r.head], true
	}
	if hok {
		return s.events[0], true
	}
	return event{}, false
}

// popNext removes and returns the earliest queued event.
func (s *Sim) popNext() (event, bool) {
	s.syncTier()
	part := s.lowestActive()
	hok := len(s.events) > 0
	if part >= 0 {
		r := &s.nowqs[part]
		if !hok || !s.events[0].before(r.q[r.head]) {
			e := r.q[r.head]
			r.q[r.head] = event{}
			r.head++
			if r.head == len(r.q) {
				r.q = r.q[:0] // reuse the ring's storage
				r.head = 0
				s.nowActive[part>>6] &^= 1 << (uint(part) & 63)
			}
			s.countPopped(e)
			return e, true
		}
	}
	if hok {
		e := s.events.pop()
		s.countPopped(e)
		return e, true
	}
	return event{}, false
}

// countPopped keeps the live-event counter in step with popNext and
// attributes dispatched wheel-staged events to the scheduler tier.
func (s *Sim) countPopped(e event) {
	if e.proc == nil || !e.proc.daemon {
		s.liveEvents--
		if e.viaWheel {
			s.stats.HeapSpills++
		}
	}
}

// dispatch executes one event in scheduler context. The event's partition
// becomes the scheduling context for everything it runs.
func (s *Sim) dispatch(ev event) {
	s.curPart = ev.part
	if ev.proc != nil {
		s.runProc(ev.proc)
	} else {
		ev.fn()
	}
}

// clearEvents drops every queued event.
func (s *Sim) clearEvents() {
	for i := range s.events {
		s.events[i] = event{}
	}
	s.events = s.events[:0]
	for p := range s.nowqs {
		r := &s.nowqs[p]
		for i := r.head; i < len(r.q); i++ {
			r.q[i] = event{}
		}
		r.q = r.q[:0]
		r.head = 0
	}
	for i := range s.nowActive {
		s.nowActive[i] = 0
	}
	if s.wheel != nil {
		s.wheel.clear(tickOf(s.now))
	}
	s.liveEvents = 0
}

// Proc is an emulated thread of control: a goroutine that runs only when the
// scheduler hands it the simulation. All blocking operations (Sleep, queue
// and resource operations, condition waits) must be called with the Proc
// that is currently running.
type Proc struct {
	sim    *Sim
	name   string
	part   int32 // event-ordering partition (0 = global)
	resume chan struct{}
	killed bool
	// daemon marks a background observer proc whose queued wakeups never
	// keep Run alive (see SpawnDaemon).
	daemon bool
	// poolExit tells a pooled goroutine (parked in procRun awaiting reuse)
	// to terminate instead of running another incarnation; see drainPool.
	poolExit bool
	// fn is the body of the current incarnation, held on the Proc instead
	// of closed over so a recycled shell's goroutine restarts without
	// allocating.
	fn func(p *Proc)
	// blocked describes what the proc is waiting on, for deadlock reports.
	blocked string
	// track is this proc's trace timeline; zero when the sim is untraced or
	// the proc was spawned before the tracer was attached.
	track trace.Track
}

// Name reports the name the proc was spawned with.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulator this proc belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

type killedSentinel struct{ name string }

// Spawn starts a new proc running fn. The proc is scheduled to begin at the
// current virtual time and inherits the spawning context's partition
// (partition 0 when spawned from outside the event loop). Spawn may be
// called before Run or from a running proc or event callback.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.spawn(int(s.curPart), name, fn, false)
}

// SpawnOn is Spawn with the proc pinned to an explicit partition (see
// AddPartition); clusters pin each node's procs to that node's partition.
func (s *Sim) SpawnOn(part int, name string, fn func(p *Proc)) *Proc {
	return s.spawn(part, name, fn, false)
}

// SpawnDaemon starts a background observer proc: its queued wakeups do not
// count toward Run's exit condition, so a daemon that sleeps on a fixed
// interval (a periodic sampler) never extends a run's virtual end time — Run
// returns the instant the last non-daemon event is dispatched, leaving the
// daemon parked with its next wakeup queued. A later Run on the same sim
// resumes it. Daemons must only Sleep between observations (never block on
// queues, conds, or resources, which would deadlock them once real work
// drains), and they survive Run; terminate one with Kill or Shutdown.
func (s *Sim) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return s.spawn(int(s.curPart), name, fn, true)
}

// maxFreeProcs caps the recycling pool so a one-off burst of concurrency
// doesn't pin its peak goroutine count forever.
const maxFreeProcs = 4096

func (s *Sim) spawn(part int, name string, fn func(p *Proc), daemon bool) *Proc {
	if part < 0 || part >= len(s.seqs) {
		panic(fmt.Sprintf("sim: SpawnOn partition %d of %d", part, len(s.seqs)))
	}
	var p *Proc
	// Reuse a pooled shell (and its parked goroutine) when one is free.
	// Daemon spawns always allocate: a recorder's samplers must not
	// perturb the pool state the workload's own spawns observe, or
	// recorded and unrecorded runs would diverge in SchedStats. Profiled
	// sims never reach here (the pool stays empty; see procRun).
	if n := len(s.freeProcs); n > 0 && !daemon {
		p = s.freeProcs[n-1]
		s.freeProcs[n-1] = nil
		s.freeProcs = s.freeProcs[:n-1]
		p.name = name
		p.part = int32(part)
		p.killed = false
		p.blocked = ""
		p.track = 0
		p.fn = fn
		s.stats.ProcReuses++
	} else {
		p = &Proc{sim: s, name: name, part: int32(part), resume: make(chan struct{}), daemon: daemon, fn: fn}
		go procMain(p)
	}
	if t := s.tracer; t != nil {
		p.track = t.NewTrack("procs", name)
		t.Instant(p.track, int64(s.now), "spawn", "proc")
	}
	s.procs[p] = true
	s.resumeAt(s.now, p)
	return p
}

// procMain is the body of every proc goroutine: it runs incarnations of p
// until one ends without parking the shell on the free list (kill, panic,
// pool cap, or a drain request). A plain function rather than a closure so
// recycled spawns allocate nothing.
func procMain(p *Proc) {
	for procRun(p) {
	}
}

// procRun waits for the scheduler to start p, executes one incarnation,
// and reports whether the shell was pooled for reuse. Only a normal return
// pools: a proc that is running holds no queued resumption (wakeups are
// consumed before it runs, and nothing can target a running proc), so on
// clean exit no stale event can reference the recycled pointer. A killed
// proc's pending wakeup may still sit in the queue, so its shell — and a
// panicking proc's — is never reused. Profiled sims never pool either: the
// critical-path profiler keys per-proc state by *Proc and must see a fresh
// pointer per logical proc.
func procRun(p *Proc) (pooled bool) {
	<-p.resume // wait for the scheduler to start us
	if p.poolExit {
		return false
	}
	s := p.sim
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedSentinel); !ok {
				// Re-panic in the scheduler's context so the
				// failure surfaces to the caller of Run.
				delete(s.procs, p)
				s.panicVal = r
				s.parked <- struct{}{}
				return
			}
			s.tracer.Instant(p.track, int64(s.now), "killed", "proc")
		} else {
			s.tracer.Instant(p.track, int64(s.now), "exit", "proc")
			if !p.daemon && s.profiler == nil && len(s.freeProcs) < maxFreeProcs {
				p.fn = nil
				s.freeProcs = append(s.freeProcs, p)
				pooled = true
			}
		}
		delete(s.procs, p)
		s.parked <- struct{}{} // final handoff back to the scheduler
	}()
	if p.killed {
		panic(killedSentinel{p.name})
	}
	p.fn(p)
	return
}

// drainPool terminates the goroutines parked on the free list. Run,
// Shutdown, and killProcs drain so a finished or abandoned Sim leaks no
// goroutines; RunFor keeps the pool warm across adaptive windows.
func (s *Sim) drainPool() {
	for i, p := range s.freeProcs {
		p.poolExit = true
		p.resume <- struct{}{}
		s.freeProcs[i] = nil
	}
	s.freeProcs = s.freeProcs[:0]
}

// runProc transfers control to p until it parks or exits. Must be called
// from scheduler context (inside an event callback). While p runs it may
// hand control directly to further procs (see park's fast path); the
// scheduler stays blocked here until whichever proc ends the chain parks
// with nothing left to chain to.
func (s *Sim) runProc(p *Proc) {
	if !s.procs[p] {
		return // proc already exited (e.g. killed)
	}
	p.blocked = ""
	s.inProc = true
	p.resume <- struct{}{}
	<-s.parked
	s.inProc = false
	if s.panicVal != nil {
		v := s.panicVal
		s.panicVal = nil
		panic(v)
	}
}

// park suspends the calling proc until the scheduler resumes it. The caller
// must have arranged for a wakeup (a scheduled event or a cond signal).
//
// Fast path: when the next event is another proc's resumption at the
// current instant, the parking proc hands control straight to that proc
// instead of bouncing through the scheduler goroutine, cutting the
// park/resume round trip from two channel handoffs to one. The scheduler
// (blocked in runProc) regains control only when a proc parks with no
// immediately-runnable successor. Event order is unchanged: the handoff
// consumes exactly the event the scheduler would have dispatched next.
func (p *Proc) park(why string) {
	// The traced flag is local so a sink attached mid-park cannot see an
	// End without its Begin.
	t := p.sim.tracer
	traced := t != nil && p.track != 0
	if traced {
		t.Begin(p.track, int64(p.sim.now), why, "park")
	}
	p.blocked = why
	s := p.sim
	handed := false
	for {
		ev, ok := s.peekNext()
		if !ok || ev.proc == nil || ev.t != s.now {
			break
		}
		s.popNext()
		q := ev.proc
		if !s.procs[q] {
			continue // stale wakeup for an exited proc
		}
		// The handoff bypasses dispatch, so update the scheduling
		// context's partition here.
		s.curPart = q.part
		q.blocked = ""
		if q == p {
			// Our own wakeup is next: skip the channel round trip
			// entirely (Yield with no competing events).
			if traced {
				t.End(p.track, int64(p.sim.now))
			}
			return
		}
		q.resume <- struct{}{}
		handed = true
		break
	}
	if !handed {
		s.parked <- struct{}{}
	}
	<-p.resume
	if traced {
		t.End(p.track, int64(p.sim.now))
	}
	if p.killed {
		panic(killedSentinel{p.name})
	}
}

// Tracing reports whether trace events on this proc reach a sink. Hot paths
// that would build variadic trace args per event should check it first: the
// Trace* methods no-op when untraced, but their argument slices still
// allocate at the call site.
func (p *Proc) Tracing() bool { return p.sim.tracer != nil && p.track != 0 }

// TraceBegin opens a span on the proc's trace track; close it with TraceEnd.
// All trace methods no-op when the sim is untraced.
func (p *Proc) TraceBegin(name, cat string, args ...trace.Arg) {
	if t := p.sim.tracer; t != nil {
		t.Begin(p.track, int64(p.sim.now), name, cat, args...)
	}
}

// TraceEnd closes the innermost span opened with TraceBegin.
func (p *Proc) TraceEnd(args ...trace.Arg) {
	if t := p.sim.tracer; t != nil {
		t.End(p.track, int64(p.sim.now), args...)
	}
}

// TraceInstant records a point event on the proc's trace track.
func (p *Proc) TraceInstant(name, cat string, args ...trace.Arg) {
	if t := p.sim.tracer; t != nil {
		t.Instant(p.track, int64(p.sim.now), name, cat, args...)
	}
}

// Sleep suspends the proc for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	s := p.sim
	s.resumeAt(s.now.Add(d), p)
	p.park("sleep")
}

// Yield gives other procs and events scheduled for the current instant a
// chance to run before p continues.
func (p *Proc) Yield() { p.Sleep(0) }

// DeadlockError reports that Run exhausted all events while procs were still
// blocked: in the emulated system those threads would wait forever.
type DeadlockError struct {
	// Blocked lists the stuck procs as "name (reason)".
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock: %d procs blocked forever: %s",
		len(e.Blocked), strings.Join(e.Blocked, ", "))
}

// Run executes events in virtual-time order until no non-daemon events
// remain (daemon wakeups are left queued; see SpawnDaemon). If non-daemon
// procs are still blocked when the queue drains, Run force-terminates every
// proc and returns a DeadlockError naming the blocked ones. On success all
// spawned non-daemon procs have finished; daemons stay parked for a later
// Run, Kill, or Shutdown.
func (s *Sim) Run() error {
	for s.liveEvents > 0 {
		ev, ok := s.popNext()
		if !ok {
			break
		}
		// Conservative window check, devirtualized: one nil test on the
		// serial hot path (see Sim.par).
		if par := s.par; par != nil && ev.t > s.now {
			par.maybeBarrier(ev.t)
		}
		s.now = ev.t
		s.dispatch(ev)
	}
	s.engine.drain()
	var names []string
	for p := range s.procs {
		if !p.daemon {
			names = append(names, fmt.Sprintf("%s (%s)", p.name, p.blocked))
		}
	}
	if len(names) > 0 {
		sort.Strings(names)
		s.killProcs()
		return &DeadlockError{Blocked: names}
	}
	// Release the recycling pool's goroutines: a Sim dropped after Run must
	// not leak them. RunFor deliberately keeps the pool warm so churn keeps
	// reusing shells across adaptive windows.
	s.drainPool()
	return nil
}

// RunFor executes events until the event queue drains or virtual time would
// pass the current time plus d, whichever comes first. Remaining procs are
// left parked; call Run to continue or Shutdown to terminate them.
func (s *Sim) RunFor(d Duration) {
	deadline := s.now.Add(d)
	for {
		ev, ok := s.peekNext()
		if !ok || ev.t > deadline {
			break
		}
		s.popNext()
		if par := s.par; par != nil && ev.t > s.now {
			par.maybeBarrier(ev.t)
		}
		s.now = ev.t
		s.dispatch(ev)
	}
	s.engine.drain()
	if s.now < deadline {
		s.now = deadline
	}
}

// Shutdown force-terminates all live procs (their goroutines unwind via an
// internal panic that Shutdown recovers). It is safe to call after Run or
// RunFor; it must not be called from proc context.
func (s *Sim) Shutdown() {
	s.engine.drain()
	s.killProcs()
}

// Kill force-terminates a single proc (typically a daemon sampler once its
// run is over) without disturbing the rest of the simulation: other procs,
// queued events, and virtual time are untouched. A stale queued wakeup for
// the killed proc is ignored when dispatched. Must not be called from proc
// context; no-op if p already exited.
func (s *Sim) Kill(p *Proc) {
	if s.inProc {
		panic("sim: Kill from proc context")
	}
	if !s.procs[p] {
		return
	}
	p.killed = true
	p.resume <- struct{}{}
	<-s.parked
	for _, wl := range s.waitLists {
		wl.purge(p)
	}
}

func (s *Sim) killProcs() {
	var killed []*Proc
	for len(s.procs) > 0 {
		for p := range s.procs {
			p.killed = true
			killed = append(killed, p)
			p.resume <- struct{}{}
			<-s.parked
			break // map may have changed; restart iteration
		}
	}
	// Drop any queued events so a subsequent Run returns immediately.
	s.clearEvents()
	// Killed procs may still be queued on resource or cond wait lists;
	// purge those dangling pointers so the sim's resources stay usable
	// (and inspectable) after a shutdown.
	for _, p := range killed {
		for _, wl := range s.waitLists {
			wl.purge(p)
		}
	}
	s.drainPool()
}
