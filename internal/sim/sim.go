package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"

	"lmas/internal/trace"
)

// event is a scheduled callback. Events with equal times fire in schedule
// order (seq breaks ties), which keeps the simulation deterministic.
type event struct {
	t   Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Sim is a discrete-event simulator. The zero value is not usable; create
// one with New. A Sim must be used from a single OS-level flow of control:
// either the caller of Run, or the currently running Proc (there is never
// more than one).
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64

	parked chan struct{}  // handoff: running proc -> scheduler
	procs  map[*Proc]bool // all live procs
	inProc bool           // true while a proc goroutine has control

	// panicVal carries a panic out of a proc goroutine so runProc can
	// rethrow it in the Run caller's stack.
	panicVal any

	// tracer, when non-nil, receives structured events from the kernel and
	// from device models built on it. Untraced runs pay one nil check.
	tracer *trace.Sink

	// waitLists holds every wait-list owner (resources, conds) created on
	// this sim, so killProcs can purge killed procs from their queues.
	waitLists []purger
}

// purger is a wait-list owner that can remove a killed proc from its queue.
type purger interface {
	purge(p *Proc)
}

func (s *Sim) registerPurger(pg purger) { s.waitLists = append(s.waitLists, pg) }

// SetTracer attaches a trace sink; nil detaches. Attach before spawning the
// procs of interest: a proc's track is created at Spawn time.
func (s *Sim) SetTracer(t *trace.Sink) { s.tracer = t }

// Tracer returns the attached trace sink, or nil. Device models layered on
// the sim (disk, netsim) record their transfers through it.
func (s *Sim) Tracer() *trace.Sink { return s.tracer }

// New creates an empty simulation at time zero.
func New() *Sim {
	return &Sim{
		parked: make(chan struct{}),
		procs:  make(map[*Proc]bool),
	}
}

// Now reports the current virtual time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn to run at absolute time t. Scheduling in the past is
// clamped to the present.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.events.pushEvent(event{t: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now.
func (s *Sim) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now.Add(d), fn)
}

// Proc is an emulated thread of control: a goroutine that runs only when the
// scheduler hands it the simulation. All blocking operations (Sleep, queue
// and resource operations, condition waits) must be called with the Proc
// that is currently running.
type Proc struct {
	sim    *Sim
	name   string
	resume chan struct{}
	killed bool
	// blocked describes what the proc is waiting on, for deadlock reports.
	blocked string
	// track is this proc's trace timeline; zero when the sim is untraced or
	// the proc was spawned before the tracer was attached.
	track trace.Track
}

// Name reports the name the proc was spawned with.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulator this proc belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

type killedSentinel struct{ name string }

// Spawn starts a new proc running fn. The proc is scheduled to begin at the
// current virtual time. Spawn may be called before Run or from a running
// proc or event callback.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	if t := s.tracer; t != nil {
		p.track = t.NewTrack("procs", name)
		t.Instant(p.track, int64(s.now), "spawn", "proc")
	}
	s.procs[p] = true
	go func() {
		<-p.resume // wait for the scheduler to start us
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedSentinel); !ok {
					// Re-panic in the scheduler's context so the
					// failure surfaces to the caller of Run.
					delete(s.procs, p)
					s.panicVal = r
					s.parked <- struct{}{}
					return
				}
				s.tracer.Instant(p.track, int64(s.now), "killed", "proc")
			} else {
				s.tracer.Instant(p.track, int64(s.now), "exit", "proc")
			}
			delete(s.procs, p)
			s.parked <- struct{}{} // final handoff back to the scheduler
		}()
		if p.killed {
			panic(killedSentinel{p.name})
		}
		fn(p)
	}()
	s.At(s.now, func() { s.runProc(p) })
	return p
}

// runProc transfers control to p until it parks or exits. Must be called
// from scheduler context (inside an event callback).
func (s *Sim) runProc(p *Proc) {
	if !s.procs[p] {
		return // proc already exited (e.g. killed)
	}
	p.blocked = ""
	s.inProc = true
	p.resume <- struct{}{}
	<-s.parked
	s.inProc = false
	if s.panicVal != nil {
		v := s.panicVal
		s.panicVal = nil
		panic(v)
	}
}

// park suspends the calling proc until the scheduler resumes it. The caller
// must have arranged for a wakeup (a scheduled event or a cond signal).
func (p *Proc) park(why string) {
	// The traced flag is local so a sink attached mid-park cannot see an
	// End without its Begin.
	t := p.sim.tracer
	traced := t != nil && p.track != 0
	if traced {
		t.Begin(p.track, int64(p.sim.now), why, "park")
	}
	p.blocked = why
	p.sim.parked <- struct{}{}
	<-p.resume
	if traced {
		t.End(p.track, int64(p.sim.now))
	}
	if p.killed {
		panic(killedSentinel{p.name})
	}
}

// TraceBegin opens a span on the proc's trace track; close it with TraceEnd.
// All trace methods no-op when the sim is untraced.
func (p *Proc) TraceBegin(name, cat string, args ...trace.Arg) {
	if t := p.sim.tracer; t != nil {
		t.Begin(p.track, int64(p.sim.now), name, cat, args...)
	}
}

// TraceEnd closes the innermost span opened with TraceBegin.
func (p *Proc) TraceEnd(args ...trace.Arg) {
	if t := p.sim.tracer; t != nil {
		t.End(p.track, int64(p.sim.now), args...)
	}
}

// TraceInstant records a point event on the proc's trace track.
func (p *Proc) TraceInstant(name, cat string, args ...trace.Arg) {
	if t := p.sim.tracer; t != nil {
		t.Instant(p.track, int64(p.sim.now), name, cat, args...)
	}
}

// Sleep suspends the proc for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	s := p.sim
	s.At(s.now.Add(d), func() { s.runProc(p) })
	p.park("sleep")
}

// Yield gives other procs and events scheduled for the current instant a
// chance to run before p continues.
func (p *Proc) Yield() { p.Sleep(0) }

// DeadlockError reports that Run exhausted all events while procs were still
// blocked: in the emulated system those threads would wait forever.
type DeadlockError struct {
	// Blocked lists the stuck procs as "name (reason)".
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock: %d procs blocked forever: %s",
		len(e.Blocked), strings.Join(e.Blocked, ", "))
}

// Run executes events in virtual-time order until no events remain. If live
// procs are still blocked when the event queue drains, Run force-terminates
// them and returns a DeadlockError naming them. On success all spawned procs
// have finished.
func (s *Sim) Run() error {
	for len(s.events) > 0 {
		ev := s.events.popEvent()
		s.now = ev.t
		ev.fn()
	}
	if len(s.procs) > 0 {
		var names []string
		for p := range s.procs {
			names = append(names, fmt.Sprintf("%s (%s)", p.name, p.blocked))
		}
		sort.Strings(names)
		s.killProcs()
		return &DeadlockError{Blocked: names}
	}
	return nil
}

// RunFor executes events until the event queue drains or virtual time would
// pass the current time plus d, whichever comes first. Remaining procs are
// left parked; call Run to continue or Shutdown to terminate them.
func (s *Sim) RunFor(d Duration) {
	deadline := s.now.Add(d)
	for len(s.events) > 0 && s.events.peek().t <= deadline {
		ev := s.events.popEvent()
		s.now = ev.t
		ev.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Shutdown force-terminates all live procs (their goroutines unwind via an
// internal panic that Shutdown recovers). It is safe to call after Run or
// RunFor; it must not be called from proc context.
func (s *Sim) Shutdown() { s.killProcs() }

func (s *Sim) killProcs() {
	var killed []*Proc
	for len(s.procs) > 0 {
		for p := range s.procs {
			p.killed = true
			killed = append(killed, p)
			p.resume <- struct{}{}
			<-s.parked
			break // map may have changed; restart iteration
		}
	}
	// Drop any queued events so a subsequent Run returns immediately.
	s.events = s.events[:0]
	// Killed procs may still be queued on resource or cond wait lists;
	// purge those dangling pointers so the sim's resources stay usable
	// (and inspectable) after a shutdown.
	for _, p := range killed {
		for _, wl := range s.waitLists {
			wl.purge(p)
		}
	}
}
