package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrder(t *testing.T) {
	s := New()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("final time = %v, want 30", s.Now())
	}
}

func TestEventTieBreakBySchedulingOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestPastEventClampedToPresent(t *testing.T) {
	s := New()
	fired := Time(-1)
	s.At(100, func() {
		s.At(5, func() { fired = s.Now() }) // in the past
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 100 {
		t.Fatalf("past event fired at %v, want clamped to 100", fired)
	}
}

// TestEventOrderProperty: any batch of randomly-timed events fires in
// nondecreasing time order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		s := New()
		var fired []Time
		for _, d := range delays {
			s.At(Time(d), func() { fired = append(fired, s.Now()) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleep(t *testing.T) {
	s := New()
	var wake []Time
	s.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * Millisecond)
			wake = append(wake, p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(10 * Millisecond), Time(20 * Millisecond), Time(30 * Millisecond)}
	for i := range want {
		if wake[i] != want[i] {
			t.Fatalf("wake times %v, want %v", wake, want)
		}
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := New()
		var trace []string
		for _, name := range []string{"a", "b"} {
			name := name
			s.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					trace = append(trace, fmt.Sprintf("%s%d@%d", name, i, p.Now()))
					p.Sleep(Duration(5 * Millisecond))
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("nondeterministic interleave: %v vs %v", got, first)
		}
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	s := New()
	c := NewCond(s, "test")
	var woken []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			c.Wait(p)
			woken = append(woken, name)
		})
	}
	s.Spawn("signaller", func(p *Proc) {
		p.Sleep(Millisecond) // let waiters park
		c.Signal()
		p.Sleep(Millisecond)
		c.Broadcast()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w1", "w2", "w3"}
	if fmt.Sprint(woken) != fmt.Sprint(want) {
		t.Fatalf("wake order %v, want %v", woken, want)
	}
}

func TestCondSignalNoWaiters(t *testing.T) {
	s := New()
	c := NewCond(s, "empty")
	c.Signal()    // must not panic or queue anything
	c.Broadcast() // ditto
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	c := NewCond(s, "never-signalled")
	s.Spawn("stuck", func(p *Proc) { c.Wait(p) })
	err := s.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v, want 1 proc", de.Blocked)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	s := New()
	s.Spawn("boom", func(p *Proc) { panic("kaboom") })
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", r)
		}
	}()
	s.Run()
	t.Fatal("Run returned; want panic")
}

func TestQueueFIFO(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q", 4)
	var got []int
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < 100; i++ {
			if err := q.Put(p, i); err != nil {
				t.Errorf("Put: %v", err)
			}
		}
		q.Close()
	})
	s.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
			p.Sleep(Microsecond) // consumer slower than producer: exercises backpressure
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("consumed %d, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, v)
		}
	}
}

func TestQueueBackpressureBound(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q", 3)
	maxLen := 0
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < 50; i++ {
			q.Put(p, i)
			if q.Len() > maxLen {
				maxLen = q.Len()
			}
		}
		q.Close()
	})
	s.Spawn("consumer", func(p *Proc) {
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
			p.Sleep(Millisecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxLen > 3 {
		t.Fatalf("queue grew to %d, capacity 3", maxLen)
	}
}

func TestQueuePutAfterClose(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q", 1)
	var err error
	s.Spawn("p", func(p *Proc) {
		q.Close()
		err = q.Put(p, 1)
	})
	if e := s.Run(); e != nil {
		t.Fatal(e)
	}
	if err != ErrClosed {
		t.Fatalf("Put after close = %v, want ErrClosed", err)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q", 8)
	var got []int
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(p, i)
		}
		q.Close()
		for {
			v, ok := q.Get(p)
			if !ok {
				break
			}
			got = append(got, v)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("drained %d, want 5 (buffered values must survive Close)", len(got))
	}
}

func TestQueueManyProducersOneConsumerCounts(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q", 2)
	const producers, each = 7, 13
	sum := 0
	for i := 0; i < producers; i++ {
		i := i
		s.Spawn(fmt.Sprintf("prod%d", i), func(p *Proc) {
			for j := 0; j < each; j++ {
				q.Put(p, 1)
				p.Sleep(Duration(i+1) * Microsecond)
			}
		})
	}
	s.Spawn("consumer", func(p *Proc) {
		for n := 0; n < producers*each; n++ {
			v, ok := q.Get(p)
			if !ok {
				t.Error("queue closed early")
				return
			}
			sum += v
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != producers*each {
		t.Fatalf("sum = %d, want %d", sum, producers*each)
	}
}

// TestQueueOrderProperty: with a single producer and single consumer, any
// put sequence is received in order regardless of capacity and timing.
func TestQueueOrderProperty(t *testing.T) {
	f := func(vals []int32, capRaw uint8, consumerDelayUS uint8) bool {
		capacity := int(capRaw%16) + 1
		s := New()
		q := NewQueue[int32](s, "q", capacity)
		var got []int32
		s.Spawn("prod", func(p *Proc) {
			for _, v := range vals {
				q.Put(p, v)
			}
			q.Close()
		})
		s.Spawn("cons", func(p *Proc) {
			for {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				got = append(got, v)
				p.Sleep(Duration(consumerDelayUS) * Microsecond)
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceExclusiveFIFO(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu")
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			r.Acquire(p)
			order = append(order, name+"+")
			p.Sleep(10 * Millisecond)
			order = append(order, name+"-")
			r.Release(p)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[a+ a- b+ b- c+ c-]"
	if fmt.Sprint(order) != want {
		t.Fatalf("order %v, want %v (holds must not overlap)", order, want)
	}
	if r.Busy() != 30*Millisecond {
		t.Fatalf("busy = %v, want 30ms", r.Busy())
	}
}

func TestResourceUseAccumulatesBusy(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu")
	s.Spawn("p", func(p *Proc) {
		r.Use(p, 5*Millisecond)
		p.Sleep(100 * Millisecond) // idle gap must not count
		r.Use(p, 7*Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Busy() != 12*Millisecond {
		t.Fatalf("busy = %v, want 12ms", r.Busy())
	}
}

func TestResourceReleaseByNonOwnerPanics(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu")
	s.Spawn("a", func(p *Proc) { r.Acquire(p); p.Sleep(Second) })
	s.Spawn("b", func(p *Proc) {
		p.Sleep(Millisecond)
		defer func() {
			if recover() == nil {
				t.Error("Release by non-owner did not panic")
			}
		}()
		r.Release(p)
	})
	s.Run()
	s.Shutdown()
}

type intervalRecorder struct{ ivs [][2]Time }

func (r *intervalRecorder) RecordBusy(from, to Time) { r.ivs = append(r.ivs, [2]Time{from, to}) }

func TestResourceRecorder(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu")
	rec := &intervalRecorder{}
	r.SetRecorder(rec)
	s.Spawn("p", func(p *Proc) {
		r.Use(p, 3*Millisecond)
		p.Sleep(4 * Millisecond)
		r.Use(p, 5*Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := [][2]Time{{0, Time(3 * Millisecond)}, {Time(7 * Millisecond), Time(12 * Millisecond)}}
	if fmt.Sprint(rec.ivs) != fmt.Sprint(want) {
		t.Fatalf("intervals %v, want %v", rec.ivs, want)
	}
}

func TestRunFor(t *testing.T) {
	s := New()
	ticks := 0
	s.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(10 * Millisecond)
			ticks++
		}
	})
	s.RunFor(55 * Millisecond)
	if ticks != 5 {
		t.Fatalf("ticks = %d after 55ms, want 5", ticks)
	}
	if s.Now() != Time(55*Millisecond) {
		t.Fatalf("Now = %v, want 55ms", s.Now())
	}
	s.RunFor(45 * Millisecond)
	if ticks != 10 {
		t.Fatalf("ticks = %d after 100ms, want 10", ticks)
	}
	s.Shutdown()
}

func TestShutdownTerminatesProcs(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for {
				p.Sleep(Second)
			}
		})
	}
	s.RunFor(3 * Second)
	s.Shutdown()
	if len(s.procs) != 0 {
		t.Fatalf("%d procs alive after Shutdown", len(s.procs))
	}
	// After shutdown the sim is drained: Run returns immediately.
	if err := s.Run(); err != nil {
		t.Fatalf("Run after Shutdown: %v", err)
	}
}

func TestSpawnFromProc(t *testing.T) {
	s := New()
	var childTime Time
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(10 * Millisecond)
		s.Spawn("child", func(c *Proc) {
			c.Sleep(5 * Millisecond)
			childTime = c.Now()
		})
		p.Sleep(20 * Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != Time(15*Millisecond) {
		t.Fatalf("child finished at %v, want 15ms", childTime)
	}
}

func TestTimeHelpers(t *testing.T) {
	if got := DurationOf(1.5); got != Duration(1500*Millisecond) {
		t.Fatalf("DurationOf(1.5) = %v", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds = %v", got)
	}
	if got := Time(1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Time.Seconds = %v", got)
	}
	if Time(Second).Add(Duration(Second)) != Time(2*Second) {
		t.Fatal("Add")
	}
}

// TestRandomWorkloadDeterminism drives a randomized producer/consumer mesh
// twice with the same seed and demands identical traces.
func TestRandomWorkloadDeterminism(t *testing.T) {
	run := func(seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		q := NewQueue[int](s, "q", 5)
		r := NewResource(s, "cpu")
		var trace []string
		for i := 0; i < 4; i++ {
			i := i
			d := Duration(rng.Intn(1000)+1) * Microsecond
			s.Spawn(fmt.Sprintf("prod%d", i), func(p *Proc) {
				for j := 0; j < 20; j++ {
					q.Put(p, i*100+j)
					p.Sleep(d)
				}
			})
		}
		s.Spawn("cons", func(p *Proc) {
			for n := 0; n < 80; n++ {
				v, _ := q.Get(p)
				r.Use(p, 300*Microsecond)
				trace = append(trace, fmt.Sprintf("%d@%d", v, p.Now()))
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(trace)
	}
	if run(42) != run(42) {
		t.Fatal("same seed produced different traces")
	}
	if run(42) == run(43) {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}
