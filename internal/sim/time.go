// Package sim provides the discrete-event simulation kernel underlying the
// active-storage emulator.
//
// The kernel follows the design sketched in Section 5 of the paper
// ("Emulator Implementation"): program execution is divided into segments
// separated by calls into the simulation library; an event queue keeps all
// communication and I/O events in temporal (causal) order; blocking
// synchronization is provided by condition variables whose waiters are woken
// by signal events. Each emulated thread of control is a goroutine, but the
// scheduler runs exactly one goroutine at a time with explicit channel
// handoff, so simulations are fully deterministic and never race.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Virtual time has no connection to the wall clock.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units, mirroring time.Duration.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever marks an event that never fires on its own; condition-variable
// waiters conceptually wait at t = Forever until a signal reschedules them
// (the "wakeup at t = infinity" device described in the paper).
const Forever Time = 1<<63 - 1

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (d Duration) String() string { return fmt.Sprintf("%.6fs", d.Seconds()) }

// DurationOf converts a floating-point number of seconds to a Duration.
func DurationOf(seconds float64) Duration { return Duration(seconds * float64(Second)) }
