package sim

import "math/bits"

// This file implements the hierarchical timer tier that fronts the event
// heap: a four-level timing wheel plus an overflow heap, in the style of
// Varghese & Lauck's hierarchical timing wheels. Far-future events
// (open-loop arrival schedules, timeouts) cost O(1) to insert instead of an
// O(log n) sift through a heap holding every pending timer, and they spill
// into the (t, partition, seq)-ordered heap only near their deadline, so
// the hot near-term dispatch path never pays for idle far timers.
//
// Determinism contract: the wheel is a staging area only. Every event
// reaches the heap (carrying its original full ordering key) strictly
// before the simulator could dispatch anything at or after the event's
// tick — syncTier enforces htick > candidate-tick before any peek or pop
// trusts the ring/heap candidate — so the dispatch sequence is provably
// identical to a single reference heap (pinned by TestWheelMatchesReferenceHeap).

const (
	// wheelTickShift sets the wheel granularity: 1<<10 ns ≈ 1µs ticks.
	wheelTickShift = 10
	// wheelBits gives 256 slots per level. Level l slots span 1<<(8l)
	// ticks, so the four levels hold deadlines up to 1<<32 ticks (~73
	// virtual minutes) ahead of the horizon; the rest lands in the
	// overflow heap.
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelLevels = 4
	// wheelNearTicks is the near-deadline threshold: events due within this
	// many ticks of now (~1ms) skip the wheel and go straight to the heap.
	// Device-model charges (CPU, disk, network) are almost all sub-ms, so
	// ordinary workloads keep the old single-heap behavior and allocation
	// profile; the wheel engages for genuinely far timers — open-loop
	// arrival schedules, timeouts — where heaps degrade.
	wheelNearTicks = 1024
)

// tickOf maps a virtual time to its wheel tick.
func tickOf(t Time) int64 { return int64(t) >> wheelTickShift }

// timerWheel holds far-future events bucketed by tick. An event's level is
// chosen by its distance to the horizon — delta < 1<<(8(l+1)) ticks files
// at level l — and its slot by the absolute tick bits for that level, so a
// slot is a 1<<(8l)-tick span of absolute time and the 256-slot ring of
// level l covers exactly the range of deltas the level accepts. Distance-
// based placement (rather than an xor prefix against the horizon) means a
// deadline's level never depends on where the horizon sits relative to a
// power-of-two boundary: a steady stream of "+10s" timeouts always files
// at the same level, instead of resonating into one giant straddling
// bucket whenever the horizon nears a 2^24-tick block edge. Allocated
// lazily on the first far-future insert.
type timerWheel struct {
	// htick is the horizon: every event held by the wheel has tick >= htick.
	htick int64
	// collected[l] is the last absolute level-l slot (tick >> 8l) whose
	// bucket has been emptied; advanceTo collects the ring range
	// (collected[l], (newH-1)>>8l] exactly once per slot. Because level-l
	// deltas are bounded by the ring span, every occupied slot's absolute
	// index lies in (collected[l], collected[l]+256], which is what lets a
	// ring index map back to a unique absolute slot (earliestTick relies
	// on this).
	collected [wheelLevels]int64
	// slots[l][s] holds the events of level l, ring slot s; bitmap[l]
	// marks non-empty slots (bit s of word s/64). Bucket storage is
	// retained across reuse ([:0] after a collect); slack beyond the live
	// length may briefly hold stale event copies, which the next refill
	// overwrites — a deliberate trade of bounded GC retention for skipping
	// a per-element clear on the cascade path.
	slots  [wheelLevels][wheelSlots][]event
	bitmap [wheelLevels][wheelSlots / 64]uint64
	// overflow holds events beyond the top level's reach, full-key ordered.
	overflow eventHeap
	// count is the total number of events held, including overflow.
	count int
	// minLB is a lower bound on the earliest held tick (exact when that
	// event sits in level 0 or the overflow heap), maintained so syncTier
	// can dismiss the whole wheel with one comparison while the hot
	// near-term path runs. Meaningless when count == 0.
	minLB int64
}

func newTimerWheel(htick int64) *timerWheel {
	w := &timerWheel{}
	w.reset(htick)
	return w
}

// reset moves the horizon of an empty wheel.
func (w *timerWheel) reset(htick int64) {
	w.htick = htick
	for l := range w.collected {
		w.collected[l] = (htick - 1) >> (wheelBits * l)
	}
}

// place files e under the current horizon. The caller guarantees
// tickOf(e.t) >= htick (schedule's near-threshold and advanceTo's cursor
// ordering ensure this); events below the horizon go through out instead,
// which routes them to the sim's heap.
func (w *timerWheel) place(e event, out func(event)) {
	t := tickOf(e.t)
	delta := t - w.htick
	if delta < wheelNearTicks {
		// Near (or past) deadline: hand straight to the heap. Cascading
		// survivors re-place through here, so an event's last wheel hop
		// ends at the heap instead of marching through level 0 — the heap
		// was going to hold it within a millisecond anyway.
		out(e)
		return
	}
	if w.count == 0 || t < w.minLB {
		w.minLB = t
	}
	l := uint(bits.Len64(uint64(delta))-1) / wheelBits
	if l >= wheelLevels {
		w.overflow.push(e)
		w.count++
		return
	}
	s := uint(t>>(wheelBits*l)) & (wheelSlots - 1)
	b := w.slots[l][s]
	if len(b) == cap(b) {
		// Exact doubling: append's growth policy for large slices (~1.25x)
		// allocates ~2x more cumulative bytes filling the multi-thousand
		// event buckets of the outer levels.
		nc := 2 * cap(b)
		if nc < 64 {
			nc = 64
		}
		nb := make([]event, len(b), nc)
		copy(nb, b)
		b = nb
	}
	w.slots[l][s] = append(b, e)
	w.bitmap[l][s>>6] |= 1 << (s & 63)
	w.count++
}

// earliestTick returns a lower bound on the earliest held event's tick
// (exact for level 0 and overflow, a slot-span start otherwise). Must not
// be called on an empty wheel.
func (w *timerWheel) earliestTick() int64 {
	best := int64(1)<<62 - 1
	for l := 0; l < wheelLevels; l++ {
		shift := uint(wheelBits * l)
		base := w.collected[l] + 1
		if s, ok := w.firstSlotFrom(l, uint(base)&(wheelSlots-1)); ok {
			abs := base + int64((s-uint(base))&(wheelSlots-1))
			if t := abs << shift; t < best {
				best = t
			}
		}
	}
	if len(w.overflow) > 0 {
		if t := tickOf(w.overflow[0].t); t < best {
			best = t
		}
	}
	return best
}

// firstSlotFrom returns the first non-empty ring slot of level l in ring
// order starting at from (wrapping past 255 back to 0).
func (w *timerWheel) firstSlotFrom(l int, from uint) (uint, bool) {
	const words = wheelSlots / 64
	for k := 0; k <= words; k++ {
		wi := (from>>6 + uint(k)) % words
		word := w.bitmap[l][wi]
		if k == 0 {
			word &= ^uint64(0) << (from & 63)
		} else if k == words && from&63 != 0 {
			word &= 1<<(from&63) - 1
		}
		if word != 0 {
			return wi<<6 + uint(bits.TrailingZeros64(word)), true
		}
	}
	return 0, false
}

// collectRange empties level l's ring slots [lo, hi] (inclusive,
// bitmap-driven). The caller has already moved the horizon to newH, so
// dead events (tick < newH) stream straight out to the sim heap and
// survivors re-place in place: their delta under the new horizon is
// strictly below this level's slot span, so they cascade bucket-to-bucket
// into a lower level with no staging buffer and no extra copy. The one
// exception is a lap-ahead event — same ring slot, one ring revolution
// later — which would re-place into the very bucket being iterated; the
// slot is nilled out during iteration so such a re-place lands in fresh
// storage instead of aliasing the snapshot.
func (w *timerWheel) collectRange(l int, lo, hi uint, newH int64, out func(event)) {
	if hi >= wheelSlots {
		hi = wheelSlots - 1
	}
	if lo > hi {
		return
	}
	for wi := lo >> 6; wi <= hi>>6; wi++ {
		word := w.bitmap[l][wi]
		if word == 0 {
			continue
		}
		// Mask the word down to bits within [lo, hi].
		if wi == lo>>6 {
			word &= ^uint64(0) << (lo & 63)
		}
		if wi == hi>>6 && (hi&63) != 63 {
			word &= 1<<((hi&63)+1) - 1
		}
		w.bitmap[l][wi] &^= word
		for word != 0 {
			s := uint(wi)<<6 + uint(bits.TrailingZeros64(word))
			word &= word - 1
			b := w.slots[l][s]
			w.slots[l][s] = nil
			w.count -= len(b)
			for _, e := range b {
				if tickOf(e.t) < newH {
					out(e)
				} else {
					w.place(e, out)
				}
			}
			if len(w.slots[l][s]) == 0 {
				// No lap-ahead re-place touched the slot: hand the bucket's
				// storage back for the next revolution. Slack beyond the
				// live length may briefly hold stale event copies, which
				// the next refill overwrites — a deliberate trade of
				// bounded GC retention for skipping a per-element clear on
				// the cascade path.
				w.slots[l][s] = b[:0]
			}
		}
	}
}

// advanceTo moves the horizon to newH. Events with tick < newH leave the
// wheel through out (carrying their original ordering keys); events whose
// level assignment tightens under the new horizon cascade down. Each event
// cascades at most wheelLevels times over its lifetime.
func (w *timerWheel) advanceTo(newH int64, out func(event)) {
	if newH <= w.htick {
		return
	}
	if w.count == 0 {
		w.reset(newH)
		return
	}
	// The horizon moves first: survivors re-placed during collection then
	// file by their true distance to newH, which is strictly below the
	// collected level's slot span — every cascade goes downward, never back
	// into a range this loop has yet to visit (a placed event's absolute
	// slot always lies beyond the level's cursor).
	w.htick = newH
	// Per level: collect the absolute slots in (collected[l], (newH-1)>>8l]
	// exactly once each — every slot whose span the new horizon has entered
	// or passed. A jump of 256+ slots collects the whole ring.
	for l := 0; l < wheelLevels; l++ {
		shift := uint(wheelBits * l)
		from := w.collected[l] + 1
		to := (newH - 1) >> shift
		if to < from {
			continue
		}
		w.collected[l] = to
		if to-from >= wheelSlots-1 {
			w.collectRange(l, 0, wheelSlots-1, newH, out)
			continue
		}
		loR, hiR := uint(from)&(wheelSlots-1), uint(to)&(wheelSlots-1)
		if loR <= hiR {
			w.collectRange(l, loR, hiR, newH, out)
		} else {
			w.collectRange(l, loR, wheelSlots-1, newH, out)
			w.collectRange(l, 0, hiR, newH, out)
		}
	}
	// Overflow: entries now within the top level's reach rehome into the
	// rings (or straight out, if already due or near).
	const span = int64(1) << (wheelLevels * wheelBits)
	for len(w.overflow) > 0 && tickOf(w.overflow[0].t)-newH < span {
		e := w.overflow.pop()
		w.count--
		if tickOf(e.t) < newH {
			out(e)
		} else {
			w.place(e, out)
		}
	}
	// Rehoming may have drained the earliest events to out; re-derive the
	// bound from what actually remains. Every bound earliestTick can
	// return is >= newH (collected cursors just moved past newH-1), so
	// syncTier's advance loop strictly progresses.
	if w.count > 0 {
		w.minLB = w.earliestTick()
	}
}

// clear drops every held event and resets the horizon.
func (w *timerWheel) clear(htick int64) {
	for l := 0; l < wheelLevels; l++ {
		for s := range w.slots[l] {
			b := w.slots[l][s]
			for i := range b {
				b[i] = event{}
			}
			w.slots[l][s] = b[:0]
		}
		for i := range w.bitmap[l] {
			w.bitmap[l][i] = 0
		}
	}
	for i := range w.overflow {
		w.overflow[i] = event{}
	}
	w.overflow = w.overflow[:0]
	w.count = 0
	w.reset(htick)
}
