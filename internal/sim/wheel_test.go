package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// wheelTrace runs a randomized adversarial schedule and records the exact
// dispatch sequence: far-future inserts across every wheel level (including
// the overflow tier), same-instant storms at shared far deadlines, tick
// boundary cases, short-lived procs, partition pinning, a mid-run RunFor
// window with events left pending (which Shutdown then cancels), and a
// final Run to completion. The log captures (virtual now, event id) per
// dispatch plus the end-of-phase clocks, so two runs agree iff their entire
// dispatch histories agree.
func wheelTrace(t *testing.T, seed int64, spec EngineSpec, disableWheel bool) []string {
	t.Helper()
	s := NewWithEngine(spec)
	s.disableWheel = disableWheel
	for i := 0; i < 3; i++ {
		s.AddPartition()
	}
	rng := rand.New(rand.NewSource(seed))
	var log []string
	id := 0

	// deltas adversarial to the tier: ring (0), sub-tick, the near/far
	// threshold's both sides, exact level-0/1/2 spans, and overflow range.
	delta := func() Duration {
		switch rng.Intn(10) {
		case 0:
			return 0
		case 1:
			return Duration(rng.Intn(1024))
		case 2:
			return Duration(wheelNearTicks<<wheelTickShift + rng.Intn(3) - 1)
		case 3:
			return Duration(rng.Intn(1 << (wheelTickShift + wheelBits)))
		case 4:
			return Duration(rng.Intn(1 << (wheelTickShift + 2*wheelBits)))
		case 5:
			return Duration(rng.Intn(1 << (wheelTickShift + 3*wheelBits)))
		case 6: // top wheel level and, occasionally, the overflow heap
			if rng.Intn(4) == 0 {
				return Duration(1<<(wheelTickShift+wheelLevels*wheelBits) + rng.Int63n(1<<40))
			}
			return Duration(1<<(wheelTickShift+3*wheelBits) + rng.Intn(1<<30))
		case 7: // exact tick boundaries
			return Duration(rng.Intn(1<<20)) << wheelTickShift
		default:
			return Duration(rng.Intn(64 << 20))
		}
	}

	var plant func(fanout int)
	plant = func(fanout int) {
		for i := 0; i < fanout; i++ {
			id++
			myID := id
			switch rng.Intn(5) {
			case 0: // same-instant storm at one far deadline
				d := delta()
				n := 2 + rng.Intn(6)
				for j := 0; j < n; j++ {
					id++
					sid := id
					s.After(d, func() {
						log = append(log, fmt.Sprintf("storm%d@%d", sid, s.Now()))
					})
				}
			case 1: // short-lived proc on a random partition
				part := rng.Intn(s.Partitions())
				naps := 1 + rng.Intn(3)
				ds := make([]Duration, naps)
				for j := range ds {
					ds[j] = delta()
				}
				s.SpawnOn(part, fmt.Sprintf("p%d", myID), func(p *Proc) {
					for _, d := range ds {
						p.Sleep(d)
						log = append(log, fmt.Sprintf("proc%d@%d", myID, s.Now()))
					}
				})
			default: // plain timer, possibly replanting more events
				more := rng.Intn(3) == 0
				s.After(delta(), func() {
					log = append(log, fmt.Sprintf("ev%d@%d", myID, s.Now()))
					if more && id < 3000 {
						plant(1 + rng.Intn(2))
					}
				})
			}
		}
	}

	plant(40)
	s.RunFor(Duration(rng.Intn(1 << 22)))
	log = append(log, fmt.Sprintf("window@%d pending=%d", s.Now(), s.pending()))
	plant(40)
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	log = append(log, fmt.Sprintf("end@%d", s.Now()))
	// Replant and cancel everything mid-flight: clearEvents must empty the
	// wheel too, and a later Run must see a truly empty scheduler.
	plant(20)
	s.RunFor(Duration(rng.Intn(1 << 21)))
	log = append(log, fmt.Sprintf("window2@%d pending=%d", s.Now(), s.pending()))
	s.Shutdown()
	log = append(log, fmt.Sprintf("shutdown@%d pending=%d", s.Now(), s.pending()))
	if err := s.Run(); err != nil {
		t.Fatalf("post-shutdown run: %v", err)
	}
	return log
}

// TestWheelMatchesReferenceHeap is the determinism proof for the timer
// tier: under adversarial randomized schedules, the dispatch sequence with
// the wheel enabled must be identical — event for event, instant for
// instant — to the pure reference heap (disableWheel), on the serial and
// parallel engines alike.
func TestWheelMatchesReferenceHeap(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		ref := wheelTrace(t, seed, EngineSpec{}, true)
		for _, tc := range []struct {
			name string
			spec EngineSpec
		}{
			{"serial", EngineSpec{}},
			{"parallel2", EngineSpec{Kind: EngineParallel, Workers: 2}},
		} {
			got := wheelTrace(t, seed, tc.spec, false)
			if len(got) != len(ref) {
				t.Fatalf("seed %d %s: %d dispatches, reference %d", seed, tc.name, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("seed %d %s: dispatch %d = %q, reference %q", seed, tc.name, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestWheelStats pins the counters the telemetry layer exports: far timers
// route through the wheel, dispatched ones spill through the heap, and the
// two agree when every event fires.
func TestWheelStats(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		s.After(Duration(i)*Millisecond+2*Millisecond, func() {})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.SchedStats()
	if st.WheelHits != 100 {
		t.Errorf("wheel hits = %d, want 100", st.WheelHits)
	}
	if st.HeapSpills != 100 {
		t.Errorf("heap spills = %d, want 100", st.HeapSpills)
	}
	// Near events never touch the wheel.
	s2 := New()
	for i := 0; i < 50; i++ {
		s2.After(Duration(i)*Microsecond, func() {})
	}
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if st := s2.SchedStats(); st.WheelHits != 0 || st.HeapSpills != 0 {
		t.Errorf("near-only run touched the wheel: %+v", st)
	}
}

// TestHeapShrinks pins the amortized shrink: after a burst of pending
// events drains, the heap's backing array must fall back toward the idle
// footprint instead of pinning its peak for the rest of the run.
func TestHeapShrinks(t *testing.T) {
	s := New()
	s.disableWheel = true // keep every event in the heap to exercise shrink
	const burst = 1 << 15
	for i := 0; i < burst; i++ {
		s.After(Duration(i+1)*Microsecond, func() {})
	}
	peak := cap(s.events)
	if peak < burst {
		t.Fatalf("peak cap %d < burst %d", peak, burst)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	idle := cap(s.events)
	if idle > peak/64 {
		t.Errorf("idle heap cap %d did not shrink from peak %d", idle, peak)
	}
	if idle < minHeapCap {
		t.Errorf("idle heap cap %d fell below the floor %d", idle, minHeapCap)
	}
	// The floor holds: a small sim never shrinks below minHeapCap.
	var h eventHeap
	for i := 0; i < minHeapCap*2; i++ {
		h.push(event{t: Time(i)})
	}
	for len(h) > 0 {
		h.pop()
	}
	if cap(h) < minHeapCap {
		t.Errorf("small heap cap %d below floor %d", cap(h), minHeapCap)
	}
}
