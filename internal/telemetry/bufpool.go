package telemetry

import (
	"fmt"

	"lmas/internal/bufpool"
	"lmas/internal/sim"
)

// FillBufpoolGauges records a buffer-pool health snapshot as gauges, one
// quartet per active size class: bufpool.<size>.{gets,hits,in_use,high_water}.
// Call it once at the end of a SINGLE run only — the default pool is process
// global, so snapshots taken while parallel sweeps share the pool would fold
// unrelated runs' traffic into the report and break determinism. Safe on a
// nil registry.
func (r *Registry) FillBufpoolGauges(now sim.Time, stats []bufpool.ClassStats) {
	if r == nil {
		return
	}
	for _, cs := range stats {
		prefix := fmt.Sprintf("bufpool.%d.", cs.Size)
		r.Gauge(prefix+"gets").Set(now, float64(cs.Gets))
		r.Gauge(prefix+"hits").Set(now, float64(cs.Hits))
		r.Gauge(prefix+"in_use").Set(now, float64(cs.InUse))
		r.Gauge(prefix+"high_water").Set(now, float64(cs.HighWater))
	}
}
