package telemetry

import (
	"fmt"
	"math"
)

// DiffOptions sets the relative-regression thresholds. A field regresses
// when (new-base)/base exceeds its threshold — only slowdowns regress;
// improvements are reported but never fail a diff.
type DiffOptions struct {
	// RuntimeThreshold is the allowed relative increase in total runtime
	// (0.10 = 10%).
	RuntimeThreshold float64
	// P99Threshold is the allowed relative increase in any histogram's p99;
	// <= 0 disables the p99 gate.
	P99Threshold float64
}

// DefaultDiffOptions gates runtime at 10% and leaves p99 informational.
func DefaultDiffOptions() DiffOptions {
	return DiffOptions{RuntimeThreshold: 0.10}
}

// DiffEntry is one compared field.
type DiffEntry struct {
	Run       string  `json:"run"`
	Field     string  `json:"field"`
	Base      float64 `json:"base"`
	New       float64 `json:"new"`
	Delta     float64 `json:"delta"` // relative: (new-base)/base, 0 when base is 0
	Regressed bool    `json:"regressed"`
	Note      string  `json:"note,omitempty"`
}

// DiffResult is the full field-by-field comparison of two report sets.
type DiffResult struct {
	Entries []DiffEntry `json:"entries"`
	// Missing lists runs present in only one side (matched by name).
	Missing []string `json:"missing,omitempty"`
}

// Regressed reports whether any compared field exceeded its threshold.
func (d *DiffResult) Regressed() bool {
	for _, e := range d.Entries {
		if e.Regressed {
			return true
		}
	}
	return false
}

func relDelta(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return (new - base) / base
}

// Diff compares two report sets run-by-run (matched by name) and field by
// field. Runtime and histogram p99s are gated by opt; counters and node mean
// utilizations are compared informationally. Config or seed mismatches are
// flagged as notes, not regressions — a deliberate reconfiguration should
// not masquerade as a performance change, but the reader must see it.
func Diff(base, new *Trajectory, opt DiffOptions) *DiffResult {
	res := &DiffResult{}
	baseByName := make(map[string]*RunReport, len(base.Runs))
	for _, r := range base.Runs {
		baseByName[r.Name] = r
	}
	seen := make(map[string]bool, len(new.Runs))
	for _, nr := range new.Runs {
		seen[nr.Name] = true
		br, ok := baseByName[nr.Name]
		if !ok {
			res.Missing = append(res.Missing, fmt.Sprintf("run %q only in new", nr.Name))
			continue
		}
		diffRun(res, br, nr, opt)
	}
	for _, br := range base.Runs {
		if !seen[br.Name] {
			res.Missing = append(res.Missing, fmt.Sprintf("run %q only in base", br.Name))
		}
	}
	return res
}

func diffRun(res *DiffResult, br, nr *RunReport, opt DiffOptions) {
	name := nr.Name
	if br.Config != nr.Config {
		res.Entries = append(res.Entries, DiffEntry{
			Run: name, Field: "config",
			Note: "cluster config differs; value comparisons may not be like-for-like",
		})
	}
	if br.Seed != nr.Seed {
		res.Entries = append(res.Entries, DiffEntry{
			Run: name, Field: "seed",
			Base: float64(br.Seed), New: float64(nr.Seed),
			Note: "seed differs",
		})
	}

	// The headline gate: total simulated runtime.
	d := relDelta(float64(br.RuntimeNs), float64(nr.RuntimeNs))
	res.Entries = append(res.Entries, DiffEntry{
		Run: name, Field: "runtime_sec",
		Base: br.RuntimeSec, New: nr.RuntimeSec, Delta: round6(d),
		Regressed: opt.RuntimeThreshold > 0 && d > opt.RuntimeThreshold,
	})

	// Histogram p99s, gated when a threshold is set.
	baseH := make(map[string]HistogramReport, len(br.Histograms))
	for _, h := range br.Histograms {
		baseH[h.Name] = h
	}
	for _, nh := range nr.Histograms {
		bh, ok := baseH[nh.Name]
		if !ok {
			continue
		}
		d := relDelta(bh.P99, nh.P99)
		res.Entries = append(res.Entries, DiffEntry{
			Run: name, Field: nh.Name + ".p99",
			Base: bh.P99, New: nh.P99, Delta: round6(d),
			Regressed: opt.P99Threshold > 0 && d > opt.P99Threshold,
		})
	}

	// Counters: informational — a changed packet or ops count signals a
	// behavior change worth a look even when runtime holds.
	baseC := make(map[string]int64, len(br.Counters))
	for _, c := range br.Counters {
		baseC[c.Name] = c.Value
	}
	for _, nc := range nr.Counters {
		bv, ok := baseC[nc.Name]
		if !ok || bv == nc.Value {
			continue
		}
		res.Entries = append(res.Entries, DiffEntry{
			Run: name, Field: nc.Name,
			Base: float64(bv), New: float64(nc.Value),
			Delta: round6(relDelta(float64(bv), float64(nc.Value))),
			Note:  "counter changed",
		})
	}

	// Node mean utilizations: informational, absolute delta in the note
	// (relative deltas mislead near zero).
	baseN := make(map[string]NodeReport, len(br.Nodes))
	for _, n := range br.Nodes {
		baseN[n.Name] = n
	}
	for _, nn := range nr.Nodes {
		bn, ok := baseN[nn.Name]
		if !ok || bn.CPU == nil || nn.CPU == nil {
			continue
		}
		if math.Abs(nn.CPU.Mean-bn.CPU.Mean) < 0.01 {
			continue
		}
		res.Entries = append(res.Entries, DiffEntry{
			Run: name, Field: nn.Name + ".cpu.mean",
			Base: bn.CPU.Mean, New: nn.CPU.Mean,
			Delta: round6(nn.CPU.Mean - bn.CPU.Mean),
			Note:  "mean CPU utilization changed (absolute delta)",
		})
	}
}
