package telemetry

import (
	"math"
	"math/bits"

	"lmas/internal/sim"
)

// LatencyHistogram counts virtual-time latencies (nanoseconds) into a fixed
// logarithmic bucket layout: each power-of-two octave is split into
// latSubBuckets linear sub-buckets, so relative quantile error is bounded by
// 1/latSubBuckets (~3%) at every magnitude from nanoseconds to hours.
//
// Unlike the float Histogram, every operation here is pure integer
// arithmetic on a layout that is a function of nothing but the value, so two
// runs that observe the same latencies — on any engine, at any worker count —
// produce byte-identical reports. That is the property the open-loop and
// R-tree latency sections rely on: the quantiles exported in a RunReport are
// deterministic bucket upper bounds, clamped to the observed min/max, never
// interpolated floats.
//
// A nil *LatencyHistogram is the valid "telemetry off" instrument: every
// method no-ops (or returns zero), matching the other instruments.
type LatencyHistogram struct {
	name     string
	counts   []int64 // grown lazily to the highest observed bucket + 1
	count    int64
	sum      int64
	min, max int64
}

const (
	// latSubBucketBits fixes the sub-bucket resolution: 2^5 = 32 linear
	// sub-buckets per power-of-two octave.
	latSubBucketBits = 5
	latSubBuckets    = 1 << latSubBucketBits
)

// latBucketIdx maps a non-negative latency in nanoseconds onto its bucket
// index. Values below latSubBuckets are exact (one bucket per nanosecond);
// above that, the value's octave selects a group of latSubBuckets linear
// sub-buckets.
func latBucketIdx(v int64) int {
	if v < latSubBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= latSubBucketBits
	sub := int(v>>(uint(exp)-latSubBucketBits)) - latSubBuckets
	return (exp-latSubBucketBits)*latSubBuckets + latSubBuckets + sub
}

// latBucketUpper reports the largest value mapping to bucket idx — the
// deterministic quantile estimate for ranks landing in that bucket.
func latBucketUpper(idx int) int64 {
	if idx < latSubBuckets {
		return int64(idx)
	}
	exp := idx/latSubBuckets - 1 + latSubBucketBits
	sub := idx % latSubBuckets
	return (int64(latSubBuckets+sub+1) << (uint(exp) - latSubBucketBits)) - 1
}

// Observe records one latency. Negative durations clamp to zero (virtual
// time never runs backwards; the clamp keeps a buggy caller deterministic
// rather than panicking mid-run). No-op on a nil histogram.
func (h *LatencyHistogram) Observe(d sim.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	idx := latBucketIdx(v)
	if idx >= len(h.counts) {
		grown := make([]int64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
}

// Name reports the histogram's registered name.
func (h *LatencyHistogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Count reports the number of observations (zero on nil).
func (h *LatencyHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum reports the total of all observations in nanoseconds.
func (h *LatencyHistogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min reports the smallest observation in nanoseconds (zero when empty).
func (h *LatencyHistogram) Min() int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest observation in nanoseconds (zero when empty).
func (h *LatencyHistogram) Max() int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile reports the q'th quantile (0..1) in nanoseconds: the upper bound
// of the bucket containing the nearest-rank observation, clamped to the
// observed min/max. Zero for an empty histogram.
func (h *LatencyHistogram) Quantile(q float64) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for idx, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			v := latBucketUpper(idx)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Report snapshots the histogram into its report form: summary quantiles
// plus the sparse list of nonzero buckets, all integer nanoseconds.
func (h *LatencyHistogram) Report() LatencyReport {
	rep := LatencyReport{
		Name:   h.Name(),
		Count:  h.Count(),
		SumNs:  h.Sum(),
		MinNs:  h.Min(),
		MaxNs:  h.Max(),
		P50Ns:  h.Quantile(0.50),
		P90Ns:  h.Quantile(0.90),
		P99Ns:  h.Quantile(0.99),
		P999Ns: h.Quantile(0.999),
	}
	if h == nil {
		return rep
	}
	for idx, c := range h.counts {
		if c == 0 {
			continue
		}
		rep.Buckets = append(rep.Buckets, LatencyBucket{UpperNs: latBucketUpper(idx), Count: c})
	}
	return rep
}

// Latency returns the latency histogram named name, creating it on first
// use. Returns nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Latency(name string) *LatencyHistogram {
	if r == nil {
		return nil
	}
	if v, ok := r.byName[name]; ok {
		h, ok := v.(*LatencyHistogram)
		if !ok {
			panic("telemetry: " + name + " already registered as another instrument kind")
		}
		return h
	}
	h := &LatencyHistogram{name: name}
	r.byName[name] = h
	r.lats = append(r.lats, h)
	return h
}

// LatencyHistograms returns the registered latency histograms in
// registration order — the deterministic order periodic samplers snapshot
// them in. Nil on a nil registry.
func (r *Registry) LatencyHistograms() []*LatencyHistogram {
	if r == nil {
		return nil
	}
	return r.lats
}
