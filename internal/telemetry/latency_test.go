package telemetry

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"lmas/internal/sim"
)

// TestLatencyBucketBoundaries pins the bucket layout at its edges: exact
// single-nanosecond buckets below 32, the first split octave, values on
// either side of a sub-bucket edge, and the top of the int64 range. The
// layout is the determinism contract — if these move, stored reports stop
// comparing across binaries.
func TestLatencyBucketBoundaries(t *testing.T) {
	cases := []struct {
		v     int64
		idx   int
		upper int64
	}{
		{0, 0, 0},    // smallest value: its own exact bucket
		{1, 1, 1},    // exact region is one bucket per nanosecond
		{31, 31, 31}, // last exact bucket
		{32, 32, 32}, // octave [32,64) still has width-1 sub-buckets
		{33, 33, 33},
		{63, 63, 63},      // top of the first split octave
		{64, 64, 65},      // octave [64,128): sub-bucket width 2
		{65, 64, 65},      // shares 64's sub-bucket
		{127, 95, 127},    // top of the [64,128) octave
		{128, 96, 131},    // octave [128,256): sub-bucket width 4
		{1000, 190, 1007}, // mid-range value
		{1 << 40, 35*32 + 32, (1 << 40) + (1 << 35) - 1}, // a deep octave's first bucket
		{math.MaxInt64, 57*32 + 63, math.MaxInt64},       // overflow guard: top bucket holds MaxInt64
	}
	for _, c := range cases {
		if got := latBucketIdx(c.v); got != c.idx {
			t.Errorf("latBucketIdx(%d) = %d, want %d", c.v, got, c.idx)
		}
		if got := latBucketUpper(c.idx); got != c.upper {
			t.Errorf("latBucketUpper(%d) = %d, want %d", c.idx, got, c.upper)
		}
	}
	// Every value maps into a bucket whose range contains it.
	for _, v := range []int64{0, 1, 31, 32, 63, 64, 65, 100, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		idx := latBucketIdx(v)
		if up := latBucketUpper(idx); v > up {
			t.Errorf("value %d above its bucket upper %d (idx %d)", v, up, idx)
		}
		if idx > 0 {
			if lowerUp := latBucketUpper(idx - 1); v <= lowerUp {
				t.Errorf("value %d within previous bucket (upper %d, idx %d)", v, lowerUp, idx)
			}
		}
	}
}

// TestLatencyObserveEdges drives Observe over the boundary values and checks
// the summary stats and quantile clamps.
func TestLatencyObserveEdges(t *testing.T) {
	h := &LatencyHistogram{name: "edge"}
	h.Observe(0)
	h.Observe(-5) // clamps to 0
	h.Observe(1)
	h.Observe(sim.Duration(math.MaxInt64))
	if h.Count() != 4 || h.Min() != 0 || h.Max() != math.MaxInt64 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	// Quantiles clamp to observed extremes rather than bucket bounds.
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("q0 = %d", got)
	}
	if got := h.Quantile(1); got != math.MaxInt64 {
		t.Fatalf("q1 = %d", got)
	}
	// 3 of 4 observations are <= 1, so p50 lands in the exact region.
	if got := h.Quantile(0.50); got != 0 {
		t.Fatalf("p50 = %d, want 0 (rank 2 of [0 0 1 max])", got)
	}

	var nilH *LatencyHistogram
	nilH.Observe(5) // must not panic
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 || nilH.Name() != "" {
		t.Fatal("nil histogram is not a no-op")
	}
}

// TestLatencyQuantileDifferential compares the bucketed nearest-rank
// quantile against an exact sorted-slice reference on random workloads
// spanning several magnitudes. The bucket layout guarantees the estimate is
// an upper bound within one sub-bucket (~3.2% relative) of the exact value.
func TestLatencyQuantileDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	quantiles := []float64{0.50, 0.90, 0.99, 0.999}
	for trial := 0; trial < 20; trial++ {
		n := 100 + rng.Intn(5000)
		h := &LatencyHistogram{name: "diff"}
		vals := make([]int64, n)
		for i := range vals {
			// Log-uniform magnitudes: ns to tens of seconds.
			v := int64(math.Exp(rng.Float64() * math.Log(4e10)))
			vals[i] = v
			h.Observe(sim.Duration(v))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range quantiles {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			exact := vals[rank-1]
			got := h.Quantile(q)
			if got < exact {
				t.Fatalf("trial %d q%.3f: estimate %d below exact %d", trial, q, got, exact)
			}
			// Upper bound of the exact value's bucket is the worst case.
			worst := latBucketUpper(latBucketIdx(exact))
			if got > worst {
				t.Fatalf("trial %d q%.3f: estimate %d above bucket bound %d (exact %d)",
					trial, q, got, worst, exact)
			}
		}
	}
}

// TestLatencyReportDeterministic: two histograms fed the same values in
// different orders produce identical reports — the property that keeps
// serial and parallel engines byte-identical.
func TestLatencyReportDeterministic(t *testing.T) {
	vals := []int64{0, 1, 31, 32, 33, 64, 999, 1 << 20, 1 << 33, 12345678}
	a := &LatencyHistogram{name: "h"}
	b := &LatencyHistogram{name: "h"}
	for _, v := range vals {
		a.Observe(sim.Duration(v))
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Observe(sim.Duration(vals[i]))
	}
	ra, rb := a.Report(), b.Report()
	if len(ra.Buckets) != len(rb.Buckets) {
		t.Fatalf("bucket counts differ: %d vs %d", len(ra.Buckets), len(rb.Buckets))
	}
	for i := range ra.Buckets {
		if ra.Buckets[i] != rb.Buckets[i] {
			t.Fatalf("bucket %d differs: %+v vs %+v", i, ra.Buckets[i], rb.Buckets[i])
		}
	}
	ra.Buckets, rb.Buckets = nil, nil
	if fmt.Sprintf("%+v", ra) != fmt.Sprintf("%+v", rb) {
		t.Fatalf("summaries differ:\n%+v\n%+v", ra, rb)
	}
}

// TestRegistryLatency covers register-on-first-use, kind collision, and
// registration order.
func TestRegistryLatency(t *testing.T) {
	r := NewRegistry()
	h1 := r.Latency("a")
	h2 := r.Latency("b")
	if r.Latency("a") != h1 {
		t.Fatal("second lookup returned a different histogram")
	}
	lats := r.LatencyHistograms()
	if len(lats) != 2 || lats[0] != h1 || lats[1] != h2 {
		t.Fatalf("registration order lost: %v", lats)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind collision did not panic")
		}
	}()
	r.Counter("a")
}
