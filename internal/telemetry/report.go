package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"lmas/internal/critpath"
	"lmas/internal/metrics"
	"lmas/internal/sim"
)

// ReportSchema identifies the single-run report format.
const ReportSchema = "lmas/runreport/v1"

// TrajectorySchema identifies the multi-run bench trajectory format.
const TrajectorySchema = "lmas/bench/v1"

// ClusterConfig is the cluster parameterization echoed into every report so
// a diff can refuse to compare apples to oranges.
type ClusterConfig struct {
	Hosts         int     `json:"hosts"`
	ASUs          int     `json:"asus"`
	C             float64 `json:"c"`
	HostOpsPerSec float64 `json:"host_ops_per_sec"`
	DiskRateMBps  float64 `json:"disk_rate_mbps"`
	DiskSeekMs    float64 `json:"disk_seek_ms"`
	NetMBps       float64 `json:"net_mbps"`
	NetLatencyUs  float64 `json:"net_latency_us"`
	RecordSize    int     `json:"record_size"`
}

// UtilSeries is one resource's utilization-versus-time trace, windowed as in
// Figure 10. Util values are rounded to 1e-6 so reports are byte-stable.
type UtilSeries struct {
	WindowSec float64   `json:"window_sec"`
	Mean      float64   `json:"mean"`
	TS        []float64 `json:"ts_sec"`
	Util      []float64 `json:"util"`
}

// round6 keeps float output short and stable; 1e-6 is far below anything the
// utilization windows can resolve.
func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// UtilSeriesOf converts a metrics.UtilTrace; nil in, nil out.
func UtilSeriesOf(u *metrics.UtilTrace) *UtilSeries {
	if u == nil || u.Len() == 0 {
		return nil
	}
	ts, util := u.Series()
	s := &UtilSeries{
		WindowSec: u.Window.Seconds(),
		Mean:      round6(u.Mean(0)),
		TS:        make([]float64, len(ts)),
		Util:      make([]float64, len(util)),
	}
	for i := range ts {
		s.TS[i] = round6(ts[i])
		s.Util[i] = round6(util[i])
	}
	return s
}

// NodeReport is one emulated node's resource record.
type NodeReport struct {
	Name      string      `json:"name"`
	Kind      string      `json:"kind"`
	OpsPerSec float64     `json:"ops_per_sec"`
	CPU       *UtilSeries `json:"cpu,omitempty"`
	Disk      *UtilSeries `json:"disk,omitempty"`
	NIC       *UtilSeries `json:"nic,omitempty"`
}

// CounterReport is one counter's final value.
type CounterReport struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeReport is one gauge's sampled series.
type GaugeReport struct {
	Name    string        `json:"name"`
	Samples []GaugeSample `json:"samples"`
}

// HistogramReport is one histogram's buckets and summary statistics.
type HistogramReport struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
}

// LatencyBucket is one nonzero bucket of a latency histogram: the inclusive
// upper bound of the bucket in nanoseconds and its observation count. Only
// nonzero buckets are exported, so sparse distributions stay compact.
type LatencyBucket struct {
	UpperNs int64 `json:"upper_ns"`
	Count   int64 `json:"count"`
}

// LatencyReport is one latency histogram's distribution and summary
// quantiles. All values are integer nanoseconds of virtual time — pure
// functions of the bucket layout, byte-identical across engines.
type LatencyReport struct {
	Name    string          `json:"name"`
	Count   int64           `json:"count"`
	SumNs   int64           `json:"sum_ns"`
	MinNs   int64           `json:"min_ns"`
	MaxNs   int64           `json:"max_ns"`
	P50Ns   int64           `json:"p50_ns"`
	P90Ns   int64           `json:"p90_ns"`
	P99Ns   int64           `json:"p99_ns"`
	P999Ns  int64           `json:"p999_ns"`
	Buckets []LatencyBucket `json:"buckets"`
}

// SLOBlame attributes part of a horizon's missed-deadline time to one
// (resource class, node) pair, in the critpath charge vocabulary.
type SLOBlame struct {
	Class string  `json:"class"`
	Node  string  `json:"node"`
	Ns    int64   `json:"ns"`
	Share float64 `json:"share"`
}

// SLOHorizon is one rung of the deadline ladder: how many jobs missed the
// horizon'th deadline and where the missing jobs' time had gone by then.
type SLOHorizon struct {
	Horizon    int        `json:"horizon"`
	DeadlineNs int64      `json:"deadline_ns"`
	Misses     int64      `json:"misses"`
	Dominant   string     `json:"dominant,omitempty"`
	Blame      []SLOBlame `json:"blame,omitempty"`
}

// SLOReport is the service-level summary of an open-loop run: the deadline
// ladder with per-horizon miss counts and blame mixes, plus goodput (jobs
// completing inside the first deadline per virtual second).
type SLOReport struct {
	TimeoutNs     int64        `json:"timeout_ns"`
	GoodputPerSec float64      `json:"goodput_per_sec"`
	Horizons      []SLOHorizon `json:"horizons"`
}

// RunReport is the machine-readable record of one simulation run: what was
// configured, how long it took, how busy every resource was, every registered
// instrument, and the load manager's decision audit log. Reports are
// deterministic: the same seed and configuration produce byte-identical JSON.
type RunReport struct {
	Schema     string            `json:"schema"`
	Name       string            `json:"name"`
	Seed       int64             `json:"seed"`
	Config     ClusterConfig     `json:"config"`
	Workload   map[string]any    `json:"workload,omitempty"`
	RuntimeSec float64           `json:"runtime_sec"`
	RuntimeNs  int64             `json:"runtime_ns"`
	Nodes      []NodeReport      `json:"nodes"`
	Counters   []CounterReport   `json:"counters,omitempty"`
	Gauges     []GaugeReport     `json:"gauges,omitempty"`
	Histograms []HistogramReport `json:"histograms,omitempty"`
	Latencies  []LatencyReport   `json:"latencies,omitempty"`
	// SLO is the deadline-ladder summary, present for open-loop runs.
	SLO       *SLOReport `json:"slo,omitempty"`
	Decisions []Decision `json:"decisions,omitempty"`
	// Critpath is the latency-attribution summary, present when a
	// critical-path profiler was attached for the run.
	Critpath *critpath.Report `json:"critpath,omitempty"`
}

// Trajectory is a multi-run bench file: one point on the performance
// trajectory of the codebase, diffable against a committed baseline.
type Trajectory struct {
	Schema      string       `json:"schema"`
	GeneratedAt string       `json:"generated_at,omitempty"`
	Quick       bool         `json:"quick"`
	Runs        []*RunReport `json:"runs"`
}

// Fill snapshots every registered instrument and the decision log into rep.
// Instruments are sorted by name; decisions keep record order. Safe on a nil
// registry (leaves rep's instrument sections empty).
func (r *Registry) Fill(rep *RunReport) {
	if r == nil {
		return
	}
	for _, c := range r.counters {
		rep.Counters = append(rep.Counters, CounterReport{Name: c.name, Value: c.v})
	}
	sort.Slice(rep.Counters, func(i, j int) bool { return rep.Counters[i].Name < rep.Counters[j].Name })
	for _, g := range r.gauges {
		if len(g.samples) == 0 {
			continue
		}
		rep.Gauges = append(rep.Gauges, GaugeReport{Name: g.name, Samples: g.samples})
	}
	sort.Slice(rep.Gauges, func(i, j int) bool { return rep.Gauges[i].Name < rep.Gauges[j].Name })
	for _, h := range r.hists {
		if h.count == 0 {
			continue
		}
		rep.Histograms = append(rep.Histograms, HistogramReport{
			Name:   h.name,
			Bounds: h.bounds,
			Counts: h.counts,
			Count:  h.count,
			Sum:    round6(h.sum),
			Min:    round6(h.min),
			Max:    round6(h.max),
			P50:    round6(h.Quantile(0.50)),
			P90:    round6(h.Quantile(0.90)),
			P99:    round6(h.Quantile(0.99)),
		})
	}
	sort.Slice(rep.Histograms, func(i, j int) bool { return rep.Histograms[i].Name < rep.Histograms[j].Name })
	for _, h := range r.lats {
		if h.count == 0 {
			continue
		}
		rep.Latencies = append(rep.Latencies, h.Report())
	}
	sort.Slice(rep.Latencies, func(i, j int) bool { return rep.Latencies[i].Name < rep.Latencies[j].Name })
	rep.Decisions = r.decisions
}

// NewRunReport stamps the schema and the run identity/duration.
func NewRunReport(name string, seed int64, elapsed sim.Duration) *RunReport {
	return &RunReport{
		Schema:     ReportSchema,
		Name:       name,
		Seed:       seed,
		RuntimeSec: round6(elapsed.Seconds()),
		RuntimeNs:  int64(elapsed),
	}
}

// Marshal renders a report or trajectory as indented JSON with a trailing
// newline. encoding/json writes map keys sorted and floats canonically, so
// output is byte-stable for identical inputs.
func Marshal(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteJSON writes a report or trajectory to path.
func WriteJSON(path string, v any) error {
	b, err := Marshal(v)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadFile loads path, which may hold either a single RunReport or a bench
// Trajectory; a single report comes back as a one-run trajectory so callers
// handle both shapes uniformly.
func ReadFile(path string) (*Trajectory, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	switch probe.Schema {
	case ReportSchema:
		var rep RunReport
		if err := json.Unmarshal(b, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &Trajectory{Schema: TrajectorySchema, Runs: []*RunReport{&rep}}, nil
	case TrajectorySchema:
		var tr Trajectory
		if err := json.Unmarshal(b, &tr); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &tr, nil
	default:
		return nil, fmt.Errorf("%s: unknown schema %q (want %q or %q)",
			path, probe.Schema, ReportSchema, TrajectorySchema)
	}
}
