// Package telemetry is the aggregate observability layer of the emulator: a
// per-Sim registry of typed instruments — monotonic counters, gauges sampled
// in virtual time, fixed-bucket histograms — plus a load-manager decision
// audit log, all snapshotted into a machine-readable RunReport (report.go).
//
// The paper's emulator "is instrumented to report application progress,
// overall runtime, and resource utilization for each host and ASU in the
// target (emulated) system" (Section 5), and every figure of Section 6 is a
// comparison between runs. Package trace covers the event level ("what
// happened when"); this package covers the aggregate level ("how did this
// run do"), in a form downstream tools (lmasreport diff, the bench
// trajectory, CI regression gates) can consume.
//
// Like the trace sink, the registry is nil-by-default: every method no-ops
// on a nil receiver and on nil instruments, so instrumented code pays one
// pointer check when telemetry is off. Instruments only observe — they never
// block a proc, charge virtual time, or touch the event queue — so attaching
// a registry cannot perturb simulated timings: the same seed produces the
// same completion times and a byte-identical report with or without other
// instrumentation attached.
package telemetry

import (
	"fmt"
	"math"
	"sort"

	"lmas/internal/sim"
)

// Counter is a named monotonically increasing value.
type Counter struct {
	name string
	v    int64
}

// Add increments the counter; negative deltas panic (counters are
// monotonic). No-op on a nil counter.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	if delta < 0 {
		panic(fmt.Sprintf("telemetry: negative delta %d for counter %q", delta, c.name))
	}
	c.v += delta
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (zero on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// GaugeSample is one (virtual time, value) observation.
type GaugeSample struct {
	T int64   `json:"t_ns"`
	V float64 `json:"v"`
}

// Gauge is a named value sampled in virtual time; successive samples form a
// time series (queue backlog, progress, memory in use).
type Gauge struct {
	name    string
	samples []GaugeSample
}

// Set records value v at virtual time t. No-op on a nil gauge.
func (g *Gauge) Set(t sim.Time, v float64) {
	if g == nil {
		return
	}
	g.samples = append(g.samples, GaugeSample{T: int64(t), V: v})
}

// Last reports the most recent sample value (zero when empty or nil).
func (g *Gauge) Last() float64 {
	if g == nil || len(g.samples) == 0 {
		return 0
	}
	return g.samples[len(g.samples)-1].V
}

// Samples returns the recorded series.
func (g *Gauge) Samples() []GaugeSample {
	if g == nil {
		return nil
	}
	return g.samples
}

// DurationBuckets are the default histogram bounds for virtual-time spans,
// in seconds: 1µs .. 10s, one decade apart, plus an overflow bucket.
var DurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper bounds in ascending order; values above the last bound land in an
// implicit overflow bucket.
type Histogram struct {
	name     string
	bounds   []float64
	counts   []int64 // len(bounds)+1, last is overflow
	count    int64
	sum      float64
	min, max float64
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
}

// ObserveDuration records a virtual-time span in seconds.
func (h *Histogram) ObserveDuration(d sim.Duration) { h.Observe(d.Seconds()) }

// Count reports the number of observations (zero on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Quantile estimates the q'th quantile (0..1) by linear interpolation
// within the containing bucket, clamped to the observed min/max. It returns
// 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.max
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			frac := (rank - cum) / float64(c)
			v := lo + frac*(hi-lo)
			return math.Min(math.Max(v, h.min), h.max)
		}
		cum = next
	}
	return h.max
}

// Reading is one named trigger value attached to a Decision. Readings are a
// slice, not a map, so audit entries serialize in a stable order.
type Reading struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

// Decision is one entry of the load-manager audit log: a reconfiguration
// (routing-policy switch, placement choice, parameter selection) with its
// virtual timestamp, the readings that triggered it, and what was chosen.
type Decision struct {
	T        int64     `json:"t_ns"`
	Source   string    `json:"source"`
	Action   string    `json:"action"`
	Detail   string    `json:"detail"`
	Readings []Reading `json:"readings,omitempty"`
}

// Registry holds one simulation run's instruments and audit log. Create one
// with NewRegistry; a nil *Registry is the valid "telemetry off" value.
type Registry struct {
	counters  []*Counter
	gauges    []*Gauge
	hists     []*Histogram
	lats      []*LatencyHistogram
	byName    map[string]any
	decisions []Decision
	onDecide  func(Decision)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]any)}
}

// Counter returns the counter named name, creating it on first use. Returns
// nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.byName[name]; ok {
		c, ok := v.(*Counter)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, v))
		}
		return c
	}
	c := &Counter{name: name}
	r.byName[name] = c
	r.counters = append(r.counters, c)
	return c
}

// Gauge returns the gauge named name, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if v, ok := r.byName[name]; ok {
		g, ok := v.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, v))
		}
		return g
	}
	g := &Gauge{name: name}
	r.byName[name] = g
	r.gauges = append(r.gauges, g)
	return g
}

// Histogram returns the histogram named name, creating it with the given
// bounds on first use (nil bounds means DurationBuckets). Returns nil on a
// nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.byName[name]; ok {
		h, ok := v.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("telemetry: %q already registered as %T", name, v))
		}
		return h
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{name: name, bounds: bounds, counts: make([]int64, len(bounds)+1)}
	r.byName[name] = h
	r.hists = append(r.hists, h)
	return h
}

// Decide appends one audit-log entry. No-op on a nil registry.
func (r *Registry) Decide(t sim.Time, source, action, detail string, readings ...Reading) {
	if r == nil {
		return
	}
	d := Decision{T: int64(t), Source: source, Action: action, Detail: detail, Readings: readings}
	r.decisions = append(r.decisions, d)
	if r.onDecide != nil {
		r.onDecide(d)
	}
}

// SetOnDecide installs an observer called synchronously for every Decide,
// after the entry lands in the audit log — the hook a run recorder uses to
// stream load-manager decisions as they happen. Nil clears it; no-op on a
// nil registry.
func (r *Registry) SetOnDecide(fn func(Decision)) {
	if r == nil {
		return
	}
	r.onDecide = fn
}

// Decisions returns the audit log in record order.
func (r *Registry) Decisions() []Decision {
	if r == nil {
		return nil
	}
	return r.decisions
}
